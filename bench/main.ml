(* Experiment harness: regenerates every "table/figure" of the experiment
   index in DESIGN.md (E1a-E6c). The paper itself is a theory paper with
   no measured tables; each experiment here validates one theorem's claim
   (see EXPERIMENTS.md for claim-vs-measured).

   Usage:
     dune exec bench/main.exe             -- run every experiment
     dune exec bench/main.exe -- E2b E5b  -- run selected experiments
     dune exec bench/main.exe -- micro    -- wall-clock micro-benches only *)

module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Matching_ref = Repro_graph.Matching_ref
module Girth_ref = Repro_graph.Girth_ref
module Metrics = Repro_congest.Metrics
module Bellman_ford = Repro_congest.Bellman_ford
module Bfs_tree = Repro_congest.Bfs_tree
module Fault = Repro_congest.Fault
module Recovery = Repro_congest.Recovery
module Apsp = Repro_congest.Apsp
module Part = Repro_shortcut.Part
module Pa = Repro_shortcut.Pa
module Primitives = Repro_shortcut.Primitives
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Separator = Repro_treedec.Separator
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Sssp = Repro_core.Sssp
module Stateful = Repro_core.Stateful
module Cdl = Repro_core.Cdl
module Matching = Repro_core.Matching
module Girth = Repro_core.Girth
module Engine = Repro_congest.Engine
module Detector = Repro_congest.Detector
module Async_engine = Repro_congest.Async_engine
module Store = Repro_serve.Store
module Query = Repro_serve.Query
module Cache = Repro_serve.Cache

let log2f x = log (float_of_int (max 2 x)) /. log 2.0

let header title claim =
  Printf.printf "\n== %s ==\n   claim: %s\n" title claim

let table_header cols =
  let line = String.concat " | " cols in
  Printf.printf "   %s\n   %s\n" line (String.make (String.length line) '-')

let cell w s =
  let pad = max 0 (w - String.length s) in
  String.make pad ' ' ^ s

(* ------------------------------------------------------------------ *)
(* Shared instance builders *)

let ptk ~seed n k = Generators.partial_k_tree ~seed n k ~keep:0.6

let decompose_measured ?(seed = 1) g =
  let m = Metrics.create () in
  let report = Build.decompose ~seed g ~metrics:m in
  (report, Metrics.rounds m)

(* ------------------------------------------------------------------ *)
(* E1a / E1b: tree decomposition width and rounds (Theorem 1) *)

let e1 () =
  header "E1a/E1b: distributed tree decomposition (Theorem 1)"
    "width O(tau^2 log n); rounds ~ tau^2 D + tau^3 (up to polylog)";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 4 "tau"; cell 4 "D"; cell 6 "width";
      cell 12 "w/(t^2 lg n)"; cell 8 "rounds"; cell 10 "t^2D+t^3"; cell 7 "ratio";
    ];
  let families =
    List.concat_map
      (fun k ->
        List.map
          (fun n -> (Printf.sprintf "partial %d-tree" k, ptk ~seed:(k + n) n k))
          [ 64; 128; 256 ])
      [ 2; 3; 4 ]
    @ [ ("cycle", Generators.cycle 128); ("grid 8x8", Generators.grid 8 8) ]
  in
  List.iter
    (fun (name, g) ->
      let tau = Heuristic.degeneracy g in
      let d = Traversal.diameter g in
      let report, rounds = decompose_measured g in
      let width = Decomposition.width report.Build.decomposition in
      let bound = float_of_int (tau * tau) *. log2f (Digraph.n g) in
      let reference = (tau * tau * d) + (tau * tau * tau) in
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 4 (string_of_int tau))
        (cell 4 (string_of_int d))
        (cell 6 (string_of_int width))
        (cell 12 (Printf.sprintf "%.2f" (float_of_int width /. bound)))
        (cell 8 (string_of_int rounds))
        (cell 10 (string_of_int reference))
        (cell 7
           (Printf.sprintf "%.1f" (float_of_int rounds /. float_of_int (max 1 reference)))))
    families

(* ------------------------------------------------------------------ *)
(* E2a: DL label size and exactness (Theorem 2) *)

let e2a () =
  header "E2a: distance labeling exactness and label size (Theorem 2)"
    "labels exact; size O(tau^2 log^2 n) words";
  table_header
    [
      cell 5 "n"; cell 4 "k"; cell 6 "width"; cell 10 "max words";
      cell 14 "t^2 lg^2 n ref"; cell 6 "exact";
    ];
  List.iter
    (fun (n, k) ->
      let g = Generators.bidirect ~seed:(n + k) ~max_weight:16 (ptk ~seed:(n * k) n k) in
      let report, _ = decompose_measured g in
      let m = Metrics.create () in
      let labels = Dl.build g report.Build.decomposition ~metrics:m in
      let words = Dl.max_label_words labels in
      let tau = Heuristic.degeneracy g in
      let reference = float_of_int (tau * tau) *. log2f n *. log2f n in
      (* exactness on a sample of pairs *)
      let rng = Random.State.make [| n; k |] in
      let exact = ref true in
      for _ = 1 to 100 do
        let u = Random.State.int rng n in
        let d = Shortest_path.dijkstra g u in
        let v = Random.State.int rng n in
        if Labeling.decode labels.(u) labels.(v) <> d.(v) then exact := false
      done;
      Printf.printf "   %s | %s | %s | %s | %s | %s\n"
        (cell 5 (string_of_int n))
        (cell 4 (string_of_int k))
        (cell 6 (string_of_int (Decomposition.width report.Build.decomposition)))
        (cell 10 (string_of_int words))
        (cell 14 (Printf.sprintf "%.0f" reference))
        (cell 6 (if !exact then "yes" else "NO")))
    [ (64, 2); (128, 2); (128, 3); (256, 3) ]

(* ------------------------------------------------------------------ *)
(* E2b: SSSP rounds, ours vs Bellman-Ford baseline (Theorem 2) *)

let e2b () =
  header "E2b: SSSP rounds vs Bellman-Ford baseline"
    "ours ~ tau^2 D + tau^5 polylog (flat-ish in n); baseline Theta(n)";
  table_header
    [
      cell 14 "family"; cell 5 "n"; cell 4 "D"; cell 12 "ours(total)";
      cell 12 "ours(query)"; cell 10 "baseline"; cell 9 "exact";
    ];
  List.iter
    (fun (family, n) ->
      let g =
        match family with
        | `Ptk -> Generators.bidirect ~seed:n ~max_weight:9 (ptk ~seed:n n 3)
        | `Wheel -> Generators.wheel n
      in
      let m = Metrics.create () in
      let report = Build.decompose ~seed:2 g ~metrics:m in
      let labels = Dl.build g report.Build.decomposition ~metrics:m in
      let before = Metrics.rounds m in
      let r = Sssp.run g labels ~source:0 ~metrics:m in
      let query = Metrics.rounds m - before in
      let mb = Metrics.create () in
      let bf = Bellman_ford.run g ~source:0 ~metrics:mb in
      let exact =
        r.Sssp.dist_from_source = Shortest_path.dijkstra g 0
        && bf = Shortest_path.dijkstra g 0
      in
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s\n"
        (cell 14 (match family with `Ptk -> "partial 3-tree" | `Wheel -> "heavy wheel"))
        (cell 5 (string_of_int n))
        (cell 4 (string_of_int (Traversal.diameter g)))
        (cell 12 (string_of_int (Metrics.rounds m)))
        (cell 12 (string_of_int query))
        (cell 10 (string_of_int (Metrics.rounds mb)))
        (cell 9 (if exact then "both" else "NO")))
    [ (`Ptk, 64); (`Ptk, 128); (`Ptk, 256); (`Ptk, 512); (`Ptk, 1024);
      (`Wheel, 64); (`Wheel, 128); (`Wheel, 256); (`Wheel, 512); (`Wheel, 1024) ]

(* ------------------------------------------------------------------ *)
(* E3: CDL overhead scaling in |Q| (Theorem 3) *)

let e3 () =
  header "E3: constrained distance labeling overhead (Theorem 3)"
    "CDL rounds scale polynomially with the state-space size |Q|";
  let g0 = ptk ~seed:7 64 2 in
  let rng = Random.State.make [| 7 |] in
  let with_labels colors = Digraph.with_labels g0 (fun _ -> Random.State.int rng colors) in
  let m0 = Metrics.create () in
  let dec = (Build.decompose ~seed:3 g0 ~metrics:m0).Build.decomposition in
  let base =
    let m = Metrics.create () in
    ignore (Dl.build g0 dec ~metrics:m);
    Metrics.rounds m
  in
  table_header
    [ cell 14 "constraint"; cell 4 "|Q|"; cell 10 "rounds"; cell 12 "vs plain DL" ];
  Printf.printf "   %s | %s | %s | %s\n" (cell 14 "plain DL") (cell 4 "-")
    (cell 10 (string_of_int base))
    (cell 12 "1.0");
  List.iter
    (fun (name, spec, labeled) ->
      let m = Metrics.create () in
      ignore (Cdl.build ~dec ~seed:1 labeled spec ~metrics:m);
      Printf.printf "   %s | %s | %s | %s\n" (cell 14 name)
        (cell 4 (string_of_int spec.Stateful.q_size))
        (cell 10 (string_of_int (Metrics.rounds m)))
        (cell 12
           (Printf.sprintf "%.1f"
              (float_of_int (Metrics.rounds m) /. float_of_int (max 1 base)))))
    [
      ("forbidden", Stateful.forbidden, with_labels 2);
      ("parity", Stateful.parity, with_labels 2);
      ("colored-2", Stateful.colored ~colors:2, with_labels 2);
      ("colored-3", Stateful.colored ~colors:3, with_labels 3);
      ("count-1", Stateful.count ~limit:1, with_labels 2);
      ("count-2", Stateful.count ~limit:2, with_labels 2);
      ("count-3", Stateful.count ~limit:3, with_labels 2);
    ]

(* ------------------------------------------------------------------ *)
(* E4a / E4b: exact bipartite matching (Theorem 4) *)

let e4 () =
  header "E4a: exact bipartite maximum matching (Theorem 4)"
    "exact matching; rounds ~ tau^4 D + tau^7 polylog";
  table_header
    [
      cell 18 "family"; cell 5 "n"; cell 6 "match"; cell 5 "aug";
      cell 8 "rounds"; cell 6 "exact";
    ];
  let run_one name g =
    let m = Metrics.create () in
    let r = Matching.run ~seed:1 g ~metrics:m in
    let hk = Matching_ref.size (Matching_ref.hopcroft_karp (Digraph.skeleton g)) in
    Printf.printf "   %s | %s | %s | %s | %s | %s\n" (cell 18 name)
      (cell 5 (string_of_int (Digraph.n g)))
      (cell 6 (string_of_int r.Matching.size))
      (cell 5 (string_of_int r.Matching.augmentations))
      (cell 8 (string_of_int (Metrics.rounds m)))
      (cell 6 (if r.Matching.size = hk then "yes" else "NO"))
  in
  run_one "grid 6x6" (Generators.grid 6 6);
  run_one "grid 8x8" (Generators.grid 8 8);
  run_one "subdiv 2-tree 40" (Generators.subdivide (Generators.k_tree ~seed:4 40 2));
  run_one "subdiv 3-tree 40" (Generators.subdivide (Generators.k_tree ~seed:4 40 3));
  header "E4b: matching rounds vs sequential Õ(s_max) baseline"
    "ours sublinear in n at fixed tau; baseline grows with matching size";
  table_header [ cell 5 "n"; cell 6 "s_max"; cell 10 "ours"; cell 10 "baseline" ];
  List.iter
    (fun half ->
      let g = Generators.subdivide (Generators.k_tree ~seed:5 half 2) in
      let m = Metrics.create () and mb = Metrics.create () in
      let r = Matching.run ~seed:1 g ~metrics:m in
      let rb = Matching.sequential_baseline g ~metrics:mb in
      assert (r.Matching.size = rb.Matching.size);
      Printf.printf "   %s | %s | %s | %s\n"
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 6 (string_of_int r.Matching.size))
        (cell 10 (string_of_int (Metrics.rounds m)))
        (cell 10 (string_of_int (Metrics.rounds mb))))
    [ 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* E5a: weighted girth, directed and undirected (Theorem 5) *)

let e5a () =
  header "E5a: weighted girth (Theorem 5)"
    "exact girth; rounds ~ tau^2 D + tau^5 polylog";
  table_header
    [
      cell 20 "family"; cell 5 "n"; cell 9 "dir"; cell 7 "girth";
      cell 7 "ref"; cell 8 "rounds"; cell 7 "trials";
    ];
  let run_one name g =
    let m = Metrics.create () in
    let r =
      if Digraph.directed g then Girth.directed ~seed:1 g ~metrics:m
      else Girth.undirected ~mode:`Charged ~seed:1 g ~metrics:m
    in
    Printf.printf "   %s | %s | %s | %s | %s | %s | %s\n" (cell 20 name)
      (cell 5 (string_of_int (Digraph.n g)))
      (cell 9 (if Digraph.directed g then "directed" else "undir"))
      (cell 7 (if r.Girth.girth >= Digraph.inf then "inf" else string_of_int r.Girth.girth))
      (cell 7
         (let gr = Girth_ref.girth g in
          if gr >= Digraph.inf then "inf" else string_of_int gr))
      (cell 8 (string_of_int (Metrics.rounds m)))
      (cell 7 (string_of_int r.Girth.trials))
  in
  run_one "weighted ring 32"
    (Generators.random_weights ~seed:2 ~max_weight:6 (Generators.cycle 32));
  run_one "ring of rings" (Generators.ring_of_rings ~rings:6 ~ring_size:5);
  run_one "weighted grid 6x6"
    (Generators.random_weights ~seed:3 ~max_weight:4 (Generators.grid 6 6));
  run_one "2-tree 64 (undir)"
    (Generators.random_weights ~seed:4 ~max_weight:5 (Generators.k_tree ~seed:4 64 2));
  run_one "2-tree 64 (dir)"
    (Generators.bidirect ~seed:5 ~max_weight:5 (Generators.k_tree ~seed:4 64 2));
  run_one "directed 3-tree 96"
    (Generators.bidirect ~seed:6 ~max_weight:7 (Generators.k_tree ~seed:6 96 3));
  run_one "directed 3-tree 256"
    (Generators.bidirect ~seed:7 ~max_weight:7 (Generators.k_tree ~seed:7 256 3));
  run_one "directed 3-tree 512"
    (Generators.bidirect ~seed:8 ~max_weight:7 (Generators.k_tree ~seed:8 512 3))

(* ------------------------------------------------------------------ *)
(* E5b: exponential girth/diameter separation (Section 1.2) *)

let e5b () =
  header "E5b: girth vs diameter separation on constant-D graphs"
    "girth rounds ~flat in n; diameter baseline Omega(n) (exponential gap)";
  table_header
    [
      cell 5 "n"; cell 4 "D"; cell 5 "tau"; cell 13 "girth rounds";
      cell 15 "diameter rounds"; cell 7 "ratio";
    ];
  List.iter
    (fun cliques ->
      let g = Generators.apex_cliques ~cliques ~size:4 in
      let mg = Metrics.create () in
      let r = Girth.undirected ~mode:`Charged ~repeats:3 ~seed:1 g ~metrics:mg in
      assert (r.Girth.girth >= 3);
      let md = Metrics.create () in
      ignore (Apsp.diameter g ~metrics:md);
      Printf.printf "   %s | %s | %s | %s | %s | %s\n"
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 4 (string_of_int (Traversal.diameter g)))
        (cell 5 (string_of_int (Heuristic.degeneracy g)))
        (cell 13 (string_of_int (Metrics.rounds mg)))
        (cell 15 (string_of_int (Metrics.rounds md)))
        (cell 7
           (Printf.sprintf "%.2f"
              (float_of_int (Metrics.rounds md) /. float_of_int (max 1 (Metrics.rounds mg))))))
    [ 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E6a: SEP sampling ablation (Section 3.3, first idea) *)

let e6a () =
  header "E6a: SEP constant profiles — paper vs practical (ablation)"
    "paper constants are asymptotic (step-1 threshold 200t^2 swallows small graphs); the practical profile keeps SEP's machinery engaged at laptop sizes";
  table_header
    [
      cell 10 "profile"; cell 5 "n"; cell 10 "sep size"; cell 9 "balanced";
      cell 7 "width"; cell 12 "cost rounds";
    ];
  List.iter
    (fun n ->
      let g = ptk ~seed:11 n 3 in
      let mask = Array.make (Digraph.n g) true in
      List.iter
        (fun profile ->
          let cost = Primitives.cost_zero () in
          let sep, _ = Separator.find_separator ~profile ~seed:3 g ~mask ~x_mask:mask ~cost in
          let m = Metrics.create () in
          let width =
            Decomposition.width (Build.decompose ~profile ~seed:3 g ~metrics:m).Build.decomposition
          in
          Printf.printf "   %s | %s | %s | %s | %s | %s\n"
            (cell 10 profile.Separator.name)
            (cell 5 (string_of_int n))
            (cell 10 (string_of_int (List.length sep)))
            (cell 9
               (if Separator.is_balanced g ~mask ~x_mask:mask ~profile sep then "yes"
                else "NO"))
            (cell 7 (string_of_int width))
            (cell 12 (string_of_int (Primitives.cost_rounds cost))))
        [ Separator.paper_profile; Separator.practical_profile ])
    [ 96; 192; 384 ]

(* ------------------------------------------------------------------ *)
(* E6b: parallel vs sequential MVC scheduling (Section 3.3, third idea) *)

let e6b () =
  header "E6b: MVC scheduling — parallel (Cor. 2) vs sequential charges"
    "parallel: t(2depth) + h t load; sequential: h * t * (2depth + load)";
  table_header
    [
      cell 5 "n"; cell 6 "depth"; cell 5 "load"; cell 4 "h"; cell 4 "t";
      cell 10 "parallel"; cell 12 "sequential"; cell 8 "speedup";
    ];
  List.iter
    (fun n ->
      let g = ptk ~seed:13 n 3 in
      let m = Metrics.create () in
      (* basis measured over the SPLIT pieces of a spanning tree, the
         collection SEP actually runs MVC over *)
      let mask = Array.make (Digraph.n g) true in
      let cost = Primitives.cost_zero () in
      let sep, _ = Separator.find_separator ~seed:13 g ~mask ~x_mask:mask ~cost in
      ignore sep;
      let parts = Part.make g [| Array.init (Digraph.n g) Fun.id |] in
      let b = Primitives.basis parts ~metrics:m in
      let h = 24 and t = 4 in
      let parallel = Primitives.mvc_rounds b ~h ~t in
      let sequential = h * t * ((2 * b.Primitives.depth) + b.Primitives.max_load) in
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s\n"
        (cell 5 (string_of_int n))
        (cell 6 (string_of_int b.Primitives.depth))
        (cell 5 (string_of_int b.Primitives.max_load))
        (cell 4 (string_of_int h))
        (cell 4 (string_of_int t))
        (cell 10 (string_of_int parallel))
        (cell 12 (string_of_int sequential))
        (cell 8
           (Printf.sprintf "%.1fx"
              (float_of_int sequential /. float_of_int (max 1 parallel)))))
    [ 64; 128; 256 ];
  Printf.printf "   Theorem 6 at message level: k concurrent BFS floods (grid 8x8, D=14):\n";
  table_header [ cell 4 "k"; cell 10 "measured"; cell 8 "D + k"; cell 12 "sequential" ];
  List.iter
    (fun k ->
      let g = Generators.grid 8 8 in
      let d = Traversal.diameter g in
      let roots = List.init k (fun i -> (i * 7) mod 64) in
      let m = Metrics.create () in
      let r = Repro_congest.Multi_bfs.run g ~roots ~seed:1 ~metrics:m () in
      Printf.printf "   %s | %s | %s | %s\n"
        (cell 4 (string_of_int k))
        (cell 10 (string_of_int r.Repro_congest.Multi_bfs.rounds))
        (cell 8 (string_of_int (d + k)))
        (cell 12 (string_of_int (k * d))))
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E6c: separator quality across families (Lemma 1 sanity) *)

let e6c () =
  header "E6c: separator balance and size across families (Lemma 1)"
    "balanced w.r.t. profile alpha; size <= O(t^2)";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 4 "t"; cell 9 "sep size";
      cell 7 "t^2 cap"; cell 9 "balanced";
    ];
  let check name g =
    let mask = Array.make (Digraph.n g) true in
    let cost = Primitives.cost_zero () in
    let sep, t = Separator.find_separator ~seed:7 g ~mask ~x_mask:mask ~cost in
    Printf.printf "   %s | %s | %s | %s | %s | %s\n" (cell 16 name)
      (cell 5 (string_of_int (Digraph.n g)))
      (cell 4 (string_of_int t))
      (cell 9 (string_of_int (List.length sep)))
      (cell 7 (string_of_int (8 * t * t)))
      (cell 9
         (if
            Separator.is_balanced g ~mask ~x_mask:mask
              ~profile:Separator.practical_profile sep
          then "yes"
          else "NO"))
  in
  check "path" (Generators.path 200);
  check "cycle" (Generators.cycle 200);
  check "grid 12x12" (Generators.grid 12 12);
  check "2-tree" (Generators.k_tree ~seed:1 200 2);
  check "4-tree" (Generators.k_tree ~seed:2 150 4);
  check "apex cliques" (Generators.apex_cliques ~cliques:24 ~size:4)

(* ------------------------------------------------------------------ *)
(* E6d: CCD — direct flooding vs shortcut-based charge (Lemma 8) *)

let e6d () =
  header "E6d: component detection — flooding vs shortcut charge (Lemma 8)"
    "flooding costs the component diameter; the shortcut reduction stays ~ tau D";
  table_header
    [
      cell 5 "n"; cell 4 "D"; cell 11 "comp diam"; cell 10 "flooding";
      cell 10 "shortcut";
    ];
  List.iter
    (fun n ->
      (* wheel with the hub masked out: D = 2 but the remaining rim
         component has diameter ~ n/2 *)
      let g = Generators.wheel n in
      let mask = Array.make n true in
      mask.(n - 1) <- false;
      let mf = Metrics.create () in
      ignore (Repro_congest.Components.flood_labels g ~mask ~metrics:mf);
      let ms = Metrics.create () in
      ignore (Primitives.components g ~mask ~metrics:ms ~label:"ccd");
      Printf.printf "   %s | %s | %s | %s | %s\n"
        (cell 5 (string_of_int n))
        (cell 4 (string_of_int (Traversal.diameter g)))
        (cell 11 (string_of_int ((n - 1) / 2)))
        (cell 10 (string_of_int (Metrics.rounds mf)))
        (cell 10 (string_of_int (Metrics.rounds ms))))
    [ 32; 64; 128; 256 ]

(* ------------------------------------------------------------------ *)
(* E7: NP-hard optimization over the decomposition (Li18 application) *)

let e7 () =
  header "E7: DP over the distributed decomposition (Li18-style application)"
    "optimal MIS / vertex cover / dominating set; rounds ~ 2^O(width) * D";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 6 "width"; cell 5 "MIS"; cell 4 "VC";
      cell 7 "DomSet"; cell 12 "table words"; cell 10 "rounds";
    ];
  List.iter
    (fun (name, g) ->
      let m = Metrics.create () in
      let report = Build.decompose ~seed:7 g ~metrics:m in
      let dec =
        if Decomposition.width report.Build.decomposition <= 9 then
          report.Build.decomposition
        else Heuristic.min_fill g
      in
      let nice = Repro_treedec.Nice.of_decomposition dec in
      let mis = Repro_core.Dp.max_weight_independent_set g nice ~metrics:m in
      let vc = Repro_core.Dp.min_vertex_cover g nice ~metrics:m in
      let ds = Repro_core.Dp.min_dominating_set g nice ~metrics:m in
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 6 (string_of_int (Decomposition.width dec)))
        (cell 5 (string_of_int mis.Repro_core.Dp.value))
        (cell 4 (string_of_int vc.Repro_core.Dp.value))
        (cell 7 (string_of_int ds.Repro_core.Dp.value))
        (cell 12 (string_of_int ds.Repro_core.Dp.table_words))
        (cell 10 (string_of_int (Metrics.rounds m))))
    [
      ("cycle 48", Generators.cycle 48);
      ("grid 4x8", Generators.grid 4 8);
      ("partial 2-tree 48", ptk ~seed:7 48 2);
      ("partial 3-tree 48", ptk ~seed:8 48 3);
    ]
  ;
  Printf.printf "   Steiner trees (terminals = every 6th vertex):\n";
  table_header
    [ cell 16 "family"; cell 5 "n"; cell 7 "#terms"; cell 7 "weight"; cell 10 "rounds" ];
  List.iter
    (fun (name, g) ->
      let m = Metrics.create () in
      let nice = Repro_treedec.Nice.of_decomposition (Heuristic.min_fill g) in
      let terminals =
        List.filter (fun v -> v mod 6 = 0) (List.init (Digraph.n g) Fun.id)
      in
      let r = Repro_core.Dp.steiner_tree g nice ~terminals ~metrics:m in
      Printf.printf "   %s | %s | %s | %s | %s\n" (cell 16 name)
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 7 (string_of_int (List.length terminals)))
        (cell 7 (string_of_int r.Repro_core.Dp.value))
        (cell 10 (string_of_int (Metrics.rounds m))))
    [
      ("cycle 36", Generators.random_weights ~seed:9 ~max_weight:9 (Generators.cycle 36));
      ("series-parallel", Generators.random_weights ~seed:10 ~max_weight:9 (Generators.series_parallel ~seed:10 36));
      ("caterpillar", Generators.caterpillar ~spine:12 ~legs:2);
    ]

(* ------------------------------------------------------------------ *)
(* E8: shortcut-based MST (the Õ(tau D) application of Section 1.1) *)

let e8 () =
  header "E8: MST via part-wise aggregation (Boruvka over shortcuts)"
    "exact MST in O(log n) PA phases; rounds ~ tau D polylog";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 4 "D"; cell 7 "phases";
      cell 8 "rounds"; cell 9 "tauD ref"; cell 6 "exact";
    ];
  List.iter
    (fun (name, g) ->
      let m = Metrics.create () in
      let r = Repro_shortcut.Mst.run g ~metrics:m in
      let k = Repro_shortcut.Mst.kruskal g in
      let tau = Heuristic.degeneracy g in
      let d = Traversal.diameter g in
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
        (cell 5 (string_of_int (Digraph.n g)))
        (cell 4 (string_of_int d))
        (cell 7 (string_of_int r.Repro_shortcut.Mst.phases))
        (cell 8 (string_of_int (Metrics.rounds m)))
        (cell 9 (string_of_int (tau * d)))
        (cell 6
           (if r.Repro_shortcut.Mst.edges = k.Repro_shortcut.Mst.edges then "yes" else "NO")))
    [
      ("partial 2-tree", Generators.random_weights ~seed:1 ~max_weight:30 (ptk ~seed:1 128 2));
      ("partial 3-tree", Generators.random_weights ~seed:2 ~max_weight:30 (ptk ~seed:2 256 3));
      ("grid 12x12", Generators.random_weights ~seed:3 ~max_weight:30 (Generators.grid 12 12));
      ("cycle 256", Generators.random_weights ~seed:4 ~max_weight:30 (Generators.cycle 256));
    ]

(* ------------------------------------------------------------------ *)
(* Machine-readable rows for the fault experiments (E-F1/E-F2/E-F3),
   flushed to BENCH_faults.json after the selected experiments ran, so
   CI can diff fault-tolerance costs without scraping the tables. *)

let fault_rows : string list ref = ref []

let fault_row ~experiment ~scenario fields =
  let all =
    ("experiment", Printf.sprintf "%S" experiment)
    :: ("scenario", Printf.sprintf "%S" scenario)
    :: fields
  in
  fault_rows :=
    Printf.sprintf "    {%s}"
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) all))
    :: !fault_rows

let metric_fields m =
  [
    ("rounds", string_of_int (Metrics.rounds m));
    ("messages", string_of_int (Metrics.messages m));
    ("retransmissions", string_of_int (Metrics.retransmissions m));
    ("dropped", string_of_int (Metrics.dropped m));
    ("duplicated", string_of_int (Metrics.duplicated m));
    ("corrupted", string_of_int (Metrics.corrupted m));
    ("rejected", string_of_int (Metrics.rejected m));
    ("suspicions", string_of_int (Metrics.suspicions m));
    ("link_failures", string_of_int (Metrics.link_failures m));
    ("checkpoints", string_of_int (Metrics.checkpoints m));
    ("checkpoint_words", string_of_int (Metrics.checkpoint_words m));
    ("recoveries", string_of_int (Metrics.recoveries m));
    ("resync_rounds", string_of_int (Metrics.resync_rounds m));
    ("pulses", string_of_int (Metrics.pulses m));
    ("safe_messages", string_of_int (Metrics.safe_messages m));
    ("straggles", string_of_int (Metrics.straggles m));
    ("virtual_time", string_of_int (Metrics.virtual_time m));
  ]

let flush_fault_json () =
  if !fault_rows <> [] then begin
    let oc = open_out "BENCH_faults.json" in
    output_string oc "{\n  \"rows\": [\n";
    output_string oc (String.concat ",\n" (List.rev !fault_rows));
    output_string oc "\n  ]\n}\n";
    close_out oc;
    Printf.printf "\nwrote BENCH_faults.json (%d rows)\n" (List.length !fault_rows)
  end

(* ------------------------------------------------------------------ *)
(* E-F1: reliable transport overhead under fault injection *)

let ef1 () =
  header "E-F1: reliable-transport round overhead vs drop rate (fault injection)"
    "outputs exact for any drop < 1; ~1x overhead when fault-free, growing \
     superlinearly in p (exponential-backoff tail dominates)";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 5 "drop"; cell 9 "raw bfs"; cell 9 "reliable";
      cell 9 "overhead"; cell 8 "retrans"; cell 8 "dropped"; cell 6 "exact";
    ];
  let families =
    [
      ("partial 2-tree", ptk ~seed:66 64 2);
      ("partial 3-tree", ptk ~seed:131 128 3);
      ("cycle", Generators.cycle 128);
      ("grid 8x8", Generators.grid 8 8);
    ]
  in
  List.iter
    (fun (name, g) ->
      let expected = Traversal.bfs_undirected g 0 in
      let raw =
        let m = Metrics.create () in
        ignore (Bfs_tree.build g ~root:0 ~metrics:m);
        Metrics.rounds m
      in
      List.iter
        (fun drop ->
          let m = Metrics.create () in
          let faults = Fault.create ~seed:1 (Fault.profile ~drop ()) in
          let t = Bfs_tree.build ~faults ~reliable:true g ~root:0 ~metrics:m in
          fault_row ~experiment:"E-F1"
            ~scenario:(Printf.sprintf "%s drop=%.2f" name drop)
            (("n", string_of_int (Digraph.n g))
            :: ("raw_rounds", string_of_int raw)
            :: ("exact", string_of_bool (t.Bfs_tree.dist = expected))
            :: metric_fields m);
          Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
            (cell 5 (string_of_int (Digraph.n g)))
            (cell 5 (Printf.sprintf "%.2f" drop))
            (cell 9 (string_of_int raw))
            (cell 9 (string_of_int (Metrics.rounds m)))
            (cell 9
               (Printf.sprintf "%.1fx" (float_of_int (Metrics.rounds m) /. float_of_int raw)))
            (cell 8 (string_of_int (Metrics.retransmissions m)))
            (cell 8 (string_of_int (Metrics.dropped m)))
            (cell 6 (if t.Bfs_tree.dist = expected then "yes" else "NO")))
        [ 0.0; 0.1; 0.2; 0.3; 0.5 ])
    families

(* ------------------------------------------------------------------ *)
(* E-F2: crash-amnesia recovery overhead vs checkpoint interval *)

let ef2 () =
  header "E-F2: recovery overhead vs checkpoint interval under crash-amnesia"
    "outputs exact for every interval; zero round overhead when crash-free with \
     checkpointing off; denser checkpoints trade storage words for faster \
     re-convergence after a restart";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 9 "interval"; cell 7 "rounds"; cell 9 "overhead";
      cell 7 "ckpts"; cell 10 "ckpt words"; cell 5 "recov"; cell 7 "resync"; cell 6 "exact";
    ];
  let families =
    [
      ("partial 2-tree", ptk ~seed:41 64 2, [ Fault.crash 11 ~from:3 ~until:15 ~mode:Fault.Amnesia;
                                              Fault.crash 37 ~from:8 ~until:20 ~mode:Fault.Amnesia ]);
      ("partial 3-tree", ptk ~seed:42 128 3, [ Fault.crash 19 ~from:4 ~until:18 ~mode:Fault.Amnesia;
                                               Fault.crash 77 ~from:10 ~until:26 ~mode:Fault.Amnesia ]);
    ]
  in
  List.iter
    (fun (name, g, crashes) ->
      let expected = Traversal.bfs_undirected g 0 in
      (* crash-free plain-transport baseline, and the zero-overhead claim:
         recovery with checkpointing off must match it round for round *)
      let baseline =
        let m = Metrics.create () in
        ignore (Bfs_tree.build ~reliable:true g ~root:0 ~metrics:m);
        Metrics.rounds m
      in
      let row label faults recovery =
        let m = Metrics.create () in
        let t = Bfs_tree.build ?faults ~recovery g ~root:0 ~metrics:m in
        fault_row ~experiment:"E-F2"
          ~scenario:(Printf.sprintf "%s interval=%s" name label)
          (("n", string_of_int (Digraph.n g))
          :: ("baseline_rounds", string_of_int baseline)
          :: ("exact", string_of_bool (t.Bfs_tree.dist = expected))
          :: metric_fields m);
        Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
          (cell 5 (string_of_int (Digraph.n g)))
          (cell 9 label)
          (cell 7 (string_of_int (Metrics.rounds m)))
          (cell 9
             (Printf.sprintf "%.2fx" (float_of_int (Metrics.rounds m) /. float_of_int baseline)))
          (cell 7 (string_of_int (Metrics.checkpoints m)))
          (cell 10 (string_of_int (Metrics.checkpoint_words m)))
          (cell 5 (string_of_int (Metrics.recoveries m)))
          (cell 7 (string_of_int (Metrics.resync_rounds m)))
          (cell 6 (if t.Bfs_tree.dist = expected then "yes" else "NO"))
      in
      row "none/off" None { Recovery.checkpoint_every = 0 };
      let faults () =
        (* fresh adversary per run; the crash schedule is fixed by the
           profile, so every interval faces the identical outages *)
        Some (Fault.create ~seed:17 (Fault.profile ~crashes ()))
      in
      List.iter
        (fun interval ->
          row (string_of_int interval) (faults ()) { Recovery.checkpoint_every = interval })
        [ 0; 2; 4; 8; 16 ])
    families

(* ------------------------------------------------------------------ *)
(* E-F3: failure-detector suspicion latency vs heartbeat period *)

let ef3 () =
  header "E-F3: detector suspicion latency vs heartbeat period (partition at round 0)"
    "the first suspicion of a severed link fires within timeout = 3 x period \
     rounds of the last delivery, and the Partial verdict matches the \
     centralized partition oracle";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 6 "period"; cell 7 "timeout"; cell 9 "1st susp";
      cell 7 "latency"; cell 5 "bound"; cell 7 "rounds"; cell 24 "verdict"; cell 6 "ok";
    ];
  let families =
    [
      ("partial 2-tree", ptk ~seed:91 48 2, Fault.Around [ 7 ]);
      ("grid 6x6", Generators.grid 6 6, Fault.Around [ 14 ]);
    ]
  in
  List.iter
    (fun (name, g, cut) ->
      List.iter
        (fun period ->
          let timeout = 3 * period in
          let faults =
            Fault.create ~seed:5
              (Fault.profile ~partitions:[ Fault.partition ~from:0 cut ] ())
          in
          (* lightweight sink: only the first suspicion round matters,
             so don't buffer the whole trace *)
          let first_suspect = ref None in
          let saved = !Engine.trace_sink in
          Engine.trace_sink :=
            Repro_obs.Sink.make (function
              | Repro_obs.Event.Suspect { round; _ } ->
                  if !first_suspect = None then first_suspect := Some round
              | _ -> ());
          let m = Metrics.create () in
          let v =
            match Bfs_tree.build_certified ~faults ~period ~timeout g ~root:0 ~metrics:m with
            | _, v -> Engine.trace_sink := saved; v
            | exception e -> Engine.trace_sink := saved; raise e
          in
          let oracle = Detector.oracle ~faults g ~root:0 in
          let verdict_ok =
            match v with
            | Detector.Complete -> false (* a round-0 cut must be noticed *)
            | Detector.Partial { reachable; _ } -> reachable = oracle
          in
          (* the cut exists from round 0, so latency is measured from the
             start round (= the initial last-heard deadline) *)
          let latency = match !first_suspect with Some r -> r | None -> max_int in
          let ok = verdict_ok && latency <= timeout in
          fault_row ~experiment:"E-F3" ~scenario:(Printf.sprintf "%s period=%d" name period)
            (("n", string_of_int (Digraph.n g))
            :: ("period", string_of_int period)
            :: ("timeout", string_of_int timeout)
            :: ("suspicion_latency", string_of_int latency)
            :: ("latency_bound", string_of_int timeout)
            :: ("verdict", Printf.sprintf "%S" (Format.asprintf "%a" Detector.pp_verdict v))
            :: ("verdict_matches_oracle", string_of_bool verdict_ok)
            :: metric_fields m);
          Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
            (cell 5 (string_of_int (Digraph.n g)))
            (cell 6 (string_of_int period))
            (cell 7 (string_of_int timeout))
            (cell 9 (match !first_suspect with Some r -> string_of_int r | None -> "never"))
            (cell 7 (string_of_int latency))
            (cell 5 (string_of_int timeout))
            (cell 7 (string_of_int (Metrics.rounds m)))
            (cell 24 (Format.asprintf "%a" Detector.pp_verdict v))
            (cell 6 (if ok then "yes" else "NO")))
        [ 2; 4; 8 ])
    families

(* ------------------------------------------------------------------ *)
(* E-F4: α-synchronizer overhead and straggler-tail latency *)

let ef4 () =
  header "E-F4: async executor — synchronizer overhead and straggler-tail latency"
    "outputs, round counts and core traffic counters stay byte-identical to the \
     synchronous engine across timing profiles; the synchronizer's overhead is \
     the per-pulse SAFE fan-out, and the virtual-time makespan stretches with \
     the straggler tail while logical rounds stay fixed";
  table_header
    [
      cell 16 "family"; cell 5 "n"; cell 24 "scenario"; cell 7 "rounds"; cell 7 "pulses";
      cell 9 "safe msg"; cell 9 "vt"; cell 8 "vt/round"; cell 6 "exact";
    ];
  let families =
    [ ("partial 2-tree", ptk ~seed:66 64 2); ("grid 8x8", Generators.grid 8 8) ]
  in
  List.iter
    (fun (name, g) ->
      let expected = Traversal.bfs_undirected g 0 in
      let sync_rounds, sync_messages =
        let m = Metrics.create () in
        ignore (Bfs_tree.build g ~root:0 ~metrics:m);
        (Metrics.rounds m, Metrics.messages m)
      in
      let stragglers =
        [ Fault.straggle 5 ~from:2 ~until:10 ~factor:8;
          Fault.straggle 11 ~from:4 ~until:12 ~factor:16 ]
      in
      let scenarios =
        [
          ("nominal (forced async)", Fault.profile ());
          ("link latency 2", Fault.profile ~link_latency:2 ());
          ("clock skew 4", Fault.profile ~skew:4 ());
          ("stragglers x8/x16", Fault.profile ~stragglers ());
          ("straggle+latency+skew", Fault.profile ~stragglers ~link_latency:2 ~skew:3 ());
        ]
      in
      List.iter
        (fun (sname, profile) ->
          let saved = !Async_engine.forced in
          Async_engine.forced := true;
          Fun.protect ~finally:(fun () -> Async_engine.forced := saved) @@ fun () ->
          let m = Metrics.create () in
          let faults = Fault.create ~seed:9 profile in
          let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
          let exact =
            t.Bfs_tree.dist = expected
            && Metrics.rounds m = sync_rounds
            && Metrics.messages m = sync_messages
          in
          let vt_per_round =
            float_of_int (Metrics.virtual_time m)
            /. float_of_int (max 1 (Metrics.rounds m))
          in
          fault_row ~experiment:"E-F4"
            ~scenario:(Printf.sprintf "%s %s" name sname)
            (("n", string_of_int (Digraph.n g))
            :: ("sync_rounds", string_of_int sync_rounds)
            :: ("vt_per_round", Printf.sprintf "%.2f" vt_per_round)
            :: ("exact", string_of_bool exact)
            :: metric_fields m);
          Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 16 name)
            (cell 5 (string_of_int (Digraph.n g)))
            (cell 24 sname)
            (cell 7 (string_of_int (Metrics.rounds m)))
            (cell 7 (string_of_int (Metrics.pulses m)))
            (cell 9 (string_of_int (Metrics.safe_messages m)))
            (cell 9 (string_of_int (Metrics.virtual_time m)))
            (cell 8 (Printf.sprintf "%.1f" vt_per_round))
            (cell 6 (if exact then "yes" else "NO")))
        scenarios)
    families

(* ------------------------------------------------------------------ *)
(* Wall-clock micro-benchmarks (Bechamel) *)

let micro () =
  header "micro: wall-clock micro-benchmarks of hot paths (Bechamel)" "informational";
  let open Bechamel in
  let g = Generators.k_tree ~seed:21 200 3 in
  let gw = Generators.bidirect ~seed:21 ~max_weight:9 g in
  let tests =
    [
      Test.make ~name:"dijkstra n=200 k-tree"
        (Staged.stage (fun () -> ignore (Shortest_path.dijkstra gw 0)));
      Test.make ~name:"min-fill n=200"
        (Staged.stage (fun () -> ignore (Heuristic.min_fill g)));
      Test.make ~name:"pa aggregate 8 parts"
        (Staged.stage (fun () ->
             let p200 = Generators.path 200 in
             let parts =
               Part.make p200
                 (Array.init 8 (fun i -> Array.init 25 (fun j -> (i * 25) + j)))
             in
             let m = Metrics.create () in
             ignore
               (Pa.aggregate parts ~op:( + )
                  ~value:(fun ~part:_ ~vertex -> vertex)
                  ~metrics:m ~label:"pa")));
      Test.make ~name:"product build colored-2"
        (Staged.stage (fun () ->
             ignore (Repro_core.Product.build g (Stateful.colored ~colors:2))));
      Test.make ~name:"hopcroft-karp grid 10x10"
        (Staged.stage (fun () -> ignore (Matching_ref.hopcroft_karp (Generators.grid 10 10))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "   %-32s %12.0f ns/run\n" name t
          | _ -> Printf.printf "   %-32s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* EObs: trace-layer cost — zero when disabled (Bechamel) *)

let eobs () =
  header "EObs: trace-layer overhead (Bechamel)"
    "with the null sink the guarded emit path allocates zero words and costs ~1 ns \
     per site; a full engine run with tracing off matches the untraced engine";
  let open Bechamel in
  let module Sink = Repro_obs.Sink in
  let module Recorder = Repro_obs.Recorder in
  (* the exact pattern every engine emit site compiles to: test the
     [enabled] flag, only then build the event. With the null sink the
     event constructor must never run, so the loop is allocation-free. *)
  let emit_loop sink =
    Staged.stage (fun () ->
        let tracing = sink.Sink.enabled in
        for i = 0 to 999 do
          if tracing then
            Sink.emit sink (Repro_obs.Event.Send { round = i; src = 0; dst = 1; words = 2 })
        done)
  in
  (* hard gate (run by CI chaos-smoke): with the sink disabled the emit
     loop must allocate exactly zero minor words — the dynamic twin of
     the static hot-alloc pass (DESIGN.md §3f). [Gc.minor_words] is
     [@@noalloc]/[@unboxed], so the measurement itself is invisible. *)
  let burn = Staged.unstage (emit_loop Sink.null) in
  burn ();
  let before = Gc.minor_words () in
  for _rep = 1 to 100 do
    burn ()
  done;
  let delta = Gc.minor_words () -. before in
  if delta <> 0.0 then (
    Printf.printf "   FAIL: disabled emit loop allocated %.0f minor words\n" delta;
    exit 1);
  Printf.printf "   zero-alloc gate: 100 x 1000 disabled emit sites, 0 minor words\n";
  (* same gate on the asynchronous executor (run by CI chaos-smoke): a
     disabled-but-counting sink is driven through a whole forced-async
     run under timing faults; the synchronizer's Pulse/Safe/Straggle
     emit sites must test [enabled] before constructing any event, so
     the counter must stay at zero — paired with the loop gate above,
     the async hot path builds no event values when tracing is off. *)
  let hits = ref 0 in
  let counting_disabled = { Sink.enabled = false; emit = (fun _ -> incr hits) } in
  let saved_sink = !Engine.trace_sink in
  Engine.trace_sink := counting_disabled;
  Async_engine.forced := true;
  Fun.protect ~finally:(fun () ->
      Engine.trace_sink := saved_sink;
      Async_engine.forced := false)
  @@ (fun () ->
  let g = Generators.k_tree ~seed:21 64 3 in
  let faults =
    Fault.create ~seed:3
      (Fault.profile
         ~stragglers:[ Fault.straggle 5 ~from:2 ~until:8 ~factor:4 ]
         ~link_latency:1 ~skew:2 ())
  in
  let m = Metrics.create () in
  ignore (Bfs_tree.build ~faults g ~root:0 ~metrics:m);
  if Metrics.pulses m = 0 then (
    Printf.printf "   FAIL: async gate run never pulsed\n";
    exit 1);
  if !hits <> 0 then (
    Printf.printf "   FAIL: disabled async run constructed %d event(s)\n" !hits;
    exit 1));
  Printf.printf "   zero-alloc gate: forced-async run, sink disabled, 0 events built\n";
  let recorder = Recorder.create ~capacity:(1 lsl 16) () in
  let tests =
    [
      Test.make ~name:"1000 emit sites, sink disabled" (emit_loop Sink.null);
      Test.make ~name:"1000 emit sites, recording" (emit_loop (Recorder.sink recorder));
      Test.make ~name:"bfs n=200 k-tree, tracing off"
        (Staged.stage (fun () ->
             let g = Generators.k_tree ~seed:21 200 3 in
             let m = Metrics.create () in
             ignore (Bfs_tree.build g ~root:0 ~metrics:m)));
      Test.make ~name:"bfs n=200 k-tree, async, tracing off"
        (Staged.stage (fun () ->
             Async_engine.forced := true;
             Fun.protect ~finally:(fun () -> Async_engine.forced := false)
               (fun () ->
                 let g = Generators.k_tree ~seed:21 200 3 in
                 let m = Metrics.create () in
                 ignore (Bfs_tree.build g ~root:0 ~metrics:m))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun (unit_name, instance) ->
      List.iter
        (fun test ->
          let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
          Hashtbl.iter
            (fun name raw ->
              let ols =
                Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
              in
              let est = Analyze.one ols instance raw in
              match Analyze.OLS.estimates est with
              | Some [ t ] -> Printf.printf "   %-36s %12.1f %s/run\n" name t unit_name
              | _ -> Printf.printf "   %-36s (no estimate)\n" name)
            results)
        tests)
    [
      ("ns", Toolkit.Instance.monotonic_clock);
      ("mw", Toolkit.Instance.minor_allocated);
    ]

(* ------------------------------------------------------------------ *)
(* E-S1: label serving — store size vs the Theorem-2 bound and batch
   query throughput with the hot-pair cache. Rows flush to
   BENCH_serve.json (same shape as BENCH_faults.json) so CI can gate
   on size ratios and warm-vs-cold throughput without scraping. *)

let serve_rows : string list ref = ref []

let serve_row ~scenario fields =
  let all = ("experiment", "\"E-S1\"") :: ("scenario", Printf.sprintf "%S" scenario) :: fields in
  serve_rows :=
    Printf.sprintf "    {%s}"
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) all))
    :: !serve_rows

let flush_serve_json () =
  if !serve_rows <> [] then begin
    let oc = open_out "BENCH_serve.json" in
    output_string oc "{\n  \"rows\": [\n";
    output_string oc (String.concat ",\n" (List.rev !serve_rows));
    output_string oc "\n  ]\n}\n";
    close_out oc;
    Printf.printf "\nwrote BENCH_serve.json (%d rows)\n" (List.length !serve_rows)
  end

let es1 () =
  header "E-S1: label serving — store size and query throughput (Theorem 2 deployed)"
    "binary store >= 4x smaller than the legacy text format on the E2b instances, \
     bits/label tracking tau^2 log^2 n; warm hot-pair cache >= cold throughput";
  let e2b_instance (family, n) =
    let g =
      match family with
      | `Ptk -> Generators.bidirect ~seed:n ~max_weight:9 (ptk ~seed:n n 3)
      | `Wheel -> Generators.wheel n
    in
    let report, _ = decompose_measured ~seed:2 g in
    let labels = Dl.build g report.Build.decomposition ~metrics:(Metrics.create ()) in
    let name = match family with `Ptk -> "partial 3-tree" | `Wheel -> "heavy wheel" in
    (name, n, g, labels)
  in
  let built =
    List.map e2b_instance
      [ (`Ptk, 128); (`Ptk, 256); (`Ptk, 512); (`Wheel, 128); (`Wheel, 256); (`Wheel, 512) ]
  in
  table_header
    [
      cell 14 "family"; cell 5 "n"; cell 4 "tau"; cell 9 "store B"; cell 9 "text B";
      cell 6 "ratio"; cell 11 "bits/label"; cell 13 "t^2lg^2n bits";
    ];
  List.iter
    (fun (name, n, g, labels) ->
      let bin = Filename.temp_file "bench_serve" ".bin" in
      let txt = Filename.temp_file "bench_serve" ".txt" in
      Store.save bin labels;
      Dl.save_text txt labels;
      let bin_size = Store.byte_size (Store.open_ bin) in
      let txt_size =
        let ic = open_in_bin txt in
        let s = in_channel_length ic in
        close_in ic;
        s
      in
      Sys.remove bin;
      Sys.remove txt;
      let tau = Heuristic.degeneracy g in
      let ratio = float_of_int txt_size /. float_of_int bin_size in
      let bits_per_label = 8.0 *. float_of_int bin_size /. float_of_int n in
      let bound = float_of_int (tau * tau) *. log2f n *. log2f n in
      serve_row
        ~scenario:(Printf.sprintf "%s n=%d size" name n)
        [
          ("n", string_of_int n);
          ("tau", string_of_int tau);
          ("store_bytes", string_of_int bin_size);
          ("text_bytes", string_of_int txt_size);
          ("text_over_store", Printf.sprintf "%.2f" ratio);
          ("bits_per_label", Printf.sprintf "%.1f" bits_per_label);
          ("bound_bits", Printf.sprintf "%.0f" bound);
        ];
      Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 14 name)
        (cell 5 (string_of_int n))
        (cell 4 (string_of_int tau))
        (cell 9 (string_of_int bin_size))
        (cell 9 (string_of_int txt_size))
        (cell 6 (Printf.sprintf "%.2fx" ratio))
        (cell 11 (Printf.sprintf "%.1f" bits_per_label))
        (cell 13 (Printf.sprintf "%.0f" bound)))
    built;
  (* throughput: a 10^5-query stream per instance, 80% drawn from a
     64-pair hot set (what the LRU is for), cold = cache disabled vs
     warm = 4096-entry cache pre-warmed by one pass. Latency
     percentiles are over 64-query batches — single queries sit at the
     clock's resolution. *)
  Printf.printf "\n";
  table_header
    [
      cell 14 "family"; cell 5 "n"; cell 5 "mode"; cell 10 "queries/s"; cell 9 "p50 us/q";
      cell 9 "p99 us/q"; cell 8 "hits"; cell 8 "misses";
    ];
  let n_queries = 100_000 in
  let make_queries n cdl rng =
    let hot =
      Array.init 64 (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    Array.init n_queries (fun _ ->
        let u, v =
          if Random.State.int rng 100 < 80 then hot.(Random.State.int rng 64)
          else (Random.State.int rng n, Random.State.int rng n)
        in
        match cdl with
        | Some q_size when Random.State.bool rng ->
            Query.Cdl { u; v; q = Random.State.int rng q_size }
        | _ -> Query.Dist { u; v })
  in
  let run_stream src queries cache =
    let nq = Array.length queries in
    let nbatches = (nq + 63) / 64 in
    let lat = Array.make nbatches 0.0 in
    let t0 = Unix.gettimeofday () in
    for b = 0 to nbatches - 1 do
      let lo = b * 64 and hi = min nq ((b + 1) * 64) in
      let bt = Unix.gettimeofday () in
      for i = lo to hi - 1 do
        ignore (Query.answer ~cache src queries.(i))
      done;
      lat.(b) <- (Unix.gettimeofday () -. bt) *. 1e6 /. float_of_int (hi - lo)
    done;
    let total = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    (float_of_int nq /. total, lat.(nbatches / 2), lat.(nbatches * 99 / 100))
  in
  let throughput (name, n, _, labels) ~cdl =
    let bin = Filename.temp_file "bench_serve" ".bin" in
    (match cdl with
    | Some (spec, cdl_labels) ->
        Store.save bin labels ~cdl:(spec.Stateful.q_size, spec.Stateful.start, cdl_labels)
    | None -> Store.save bin labels);
    let st = Store.open_ bin in
    let src = Query.of_store st in
    let rng = Random.State.make [| n; 0x51 |] in
    let queries =
      make_queries n (Option.map (fun (s, _) -> s.Stateful.q_size) cdl) rng
    in
    let arms =
      [ ("cold", Cache.create 0); ("warm", Cache.create 4096) ]
    in
    List.iter
      (fun (mode, cache) ->
        if Cache.capacity cache > 0 then begin
          (* warm the cache with one untimed pass, then zero counters *)
          Array.iter (fun q -> ignore (Query.answer ~cache src q)) queries;
          Cache.flush cache (Metrics.create ())
        end;
        let qps, p50, p99 = run_stream src queries cache in
        serve_row
          ~scenario:(Printf.sprintf "%s n=%d %s" name n mode)
          [
            ("n", string_of_int n);
            ("queries", string_of_int n_queries);
            ("cdl_mix", string_of_bool (cdl <> None));
            ("qps", Printf.sprintf "%.0f" qps);
            ("p50_us", Printf.sprintf "%.3f" p50);
            ("p99_us", Printf.sprintf "%.3f" p99);
            ("cache_hits", string_of_int (Cache.hits cache));
            ("cache_misses", string_of_int (Cache.misses cache));
            ("cache_evictions", string_of_int (Cache.evictions cache));
          ];
        Printf.printf "   %s | %s | %s | %s | %s | %s | %s | %s\n" (cell 14 name)
          (cell 5 (string_of_int n))
          (cell 5 mode)
          (cell 10 (Printf.sprintf "%.0f" qps))
          (cell 9 (Printf.sprintf "%.3f" p50))
          (cell 9 (Printf.sprintf "%.3f" p99))
          (cell 8 (string_of_int (Cache.hits cache)))
          (cell 8 (string_of_int (Cache.misses cache))))
      arms;
    Sys.remove bin
  in
  List.iter (fun inst -> throughput inst ~cdl:None) built;
  (* one mixed DIST+CDL instance: hash-colored edges, count:1 constraint *)
  let name, n, g, labels = e2b_instance (`Ptk, 128) in
  let g = Digraph.with_labels g (fun e -> Hashtbl.hash (e.Digraph.id, 0x5e3) mod 2) in
  let spec = Stateful.count ~limit:1 in
  let c = Cdl.build ~seed:2 g spec ~metrics:(Metrics.create ()) in
  throughput (name ^ " +cdl", n, g, labels) ~cdl:(Some (spec, Cdl.labels c))

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2a", e2a); ("E2b", e2b); ("E3", e3); ("E4", e4);
    ("E5a", e5a); ("E5b", e5b); ("E6a", e6a); ("E6b", e6b); ("E6c", e6c); ("E6d", e6d);
    ("E7", e7); ("E8", e8); ("EF1", ef1); ("EF2", ef2); ("EF3", ef3); ("EF4", ef4);
    ("EObs", eobs);
    ("ES1", es1);
    ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let selected =
    if requested = [] then experiments
    else
      List.filter
        (fun (name, _) ->
          List.exists (fun r -> String.lowercase_ascii r = String.lowercase_ascii name) requested)
        experiments
  in
  Printf.printf
    "Fully Polynomial-Time Distributed Computation in Low-Treewidth Graphs\n";
  Printf.printf
    "reproduction experiment harness (rounds are simulated CONGEST rounds)\n";
  List.iter (fun (_, f) -> f ()) selected;
  flush_fault_json ();
  flush_serve_json ();
  Printf.printf "\nAll experiments completed.\n"
