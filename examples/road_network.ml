(* Road-network routing: exact shortest paths on a city-like grid with a
   few arterial shortcuts, using distance labeling (Theorems 1-2).

   Road networks are a textbook low-treewidth workload (the paper's
   motivation cites [MSJ19]: real-world road graphs have small treewidth).
   We model a 10x10 street grid with random travel times plus diagonal
   "highways", then answer origin-destination queries from labels and
   compare the query cost against re-running a distributed Bellman-Ford
   for every query.

   Run with: dune exec examples/road_network.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Bellman_ford = Repro_congest.Bellman_ford
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Sssp = Repro_core.Sssp

let () =
  let rows = 10 and cols = 10 in
  let grid = Generators.grid rows cols in
  let rng = Random.State.make [| 2024 |] in
  (* streets: travel time 1..9; highways: a few long chords, time 2 *)
  let streets =
    Array.to_list (Digraph.edges grid)
    |> List.map (fun e ->
           (e.Digraph.src, e.Digraph.dst, 1 + Random.State.int rng 9))
  in
  let highways = [ (0, 55, 2); (9, 44, 2); (90, 35, 2); (99, 22, 2) ] in
  let g = Digraph.create ~directed:false (rows * cols) (streets @ highways) in
  Format.printf "road network: %a@." Digraph.pp g;

  let metrics = Metrics.create () in
  let report = Build.decompose g ~metrics in
  let labels = Dl.build g report.Build.decomposition ~metrics in
  Format.printf "preprocessing done in %d simulated rounds@." (Metrics.rounds metrics);

  (* one SSSP broadcast from a depot: every intersection learns its
     travel time from the depot *)
  let depot = 0 in
  let r = Sssp.run g labels ~source:depot ~metrics in
  Format.printf "depot broadcast: %d rounds; farthest intersection at time %d@."
    r.Sssp.broadcast_rounds
    (Array.fold_left max 0
       (Array.map (fun d -> if d >= Digraph.inf then 0 else d) r.Sssp.dist_from_source));

  (* point-to-point queries straight from labels: zero extra rounds
     beyond exchanging two labels *)
  Format.printf "@.origin-destination queries (label decode only):@.";
  List.iter
    (fun (u, v) ->
      let d = Labeling.decode labels.(u) labels.(v) in
      let reference = (Shortest_path.dijkstra g u).(v) in
      Format.printf "  %2d -> %2d: time %2d  [%s]@." u v d
        (if d = reference then "exact" else "MISMATCH"))
    [ (0, 99); (9, 90); (23, 87); (50, 5) ];

  (* hop-by-hop routing: after one neighbor label exchange, every
     intersection forwards greedily along exact shortest paths *)
  let table = Repro_core.Routing.prepare g labels ~metrics in
  (match Repro_core.Routing.route table ~src:0 ~dst:99 with
  | Some path ->
      Format.printf "@.routed path 0 -> 99: %s@."
        (String.concat " > " (List.map string_of_int path))
  | None -> Format.printf "@.no route 0 -> 99@.");

  (* contrast: answering one query with a fresh distributed Bellman-Ford *)
  let mb = Metrics.create () in
  ignore (Bellman_ford.run g ~source:0 ~metrics:mb);
  Format.printf "@.one Bellman-Ford query costs %d rounds; a label decode costs 0@."
    (Metrics.rounds mb)
