(* Constrained routing in a supply chain (Section 5: stateful walks).

   A directed logistics network where some legs are "risky" (label 1) and
   others "audited" (label 0). Three constrained-shortest-route questions,
   each a stateful walk constraint:

   - forbidden: cheapest route using no risky leg at all;
   - count-2:   cheapest route using at most 2 risky legs;
   - colored-2: cheapest route that never takes two risky (or two
                audited) legs in a row — alternation as load balancing.

   All three are answered by the same CDL machinery (Theorem 3).

   Run with: dune exec examples/supply_chain.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Heuristic = Repro_treedec.Heuristic
module Stateful = Repro_core.Stateful
module Product = Repro_core.Product
module Cdl = Repro_core.Cdl

let () =
  let base = Generators.k_tree ~seed:9 24 2 in
  let rng = Random.State.make [| 9 |] in
  let g =
    Digraph.with_labels
      (Generators.bidirect ~seed:9 ~max_weight:8 base)
      (fun _ -> if Random.State.float rng 1.0 < 0.35 then 1 else 0)
  in
  Format.printf "supply network: %a (labels: 1 = risky leg)@." Digraph.pp g;
  let dec = Heuristic.min_fill base in
  let origin = 0 and destination = 23 in

  let ask name spec ~answer_state =
    let metrics = Metrics.create () in
    let cdl = Cdl.build ~dec g spec ~metrics in
    let states = answer_state spec in
    let d = Cdl.sdec_min cdl ~qs:states ~src:origin ~dst:destination in
    Format.printf "%-34s cost %s  (%d simulated rounds)@." name
      (if d >= Digraph.inf then "impossible" else string_of_int d)
      (Metrics.rounds metrics);
    (* show the actual route for the first answerable state *)
    List.iter
      (fun q ->
        match
          Cdl.shortest_walk cdl ~q ~src:origin ~dst:destination ~metrics
        with
        | Some edges when Cdl.sdec cdl ~q ~src:origin ~dst:destination = d && d < Digraph.inf ->
            let legs =
              List.map
                (fun ei ->
                  let e = Digraph.edge g ei in
                  Printf.sprintf "%d->%d%s" e.Digraph.src e.Digraph.dst
                    (if e.Digraph.label = 1 then "!" else ""))
                edges
            in
            Format.printf "    route: %s@." (String.concat " " legs)
        | _ -> ())
      (match states with q :: _ -> [ q ] | [] -> []);
  in

  (* unconstrained reference *)
  let d_free = (Repro_graph.Shortest_path.dijkstra g origin).(destination) in
  Format.printf "unconstrained cheapest route: %d@.@." d_free;

  ask "no risky legs (forbidden)" Stateful.forbidden ~answer_state:(fun c ->
      [ Stateful.state_index_count c 0 ]);
  ask "at most 2 risky legs (count-2)" (Stateful.count ~limit:2) ~answer_state:(fun c ->
      [ Stateful.state_index_count c 0; Stateful.state_index_count c 1;
        Stateful.state_index_count c 2 ]);
  ask "alternating legs (colored-2)" (Stateful.colored ~colors:2) ~answer_state:(fun c ->
      [ Stateful.state_index_color c 0; Stateful.state_index_color c 1 ])
