(* Task assignment: exact bipartite maximum matching (Theorem 4).

   A sensor network where worker nodes must be paired with adjacent task
   nodes; the network is a subdivided 2-tree (subdividing keeps treewidth
   2 and guarantees bipartiteness). We compute a provably maximum
   assignment with the distributed divide-and-conquer algorithm and
   compare its simulated round count against the sequential
   augmenting-path baseline.

   Run with: dune exec examples/task_assignment.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Matching_ref = Repro_graph.Matching_ref
module Metrics = Repro_congest.Metrics
module Matching = Repro_core.Matching

let () =
  let g = Generators.subdivide (Generators.k_tree ~seed:3 30 2) in
  Format.printf "network: %a (bipartite: workers = original nodes, tasks = relay nodes)@."
    Digraph.pp g;

  let metrics = Metrics.create () in
  let r = Matching.run ~seed:3 g ~metrics in
  let optimal = Matching_ref.size (Matching_ref.hopcroft_karp g) in
  Format.printf "assignment size: %d (optimal: %d) — %s@." r.Matching.size optimal
    (if r.Matching.size = optimal then "maximum" else "SUBOPTIMAL");
  Format.printf "augmenting-path searches: %d over %d recursion levels@."
    r.Matching.augmentations r.Matching.levels;

  (* print a few assignments *)
  Format.printf "@.sample assignments:@.";
  let shown = ref 0 in
  Array.iteri
    (fun worker task ->
      if task > worker && !shown < 8 then begin
        Format.printf "  worker %2d <-> task %2d@." worker task;
        incr shown
      end)
    r.Matching.mate;

  Format.printf "@.ours: %d simulated rounds@." (Metrics.rounds metrics);
  let mb = Metrics.create () in
  let rb = Matching.sequential_baseline g ~metrics:mb in
  Format.printf "sequential baseline: %d rounds for the same size %d@."
    (Metrics.rounds mb) rb.Matching.size
