(* Shortest-cycle detection in a token-ring backbone (Theorem 5).

   A telecom backbone of small rings chained into a large ring: the girth
   is the cheapest cycle, the quantity that bounds how quickly a routing
   loop can come back to bite. We compute it with the exact-count-1
   stateful-walk reduction and check against the centralized reference,
   in both the randomized and the derandomized (per-edge) modes.

   Run with: dune exec examples/ring_girth.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Girth_ref = Repro_graph.Girth_ref
module Metrics = Repro_congest.Metrics
module Girth = Repro_core.Girth

let () =
  let g =
    Generators.random_weights ~seed:5 ~max_weight:7
      (Generators.ring_of_rings ~rings:5 ~ring_size:6)
  in
  Format.printf "backbone: %a@." Digraph.pp g;
  let reference = Girth_ref.girth g in
  Format.printf "centralized reference girth: %d@.@." reference;

  let run name compute =
    let m = Metrics.create () in
    let r = compute ~metrics:m in
    Format.printf "%-22s girth %3d, %2d trials, %8d rounds  [%s]@." name r.Girth.girth
      r.Girth.trials (Metrics.rounds m)
      (if r.Girth.girth = reference then "exact"
       else if r.Girth.girth > reference then "upper bound"
       else "MISMATCH")
  in
  run "randomized (charged)" (fun ~metrics ->
      Girth.undirected ~mode:`Charged ~repeats:8 ~seed:1 g ~metrics);
  run "derandomized per-edge" (fun ~metrics ->
      Girth.undirected ~mode:`PerEdge g ~metrics);

  (* directed variant: orient the rings and re-ask *)
  let gd = Generators.bidirect ~seed:6 ~max_weight:7 (Generators.ring_of_rings ~rings:5 ~ring_size:6) in
  let m = Metrics.create () in
  let rd = Girth.directed gd ~metrics:m in
  Format.printf "directed backbone:     girth %3d (reference %d), %8d rounds@."
    rd.Girth.girth (Girth_ref.girth gd) (Metrics.rounds m)
