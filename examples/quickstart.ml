(* Quickstart: the full pipeline on one small graph.

   1. generate a low-treewidth graph,
   2. build a tree decomposition with the distributed algorithm (Thm 1),
   3. construct exact distance labels (Thm 2),
   4. answer distance queries from labels alone,
   and print the simulated CONGEST round counts at each step.

   Run with: dune exec examples/quickstart.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl

let () =
  (* a weighted partial 2-tree on 48 vertices *)
  let g =
    Generators.random_weights ~seed:7 ~max_weight:9
      (Generators.partial_k_tree ~seed:7 48 2 ~keep:0.7)
  in
  Format.printf "graph: %a@." Digraph.pp g;

  (* step 1: distributed tree decomposition *)
  let metrics = Metrics.create () in
  let report = Build.decompose g ~metrics in
  let dec = report.Build.decomposition in
  Format.printf "decomposition: %a (%s)@." Decomposition.pp dec
    (match Decomposition.validate dec with Ok () -> "valid" | Error e -> e);

  (* step 2: exact distance labels *)
  let labels = Dl.build g dec ~metrics in
  Format.printf "labels built; largest label = %d words@." (Dl.max_label_words labels);

  (* step 3: answer queries from labels only *)
  let queries = [ (0, 47); (3, 31); (12, 12); (40, 5) ] in
  List.iter
    (fun (u, v) ->
      let from_labels = Labeling.decode labels.(u) labels.(v) in
      let reference = (Shortest_path.dijkstra g u).(v) in
      Format.printf "d(%d,%d) = %d  [dijkstra: %d]  %s@." u v from_labels reference
        (if from_labels = reference then "ok" else "MISMATCH"))
    queries;

  Format.printf "@.simulated CONGEST cost:@.%a@." Metrics.pp metrics
