(* Facility placement: NP-hard optimization over a distributed tree
   decomposition (the [Li18]-style application the paper cites in
   Section 1.1).

   A utility wants to place the minimum number of service facilities in a
   low-treewidth network so that every node is adjacent to (or is) a
   facility — a minimum dominating set. We build the decomposition with
   the paper's distributed algorithm (Theorem 1), convert it to nice
   form, and run the bottom-up DP whose communication is one table
   exchange per level and whose local work is exponential only in the
   width. We also place the minimum number of monitors covering every
   link (minimum vertex cover, via maximum independent set).

   Run with: dune exec examples/facility_placement.exe *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Nice = Repro_treedec.Nice
module Build = Repro_treedec.Build
module Dp = Repro_core.Dp

let () =
  let g = Generators.partial_k_tree ~seed:17 36 2 ~keep:0.6 in
  Format.printf "network: %a@." Digraph.pp g;

  (* distributed decomposition; fall back to min-fill if the SEP-built
     width is too large for the exponential-in-width DP table *)
  let metrics = Metrics.create () in
  let report = Build.decompose ~seed:17 g ~metrics in
  let dec =
    if Decomposition.width report.Build.decomposition <= 10 then
      report.Build.decomposition
    else Heuristic.min_fill g
  in
  let nice = Nice.of_decomposition dec in
  Format.printf "decomposition width %d -> nice form with %d nodes@."
    (Decomposition.width dec) (Nice.size nice);

  let facilities = Dp.min_dominating_set g nice ~metrics in
  Format.printf "@.minimum facilities (dominating set): %d@." facilities.Dp.value;
  Format.printf "  place at: %s@."
    (String.concat ", " (List.map string_of_int facilities.Dp.witness));

  let monitors = Dp.min_vertex_cover g nice ~metrics in
  Format.printf "minimum link monitors (vertex cover): %d@." monitors.Dp.value;

  let independent = Dp.max_weight_independent_set g nice ~metrics in
  Format.printf "maximum non-interfering set (independent set): %d@."
    independent.Dp.value;

  (* connect a few priority sites at minimum cable cost (Steiner tree);
     the partition-state DP needs a narrower decomposition, so use the
     min-fill one (width = treewidth = 2 here) *)
  let narrow = Nice.of_decomposition (Heuristic.min_fill g) in
  let sites = [ 0; 9; 18; 27; 35 ] in
  let cable = Dp.steiner_tree g narrow ~terminals:sites ~metrics in
  Format.printf "cheapest cable plan connecting sites %s: %d links@."
    (String.concat "," (List.map string_of_int sites))
    (List.length cable.Dp.witness);

  Format.printf "@.simulated CONGEST cost:@.%a@." Metrics.pp metrics
