(* Build a distributed tree decomposition of a generated graph and report
   width / depth / validity / simulated CONGEST rounds. *)

module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Build = Repro_treedec.Build
open Cmdliner

let run g show_bags fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: decompose the certified
     reachable component only *)
  let g =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> g
    | Some (g', _, _) -> g'
  in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  let dec = report.Build.decomposition in
  Format.printf "%a@." Decomposition.pp dec;
  (match Decomposition.validate dec with
  | Ok () -> Format.printf "validity: ok@."
  | Error e -> Format.printf "validity: FAILED (%s)@." e);
  Format.printf "degeneracy (treewidth lower bound): %d@."
    (Heuristic.degeneracy (Repro_graph.Digraph.skeleton g));
  Format.printf "min-fill width (centralized baseline): %d@."
    (Heuristic.treewidth_upper (Repro_graph.Digraph.skeleton g));
  Format.printf "max SEP parameter t: %d, recursion levels: %d@." report.Build.max_t
    report.Build.levels;
  Cli_common.print_metrics ~obs ~name:"treedec" m;
  if show_bags then
    List.iter
      (fun key ->
        Format.printf "bag [%s]: {%s}@."
          (String.concat "." (List.map string_of_int key))
          (String.concat ","
             (List.map string_of_int (Array.to_list (Decomposition.bag dec key)))))
      (List.sort compare (Decomposition.keys dec))

let show_bags_t =
  Arg.(value & flag & info [ "show-bags" ] ~doc:"Print every bag of the decomposition.")

let cmd =
  Cmd.v
    (Cmd.info "treedec_cli" ~doc:"Distributed tree decomposition (Theorem 1)")
    Term.(
      const run $ Cli_common.graph_t $ show_bags_t $ Cli_common.fault_config_t
      $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
