(* Weighted girth of a generated graph (Theorem 5). *)

module Digraph = Repro_graph.Digraph
module Girth_ref = Repro_graph.Girth_ref
module Metrics = Repro_congest.Metrics
module Girth = Repro_core.Girth
open Cmdliner

let mode_conv =
  let parse = function
    | "charged" -> Ok `Charged
    | "faithful" -> Ok `Faithful
    | "per-edge" -> Ok `PerEdge
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with `Charged -> "charged" | `Faithful -> "faithful" | `PerEdge -> "per-edge")
  in
  Arg.conv (parse, print)

let run g mode fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: certify the reachable component
     first, then compute the girth of the certified subgraph fault-free *)
  let g, fc =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> (g, fc)
    | Some (g', _, _) -> (g', { fc with Cli_common.faults = None })
  in
  let faults = fc.Cli_common.faults and reliable = fc.Cli_common.reliable in
  let m = Metrics.create () in
  let r =
    if Digraph.directed g then Girth.directed ?faults ~reliable g ~metrics:m
    else Girth.undirected ~mode ?faults ~reliable g ~metrics:m
  in
  let reference = Girth_ref.girth g in
  let show v = if v >= Digraph.inf then "inf" else string_of_int v in
  Format.printf "girth: %s (centralized reference: %s) — %s@." (show r.Girth.girth)
    (show reference)
    (if r.Girth.girth = reference then "exact"
     else if r.Girth.girth > reference then "upper bound (increase trials)"
     else "MISMATCH");
  Format.printf "trials: %d@." r.Girth.trials;
  Cli_common.print_metrics ~obs ~name:"girth" m;
  (* oracle validation: below the reference is always wrong; when a fault
     profile was requested any deviation means reliability failed *)
  if r.Girth.girth < reference || (faults <> None && r.Girth.girth <> reference) then exit 1

let mode_t =
  Arg.(
    value
    & opt mode_conv `Charged
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Undirected-case mode: charged, faithful, or per-edge (deterministic).")

let cmd =
  Cmd.v
    (Cmd.info "girth_cli" ~doc:"Weighted girth (Theorem 5)")
    Term.(const run $ Cli_common.graph_t $ mode_t $ Cli_common.fault_config_t $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
