(* Exact bipartite maximum matching on a generated graph. *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Matching_ref = Repro_graph.Matching_ref
module Metrics = Repro_congest.Metrics
module Matching = Repro_core.Matching
open Cmdliner

let run g subdivide baseline fc obs =
  Cli_common.setup_obs obs;
  let g = if subdivide then Generators.subdivide g else g in
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: match within the certified
     reachable component only *)
  let g =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> g
    | Some (g', _, _) -> g'
  in
  if not (Repro_graph.Bipartite.is_bipartite g) then begin
    Format.printf
      "graph is not bipartite — pass --subdivide to use its bipartite subdivision@.";
    exit 1
  end;
  let m = Metrics.create () in
  let r = Matching.run g ~metrics:m in
  let hk = Matching_ref.size (Matching_ref.hopcroft_karp (Digraph.skeleton g)) in
  Format.printf "matching size: %d (Hopcroft-Karp: %d) — %s@." r.Matching.size hk
    (if r.Matching.size = hk then "exact" else "MISMATCH");
  Format.printf "augmentations: %d, recursion levels: %d@." r.Matching.augmentations
    r.Matching.levels;
  Cli_common.print_metrics ~obs ~name:"matching" m;
  if baseline then begin
    let mb = Metrics.create () in
    let rb = Matching.sequential_baseline g ~metrics:mb in
    Format.printf "baseline (sequential augmentation): size %d, %d rounds@."
      rb.Matching.size (Metrics.rounds mb);
    Cli_common.metrics_json obs ~name:"baseline" mb
  end

let subdivide_t =
  Arg.(value & flag & info [ "subdivide" ] ~doc:"Subdivide every edge (makes any graph bipartite).")

let baseline_t =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Also run the sequential-augmentation baseline.")

let cmd =
  Cmd.v
    (Cmd.info "matching_cli" ~doc:"Exact bipartite maximum matching (Theorem 4)")
    Term.(
      const run $ Cli_common.graph_t $ subdivide_t $ baseline_t
      $ Cli_common.fault_config_t $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
