(* Optimal independent set / vertex cover / dominating set / Steiner tree
   over the distributed tree decomposition (the Li18-style application). *)

module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Nice = Repro_treedec.Nice
module Build = Repro_treedec.Build
module Dp = Repro_core.Dp
open Cmdliner

type problem = Mis | Vc | Domset | Steiner

let problem_conv =
  let parse = function
    | "mis" -> Ok Mis
    | "vc" -> Ok Vc
    | "domset" -> Ok Domset
    | "steiner" -> Ok Steiner
    | s -> Error (`Msg (Printf.sprintf "unknown problem %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with Mis -> "mis" | Vc -> "vc" | Domset -> "domset" | Steiner -> "steiner")
  in
  Arg.conv (parse, print)

let run g problem terminals width_cap fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: certify the reachable component,
     then solve on the certified subgraph (terminal ids are remapped) *)
  let g, terminals =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> (g, terminals)
    | Some (g', _, new_of_old) ->
        let kept, lost = List.partition (fun t -> new_of_old.(t) >= 0) terminals in
        if lost <> [] then
          Format.printf "dropping unreachable terminal(s): {%s}@."
            (String.concat "," (List.map string_of_int lost));
        (g', List.map (fun t -> new_of_old.(t)) kept)
  in
  let metrics = Metrics.create () in
  let report = Build.decompose g ~metrics in
  let dec =
    if Decomposition.width report.Build.decomposition <= width_cap then
      report.Build.decomposition
    else begin
      Format.printf
        "distributed decomposition width %d exceeds the DP cap %d; using min-fill@."
        (Decomposition.width report.Build.decomposition)
        width_cap;
      Heuristic.min_fill (Digraph.skeleton g)
    end
  in
  let nice = Nice.of_decomposition dec in
  Format.printf "decomposition width %d, nice form with %d nodes@."
    (Decomposition.width dec) (Nice.size nice);
  let show name (r : int Dp.result) =
    Format.printf "%s = %d@.  witness: {%s}@.  largest DP table: %d words@." name
      r.Dp.value
      (String.concat "," (List.map string_of_int r.Dp.witness))
      r.Dp.table_words
  in
  (match problem with
  | Mis -> show "maximum independent set" (Dp.max_weight_independent_set g nice ~metrics)
  | Vc -> show "minimum vertex cover" (Dp.min_vertex_cover g nice ~metrics)
  | Domset -> show "minimum dominating set" (Dp.min_dominating_set g nice ~metrics)
  | Steiner ->
      let terminals =
        if terminals = [] then
          List.filter (fun v -> v mod 5 = 0) (List.init (Digraph.n g) Fun.id)
        else terminals
      in
      Format.printf "terminals: {%s}@."
        (String.concat "," (List.map string_of_int terminals));
      show "minimum Steiner tree weight" (Dp.steiner_tree g nice ~terminals ~metrics));
  Cli_common.print_metrics ~obs ~name:"dp" metrics

let problem_t =
  Arg.(
    value
    & opt problem_conv Domset
    & info [ "problem" ] ~docv:"P" ~doc:"Problem: mis, vc, domset, or steiner.")

let terminals_t =
  Arg.(
    value & opt_all int []
    & info [ "terminal" ] ~docv:"V" ~doc:"Steiner terminal (repeatable).")

let width_cap_t =
  Arg.(
    value & opt int 8
    & info [ "width-cap" ] ~docv:"W"
        ~doc:"Fall back to min-fill when the distributed width exceeds this.")

let cmd =
  Cmd.v
    (Cmd.info "dp_cli" ~doc:"NP-hard optimization over a tree decomposition")
    Term.(
      const run $ Cli_common.graph_t $ problem_t $ terminals_t $ width_cap_t
      $ Cli_common.fault_config_t $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
