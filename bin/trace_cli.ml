(* Inspect JSONL execution traces recorded with --trace: critical-path
   report (message-dependency DAG, longest chain, idle time, congested
   edges), Chrome trace-event export for Perfetto / chrome://tracing,
   and per-edge congestion CSV. *)

module Event = Repro_obs.Event
module Trace_io = Repro_obs.Trace_io
module Critical_path = Repro_obs.Critical_path
open Cmdliner

let load path =
  match Trace_io.read_jsonl ~path with
  | events -> Ok events
  | exception Event.Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg

let report trace top =
  Result.map
    (fun events ->
      let reports = Critical_path.analyze_all ~top events in
      if reports = [] then Format.printf "empty trace@."
      else
        List.iter
          (fun r -> Format.printf "@[<v>%a@]@." Critical_path.pp_report r)
          reports)
    (load trace)

let chrome trace out =
  Result.map
    (fun events ->
      Trace_io.write_chrome ~path:out events;
      Format.printf "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)@." out)
    (load trace)

let csv trace out =
  Result.map
    (fun events ->
      Trace_io.write_congestion_csv ~path:out events;
      Format.printf "wrote per-edge congestion CSV to %s@." out)
    (load trace)

let wrap t = Term.term_result' ~usage:false t

let trace_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file recorded with --trace.")

let top_t =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"K" ~doc:"How many idle nodes / congested edges to list.")

let out_t doc = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Critical-path report: longest message-dependency chain (makespan lower bound), \
          per-node idle time, top congested edges — one section per engine run")
    (wrap Term.(const report $ trace_t $ top_t))

let chrome_cmd =
  Cmd.v
    (Cmd.info "chrome"
       ~doc:
         "Export as Chrome trace-event JSON: one track per node, message arrows as flow \
          events; load in Perfetto or chrome://tracing")
    (wrap Term.(const chrome $ trace_t $ out_t "Chrome trace JSON file to write."))

let csv_cmd =
  Cmd.v
    (Cmd.info "csv" ~doc:"Export per-edge congestion aggregates as CSV")
    (wrap Term.(const csv $ trace_t $ out_t "CSV file to write."))

let cmd =
  Cmd.group
    (Cmd.info "trace_cli" ~doc:"Analyze execution traces recorded with --trace")
    [ report_cmd; chrome_cmd; csv_cmd ]

let () = exit (Cmd.eval cmd)
