(* Chaos smoke driver: sweep fault profiles — drops, duplication, delay,
   freeze and amnesia crashes — over BFS and the Bellman-Ford SSSP
   baseline on small k-trees, with the engine invariant auditor forced
   on, and check every output against its centralized oracle. Exits
   non-zero on the first mismatch (or audit violation, which raises).
   This is the CI job's entry point; see .github/workflows/ci.yml. *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Engine = Repro_congest.Engine
module Fault = Repro_congest.Fault
module Recovery = Repro_congest.Recovery
module Bfs_tree = Repro_congest.Bfs_tree
module Bellman_ford = Repro_congest.Bellman_ford
module Detector = Repro_congest.Detector
open Cmdliner

let profiles =
  [
    ("drop-heavy", Fault.profile ~drop:0.3 ~max_delay:1 ());
    ("dup-delay", Fault.profile ~duplicate:0.4 ~max_delay:3 ());
    ( "freeze-crash",
      Fault.profile ~drop:0.1 ~crashes:[ Fault.crash 2 ~from:3 ~until:15 ] () );
    ( "amnesia",
      Fault.profile
        ~crashes:[ Fault.crash 3 ~from:2 ~until:14 ~mode:Fault.Amnesia ]
        () );
    ( "amnesia-lossy",
      Fault.profile ~drop:0.15 ~duplicate:0.1 ~max_delay:1
        ~crashes:
          [
            Fault.crash 1 ~from:4 ~until:12 ~mode:Fault.Amnesia;
            Fault.crash 5 ~from:8 ~until:22 ~mode:Fault.Amnesia;
          ]
        () );
    ("corrupt-heavy", Fault.profile ~corrupt:0.3 ());
    ("corrupt-lossy", Fault.profile ~corrupt:0.2 ~drop:0.15 ~duplicate:0.1 ~max_delay:1 ());
    ( "partition-heal",
      Fault.profile ~drop:0.1
        ~partitions:[ Fault.partition ~from:0 ~heal:40 (Fault.Around [ 5 ]) ]
        () );
    (* timing profiles route through the asynchronous executor; bounded
       stalls and slowdowns preserve exactness by construction, so the
       same oracle checks apply (plus: pulses must have been charged) *)
    ( "straggler-sweep",
      Fault.profile ~drop:0.1
        ~stragglers:
          [
            Fault.straggle 2 ~from:3 ~until:9 ~factor:4;
            Fault.straggle 5 ~from:6 ~until:12;
          ]
        ~link_latency:2 () );
    ( "skewed-clock",
      Fault.profile ~duplicate:0.2 ~max_delay:2 ~skew:5 ~link_latency:3 () );
  ]

(* Non-healing partitions: exactness everywhere is impossible, so these
   run the detector-certified variants and are checked against the
   degraded oracle — verdict reachable-set vs {!Detector.oracle}, and
   distances vs the centralized answer on the graph minus the severed
   links. *)
let certified_profiles =
  [
    ("partition-node", Fault.profile ~partitions:[ Fault.partition ~from:0 (Fault.Around [ 7 ]) ] ());
    ( "partition-pair",
      Fault.profile ~corrupt:0.1
        ~partitions:[ Fault.partition ~from:0 (Fault.Around [ 3; 11 ]) ]
        () );
    (* an unbounded stall behaves as a crash-stop under the async
       executor: the detector must suspect the silent node and the
       certified run excise it *)
    ("stall-forever", Fault.profile ~stragglers:[ Fault.straggle 7 ~from:4 ] ~link_latency:1 ());
  ]

(* Deadline-paced degraded mode: a permanently slowed node blows the
   pulse deadline until every neighbor cuts it, the detector suspects
   the silence, and the certified run must excise exactly the chronic
   stragglers — the oracle cannot see heuristic cuts, so the expected
   reachable set is written out explicitly. *)
let deadline_profiles =
  [
    ( "deadline-cut",
      4,
      Fault.profile ~stragglers:[ Fault.straggle 7 ~from:2 ~factor:40 ] (),
      [ 7 ] );
  ]

(* [g] minus its permanently severed links and (under the async
   executor) the links of its forever-stalled nodes: the degraded
   ground truth *)
let prune_severed g f =
  let async = Fault.timing_active f in
  let dead v = async && Fault.eventually_stalled f v in
  let quads =
    Array.to_list (Digraph.edges g)
    |> List.filter (fun (e : Digraph.edge) ->
           (not (Fault.severed f ~src:e.src ~dst:e.dst))
           && (not (dead e.src))
           && not (dead e.dst))
    |> List.map (fun (e : Digraph.edge) -> (e.src, e.dst, e.weight, e.label))
  in
  Digraph.create_labeled ~directed:(Digraph.directed g) (Digraph.n g) quads

(* The certified contract covers the component the verdict certifies:
   an excised node's local output is unspecified (it may hold values
   legitimately learned before it stalled or was cut), so ground-truth
   distances are compared on the reachable set only. *)
let dist_ok ~reachable got want =
  Array.length got = Array.length want
  && Array.for_all Fun.id (Array.mapi (fun i r -> (not r) || got.(i) = want.(i)) reachable)

(* [g] minus every link touching [nodes] *)
let prune_nodes g nodes =
  let quads =
    Array.to_list (Digraph.edges g)
    |> List.filter (fun (e : Digraph.edge) ->
           (not (List.mem e.src nodes)) && not (List.mem e.dst nodes))
    |> List.map (fun (e : Digraph.edge) -> (e.src, e.dst, e.weight, e.label))
  in
  Digraph.create_labeled ~directed:(Digraph.directed g) (Digraph.n g) quads

let run seeds checkpoint_every only obs =
  Cli_common.setup_obs obs;
  Engine.audit_enabled := true;
  let wanted name = only = [] || List.mem name only in
  let failures = ref 0 in
  let total = Metrics.create () in
  let case ~graph ~profile_name ~seed label ok m =
    Format.printf "%-14s %-16s seed=%-3d %-12s %s (%d rounds, %d recoveries)@."
      graph profile_name seed label
      (if ok then "exact" else "MISMATCH")
      (Metrics.rounds m) (Metrics.recoveries m);
    Metrics.merge ~into:total m;
    if not ok then incr failures
  in
  let recovery = { Recovery.checkpoint_every } in
  List.iter
    (fun (gname, g) ->
      let skel = Digraph.skeleton g in
      List.iter
        (fun (pname, profile) ->
          if wanted pname then
            for seed = 1 to seeds do
              let faults () = Fault.create ~seed profile in
              (* a corrupt-only profile must never smuggle a garbled
                 payload past the transport's checksum *)
              let integrity m =
                profile.Fault.corrupt = 0.0
                || Metrics.rejected m = Metrics.corrupted m
              in
              (* timing profiles must actually have taken the async
                 path: pulses are charged only by the synchronizer *)
              let timing =
                profile.Fault.stragglers <> []
                || profile.Fault.link_latency > 0
                || profile.Fault.skew > 0
              in
              let async_ok m = (not timing) || Metrics.pulses m > 0 in
              let m = Metrics.create () in
              let t = Bfs_tree.build ~faults:(faults ()) ~recovery skel ~root:0 ~metrics:m in
              case ~graph:gname ~profile_name:pname ~seed "bfs"
                (t.Bfs_tree.dist = Traversal.bfs_undirected skel 0
                && (profile.Fault.crashes <> [] || integrity m)
                && async_ok m)
                m;
              let m = Metrics.create () in
              let d = Bellman_ford.run ~faults:(faults ()) ~recovery g ~source:0 ~metrics:m in
              case ~graph:gname ~profile_name:pname ~seed "sssp"
                (d = Shortest_path.dijkstra g 0
                && (profile.Fault.crashes <> [] || integrity m)
                && async_ok m)
                m
            done)
        profiles;
      List.iter
        (fun (pname, profile) ->
          if wanted pname then
            for seed = 1 to seeds do
              let faults () = Fault.create ~seed profile in
              let f = faults () in
              let oracle =
                Detector.oracle ~faults:f ~async:(Fault.timing_active f) skel ~root:0
              in
              let verdict_ok = function
                | Detector.Complete -> Array.for_all Fun.id oracle
                | Detector.Partial { reachable; _ } -> reachable = oracle
              in
              let m = Metrics.create () in
              let t, v = Bfs_tree.build_certified ~faults:f skel ~root:0 ~metrics:m in
              case ~graph:gname ~profile_name:pname ~seed "bfs/certified"
                (verdict_ok v
                && dist_ok ~reachable:oracle t.Bfs_tree.dist
                     (Traversal.bfs_undirected (prune_severed skel f) 0))
                m;
              let f = faults () in
              let m = Metrics.create () in
              let d, v = Bellman_ford.run_certified ~faults:f g ~source:0 ~metrics:m in
              case ~graph:gname ~profile_name:pname ~seed "sssp/certified"
                (verdict_ok v
                && dist_ok ~reachable:oracle d (Shortest_path.dijkstra (prune_severed g f) 0))
                m
            done)
        certified_profiles;
      List.iter
        (fun (pname, dl, profile, cut_nodes) ->
          if wanted pname then
            for seed = 1 to seeds do
              let saved = !Repro_congest.Async_engine.deadline in
              Repro_congest.Async_engine.deadline := dl;
              Fun.protect
                ~finally:(fun () -> Repro_congest.Async_engine.deadline := saved)
              @@ fun () ->
              let f = Fault.create ~seed profile in
              let expected =
                Array.init (Digraph.n skel) (fun v -> not (List.mem v cut_nodes))
              in
              let m = Metrics.create () in
              let t, v = Bfs_tree.build_certified ~faults:f skel ~root:0 ~metrics:m in
              case ~graph:gname ~profile_name:pname ~seed "bfs/deadline"
                ((match v with
                 | Detector.Partial { reachable; _ } -> reachable = expected
                 | Detector.Complete -> false)
                && dist_ok ~reachable:expected t.Bfs_tree.dist
                     (Traversal.bfs_undirected (prune_nodes skel cut_nodes) 0)
                && Metrics.pulses m > 0)
                m
            done)
        deadline_profiles)
    [
      ("ktree-24-2", Generators.random_weights ~seed:5 ~max_weight:9 (Generators.k_tree ~seed:5 24 2));
      ( "partial-32-3",
        Generators.random_weights ~seed:7 ~max_weight:9
          (Generators.partial_k_tree ~seed:7 32 3 ~keep:0.6) );
    ];
  if !failures > 0 then begin
    Format.printf "%d chaos case(s) FAILED@." !failures;
    exit 1
  end;
  Format.printf "all chaos cases exact (audit on)@.";
  Cli_common.metrics_json obs ~name:"chaos-total" total

let seeds_t =
  Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Fault seeds per profile.")

let checkpoint_every_t =
  Arg.(
    value & opt int 4
    & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Recovery checkpoint interval.")

let only_t =
  Arg.(
    value & opt_all string []
    & info [ "profile" ] ~docv:"NAME"
        ~doc:"Run only the named fault profile (repeatable; default: all).")

let cmd =
  Cmd.v
    (Cmd.info "chaos_cli" ~doc:"Fault-profile sweep with oracle checks (CI chaos smoke)")
    Term.(const run $ seeds_t $ checkpoint_every_t $ only_t $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
