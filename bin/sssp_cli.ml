(* Exact SSSP / distance labeling on a generated graph, with the
   Bellman-Ford CONGEST baseline for comparison. *)

module Digraph = Repro_graph.Digraph
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Bellman_ford = Repro_congest.Bellman_ford
module Build = Repro_treedec.Build
module Dl = Repro_core.Dl
module Sssp = Repro_core.Sssp
open Cmdliner

let run g source =
  Cli_common.print_graph_summary g;
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  Format.printf "max label size: %d words@." (Dl.max_label_words labels);
  let r = Sssp.run g labels ~source ~metrics:m in
  let expected = Shortest_path.dijkstra g source in
  let ok = r.Sssp.dist_from_source = expected in
  Format.printf "SSSP from %d: %s (broadcast %d rounds)@." source
    (if ok then "exact" else "MISMATCH vs Dijkstra")
    r.Sssp.broadcast_rounds;
  Format.printf "ours:@ %a@." Metrics.pp m;
  let mb = Metrics.create () in
  let bf = Bellman_ford.run g ~source ~metrics:mb in
  Format.printf "baseline Bellman-Ford: %s, %d rounds@."
    (if bf = expected then "exact" else "MISMATCH")
    (Metrics.rounds mb)

let source_t =
  Arg.(value & opt int 0 & info [ "source" ] ~docv:"V" ~doc:"Source vertex.")

let cmd =
  Cmd.v
    (Cmd.info "sssp_cli" ~doc:"Exact SSSP via distance labeling (Theorem 2)")
    Term.(const run $ Cli_common.graph_t $ source_t)

let () = exit (Cmd.eval cmd)
