(* Exact SSSP / distance labeling on a generated graph, with the
   Bellman-Ford CONGEST baseline for comparison. Optional fault
   injection (--drop/--dup/--delay/--fault-seed) applies to the
   message-level phases; exits non-zero when an output fails its
   oracle. *)

module Digraph = Repro_graph.Digraph
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Bellman_ford = Repro_congest.Bellman_ford
module Build = Repro_treedec.Build
module Dl = Repro_core.Dl
module Sssp = Repro_core.Sssp
open Cmdliner

let run g source fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: certify the reachable component
     first, then run the pipeline on it (fault-free — the adversary's
     node ids refer to the original graph) *)
  let g, source, fc =
    match Cli_common.certified_subgraph fc obs g ~root:source with
    | None -> (g, source, fc)
    | Some (g', _, new_of_old) ->
        (g', new_of_old.(source), { fc with Cli_common.faults = None })
  in
  let faults = fc.Cli_common.faults
  and reliable = fc.Cli_common.reliable
  and recovery = fc.Cli_common.recovery in
  let expected = Shortest_path.dijkstra g source in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  Format.printf "max label size: %d words@." (Dl.max_label_words labels);
  let ok =
    match Sssp.run ?faults ~reliable g labels ~source ~metrics:m with
    | r ->
        let ok = r.Sssp.dist_from_source = expected in
        Format.printf "SSSP from %d: %s (broadcast %d rounds)@." source
          (if ok then "exact" else "MISMATCH vs Dijkstra")
          r.Sssp.broadcast_rounds;
        ok
    | exception Invalid_argument msg ->
        (* an unreliable label stream can arrive truncated *)
        Format.printf "SSSP from %d: FAILED under faults (%s)@." source msg;
        false
  in
  Format.printf "ours:@ %a@." Metrics.pp m;
  Cli_common.metrics_json obs ~name:"ours" m;
  let mb = Metrics.create () in
  let bf = Bellman_ford.run ?faults ~reliable ?recovery g ~source ~metrics:mb in
  let bf_ok = bf = expected in
  Format.printf "baseline Bellman-Ford: %s, %d rounds@."
    (if bf_ok then "exact" else "MISMATCH")
    (Metrics.rounds mb);
  if Metrics.retransmissions mb > 0 then
    Format.printf "baseline transport: %d retransmissions over %d dropped / %d duplicated@."
      (Metrics.retransmissions mb) (Metrics.dropped mb) (Metrics.duplicated mb);
  Cli_common.metrics_json obs ~name:"bellman-ford" mb;
  if not (ok && bf_ok) then exit 1

let source_t =
  Arg.(value & opt int 0 & info [ "source" ] ~docv:"V" ~doc:"Source vertex.")

let cmd =
  Cmd.v
    (Cmd.info "sssp_cli" ~doc:"Exact SSSP via distance labeling (Theorem 2)")
    Term.(
      const run $ Cli_common.graph_t $ source_t $ Cli_common.fault_config_t
      $ Cli_common.obs_t)

let () = exit (Cmd.eval cmd)
