(* Shared cmdliner terms: graph family selection, fault injection,
   observability (tracing/replay) and metrics printing. *)

module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Fault = Repro_congest.Fault
module Recorder = Repro_obs.Recorder
module Trace_io = Repro_obs.Trace_io
module Replay = Repro_obs.Replay
open Cmdliner

type family =
  | Path
  | Cycle
  | Grid
  | Ktree
  | Partial_ktree
  | Apex
  | Ring_of_rings
  | Gnp

let family_conv =
  let parse = function
    | "path" -> Ok Path
    | "cycle" -> Ok Cycle
    | "grid" -> Ok Grid
    | "ktree" -> Ok Ktree
    | "partial-ktree" -> Ok Partial_ktree
    | "apex" -> Ok Apex
    | "ring-of-rings" -> Ok Ring_of_rings
    | "gnp" -> Ok Gnp
    | s -> Error (`Msg (Printf.sprintf "unknown family %S" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | Path -> "path"
      | Cycle -> "cycle"
      | Grid -> "grid"
      | Ktree -> "ktree"
      | Partial_ktree -> "partial-ktree"
      | Apex -> "apex"
      | Ring_of_rings -> "ring-of-rings"
      | Gnp -> "gnp")
  in
  Arg.conv (parse, print)

let family_t =
  Arg.(
    value
    & opt family_conv Ktree
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Graph family: path, cycle, grid, ktree, partial-ktree, apex, \
           ring-of-rings, gnp.")

let n_t = Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of vertices.")
let k_t = Arg.(value & opt int 3 & info [ "k"; "param" ] ~docv:"K" ~doc:"Treewidth parameter k.")
let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let weights_t =
  Arg.(
    value & opt int 0
    & info [ "max-weight" ] ~docv:"W"
        ~doc:"Random edge weights in 1..W (0 = unit weights).")

let input_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "input" ] ~docv:"FILE"
        ~doc:"Load the graph from FILE (Io format) instead of generating one.")

let directed_t =
  Arg.(
    value & flag
    & info [ "directed" ] ~doc:"Bidirect the graph with independent weights per direction.")

let build_graph input family n k seed max_weight directed =
  let base =
    match input with
    | Some path -> Repro_graph.Io.load path
    | None ->
    match family with
    | Path -> Generators.path n
    | Cycle -> Generators.cycle n
    | Grid ->
        let side = max 2 (int_of_float (sqrt (float_of_int n))) in
        Generators.grid side side
    | Ktree -> Generators.k_tree ~seed n k
    | Partial_ktree -> Generators.partial_k_tree ~seed n k ~keep:0.6
    | Apex -> Generators.apex_cliques ~cliques:(max 1 (n / (k + 1))) ~size:k
    | Ring_of_rings -> Generators.ring_of_rings ~rings:(max 3 (n / 5)) ~ring_size:5
    | Gnp -> Generators.gnp_connected ~seed n (4.0 /. float_of_int n)
  in
  let weighted =
    if max_weight > 0 then Generators.random_weights ~seed ~max_weight base else base
  in
  if directed then
    Generators.bidirect ~seed ~max_weight:(max 1 max_weight) weighted
  else weighted

let graph_t =
  Term.(
    const build_graph $ input_t $ family_t $ n_t $ k_t $ seed_t $ weights_t $ directed_t)

(* ------------------------------------------------------------------ *)
(* Fault injection (DESIGN.md "Fault model"): message-level phases run
   under a seeded adversary, over the reliable transport unless
   --unreliable asks for raw faulty links. *)

type fault_config = {
  faults : Fault.t option;
  reliable : bool;
  recovery : Repro_congest.Recovery.config option;
  detector_period : int;  (* heartbeat period of the degraded-mode probe *)
  max_retries : int;  (* transport retry budget before a link is declared dead *)
  async : bool;  (* --async: force the asynchronous executor *)
}

(* does this configuration execute on the asynchronous substrate —
   forced, or routed there by a timing dimension in the profile? *)
let runs_async fc =
  fc.async
  || match fc.faults with Some f -> Fault.timing_active f | None -> false

let drop_t =
  Arg.(
    value & opt float 0.0
    & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability in [0,1).")

let dup_t =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability in [0,1).")

let delay_t =
  Arg.(
    value & opt int 0
    & info [ "delay" ] ~docv:"D"
        ~doc:"Maximum extra rounds a message copy may be held (reordering).")

let fault_seed_t =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of the fault adversary.")

let unreliable_t =
  Arg.(
    value & flag
    & info [ "unreliable" ]
        ~doc:
          "Run message-level phases on raw faulty links instead of the \
           acknowledged transport (demonstrates fragility; the oracle check \
           will typically fail).")

(* The spec parsers live in Fault so the parser and printer stay one
   tested inverse pair; here we only prefix errors with the flag name. *)
let parse_crash s =
  Result.map_error (fun e -> Printf.sprintf "bad --crash %S: %s" s e) (Fault.parse_crash s)

let parse_partition s =
  Result.map_error
    (fun e -> Printf.sprintf "bad --partition %S: %s" s e)
    (Fault.parse_partition s)

let parse_straggle s =
  Result.map_error
    (fun e -> Printf.sprintf "bad --straggle %S: %s" s e)
    (Fault.parse_straggle s)

let crash_t =
  Arg.(
    value & opt_all string []
    & info [ "crash" ] ~docv:"NODE:FROM[:UNTIL[:MODE]]"
        ~doc:
          "Crash NODE from round FROM (repeatable). With UNTIL the node \
           restarts at that round; MODE freeze (default) preserves its state \
           across the outage, amnesia wipes it (re-runs init, or restores from \
           the recovery layer's checkpoints when --checkpoint-every is given).")

let partition_t =
  Arg.(
    value & opt_all string []
    & info [ "partition" ] ~docv:"CUT:FROM[:HEAL]"
        ~doc:
          "Sever links from round FROM (repeatable). CUT is either a link list \
           u-v[,u-v...] or a vertex cut @n[,n...] (every link touching those \
           nodes). With HEAL the cut is restored at that round; without it the \
           partition is permanent and fault-tolerant runs end with a Partial \
           verdict over the reachable component.")

let corrupt_t =
  Arg.(
    value & opt float 0.0
    & info [ "corrupt" ] ~docv:"P"
        ~doc:
          "Per-copy payload corruption probability in [0,1). The reliable \
           transport detects corrupt packets by checksum, rejects them and \
           retransmits; raw links (--unreliable) discard them as undecodable.")

let straggle_t =
  Arg.(
    value & opt_all string []
    & info [ "straggle" ] ~docv:"NODE:FROM[:UNTIL[:FACTOR]]"
        ~doc:
          "Timing adversary (repeatable; implies the asynchronous executor): \
           NODE straggles from pulse FROM. FACTOR >= 2 stretches its \
           computation by that factor; FACTOR 0 or omitted stalls it (with \
           UNTIL: a bounded stall; without: stalled forever, behaving as a \
           crash-stop). An empty UNTIL (NODE:FROM::FACTOR) makes a slowdown \
           permanent.")

let link_latency_t =
  Arg.(
    value & opt int 0
    & info [ "link-latency" ] ~docv:"L"
        ~doc:
          "Per-link latency bound (implies the asynchronous executor): each \
           wire crossing draws 0..L extra virtual-time units, keyed on the \
           fault seed.")

let skew_t =
  Arg.(
    value & opt int 0
    & info [ "skew" ] ~docv:"S"
        ~doc:
          "Bounded clock skew (implies the asynchronous executor): each node \
           starts its virtual clock 0..S units late, keyed on the fault seed.")

let async_t =
  Arg.(
    value & flag
    & info [ "async" ]
        ~doc:
          "Run on the asynchronous virtual-time executor under the \
           \xce\xb1-synchronizer even without timing faults (outputs and core \
           metrics are byte-identical to the synchronous engine).")

let pulse_deadline_t =
  Arg.(
    value & opt int 0
    & info [ "pulse-deadline" ] ~docv:"D"
        ~doc:
          "Deadline-paced pulses (asynchronous executor only; 0 = off): stop \
           waiting for a neighbor's SAFE D virtual-time units (doubling per \
           consecutive miss) after the local step ends; after 3 consecutive \
           misses the straggler is cut and its traffic dropped, so the \
           failure detector suspects it and degraded mode excises it.")

let checkpoint_every_t =
  Arg.(
    value & opt int (-1)
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Run under the checkpoint/recovery layer, snapshotting node state to \
           simulated stable storage every N rounds (0 = recovery handshake \
           only, no checkpoints). Omit to run without the recovery layer.")

let replay_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay the delivery schedule recorded in the --trace FILE instead of \
           rolling a random adversary: per-message fates and crash windows are \
           taken from the trace, so the recorded run is reproduced exactly \
           (--drop/--dup/--delay/--fault-seed are ignored; keep the other flags \
           identical to the recorded invocation).")

(* Rebuild a scripted adversary from a recorded trace. A trace whose
   runs were all fault-free replays as a plain deterministic run. *)
let load_replay path unreliable recovery ~detector_period ~max_retries ~async =
  match Trace_io.read_jsonl ~path with
  | exception Repro_obs.Event.Parse_error msg -> Error ("--replay: " ^ msg)
  | exception Sys_error msg -> Error ("--replay: " ^ msg)
  | events ->
      let r = Replay.of_events events in
      if Replay.runs r = 0 then
        Ok
          { faults = None; reliable = false; recovery; detector_period; max_retries; async }
      else
        let crashes =
          List.map
            (fun (w : Replay.crash_window) ->
              Fault.crash w.node ~from:w.from_round ?until:w.until_round
                ~mode:(if w.amnesia then Fault.Amnesia else Fault.Freeze))
            (Replay.crashes r)
        in
        let partitions =
          List.map
            (fun (w : Replay.partition_window) ->
              let cut =
                match w.links with
                | [] -> Fault.Around w.nodes
                | links -> Fault.Links links
              in
              Fault.partition ~from:w.p_from_round ?heal:w.heal_round cut)
            (Replay.partitions r)
        in
        let plan ~run ~round ~src ~dst =
          List.map
            (fun (extra, corrupt) -> { Fault.extra; corrupt })
            (Replay.plan r ~run ~round ~src ~dst)
        in
        (* timing dimensions replay from the recorded seed alone: the
           draws are pure hashes, so restoring the statics reproduces
           the exact virtual-time schedule *)
        let stragglers =
          List.map
            (fun (w : Replay.straggle_window) ->
              Fault.straggle w.s_node ~from:w.s_from_round ?until:w.s_until_round
                ~factor:w.s_factor)
            (Replay.stragglers r)
        in
        let link_latency, skew, timing_seed =
          match Replay.timing r with
          | Some { Replay.link_latency; skew; timing_seed } ->
              (link_latency, skew, timing_seed)
          | None -> (0, 0, 0)
        in
        Ok
          {
            faults =
              Some
                (Fault.scripted ~crashes ~partitions ~stragglers ~link_latency ~skew
                   ~timing_seed plan);
            reliable = not unreliable;
            recovery;
            detector_period;
            max_retries;
            async;
          }

let make_fault_config replay drop dup delay corrupt crash_specs partition_specs
    straggle_specs link_latency skew async pulse_deadline checkpoint_every fault_seed
    unreliable detector_period max_retries =
  let ( let* ) = Result.bind in
  let* crashes =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* c = parse_crash spec in
        Ok (c :: acc))
      (Ok []) crash_specs
  in
  let* partitions =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* p = parse_partition spec in
        Ok (p :: acc))
      (Ok []) partition_specs
  in
  let* stragglers =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* s = parse_straggle spec in
        Ok (s :: acc))
      (Ok []) straggle_specs
  in
  let* recovery =
    if checkpoint_every < -1 then Error "--checkpoint-every must be >= 0"
    else if checkpoint_every < 0 then Ok None
    else Ok (Some { Repro_congest.Recovery.checkpoint_every })
  in
  let* () = if pulse_deadline < 0 then Error "--pulse-deadline must be >= 0" else Ok () in
  (* process-wide executor dials, installed once per invocation (the
     same pattern as Engine.audit_enabled / trace_sink) *)
  Repro_congest.Async_engine.forced := async;
  Repro_congest.Async_engine.deadline := pulse_deadline;
  match replay with
  | Some path -> load_replay path unreliable recovery ~detector_period ~max_retries ~async
  | None ->
      if drop = 0.0 && dup = 0.0 && delay = 0 && corrupt = 0.0 && crashes = []
         && partitions = [] && stragglers = [] && link_latency = 0 && skew = 0
      then
        Ok
          { faults = None; reliable = false; recovery; detector_period; max_retries; async }
      else (
        match
          Fault.profile ~drop ~duplicate:dup ~max_delay:delay ~corrupt
            ~crashes:(List.rev crashes) ~partitions:(List.rev partitions)
            ~stragglers:(List.rev stragglers) ~link_latency ~skew ()
        with
        | profile ->
            Ok
              {
                faults = Some (Fault.create ~seed:fault_seed profile);
                reliable = not unreliable;
                recovery;
                detector_period;
                max_retries;
                async;
              }
        | exception Invalid_argument msg -> Error msg)

let detector_period_t =
  Arg.(
    value & opt int 4
    & info [ "detector-period" ] ~docv:"P"
        ~doc:
          "Heartbeat period (rounds) of the failure detector behind the \
           degraded-mode probe; a link silent for 3*P rounds is suspected. \
           Must be >= 2.")

let max_retries_t =
  Arg.(
    value & opt int 25
    & info [ "max-retries" ] ~docv:"R"
        ~doc:
          "Transport retransmission budget per message; a link that exhausts \
           it is declared dead and abandoned (how a permanently partitioned \
           run terminates).")

let fault_config_t =
  Term.term_result' ~usage:true
    Term.(
      const make_fault_config $ replay_t $ drop_t $ dup_t $ delay_t $ corrupt_t $ crash_t
      $ partition_t $ straggle_t $ link_latency_t $ skew_t $ async_t $ pulse_deadline_t
      $ checkpoint_every_t $ fault_seed_t $ unreliable_t $ detector_period_t
      $ max_retries_t)

let print_fault_config fc =
  (match fc.faults with
  | None -> ()
  | Some f ->
      Format.printf "%a over %s links@." Fault.pp f
        (if fc.reliable then "reliable-transport" else "raw"));
  if runs_async fc then
    Format.printf "asynchronous executor on (\xce\xb1-synchronizer%s)@."
      (if !Repro_congest.Async_engine.deadline > 0 then
         Printf.sprintf ", pulse deadline %d" !Repro_congest.Async_engine.deadline
       else "");
  match fc.recovery with
  | None -> ()
  | Some { Repro_congest.Recovery.checkpoint_every } ->
      Format.printf "recovery layer on (checkpoint every %d rounds)@." checkpoint_every

(* ------------------------------------------------------------------ *)
(* Observability (DESIGN.md "Observability"): --trace records every
   engine run of the invocation into one JSONL file; --metrics-json
   mirrors each printed metrics table as one machine-readable line. *)

type obs = { trace : string option; metrics_json : bool }

let no_obs = { trace = None; metrics_json = false }

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured execution trace of every engine run to FILE \
           (JSONL, one event per line). Inspect with trace_cli, or replay with \
           --replay.")

let metrics_json_t =
  Arg.(
    value & flag
    & info [ "metrics-json" ]
        ~doc:
          "Also print each final metrics table as one JSON line on stdout, for \
           CI and scripts.")

let obs_t = Term.(const (fun trace metrics_json -> { trace; metrics_json }) $ trace_t $ metrics_json_t)

(* The trace is written from at_exit so it survives the early [exit 1]
   paths (oracle mismatches) — a failing chaos run must still leave a
   replayable trace behind. *)
let setup_obs obs =
  match obs.trace with
  | None -> ()
  | Some path ->
      let r = Recorder.create () in
      Repro_congest.Engine.trace_sink := Recorder.sink r;
      at_exit (fun () ->
          Trace_io.write_jsonl ~path (Recorder.to_list r);
          if Recorder.overwritten r > 0 then
            Printf.eprintf "trace: ring buffer overflowed, %d oldest events lost\n%!"
              (Recorder.overwritten r))

(* the machine-readable line alone — for call sites that print their
   own human table *)
let metrics_json obs ~name m =
  if obs.metrics_json then print_endline (Metrics.to_json ~name m)

let print_metrics ?(obs = no_obs) ?(name = "metrics") m =
  Format.printf "%a@." Metrics.pp m;
  metrics_json obs ~name m

let print_graph_summary g =
  Format.printf "%a, diameter %d@." Digraph.pp g
    (Repro_graph.Traversal.diameter (Digraph.skeleton g))

(* ------------------------------------------------------------------ *)
(* Certified degraded mode (DESIGN.md "Fault model"): under permanent
   faults — a non-healing partition or a crash-stop — no pipeline can
   be exact everywhere, so the CLIs first run a detector-certified BFS
   probe. Its verdict is validated against the centralized connectivity
   oracle (exit 1 on disagreement), and the pipeline then runs on the
   certified reachable component with every suspected link removed. *)

let permanent_faults fc =
  match fc.faults with
  | None -> false
  | Some f ->
      let p = Fault.profile_of f in
      List.exists (fun (pa : Fault.partition) -> pa.heal_round = None) p.Fault.partitions
      || List.exists (fun (c : Fault.crash) -> c.until_round = None) p.Fault.crashes
      (* an unbounded stall only stops a node when the run actually
         executes asynchronously — the synchronous engine keeps lockstep
         by fiat and ignores timing *)
      || (runs_async fc
         && List.exists
              (fun (s : Fault.straggle) -> s.s_until = None && s.factor = 0)
              p.Fault.stragglers)

let certified_subgraph fc obs g ~root =
  if not (permanent_faults fc) then None
  else begin
    let faults = fc.faults in
    let async = runs_async fc in
    (match faults with
    | Some f when Fault.eventually_down f root || (async && Fault.eventually_stalled f root)
      ->
        Format.printf "degraded-mode probe: root %d is crash-stopped; probe from a live node@."
          root;
        exit 1
    | _ -> ());
    let skeleton = Digraph.skeleton g in
    let pm = Metrics.create () in
    let _tree, verdict =
      Repro_congest.Bfs_tree.build_certified ?faults ~period:fc.detector_period
        ~max_retries:fc.max_retries skeleton ~root ~metrics:pm
    in
    Format.printf "probe verdict: %a@." Repro_congest.Detector.pp_verdict verdict;
    Format.printf "probe:@ %a@." Metrics.pp pm;
    metrics_json obs ~name:"probe" pm;
    let oracle = Repro_congest.Detector.oracle ?faults ~async skeleton ~root in
    let count a = Array.fold_left (fun k b -> if b then k + 1 else k) 0 a in
    match verdict with
    | Repro_congest.Detector.Complete ->
        if count oracle = Array.length oracle then None
        else begin
          Format.printf
            "probe verdict MISMATCH: Complete, but the oracle reaches only %d/%d nodes@."
            (count oracle) (Array.length oracle);
          exit 1
        end
    | Repro_congest.Detector.Partial { reachable; suspected } ->
        if reachable <> oracle then begin
          Format.printf
            "probe verdict MISMATCH: certified %d/%d reachable, oracle says %d/%d@."
            (count reachable) (Array.length reachable) (count oracle) (Array.length oracle);
          exit 1
        end;
        (* remove suspected links, then keep the reachable component *)
        let bad u v = List.mem (u, v) suspected || List.mem (v, u) suspected in
        let quads =
          Array.to_list (Digraph.edges g)
          |> List.filter (fun (e : Digraph.edge) ->
                 reachable.(e.src) && reachable.(e.dst) && not (bad e.src e.dst))
          |> List.map (fun (e : Digraph.edge) -> (e.src, e.dst, e.weight, e.label))
        in
        let pruned =
          Digraph.create_labeled ~directed:(Digraph.directed g) (Digraph.n g) quads
        in
        let g', old_of_new, new_of_old =
          Digraph.induced pruned (Repro_graph.Mask.vertices reachable)
        in
        Format.printf "degraded mode: running on the certified component (%d/%d nodes)@."
          (Digraph.n g') (Digraph.n g);
        Some (g', old_of_new, new_of_old)
  end
