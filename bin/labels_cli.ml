(* Precompute/query/serve workflow for distance labels.

   precompute: generate (or --input) a graph, run the distributed
   pipeline (Theorem 1 + Theorem 2) and save every node's label — the
   "deployment" artifact of a distance labeling scheme. --format picks
   the legacy text format or the bit-packed binary store; the binary
   store can also carry CDL product labels for a --constraint.

   query: load a label file and answer distance queries from labels
   alone, without the graph. Malformed pair specs are usage errors:
   a message naming the bad field, exit code 2 (the --partition /
   --straggle idiom).

   serve: the query engine as a batch/stream server — newline-delimited
   "DIST u v" / "CDL u v q" requests from a file or stdin, one answer
   per line, with a bounded hot-pair LRU cache in front of label
   decoding. *)

module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Stateful = Repro_core.Stateful
module Cdl = Repro_core.Cdl
module Store = Repro_serve.Store
module Query = Repro_serve.Query
module Cache = Repro_serve.Cache
module Server = Repro_serve.Server
open Cmdliner

(* malformed user input: name the field, exit 2 *)
let usage_error fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* a corrupted or truncated store is a data error, not a usage error:
   clean message, exit 1 — checksum verification is lazy (per shard on
   first access), so this can fire mid-query, not just at open *)
let store_guard f =
  try f ()
  with Store.Error e ->
    Format.eprintf "labels store: %a@." Store.pp_error e;
    exit 1

let constraint_grammar = "parity | forbidden | count:LIMIT | colored:COLORS"

let parse_constraint s =
  let int_field idx name v k =
    match int_of_string_opt (String.trim v) with
    | Some i when i >= 0 -> k i
    | _ ->
        usage_error
          "bad --constraint %S: field %d (%s) %S is not a non-negative integer; expected %s" s
          idx name v constraint_grammar
  in
  match String.split_on_char ':' s with
  | [ "parity" ] -> Stateful.parity
  | [ "forbidden" ] -> Stateful.forbidden
  | [ "count"; l ] -> int_field 2 "LIMIT" l (fun l -> Stateful.count ~limit:l)
  | [ "colored"; c ] -> int_field 2 "COLORS" c (fun c -> Stateful.colored ~colors:c)
  | _ -> usage_error "bad --constraint %S; expected %s" s constraint_grammar

let precompute g out format constraint_ edge_labels fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: label only the certified
     component (labels are then indexed by component-local ids) *)
  let g =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> g
    | Some (g', _, _) ->
        Format.printf "labels cover the certified component, re-indexed 0..%d@."
          (Repro_graph.Digraph.n g' - 1);
        g'
  in
  let spec = Option.map parse_constraint constraint_ in
  let g =
    match edge_labels with
    | Some k when k > 0 ->
        Digraph.with_labels g (fun e -> Hashtbl.hash (e.Digraph.id, 0x5e3) mod k)
    | Some k -> usage_error "bad --edge-labels %d: COLORS must be positive" k
    | None -> g
  in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  (match (format, spec) with
  | `Text, Some _ ->
      usage_error "--constraint requires --format binary (the text format predates CDL serving)"
  | `Text, None ->
      Dl.save_text out labels;
      Format.printf "wrote %d labels (max %d words) to %s after %d simulated rounds@."
        (Array.length labels) (Dl.max_label_words labels) out (Metrics.rounds m)
  | `Binary, spec ->
      let cdl =
        Option.map
          (fun spec ->
            let c = Cdl.build ~seed:2 g spec ~metrics:m in
            (spec.Stateful.q_size, spec.Stateful.start, Cdl.labels c))
          spec
      in
      Store.save out labels ?cdl;
      let st = Store.open_ out in
      Format.printf
        "wrote %d labels%s to %s (%d bytes, %d anchor pools) after %d simulated rounds@."
        (Array.length labels)
        (match cdl with
        | Some (_, _, pl) -> Printf.sprintf " + %d CDL labels" (Array.length pl)
        | None -> "")
        out (Store.byte_size st) (Store.pool_count st) (Metrics.rounds m));
  Cli_common.metrics_json obs ~name:"precompute" m

(* a label file is whatever precompute wrote: sniff the store magic,
   fall back to the legacy text format *)
let load_source path =
  let looks_binary =
    let ic = try open_in_bin path with Sys_error e -> usage_error "--labels: %s" e in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let ml = String.length Store.magic in
        in_channel_length ic >= ml && String.equal (really_input_string ic ml) Store.magic)
  in
  if looks_binary then Query.of_store (Store.open_ path)
  else
    match Dl.load_text path with
    | labels -> Query.of_text labels
    | exception Dl.Parse_error { file; line; msg } ->
        usage_error "%s: line %d: %s" file line msg

let pair_grammar = "U,V with two vertex ids"

let parse_pair src s =
  let err field what got why =
    usage_error "bad pair %S: field %d (%s) %S %s; expected %s" s field what got why
      pair_grammar
  in
  match String.split_on_char ',' s with
  | [ u; v ] ->
      let int_field idx name w =
        match int_of_string_opt (String.trim w) with
        | Some i when i >= 0 && i < src.Query.n -> i
        | Some _ -> err idx name w (Printf.sprintf "is out of range [0,%d)" src.Query.n)
        | None -> err idx name w "is not an integer"
      in
      (int_field 1 "U" u, int_field 2 "V" v)
  | parts ->
      usage_error "bad pair %S: %d field(s), want 2; expected %s" s (List.length parts)
        pair_grammar

let query labels_path pair_specs =
  store_guard @@ fun () ->
  let src = load_source labels_path in
  let pairs = List.map (parse_pair src) pair_specs in
  List.iter
    (fun (u, v) ->
      let d = Query.answer src (Query.Dist { u; v }) in
      if d >= Digraph.inf then Format.printf "d(%d,%d) = unreachable@." u v
      else Format.printf "d(%d,%d) = %d@." u v d)
    pairs

let serve labels_path input cache_size obs =
  store_guard @@ fun () ->
  Cli_common.setup_obs obs;
  if cache_size < 0 then usage_error "bad --cache %d: capacity must be >= 0" cache_size;
  let src = load_source labels_path in
  let cache = Cache.create cache_size in
  let stats =
    match input with
    | None -> Server.run ~cache src stdin stdout
    | Some f ->
        let ic = try open_in f with Sys_error e -> usage_error "--queries: %s" e in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Server.run ~cache ~flush_each:false src ic stdout)
  in
  Format.eprintf "served %d queries (%d malformed); cache: %d hits, %d misses, %d evictions@."
    stats.Server.answered stats.Server.errors (Cache.hits cache) (Cache.misses cache)
    (Cache.evictions cache);
  let m = Metrics.create () in
  Cache.flush cache m;
  Cli_common.metrics_json obs ~name:"serve" m

let out_t =
  Arg.(
    value & opt string "labels.txt"
    & info [ "out" ] ~docv:"FILE" ~doc:"Label file to write.")

let format_t =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("binary", `Binary) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Label file format: $(b,text) (legacy, line-per-label) or $(b,binary) (bit-packed \
           store with anchor-set pooling and per-shard checksums).")

let constraint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "constraint" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Also build and store CDL product labels for this walk constraint (%s). Needs \
              $(b,--format binary)."
             constraint_grammar))

let edge_labels_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "edge-labels" ] ~docv:"COLORS"
        ~doc:"Relabel edges with hash-assigned colors in [0,COLORS) before building.")

let labels_t =
  Arg.(
    value & opt string "labels.txt"
    & info [ "labels" ] ~docv:"FILE" ~doc:"Label file to read (text or binary store).")

let pairs_t =
  Arg.(value & pos_all string [] & info [] ~docv:"U,V" ~doc:"Query pairs, e.g. 0,7 3,12.")

let queries_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:"Batch query file, one DIST/CDL query per line (default: stream from stdin).")

let cache_t =
  Arg.(
    value & opt int 1024
    & info [ "cache" ] ~docv:"CAPACITY"
        ~doc:"Hot-pair LRU cache capacity in entries; 0 disables caching.")

let precompute_cmd =
  Cmd.v
    (Cmd.info "precompute" ~doc:"Build labels for a graph and save them")
    Term.(
      const precompute $ Cli_common.graph_t $ out_t $ format_t $ constraint_t $ edge_labels_t
      $ Cli_common.fault_config_t $ Cli_common.obs_t)

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Answer distance queries from a label file")
    Term.(const query $ labels_t $ pairs_t)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve DIST/CDL queries from a label file, batch ($(b,--queries)) or stream (stdin)")
    Term.(const serve $ labels_t $ queries_t $ cache_t $ Cli_common.obs_t)

let cmd =
  Cmd.group
    (Cmd.info "labels_cli"
       ~doc:"Distance-labeling precompute/query/serve workflow (Theorem 2)")
    [ precompute_cmd; query_cmd; serve_cmd ]

let () = exit (Cmd.eval cmd)
