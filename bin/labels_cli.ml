(* Precompute/query workflow for distance labels.

   precompute: generate (or --input) a graph, run the distributed
   pipeline (Theorem 1 + Theorem 2) and save every node's label to a
   file — the "deployment" artifact of a distance labeling scheme.

   query: load a label file and answer distance queries from labels
   alone, without the graph. *)

module Digraph = Repro_graph.Digraph
module Metrics = Repro_congest.Metrics
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
open Cmdliner

let save_labels path labels =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter (fun la -> output_string oc (Labeling.to_string la ^ "\n")) labels)

let load_labels path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then out := Labeling.of_string line :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let precompute g out fc obs =
  Cli_common.setup_obs obs;
  Cli_common.print_graph_summary g;
  Cli_common.print_fault_config fc;
  (* permanent partitions / crash-stops: label only the certified
     component (labels are then indexed by component-local ids) *)
  let g =
    match Cli_common.certified_subgraph fc obs g ~root:0 with
    | None -> g
    | Some (g', _, _) ->
        Format.printf "labels cover the certified component, re-indexed 0..%d@."
          (Repro_graph.Digraph.n g' - 1);
        g'
  in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  save_labels out labels;
  Format.printf "wrote %d labels (max %d words) to %s after %d simulated rounds@."
    (Array.length labels) (Dl.max_label_words labels) out (Metrics.rounds m);
  Cli_common.metrics_json obs ~name:"precompute" m

let query labels_path pairs =
  let labels = load_labels labels_path in
  let by_owner = Hashtbl.create (Array.length labels) in
  Array.iter (fun la -> Hashtbl.replace by_owner (Labeling.owner la) la) labels;
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt by_owner u, Hashtbl.find_opt by_owner v) with
      | Some la_u, Some la_v ->
          let d = Labeling.decode la_u la_v in
          if d >= Digraph.inf then Format.printf "d(%d,%d) = unreachable@." u v
          else Format.printf "d(%d,%d) = %d@." u v d
      | _ -> Format.printf "d(%d,%d): unknown vertex@." u v)
    pairs

let out_t =
  Arg.(
    value & opt string "labels.txt"
    & info [ "out" ] ~docv:"FILE" ~doc:"Label file to write.")

let labels_t =
  Arg.(
    value & opt string "labels.txt"
    & info [ "labels" ] ~docv:"FILE" ~doc:"Label file to read.")

let pairs_t =
  Arg.(
    value & pos_all (pair ~sep:',' int int) []
    & info [] ~docv:"U,V" ~doc:"Query pairs, e.g. 0,7 3,12.")

let precompute_cmd =
  Cmd.v
    (Cmd.info "precompute" ~doc:"Build labels for a graph and save them")
    Term.(
      const precompute $ Cli_common.graph_t $ out_t $ Cli_common.fault_config_t
      $ Cli_common.obs_t)

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Answer distance queries from a label file")
    Term.(const query $ labels_t $ pairs_t)

let cmd =
  Cmd.group
    (Cmd.info "labels_cli" ~doc:"Distance-labeling precompute/query workflow (Theorem 2)")
    [ precompute_cmd; query_cmd ]

let () = exit (Cmd.eval cmd)
