(* Width-soundness pass (DESIGN.md §3i): interval abstract
   interpretation over every linted [.ml], certifying the ints that
   flow into [Bitio.put ~bits] / [Bitio.get ~bits].

   The bit-packed codec is maximally fragile by design ("both sides
   must agree on field order and widths — there is no in-band typing",
   lib/serve/bitio.mli): a silently truncated field returns a *wrong
   distance*, not an error. This pass fails the build when

   - (width-trunc) a written value's range may exceed [2^bits - 1];
   - (width-range) a width expression may leave [0, 30];
   - (codec-mismatch) a writer/reader pair's put/get field traces
     (order + width expressions, matched symbolically) disagree.

   The abstract domain is a saturating interval extended with three
   symbolic refinements that make the real codec certifiable without
   annotations:

   - mask_of w:    the value is [(1 lsl w) - 1] for a width ident [w]
                   (sentinel writes fit their field by construction);
   - bound (m, k): the value is at most [!m + k] for a local max-fold
                   ref [m] ([if e > !m then m := e] registers a fact
                   for [e]'s text and its let-definition's text);
   - wof (m, j):   the value is a width satisfying [2^w - 1 >= !m + j]
                   (result of [Bitio.bits_needed (!m + j)], directly
                   or through a width-helper like [Codec.field_width]).

   A write certifies if its range fits [2^lo(bits) - 1], or mask/width
   idents agree, or bound dominates wof ([k <= j]). Branch conditions
   and diverging guards ([if c then invalid_arg ...]) refine by the
   *printed text* of subexpressions, so array loads like [f1.(i)] are
   refined exactly like idents. Soundness caveats (textual matching,
   single-pass loop bodies, locals-only refs) are documented in
   DESIGN.md §3i. *)

module Cg = Callgraph
module P = Parsetree

(* ------------------------------------------------------------------ *)
(* Saturating intervals *)

let max_i = max_int / 2

type iv = { lo : int; hi : int }

let top_iv = { lo = -max_i; hi = max_i }
let sat v = if v > max_i then max_i else if v < -max_i then -max_i else v
let point n = { lo = sat n; hi = sat n }

let iv_str { lo; hi } =
  let b v =
    if v >= max_i then "+inf" else if v <= -max_i then "-inf" else string_of_int v
  in
  Printf.sprintf "[%s, %s]" (b lo) (b hi)

let smul a b =
  if a = 0 || b = 0 then 0
  else
    let s = if (a > 0) = (b > 0) then 1 else -1 in
    let aa = abs a and ab = abs b in
    if aa > max_i / ab then s * max_i else sat (a * b)

let iv_mul a b =
  let p1 = smul a.lo b.lo and p2 = smul a.lo b.hi in
  let p3 = smul a.hi b.lo and p4 = smul a.hi b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

(* smallest [2^k - 1] covering [h] *)
let mask_up h =
  if h <= 0 then 0
  else begin
    let m = ref 1 in
    while !m < h && !m < max_i do
      m := (!m * 2) + 1
    done;
    !m
  end

let pow2m1 n = if n >= 62 then max_i else if n < 0 then 0 else sat ((1 lsl n) - 1)

(* ------------------------------------------------------------------ *)
(* Abstract values *)

type av = {
  iv : iv;
  mask_of : string option;  (* value = 2^w - 1 for width ident w *)
  bound : (string * int) option;  (* value <= !m + k for fold ref m *)
  wof : (string * int) option;  (* value is a width: 2^v - 1 >= !m + j *)
  src : string option;  (* the ident this value was read from *)
  prov : string list;  (* data-flow chain, oldest first *)
}

let top = { iv = top_iv; mask_of = None; bound = None; wof = None; src = None; prov = [] }
let const n = { top with iv = point n }
let with_prov av p = { av with prov = (if List.length av.prov > 5 then av.prov else av.prov @ [ p ]) }

(* ------------------------------------------------------------------ *)
(* Analysis context *)

type fact = { mutable f_ge : int option; mutable f_le : (string * int) option }

type rinfo = {
  r_init : av;
  r_min : int;  (* guaranteed minimum over the ref's lifetime *)
  r_fold : bool;  (* every assignment is a max-fold [if e > !m then m := e] *)
  r_assigned : bool;
}

type ctx = {
  cg : Cg.t;
  mutable file : string;
  mutable report : bool;
  mutable findings : Lint_core.finding list;
  facts : (string, fact) Hashtbl.t;  (* printed text -> known bounds *)
  refs : (string, rinfo) Hashtbl.t;  (* local refs of the current binding *)
  arrays : (string, av ref) Hashtbl.t;  (* local arrays: one joined element value *)
  defs : (string, string) Hashtbl.t;  (* ident -> printed text of its definition *)
  mutable refines : (string * iv) list;  (* path-sensitive text refinements *)
  mutable puts : int;
  mutable gets : int;
}

module StrMap = Map.Make (String)

let normtext e =
  let s = try Pprintast.string_of_expression e with _ -> "<expr>" in
  let buf = Buffer.create (String.length s) in
  let last_sp = ref false in
  String.iter
    (fun c ->
      if c = '\n' || c = '\t' || c = ' ' then begin
        if not !last_sp then Buffer.add_char buf ' ';
        last_sp := true
      end
      else begin
        Buffer.add_char buf c;
        last_sp := false
      end)
    s;
  Buffer.contents buf

let lid_path txt =
  match Longident.flatten txt with "Stdlib" :: rest -> rest | path -> path

let int_const (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_constant (P.Pconst_integer (s, None)) -> int_of_string_opt s
  | P.Pexp_apply
      ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident "~-"; _ }; _ },
        [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_constant (P.Pconst_integer (s, None)); _ }) ] )
    ->
      Option.map (fun v -> -v) (int_of_string_opt s)
  | _ -> None

(* [!m] / [!m + c] / [!m - c] -> (m, c) *)
let deref_form (e : P.expression) =
  let deref (e : P.expression) =
    match e.pexp_desc with
    | P.Pexp_apply
        ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
          [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ }) ]
        ) ->
        Some m
    | _ -> None
  in
  match deref e with
  | Some m -> Some (m, 0)
  | None -> (
      match e.pexp_desc with
      | P.Pexp_apply
          ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident (("+" | "-") as op); _ }; _ },
            [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ) -> (
          match (deref a, int_const b) with
          | Some m, Some c -> Some (m, if op = "+" then c else -c)
          | _ -> None)
      | _ -> None)

(* diverging expressions end the path: guards like
   [if c then invalid_arg ...] refine the rest of the sequence *)
let rec diverges (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _) -> (
      match lid_path txt with
      | [ ("invalid_arg" | "failwith" | "raise" | "raise_notrace") ] -> true
      | _ -> false)
  | P.Pexp_sequence (_, b) | P.Pexp_let (_, _, b) | P.Pexp_open (_, b) -> diverges b
  | P.Pexp_ifthenelse (_, t, Some e) -> diverges t && diverges e
  | _ -> false

let pattern_vars p =
  let vars = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.P.ppat_desc with
          | P.Ppat_var { txt; _ } | P.Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !vars

(* ------------------------------------------------------------------ *)
(* Facts and refinements *)

let fact_for ctx key =
  match Hashtbl.find_opt ctx.facts key with
  | Some f -> f
  | None ->
      let f = { f_ge = None; f_le = None } in
      Hashtbl.add ctx.facts key f;
      f

let keys_of ctx (e : P.expression) =
  let t = normtext e in
  match e.pexp_desc with
  | P.Pexp_ident { txt = Longident.Lident x; _ } -> (
      match Hashtbl.find_opt ctx.defs x with Some d when d <> t -> [ t; d ] | _ -> [ t ])
  | _ -> [ t ]

let apply_facts ctx e av =
  let t = normtext e in
  match Hashtbl.find_opt ctx.facts t with
  | None -> av
  | Some f ->
      let av =
        match f.f_ge with
        | Some g when g > av.iv.lo ->
            with_prov
              { av with iv = { av.iv with lo = g } }
              (Printf.sprintf "`%s` >= %d (diverging guard)" t g)
        | _ -> av
      in
      (match f.f_le with
      | Some (m, k) when av.bound = None ->
          with_prov
            { av with bound = Some (m, k) }
            (Printf.sprintf "`%s` <= !%s%s (max-fold)" t m
               (if k = 0 then "" else Printf.sprintf " %+d" k))
      | _ -> av)

let apply_refines ctx e av =
  let t = normtext e in
  List.fold_left
    (fun av (key, r) ->
      if key <> t then av
      else
        {
          av with
          iv = { lo = max av.iv.lo r.lo; hi = min av.iv.hi r.hi };
        })
    av ctx.refines

(* constraint entries implied by [cond] being [polarity]. The [peek]
   evaluation of comparands must not re-report findings or re-count
   sites, so reporting is suspended around it. *)
let refine_entries ctx peek cond polarity =
  let peek e =
    let saved = ctx.report in
    ctx.report <- false;
    let av = peek e in
    ctx.report <- saved;
    av
  in
  let rec go (cond : P.expression) polarity acc =
    match cond.pexp_desc with
    | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ]) -> (
        match lid_path txt with
        | [ "&&" ] when polarity -> go b polarity (go a polarity acc)
        | [ "||" ] when not polarity -> go b polarity (go a polarity acc)
        | [ (("<" | "<=" | ">" | ">=" | "=" | "<>") as op) ] ->
            let entries x (y : iv) op =
              (* x OP y, known true; constants need no refinement *)
              if int_const x <> None then []
              else
              let r =
                match op with
                | "<" -> Some { top_iv with hi = sat (y.hi - 1) }
                | "<=" -> Some { top_iv with hi = y.hi }
                | ">" -> Some { top_iv with lo = sat (y.lo + 1) }
                | ">=" -> Some { top_iv with lo = y.lo }
                | "=" -> Some y
                | _ -> None
              in
              match r with
              | None -> []
              | Some r -> List.map (fun k -> (k, r)) (keys_of ctx x)
            in
            let flip = function
              | "<" -> ">="
              | "<=" -> ">"
              | ">" -> "<="
              | ">=" -> "<"
              | "=" -> "<>"
              | _ -> "="
            in
            let op = if polarity then op else flip op in
            let mirror = function
              | "<" -> ">"
              | "<=" -> ">="
              | ">" -> "<"
              | ">=" -> "<="
              | o -> o
            in
            let bi = (peek b : av).iv and ai = (peek a : av).iv in
            entries a bi op @ entries b ai (mirror op) @ acc
        | [ "not" ] -> acc
        | _ -> acc)
    | P.Pexp_apply
        ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident "not"; _ }; _ }, [ (_, a) ]) ->
        go a (not polarity) acc
    | _ -> acc
  in
  go cond polarity []

(* ------------------------------------------------------------------ *)
(* Join / meet *)

let ref_min ctx m = match Hashtbl.find_opt ctx.refs m with Some r -> r.r_min | None -> -max_i

let join ctx a b =
  let bound =
    match (a.bound, b.bound) with
    | Some x, Some y when x = y -> Some x
    | Some (m, k), None when b.iv.hi <= sat (ref_min ctx m + k) -> Some (m, k)
    | None, Some (m, k) when a.iv.hi <= sat (ref_min ctx m + k) -> Some (m, k)
    | _ -> None
  in
  {
    iv = { lo = min a.iv.lo b.iv.lo; hi = max a.iv.hi b.iv.hi };
    mask_of = (if a.mask_of = b.mask_of then a.mask_of else None);
    bound;
    wof = (if a.wof = b.wof then a.wof else None);
    src = None;
    prov =
      (let p = a.prov @ b.prov in
       if List.length p > 6 then a.prov else p);
  }

(* ------------------------------------------------------------------ *)
(* Callee summaries *)

type summaries = {
  memo : (Cg.sym, av) Hashtbl.t;
  in_progress : (Cg.sym, unit) Hashtbl.t;
  wof_memo : (Cg.sym, int option) Hashtbl.t;
}

let rec strip_fun_params acc (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_fun (_, _, pat, body) -> strip_fun_params (pattern_vars pat @ acc) body
  | P.Pexp_newtype (_, body) | P.Pexp_constraint (body, _) -> strip_fun_params acc body
  | _ -> (acc, e)

(* width-helper detection: [let f .. m = let w = Bitio.bits_needed (m + c) in
   ...; w] summarizes to a width with [wof] offset [c] of the call's
   last argument *)
let wof_offset_of (b : Cg.binding) =
  let params, body = strip_fun_params [] b.Cg.expr in
  match params with
  | [] -> None
  | last :: _ -> (
      match body.pexp_desc with
      | P.Pexp_let
          ( Asttypes.Nonrecursive,
            [ { pvb_pat = { ppat_desc = P.Ppat_var { txt = w; _ }; _ }; pvb_expr = rhs; _ } ],
            cont ) -> (
          let is_bits_needed (h : P.expression) =
            match h.pexp_desc with
            | P.Pexp_ident { txt; _ } -> (
                match List.rev (lid_path txt) with "bits_needed" :: _ -> true | _ -> false)
            | _ -> false
          in
          let arg_offset (a : P.expression) =
            match a.pexp_desc with
            | P.Pexp_ident { txt = Longident.Lident x; _ } when x = last -> Some 0
            | P.Pexp_apply
                ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident (("+" | "-") as op); _ }; _ },
                  [
                    (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident x; _ }; _ });
                    (Asttypes.Nolabel, c);
                  ] )
              when x = last ->
                Option.map (fun c -> if op = "+" then c else -c) (int_const c)
            | _ -> None
          in
          let rec returns_w (e : P.expression) =
            match e.pexp_desc with
            | P.Pexp_ident { txt = Longident.Lident x; _ } -> x = w
            | P.Pexp_sequence (_, b) | P.Pexp_let (_, _, b) -> returns_w b
            | _ -> false
          in
          match rhs.pexp_desc with
          | P.Pexp_apply (h, [ (Asttypes.Nolabel, a) ])
            when is_bits_needed h && returns_w cont ->
              arg_offset a
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The abstract interpreter *)

type call_kind =
  | KPut
  | KGet
  | KPutVarint
  | KGetVarint
  | KBitsNeeded
  | KRepo of Cg.sym
  | KExt of string list

let call_kind ctx path =
  let classify = function
    | [ "Bitio"; "put" ] -> Some KPut
    | [ "Bitio"; "get" ] -> Some KGet
    | [ "Bitio"; "put_varint" ] -> Some KPutVarint
    | [ "Bitio"; "get_varint" ] -> Some KGetVarint
    | [ "Bitio"; "bits_needed" ] -> Some KBitsNeeded
    | _ -> None
  in
  match Cg.resolve_ref ctx.cg ~file:ctx.file path with
  | Some sym -> (
      match classify (String.split_on_char '.' (Cg.display sym)) with
      | Some k -> k
      | None -> KRepo sym)
  | None -> (
      let norm = Cg.normalize_ref ctx.cg ~file:ctx.file path in
      match classify norm with Some k -> k | None -> KExt norm)

let rec exec (summ : summaries) ctx (env : av StrMap.t) (e : P.expression) : av =
  let self env e = exec summ ctx env e in
  let report rule (loc : Location.t) message =
    if ctx.report then begin
      let p = loc.Location.loc_start in
      ctx.findings <-
        {
          Lint_core.rule;
          file = ctx.file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          message;
        }
        :: ctx.findings
    end
  in
  let finish av = apply_refines ctx e (apply_facts ctx e av) in
  let chain av =
    match av.prov with
    | [] -> ""
    | p -> "; data-flow: " ^ String.concat " <- " (List.rev p)
  in
  (* width argument description at a put/get site *)
  let width_info (we : P.expression) =
    let av = self env we in
    let src =
      match we.pexp_desc with
      | P.Pexp_ident { txt = Longident.Lident x; _ } -> Some x
      | _ -> av.src
    in
    (av, src)
  in
  let check_width (site : P.expression) (we : P.expression) (wav : av) =
    if ctx.report && not (wav.iv.lo >= 0 && wav.iv.hi <= 30) then
      report "width-range" site.P.pexp_loc
        (Printf.sprintf "width `%s` may leave [0, 30]: inferred %s%s" (normtext we)
           (iv_str wav.iv) (chain wav))
  in
  (* per-arm certification of the written value *)
  let rec certify env (ve : P.expression) (site : P.expression) (we : P.expression)
      (wav : av) (wsrc : string option) =
    match ve.pexp_desc with
    | P.Pexp_ifthenelse (c, t, eo) ->
        ignore (self env c);
        let saved = ctx.refines in
        ctx.refines <- refine_entries ctx (fun x -> self env x) c true @ saved;
        certify env t site we wav wsrc;
        ctx.refines <- saved;
        (match eo with
        | Some el ->
            ctx.refines <- refine_entries ctx (fun x -> self env x) c false @ saved;
            certify env el site we wav wsrc;
            ctx.refines <- saved
        | None -> ())
    | P.Pexp_match (scr, cases) ->
        ignore (self env scr);
        List.iter
          (fun (c : P.case) ->
            if not (diverges c.pc_rhs) then begin
              let env =
                List.fold_left (fun env v -> StrMap.add v top env) env (pattern_vars c.pc_lhs)
              in
              Option.iter (fun g -> ignore (self env g)) c.pc_guard;
              certify env c.pc_rhs site we wav wsrc
            end
            else ignore (self env c.pc_rhs))
          cases
    | P.Pexp_constraint (inner, _) -> certify env inner site we wav wsrc
    | _ ->
        let av = self env ve in
        let limit = pow2m1 (max 0 wav.iv.lo) in
        let fits_interval = av.iv.hi <= limit in
        let fits_mask =
          match (av.mask_of, wsrc) with Some a, Some b -> a = b | _ -> false
        in
        let fits_bound =
          match (av.bound, wav.wof) with
          | Some (m, k), Some (m', j) -> m = m' && k <= j
          | _ -> false
        in
        if ctx.report && not (av.iv.lo >= 0 && (fits_interval || fits_mask || fits_bound))
        then
          report "width-trunc" site.P.pexp_loc
            (Printf.sprintf
               "value `%s` may not fit `%s` bits: value in %s, width in %s, field holds at \
                most %s%s%s"
               (normtext ve) (normtext we) (iv_str av.iv) (iv_str wav.iv)
               (if limit >= max_i then "+inf" else string_of_int limit)
               (chain av) (chain wav))
  in
  match e.pexp_desc with
  | P.Pexp_constant (P.Pconst_integer (s, None)) -> (
      match int_of_string_opt s with Some n -> finish (const n) | None -> finish top)
  | P.Pexp_constant _ -> finish top
  | P.Pexp_ident { txt = Longident.Lident x; _ } -> (
      match StrMap.find_opt x env with
      | Some av -> finish { av with src = Some x }
      | None -> (
          match Cg.resolve_ref ctx.cg ~file:ctx.file [ x ] with
          | Some sym -> (
              match Cg.find ctx.cg sym with
              | Some b -> (
                  match int_const b.Cg.expr with
                  | Some n ->
                      finish
                        (with_prov
                           { (const n) with src = Some x }
                           (Printf.sprintf "`%s` = %d (module constant)" x n))
                  | None -> finish { top with src = Some x })
              | None -> finish { top with src = Some x })
          | None ->
              finish
                (with_prov { top with src = Some x }
                   (Printf.sprintf "`%s` unconstrained (parameter or external)" x))))
  | P.Pexp_ident _ -> finish top
  | P.Pexp_constraint (inner, _) -> self env inner
  | P.Pexp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc (vb : P.value_binding) ->
            match vb.pvb_pat.ppat_desc with
            | P.Ppat_var { txt = x; _ } ->
                register_local summ ctx env x vb.P.pvb_expr body;
                let av = self env vb.P.pvb_expr in
                Hashtbl.replace ctx.defs x (normtext vb.P.pvb_expr);
                StrMap.add x av acc
            | _ ->
                ignore (self env vb.P.pvb_expr);
                List.fold_left (fun acc v -> StrMap.add v top acc) acc
                  (pattern_vars vb.P.pvb_pat))
          env vbs
      in
      self env' body
  | P.Pexp_sequence (a, b) -> (
      match a.pexp_desc with
      | P.Pexp_ifthenelse (c, t, None) when diverges t ->
          ignore (self env a);
          let entries = refine_entries ctx (fun x -> self env x) c false in
          (* persist lower bounds: they hold for the rest of the binding *)
          List.iter
            (fun (key, r) ->
              if r.lo > -max_i then begin
                let f = fact_for ctx key in
                match f.f_ge with
                | Some g when g >= r.lo -> ()
                | _ -> f.f_ge <- Some r.lo
              end)
            entries;
          let saved = ctx.refines in
          ctx.refines <- entries @ saved;
          let av = self env b in
          ctx.refines <- saved;
          av
      | _ ->
          ignore (self env a);
          self env b)
  | P.Pexp_ifthenelse (c, t, eo) -> (
      (* max-fold: [if e > !m then m := e] registers e <= !m *)
      (match (c.pexp_desc, t.pexp_desc, eo) with
      | ( P.Pexp_apply
            ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ">"; _ }; _ },
              [ (Asttypes.Nolabel, fe); (Asttypes.Nolabel, de) ] ),
          P.Pexp_apply
            ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
              [
                (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ });
                (Asttypes.Nolabel, fe');
              ] ),
          None )
        when deref_form de = Some (m, 0)
             && normtext fe = normtext fe'
             && (match Hashtbl.find_opt ctx.refs m with
                | Some r -> r.r_fold
                | None -> false) ->
          List.iter
            (fun key ->
              let f = fact_for ctx key in
              f.f_le <- Some (m, 0))
            (keys_of ctx fe)
      | _ -> ());
      ignore (self env c);
      let saved = ctx.refines in
      let then_av =
        if diverges t then None
        else begin
          ctx.refines <- refine_entries ctx (fun x -> self env x) c true @ saved;
          let av = self env t in
          ctx.refines <- saved;
          Some av
        end
      in
      if diverges t then ignore (self env t);
      let else_av =
        match eo with
        | None -> Some (const 0)  (* unit statement *)
        | Some el ->
            if diverges el then begin
              ignore (self env el);
              None
            end
            else begin
              ctx.refines <- refine_entries ctx (fun x -> self env x) c false @ saved;
              let av = self env el in
              ctx.refines <- saved;
              Some av
            end
      in
      match (then_av, else_av) with
      | Some a, Some b -> finish (join ctx a b)
      | Some a, None | None, Some a -> finish a
      | None, None -> top)
  | P.Pexp_match (scr, cases) | P.Pexp_try (scr, cases) ->
      let _ = self env scr in
      let arms =
        List.filter_map
          (fun (c : P.case) ->
            let env =
              List.fold_left (fun env v -> StrMap.add v top env) env (pattern_vars c.pc_lhs)
            in
            Option.iter (fun g -> ignore (self env g)) c.pc_guard;
            if diverges c.pc_rhs then begin
              ignore (self env c.pc_rhs);
              None
            end
            else Some (self env c.pc_rhs))
          cases
      in
      finish
        (match arms with [] -> top | a :: rest -> List.fold_left (join ctx) a rest)
  | P.Pexp_for ({ ppat_desc = pdesc; _ }, lo_e, hi_e, _, body) ->
      let lo_av = self env lo_e and hi_av = self env hi_e in
      let env =
        match pdesc with
        | P.Ppat_var { txt = v; _ } ->
            StrMap.add v { top with iv = { lo = lo_av.iv.lo; hi = hi_av.iv.hi } } env
        | _ -> env
      in
      ignore (self env body);
      const 0
  | P.Pexp_while (c, body) ->
      ignore (self env c);
      ignore (self env body);
      const 0
  | P.Pexp_fun (_, default, pat, body) ->
      Option.iter (fun d -> ignore (self env d)) default;
      let env =
        List.fold_left (fun env v -> StrMap.add v top env) env (pattern_vars pat)
      in
      ignore (self env body);
      top
  | P.Pexp_function cases ->
      List.iter
        (fun (c : P.case) ->
          let env =
            List.fold_left (fun env v -> StrMap.add v top env) env (pattern_vars c.pc_lhs)
          in
          Option.iter (fun g -> ignore (self env g)) c.pc_guard;
          ignore (self env c.pc_rhs))
        cases;
      top
  | P.Pexp_tuple es ->
      List.iter (fun x -> ignore (self env x)) es;
      top
  | P.Pexp_construct (_, arg) | P.Pexp_variant (_, arg) ->
      Option.iter (fun x -> ignore (self env x)) arg;
      top
  | P.Pexp_record (fields, base) ->
      List.iter (fun (_, x) -> ignore (self env x)) fields;
      Option.iter (fun x -> ignore (self env x)) base;
      top
  | P.Pexp_field (x, _) ->
      ignore (self env x);
      finish top
  | P.Pexp_setfield (x, _, v) ->
      ignore (self env x);
      ignore (self env v);
      const 0
  | P.Pexp_array es ->
      List.iter (fun x -> ignore (self env x)) es;
      top
  | P.Pexp_assert x | P.Pexp_lazy x ->
      ignore (self env x);
      top
  | P.Pexp_open (_, body) | P.Pexp_letexception (_, body) -> self env body
  | P.Pexp_letmodule (_, _, body) -> self env body
  | P.Pexp_apply (head, args) -> (
      (* mask pattern: [(1 lsl w) - 1] *)
      let mask_pattern () =
        match e.pexp_desc with
        | P.Pexp_apply
            ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident "-"; _ }; _ },
              [
                ( Asttypes.Nolabel,
                  {
                    pexp_desc =
                      P.Pexp_apply
                        ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident "lsl"; _ }; _ },
                          [
                            (Asttypes.Nolabel, one);
                            ( Asttypes.Nolabel,
                              { pexp_desc = P.Pexp_ident { txt = Longident.Lident w; _ }; _ } );
                          ] );
                    _;
                  } );
                (Asttypes.Nolabel, one');
              ] )
          when int_const one = Some 1 && int_const one' = Some 1 ->
            Some w
        | _ -> None
      in
      match head.pexp_desc with
      | P.Pexp_ident { txt; _ } -> (
          let path = lid_path txt in
          match (path, args) with
          | [ "!" ], [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ }) ]
            -> (
              match Hashtbl.find_opt ctx.refs m with
              | Some r when not r.r_assigned -> finish r.r_init
              | Some r when r.r_fold ->
                  finish
                    (with_prov
                       { top with iv = { lo = r.r_min; hi = max_i } }
                       (Printf.sprintf "!%s is a max-fold ref (init >= %d)" m r.r_min))
              | _ -> finish top)
          | [ ":=" ], [ (Asttypes.Nolabel, _); (Asttypes.Nolabel, rhs) ] ->
              ignore (self env rhs);
              const 0
          | [ ("incr" | "decr") ], [ (Asttypes.Nolabel, _) ] -> const 0
          | ( [ "Array"; ("get" | "unsafe_get") ],
              [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident a; _ }; _ }); (Asttypes.Nolabel, idx) ] )
            -> (
              ignore (self env idx);
              match Hashtbl.find_opt ctx.arrays a with
              | Some elem ->
                  finish
                    (with_prov !elem (Printf.sprintf "element of local array `%s`" a))
              | None -> finish top)
          | ( [ "Array"; ("set" | "unsafe_set") ],
              [
                (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident a; _ }; _ });
                (Asttypes.Nolabel, idx);
                (Asttypes.Nolabel, v);
              ] ) ->
              ignore (self env idx);
              let va = self env v in
              (match Hashtbl.find_opt ctx.arrays a with
              | Some elem -> elem := join ctx !elem va
              | None -> ());
              const 0
          | _ -> (
              match mask_pattern () with
              | Some w ->
                  let wav = match StrMap.find_opt w env with Some a -> a | None -> top in
                  let hi = pow2m1 (min 62 (max 0 wav.iv.hi)) in
                  finish
                    (with_prov
                       { top with iv = { lo = 0; hi }; mask_of = Some w }
                       (Printf.sprintf "(1 lsl %s) - 1 is the %s-bit sentinel mask" w w))
              | None -> exec_apply summ ctx env e head path args check_width width_info certify))
      | _ ->
          ignore (self env head);
          List.iter (fun (_, a) -> ignore (self env a)) args;
          top)
  | _ -> top

(* local [let] registration: refs and arrays with assignment scanning *)
and register_local summ ctx env x (rhs : P.expression) (cont : P.expression) =
  ignore summ;
  ignore env;
  match rhs.pexp_desc with
  | P.Pexp_apply
      ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, [ (Asttypes.Nolabel, init) ])
    ->
      let init_av =
        match int_const init with Some n -> const n | None -> top
      in
      (* scan the continuation: every assignment must be the max-fold
         form for the symbolic bound to stay sound *)
      let assigns = ref [] and folds = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.P.pexp_desc with
              | P.Pexp_ifthenelse
                  ( {
                      pexp_desc =
                        P.Pexp_apply
                          ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ">"; _ }; _ },
                            [ (Asttypes.Nolabel, fe); (Asttypes.Nolabel, de) ] );
                      _;
                    },
                    (* the comparison must be against this very ref:
                       [if e > !x then x := e] *)
                    ({
                       pexp_desc =
                         P.Pexp_apply
                           ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                             [
                               ( Asttypes.Nolabel,
                                 { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ } );
                               (Asttypes.Nolabel, fe');
                             ] );
                       _;
                     } as assign),
                    None )
                when m = x
                     && normtext fe = normtext fe'
                     && deref_form de = Some (x, 0) ->
                  folds := assign :: !folds
              | P.Pexp_apply
                  ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                    [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ }); _ ] )
                when m = x ->
                  assigns := e :: !assigns
              | P.Pexp_apply
                  ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident ("incr" | "decr"); _ }; _ },
                    [ (Asttypes.Nolabel, { pexp_desc = P.Pexp_ident { txt = Longident.Lident m; _ }; _ }) ] )
                when m = x ->
                  assigns := e :: !assigns
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it cont;
      let fold_exprs = !folds in
      let all_fold =
        List.for_all
          (fun (a : P.expression) ->
            match a.P.pexp_desc with
            | P.Pexp_apply
                ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident ":="; _ }; _ }, _) ->
                List.exists (fun f -> f == a) fold_exprs
            | _ -> false)
          !assigns
      in
      Hashtbl.replace ctx.refs x
        {
          r_init = init_av;
          r_min = init_av.iv.lo;
          r_fold = all_fold;
          r_assigned = !assigns <> [] || fold_exprs <> [];
        }
  | P.Pexp_apply
      ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, _) :: rest)
    when lid_path txt = [ "Array"; "make" ] -> (
      match rest with
      | [ (Asttypes.Nolabel, init) ] ->
          let init_av = match int_const init with Some n -> const n | None -> top in
          Hashtbl.replace ctx.arrays x (ref init_av)
      | _ -> ())
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _)
    when lid_path txt = [ "Array"; "init" ] ->
      Hashtbl.replace ctx.arrays x (ref top)
  | _ -> ()

(* application handling: put/get sites, bits_needed, in-repo summaries *)
and exec_apply summ ctx env (e : P.expression) _head path args check_width width_info certify
    : av =
  let self env x = exec summ ctx env x in
  let eval_args () = List.map (fun (l, a) -> (l, a, self env a)) args in
  let arith2 f =
    match args with
    | [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ->
        let av = self env a in
        let bv = self env b in
        Some (f a b av bv)
    | _ -> None
  in
  let finish av = apply_refines ctx e (apply_facts ctx e av) in
  match call_kind ctx path with
  | KPut -> (
      let evald = eval_args () in
      let bits = List.find_opt (fun (l, _, _) -> l = Asttypes.Labelled "bits") evald in
      match bits with
      | None -> top  (* partial application without ~bits: not a site *)
      | Some (_, we, _) ->
          if ctx.report then ctx.puts <- ctx.puts + 1;
          let wav, wsrc = width_info we in
          check_width e we wav;
          (* the value is the last unlabelled argument *)
          let value =
            List.fold_left
              (fun acc (l, a, _) -> if l = Asttypes.Nolabel then Some a else acc)
              None evald
          in
          (match value with
          | Some ve -> certify env ve e we wav wsrc
          | None -> ());
          const 0)
  | KGet -> (
      let evald = eval_args () in
      let bits = List.find_opt (fun (l, _, _) -> l = Asttypes.Labelled "bits") evald in
      match bits with
      | None -> top
      | Some (_, we, _) ->
          if ctx.report then ctx.gets <- ctx.gets + 1;
          let wav, _ = width_info we in
          check_width e we wav;
          let hi =
            if wav.iv.lo = wav.iv.hi && wav.iv.lo >= 0 && wav.iv.lo <= 30 then
              pow2m1 wav.iv.lo
            else pow2m1 30
          in
          finish
            (with_prov
               { top with iv = { lo = 0; hi } }
               (Printf.sprintf "Bitio.get ~bits:%s reads [0, %d]" (normtext we) hi)))
  | KPutVarint | KGetVarint ->
      List.iter (fun (_, a) -> ignore (self env a)) args;
      if call_kind ctx path = KGetVarint then finish { top with iv = { lo = 0; hi = max_i } }
      else const 0
  | KBitsNeeded -> (
      match args with
      | [ (Asttypes.Nolabel, a) ] ->
          ignore (self env a);
          let wof = deref_form a in
          finish
            (with_prov
               { top with iv = { lo = 1; hi = 62 }; wof }
               (match wof with
               | Some (m, c) ->
                   Printf.sprintf "bits_needed(!%s%s): 2^w - 1 covers !%s%s" m
                     (if c = 0 then "" else Printf.sprintf " %+d" c)
                     m
                     (if c = 0 then "" else Printf.sprintf " %+d" c)
               | None -> "bits_needed result in [1, 62]"))
      | _ ->
          List.iter (fun (_, a) -> ignore (self env a)) args;
          top)
  | KRepo sym -> (
      List.iter (fun (_, a) -> ignore (self env a)) args;
      (* width-helper: wof of the last argument *)
      let wof =
        match Hashtbl.find_opt summ.wof_memo sym with
        | Some cached -> (
            match cached with
            | None -> None
            | Some c -> (
                match List.rev args with
                | (Asttypes.Nolabel, last) :: _ -> (
                    match deref_form last with
                    | Some (m, d) -> Some (m, c + d)
                    | None -> None)
                | _ -> None))
        | None -> (
            let off =
              match Cg.find ctx.cg sym with Some b -> wof_offset_of b | None -> None
            in
            Hashtbl.replace summ.wof_memo sym off;
            match off with
            | None -> None
            | Some c -> (
                match List.rev args with
                | (Asttypes.Nolabel, last) :: _ -> (
                    match deref_form last with
                    | Some (m, d) -> Some (m, c + d)
                    | None -> None)
                | _ -> None))
      in
      let s = summary_of summ ctx sym in
      match wof with
      | Some _ ->
          finish
            (with_prov { s with wof }
               (Printf.sprintf "`%s` is a width helper" (Cg.display sym)))
      | None -> finish s)
  | KExt norm -> (
      let key = String.concat "." norm in
      match key with
      | "+" | "-" -> (
          match
            arith2 (fun _ b av bv ->
                let op_iv =
                  if key = "+" then
                    { lo = sat (av.iv.lo + bv.iv.lo); hi = sat (av.iv.hi + bv.iv.hi) }
                  else { lo = sat (av.iv.lo - bv.iv.hi); hi = sat (av.iv.hi - bv.iv.lo) }
                in
                let bound =
                  match (av.bound, int_const b) with
                  | Some (m, k), Some c ->
                      Some (m, if key = "+" then k + c else k - c)
                  | _ -> None
                in
                { top with iv = op_iv; bound; prov = av.prov })
          with
          | Some r -> finish r
          | None ->
              List.iter (fun (_, a) -> ignore (self env a)) args;
              finish top)
      | "*" -> (
          match arith2 (fun _ _ av bv -> { top with iv = iv_mul av.iv bv.iv }) with
          | Some r -> finish r
          | None -> finish top)
      | "land" -> (
          match
            arith2 (fun a b av bv ->
                let from_mask mav other =
                  (* x land ((1 lsl w) - 1) keeps the mask certificate *)
                  match mav.mask_of with
                  | Some w when other.iv.lo >= 0 || true ->
                      Some { top with iv = { lo = 0; hi = mav.iv.hi }; mask_of = Some w }
                  | _ -> None
                in
                let from_const ce other =
                  match int_const ce with
                  | Some c when c >= 0 -> Some { top with iv = { lo = 0; hi = c }; prov = other.prov }
                  | _ -> None
                in
                match from_mask bv av with
                | Some r -> r
                | None -> (
                    match from_mask av bv with
                    | Some r -> r
                    | None -> (
                        match from_const b av with
                        | Some r -> r
                        | None -> (
                            match from_const a bv with
                            | Some r -> r
                            | None ->
                                if av.iv.lo >= 0 || bv.iv.lo >= 0 then
                                  { top with iv = { lo = 0; hi = max_i } }
                                else top))))
          with
          | Some r -> finish r
          | None -> finish top)
      | "lor" -> (
          match
            arith2 (fun _ _ av bv ->
                if av.iv.lo >= 0 && bv.iv.lo >= 0 then
                  {
                    top with
                    iv =
                      {
                        lo = max av.iv.lo bv.iv.lo;
                        hi = sat (mask_up av.iv.hi lor mask_up bv.iv.hi);
                      };
                  }
                else top)
          with
          | Some r -> finish r
          | None -> finish top)
      | "lsr" -> (
          match
            arith2 (fun _ b av _ ->
                match int_const b with
                | Some c when c >= 0 && c < 62 ->
                    if av.iv.lo >= 0 then
                      { top with iv = { lo = av.iv.lo lsr c; hi = av.iv.hi lsr c } }
                    else { top with iv = { lo = 0; hi = max_i } }
                | _ -> { top with iv = { lo = 0; hi = max_i } })
          with
          | Some r -> finish r
          | None -> finish top)
      | "lsl" -> (
          match
            arith2 (fun _ b av _ ->
                match int_const b with
                | Some c when c >= 0 && c < 62 && av.iv.lo >= 0 ->
                    { top with iv = { lo = sat (smul av.iv.lo (1 lsl c)); hi = sat (smul av.iv.hi (1 lsl c)) } }
                | _ -> top)
          with
          | Some r -> finish r
          | None -> finish top)
      | "mod" -> (
          match
            arith2 (fun _ b av _ ->
                match int_const b with
                | Some c when c > 0 && av.iv.lo >= 0 -> { top with iv = { lo = 0; hi = c - 1 } }
                | _ -> top)
          with
          | Some r -> finish r
          | None -> finish top)
      | "min" -> (
          match
            arith2 (fun _ _ av bv ->
                { top with iv = { lo = min av.iv.lo bv.iv.lo; hi = min av.iv.hi bv.iv.hi } })
          with
          | Some r -> finish r
          | None -> finish top)
      | "max" -> (
          match
            arith2 (fun _ _ av bv ->
                { top with iv = { lo = max av.iv.lo bv.iv.lo; hi = max av.iv.hi bv.iv.hi } })
          with
          | Some r -> finish r
          | None -> finish top)
      | "abs" ->
          List.iter (fun (_, a) -> ignore (self env a)) args;
          finish { top with iv = { lo = 0; hi = max_i } }
      | _ ->
          List.iter (fun (_, a) -> ignore (self env a)) args;
          finish top)

(* interval summary of an in-repo callee: body with parameters top *)
and summary_of summ ctx sym : av =
  match Hashtbl.find_opt summ.memo sym with
  | Some av -> av
  | None ->
      if Hashtbl.mem summ.in_progress sym then top
      else begin
        Hashtbl.add summ.in_progress sym ();
        let av =
          match Cg.find ctx.cg sym with
          | None -> top
          | Some b ->
              let cctx =
                {
                  cg = ctx.cg;
                  file = b.Cg.file;
                  report = false;
                  findings = [];
                  facts = Hashtbl.create 16;
                  refs = Hashtbl.create 8;
                  arrays = Hashtbl.create 8;
                  defs = Hashtbl.create 16;
                  refines = [];
                  puts = 0;
                  gets = 0;
                }
              in
              let params, body = strip_fun_params [] b.Cg.expr in
              let env =
                List.fold_left (fun env v -> StrMap.add v top env) StrMap.empty params
              in
              (* two passes: max-fold facts register on the first *)
              ignore (exec summ cctx env body);
              Hashtbl.reset cctx.arrays;
              let r = exec summ cctx env body in
              {
                top with
                iv = r.iv;
                prov =
                  [ Printf.sprintf "`%s` returns %s" (Cg.display sym) (iv_str r.iv) ];
              }
        in
        Hashtbl.remove summ.in_progress sym;
        Hashtbl.replace summ.memo sym av;
        av
      end

(* ------------------------------------------------------------------ *)
(* Field traces: reader/writer symmetry *)

type wdesc = Wconst of int | Wslot of int | Wother of string

type tnode = {
  t_w : wdesc option;  (* None = varint *)
  t_def : int option;  (* the slot this field's value defines *)
}

type tr = F of tnode | Br of tr list list | Loop of tr list | Rec

type tstate = {
  ts_ctx : ctx;
  slots : (string, int) Hashtbl.t;
  mutable next_slot : int;
  t_memo : (Cg.sym, tr list * int) Hashtbl.t;  (* raw trace, slot count *)
  mutable t_stack : Cg.sym list;
}

let rec shift_slots base nodes =
  List.map
    (function
      | F { t_w; t_def } ->
          F
            {
              t_w =
                (match t_w with
                | Some (Wslot i) -> Some (Wslot (i + base))
                | w -> w);
              t_def = Option.map (fun i -> i + base) t_def;
            }
      | Br arms -> Br (List.map (shift_slots base) arms)
      | Loop b -> Loop (shift_slots base b)
      | Rec -> Rec)
    nodes

let rec extract (ts : tstate) (cur : Cg.sym) (e : P.expression) : tr list =
  let ctx = ts.ts_ctx in
  let slot_of x =
    match Hashtbl.find_opt ts.slots x with
    | Some i -> i
    | None ->
        let i = ts.next_slot in
        ts.next_slot <- i + 1;
        Hashtbl.add ts.slots x i;
        i
  in
  let wdesc_of (we : P.expression) =
    match int_const we with
    | Some c -> Wconst c
    | None -> (
        match we.pexp_desc with
        | P.Pexp_ident { txt = Longident.Lident x; _ } -> (
            match Hashtbl.find_opt ts.slots x with
            | Some i -> Wslot i
            | None -> (
                (* module-level width constant *)
                match Cg.resolve_ref ctx.cg ~file:ctx.file [ x ] with
                | Some sym -> (
                    match Cg.find ctx.cg sym with
                    | Some b -> (
                        match int_const b.Cg.expr with
                        | Some c -> Wconst c
                        | None -> Wother (normtext we))
                    | None -> Wother (normtext we))
                | None -> Wother (normtext we)))
        | _ -> Wother (normtext we))
  in
  match e.pexp_desc with
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, args) -> (
      let path = lid_path txt in
      let arg_nodes () =
        List.concat_map (fun (_, a) -> extract ts cur a) args
      in
      match call_kind ctx path with
      | KPut ->
          let pre = arg_nodes () in
          let bits = List.assoc_opt (Asttypes.Labelled "bits") args in
          let value =
            List.fold_left
              (fun acc (l, a) -> if l = Asttypes.Nolabel then Some a else acc)
              None args
          in
          let def =
            match value with
            | Some { pexp_desc = P.Pexp_ident { txt = Longident.Lident x; _ }; _ } ->
                Some (slot_of x)
            | _ -> None
          in
          (match bits with
          | Some we -> pre @ [ F { t_w = Some (wdesc_of we); t_def = def } ]
          | None -> pre)
      | KGet -> (
          let pre = arg_nodes () in
          match List.assoc_opt (Asttypes.Labelled "bits") args with
          | Some we -> pre @ [ F { t_w = Some (wdesc_of we); t_def = None } ]
          | None -> pre)
      | KPutVarint ->
          let pre = arg_nodes () in
          let value =
            List.fold_left
              (fun acc (l, a) -> if l = Asttypes.Nolabel then Some a else acc)
              None args
          in
          let def =
            match value with
            | Some { pexp_desc = P.Pexp_ident { txt = Longident.Lident x; _ }; _ } ->
                Some (slot_of x)
            | _ -> None
          in
          pre @ [ F { t_w = None; t_def = def } ]
      | KGetVarint -> arg_nodes () @ [ F { t_w = None; t_def = None } ]
      | KBitsNeeded | KExt _ -> arg_nodes ()
      | KRepo sym ->
          let pre = arg_nodes () in
          if List.exists (fun s -> Cg.sym_compare s sym = 0) (cur :: ts.t_stack) then
            pre @ [ Rec ]
          else begin
            let callee_trace, callee_slots =
              match Hashtbl.find_opt ts.t_memo sym with
              | Some t -> t
              | None -> raw_trace_of ts sym
            in
            if callee_trace = [] then pre
            else begin
              let base = ts.next_slot in
              ts.next_slot <- base + callee_slots;
              pre @ shift_slots base callee_trace
            end
          end)
  | P.Pexp_apply (head, args) ->
      (* [@] evaluates right-to-left; slot registration must see program order *)
      let h = extract ts cur head in
      h @ List.concat_map (fun (_, a) -> extract ts cur a) args
  | P.Pexp_let (_, vbs, body) ->
      let nodes =
        List.concat_map
          (fun (vb : P.value_binding) ->
            let rhs_nodes = extract ts cur vb.P.pvb_expr in
            match (vb.pvb_pat.ppat_desc, List.rev rhs_nodes) with
            | P.Ppat_var { txt = x; _ }, F last :: rev_rest
              when last.t_def = None
                   && (match vb.P.pvb_expr.pexp_desc with
                      | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _) -> (
                          match call_kind ctx (lid_path txt) with
                          | KGet | KGetVarint -> true
                          | _ -> false)
                      | _ -> false) ->
                List.rev (F { last with t_def = Some (slot_of x) } :: rev_rest)
            | _ -> rhs_nodes)
          vbs
      in
      nodes @ extract ts cur body
  | P.Pexp_sequence (a, b) ->
      let na = extract ts cur a in
      na @ extract ts cur b
  | P.Pexp_ifthenelse (c, t, eo) ->
      let pre = extract ts cur c in
      let then_arms = if diverges t then [] else [ extract ts cur t ] in
      let else_arms =
        match eo with
        | None -> [ [] ]
        | Some el -> if diverges el then [] else [ extract ts cur el ]
      in
      pre @ [ Br (then_arms @ else_arms) ]
  | P.Pexp_match (scr, cases) | P.Pexp_try (scr, cases) ->
      let pre = extract ts cur scr in
      let arms =
        List.filter_map
          (fun (c : P.case) ->
            if diverges c.P.pc_rhs then None else Some (extract ts cur c.P.pc_rhs))
          cases
      in
      pre @ [ Br arms ]
  | P.Pexp_for (_, lo, hi, _, body) ->
      let nlo = extract ts cur lo in
      let nhi = extract ts cur hi in
      nlo @ nhi @ [ Loop (extract ts cur body) ]
  | P.Pexp_while (c, body) ->
      let nc = extract ts cur c in
      nc @ [ Loop (extract ts cur body) ]
  | P.Pexp_fun (_, _, _, body) | P.Pexp_newtype (_, body) -> [ Loop (extract ts cur body) ]
  | P.Pexp_function cases ->
      [ Br (List.map (fun (c : P.case) -> extract ts cur c.P.pc_rhs) cases) ]
  | P.Pexp_constraint (x, _)
  | P.Pexp_open (_, x)
  | P.Pexp_letmodule (_, _, x)
  | P.Pexp_letexception (_, x) ->
      extract ts cur x
  | P.Pexp_tuple es | P.Pexp_array es -> List.concat_map (extract ts cur) es
  | P.Pexp_construct (_, Some x) | P.Pexp_variant (_, Some x) -> extract ts cur x
  | P.Pexp_record (fields, base) ->
      List.concat_map (fun (_, x) -> extract ts cur x) fields
      @ (match base with Some b -> extract ts cur b | None -> [])
  | P.Pexp_field (x, _) -> extract ts cur x
  | P.Pexp_setfield (x, _, v) ->
      let nx = extract ts cur x in
      nx @ extract ts cur v
  | P.Pexp_assert x | P.Pexp_lazy x -> extract ts cur x
  | _ -> []

and raw_trace_of (ts : tstate) sym : tr list * int =
  match Hashtbl.find_opt ts.t_memo sym with
  | Some t -> t
  | None -> (
      match Cg.find ts.ts_ctx.cg sym with
      | None ->
          Hashtbl.replace ts.t_memo sym ([], 0);
          ([], 0)
      | Some b ->
          (* fresh slot namespace per binding *)
          let saved_slots = Hashtbl.copy ts.slots in
          let saved_next = ts.next_slot in
          let saved_file = ts.ts_ctx.file in
          Hashtbl.reset ts.slots;
          ts.next_slot <- 0;
          ts.ts_ctx.file <- b.Cg.file;
          ts.t_stack <- sym :: ts.t_stack;
          let _, body = strip_fun_params [] b.Cg.expr in
          let nodes = extract ts sym body in
          let nslots = ts.next_slot in
          ts.t_stack <- List.tl ts.t_stack;
          Hashtbl.reset ts.slots;
          Hashtbl.iter (fun k v -> Hashtbl.replace ts.slots k v) saved_slots;
          ts.next_slot <- saved_next;
          ts.ts_ctx.file <- saved_file;
          Hashtbl.replace ts.t_memo sym (nodes, nslots);
          (nodes, nslots))

(* normalization: drop unused slot defs, splice trivial branches, hoist
   common prefixes/suffixes out of branches *)
let used_slots nodes =
  let used = Hashtbl.create 8 in
  let rec go = function
    | F { t_w = Some (Wslot i); _ } -> Hashtbl.replace used i ()
    | F _ | Rec -> ()
    | Br arms -> List.iter (List.iter go) arms
    | Loop b -> List.iter go b
  in
  List.iter go nodes;
  used

let drop_unused_defs nodes =
  let used = used_slots nodes in
  let rec go = function
    | F ({ t_def = Some i; _ } as n) when not (Hashtbl.mem used i) -> F { n with t_def = None }
    | F n -> F n
    | Br arms -> Br (List.map (List.map go) arms)
    | Loop b -> Loop (List.map go b)
    | Rec -> Rec
  in
  List.map go nodes

let rec norm nodes = List.concat_map norm1 nodes

and norm1 = function
  | F n -> [ F n ]
  | Rec -> [ Rec ]
  | Loop b -> ( match norm b with [] -> [] | b -> [ Loop b ])
  | Br arms -> (
      let arms = List.map norm arms in
      (* dedupe identical arms *)
      let arms =
        List.fold_left (fun acc a -> if List.mem a acc then acc else acc @ [ a ]) [] arms
      in
      match arms with
      | [] -> []
      | [ a ] -> a
      | arms when List.for_all (( = ) []) arms -> []
      | arms ->
          (* hoist shared prefix *)
          let rec hoist_prefix arms acc =
            match arms with
            | first :: _ when List.for_all (fun a -> a <> []) arms -> (
                match first with
                | h :: _ when List.for_all (fun a -> List.hd a = h) arms ->
                    hoist_prefix (List.map List.tl arms) (acc @ [ h ])
                | _ -> (acc, arms))
            | _ -> (acc, arms)
          in
          let prefix, arms = hoist_prefix arms [] in
          let rev_arms = List.map List.rev arms in
          let rsuffix, rev_arms = hoist_prefix rev_arms [] in
          let arms = List.map List.rev rev_arms in
          let suffix = List.rev rsuffix in
          let mid =
            let arms =
              List.fold_left
                (fun acc a -> if List.mem a acc then acc else acc @ [ a ])
                [] arms
            in
            match arms with
            | [] -> []
            | [ a ] -> a
            | arms when List.for_all (( = ) []) arms -> []
            | arms -> [ Br arms ]
          in
          prefix @ mid @ suffix)

(* canonical rendering: slots renumbered by first occurrence, branch
   arms sorted so arm order is immaterial *)
let canon nodes =
  let rec render map next nodes =
    let id i =
      match Hashtbl.find_opt map i with
      | Some c -> c
      | None ->
          let c = !next in
          incr next;
          Hashtbl.add map i c;
          c
    in
    String.concat ";"
      (List.map
         (function
           | F { t_w; t_def } ->
               let w =
                 match t_w with
                 | None -> "v"
                 | Some (Wconst c) -> Printf.sprintf "f%d" c
                 | Some (Wslot i) -> Printf.sprintf "f[s%d]" (id i)
                 | Some (Wother t) -> Printf.sprintf "f[%s]" t
               in
               let d = match t_def with Some i -> Printf.sprintf ">s%d" (id i) | None -> "" in
               w ^ d
           | Rec -> "rec"
           | Loop b -> Printf.sprintf "(%s)*" (render map next b)
           | Br arms ->
               let keyed =
                 List.map
                   (fun a ->
                     let m = Hashtbl.copy map and n = ref !next in
                     (render m n a, a))
                   arms
               in
               let sorted =
                 List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) keyed
               in
               Printf.sprintf "{%s}"
                 (String.concat " | " (List.map (fun (_, a) -> render map next a) sorted)))
         nodes)
  in
  render (Hashtbl.create 8) (ref 0) nodes

(* writer-name -> reader-name conventions, tried in order *)
let reader_name_of writer =
  let swap ~pre ~by =
    let lp = String.length pre in
    if String.length writer >= lp && String.sub writer 0 lp = pre then
      Some (by ^ String.sub writer lp (String.length writer - lp))
    else None
  in
  if writer = "write" then Some "read"
  else if writer = "encode" then Some "decode"
  else if writer = "put" then Some "get"
  else if writer = "save" then Some "load"
  else
    match swap ~pre:"write_" ~by:"read_" with
    | Some r -> Some r
    | None -> (
        match swap ~pre:"encode_" ~by:"decode_" with
        | Some r -> Some r
        | None -> (
            match swap ~pre:"put_" ~by:"get_" with
            | Some r -> Some r
            | None -> (
                match swap ~pre:"save_" ~by:"load_" with
                | Some r -> Some r
                | None -> (
                    match swap ~pre:"writer" ~by:"reader" with
                    | Some r -> Some r
                    | None -> None))))

(* ------------------------------------------------------------------ *)
(* Whole-repo analysis *)

type pair = {
  p_writer : Cg.sym;
  p_reader : Cg.sym;
  p_wtrace : string;
  p_rtrace : string;
  p_symmetric : bool;
  p_line : int;
}

type report = {
  w_findings : Lint_core.finding list;
  w_pairs : pair list;
  w_puts : int;
  w_gets : int;
}

let analyze (cg : Cg.t) : report =
  let summ =
    { memo = Hashtbl.create 64; in_progress = Hashtbl.create 8; wof_memo = Hashtbl.create 16 }
  in
  let findings = ref [] in
  let puts = ref 0 and gets = ref 0 in
  (* interval pass over every binding *)
  List.iter
    (fun sym ->
      match Cg.find cg sym with
      | None -> ()
      | Some b ->
          let ctx =
            {
              cg;
              file = b.Cg.file;
              report = false;
              findings = [];
              facts = Hashtbl.create 16;
              refs = Hashtbl.create 8;
              arrays = Hashtbl.create 8;
              defs = Hashtbl.create 16;
              refines = [];
              puts = 0;
              gets = 0;
            }
          in
          let params, body = strip_fun_params [] b.Cg.expr in
          let env = List.fold_left (fun env v -> StrMap.add v top env) StrMap.empty params in
          (* pass 1 (silent) registers max-fold facts; pass 2 certifies *)
          ignore (exec summ ctx env body);
          Hashtbl.reset ctx.arrays;
          ctx.report <- true;
          ignore (exec summ ctx env body);
          findings := List.rev_append ctx.findings !findings;
          puts := !puts + ctx.puts;
          gets := !gets + ctx.gets)
    cg.Cg.order;
  (* trace-symmetry pass over writer/reader pairs *)
  let tctx =
    {
      cg;
      file = "";
      report = false;
      findings = [];
      facts = Hashtbl.create 1;
      refs = Hashtbl.create 1;
      arrays = Hashtbl.create 1;
      defs = Hashtbl.create 1;
      refines = [];
      puts = 0;
      gets = 0;
    }
  in
  let ts =
    {
      ts_ctx = tctx;
      slots = Hashtbl.create 8;
      next_slot = 0;
      t_memo = Hashtbl.create 32;
      t_stack = [];
    }
  in
  let pairs = ref [] in
  List.iter
    (fun sym ->
      let last =
        match List.rev (String.split_on_char '.' sym.Cg.s_path) with
        | l :: _ -> l
        | [] -> sym.Cg.s_path
      in
      match reader_name_of last with
      | None -> ()
      | Some rname -> (
          let rpath =
            match List.rev (String.split_on_char '.' sym.Cg.s_path) with
            | _ :: rest -> String.concat "." (List.rev (rname :: rest))
            | [] -> rname
          in
          let rsym = { Cg.s_file = sym.Cg.s_file; s_path = rpath } in
          match Cg.find cg rsym with
          | None -> ()
          | Some rb ->
              let wt = norm (drop_unused_defs (fst (raw_trace_of ts sym))) in
              let rt = norm (drop_unused_defs (fst (raw_trace_of ts rsym))) in
              (* a side with no trace is a primitive or plumbing, not a codec
                 half; §3i documents this as a coverage caveat *)
              if wt = [] || rt = [] then ()
              else begin
                let wc = canon wt and rc = canon rt in
                let sym_ok = wc = rc in
                let line =
                  match Cg.find cg sym with Some b -> b.Cg.line | None -> rb.Cg.line
                in
                pairs :=
                  {
                    p_writer = sym;
                    p_reader = rsym;
                    p_wtrace = wc;
                    p_rtrace = rc;
                    p_symmetric = sym_ok;
                    p_line = line;
                  }
                  :: !pairs;
                if not sym_ok then
                  findings :=
                    {
                      Lint_core.rule = "codec-mismatch";
                      file = sym.Cg.s_file;
                      line;
                      col = 0;
                      message =
                        Printf.sprintf
                          "writer `%s` and reader `%s` disagree on field order/widths: \
                           writer trace %s, reader trace %s"
                          (Cg.display sym) (Cg.display rsym) wc rc;
                    }
                    :: !findings
              end))
    cg.Cg.order;
  let sorted =
    List.sort
      (fun (a : Lint_core.finding) (b : Lint_core.finding) ->
        match String.compare a.file b.file with
        | 0 -> (
            match Int.compare a.line b.line with
            | 0 -> (
                match Int.compare a.col b.col with
                | 0 -> String.compare a.message b.message
                | c -> c)
            | c -> c)
        | c -> c)
      !findings
  in
  { w_findings = sorted; w_pairs = List.rev !pairs; w_puts = !puts; w_gets = !gets }

let findings_of_report r = r.w_findings
let findings cg = findings_of_report (analyze cg)

let pairs r =
  List.map (fun p -> (Cg.display p.p_writer, Cg.display p.p_reader, p.p_symmetric)) r.w_pairs

let to_json (r : report) =
  let json_escape = Effects.json_escape in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"repro-lint/widths/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"put_sites\": %d, \"get_sites\": %d, \"pairs\": %d, \
        \"symmetric_pairs\": %d, \"findings\": %d},\n"
       r.w_puts r.w_gets (List.length r.w_pairs)
       (List.length (List.filter (fun p -> p.p_symmetric) r.w_pairs))
       (List.length r.w_findings));
  Buffer.add_string buf "  \"pairs\": [\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"writer\": \"%s\", \"reader\": \"%s\", \"symmetric\": %b, \
            \"writer_trace\": \"%s\", \"reader_trace\": \"%s\"}"
           (json_escape (Cg.display p.p_writer))
           (json_escape (Cg.display p.p_reader))
           p.p_symmetric
           (json_escape p.p_wtrace) (json_escape p.p_rtrace)))
    r.w_pairs;
  Buffer.add_string buf "\n  ],\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Format.asprintf "    %a" Lint_core.pp_finding_json f))
    r.w_findings;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
