(* CLI driver for the model-compliance lint: [lint [--format text|json]
   [--baseline FILE] <file-or-dir>...]. Directories are walked
   recursively for [.ml] files (in sorted order, so output and baseline
   application are stable). Exits 0 when clean, 1 on findings or stale
   baseline entries, 2 on usage/parse errors. *)

module Lint_core = Repro_lint.Lint_core

let usage = "lint [--format text|json] [--baseline FILE] <file-or-dir>..."

let rec collect path acc =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect (Filename.concat path entry) acc) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let format = ref "text" in
  let baseline_path = ref "" in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " output format (default text)" );
      ("--baseline", Arg.Set_string baseline_path, "FILE suppress baselined findings");
      ( "--rules",
        Arg.Unit
          (fun () ->
            List.iter (fun (id, d) -> Printf.printf "%-16s %s\n" id d) Lint_core.rules;
            exit 0),
        " list rule ids and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files = List.fold_left (fun acc p -> collect p acc) [] (List.rev !paths) in
  let files = List.sort_uniq String.compare files in
  let findings = ref [] and broken = ref false in
  List.iter
    (fun file ->
      match Lint_core.lint_file file with
      | Ok fs -> findings := !findings @ fs
      | Error msg ->
          Printf.eprintf "lint: cannot parse %s:\n%s\n" file msg;
          broken := true)
    files;
  if !broken then exit 2;
  let outcome =
    match !baseline_path with
    | "" -> { Lint_core.fresh = !findings; stale = [] }
    | path -> (
        let ic = open_in_bin path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Lint_core.parse_baseline text with
        | Ok entries -> Lint_core.apply_baseline entries !findings
        | Error msgs ->
            List.iter prerr_endline msgs;
            exit 2)
  in
  (match !format with
  | "json" ->
      Format.printf "[@[<v>";
      List.iteri
        (fun i f ->
          if i > 0 then Format.printf ",@,";
          Format.printf "%a" Lint_core.pp_finding_json f)
        outcome.Lint_core.fresh;
      Format.printf "@]]@."
  | _ ->
      List.iter
        (fun f -> Format.printf "%a@." Lint_core.pp_finding_text f)
        outcome.Lint_core.fresh);
  List.iter
    (fun ((e : Lint_core.baseline_entry), actual) ->
      Printf.eprintf
        "lint: stale baseline entry: %s %s expects %d finding(s) but %d exist — shrink the \
         baseline\n"
        e.Lint_core.b_rule e.Lint_core.b_file e.Lint_core.count actual)
    outcome.Lint_core.stale;
  let fresh = List.length outcome.Lint_core.fresh in
  if fresh > 0 then
    Printf.eprintf "lint: %d finding(s) over %d file(s); see DESIGN.md for the rule table\n"
      fresh (List.length files);
  if fresh > 0 || outcome.Lint_core.stale <> [] then exit 1
