(* CLI driver for the model-compliance lint:

     lint [--format text|json] [--baseline FILE] [--no-interproc]
          [--only PASS] [--effects-out FILE] [--domains-out FILE]
          [--alloc-out FILE] [--widths-out FILE] [--bandwidth-out FILE]
          [--bench-out FILE] [--update-baseline] <file-or-dir>...

   Directories are walked recursively for [.ml] files (in sorted order,
   so output and baseline application are stable). Each file is parsed
   once; the single-file rules run per file and, unless
   [--no-interproc] is given, the whole file set feeds the
   interprocedural passes (symbol/call graph -> effect summaries ->
   node-locality / send-discipline -> domain-safety -> hot-alloc ->
   widths -> bandwidth). [--only PASS] runs exactly one of
   rules/interproc/domains/alloc/widths/bandwidth (unknown pass names
   are a usage error, exit 2); baseline entries for the other passes
   are set aside rather than reported stale.
   [--effects-out]/[--domains-out]/[--alloc-out]/[--widths-out]/
   [--bandwidth-out] additionally dump the corresponding JSON reports;
   [--bench-out] writes BENCH_lint.json timing rows (whole-repo
   certifier wall-clock, plus per-pass rows for the widths and
   bandwidth certifiers) so analysis cost is tracked alongside the
   fault benches. [--update-baseline] rewrites the baseline file in
   place from the current findings instead of reporting them. A
   baseline entry still marked "TODO justify" fails the build. Exits 0
   when clean, 1 on findings, stale baseline entries, or unjustified
   entries, 2 on usage/parse errors or nonexistent paths. *)

module Lint_core = Repro_lint.Lint_core
module Interproc = Repro_lint.Interproc
module Effects = Repro_lint.Effects
module Callgraph = Repro_lint.Callgraph
module Domains = Repro_lint.Domains
module Alloc = Repro_lint.Alloc
module Widths = Repro_lint.Widths
module Bandwidth = Repro_lint.Bandwidth

let usage =
  "lint [--format text|json] [--baseline FILE] [--no-interproc] [--only PASS] \
   [--effects-out FILE] [--domains-out FILE] [--alloc-out FILE] [--widths-out FILE] \
   [--bandwidth-out FILE] [--bench-out FILE] [--update-baseline] <file-or-dir>..."

let passes = [ "rules"; "interproc"; "domains"; "alloc"; "widths"; "bandwidth" ]

(* the rule ids each pass owns, for scoping the baseline under --only *)
let pass_rules = function
  | "rules" ->
      List.filter
        (fun id -> not (List.mem id Lint_core.interproc_rule_ids))
        Lint_core.rule_ids
  | "interproc" -> [ "node-locality"; "send-discipline" ]
  | "domains" -> [ "domain-safety" ]
  | "alloc" -> [ "hot-alloc" ]
  | "widths" -> [ "width-trunc"; "width-range"; "codec-mismatch" ]
  | "bandwidth" -> [ "bandwidth-sound"; "bandwidth-charge" ]
  | _ -> []

let rec collect path acc =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect (Filename.concat path entry) acc) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let format = ref "text" in
  let baseline_path = ref "" in
  let interproc = ref true in
  let effects_out = ref "" in
  let domains_out = ref "" in
  let alloc_out = ref "" in
  let widths_out = ref "" in
  let bandwidth_out = ref "" in
  let bench_out = ref "" in
  let only = ref "" in
  let update_baseline = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " output format (default text)" );
      ("--baseline", Arg.Set_string baseline_path, "FILE suppress baselined findings");
      ( "--interproc",
        Arg.Set interproc,
        " run the interprocedural pass (default; see --no-interproc)" );
      ( "--no-interproc",
        Arg.Clear interproc,
        " skip the interprocedural pass (single-file rules only)" );
      ( "--effects-out",
        Arg.Set_string effects_out,
        "FILE write the per-binding effect summaries as JSON" );
      ( "--domains-out",
        Arg.Set_string domains_out,
        "FILE write the domain-safety classification report as JSON" );
      ( "--alloc-out",
        Arg.Set_string alloc_out,
        "FILE write the [@@hot] allocation-site report as JSON" );
      ( "--widths-out",
        Arg.Set_string widths_out,
        "FILE write the codec width/symmetry certificate as JSON" );
      ( "--bandwidth-out",
        Arg.Set_string bandwidth_out,
        "FILE write the per-algorithm bandwidth verdict table as JSON" );
      ( "--only",
        Arg.Set_string only,
        "PASS run exactly one pass (rules|interproc|domains|alloc|widths|bandwidth)" );
      ( "--bench-out",
        Arg.Set_string bench_out,
        "FILE write a BENCH_lint.json timing row (certifier wall-clock)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the --baseline file from current findings (new entries marked 'TODO \
         justify') and exit" );
      ( "--rules",
        Arg.Unit
          (fun () ->
            List.iter (fun (id, d) -> Printf.printf "%-16s %s\n" id d) Lint_core.rules;
            exit 0),
        " list rule ids and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  if !update_baseline && !baseline_path = "" then begin
    prerr_endline "lint: --update-baseline requires --baseline FILE";
    exit 2
  end;
  if !only <> "" && not (List.mem !only passes) then begin
    (* same field-naming contract as the CLIs: name the bad value and
       enumerate what would have been accepted *)
    Printf.eprintf "lint: --only: unknown pass %S (expected one of %s)\n" !only
      (String.concat ", " passes);
    exit 2
  end;
  if !only <> "" && !update_baseline then begin
    prerr_endline "lint: --only cannot be combined with --update-baseline";
    exit 2
  end;
  let files =
    List.fold_left
      (fun acc p ->
        (* Sys.is_directory raises Sys_error on a nonexistent path *)
        try collect p acc
        with Sys_error _ ->
          Printf.eprintf "lint: no such file or directory: %s\n" p;
          exit 2)
      [] (List.rev !paths)
  in
  let files = List.sort_uniq String.compare files in
  (* parse each file once; both passes consume the structures *)
  let parsed = ref [] and broken = ref false in
  List.iter
    (fun file ->
      match Lint_core.parse_source ~file (read_file file) with
      | Ok structure -> parsed := (file, structure) :: !parsed
      | Error msg ->
          Printf.eprintf "lint: cannot parse %s:\n%s\n" file msg;
          broken := true)
    files;
  if !broken then exit 2;
  let parsed = List.rev !parsed in
  let run pass = !only = "" || !only = pass in
  let findings =
    if not (run "rules") then []
    else
      (* linear accumulation: rev_append per file, one final rev *)
      List.fold_left
        (fun acc (file, structure) ->
          List.rev_append (Lint_core.lint_structure ~file structure) acc)
        [] parsed
      |> List.rev
  in
  let write_out path json =
    if path <> "" then begin
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json)
    end
  in
  let started = Unix.gettimeofday () in
  let interproc_wanted =
    !interproc
    && List.exists run [ "interproc"; "domains"; "alloc"; "widths"; "bandwidth" ]
  in
  let findings =
    if not interproc_wanted then findings
    else begin
      let cg = Callgraph.build parsed in
      if !effects_out <> "" && run "interproc" then
        write_out !effects_out (Effects.to_json cg (Effects.summarize cg));
      if !domains_out <> "" && run "domains" then
        write_out !domains_out (Domains.to_json cg (Domains.report cg));
      let hot = if run "alloc" then Alloc.analyze cg else [] in
      if !alloc_out <> "" && run "alloc" then write_out !alloc_out (Alloc.to_json hot);
      let timed f = let t0 = Unix.gettimeofday () in let r = f () in (r, Unix.gettimeofday () -. t0) in
      let widths_report, widths_wall =
        if run "widths" then timed (fun () -> Some (Widths.analyze cg)) else (None, 0.)
      in
      (match widths_report with
      | Some r when !widths_out <> "" -> write_out !widths_out (Widths.to_json r)
      | _ -> ());
      let bandwidth_report, bandwidth_wall =
        if run "bandwidth" then timed (fun () -> Some (Bandwidth.analyze cg parsed))
        else (None, 0.)
      in
      (match bandwidth_report with
      | Some r when !bandwidth_out <> "" -> write_out !bandwidth_out (Bandwidth.to_json r)
      | _ -> ());
      if !bench_out <> "" then begin
        let wall = Unix.gettimeofday () -. started in
        let rows =
          [
            Printf.sprintf
              "{\"experiment\": \"lint\", \"files\": %d, \"bindings\": %d, \"callbacks\": \
               %d, \"hot_functions\": %d, \"wall_s\": %.3f}"
              (List.length cg.Callgraph.files)
              (List.length cg.Callgraph.order)
              (List.length cg.Callgraph.callbacks)
              (List.length hot) wall;
          ]
          @ (match widths_report with
            | Some r ->
                [
                  Printf.sprintf
                    "{\"experiment\": \"lint-widths\", \"put_sites\": %d, \"get_sites\": \
                     %d, \"pairs\": %d, \"wall_s\": %.3f}"
                    r.Widths.w_puts r.Widths.w_gets
                    (List.length r.Widths.w_pairs)
                    widths_wall;
                ]
            | None -> [])
          @
          match bandwidth_report with
          | Some r ->
              [
                Printf.sprintf
                  "{\"experiment\": \"lint-bandwidth\", \"candidates\": %d, \
                   \"charge_sites\": %d, \"wall_s\": %.3f}"
                  (List.length r.Bandwidth.b_verdicts)
                  r.Bandwidth.b_charge_sites bandwidth_wall;
              ]
          | None -> []
        in
        write_out !bench_out
          (Printf.sprintf "{\n  \"rows\": [\n    %s\n  ]\n}\n" (String.concat ",\n    " rows))
      end;
      findings
      @ (if run "interproc" then Interproc.findings cg else [])
      @ (if run "domains" then Domains.findings cg else [])
      @ Alloc.findings_of_reports hot
      @ (match widths_report with Some r -> Widths.findings_of_report r | None -> [])
      @ match bandwidth_report with Some r -> Bandwidth.findings_of_report r | None -> []
    end
  in
  let baseline_entries =
    match !baseline_path with
    | "" -> []
    | path when (not (Sys.file_exists path)) && !update_baseline -> []
    | path -> (
        match Lint_core.parse_baseline (read_file path) with
        | Ok entries -> entries
        | Error msgs ->
            List.iter prerr_endline msgs;
            exit 2)
  in
  (* under --only, baseline entries owned by the passes that did not run
     are set aside: they are neither suppressing nor stale *)
  let baseline_entries =
    if !only = "" then baseline_entries
    else
      List.filter
        (fun (e : Lint_core.baseline_entry) ->
          List.mem e.Lint_core.b_rule (pass_rules !only))
        baseline_entries
  in
  if !update_baseline then begin
    let text = Lint_core.render_baseline ~old:baseline_entries findings in
    let oc = open_out_bin !baseline_path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
    let kept, fresh =
      List.partition
        (fun (f : Lint_core.finding) ->
          List.exists
            (fun (e : Lint_core.baseline_entry) ->
              e.Lint_core.b_rule = f.Lint_core.rule && e.Lint_core.b_file = f.Lint_core.file)
            baseline_entries)
        findings
    in
    Printf.eprintf
      "lint: %s updated: %d finding(s) baselined (%d under existing entries, %d new — grep \
       'TODO justify' and write justifications)\n"
      !baseline_path (List.length findings) (List.length kept) (List.length fresh);
    exit 0
  end;
  let unjustified = Lint_core.unjustified baseline_entries in
  List.iter
    (fun (e : Lint_core.baseline_entry) ->
      Printf.eprintf
        "lint: %s:%d: unjustified baseline entry: %s %s %d # %s — write a real \
         justification\n"
        !baseline_path e.Lint_core.b_line e.Lint_core.b_rule e.Lint_core.b_file
        e.Lint_core.count e.Lint_core.justification)
    unjustified;
  let outcome =
    match !baseline_path with
    | "" -> { Lint_core.fresh = findings; stale = [] }
    | _ -> Lint_core.apply_baseline baseline_entries findings
  in
  (match !format with
  | "json" ->
      Format.printf "[@[<v>";
      List.iteri
        (fun i f ->
          if i > 0 then Format.printf ",@,";
          Format.printf "%a" Lint_core.pp_finding_json f)
        outcome.Lint_core.fresh;
      Format.printf "@]]@."
  | _ ->
      List.iter
        (fun f -> Format.printf "%a@." Lint_core.pp_finding_text f)
        outcome.Lint_core.fresh);
  List.iter
    (fun ((e : Lint_core.baseline_entry), actual) ->
      Printf.eprintf
        "lint: stale baseline entry: %s %s expects %d finding(s) but %d exist — shrink the \
         baseline\n"
        e.Lint_core.b_rule e.Lint_core.b_file e.Lint_core.count actual)
    outcome.Lint_core.stale;
  let fresh = List.length outcome.Lint_core.fresh in
  if fresh > 0 then
    Printf.eprintf "lint: %d finding(s) over %d file(s); see DESIGN.md for the rule table\n"
      fresh (List.length files);
  if fresh > 0 || outcome.Lint_core.stale <> [] || unjustified <> [] then exit 1
