(** Bandwidth-soundness pass (DESIGN.md §3i): static message-size
    verdicts for every message module, plus certification of the
    [Metrics.add_words] / [add_checkpoint_words] charging sites.

    A message module is any submodule or anonymous functor-argument
    structure declaring both [type t] and [let words]. Its content gets
    a static upper bound [c + p*payload] derived from the field types of
    [t] ([int] = 1 word, [bool]/[unit]/[char] ride in the header, tuples
    and records sum, variants take the max over constructors, a foreign
    [.t] is one opaque payload); the [words] body is abstractly
    evaluated to the matching interval of linear forms. Undercharging
    ([bandwidth-sound]) and un-audited or inconsistent charging sites
    ([bandwidth-charge], requiring [[@@charge_site]] and a measure that
    reduces to an [M.words] accumulation or [Array.length]) fail the
    build. Soundness caveats in DESIGN.md §3i. *)

type verdict = {
  v_name : string;  (** e.g. ["Apsp.E"] or ["Transport.Make.Packet"] *)
  v_file : string;
  v_line : int;
  v_algo : string;  (** owning file's basename, e.g. ["apsp"] *)
  v_kind : string;
      (** ["algorithm"] (no payload component: O(1) words of O(log n)
          bits), ["wrapper"] (one payload + O(1) header words), or
          ["unknown"] when a bound is underivable *)
  v_content : string;  (** rendered content bound, e.g. ["5 + payload"] *)
  v_charged : string;  (** rendered maximal charge of the [words] body *)
  v_ok : bool;
  v_note : string;
}

type report = {
  b_verdicts : verdict list;
  b_findings : Lint_core.finding list;
  b_charge_sites : int;  (** charging sites certified audited + consistent *)
  b_all_pass : bool;  (** every verdict ok and no findings: the CI gate *)
}

(** [analyze cg parsed] — verdicts come from the parsed structures,
    charging-site certification from the call graph's bindings. *)
val analyze : Callgraph.t -> (string * Parsetree.structure) list -> report

val findings : Callgraph.t -> (string * Parsetree.structure) list -> Lint_core.finding list
val findings_of_report : report -> Lint_core.finding list

(** The machine-readable verdict table
    ([_build/default/analysis/bandwidth.json]). *)
val to_json : report -> string
