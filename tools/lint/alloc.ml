(* Allocation-discipline pass (DESIGN.md §3f): the static form of the
   EObs [Gc.minor_words = 0] guarantee.

   Functions annotated [@@hot] (the engine round loop, the transport
   fast path, the metrics setters, the guarded trace-emit spine)
   promise not to allocate on the minor heap. The EObs benchmark checks
   this dynamically for one configuration; this pass checks it
   statically for every configuration, with per-site provenance:

   - closure construction ([fun]/[function]/local [let f x = ...]/
     [lazy]) — a heap block per evaluation;
   - tuple / record / variant / array-literal boxing;
   - float boxing (applications of [+.]-family operators box their
     result outside flambda);
   - partial application (builds an intermediate closure) — detected
     only when the callee's syntactic arity and every argument are
     unlabelled, so optional/labelled-argument calls never false-positive;
   - allocating calls: externals on a deny-list ([List.map], [@], [^],
     [Hashtbl.add], ...), unresolved externals (assumed allocating),
     and in-repo callees whose [may_allocate] fixpoint over the call
     graph is true.

   Analysis is at the Parsetree level with callgraph-resolved callees
   (ISSUE 7 asks for Typedtree; running the type-checker across
   libraries is not feasible inside the lint, so types are approximated
   by the external allow/deny lists — a documented deviation, DESIGN.md
   §3f). Two deliberate exclusions keep the pass aligned with the
   runtime contract: branches guarded by the [tracing]/[audit] flags
   (or a [.enabled] sink field) are skipped, because the EObs guarantee
   is conditional on tracing being off; and a binding's leading
   parameters are stripped, because the top-level closure is built at
   module initialization, not per call. *)

module Cg = Callgraph
module P = Parsetree

type kind =
  | Closure
  | Tuple
  | Record
  | Variant
  | Array_lit
  | Float_box
  | Partial_app
  | Alloc_call
  | Unknown_call

let kind_name = function
  | Closure -> "closure"
  | Tuple -> "tuple"
  | Record -> "record"
  | Variant -> "variant"
  | Array_lit -> "array-literal"
  | Float_box -> "float-box"
  | Partial_app -> "partial-application"
  | Alloc_call -> "alloc-call"
  | Unknown_call -> "unknown-call"

type site = { a_kind : kind; a_line : int; a_col : int; a_what : string }

type hot_report = {
  h_sym : Cg.sym;
  h_line : int;
  h_sites : site list;  (* in source order *)
}

(* ------------------------------------------------------------------ *)
(* External classification *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "float_of_string" ]

(* externals known not to allocate: reads/writes of existing blocks,
   integer arithmetic, comparisons, control *)
let non_allocating =
  [
    "not"; "ignore"; "incr"; "decr"; "!"; ":="; "raise"; "raise_notrace";
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "&&"; "||"; "|>"; "@@";
    "abs"; "succ"; "pred"; "min"; "max"; "compare"; "fst"; "snd";
    "Int.compare"; "Int.equal"; "Int.max"; "Int.min"; "Int.abs";
    "Array.get"; "Array.set"; "Array.length"; "Array.unsafe_get"; "Array.unsafe_set";
    "Array.fill"; "Array.blit"; "Array.iter"; "Array.iteri";
    "Bytes.get"; "Bytes.set"; "Bytes.length"; "Bytes.unsafe_get"; "Bytes.unsafe_set";
    "Bytes.fill"; "Bytes.blit";
    "String.length"; "String.get"; "String.unsafe_get"; "String.equal"; "String.compare";
    "Char.code"; "Char.chr"; "Char.unsafe_chr"; "Char.equal"; "Char.compare";
    "int_of_char"; "char_of_int"; "lnot";
    "Hashtbl.mem"; "Hashtbl.remove"; "Hashtbl.hash"; "Hashtbl.clear"; "Hashtbl.reset";
    "Hashtbl.length"; "Hashtbl.find";
    "Queue.is_empty"; "Queue.pop"; "Queue.take"; "Queue.peek"; "Queue.clear";
    "Queue.length"; "Queue.transfer";
    "Stack.is_empty"; "Stack.pop"; "Stack.top"; "Stack.clear"; "Stack.length";
    "Atomic.get"; "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
    "Option.is_some"; "Option.is_none"; "Option.value";
    "List.length"; "List.hd"; "List.tl"; "List.iter"; "List.is_empty"; "List.exists";
    "List.mem"; "List.for_all";
    "Buffer.length"; "Buffer.clear"; "Buffer.reset";
  ]

(* externals known to allocate *)
let allocating =
  [
    "ref"; "@"; "^"; "lazy"; "string_of_int"; "string_of_float"; "string_of_bool";
    "Printf.sprintf"; "Printf.printf"; "Printf.eprintf"; "Format.asprintf"; "Format.sprintf";
    "List.map"; "List.mapi"; "List.rev_map"; "List.filter"; "List.filter_map";
    "List.concat"; "List.concat_map"; "List.flatten"; "List.append"; "List.rev";
    "List.rev_append"; "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.init";
    "List.partition"; "List.split"; "List.combine"; "List.cons"; "List.of_seq";
    "List.to_seq"; "List.assoc_opt"; "List.find_opt"; "List.nth_opt";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.append"; "Array.copy";
    "Array.sub"; "Array.concat"; "Array.map"; "Array.mapi"; "Array.of_list"; "Array.to_list";
    "Bytes.create"; "Bytes.make"; "Bytes.copy"; "Bytes.sub"; "Bytes.extend";
    "Bytes.to_string"; "Bytes.of_string"; "Bytes.cat";
    "String.make"; "String.init"; "String.sub"; "String.concat"; "String.cat";
    "String.map"; "String.split_on_char"; "String.uppercase_ascii"; "String.lowercase_ascii";
    "Hashtbl.create"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy"; "Hashtbl.find_opt";
    "Hashtbl.find_all"; "Hashtbl.fold"; "Hashtbl.to_seq";
    "Queue.create"; "Queue.add"; "Queue.push"; "Queue.copy";
    "Stack.create"; "Stack.push";
    "Atomic.make";
    "Option.some"; "Option.map"; "Option.bind"; "Option.to_list";
    "Buffer.create"; "Buffer.add_string"; "Buffer.add_char"; "Buffer.contents";
    "failwith"; "invalid_arg"; "exit";
  ]

(* ------------------------------------------------------------------ *)
(* Guard exclusion: [if tracing then <slow path>] *)

let guard_flag = function "tracing" | "audit" -> true | _ -> false

(* does the condition mention a tracing/audit flag (possibly inside an
   [&&]/[||] chain) or an [.enabled] sink field? *)
let rec guarded_cond (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with [ x ] -> guard_flag x | _ -> false)
  | P.Pexp_field (_, { txt; _ }) -> (
      match List.rev (Longident.flatten txt) with "enabled" :: _ -> true | _ -> false)
  | P.Pexp_apply (f, args) ->
      guarded_cond f || List.exists (fun (_, a) -> guarded_cond a) args
  | P.Pexp_constraint (e, _) -> guarded_cond e
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Syntactic shape helpers *)

(* number of leading unlabelled parameters; [None] when any parameter
   is labelled/optional (then partial application is never reported) *)
let nolabel_arity e =
  let rec go (e : P.expression) =
    match e.pexp_desc with
    | P.Pexp_fun (Asttypes.Nolabel, None, _, body) -> 1 + go body
    | P.Pexp_fun (_, _, _, _) -> raise Exit
    | P.Pexp_newtype (_, body) | P.Pexp_constraint (body, _) -> go body
    | _ -> 0
  in
  try Some (go e) with Exit -> None

(* a binding's leading parameters are module-init-time structure, not
   per-call allocation: strip them and return the body expression(s) *)
let rec strip_params (e : P.expression) : P.expression list =
  match e.pexp_desc with
  | P.Pexp_fun (_, _, _, body) | P.Pexp_newtype (_, body) | P.Pexp_constraint (body, _) ->
      strip_params body
  | P.Pexp_function cases ->
      List.concat_map
        (fun (c : P.case) ->
          (match c.P.pc_guard with Some g -> [ g ] | None -> []) @ [ c.P.pc_rhs ])
        cases
  | _ -> [ e ]

let lid_path txt =
  match Longident.flatten txt with "Stdlib" :: rest -> rest | path -> path

(* ------------------------------------------------------------------ *)
(* The site walk *)

(* [collect cg ~file ~may_alloc body_exprs] — every allocation site in
   the given expressions, in source order. [may_alloc] answers whether
   a resolved in-repo callee may allocate; pass [(fun _ -> false)] for
   the phase-1 direct scan (in-repo calls are then handled by the
   fixpoint instead). *)
let collect (cg : Cg.t) ~file ~(may_alloc : Cg.sym -> bool) (bodies : P.expression list) :
    site list =
  let sites = ref [] in
  let add (loc : Location.t) a_kind a_what =
    let p = loc.Location.loc_start in
    sites :=
      { a_kind; a_line = p.Lexing.pos_lnum; a_col = p.Lexing.pos_cnum - p.Lexing.pos_bol; a_what }
      :: !sites
  in
  let classify_apply self (e : P.expression) head args =
    let walk_args () =
      List.iter (fun (_, (a : P.expression)) -> self.Ast_iterator.expr self a) args
    in
    match head.P.pexp_desc with
    | P.Pexp_ident { txt; _ } -> (
        let path = lid_path txt in
        let key = String.concat "." path in
        if List.mem key float_ops then begin
          add e.P.pexp_loc Float_box (Printf.sprintf "float boxing via `%s`" key);
          walk_args ()
        end
        else
          match Cg.resolve_ref cg ~file path with
          | Some sym -> (
              match Cg.find cg sym with
              | Some b when b.Cg.is_mutable_value -> walk_args ()
              | Some b ->
                  if may_alloc sym then
                    add e.P.pexp_loc Alloc_call
                      (Printf.sprintf "call to `%s` which may allocate" (Cg.display sym));
                  (match nolabel_arity b.Cg.expr with
                  | Some arity
                    when arity > List.length args
                         && arity > 0
                         && List.for_all (fun (l, _) -> l = Asttypes.Nolabel) args ->
                      add e.P.pexp_loc Partial_app
                        (Printf.sprintf "partial application of `%s` (%d of %d arguments)"
                           (Cg.display sym) (List.length args) arity)
                  | _ -> ());
                  walk_args ()
              | None -> walk_args ())
          | None ->
              let norm = String.concat "." (Cg.normalize_ref cg ~file path) in
              if List.mem norm non_allocating then walk_args ()
              else if List.mem norm allocating then begin
                add e.P.pexp_loc Alloc_call (Printf.sprintf "allocating call to `%s`" norm);
                walk_args ()
              end
              else if List.length path > 1 then begin
                add e.P.pexp_loc Unknown_call
                  (Printf.sprintf "call to unresolved `%s` (assumed allocating)" norm);
                walk_args ()
              end
              else
                (* single-segment unresolved name: a parameter or local
                   [let] — local function bodies are walked in place, so
                   their sites are already reported *)
                walk_args ())
    | P.Pexp_field (_, { txt; _ }) ->
        add e.P.pexp_loc Unknown_call
          (Printf.sprintf "call through record field `%s`"
             (String.concat "." (Longident.flatten txt)));
        self.Ast_iterator.expr self head;
        walk_args ()
    | _ ->
        add e.P.pexp_loc Unknown_call "call through a computed function";
        self.Ast_iterator.expr self head;
        walk_args ()
  in
  let expr self (e : P.expression) =
    match e.P.pexp_desc with
    | P.Pexp_fun (_, _, _, _) | P.Pexp_function _ ->
        add e.P.pexp_loc Closure "closure construction";
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_lazy _ ->
        add e.P.pexp_loc Closure "lazy thunk construction";
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_tuple _ ->
        add e.P.pexp_loc Tuple "tuple boxing";
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_record (_, _) ->
        add e.P.pexp_loc Record "record boxing";
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_construct (_, None) -> ()
    | P.Pexp_construct ({ txt; _ }, Some _) ->
        add e.P.pexp_loc Variant
          (Printf.sprintf "constructor boxing `%s`"
             (String.concat "." (Longident.flatten txt)));
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_variant (tag, Some _) ->
        add e.P.pexp_loc Variant (Printf.sprintf "polymorphic variant boxing `%s`" tag);
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_array _ ->
        add e.P.pexp_loc Array_lit "array literal";
        Ast_iterator.default_iterator.expr self e
    | P.Pexp_ifthenelse (cond, _then_, else_) when guarded_cond cond ->
        (* tracing/audit-guarded slow path: off the hot path by the
           EObs contract, so its allocations are not counted *)
        Option.iter (self.Ast_iterator.expr self) else_
    | P.Pexp_apply (head, args) -> classify_apply self e head args
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  List.iter (it.Ast_iterator.expr it) bodies;
  List.rev !sites
  |> List.sort (fun a b ->
         match Int.compare a.a_line b.a_line with
         | 0 -> (
             match Int.compare a.a_col b.a_col with
             | 0 -> compare a.a_kind b.a_kind
             | c -> c)
         | c -> c)

(* ------------------------------------------------------------------ *)
(* may_allocate fixpoint *)

let no_alloc (_ : Cg.sym) = false

let may_allocate (cg : Cg.t) : Cg.sym -> bool =
  let state : (Cg.sym, bool) Hashtbl.t = Hashtbl.create 64 in
  (* direct: a syntactic allocation site in the binding's own body
     (in-repo calls excluded; the fixpoint adds them) *)
  List.iter
    (fun s ->
      match Cg.find cg s with
      | Some b when not b.Cg.is_mutable_value ->
          Hashtbl.replace state s
            (collect cg ~file:b.Cg.file ~may_alloc:no_alloc (strip_params b.Cg.expr) <> [])
      | _ -> ())
    cg.Cg.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        match Cg.find cg s with
        | Some b when (not b.Cg.is_mutable_value) && Hashtbl.find_opt state s = Some false ->
            let v =
              List.exists
                (fun c ->
                  match Cg.find cg c with
                  | Some cb when not cb.Cg.is_mutable_value ->
                      Hashtbl.find_opt state c = Some true
                  | _ -> false)
                b.Cg.calls
            in
            if v then begin
              Hashtbl.replace state s true;
              changed := true
            end
        | _ -> ())
      cg.Cg.order
  done;
  fun s -> Hashtbl.find_opt state s = Some true

(* ------------------------------------------------------------------ *)
(* Reports and findings *)

let analyze (cg : Cg.t) : hot_report list =
  let may_alloc = may_allocate cg in
  List.filter_map
    (fun s ->
      match Cg.find cg s with
      | Some b when b.Cg.is_hot ->
          Some
            {
              h_sym = s;
              h_line = b.Cg.line;
              h_sites = collect cg ~file:b.Cg.file ~may_alloc (strip_params b.Cg.expr);
            }
      | _ -> None)
    cg.Cg.order

let findings_of_reports (reports : hot_report list) : Lint_core.finding list =
  List.concat_map
    (fun r ->
      if not (Lint_core.applies "hot-alloc" r.h_sym.Cg.s_file) then []
      else
        List.map
          (fun site ->
            {
              Lint_core.rule = "hot-alloc";
              file = r.h_sym.Cg.s_file;
              line = site.a_line;
              col = site.a_col;
              message =
                Printf.sprintf "[@@hot] `%s` allocates: %s [%s]" (Cg.display r.h_sym)
                  site.a_what (kind_name site.a_kind);
            })
          r.h_sites)
    reports
  |> List.sort (fun (a : Lint_core.finding) (b : Lint_core.finding) ->
         match String.compare a.file b.file with
         | 0 -> (
             match Int.compare a.line b.line with
             | 0 -> (
                 match Int.compare a.col b.col with
                 | 0 -> String.compare a.message b.message
                 | c -> c)
             | c -> c)
         | c -> c)

let findings (cg : Cg.t) = findings_of_reports (analyze cg)

let to_json (reports : hot_report list) =
  let json_escape = Effects.json_escape in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n  \"schema\": \"repro-lint/alloc/1\",\n";
  let total = List.fold_left (fun acc r -> acc + List.length r.h_sites) 0 reports in
  Buffer.add_string buf
    (Printf.sprintf "  \"summary\": {\"hot_functions\": %d, \"allocation_sites\": %d},\n"
       (List.length reports) total);
  Buffer.add_string buf "  \"hot\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"symbol\": \"%s\", \"file\": \"%s\", \"line\": %d, \"sites\": ["
           (json_escape (Effects.sym_id r.h_sym))
           (json_escape r.h_sym.Cg.s_file)
           r.h_line);
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"kind\": \"%s\", \"line\": %d, \"col\": %d, \"what\": \"%s\"}"
               (json_escape (kind_name s.a_kind))
               s.a_line s.a_col (json_escape s.a_what)))
        r.h_sites;
      Buffer.add_string buf "]}")
    reports;
  Buffer.add_string buf "\n  ],\n  \"findings\": [\n";
  List.iteri
    (fun i (f : Lint_core.finding) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Format.asprintf "    %a" Lint_core.pp_finding_json f))
    (findings_of_reports reports);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
