(** Allocation-discipline pass over [@@hot] functions (stage 3 of the
    interprocedural analysis, DESIGN.md §3f).

    Statically flags every allocation site reachable in the body of a
    [[@@hot]]-annotated binding — closures, tuple/record/variant/array
    boxing, float boxing, partial application, and allocating callees
    resolved through the call graph — turning the dynamic EObs
    [Gc.minor_words = 0] assertion into a per-site static guarantee.
    Branches guarded by the [tracing]/[audit] flags are excluded (the
    runtime guarantee is conditional on tracing being off), as are a
    binding's leading parameters (the top-level closure is built once
    at module initialization). *)

type kind =
  | Closure  (** [fun]/[function]/local function/[lazy] *)
  | Tuple
  | Record
  | Variant  (** non-constant constructor or polymorphic variant *)
  | Array_lit
  | Float_box  (** [+.]-family operator application *)
  | Partial_app  (** under-applied unlabelled in-repo callee *)
  | Alloc_call  (** deny-listed external or in-repo [may_allocate] callee *)
  | Unknown_call  (** unresolved external / computed function: assumed allocating *)

val kind_name : kind -> string

type site = { a_kind : kind; a_line : int; a_col : int; a_what : string }

type hot_report = { h_sym : Callgraph.sym; h_line : int; h_sites : site list }

(** [may_allocate cg] — the transitive "calling this binding may
    allocate" predicate, closed over the call graph by fixpoint.
    Mutable-value bindings are never propagated through (their
    allocation happened at module initialization). *)
val may_allocate : Callgraph.t -> Callgraph.sym -> bool

(** One report per [@@hot] binding, in deterministic (file, source)
    order, with its allocation sites in source order. *)
val analyze : Callgraph.t -> hot_report list

(** [hot-alloc] findings: one per allocation site in a [@@hot] body. *)
val findings : Callgraph.t -> Lint_core.finding list

val findings_of_reports : hot_report list -> Lint_core.finding list

(** The machine-readable report ([_build/default/analysis/alloc.json]). *)
val to_json : hot_report list -> string
