(** Model-compliance lint over the repository's OCaml sources (see
    DESIGN.md "Model compliance & static analysis").

    Parses [.ml] files with [compiler-libs] and walks the Parsetree,
    reporting determinism/model violations with stable rule ids.
    Deliberate exceptions live in a committed baseline file; the build
    fails on new findings and on stale baseline entries. *)

type finding = { rule : string; file : string; line : int; col : int; message : string }

(** [(id, description)] for every rule the analyzer knows, including
    the interprocedural rules implemented in [Interproc]. *)
val rules : (string * string) list

val rule_ids : string list

(** The rule ids emitted by the interprocedural pass ([node-locality],
    [send-discipline]) rather than the single-file walk. *)
val interproc_rule_ids : string list

(** [applies rule file] — is [rule] in force for [file]? Some rules are
    scoped: [lib-abort] to [lib/], [poly-compare] and [hashtbl-order] to
    [lib/congest/]. *)
val applies : string -> string -> bool

(** [parse_source ~file src] parses [src] into a Parsetree, attributing
    locations to [file]; errors render as a compiler-style report. The
    CLI parses each file once and feeds the structure to both the
    single-file walk and the interprocedural pass. *)
val parse_source : file:string -> string -> (Parsetree.structure, string) result

(** [lint_structure ~file structure] runs the single-file rules over an
    already-parsed structure. *)
val lint_structure : file:string -> Parsetree.structure -> finding list

(** [lint_source ~file src] parses [src] (attributing locations to
    [file], which also drives rule scoping) and returns its findings in
    source order, or a parse-error message. *)
val lint_source : file:string -> string -> (finding list, string) result

(** [lint_file path] reads and lints one file. *)
val lint_file : string -> (finding list, string) result

type baseline_entry = {
  b_rule : string;
  b_file : string;
  count : int;  (** exact number of findings this entry covers *)
  justification : string;  (** required one-line why *)
  b_line : int;  (** 1-based line in the baseline file, for error reports *)
}

(** Parses a baseline file: one [<rule> <file> <count> # <justification>]
    entry per line, ['#'] comments and blank lines ignored. Rejects
    unknown rules, duplicate entries, non-positive counts, and entries
    with no justification. *)
val parse_baseline : string -> (baseline_entry list, string list) result

(** Entries whose justification is still the ["TODO justify"] marker
    left by [--update-baseline] (case-insensitive ["todo"] prefix): the
    lint CLI fails the build on them, printing the offending lines. *)
val unjustified : baseline_entry list -> baseline_entry list

type baseline_outcome = {
  fresh : finding list;
      (** findings not covered: either no entry, or more findings than the
          entry's count (then every finding of that group is reported). *)
  stale : (baseline_entry * int) list;
      (** entries whose count exceeds the actual findings, with the actual
          count — the baseline must shrink when violations are fixed. *)
}

val apply_baseline : baseline_entry list -> finding list -> baseline_outcome

(** [render_baseline ~old findings] rebuilds the baseline file text from
    the current findings: one [<rule> <file> <count>] entry per group,
    sorted by file then rule. Groups that already had an entry in [old]
    keep its justification; new groups are marked ["TODO justify"];
    entries with no remaining findings are dropped. Used by
    [lint --update-baseline]. *)
val render_baseline : old:baseline_entry list -> finding list -> string

val pp_finding_text : Format.formatter -> finding -> unit
val pp_finding_json : Format.formatter -> finding -> unit
