(* Bottom-up effect summaries over the symbol/call graph (stage 2 of
   the interprocedural model-compliance analysis).

   Each module-level binding gets a summary — which module-level mutable
   values it can read or mutate, whether it can perform I/O, whether it
   can raise an untyped abort (failwith / assert false) — transitively
   closed over the call graph with a fixpoint, so recursion and mutual
   recursion converge. The JSON dump ([to_json]) is the machine-readable
   effect report consumed by reviewers and future analysis passes
   (built as [_build/default/analysis/effects.json]). *)

module Cg = Callgraph

type summary = {
  reads_global : Cg.Sym_set.t;  (* module-level mutables transitively referenced *)
  mutates_global : Cg.Sym_set.t;  (* subset reached in mutation position *)
  performs_io : bool;
  raises_untyped : bool;
}

type t = (Cg.sym, summary) Hashtbl.t

(* external references that constitute I/O: console, channels, the
   process environment. [Printf.sprintf] and friends are pure. *)
let io_external path =
  match String.split_on_char '.' path with
  | [ x ] -> (
      let prefixed p = String.length x >= String.length p && String.sub x 0 (String.length p) = p in
      match x with
      | "read_line" | "read_int" | "read_int_opt" | "open_in" | "open_in_bin" | "open_out"
      | "open_out_bin" | "stdout" | "stderr" | "stdin" | "exit" | "at_exit" ->
          true
      | _ -> prefixed "print_" || prefixed "prerr_" || prefixed "output_" || prefixed "input_")
  | [ ("Printf" | "Format"); f ] ->
      List.mem f [ "printf"; "eprintf"; "fprintf"; "kfprintf"; "print_string"; "print_newline" ]
  | "Unix" :: _ | "In_channel" :: _ | "Out_channel" :: _ -> true
  | [ "Filename"; ("temp_file" | "open_temp_file") ] -> true
  | [ "Sys"; f ] ->
      List.mem f
        [ "command"; "remove"; "rename"; "readdir"; "getenv"; "getenv_opt"; "time"; "chdir" ]
  | _ -> false

let untyped_external path =
  match String.split_on_char '.' path with
  | [ "failwith" ] | [ "Printf"; "failwithf" ] -> true
  | _ -> false

let direct_summary cg (b : Cg.binding) =
  let mutable_of syms =
    List.fold_left
      (fun acc s ->
        match Cg.find cg s with
        | Some t when t.Cg.is_mutable_value -> Cg.Sym_set.add s acc
        | _ -> acc)
      Cg.Sym_set.empty syms
  in
  {
    reads_global = mutable_of b.Cg.calls;
    mutates_global = mutable_of b.Cg.mutates;
    performs_io = List.exists io_external b.Cg.externals;
    raises_untyped = b.Cg.asserts_false || List.exists untyped_external b.Cg.externals;
  }

let summarize (cg : Cg.t) : t =
  let summaries = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match Cg.find cg s with
      | Some b -> Hashtbl.replace summaries s (direct_summary cg b)
      | None -> ())
    cg.Cg.order;
  (* fixpoint: propagate callee summaries into callers until stable *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        match (Cg.find cg s, Hashtbl.find_opt summaries s) with
        | Some b, Some cur ->
            let merged =
              List.fold_left
                (fun acc callee ->
                  match Hashtbl.find_opt summaries callee with
                  | Some cs ->
                      {
                        reads_global = Cg.Sym_set.union acc.reads_global cs.reads_global;
                        mutates_global = Cg.Sym_set.union acc.mutates_global cs.mutates_global;
                        performs_io = acc.performs_io || cs.performs_io;
                        raises_untyped = acc.raises_untyped || cs.raises_untyped;
                      }
                  | None -> acc)
                cur b.Cg.calls
            in
            if
              (not (Cg.Sym_set.equal merged.reads_global cur.reads_global))
              || (not (Cg.Sym_set.equal merged.mutates_global cur.mutates_global))
              || merged.performs_io <> cur.performs_io
              || merged.raises_untyped <> cur.raises_untyped
            then begin
              Hashtbl.replace summaries s merged;
              changed := true
            end
        | _ -> ())
      cg.Cg.order
  done;
  summaries

let find (t : t) s = Hashtbl.find_opt t s

(* ------------------------------------------------------------------ *)
(* JSON report *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sym_id (s : Cg.sym) = s.Cg.s_file ^ "#" ^ s.Cg.s_path

let json_string_list l =
  "[" ^ String.concat ", " (List.map (fun s -> Printf.sprintf "%S" (json_escape s)) l) ^ "]"

let to_json (cg : Cg.t) (t : t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\n  \"schema\": \"repro-lint/effects/1\",\n  \"bindings\": [\n";
  let first = ref true in
  List.iter
    (fun s ->
      match (Cg.find cg s, find t s) with
      | Some b, Some sm ->
          if not !first then Buffer.add_string buf ",\n";
          first := false;
          let syms set = json_string_list (List.map sym_id (Cg.Sym_set.elements set)) in
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"symbol\": \"%s\", \"file\": \"%s\", \"line\": %d, \"mutable_value\": \
                %b, \"reads_global\": %s, \"mutates_global\": %s, \"performs_io\": %b, \
                \"raises_untyped\": %b, \"calls\": %s, \"externals\": %s}"
               (json_escape (sym_id s))
               (json_escape b.Cg.file) b.Cg.line b.Cg.is_mutable_value (syms sm.reads_global)
               (syms sm.mutates_global) sm.performs_io sm.raises_untyped
               (json_string_list (List.map sym_id b.Cg.calls))
               (json_string_list b.Cg.externals))
      | _ -> ())
    cg.Cg.order;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
