(* Whole-repository symbol/call-graph builder for the interprocedural
   model-compliance rules (DESIGN.md "Model compliance & static
   analysis", stage 1).

   Every [.ml] handed to [build] is parsed into a Parsetree and reduced
   to its module-level value bindings (including bindings nested in
   modules and functor bodies, qualified as ["Make.run"]). For each
   binding we record the raw identifier references in its body, the
   references appearing in mutation position, whether it is itself a
   module-level mutable value (ref / Hashtbl.create / Array.make /
   Buffer.create / an array literal / ...), and syntactic effect hints
   (assert false).

   References are then resolved across files:

   - top-level [module X = P] aliases (and local [let module] aliases)
     are expanded, so [E.run] with [module E = Engine.Make (W)] becomes
     [Engine.Make.run];
   - a head module naming a sibling file in the same directory resolves
     into that file (dune libraries expose every sibling unqualified);
   - a head module naming a library wrapper module (from the directory's
     [dune] [(library (name repro_x))] stanza, falling back to the
     [lib/<d>] -> [Repro_<d>] convention) resolves across libraries;
   - within a file, a path that matches no binding exactly falls back to
     suffix matching, so [fresh_link] inside [Make]'s body finds
     ["Make.fresh_link"].

   The builder also collects the repository's *per-node callback* sites:
   any application carrying both a [~init] and a [~step] labelled
   argument (the [Engine.run] / [Transport.run] contract) contributes
   its [init]/[step]/[active]/[on_restart] arguments, and any structure
   passed to a [*.Make] functor contributes its [init]/[step]/[active]/
   [restore]/[resync]/[snapshot] value bindings (the [RECOVERABLE]
   contract). Callback reference sets are closed over the local
   [let]-bindings of the enclosing module-level binding, so a closure
   defined locally and passed by name is still seen.

   Everything here is syntactic: no typing, no functor instantiation
   tracking, and local shadowing of module-level names is ignored. The
   approximation is deliberately conservative in the reachability
   direction and its caveats are documented in DESIGN.md. *)

module P = Parsetree

type sym = { s_file : string; s_path : string }

let sym_compare a b =
  match String.compare a.s_file b.s_file with
  | 0 -> String.compare a.s_path b.s_path
  | c -> c

module Sym_set = Set.Make (struct
  type t = sym

  let compare = sym_compare
end)

(* a run-local mutable container ([ref]/[Hashtbl.create]/... bound by a
   [let] inside a module-level binding), by name and position *)
type local_mutable = { lm_name : string; lm_line : int; lm_col : int }

type binding = {
  file : string;
  path : string;  (* dotted path within the file, e.g. "Make.run" *)
  line : int;
  col : int;
  is_mutable_value : bool;
  mutable_kind : string option;  (* "atomic" | "ref" | "hashtbl" | ... when mutable *)
  is_hot : bool;  (* carries a [@@hot] attribute: allocation-discipline obligation *)
  is_region : bool;  (* carries [@@parallel_region]: a Domains-parallelizable root *)
  is_charge_site : bool;  (* carries [@@charge_site]: audited accounting entry point *)
  calls : sym list;  (* resolved in-repo references, sorted, deduplicated *)
  externals : string list;  (* unresolved qualified refs + effectful bare idents *)
  mutates : sym list;  (* resolved references in mutation position *)
  asserts_false : bool;
  local_mutables : local_mutable list;  (* mutable containers bound by local lets *)
  expr : Parsetree.expression;  (* the binding's RHS, for Typedtree-adjacent passes *)
}

type callback = {
  cb_file : string;
  cb_owner : string;  (* enclosing module-level binding or module *)
  cb_label : string;  (* init | step | active | on_restart | restore | ... *)
  cb_line : int;
  cb_col : int;
  cb_calls : sym list;
  cb_externals : string list;
  cb_captured : local_mutable list;  (* run-local mutable containers it closes over *)
}

type t = {
  files : string list;
  bindings : (sym, binding) Hashtbl.t;
  order : sym list;  (* deterministic iteration order *)
  callbacks : callback list;
  resolver : resolver;
}

and resolver = {
  file_index : (string, (string list * string) list) Hashtbl.t;
      (* file -> [(path segments, dotted)] *)
  dir_files : (string * string, string) Hashtbl.t;  (* (dir, Module) -> file *)
  wrappers : (string, string) Hashtbl.t;  (* wrapper module -> dir *)
  alias_of : (string, (string, string list) Hashtbl.t) Hashtbl.t;  (* file -> aliases *)
}

let find t s = Hashtbl.find_opt t.bindings s

(* display name: file's module + in-file path, e.g. "Engine.trace_sink" *)
let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let display s = module_of_file s.s_file ^ "." ^ s.s_path

(* ------------------------------------------------------------------ *)
(* Raw collection *)

type raw_binding = {
  rb_path : string list;
  rb_loc : Location.t;
  rb_mutable_kind : string option;
  rb_hot : bool;
  rb_region : bool;
  rb_charge : bool;
  rb_refs : string list list ref;
  rb_muts : string list list ref;
  mutable rb_assert_false : bool;
  rb_locals : local_mutable list ref;
  rb_expr : Parsetree.expression;
}

type raw_callback = {
  rc_owner : string;
  rc_label : string;
  rc_loc : Location.t;
  rc_refs : string list list;  (* locals already expanded *)
  rc_captured : local_mutable list;
}

type raw_file = {
  rf_file : string;
  rf_bindings : raw_binding list;
  rf_aliases : (string, string list) Hashtbl.t;  (* simple name -> target path *)
  rf_callbacks : raw_callback list;
}

let flatten_lid lid = try Longident.flatten lid with _ -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

(* applications whose first argument, when it is a plain identifier,
   is being mutated in place *)
let is_mutator p =
  match strip_stdlib p with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl"; ("replace" | "add" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
  | [ "Array"; ("set" | "unsafe_set" | "fill" | "blit" | "sort") ] ->
      true
  | [ "Buffer"; f ] when String.length f >= 3 && String.sub f 0 3 = "add" -> true
  | [ "Buffer"; ("clear" | "reset" | "truncate") ]
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ]
  | [ "Bytes"; ("set" | "unsafe_set" | "fill" | "blit") ]
  | [ "Atomic"; ("set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr") ]
    ->
      true
  | _ -> false

(* is the right-hand side of a module-level [let] a mutable container?
   returns the container kind (the domain-safety lattice distinguishes
   Atomic, which is safe by construction, from everything else) *)
let rec mutable_kind_of_rhs (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_constraint (e, _) -> mutable_kind_of_rhs e
  | P.Pexp_array _ -> Some "array"
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _) -> (
      match strip_stdlib (flatten_lid txt) with
      | [ "ref" ] -> Some "ref"
      | [ "Hashtbl"; "create" ] -> Some "hashtbl"
      | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ] -> Some "array"
      | [ "Buffer"; "create" ] -> Some "buffer"
      | [ "Queue"; "create" ] -> Some "queue"
      | [ "Stack"; "create" ] -> Some "stack"
      | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some "bytes"
      | [ "Atomic"; "make" ] -> Some "atomic"
      | [ "Weak"; "create" ] -> Some "weak"
      | _ -> None)
  | _ -> None

let is_mutable_rhs e = mutable_kind_of_rhs e <> None

(* binding-level attributes the analyses consume: [@@hot] marks an
   allocation-discipline obligation, [@@parallel_region] marks a root
   the Domains refactor will run concurrently *)
let has_attr name (attrs : P.attributes) =
  List.exists (fun (a : P.attribute) -> a.attr_name.txt = name) attrs

let rec var_names (p : P.pattern) =
  match p.ppat_desc with
  | P.Ppat_var n -> [ n.txt ]
  | P.Ppat_alias (p, n) -> n.txt :: var_names p
  | P.Ppat_constraint (p, _) -> var_names p
  | P.Ppat_tuple ps -> List.concat_map var_names ps
  | _ -> []

(* the functor path of a module application: [Engine.Make (W)] -> Engine.Make *)
let rec functor_path (m : P.module_expr) =
  match m.pmod_desc with
  | P.Pmod_ident { txt; _ } -> flatten_lid txt
  | P.Pmod_apply (f, _) -> functor_path f
  | P.Pmod_constraint (m, _) -> functor_path m
  | _ -> []

let ends_with_make p = match List.rev p with "Make" :: _ -> true | _ -> false

(* per-node callback argument labels at [run]-shaped call sites, and
   per-node value bindings inside structures handed to [*.Make] *)
let callsite_labels = [ "init"; "step"; "active"; "on_restart" ]
let functor_labels = [ "init"; "step"; "active"; "on_restart"; "restore"; "resync"; "snapshot" ]

(* Walk the body of one module-level binding. [locals] maps local [let]
   names to the raw references of their defining expression (references
   are attributed to every collector on the stack, so a nested local's
   references also reach its enclosing closures). *)
let walk_value ~callbacks ~aliases ~owner (rb : raw_binding) expr0 =
  let locals : (string, string list list ref) Hashtbl.t = Hashtbl.create 16 in
  (* run-local mutable containers ([let delayed = ref [] in ...]): the
     state a per-node closure can capture and share across nodes — the
     Domains refactor's shard inventory *)
  let mutable_locals : (string, local_mutable) Hashtbl.t = Hashtbl.create 8 in
  let stack : string list list ref list ref = ref [] in
  let add_ref p =
    if p <> [] then begin
      rb.rb_refs := p :: !(rb.rb_refs);
      List.iter (fun acc -> acc := p :: !acc) !stack
    end
  in
  let add_mut p = if p <> [] then rb.rb_muts := p :: !(rb.rb_muts) in
  (* close a raw reference list over [locals] *)
  let expand_locals refs =
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let rec go p =
      out := p :: !out;
      match p with
      | [ x ] when not (Hashtbl.mem seen x) -> (
          Hashtbl.replace seen x ();
          match Hashtbl.find_opt locals x with
          | Some acc -> List.iter go !acc
          | None -> ())
      | _ -> ()
    in
    List.iter go refs;
    !out
  in
  let register_callback label loc refs =
    let refs = expand_locals refs in
    (* which run-local mutable containers does this callback close over?
       [expand_locals] already flattened the local-let chain, so a bare
       name matching a recorded mutable local is a capture *)
    let captured =
      List.filter_map
        (function [ x ] -> Hashtbl.find_opt mutable_locals x | _ -> None)
        refs
      |> List.sort_uniq compare
    in
    callbacks :=
      {
        rc_owner = owner;
        rc_label = label;
        rc_loc = loc;
        rc_refs = refs;
        rc_captured = captured;
      }
      :: !callbacks
  in
  (* collect the raw references of one expression without disturbing the
     collector stack (used for callback arguments, which are also walked
     normally) *)
  let collect_refs e =
    let acc = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.P.pexp_desc with
            | P.Pexp_ident { txt; _ } ->
                let p = flatten_lid txt in
                if p <> [] then acc := p :: !acc
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !acc
  in
  let register_functor_struct items =
    List.iter
      (fun (item : P.structure_item) ->
        match item.pstr_desc with
        | P.Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : P.value_binding) ->
                match var_names vb.pvb_pat with
                | [ name ] when List.mem name functor_labels ->
                    register_callback name vb.pvb_pat.ppat_loc (collect_refs vb.pvb_expr)
                | _ -> ())
              vbs
        | _ -> ())
      items
  in
  let rec walk_vb (vb : P.value_binding) iter =
    match var_names vb.pvb_pat with
    | [] -> iter.Ast_iterator.expr iter vb.pvb_expr
    | names ->
        (if is_mutable_rhs vb.pvb_expr then
           let pos = vb.pvb_pat.ppat_loc.loc_start in
           List.iter
             (fun n ->
               let lm =
                 { lm_name = n; lm_line = pos.pos_lnum; lm_col = pos.pos_cnum - pos.pos_bol }
               in
               Hashtbl.replace mutable_locals n lm;
               rb.rb_locals := lm :: !(rb.rb_locals))
             names);
        let acc = ref [] in
        List.iter
          (fun n ->
            (* rebinding a name merges its previous references: over-
               approximate rather than lose a closure's captures *)
            (match Hashtbl.find_opt locals n with
            | Some prev -> acc := !prev @ !acc
            | None -> ());
            Hashtbl.replace locals n acc)
          names;
        stack := acc :: !stack;
        iter.Ast_iterator.expr iter vb.pvb_expr;
        stack := List.tl !stack
  and handle_module_expr (me : P.module_expr) iter =
    (* delegate child traversal to the default iterator (which routes
       back through the overrides); recursing through the override on
       the same node would loop *)
    match me.pmod_desc with
    | P.Pmod_apply (f, arg) -> (
        handle_module_expr f iter;
        match arg.pmod_desc with
        | P.Pmod_structure items when ends_with_make (functor_path f) ->
            register_functor_struct items;
            Ast_iterator.default_iterator.module_expr iter arg
        | _ -> handle_module_expr arg iter)
    | _ -> Ast_iterator.default_iterator.module_expr iter me
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          match e.P.pexp_desc with
          | P.Pexp_ident { txt; _ } -> add_ref (flatten_lid txt)
          | P.Pexp_let (_, vbs, body) ->
              List.iter (fun vb -> walk_vb vb iter) vbs;
              iter.expr iter body
          | P.Pexp_letmodule (name, me, body) ->
              (match name.txt with
              | Some n ->
                  let target = functor_path me in
                  if target <> [] then Hashtbl.replace aliases n target
              | None -> ());
              handle_module_expr me iter;
              iter.expr iter body
          | P.Pexp_setfield (lhs, _, rhs) ->
              (match lhs.P.pexp_desc with
              | P.Pexp_ident { txt; _ } -> add_mut (flatten_lid txt)
              | _ -> ());
              iter.expr iter lhs;
              iter.expr iter rhs
          | P.Pexp_assert
              { pexp_desc = P.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
            ->
              rb.rb_assert_false <- true
          | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, args) ->
              let fpath = flatten_lid txt in
              (if is_mutator fpath then
                 match args with
                 | (_, { P.pexp_desc = P.Pexp_ident { txt = tgt; _ }; _ }) :: _ ->
                     add_mut (flatten_lid tgt)
                 | _ -> ());
              let labelled =
                List.filter_map
                  (function
                    | (Asttypes.Labelled l | Asttypes.Optional l), arg -> Some (l, arg)
                    | Asttypes.Nolabel, _ -> None)
                  args
              in
              if List.mem_assoc "init" labelled && List.mem_assoc "step" labelled then
                List.iter
                  (fun (l, (arg : P.expression)) ->
                    if List.mem l callsite_labels then
                      register_callback l arg.pexp_loc (collect_refs arg))
                  labelled;
              Ast_iterator.default_iterator.expr iter e
          | _ -> Ast_iterator.default_iterator.expr iter e);
      module_expr = (fun iter me -> handle_module_expr me iter);
    }
  in
  iter.expr iter expr0

(* Walk a file's structure, registering module-level bindings (qualified
   under their module path), module aliases, and callback sites. When
   [as_callbacks] is set the structure was passed to a [*.Make] functor:
   its per-node value bindings double as callback roots. *)
let rec walk_structure ~file ~prefix ~as_callbacks ~bindings ~aliases ~callbacks items =
  List.iter
    (fun (item : P.structure_item) ->
      match item.pstr_desc with
      | P.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : P.value_binding) ->
              let names = var_names vb.pvb_pat in
              List.iter
                (fun name ->
                  let rb =
                    {
                      rb_path = prefix @ [ name ];
                      rb_loc = vb.pvb_pat.ppat_loc;
                      rb_mutable_kind = mutable_kind_of_rhs vb.pvb_expr;
                      rb_hot = has_attr "hot" vb.pvb_attributes;
                      rb_region = has_attr "parallel_region" vb.pvb_attributes;
                      rb_charge = has_attr "charge_site" vb.pvb_attributes;
                      rb_refs = ref [];
                      rb_muts = ref [];
                      rb_assert_false = false;
                      rb_locals = ref [];
                      rb_expr = vb.pvb_expr;
                    }
                  in
                  bindings := rb :: !bindings;
                  let owner = String.concat "." rb.rb_path in
                  walk_value ~callbacks ~aliases ~owner rb vb.pvb_expr;
                  if as_callbacks && List.mem name functor_labels then
                    callbacks :=
                      {
                        rc_owner = String.concat "." prefix;
                        rc_label = name;
                        rc_loc = vb.pvb_pat.ppat_loc;
                        rc_refs = !(rb.rb_refs);
                        rc_captured = List.sort_uniq compare !(rb.rb_locals);
                      }
                      :: !callbacks)
                names)
            vbs
      | P.Pstr_module mb -> walk_module_binding ~file ~prefix ~bindings ~aliases ~callbacks mb
      | P.Pstr_recmodule mbs ->
          List.iter (walk_module_binding ~file ~prefix ~bindings ~aliases ~callbacks) mbs
      | _ -> ())
    items

and walk_module_binding ~file ~prefix ~bindings ~aliases ~callbacks (mb : P.module_binding) =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name ->
      let rec go (me : P.module_expr) =
        match me.pmod_desc with
        | P.Pmod_ident { txt; _ } ->
            let p = flatten_lid txt in
            if p <> [] then Hashtbl.replace aliases name p
        | P.Pmod_structure items ->
            walk_structure ~file ~prefix:(prefix @ [ name ]) ~as_callbacks:false ~bindings
              ~aliases ~callbacks items
        | P.Pmod_functor (_, body) -> go body
        | P.Pmod_constraint (me, _) -> go me
        | P.Pmod_apply (f, arg) -> (
            let target = functor_path f in
            if target <> [] then Hashtbl.replace aliases name target;
            match arg.pmod_desc with
            | P.Pmod_structure items ->
                walk_structure ~file ~prefix:(prefix @ [ name ])
                  ~as_callbacks:(ends_with_make target) ~bindings ~aliases ~callbacks items
            | _ -> ())
        | _ -> ()
      in
      go mb.pmb_expr

let collect_file (file, structure) =
  let bindings = ref [] and callbacks = ref [] in
  let aliases = Hashtbl.create 16 in
  walk_structure ~file ~prefix:[] ~as_callbacks:false ~bindings ~aliases ~callbacks structure;
  {
    rf_file = file;
    rf_bindings = List.rev !bindings;
    rf_aliases = aliases;
    rf_callbacks = List.rev !callbacks;
  }

(* ------------------------------------------------------------------ *)
(* Library wrapper discovery *)

(* Directory -> wrapper module of its dune library: parse the [dune]
   file's [(library ... (name x))] when present on disk, fall back to
   the repository convention [lib/<d>] -> [Repro_<d>]. Test fixtures
   and virtual files simply get no wrapper (same-directory resolution
   still applies). *)
let wrapper_of_dir dir =
  let from_dune () =
    let dune = Filename.concat dir "dune" in
    if not (Sys.file_exists dune) then None
    else
      let ic = open_in_bin dune in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match String.index_opt text '(' with
      | None -> None
      | Some _ -> (
          (* first [(name X)] after a [(library] stanza opener *)
          let lib_at =
            let rec find i =
              if i + 8 > String.length text then None
              else if String.sub text i 8 = "(library" then Some i
              else find (i + 1)
            in
            find 0
          in
          match lib_at with
          | None -> None
          | Some start -> (
              let rec find_name i =
                if i + 5 > String.length text then None
                else if String.sub text i 5 = "(name" then
                  let j = ref (i + 5) in
                  let len = String.length text in
                  while !j < len && (text.[!j] = ' ' || text.[!j] = '\n') do
                    incr j
                  done;
                  let k = ref !j in
                  while
                    !k < len
                    && (match text.[!k] with
                       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                       | _ -> false)
                  do
                    incr k
                  done;
                  if !k > !j then Some (String.sub text !j (!k - !j)) else None
                else find_name (i + 1)
              in
              match find_name start with
              | Some n -> Some (String.capitalize_ascii n)
              | None -> None))
  in
  match try from_dune () with Sys_error _ -> None with
  | Some w -> Some w
  | None -> (
      (* convention fallback for virtual paths: lib/<d> -> Repro_<d> *)
      match List.rev (String.split_on_char '/' dir) with
      | d :: "lib" :: _ -> Some ("Repro_" ^ d)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Resolution *)

let make_resolver raws =
  let file_index = Hashtbl.create 64 in
  let dir_files = Hashtbl.create 64 in
  let wrappers = Hashtbl.create 16 in
  let alias_of = Hashtbl.create 64 in
  List.iter
    (fun rf ->
      Hashtbl.replace file_index rf.rf_file
        (List.map (fun rb -> (rb.rb_path, String.concat "." rb.rb_path)) rf.rf_bindings);
      Hashtbl.replace alias_of rf.rf_file rf.rf_aliases;
      let dir = Filename.dirname rf.rf_file in
      Hashtbl.replace dir_files (dir, module_of_file rf.rf_file) rf.rf_file;
      match wrapper_of_dir dir with
      | Some w -> Hashtbl.replace wrappers w dir
      | None -> ())
    raws;
  { file_index; dir_files; wrappers; alias_of }

let is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  ls <= ll
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (ll - ls) l = suffix

(* find a binding for path [p] inside [file]: exact match first, then
   the most specific suffix match (shortest enclosing path, then
   alphabetical, for determinism) *)
let resolve_in_file r file p =
  match Hashtbl.find_opt r.file_index file with
  | None -> None
  | Some idx -> (
      let dotted = String.concat "." p in
      if List.exists (fun (_, d) -> d = dotted) idx then Some { s_file = file; s_path = dotted }
      else
        match
          List.filter (fun (segs, _) -> is_suffix ~suffix:p segs) idx
          |> List.sort (fun (a, da) (b, db) ->
                 match Int.compare (List.length a) (List.length b) with
                 | 0 -> String.compare da db
                 | c -> c)
        with
        | (_, d) :: _ -> Some { s_file = file; s_path = d }
        | [] -> None)

let expand_aliases r file p =
  let rec go fuel p =
    if fuel = 0 then p
    else
      match p with
      | head :: rest -> (
          match Hashtbl.find_opt r.alias_of file with
          | Some aliases -> (
              match Hashtbl.find_opt aliases head with
              | Some target when target <> p -> go (fuel - 1) (target @ rest)
              | _ -> p)
          | None -> p)
      | [] -> p
  in
  go 8 p

let resolve r ~file p =
  let p = strip_stdlib (expand_aliases r file p) in
  match p with
  | [] -> None
  | [ _ ] -> resolve_in_file r file p
  | head :: rest -> (
      let dir = Filename.dirname file in
      match Hashtbl.find_opt r.dir_files (dir, head) with
      | Some sibling when sibling <> file -> resolve_in_file r sibling rest
      | _ -> (
          match Hashtbl.find_opt r.wrappers head with
          | Some libdir -> (
              match rest with
              | m :: inner when inner <> [] -> (
                  match Hashtbl.find_opt r.dir_files (libdir, m) with
                  | Some f -> resolve_in_file r f inner
                  | None -> None)
              | _ -> None)
          | None -> resolve_in_file r file p))

(* effectful externals worth keeping in the summaries even when they are
   bare, unqualified identifiers *)
let effectful_bare = function
  | "failwith" | "exit" | "at_exit" | "read_line" | "read_int" | "read_int_opt"
  | "print_string" | "print_endline" | "print_newline" | "print_int" | "print_char"
  | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline"
  | "prerr_int" | "prerr_char" | "prerr_float" | "prerr_bytes" | "open_in" | "open_in_bin"
  | "open_out" | "open_out_bin" | "stdout" | "stderr" | "stdin" ->
      true
  | _ -> false

let keep_external p =
  match p with [] -> false | [ x ] -> effectful_bare x | _ :: _ -> true

(* ------------------------------------------------------------------ *)
(* Build *)

let build parsed =
  let raws = List.map collect_file parsed in
  let r = make_resolver raws in
  let bindings = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun rf ->
      List.iter
        (fun rb ->
          let split refs =
            let calls = ref Sym_set.empty and exts = ref [] in
            List.iter
              (fun p ->
                match resolve r ~file:rf.rf_file p with
                | Some s -> calls := Sym_set.add s !calls
                | None ->
                    let p = strip_stdlib (expand_aliases r rf.rf_file p) in
                    if keep_external p then exts := String.concat "." p :: !exts)
              refs;
            (Sym_set.elements !calls, List.sort_uniq String.compare !exts)
          in
          let calls, externals = split !(rb.rb_refs) in
          let mutates, _ = split !(rb.rb_muts) in
          let s = { s_file = rf.rf_file; s_path = String.concat "." rb.rb_path } in
          let pos = rb.rb_loc.loc_start in
          Hashtbl.replace bindings s
            {
              file = rf.rf_file;
              path = String.concat "." rb.rb_path;
              line = pos.pos_lnum;
              col = pos.pos_cnum - pos.pos_bol;
              is_mutable_value = rb.rb_mutable_kind <> None;
              mutable_kind = rb.rb_mutable_kind;
              is_hot = rb.rb_hot;
              is_region = rb.rb_region;
              is_charge_site = rb.rb_charge;
              calls;
              externals;
              mutates;
              asserts_false = rb.rb_assert_false;
              local_mutables = List.sort_uniq compare !(rb.rb_locals);
              expr = rb.rb_expr;
            };
          order := s :: !order)
        rf.rf_bindings)
    raws;
  let callbacks =
    List.concat_map
      (fun rf ->
        List.map
          (fun rc ->
            let calls = ref Sym_set.empty and exts = ref [] in
            List.iter
              (fun p ->
                match resolve r ~file:rf.rf_file p with
                | Some s -> calls := Sym_set.add s !calls
                | None ->
                    let p = strip_stdlib (expand_aliases r rf.rf_file p) in
                    if keep_external p then exts := String.concat "." p :: !exts)
              rc.rc_refs;
            let pos = rc.rc_loc.loc_start in
            {
              cb_file = rf.rf_file;
              cb_owner = rc.rc_owner;
              cb_label = rc.rc_label;
              cb_line = pos.pos_lnum;
              cb_col = pos.pos_cnum - pos.pos_bol;
              cb_calls = Sym_set.elements !calls;
              cb_externals = List.sort_uniq String.compare !exts;
              cb_captured = rc.rc_captured;
            })
          rf.rf_callbacks)
      raws
  in
  let callbacks =
    List.sort
      (fun a b ->
        match String.compare a.cb_file b.cb_file with
        | 0 -> (
            match Int.compare a.cb_line b.cb_line with
            | 0 -> (
                match Int.compare a.cb_col b.cb_col with
                | 0 -> String.compare a.cb_label b.cb_label
                | c -> c)
            | c -> c)
        | c -> c)
      callbacks
  in
  {
    files = List.map (fun (f, _) -> f) parsed;
    bindings;
    order = List.rev !order;
    callbacks;
    resolver = r;
  }

(* expose reference resolution to downstream passes (the allocation
   analyzer resolves callee paths at its own call sites) *)
let resolve_ref t ~file p = resolve t.resolver ~file p

(* alias-expanded, Stdlib-stripped form of an unresolved path, for
   classifying external references *)
let normalize_ref t ~file p = strip_stdlib (expand_aliases t.resolver file p)
