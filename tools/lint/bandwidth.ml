(* Bandwidth-soundness pass (DESIGN.md §3i).

   The CONGEST reproduction charges every delivered message through
   [M.words] and caps it against [max_words] at runtime; this pass makes
   the accounting *statically* honest. Two halves:

   - Message-size verdicts. Every message module (a submodule or an
     anonymous functor-argument structure declaring both [type t] and
     [let words]) gets a static upper bound on its encoded size derived
     from the constructor/field types of [t] — [int] is one word,
     [bool]/[unit]/[char] ride in the header, tuples and records sum,
     variants take the max over constructors (tags are O(1) bits and
     ride free, matching the runtime convention), and a foreign [.t]
     counts as one opaque payload. The [words] body is abstractly
     evaluated to an interval of linear forms [c + p*payload]; if its
     maximum is below the content bound in either component, the module
     may undercharge and the build fails ([bandwidth-sound]). Algorithm
     messages (no payload component) additionally get an explicit
     "fits O(log n) bits per word, O(1) words" verdict;
     transport/recovery/detector wrappers must add only O(1) header
     words to a single payload.

   - Charging-site certification. Every binding that calls
     [Metrics.add_words] / [add_checkpoint_words] must carry
     [[@@charge_site]] (the audited accounting entry points), and the
     measure it charges must be derived from the same [words] measure
     the verdicts bound: a local accumulator only ever reset to a
     constant or bumped by [!acc + w] where [w] traces back to an
     [M.words] application, a direct [M.words m], or [Array.length]
     (checkpoint snapshots are arrays of words by contract). Anything
     else is an inconsistent measure ([bandwidth-charge]).

   Purely syntactic, like the rest of the lint: types are matched by
   name, so a type alias hiding an unbounded payload behind [int] is
   invisible (caveats in DESIGN.md §3i). *)

module Cg = Callgraph
module P = Parsetree

(* ------------------------------------------------------------------ *)
(* Linear word bounds: [c + p * payload] *)

type lin = { c : int; p : int }

type chg = { bmin : lin; bmax : lin }

let lin_add a b = { c = a.c + b.c; p = a.p + b.p }
let lin_max a b = { c = max a.c b.c; p = max a.p b.p }
let lin_min a b = { c = min a.c b.c; p = min a.p b.p }
let lin_scale k a = { c = k * a.c; p = k * a.p }
let lin_geq a b = a.c >= b.c && a.p >= b.p

let lin_str l =
  match (l.c, l.p) with
  | c, 0 -> string_of_int c
  | 0, 1 -> "payload"
  | 0, p -> Printf.sprintf "%d*payload" p
  | c, 1 -> Printf.sprintf "%d + payload" c
  | c, p -> Printf.sprintf "%d + %d*payload" c p

let rec lid_flat (l : Longident.t) =
  match l with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> lid_flat p @ [ s ]
  | Longident.Lapply _ -> []

let normtext e =
  let s = Pprintast.string_of_expression e in
  let b = Buffer.create (String.length s) in
  let last_space = ref false in
  String.iter
    (fun ch ->
      if ch = ' ' || ch = '\n' || ch = '\t' then begin
        if not !last_space then Buffer.add_char b ' ';
        last_space := true
      end
      else begin
        Buffer.add_char b ch;
        last_space := false
      end)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Content bound from the declaration of [type t] *)

let rec type_cost (ct : P.core_type) : lin option =
  match ct.P.ptyp_desc with
  | P.Ptyp_constr ({ txt; _ }, args) -> (
      let path =
        match lid_flat txt with "Stdlib" :: rest -> rest | path -> path
      in
      match (path, args) with
      | [ "int" ], [] -> Some { c = 1; p = 0 }
      | ([ "bool" ] | [ "unit" ] | [ "char" ]), [] ->
          (* O(1) bits: rides in the header word by the runtime convention *)
          Some { c = 0; p = 0 }
      | [ "option" ], [ a ] -> type_cost a (* bound by the Some case *)
      | p, [] when List.length p >= 2 && List.nth p (List.length p - 1) = "t" ->
          (* a foreign message type ([M.t], [P.Msg.t]): one opaque payload *)
          Some { c = 0; p = 1 }
      | _ -> None)
  | P.Ptyp_tuple l ->
      List.fold_left
        (fun acc ct ->
          match (acc, type_cost ct) with
          | Some a, Some b -> Some (lin_add a b)
          | _ -> None)
        (Some { c = 0; p = 0 })
        l
  | _ -> None

let decl_cost (d : P.type_declaration) : lin option =
  let sum cts =
    List.fold_left
      (fun acc ct ->
        match (acc, type_cost ct) with Some a, Some b -> Some (lin_add a b) | _ -> None)
      (Some { c = 0; p = 0 })
      cts
  in
  match (d.P.ptype_kind, d.P.ptype_manifest) with
  | P.Ptype_abstract, Some m -> type_cost m
  | P.Ptype_record labels, _ -> sum (List.map (fun l -> l.P.pld_type) labels)
  | P.Ptype_variant constrs, _ ->
      (* max over constructors; the tag is O(1) bits and rides free *)
      List.fold_left
        (fun acc (c : P.constructor_declaration) ->
          let args =
            match c.P.pcd_args with
            | P.Pcstr_tuple cts -> sum cts
            | P.Pcstr_record ls -> sum (List.map (fun l -> l.P.pld_type) ls)
          in
          match (acc, args) with Some a, Some b -> Some (lin_max a b) | _ -> None)
        (Some { c = 0; p = 0 })
        constrs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Charged bound from the [words] body *)

let int_const (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_constant (P.Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

let is_words_head (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_ident { txt; _ } -> (
      match List.rev (lid_flat txt) with "words" :: _ :: _ -> true | _ -> false)
  | _ -> false

let rec charge_of (e : P.expression) : chg option =
  let point l = Some { bmin = l; bmax = l } in
  let arms es =
    List.fold_left
      (fun acc a ->
        match (acc, charge_of a) with
        | None, _ | _, None -> None
        | Some x, Some y ->
            Some { bmin = lin_min x.bmin y.bmin; bmax = lin_max x.bmax y.bmax })
      (charge_of (List.hd es))
      (List.tl es)
  in
  match e.P.pexp_desc with
  | _ when int_const e <> None -> (
      match int_const e with
      | Some n when n >= 0 -> point { c = n; p = 0 }
      | _ -> None)
  | P.Pexp_constraint (x, _) -> charge_of x
  | P.Pexp_ifthenelse (_, t, Some el) -> arms [ t; el ]
  | P.Pexp_ifthenelse (_, t, None) -> (
      match charge_of t with
      | Some x ->
          Some { bmin = lin_min x.bmin { c = 0; p = 0 }; bmax = x.bmax }
      | None -> None)
  | P.Pexp_match (_, cases) | P.Pexp_function cases ->
      arms (List.map (fun c -> c.P.pc_rhs) cases)
  | P.Pexp_apply (head, args) when is_words_head head && args <> [] ->
      (* [M.words m]: exactly one opaque payload *)
      point { c = 0; p = 1 }
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident "+"; _ }; _ }, [ (_, a); (_, b) ])
    -> (
      match (charge_of a, charge_of b) with
      | Some x, Some y ->
          Some { bmin = lin_add x.bmin y.bmin; bmax = lin_add x.bmax y.bmax }
      | _ -> None)
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident "*"; _ }; _ }, [ (_, a); (_, b) ])
    -> (
      let scale k x =
        match x with
        | Some x when k >= 0 -> Some { bmin = lin_scale k x.bmin; bmax = lin_scale k x.bmax }
        | _ -> None
      in
      match (int_const a, int_const b) with
      | Some k, _ -> scale k (charge_of b)
      | _, Some k -> scale k (charge_of a)
      | _ -> None)
  | _ -> None

let rec strip_params (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_fun (_, _, _, body) -> strip_params body
  | P.Pexp_constraint (body, _) -> strip_params body
  | P.Pexp_newtype (_, body) -> strip_params body
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Candidate discovery: message modules with [type t] and [let words] *)

type candidate = {
  cand_name : string;
  cand_file : string;
  cand_line : int;
  cand_decl : P.type_declaration;
  cand_words : P.expression;
}

let structure_candidate items =
  let decl = ref None and words = ref None in
  List.iter
    (fun (item : P.structure_item) ->
      match item.P.pstr_desc with
      | P.Pstr_type (_, decls) -> (
          match List.find_opt (fun d -> d.P.ptype_name.Asttypes.txt = "t") decls with
          | Some d when !decl = None -> decl := Some d
          | _ -> ())
      | P.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : P.value_binding) ->
              match vb.P.pvb_pat.P.ppat_desc with
              | P.Ppat_var { txt = "words"; _ } when !words = None ->
                  words := Some (vb.P.pvb_expr, vb.P.pvb_loc.Location.loc_start.Lexing.pos_lnum)
              | _ -> ())
            vbs
      | _ -> ())
    items;
  match (!decl, !words) with Some d, Some (w, line) -> Some (d, w, line) | _ -> None

let candidates_of (file, (structure : P.structure)) : candidate list =
  let acc = ref [] in
  let modname = Cg.module_of_file file in
  let add prefix items =
    match structure_candidate items with
    | Some (d, w, line) ->
        acc :=
          {
            cand_name = String.concat "." (modname :: List.rev prefix);
            cand_file = file;
            cand_line = line;
            cand_decl = d;
            cand_words = w;
          }
          :: !acc
    | None -> ()
  in
  let rec scan_mod prefix (me : P.module_expr) =
    match me.P.pmod_desc with
    | P.Pmod_structure items ->
        (* only submodules / functor arguments: a file's top level is the
           module's public surface, not a message envelope (Metrics has a
           top-level [words] accessor) *)
        if prefix <> [] then add prefix items;
        scan_items prefix items
    | P.Pmod_functor (_, body) -> scan_mod prefix body
    | P.Pmod_apply (f, arg) ->
        scan_mod prefix f;
        scan_mod prefix arg
    | P.Pmod_constraint (m, _) -> scan_mod prefix m
    | _ -> ()
  and scan_items prefix items =
    List.iter
      (fun (item : P.structure_item) ->
        match item.P.pstr_desc with
        | P.Pstr_module mb ->
            let name = match mb.P.pmb_name.Asttypes.txt with Some n -> n | None -> "_" in
            scan_mod (name :: prefix) mb.P.pmb_expr
        | P.Pstr_recmodule mbs ->
            List.iter
              (fun (mb : P.module_binding) ->
                let name =
                  match mb.P.pmb_name.Asttypes.txt with Some n -> n | None -> "_"
                in
                scan_mod (name :: prefix) mb.P.pmb_expr)
              mbs
        | _ -> ())
      items
  in
  scan_items [] structure;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Verdicts *)

type verdict = {
  v_name : string;
  v_file : string;
  v_line : int;
  v_algo : string;
  v_kind : string;  (** ["algorithm"] (O(1) words) or ["wrapper"] (payload + O(1)) *)
  v_content : string;
  v_charged : string;
  v_ok : bool;
  v_note : string;
}

type report = {
  b_verdicts : verdict list;
  b_findings : Lint_core.finding list;
  b_charge_sites : int;
  b_all_pass : bool;
}

let algo_of_file file = Filename.remove_extension (Filename.basename file)

let verdict_of (c : candidate) : verdict * Lint_core.finding list =
  let finding message =
    { Lint_core.rule = "bandwidth-sound"; file = c.cand_file; line = c.cand_line; col = 0; message }
  in
  let content = decl_cost c.cand_decl in
  let charged = charge_of (strip_params c.cand_words) in
  let algo = algo_of_file c.cand_file in
  let base ~kind ~ok ~note findings =
    ( {
        v_name = c.cand_name;
        v_file = c.cand_file;
        v_line = c.cand_line;
        v_algo = algo;
        v_kind = kind;
        v_content = (match content with Some l -> lin_str l | None -> "?");
        v_charged = (match charged with Some ch -> lin_str ch.bmax | None -> "?");
        v_ok = ok;
        v_note = note;
      },
      findings )
  in
  match (content, charged) with
  | None, _ ->
      base ~kind:"unknown" ~ok:false ~note:"content bound underivable"
        [
          finding
            (Printf.sprintf
               "message module `%s`: cannot derive a static size bound from its `type t` \
                (unknown field type); bound the type or justify in the baseline"
               c.cand_name);
        ]
  | _, None ->
      base ~kind:"unknown" ~ok:false ~note:"charging bound underivable"
        [
          finding
            (Printf.sprintf
               "message module `%s`: cannot derive a static charging bound from its `words` \
                body (`%s`); keep it a constant/match/sum over `M.words`"
               c.cand_name (normtext (strip_params c.cand_words)));
        ]
  | Some content, Some charged ->
      let undercharge = not (lin_geq charged.bmax content) in
      let kind = if content.p = 0 && charged.bmax.p = 0 then "algorithm" else "wrapper" in
      let fs =
        if undercharge then
          [
            finding
              (Printf.sprintf
                 "message module `%s` may undercharge: static content bound is %s word(s) \
                  but `words` charges at most %s — every accepted word must be accounted"
                 c.cand_name (lin_str content) (lin_str charged.bmax));
          ]
        else []
      in
      let payload_blowup = kind = "wrapper" && charged.bmax.p > 1 in
      let fs =
        if payload_blowup then
          finding
            (Printf.sprintf
               "message wrapper `%s` charges %d payloads per message; the CONGEST \
                envelope must carry one payload plus O(1) header words"
               c.cand_name charged.bmax.p)
          :: fs
        else fs
      in
      let ok = not undercharge && not payload_blowup in
      let note =
        if not ok then "undercharge"
        else if kind = "algorithm" then
          Printf.sprintf "O(1): <= %d word(s) of O(log n) bits per message" charged.bmax.c
        else Printf.sprintf "payload + <= %d header word(s)" charged.bmax.c
      in
      base ~kind ~ok ~note fs

(* ------------------------------------------------------------------ *)
(* Charging-site certification *)

let charge_target (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_ident { txt; _ } -> (
      match List.rev (lid_flat txt) with
      | ("add_words" | "add_checkpoint_words") :: rest -> (
          match (rest : string list) with
          | "Metrics" :: _ | [] -> (
              match List.rev (lid_flat txt) with f :: _ -> Some f | [] -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

type charge_app = { ca_fn : string; ca_measure : P.expression option; ca_line : int; ca_col : int }

(* collect charge applications, local [let] definitions and [:=]
   assignments inside one binding body *)
let collect_binding (body : P.expression) =
  let apps = ref [] and defs = Hashtbl.create 16 and assigns = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.P.pexp_desc with
          | P.Pexp_apply (head, args) -> (
              match charge_target head with
              | Some fn ->
                  let measure =
                    match
                      List.filter (fun (l, _) -> l = Asttypes.Nolabel) args |> List.rev
                    with
                    | (_, m) :: _ -> Some m
                    | [] -> None
                  in
                  let pos = e.P.pexp_loc.Location.loc_start in
                  apps :=
                    {
                      ca_fn = fn;
                      ca_measure = measure;
                      ca_line = pos.Lexing.pos_lnum;
                      ca_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
                    }
                    :: !apps
              | None -> (
                  match (head.P.pexp_desc, args) with
                  | ( P.Pexp_ident { txt = Longident.Lident ":="; _ },
                      [
                        (_, { P.pexp_desc = P.Pexp_ident { txt = Longident.Lident r; _ }; _ });
                        (_, rhs);
                      ] ) ->
                      Hashtbl.add assigns r rhs
                  | _ -> ()))
          | P.Pexp_let (_, vbs, _) ->
              List.iter
                (fun (vb : P.value_binding) ->
                  match vb.P.pvb_pat.P.ppat_desc with
                  | P.Ppat_var { txt; _ } -> Hashtbl.replace defs txt vb.P.pvb_expr
                  | _ -> ())
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e)
    }
  in
  it.Ast_iterator.expr it body;
  (List.rev !apps, defs, assigns)

(* does [e] trace back to an [M.words] application? *)
let rec words_derived depth defs (e : P.expression) =
  depth < 8
  &&
  match e.P.pexp_desc with
  | P.Pexp_apply (head, _) -> is_words_head head
  | P.Pexp_ident { txt = Longident.Lident x; _ } -> (
      match Hashtbl.find_opt defs x with
      | Some d -> words_derived (depth + 1) defs d
      | None -> false)
  | _ -> false

let deref (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_apply
      ( { pexp_desc = P.Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
        [ (_, { P.pexp_desc = P.Pexp_ident { txt = Longident.Lident r; _ }; _ }) ] ) ->
      Some r
  | _ -> None

let is_array_length (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _ :: _) -> (
      match lid_flat txt with
      | [ "Array"; "length" ] | [ "Stdlib"; "Array"; "length" ] -> true
      | _ -> false)
  | _ -> false

(* an assignment [r := rhs] keeps the accumulator words-consistent when
   it resets to a constant or bumps by a words-derived increment *)
let assign_ok defs r (rhs : P.expression) =
  match int_const rhs with
  | Some _ -> true
  | None -> (
      match rhs.P.pexp_desc with
      | P.Pexp_apply
          ({ pexp_desc = P.Pexp_ident { txt = Longident.Lident "+"; _ }; _ }, [ (_, a); (_, b) ])
        -> (
          match (deref a, deref b) with
          | Some r', _ when r' = r -> words_derived 0 defs b
          | _, Some r' when r' = r -> words_derived 0 defs a
          | _ -> false)
      | _ -> false)

let charge_findings (cg : Cg.t) =
  let findings = ref [] and certified = ref 0 in
  List.iter
    (fun sym ->
      match Cg.find cg sym with
      | None -> ()
      | Some b when not (Lint_core.applies "bandwidth-charge" b.Cg.file) -> ()
      | Some b ->
          let apps, defs, assigns = collect_binding b.Cg.expr in
          List.iter
            (fun ca ->
              let bad message =
                findings :=
                  {
                    Lint_core.rule = "bandwidth-charge";
                    file = b.Cg.file;
                    line = ca.ca_line;
                    col = ca.ca_col;
                    message;
                  }
                  :: !findings
              in
              let site_ok = b.Cg.is_charge_site in
              if not site_ok then
                bad
                  (Printf.sprintf
                     "`%s` charges Metrics.%s but is not annotated [@@charge_site]: every \
                      message/storage accounting entry point must be audited (DESIGN.md §3i)"
                     (Cg.display sym) ca.ca_fn);
              let measure_ok =
                match ca.ca_measure with
                | None -> false
                | Some m -> (
                    if is_array_length m || words_derived 0 defs m then true
                    else
                      match deref m with
                      | Some r -> (
                          match Hashtbl.find_all assigns r with
                          | [] -> false
                          | rhss -> List.for_all (assign_ok defs r) rhss)
                      | None -> false)
              in
              if not measure_ok then
                bad
                  (Printf.sprintf
                     "`%s` charges Metrics.%s with measure `%s`, which does not reduce to \
                      an M.words accumulation or Array.length: the runtime account would \
                      diverge from the certified static bound"
                     (Cg.display sym) ca.ca_fn
                     (match ca.ca_measure with Some m -> normtext m | None -> "<none>"));
              if site_ok && measure_ok then incr certified)
            apps)
    cg.Cg.order;
  (List.rev !findings, !certified)

(* ------------------------------------------------------------------ *)

let analyze (cg : Cg.t) (parsed : (string * P.structure) list) : report =
  let verdicts = ref [] and findings = ref [] in
  List.iter
    (fun fs ->
      List.iter
        (fun c ->
          let v, fs = verdict_of c in
          verdicts := v :: !verdicts;
          findings := List.rev_append fs !findings)
        (candidates_of fs))
    parsed;
  let charge_fs, certified = charge_findings cg in
  let findings =
    List.sort
      (fun (a : Lint_core.finding) (b : Lint_core.finding) ->
        match String.compare a.file b.file with
        | 0 -> (
            match Int.compare a.line b.line with
            | 0 -> (
                match Int.compare a.col b.col with
                | 0 -> String.compare a.message b.message
                | c -> c)
            | c -> c)
        | c -> c)
      (List.rev_append !findings charge_fs)
  in
  let verdicts = List.rev !verdicts in
  {
    b_verdicts = verdicts;
    b_findings = findings;
    b_charge_sites = certified;
    b_all_pass = findings = [] && List.for_all (fun v -> v.v_ok) verdicts;
  }

let findings_of_report r = r.b_findings
let findings cg parsed = findings_of_report (analyze cg parsed)

let to_json (r : report) =
  let esc = Effects.json_escape in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"repro-lint/bandwidth/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"candidates\": %d, \"algorithms\": %d, \"charge_sites\": %d, \
        \"findings\": %d, \"all_pass\": %b},\n"
       (List.length r.b_verdicts)
       (List.length (List.filter (fun v -> v.v_kind = "algorithm") r.b_verdicts))
       r.b_charge_sites
       (List.length r.b_findings)
       r.b_all_pass);
  Buffer.add_string buf "  \"verdicts\": [\n";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"algorithm\": \"%s\", \"kind\": \"%s\", \"file\": \
            \"%s\", \"line\": %d, \"content_words\": \"%s\", \"charged_words\": \"%s\", \
            \"verdict\": \"%s\", \"note\": \"%s\"}"
           (esc v.v_name) (esc v.v_algo) (esc v.v_kind) (esc v.v_file) v.v_line
           (esc v.v_content) (esc v.v_charged)
           (if v.v_ok then "pass" else "fail")
           (esc v.v_note)))
    r.b_verdicts;
  Buffer.add_string buf "\n  ],\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Format.asprintf "    %a" Lint_core.pp_finding_json f))
    r.b_findings;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
