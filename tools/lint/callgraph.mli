(** Whole-repository symbol/call-graph builder (stage 1 of the
    interprocedural model-compliance analysis, DESIGN.md "Model
    compliance & static analysis").

    Reduces every parsed [.ml] to its module-level value bindings and
    resolves module-qualified references across files: top-level and
    [let module] aliases are expanded, sibling modules of the same
    directory resolve directly, and library wrapper modules (from each
    directory's [dune] stanza, falling back to the [lib/<d>] ->
    [Repro_<d>] convention) resolve across libraries. Also collects the
    repository's per-node callback sites: [~init]/[~step]/[~active]/
    [~on_restart] arguments at [run]-shaped applications, and the
    per-node value bindings of structures handed to [*.Make] functors.

    Purely syntactic: no types, no functor instantiation tracking, and
    local shadowing of module-level names is ignored (soundness caveats
    in DESIGN.md). *)

(** A module-level binding: [s_path] is its dotted path within
    [s_file], e.g. ["Make.run"]. *)
type sym = { s_file : string; s_path : string }

val sym_compare : sym -> sym -> int

module Sym_set : Set.S with type elt = sym

(** A mutable container bound by a local [let] inside a module-level
    binding ([let delayed = ref [] in ...]): run-scoped shared state the
    Domains refactor must shard. *)
type local_mutable = { lm_name : string; lm_line : int; lm_col : int }

type binding = {
  file : string;
  path : string;
  line : int;
  col : int;
  is_mutable_value : bool;
      (** defined as [ref]/[Hashtbl.create]/[Array.make]/[Buffer.create]/
          an array literal/...: module-level mutable state *)
  mutable_kind : string option;
      (** the container class when mutable: ["atomic"], ["ref"],
          ["hashtbl"], ["array"], ... ([Atomic] is domain-safe by
          construction; the rest need the immutability proof) *)
  is_hot : bool;  (** carries [@@hot]: statically certified allocation-free *)
  is_region : bool;
      (** carries [@@parallel_region]: a root the Domains refactor runs
          concurrently (engine round loop, transport fast path) *)
  is_charge_site : bool;
      (** carries [@@charge_site]: an audited entry point of the message/
          storage accounting path, allowed to call [Metrics.add_words] /
          [add_checkpoint_words] (certified by the bandwidth pass) *)
  calls : sym list;  (** resolved in-repo references, sorted, deduplicated *)
  externals : string list;
      (** unresolved qualified references (dotted), plus effectful bare
          identifiers ([failwith], [print_endline], ...) *)
  mutates : sym list;  (** resolved references in mutation position *)
  asserts_false : bool;
  local_mutables : local_mutable list;
      (** mutable containers bound by local [let]s in this binding's body *)
  expr : Parsetree.expression;
      (** the binding's right-hand side, consumed by the allocation pass *)
}

(** A per-node callback site with its reference set, closed over the
    local [let]-bindings of the enclosing module-level binding (so a
    closure passed by name contributes what it captures). *)
type callback = {
  cb_file : string;
  cb_owner : string;
  cb_label : string;
  cb_line : int;
  cb_col : int;
  cb_calls : sym list;
  cb_externals : string list;
  cb_captured : local_mutable list;
      (** run-local mutable containers the callback closes over (shared
          across every node of one run: the [PerNode] lattice class) *)
}

type resolver

type t = {
  files : string list;
  bindings : (sym, binding) Hashtbl.t;
  order : sym list;  (** deterministic iteration order (file, then source order) *)
  callbacks : callback list;  (** sorted by file, then position *)
  resolver : resolver;
}

val find : t -> sym -> binding option

(** [display s] is the human-readable name: the file's module plus the
    in-file path, e.g. ["Engine.trace_sink"]. *)
val display : sym -> string

val module_of_file : string -> string

(** [build parsed] over [(filename, structure)] pairs. Filenames drive
    resolution (directory siblings, library wrappers) and findings; they
    need not exist on disk. *)
val build : (string * Parsetree.structure) list -> t

(** [resolve_ref t ~file path] resolves a dotted reference occurring in
    [file] against the whole-repo index (aliases, siblings, library
    wrappers), exactly as [build] resolved binding references. *)
val resolve_ref : t -> file:string -> string list -> sym option

(** The alias-expanded, [Stdlib]-stripped form of an unresolved path,
    for classifying external references. *)
val normalize_ref : t -> file:string -> string list -> string list
