(* Interprocedural model-compliance rules (stage 3), on top of the
   symbol/call graph ({!Callgraph}) and effect summaries ({!Effects}).

   The CONGEST reproduction's round bounds are only meaningful if
   simulated nodes exchange information exclusively through charged
   messages. All nodes share one OCaml address space, so nothing in the
   type system prevents a [step] closure from reaching a module-level
   [Hashtbl] three calls away and turning the simulator into shared
   memory. These rules certify two properties for every per-node
   callback site the call-graph builder collected:

   - [node-locality]: no function reachable from a per-node callback
     ([init]/[step]/[active]/[on_restart], or a [RECOVERABLE]-style
     structure handed to a [*.Make] functor) may reach a module-level
     mutable value. Each finding prints the full reachability chain.
   - [send-discipline]: no such function may charge [Metrics] counters
     directly — all traffic and storage accounting flows through the
     single Engine/Transport/Recovery charging path.

   Deliberate, guarded exceptions (the engine's process-wide trace
   sink; the transport/recovery layers charging their own counters)
   live in the baseline with written justifications. *)

module Cg = Callgraph

(* rule ids and descriptions live in {!Lint_core.rules}, the single
   registry the baseline parser and [--rules] listing read *)
let rule_ids = Lint_core.interproc_rule_ids
let rules = List.filter (fun (id, _) -> List.mem id rule_ids) Lint_core.rules

(* does a resolved symbol denote a Metrics charging function? *)
let is_metrics_charge (s : Cg.sym) =
  Filename.basename s.Cg.s_file = "metrics.ml"
  &&
  let base =
    match List.rev (String.split_on_char '.' s.Cg.s_path) with x :: _ -> x | [] -> ""
  in
  base = "add" || (String.length base > 4 && String.sub base 0 4 = "add_")

(* does an unresolved external path denote one, e.g. "Metrics.add_words"
   or "Repro_congest.Metrics.add"? *)
let is_metrics_external path =
  let rec scan = function
    | "Metrics" :: f :: _ ->
        f = "add" || (String.length f > 4 && String.sub f 0 4 = "add_")
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (String.split_on_char '.' path)

type hit = {
  h_rule : string;
  h_target : string;  (* display name of what was reached *)
  h_chain : string list;  (* callback label, intermediate bindings, target *)
  h_target_file : string;
  h_target_line : int;
}

(* breadth-first search from one callback's reference set; the parent
   map yields the shortest chain to each offending symbol *)
let hits_of_callback (cg : Cg.t) (cb : Cg.callback) =
  let hits = ref [] in
  let seen_target = Hashtbl.create 8 in
  let add_hit rule target chain file line =
    if not (Hashtbl.mem seen_target (rule, target)) then begin
      Hashtbl.replace seen_target (rule, target) ();
      hits :=
        {
          h_rule = rule;
          h_target = target;
          h_chain = cb.Cg.cb_label :: chain;
          h_target_file = file;
          h_target_line = line;
        }
        :: !hits
    end
  in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  (* chain_to maps a visited symbol to the display path from the callback *)
  let chain_to : (Cg.sym, string list) Hashtbl.t = Hashtbl.create 64 in
  let enqueue chain s =
    if not (Hashtbl.mem visited s) then begin
      Hashtbl.replace visited s ();
      Hashtbl.replace chain_to s chain;
      Queue.add s queue
    end
  in
  let check_externals chain externals =
    List.iter
      (fun e ->
        if is_metrics_external e then add_hit "send-discipline" e (chain @ [ e ]) "" 0)
      externals
  in
  check_externals [] cb.Cg.cb_externals;
  List.iter (enqueue []) cb.Cg.cb_calls;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let chain = match Hashtbl.find_opt chain_to s with Some c -> c | None -> [] in
    let chain = chain @ [ Cg.display s ] in
    match Cg.find cg s with
    | None -> ()
    | Some b ->
        if b.Cg.is_mutable_value then
          add_hit "node-locality" (Cg.display s) chain b.Cg.file b.Cg.line
        else if is_metrics_charge s then
          add_hit "send-discipline" (Cg.display s) chain b.Cg.file b.Cg.line
        else begin
          check_externals chain b.Cg.externals;
          List.iter (enqueue chain) b.Cg.calls
        end
  done;
  List.rev !hits

let finding_of_hit (cb : Cg.callback) h : Lint_core.finding =
  let chain = String.concat " -> " h.h_chain in
  let where =
    if h.h_target_file = "" then "" else Printf.sprintf " (%s:%d)" h.h_target_file h.h_target_line
  in
  let message =
    match h.h_rule with
    | "node-locality" ->
        Printf.sprintf
          "per-node `%s` callback (in %s) can reach module-level mutable %s%s via %s; nodes \
           may share information only through charged messages"
          cb.Cg.cb_label cb.Cg.cb_owner h.h_target where chain
    | _ ->
        Printf.sprintf
          "per-node `%s` callback (in %s) charges %s%s directly via %s; accounting must flow \
           through the engine's charging path"
          cb.Cg.cb_label cb.Cg.cb_owner h.h_target where chain
  in
  {
    Lint_core.rule = h.h_rule;
    file = cb.Cg.cb_file;
    line = cb.Cg.cb_line;
    col = cb.Cg.cb_col;
    message;
  }

(* All interprocedural findings over a built call graph, in stable
   (file, position, rule, message) order. *)
let findings (cg : Cg.t) =
  List.concat_map
    (fun cb ->
      List.filter_map
        (fun h ->
          if Lint_core.applies h.h_rule cb.Cg.cb_file then Some (finding_of_hit cb h) else None)
        (hits_of_callback cg cb))
    cg.Cg.callbacks
  |> List.sort (fun (a : Lint_core.finding) (b : Lint_core.finding) ->
         match String.compare a.file b.file with
         | 0 -> (
             match Int.compare a.line b.line with
             | 0 -> (
                 match Int.compare a.col b.col with
                 | 0 -> (
                     match String.compare a.rule b.rule with
                     | 0 -> String.compare a.message b.message
                     | c -> c)
                 | c -> c)
             | c -> c)
         | c -> c)

(* Convenience entry point for tests and the CLI: build the graph from
   already-parsed sources and run every interprocedural rule. *)
let analyze parsed =
  let cg = Cg.build parsed in
  (cg, findings cg)
