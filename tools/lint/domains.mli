(** Domain-safety certifier (stage 3 of the interprocedural analysis,
    DESIGN.md §3f).

    Classifies every module-level mutable binding into a three-point
    lattice — [Safe_atomic] ([Atomic.t], safe by construction),
    [Safe_immutable] (no named binding ever reaches it in mutation
    position: immutable-after-init), [Racy] (somebody writes it) — then
    BFSes from every parallelizable region root ([@@parallel_region]
    bindings and per-node callback sites) and reports a [domain-safety]
    finding with the full call chain for every path to [Racy] state.

    The JSON report additionally inventories the [PerNode] class:
    run-local mutable containers captured by region roots, i.e. the
    state the OCaml 5 Domains refactor (ROADMAP item 1) must shard. *)

type clazz = Safe_atomic | Safe_immutable | Racy

val class_name : clazz -> string

type state_entry = {
  st_sym : Callgraph.sym;
  st_kind : string;  (** container kind: ["ref"], ["hashtbl"], ... *)
  st_class : clazz;
  st_mutators : Callgraph.sym list;
      (** named bindings that directly mutate it (empty iff not [Racy]) *)
  st_line : int;
}

type shard_entry = {
  sh_file : string;
  sh_owner : string;
  sh_root : string;
  sh_name : string;
  sh_line : int;
  sh_col : int;
}

type report = { state : state_entry list; shards : shard_entry list }

(** The classification of every module-level mutable binding, in
    deterministic (file, source) order. *)
val classify : Callgraph.t -> state_entry list

(** [domain-safety] findings: one per (region root, reachable racy
    value), anchored at the root, sorted by position. *)
val findings : Callgraph.t -> Lint_core.finding list

val report : Callgraph.t -> report

(** The machine-readable report
    ([_build/default/analysis/domains.json]). *)
val to_json : Callgraph.t -> report -> string
