(** Width-soundness pass over the bit-packed codec (DESIGN.md §3i).

    An interval abstract interpretation over every linted [.ml] that
    infers value ranges for the ints flowing into [Bitio.put ~bits] /
    [Bitio.get ~bits], and a symbolic trace extractor that certifies
    reader/writer symmetry for every [Codec]-style encode/decode pair.

    Three rules:
    - [width-trunc] — a written value's inferred range (or symbolic
      bound) may exceed [2^bits - 1]: the write would silently truncate.
      The finding prints the full data-flow chain of the value.
    - [width-range] — a width expression may leave [[0, 30]], the range
      [Bitio] accepts.
    - [codec-mismatch] — a writer/reader pair (matched by naming
      convention: [write_]/[read_], [encode_]/[decode_], [put_]/[get_],
      [save_]/[load_], within one file) disagrees on field order or
      width expressions after normalization.

    The abstract domain is a saturating interval extended with three
    symbolic certificates that survive where plain intervals lose: value
    [= 2^w - 1] for a width variable [w] (sentinel masks), value
    [<= !m + k] for a max-fold accumulator [m] (field bounds), and width
    [w] with [2^w - 1 >= !m + j] from [Bitio.bits_needed] (computed
    widths). Divergence guards ([if bad then invalid_arg ...]) refine
    the rest of the sequence, so codec-side range guards discharge
    obligations. Soundness caveats are documented in DESIGN.md §3i. *)

type report = {
  w_findings : Lint_core.finding list;
  w_pairs : pair list;
  w_puts : int;  (** [Bitio.put]/[put_varint] sites certified *)
  w_gets : int;  (** [Bitio.get]/[get_varint] sites certified *)
}

and pair = {
  p_writer : Callgraph.sym;
  p_reader : Callgraph.sym;
  p_wtrace : string;  (** canonical field trace, e.g. [f6 f[w0|d:0] ...] *)
  p_rtrace : string;
  p_symmetric : bool;
  p_line : int;
}

val analyze : Callgraph.t -> report

(** Findings only, in deterministic (file, line, col, message) order. *)
val findings : Callgraph.t -> Lint_core.finding list

val findings_of_report : report -> Lint_core.finding list

(** [(writer, reader, symmetric)] display triples, in source order. *)
val pairs : report -> (string * string * bool) list

(** The machine-readable report ([_build/default/analysis/widths.json]). *)
val to_json : report -> string
