(** Interprocedural model-compliance rules (stage 3), over the
    {!Callgraph} symbol graph: [node-locality] (no per-node callback may
    reach module-level mutable state) and [send-discipline] (no per-node
    callback path may charge [Metrics] counters directly). Findings
    carry the full reachability chain and anchor at the callback site,
    so the baseline groups them per (rule, file). *)

(** [(id, description)] for the interprocedural rules. *)
val rules : (string * string) list

val rule_ids : string list

(** All interprocedural findings over a built call graph, in stable
    (file, position, rule, message) order. Rule scoping goes through
    {!Lint_core.applies}. *)
val findings : Callgraph.t -> Lint_core.finding list

(** [analyze parsed] builds the call graph from [(file, structure)]
    pairs and runs every rule. *)
val analyze : (string * Parsetree.structure) list -> Callgraph.t * Lint_core.finding list
