(* Model-compliance lint over the repository's OCaml sources.

   The CONGEST reproduction's guarantees (DESIGN.md "Model compliance &
   static analysis") rest on properties no type checker enforces:
   executions must be deterministic given the seeds, message accounting
   must be honest, and library code must fail with typed, contextual
   errors. This module parses each [.ml] file into a Parsetree with
   [compiler-libs] and walks it with an [Ast_iterator], reporting
   violations as [file:line:col] findings with a stable rule id.

   The analysis is purely syntactic: it sees names, not types. Rules are
   therefore scoped to the directories where their approximation is
   sound (see [applies]) and deliberate exceptions are recorded in a
   committed baseline file (one entry per rule x file with an expected
   count and a justification), so the build fails only on new findings
   or on stale entries. *)

type finding = { rule : string; file : string; line : int; col : int; message : string }

let rules =
  [
    ( "unseeded-random",
      "ambient randomness: Random.* outside Random.State, or Random.State.make_self_init \
       (breaks seed-reproducibility)" );
    ( "ambient-env",
      "wall-clock or environment read (Unix.*, Sys.time, Sys.getenv, ...): output must \
       depend only on inputs and seeds" );
    ("unsafe-escape", "unsafe escape hatch (Obj.magic, Marshal) voids every static guarantee");
    ( "lib-abort",
      "failwith / assert false in library code: raise a typed exception or \
       Invalid_argument with context" );
    ("catch-all", "catch-all 'try ... with _ ->' swallows every exception, including bugs");
    ( "poly-compare",
      "polymorphic compare in lib/congest: use Int.compare / a typed comparison so \
       message ordering cannot depend on representation" );
    ( "hashtbl-order",
      "Hashtbl.iter/fold in lib/congest: iteration order is nondeterministic; sort \
       explicitly before anything order-sensitive (outboxes, metrics)" );
    (* the two interprocedural rules (implemented in Interproc over the
       Callgraph/Effects stages) are registered here so the baseline
       parser and --rules listing know them *)
    ( "node-locality",
      "interprocedural: a per-node callback (init/step/active/on_restart, or a RECOVERABLE \
       structure handed to a *.Make functor) can reach module-level mutable state — shared \
       memory outside charged messages invalidates every round bound" );
    ( "send-discipline",
      "interprocedural: a per-node callback path charges Metrics counters directly; all \
       traffic/storage accounting must flow through the engine's single charging path" );
    ( "domain-safety",
      "interprocedural: a parallelizable region root (engine round loop, transport fast \
       path, per-node callbacks) can reach Racy module-level mutable state — convert it \
       to Atomic, prove it immutable-after-init, or shard it per domain (DESIGN.md §3f)" );
    ( "hot-alloc",
      "interprocedural: a [@@hot] function allocates (closure, tuple/record/variant box, \
       float box, partial application, or allocating callee) — the static form of the \
       EObs Gc.minor_words = 0 guarantee" );
    ( "width-trunc",
      "interval analysis: a value written by Bitio.put may exceed 2^bits - 1 — the field \
       would silently truncate and the codec return a wrong value, not an error" );
    ( "width-range",
      "interval analysis: a ~bits width expression may leave [0, 30], the range Bitio \
       accepts" );
    ( "codec-mismatch",
      "a Codec writer/reader pair disagrees on field order or widths after symbolic trace \
       normalization — the bit-packed format has no in-band typing to catch this at runtime" );
    ( "bandwidth-sound",
      "a message module's `words` may undercharge its statically bounded content: every \
       accepted word must be accounted for the CONGEST O(log n)-bit budget to mean anything" );
    ( "bandwidth-charge",
      "a Metrics.add_words / add_checkpoint_words caller is not an audited [@@charge_site] \
       or charges a measure not derived from M.words / Array.length" );
  ]

let rule_ids = List.map fst rules

let interproc_rule_ids =
  [
    "node-locality";
    "send-discipline";
    "domain-safety";
    "hot-alloc";
    "width-trunc";
    "width-range";
    "codec-mismatch";
    "bandwidth-sound";
    "bandwidth-charge";
  ]

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let segments file = String.split_on_char '/' file |> List.filter (fun s -> s <> "" && s <> ".")

let under dir file =
  (* does [file] live under a directory named [dir] ("lib" or "lib/congest")? *)
  let dirsegs = String.split_on_char '/' dir in
  let rec has_prefix = function
    | [] -> false
    | _ :: rest as l ->
        let rec matches = function
          | [], _ -> true
          | d :: ds, s :: ss when d = s -> matches (ds, ss)
          | _ -> false
        in
        matches (dirsegs, l) || has_prefix rest
  in
  has_prefix (segments file)

(* [lib-abort] only constrains library code; CLIs and tests may abort.
   [poly-compare] and [hashtbl-order] approximate type/flow information
   syntactically, which is only precise enough for the small, hot
   lib/congest model layer. *)
let applies rule file =
  match rule with
  | "lib-abort" -> under "lib" file
  | "poly-compare" | "hashtbl-order" -> under "lib/congest" file
  (* the charging-path audit binds library code only: CLIs do
     coordinator-side reporting, not per-message accounting *)
  | "bandwidth-charge" -> under "lib" file
  | _ -> true (* node-locality and send-discipline bind wherever nodes run *)

(* ------------------------------------------------------------------ *)
(* The AST walk *)

let lint_structure ~file structure =
  let findings = ref [] in
  let report rule (loc : Location.t) message =
    if applies rule file then begin
      let p = loc.loc_start in
      findings :=
        { rule; file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; message } :: !findings
    end
  in
  let check_ident loc lid =
    let path =
      match Longident.flatten lid with "Stdlib" :: rest -> rest | path -> path
    in
    match path with
    | [ "failwith" ] | [ "Printf"; "failwithf" ] ->
        report "lib-abort" loc "failwith aborts with an untyped Failure"
    | [ "compare" ] | [ "Pervasives"; "compare" ] ->
        report "poly-compare" loc "polymorphic compare"
    | [ "Random"; "State"; "make_self_init" ] ->
        report "unseeded-random" loc "Random.State.make_self_init seeds from the environment"
    | [ "Random"; "State"; _ ] -> ()
    | "Random" :: f :: _ ->
        report "unseeded-random" loc
          (Printf.sprintf "Random.%s uses the shared, ambiently-seeded generator" f)
    | [ "Sys"; f ]
      when List.mem f
             [
               "time"; "getenv"; "getenv_opt"; "unsafe_getenv"; "command"; "getcwd";
               "readdir"; "environment";
             ] ->
        report "ambient-env" loc (Printf.sprintf "Sys.%s reads ambient state" f)
    | "Unix" :: _ -> report "ambient-env" loc "Unix.* reads clocks/processes/environment"
    | [ "Obj"; "magic" ] -> report "unsafe-escape" loc "Obj.magic defeats the type system"
    | "Marshal" :: _ ->
        report "unsafe-escape" loc "Marshal is unsafe on read-back and format-unstable"
    | [ "Hashtbl"; ("iter" | "fold" as f) ] ->
        report "hashtbl-order" loc
          (Printf.sprintf "Hashtbl.%s visits bindings in nondeterministic order" f)
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } -> check_ident loc txt
          | Parsetree.Pexp_assert
              { pexp_desc = Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
                _;
              } ->
              report "lib-abort" e.Parsetree.pexp_loc "assert false aborts with no context"
          | Parsetree.Pexp_try (_, cases) ->
              List.iter
                (fun (c : Parsetree.case) ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Parsetree.Ppat_any, None ->
                      report "catch-all" c.pc_lhs.ppat_loc "handler matches any exception"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.expr iter e);
    }
  in
  iter.structure iter structure;
  List.rev !findings

let parse_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  try Ok (Parse.implementation lexbuf)
  with exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        Error (Format.asprintf "%a" Location.print_report report)
    | _ -> Error (Printf.sprintf "%s: %s" file (Printexc.to_string exn)))

let lint_source ~file source =
  Result.map (lint_structure ~file) (parse_source ~file source)

let lint_file file =
  let ic = open_in_bin file in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_source ~file source

(* ------------------------------------------------------------------ *)
(* Baseline *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  count : int;
  justification : string;
  b_line : int;
}

(* Line format: [<rule> <file> <count> # <justification>]. Blank lines and
   lines starting with '#' are comments. *)
let parse_baseline text =
  let entries = ref [] and errors = ref [] in
  let err lno msg = errors := Printf.sprintf "lint.baseline:%d: %s" lno msg :: !errors in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lno = i + 1 in
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           let entry, justification =
             match String.index_opt line '#' with
             | Some h ->
                 ( String.trim (String.sub line 0 h),
                   String.trim (String.sub line (h + 1) (String.length line - h - 1)) )
             | None -> (line, "")
           in
           match String.split_on_char ' ' entry |> List.filter (( <> ) "") with
           | [ b_rule; b_file; count ] -> (
               if not (List.mem b_rule rule_ids) then
                 err lno (Printf.sprintf "unknown rule id %S" b_rule)
               else if justification = "" then
                 err lno "baseline entry needs a '# justification' comment"
               else
                 match int_of_string_opt count with
                 | Some count when count > 0 ->
                     if
                       List.exists
                         (fun e -> e.b_rule = b_rule && e.b_file = b_file)
                         !entries
                     then err lno (Printf.sprintf "duplicate entry for %s %s" b_rule b_file)
                     else
                       entries :=
                         { b_rule; b_file; count; justification; b_line = lno } :: !entries
                 | _ -> err lno (Printf.sprintf "invalid count %S" count))
           | _ -> err lno "expected '<rule> <file> <count> # <justification>'");
  match !errors with [] -> Ok (List.rev !entries) | es -> Error (List.rev es)

(* [--update-baseline] stamps new groups "TODO justify"; an entry still
   carrying that marker is a debt, not a decision, and fails the build
   until a human writes the why. *)
let unjustified entries =
  let is_todo j =
    String.length j >= 4 && String.lowercase_ascii (String.sub j 0 4) = "todo"
  in
  List.filter (fun e -> is_todo e.justification) entries

type baseline_outcome = {
  fresh : finding list;  (* findings the baseline does not cover *)
  stale : (baseline_entry * int) list;  (* entries expecting more findings than found *)
}

let apply_baseline entries findings =
  let count_for rule file =
    match List.find_opt (fun e -> e.b_rule = rule && e.b_file = file) entries with
    | Some e -> e.count
    | None -> 0
  in
  let tally = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let k = (f.rule, f.file) in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    findings;
  let fresh =
    List.filter_map
      (fun f ->
        let allowed = count_for f.rule f.file in
        let actual = Hashtbl.find tally (f.rule, f.file) in
        if actual <= allowed then None
        else if allowed = 0 then Some f
        else
          Some
            {
              f with
              message =
                Printf.sprintf "%s (%d baselined, %d found)" f.message allowed actual;
            })
      findings
  in
  let stale =
    List.filter_map
      (fun e ->
        let actual = Option.value ~default:0 (Hashtbl.find_opt tally (e.b_rule, e.b_file)) in
        if actual < e.count then Some (e, actual) else None)
      entries
  in
  { fresh; stale }

(* Rebuild the baseline from the current findings: one entry per
   (rule, file) with the exact count. Entries that survive keep their
   justification; new ones are marked for review; entries whose
   findings disappeared are dropped (they would be stale). Used by
   [lint --update-baseline]. *)
let baseline_header =
  "# Model-compliance lint baseline (DESIGN.md \"Model compliance & static analysis\").\n\
   # One entry per deliberate exception: <rule> <file> <count> # justification.\n\
   # `dune build @lint` fails on any finding not covered here AND on any entry\n\
   # whose count exceeds the real findings (stale) — shrink this file as code is fixed.\n"

let render_baseline ~old findings =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let k = (f.rule, f.file) in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    findings;
  let groups =
    Hashtbl.fold (fun (rule, file) count acc -> (file, rule, count) :: acc) tally []
    |> List.sort compare
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf baseline_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (file, rule, count) ->
      let justification =
        match List.find_opt (fun e -> e.b_rule = rule && e.b_file = file) old with
        | Some e -> e.justification
        | None -> "TODO justify"
      in
      Buffer.add_string buf (Printf.sprintf "%s %s %d # %s\n" rule file count justification))
    groups;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Output *)

let pp_finding_text fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_finding_json fmt f =
  Format.fprintf fmt
    {|{"rule": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"}|}
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.message)
