(** Bottom-up effect summaries over the symbol/call graph (stage 2 of
    the interprocedural model-compliance analysis).

    Every module-level binding gets a transitive summary: which
    module-level mutable values it can read or mutate, whether it can
    perform I/O, and whether it can raise an untyped abort ([failwith],
    [assert false]). Summaries are closed over the call graph with a
    fixpoint, so (mutual) recursion converges. *)

type summary = {
  reads_global : Callgraph.Sym_set.t;
  mutates_global : Callgraph.Sym_set.t;
  performs_io : bool;
  raises_untyped : bool;
}

type t

val summarize : Callgraph.t -> t
val find : t -> Callgraph.sym -> summary option

(** Stable symbol identifier used in the JSON report:
    ["<file>#<dotted path>"]. *)
val sym_id : Callgraph.sym -> string

(** JSON-writing helpers shared by the [domains.json]/[alloc.json]
    emitters. *)
val json_escape : string -> string

val json_string_list : string list -> string

(** The machine-readable effect report
    ([_build/default/analysis/effects.json]): one entry per binding with
    its summary, direct calls, and external references. *)
val to_json : Callgraph.t -> t -> string
