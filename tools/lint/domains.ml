(* Domain-safety certifier (DESIGN.md §3f): can the engine be sharded
   across OCaml 5 Domains without data races?

   The planned columnar multicore engine (ROADMAP item 1) will run the
   per-node step closures and the engine round loop concurrently. Any
   module-level mutable value such a region can reach is then a
   potential data race. This pass classifies every module-level mutable
   binding the call-graph builder detected into a three-point lattice:

   - [DomainSafe (Atomic)]  — the container is an [Atomic.t]: safe by
     construction under any interleaving;
   - [DomainSafe (Immutable-after-init)] — a write-reachability fixpoint
     over the whole-repo call graph finds no named binding that ever
     reaches the value in mutation position. Writes from anonymous
     [let () = ...] initializers run during module initialization,
     strictly before any engine run, so the value is frozen by the time
     a parallel region could observe it;
   - [Racy] — some named binding mutates it: concurrent regions could
     observe torn or lost updates.

   It then BFSes from every parallelizable region root — bindings
   annotated [@@parallel_region] (the engine round loop, the transport
   fast path) and every per-node callback site ([init]/[step]/[active]/
   [on_restart], and [RECOVERABLE]-style structures handed to [*.Make]
   functors) — and fails the build on any path to [Racy] state,
   printing the full call chain like {!Interproc} does.

   Independently of the pass/fail verdict, the JSON report ([to_json])
   inventories the [PerNode] class: run-local mutable containers
   ([let delayed = ref [] in ...]) captured by per-node closures or
   allocated inside a region root. These are safe today (one run, one
   thread) but are exactly the state the Domains refactor must shard or
   merge deterministically — the report is the refactor's work list.

   Soundness caveats are shared with the call-graph builder (purely
   syntactic: no types, no functor instantiation tracking, containers
   escaping through function arguments are invisible) and documented in
   DESIGN.md §3f. *)

module Cg = Callgraph

type clazz = Safe_atomic | Safe_immutable | Racy

let class_name = function
  | Safe_atomic -> "domain-safe (atomic)"
  | Safe_immutable -> "domain-safe (immutable-after-init)"
  | Racy -> "racy"

type state_entry = {
  st_sym : Cg.sym;
  st_kind : string;  (* container kind: "ref", "hashtbl", ... *)
  st_class : clazz;
  st_mutators : Cg.sym list;  (* named bindings mutating it directly *)
  st_line : int;
}

(* one run-local mutable container reachable from a parallel region:
   the Domains refactor must shard it or give it a deterministic merge *)
type shard_entry = {
  sh_file : string;
  sh_owner : string;  (* enclosing binding / callback owner *)
  sh_root : string;  (* "step callback" | "parallel region `...`" *)
  sh_name : string;
  sh_line : int;
  sh_col : int;
}

type report = { state : state_entry list; shards : shard_entry list }

(* ------------------------------------------------------------------ *)
(* Classification *)

let classify (cg : Cg.t) : state_entry list =
  (* direct write map: which named bindings reach each mutable value in
     mutation position? Anonymous [let ()] initializers never register
     as bindings, so init-time writes do not count — that is the
     immutable-after-init proof obligation (caveats in DESIGN.md §3f). *)
  let mutators : (Cg.sym, Cg.Sym_set.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match Cg.find cg s with
      | None -> ()
      | Some b ->
          List.iter
            (fun target ->
              let cur =
                Option.value ~default:Cg.Sym_set.empty (Hashtbl.find_opt mutators target)
              in
              Hashtbl.replace mutators target (Cg.Sym_set.add s cur))
            b.Cg.mutates)
    cg.Cg.order;
  List.filter_map
    (fun s ->
      match Cg.find cg s with
      | Some b when b.Cg.is_mutable_value ->
          let kind = Option.value ~default:"mutable" b.Cg.mutable_kind in
          let muts =
            Option.value ~default:Cg.Sym_set.empty (Hashtbl.find_opt mutators s)
            (* self-mutation (a lazy table memoizing into itself) still
               races across domains: keep it *)
          in
          let st_class =
            if kind = "atomic" then Safe_atomic
            else if Cg.Sym_set.is_empty muts then Safe_immutable
            else Racy
          in
          Some
            {
              st_sym = s;
              st_kind = kind;
              st_class;
              st_mutators = Cg.Sym_set.elements muts;
              st_line = b.Cg.line;
            }
      | _ -> None)
    cg.Cg.order

(* ------------------------------------------------------------------ *)
(* Reachability from parallel region roots *)

type root = {
  r_file : string;
  r_desc : string;  (* finding prefix, e.g. "per-node `step` callback (in X)" *)
  r_label : string;  (* chain head *)
  r_line : int;
  r_col : int;
  r_calls : Cg.sym list;
  r_shard_owner : string;
  r_captured : Cg.local_mutable list;
}

let roots (cg : Cg.t) =
  let of_callback (cb : Cg.callback) =
    {
      r_file = cb.Cg.cb_file;
      r_desc =
        Printf.sprintf "per-node `%s` callback (in %s)" cb.Cg.cb_label cb.Cg.cb_owner;
      r_label = cb.Cg.cb_label;
      r_line = cb.Cg.cb_line;
      r_col = cb.Cg.cb_col;
      r_calls = cb.Cg.cb_calls;
      r_shard_owner = cb.Cg.cb_owner;
      r_captured = cb.Cg.cb_captured;
    }
  in
  let of_region s (b : Cg.binding) =
    {
      r_file = b.Cg.file;
      r_desc = Printf.sprintf "parallel region `%s`" (Cg.display s);
      r_label = Cg.display s;
      r_line = b.Cg.line;
      r_col = b.Cg.col;
      r_calls = b.Cg.calls;
      r_shard_owner = b.Cg.path;
      r_captured = b.Cg.local_mutables;
    }
  in
  let regions =
    List.filter_map
      (fun s ->
        match Cg.find cg s with
        | Some b when b.Cg.is_region -> Some (of_region s b)
        | _ -> None)
      cg.Cg.order
  in
  regions @ List.map of_callback cg.Cg.callbacks

(* breadth-first search from one root's reference set to Racy state;
   the shortest chain to each offending value is printed in full *)
let hits_of_root (cg : Cg.t) ~racy root =
  let hits = ref [] in
  let seen_target = Hashtbl.create 8 in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  let chain_to : (Cg.sym, string list) Hashtbl.t = Hashtbl.create 64 in
  let enqueue chain s =
    if not (Hashtbl.mem visited s) then begin
      Hashtbl.replace visited s ();
      Hashtbl.replace chain_to s chain;
      Queue.add s queue
    end
  in
  List.iter (enqueue []) root.r_calls;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let chain = match Hashtbl.find_opt chain_to s with Some c -> c | None -> [] in
    let chain = chain @ [ Cg.display s ] in
    match Cg.find cg s with
    | None -> ()
    | Some b ->
        if Hashtbl.mem racy s then begin
          if not (Hashtbl.mem seen_target s) then begin
            Hashtbl.replace seen_target s ();
            hits := (s, chain) :: !hits
          end
        end
        else if not b.Cg.is_mutable_value then List.iter (enqueue chain) b.Cg.calls
  done;
  List.rev !hits

let findings (cg : Cg.t) =
  let state = classify cg in
  let racy = Hashtbl.create 8 in
  let mutator_names = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.st_class = Racy then begin
        Hashtbl.replace racy e.st_sym ();
        Hashtbl.replace mutator_names e.st_sym
          (String.concat ", " (List.map Cg.display e.st_mutators))
      end)
    state;
  List.concat_map
    (fun root ->
      if not (Lint_core.applies "domain-safety" root.r_file) then []
      else
        List.map
          (fun ((s : Cg.sym), chain) ->
            let b = Cg.find cg s in
            let where =
              match b with
              | Some b -> Printf.sprintf " (%s:%d)" b.Cg.file b.Cg.line
              | None -> ""
            in
            let muts =
              match Hashtbl.find_opt mutator_names s with
              | Some m when m <> "" -> Printf.sprintf "; mutated by %s" m
              | _ -> ""
            in
            {
              Lint_core.rule = "domain-safety";
              file = root.r_file;
              line = root.r_line;
              col = root.r_col;
              message =
                Printf.sprintf
                  "%s can reach racy shared state %s%s via %s%s; convert it to Atomic, prove \
                   it immutable-after-init, or shard it per domain before the multicore \
                   refactor"
                  root.r_desc (Cg.display s) where
                  (String.concat " -> " (root.r_label :: chain))
                  muts;
            })
          (hits_of_root cg ~racy root))
    (roots cg)
  |> List.sort (fun (a : Lint_core.finding) (b : Lint_core.finding) ->
         match String.compare a.file b.file with
         | 0 -> (
             match Int.compare a.line b.line with
             | 0 -> (
                 match Int.compare a.col b.col with
                 | 0 -> String.compare a.message b.message
                 | c -> c)
             | c -> c)
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Report *)

let report (cg : Cg.t) : report =
  let shards =
    List.concat_map
      (fun root ->
        List.map
          (fun (lm : Cg.local_mutable) ->
            {
              sh_file = root.r_file;
              sh_owner = root.r_shard_owner;
              sh_root = root.r_desc;
              sh_name = lm.Cg.lm_name;
              sh_line = lm.Cg.lm_line;
              sh_col = lm.Cg.lm_col;
            })
          root.r_captured)
      (roots cg)
    |> List.sort_uniq compare
  in
  { state = classify cg; shards }

let json_escape = Effects.json_escape

let to_json (cg : Cg.t) (r : report) =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\n  \"schema\": \"repro-lint/domains/1\",\n";
  let racy = List.length (List.filter (fun e -> e.st_class = Racy) r.state) in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"mutable_bindings\": %d, \"racy\": %d, \"per_node_shards\": %d},\n"
       (List.length r.state) racy (List.length r.shards));
  Buffer.add_string buf "  \"state\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"symbol\": \"%s\", \"file\": \"%s\", \"line\": %d, \"kind\": \"%s\", \
            \"class\": \"%s\", \"mutators\": %s}"
           (json_escape (Effects.sym_id e.st_sym))
           (json_escape e.st_sym.Cg.s_file)
           e.st_line (json_escape e.st_kind)
           (json_escape (class_name e.st_class))
           (Effects.json_string_list (List.map Effects.sym_id e.st_mutators))))
    r.state;
  Buffer.add_string buf "\n  ],\n  \"per_node\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"file\": \"%s\", \"owner\": \"%s\", \"root\": \"%s\", \"name\": \"%s\", \
            \"line\": %d, \"col\": %d}"
           (json_escape s.sh_file) (json_escape s.sh_owner) (json_escape s.sh_root)
           (json_escape s.sh_name) s.sh_line s.sh_col))
    r.shards;
  Buffer.add_string buf "\n  ],\n  \"findings\": [\n";
  List.iteri
    (fun i (f : Lint_core.finding) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Format.asprintf "    %a" Lint_core.pp_finding_json f))
    (findings cg);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
