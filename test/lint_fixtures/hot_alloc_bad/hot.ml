(* One [@@hot] offender per allocation kind the pass distinguishes. *)

(* not hot itself, but transitively allocating: [hot_callee] below picks
   it up through the may_allocate fixpoint *)
let helper xs = List.map (fun x -> x + 1) xs

let add3 a b c = a + b + c

(* closure construction in the body (the leading params are exempt) *)
let hot_closure xs x = List.iter (fun y -> ignore (x + y)) xs [@@hot]

(* tuple boxing *)
let hot_tuple a b = (a, b) [@@hot]

(* float boxing via a [+.] application *)
let hot_float a b = a +. b [@@hot]

(* variant boxing *)
let hot_variant x = Some x [@@hot]

(* allocating in-repo callee, resolved through the call graph *)
let hot_callee xs = helper xs [@@hot]

(* partial application builds an intermediate closure *)
let hot_partial a = add3 a 1 [@@hot]
