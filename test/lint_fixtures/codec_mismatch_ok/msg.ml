(* The clean twin: field order and widths agree, including a dynamic
   width the writer stores in a 6-bit header field and the reader
   recovers from the same field. *)

let write_rec w a b =
  Bitio.put w ~bits:8 (a land 255);
  Bitio.put w ~bits:16 (b land 65535)

let read_rec r =
  let a = Bitio.get r ~bits:8 in
  let b = Bitio.get r ~bits:16 in
  (a, b)

let write_dyn w v =
  if v < 0 then invalid_arg "neg";
  let n = Bitio.bits_needed v in
  if n > 30 then invalid_arg "too wide";
  Bitio.put w ~bits:6 n;
  Bitio.put w ~bits:n (v land ((1 lsl n) - 1))

let read_dyn r =
  let n = Bitio.get r ~bits:6 in
  if n > 30 then invalid_arg "corrupt width";
  Bitio.get r ~bits:n
