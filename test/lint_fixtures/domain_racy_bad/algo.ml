(* The step callback writes State.total through State.record: a
   domain-safety (and node-locality) violation. *)
let run graph =
  let init _node = 0 in
  let step node st _inbox = State.record node; st in
  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)
