(* Racy: a module-level ref with a named mutator — concurrent step
   closures would race on it under the Domains engine. *)
let total = ref 0
let record k = total := !total + k
let read () = !total
