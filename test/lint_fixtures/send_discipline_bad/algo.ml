(* Seeded violation (send-discipline): a [step] callback charges the
   Metrics counters directly instead of letting the engine account for
   the words it emits. Parsed by test_lint only — never compiled. *)

let run graph metrics =
  let init _node = 0 in
  let step _node st inbox =
    Metrics.add_words metrics (List.length inbox);
    st
  in
  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)
