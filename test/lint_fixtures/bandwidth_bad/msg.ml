(* Seeded undercharge: the message carries two words of content but the
   words function charges one, so the runtime word counters undercount
   CONGEST bandwidth. *)

module Msg = struct
  type t = int * int

  let words _ = 1
end
