(* Seeded violation (node-locality): a module-level mutable table.
   Parsed by test_lint only — never compiled. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16
let lookup v = Hashtbl.find_opt table v
