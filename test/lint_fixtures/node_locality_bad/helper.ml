(* Innocent-looking indirection: the escape is two calls deep. *)

let consult v = match State.lookup v with Some d -> d | None -> 0
