(* A per-node protocol whose [step] reaches State.table via Helper:
   nodes would share information outside the charged message path. *)

let run graph =
  let init _node = 0 in
  let step node st _inbox = st + Helper.consult node in
  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)
