(* Clean twin: the table is created per node and threaded explicitly,
   so no per-node code can reach another node's state. *)

let make () = Hashtbl.create 16
let lookup t v = match Hashtbl.find_opt t v with Some d -> d | None -> 0
