(* Clean twin of node_locality_bad: per-node state lives in the node's
   own accumulator, created in [init] and threaded through [step]. *)

let run graph =
  let init _node = State.make () in
  let step node st _inbox =
    ignore (Helper.consult st node);
    st
  in
  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)
