(* Same indirection as the bad twin, but the table is a parameter. *)

let consult t v = State.lookup t v
