(* Clean twin of send_discipline_bad: the step only computes over its
   inbox and returns; all accounting stays inside the engine. *)

let run graph =
  let init _node = 0 in
  let step _node st inbox = st + List.length inbox in
  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)
