(* The clean twin: a two-sided diverging guard pins the value into the
   4-bit field, and the dynamic width is both range-guarded and applied
   to a value masked to exactly that width. *)

let write_ok w v =
  if v < 0 || v > 15 then invalid_arg "out of field";
  Bitio.put w ~bits:4 v

let write_masked w n v =
  if n < 1 || n > 30 then invalid_arg "bad width";
  Bitio.put w ~bits:n (v land ((1 lsl n) - 1))
