(* Seeded width bugs: the negative-only guard still lets values above
   2^4 - 1 reach a 4-bit field (width-trunc), and an unconstrained
   parameter used as ~bits can leave [0, 30] (width-range). *)

let write_bad w v =
  if v < 0 then invalid_arg "neg";
  Bitio.put w ~bits:4 v

let width_of_param w n = Bitio.put w ~bits:n 1
