(* Seeded asymmetry: the writer emits an 8-bit field then a 16-bit
   field, but the reader consumes two 8-bit fields. Values are masked so
   only the codec-mismatch rule fires. *)

let write_rec w a b =
  Bitio.put w ~bits:8 (a land 255);
  Bitio.put w ~bits:16 (b land 65535)

let read_rec r =
  let a = Bitio.get r ~bits:8 in
  let b = Bitio.get r ~bits:8 in
  (a, b)
