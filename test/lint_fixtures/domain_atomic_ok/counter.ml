(* DomainSafe (atomic): the shared counter is an Atomic.t, safe under
   any interleaving even though a named binding mutates it. *)
let hits = Atomic.make 0
let bump () = Atomic.incr hits
let read () = Atomic.get hits
