(* A parallelizable region reaching only Atomic state: clean. *)
let run n =
  for _i = 1 to n do
    Counter.bump ()
  done;
  Counter.read ()
[@@parallel_region]
