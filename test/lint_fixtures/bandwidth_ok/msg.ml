(* The clean twin: the charge matches the two-word static content
   bound. *)

module Msg = struct
  type t = int * int

  let words _ = 2
end
