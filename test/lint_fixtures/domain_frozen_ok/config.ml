(* DomainSafe (immutable-after-init): the table is filled by an
   anonymous module initializer and no named binding ever writes it, so
   it is frozen before any parallel region can observe it. *)
let table = Hashtbl.create 16

let () =
  List.iter (fun (k, v) -> Hashtbl.replace table k v) [ (1, "one"); (2, "two"); (3, "three") ]

let find k = Hashtbl.find_opt table k
