(* A parallelizable region reading the frozen table: clean. *)
let run v = Config.find v [@@parallel_region]
