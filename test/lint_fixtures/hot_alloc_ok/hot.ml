(* Clean twins: [@@hot] bodies that provably never allocate. *)

(* integer arithmetic only *)
let hot_add a b = a + b [@@hot]

(* reads and writes of existing blocks *)
let hot_get arr i = Array.unsafe_get arr i [@@hot]
let hot_set arr i v = Array.unsafe_set arr i v [@@hot]
let hot_bump r = incr r [@@hot]

(* the tracing-guarded slow path is off the hot path by contract and
   its allocations are not counted *)
let hot_guarded tracing arr i =
  if tracing then Printf.printf "probe %d\n" (Array.length arr);
  Array.unsafe_get arr i
[@@hot]

(* calling another certified-clean sibling stays clean *)
let hot_chain a b = hot_add a b [@@hot]
