module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Primitives = Repro_shortcut.Primitives
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Split = Repro_treedec.Split
module Separator = Repro_treedec.Separator
module Build = Repro_treedec.Build

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_valid msg dec =
  match Decomposition.validate dec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" msg e

(* ------------------------------------------------------------------ *)
(* Decomposition type *)

let test_decomposition_create_and_accessors () =
  let g = Generators.path 4 in
  let dec =
    Decomposition.create g
      [ ([], [| 1; 2 |]); ([ 0 ], [| 0; 1 |]); ([ 1 ], [| 2; 3 |]) ]
  in
  check_int "width" 1 (Decomposition.width dec);
  check_int "depth" 1 (Decomposition.depth dec);
  check_int "bags" 3 (Decomposition.bag_count dec);
  Alcotest.(check (list int)) "children of root" [ 0; 1 ] (Decomposition.children dec []);
  check_valid "path decomposition" dec

let test_decomposition_rejects_gap () =
  let g = Generators.path 3 in
  check_bool "non-contiguous child rejected" true
    (try
       ignore (Decomposition.create g [ ([], [| 0 |]); ([ 1 ], [| 1; 2 |]) ]);
       false
     with Invalid_argument _ -> true)

let test_decomposition_detects_uncovered_vertex () =
  let g = Generators.path 3 in
  let dec = Decomposition.create g [ ([], [| 0; 1 |]) ] in
  match Decomposition.validate dec with
  | Error e -> check_bool "mentions (a)" true (String.length e > 0)
  | Ok () -> Alcotest.fail "expected condition (a) failure"

let test_decomposition_detects_uncovered_edge () =
  let g = Generators.cycle 3 in
  let dec =
    Decomposition.create g [ ([], [| 0; 1 |]); ([ 0 ], [| 1; 2 |]) ]
  in
  match Decomposition.validate dec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "edge (0,2) uncovered, expected failure"

let test_decomposition_detects_disconnected_bags () =
  let g = Generators.path 5 in
  (* vertex 0 occurs in two bags whose connecting bag omits it *)
  let dec =
    Decomposition.create g
      [ ([], [| 0; 1 |]); ([ 0 ], [| 1; 2 |]); ([ 0; 0 ], [| 2; 3; 0 |]); ([ 0; 0; 0 ], [| 3; 4 |]) ]
  in
  match Decomposition.validate dec with
  | Error e -> check_bool "mentions (c)" true (String.length e > 0)
  | Ok () -> Alcotest.fail "expected condition (c) failure"

let test_canonical_and_b_up () =
  let g = Generators.path 4 in
  let dec =
    Decomposition.create g
      [ ([], [| 1; 2 |]); ([ 0 ], [| 0; 1 |]); ([ 1 ], [| 2; 3 |]) ]
  in
  Alcotest.(check (list int)) "canonical of 1 is root" [] (Decomposition.canonical dec 1);
  Alcotest.(check (list int)) "canonical of 0" [ 0 ] (Decomposition.canonical dec 0);
  Alcotest.(check (array int)) "b_up of 0" [| 0; 1; 2 |] (Decomposition.b_up dec 0);
  Alcotest.(check (array int)) "b_up of 2" [| 1; 2 |] (Decomposition.b_up dec 2)

(* ------------------------------------------------------------------ *)
(* Heuristics *)

let test_minfill_ktree_exact () =
  (* min-fill recovers the exact treewidth of a k-tree *)
  List.iter
    (fun k ->
      let g = Generators.k_tree ~seed:(100 + k) 40 k in
      let dec = Heuristic.min_fill g in
      check_valid "min-fill" dec;
      check_int (Printf.sprintf "width of %d-tree" k) k (Decomposition.width dec))
    [ 1; 2; 3; 4 ]

let test_minfill_cycle () =
  let dec = Heuristic.min_fill (Generators.cycle 9) in
  check_valid "cycle" dec;
  check_int "cycle width" 2 (Decomposition.width dec)

let test_degeneracy_bounds () =
  let g = Generators.k_tree ~seed:9 30 3 in
  check_int "k-tree degeneracy" 3 (Heuristic.degeneracy g);
  check_bool "upper >= lower" true (Heuristic.treewidth_upper g >= Heuristic.degeneracy g)

let prop_minfill_valid =
  QCheck.Test.make ~name:"min-fill decompositions are valid" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 5 35))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.15 in
      let dec = Heuristic.min_fill g in
      Decomposition.validate dec = Ok ())

let prop_minfill_width_sandwich =
  QCheck.Test.make ~name:"degeneracy <= min-fill width" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 5 30))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.2 in
      Heuristic.degeneracy g <= Decomposition.width (Heuristic.min_fill g))

(* ------------------------------------------------------------------ *)
(* Split *)

let path_tree_adj n =
  let adj = Array.make n [] in
  for v = 0 to n - 2 do
    adj.(v) <- (v + 1) :: adj.(v);
    adj.(v + 1) <- v :: adj.(v + 1)
  done;
  adj

let test_split_path () =
  let n = 100 in
  let subtrees =
    Split.run ~tree_adj:(path_tree_adj n) ~root:0 ~mu:(fun _ -> 1) ~lo:5 ~hi:20
  in
  (* cover all vertices *)
  let seen = Array.make n 0 in
  List.iter
    (fun st -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) st.Split.vertices)
    subtrees;
  Array.iteri (fun v c -> check_bool (Printf.sprintf "vertex %d covered" v) true (c >= 1)) seen;
  List.iter
    (fun st ->
      let w = List.length st.Split.vertices in
      check_bool "within bounds" true (w <= 20 && w >= 2))
    subtrees

let test_split_small_tree_untouched () =
  let subtrees = Split.run ~tree_adj:(path_tree_adj 5) ~root:0 ~mu:(fun _ -> 1) ~lo:2 ~hi:10 in
  check_int "single subtree" 1 (List.length subtrees)

let prop_split_covers_and_bounds =
  QCheck.Test.make ~name:"SPLIT covers the tree with bounded pieces" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 20 120))
    (fun (seed, n) ->
      (* random tree: attach each vertex to a random earlier one *)
      let rng = Random.State.make [| seed |] in
      let adj = Array.make n [] in
      for v = 1 to n - 1 do
        let p = Random.State.int rng v in
        adj.(v) <- p :: adj.(v);
        adj.(p) <- v :: adj.(p)
      done;
      let lo = max 1 (n / 20) in
      let hi = max (3 * lo) (n / 5) in
      let subtrees = Split.run ~tree_adj:adj ~root:0 ~mu:(fun _ -> 1) ~lo ~hi in
      let covered = Array.make n false in
      List.iter
        (fun st -> List.iter (fun v -> covered.(v) <- true) st.Split.vertices)
        subtrees;
      Array.for_all Fun.id covered
      && List.for_all (fun st -> List.length st.Split.vertices <= hi) subtrees)

let prop_split_pieces_share_only_roots =
  QCheck.Test.make ~name:"SPLIT pieces are disjoint except at roots" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 20 100))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed + 7 |] in
      let adj = Array.make n [] in
      for v = 1 to n - 1 do
        let p = Random.State.int rng v in
        adj.(v) <- p :: adj.(v);
        adj.(p) <- v :: adj.(p)
      done;
      let lo = max 1 (n / 15) in
      let hi = max (3 * lo) (n / 4) in
      let subtrees = Split.run ~tree_adj:adj ~root:0 ~mu:(fun _ -> 1) ~lo ~hi in
      let owner = Array.make n (-1) in
      let ok = ref true in
      List.iteri
        (fun i st ->
          List.iter
            (fun v ->
              if owner.(v) >= 0 then begin
                (* shared vertex must be the root of at least this piece *)
                if v <> st.Split.root then ok := false
              end
              else owner.(v) <- i)
            st.Split.vertices)
        subtrees;
      !ok)

(* ------------------------------------------------------------------ *)
(* Separator *)

let full_mask g = Array.make (Digraph.n g) true

let test_separator_balances_grid () =
  let g = Generators.grid 8 8 in
  let cost = Primitives.cost_zero () in
  let sep, _t =
    Separator.find_separator g ~mask:(full_mask g) ~x_mask:(full_mask g) ~cost
  in
  check_bool "balanced" true
    (Separator.is_balanced g ~mask:(full_mask g) ~x_mask:(full_mask g)
       ~profile:Separator.practical_profile sep);
  check_bool "not everything" true (List.length sep < 64);
  check_bool "cost accounted" true (Primitives.cost_rounds cost > 0)

let test_separator_ktree_size () =
  let g = Generators.k_tree ~seed:21 200 2 in
  let cost = Primitives.cost_zero () in
  let sep, t =
    Separator.find_separator ~seed:5 g ~mask:(full_mask g) ~x_mask:(full_mask g) ~cost
  in
  check_bool "balanced" true
    (Separator.is_balanced g ~mask:(full_mask g) ~x_mask:(full_mask g)
       ~profile:Separator.practical_profile sep);
  (* size O(t^2): generous constant *)
  check_bool "size O(t^2)" true (List.length sep <= 8 * t * t)

let prop_separator_always_balanced =
  QCheck.Test.make ~name:"find_separator output is balanced" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 3 5))
    (fun (seed, k) ->
      let g = Generators.partial_k_tree ~seed 80 k ~keep:0.5 in
      let cost = Primitives.cost_zero () in
      let sep, _ =
        Separator.find_separator ~seed g ~mask:(full_mask g) ~x_mask:(full_mask g) ~cost
      in
      Separator.is_balanced g ~mask:(full_mask g) ~x_mask:(full_mask g)
        ~profile:Separator.practical_profile sep)

(* ------------------------------------------------------------------ *)
(* Build *)

let test_build_path () =
  let g = Generators.path 32 in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  check_valid "path decomposition" report.Build.decomposition;
  (* SEP separators have Theta(t^2) size even on a path; width stays
     O(tau^2 log n), far below n *)
  check_bool "small width" true (Decomposition.width report.Build.decomposition <= 24)

let test_build_ktree () =
  let g = Generators.k_tree ~seed:33 120 3 in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  check_valid "k-tree decomposition" report.Build.decomposition;
  let w = Decomposition.width report.Build.decomposition in
  (* O(tau^2 log n)-ish; just require far below n *)
  check_bool (Printf.sprintf "width %d bounded" w) true (w <= 60);
  check_bool "rounds charged" true (Metrics.rounds m > 0)

let test_build_cycle () =
  let g = Generators.cycle 40 in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  check_valid "cycle" report.Build.decomposition;
  check_bool "levels logarithmic-ish" true (report.Build.levels <= 16)

let prop_build_valid =
  QCheck.Test.make ~name:"distributed decomposition is always valid" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, k) ->
      let g = Generators.partial_k_tree ~seed 60 k ~keep:0.6 in
      let m = Metrics.create () in
      let report = Build.decompose ~seed g ~metrics:m in
      Decomposition.validate report.Build.decomposition = Ok ())


(* ------------------------------------------------------------------ *)
(* Exact treewidth *)

module Exact = Repro_treedec.Exact

let test_exact_families () =
  check_int "path" 1 (Exact.treewidth (Generators.path 8));
  check_int "cycle" 2 (Exact.treewidth (Generators.cycle 8));
  check_int "complete" 5 (Exact.treewidth (Generators.complete 6));
  check_int "grid 3x3" 3 (Exact.treewidth (Generators.grid 3 3));
  check_int "star" 1 (Exact.treewidth (Generators.star 8));
  check_int "3-tree" 3 (Exact.treewidth (Generators.k_tree ~seed:4 12 3))

let test_exact_order_is_witness () =
  let g = Generators.grid 3 4 in
  let tw, order = Exact.elimination_order g in
  check_int "grid 3x4 treewidth" 3 tw;
  let dec = Heuristic.of_order g order in
  check_valid "witness decomposition" dec;
  check_int "witness width" tw (Decomposition.width dec)

let test_exact_rejects_large () =
  check_bool "raises" true
    (try
       ignore (Exact.treewidth (Generators.path 19));
       false
     with Invalid_argument _ -> true)

let prop_exact_brackets_heuristics =
  QCheck.Test.make ~name:"degeneracy <= exact treewidth <= min-fill width" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 5 13))
    (fun (seed, n) ->
      let seed = abs seed and n = max 5 (min 13 n) in
      let g = Generators.gnp_connected ~seed n 0.3 in
      let tw = Exact.treewidth g in
      Heuristic.degeneracy g <= tw && tw <= Decomposition.width (Heuristic.min_fill g))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_minfill_valid;
        prop_minfill_width_sandwich;
        prop_split_covers_and_bounds;
        prop_split_pieces_share_only_roots;
        prop_separator_always_balanced;
        prop_build_valid;
        prop_exact_brackets_heuristics;
      ]
  in
  Alcotest.run "repro_treedec"
    [
      ( "decomposition",
        [
          Alcotest.test_case "create/accessors" `Quick test_decomposition_create_and_accessors;
          Alcotest.test_case "rejects key gap" `Quick test_decomposition_rejects_gap;
          Alcotest.test_case "detects uncovered vertex" `Quick
            test_decomposition_detects_uncovered_vertex;
          Alcotest.test_case "detects uncovered edge" `Quick
            test_decomposition_detects_uncovered_edge;
          Alcotest.test_case "detects disconnected bags" `Quick
            test_decomposition_detects_disconnected_bags;
          Alcotest.test_case "canonical and b_up" `Quick test_canonical_and_b_up;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "min-fill on k-trees" `Quick test_minfill_ktree_exact;
          Alcotest.test_case "cycle" `Quick test_minfill_cycle;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy_bounds;
        ] );
      ( "split",
        [
          Alcotest.test_case "path" `Quick test_split_path;
          Alcotest.test_case "small tree" `Quick test_split_small_tree_untouched;
        ] );
      ( "separator",
        [
          Alcotest.test_case "grid" `Quick test_separator_balances_grid;
          Alcotest.test_case "k-tree size" `Quick test_separator_ktree_size;
        ] );
      ( "build",
        [
          Alcotest.test_case "path" `Quick test_build_path;
          Alcotest.test_case "k-tree" `Quick test_build_ktree;
          Alcotest.test_case "cycle" `Quick test_build_cycle;
        ] );
      ( "exact treewidth",
        [
          Alcotest.test_case "families" `Quick test_exact_families;
          Alcotest.test_case "witness order" `Quick test_exact_order_is_witness;
          Alcotest.test_case "size cap" `Quick test_exact_rejects_large;
        ] );
      ("properties", qsuite);
    ]
