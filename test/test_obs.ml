(* Observability layer (lib/obs): event serialization, the ring-buffer
   recorder, zero-overhead-when-disabled, trace/metrics reconciliation,
   deterministic record/replay, and the critical-path analyzer. *)

module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Engine = Repro_congest.Engine
module Fault = Repro_congest.Fault
module Recovery = Repro_congest.Recovery
module Bfs_tree = Repro_congest.Bfs_tree
module Bellman_ford = Repro_congest.Bellman_ford
module Broadcast = Repro_congest.Broadcast
module Async_engine = Repro_congest.Async_engine
module Event = Repro_obs.Event
module Sink = Repro_obs.Sink
module Recorder = Repro_obs.Recorder
module Trace_io = Repro_obs.Trace_io
module Replay = Repro_obs.Replay
module Critical_path = Repro_obs.Critical_path

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* every engine run in this suite is audited, like the rest of tier-1 *)
let () = Engine.audit_enabled := true

(* run [f] with a fresh recorder installed as the engine's trace sink;
   returns (result of f, recorded events) *)
let with_recorder f =
  let r = Recorder.create () in
  Engine.trace_sink := Recorder.sink r;
  let result =
    Fun.protect ~finally:(fun () -> Engine.trace_sink := Sink.null) (fun () -> f ())
  in
  (result, Recorder.to_list r)

(* ------------------------------------------------------------------ *)
(* Event JSON *)

let sample_events : Event.t list =
  [
    Run_start { label = "bfs \"quoted\"\nline"; faulty = true };
    Round_start { round = 0 };
    Round_end { round = 7 };
    Send { round = 1; src = 2; dst = 3; words = 4 };
    Deliver { send_round = 1; round = 2; src = 2; dst = 3; words = 4 };
    Drop { send_round = 1; round = 1; src = 0; dst = 9; words = 1; reason = Link };
    Drop { send_round = 1; round = 3; src = 0; dst = 9; words = 1; reason = Receiver_down };
    Duplicate { round = 5; src = 1; dst = 2; copies = 2 };
    Delay { round = 5; src = 1; dst = 2; deliver_round = 8 };
    Retransmit { round = 6; src = 4; dst = 5; seq = 11 };
    Ack { round = 7; src = 4; dst = 5; seq = 11 };
    Crash { round = 3; node = 6 };
    Restart { round = 9; node = 6 };
    Crash_window { node = 6; from_round = 3; until_round = Some 9; amnesia = true };
    Crash_window { node = 7; from_round = 2; until_round = None; amnesia = false };
    Checkpoint { round = 4; node = 1; words = 17 };
    Recovery_resync { round = 10; node = 6 };
    Partition { round = 2; src = 1; dst = 4 };
    Heal { round = 6; src = 1; dst = 4 };
    Corrupt { send_round = 2; deliver_round = 3; src = 1; dst = 2 };
    Nack { round = 3; src = 2; dst = 1; seq = 5 };
    Link_lost { round = 4; src = 2; dst = 1; seq = 5; retries = 3 };
    Suspect { round = 5; node = 1; peer = 2 };
    Clear { round = 6; node = 1; peer = 2 };
    Partition_window { links = [ (1, 4) ]; nodes = []; from_round = 2; heal_round = Some 6 };
    Partition_window { links = []; nodes = [ 3; 5 ]; from_round = 0; heal_round = None };
    Drop { send_round = 2; round = 3; src = 4; dst = 5; words = 2; reason = Severed };
    Drop { send_round = 2; round = 3; src = 4; dst = 5; words = 2; reason = Garbled };
    Drop { send_round = 2; round = 3; src = 4; dst = 5; words = 2; reason = Straggler };
    Pulse { round = 3; node = 2; vt = 17 };
    Safe { round = 3; node = 2; vt = 21 };
    Straggle { round = 3; node = 7; factor = 6; vt = 17 };
    Skew { node = 4; offset = 3 };
    Straggler_cut { round = 9; node = 2; peer = 7; vt = 140 };
    Straggle_window { node = 7; from_round = 2; until_round = Some 9; factor = 6 };
    Straggle_window { node = 8; from_round = 4; until_round = None; factor = 0 };
    Timing { link_latency = 2; skew = 3; seed = 42 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun e ->
      let line = Event.to_json e in
      check_bool (Printf.sprintf "roundtrip %s" line) true (Event.of_json line = e))
    sample_events;
  (match Event.of_json "{broken" with
  | exception Event.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed line should raise Parse_error");
  match Event.of_json {|{"e":"warp","round":1}|} with
  | exception Event.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown event kind should raise Parse_error"

let test_trace_io_jsonl_roundtrip () =
  let path = Filename.temp_file "repro_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.write_jsonl ~path sample_events;
      check_bool "jsonl roundtrip" true (Trace_io.read_jsonl ~path = sample_events))

(* ------------------------------------------------------------------ *)
(* Recorder *)

let test_recorder_grows () =
  let r = Recorder.create () in
  for i = 0 to 9_999 do
    Recorder.record r (Event.Round_end { round = i })
  done;
  check_int "length" 10_000 (Recorder.length r);
  check_int "nothing overwritten" 0 (Recorder.overwritten r);
  match Recorder.to_list r with
  | Event.Round_end { round = 0 } :: _ -> ()
  | _ -> Alcotest.fail "oldest event should be first"

let test_recorder_wraps_at_capacity () =
  let r = Recorder.create ~capacity:256 () in
  for i = 0 to 999 do
    Recorder.record r (Event.Round_end { round = i })
  done;
  check_int "bounded" 256 (Recorder.length r);
  check_int "overwritten count" (1000 - 256) (Recorder.overwritten r);
  (match Recorder.to_list r with
  | Event.Round_end { round } :: _ -> check_int "keeps the newest window" 744 round
  | _ -> Alcotest.fail "unexpected head");
  Recorder.clear r;
  check_int "clear" 0 (Recorder.length r)

(* ------------------------------------------------------------------ *)
(* Zero overhead when disabled: identical Metrics with and without a
   sink, including the per-label (round-for-round) breakdown. *)

let faulty_pipeline () =
  let g = Generators.partial_k_tree ~seed:42 28 3 ~keep:0.6 in
  let gw = Generators.random_weights ~seed:42 ~max_weight:9 g in
  let profile =
    Fault.profile ~drop:0.15 ~duplicate:0.1 ~max_delay:2
      ~crashes:[ Fault.crash 3 ~from:2 ~until:12 ~mode:Fault.Amnesia ]
      ()
  in
  let m = Metrics.create () in
  let t =
    Bfs_tree.build
      ~faults:(Fault.create ~seed:7 profile)
      ~recovery:{ Recovery.checkpoint_every = 4 } g ~root:0 ~metrics:m
  in
  let d =
    Bellman_ford.run
      ~faults:(Fault.create ~seed:8 profile)
      ~recovery:{ Recovery.checkpoint_every = 4 } gw ~source:0 ~metrics:m
  in
  (t.Bfs_tree.dist, d, m)

let test_tracing_off_vs_on_identical_metrics () =
  let dist_off, d_off, m_off = faulty_pipeline () in
  let (dist_on, d_on, m_on), events = with_recorder faulty_pipeline in
  check_bool "bfs output unchanged" true (dist_off = dist_on);
  check_bool "sssp output unchanged" true (d_off = d_on);
  check_string "metrics identical byte-for-byte (incl. per-label rounds)"
    (Metrics.to_json m_off) (Metrics.to_json m_on);
  check_bool "trace actually recorded" true (List.length events > 0)

(* ------------------------------------------------------------------ *)
(* Satellite: trace event counts reconcile exactly with Metrics. *)

let count pred events = List.fold_left (fun n e -> if pred e then n + 1 else n) 0 events

let sum f events = List.fold_left (fun n e -> n + f e) 0 events

let reconcile_with_metrics (m : Metrics.t) events =
  check_int "Send events = messages" (Metrics.messages m)
    (count (function Event.Send _ -> true | _ -> false) events);
  check_int "Send words = words" (Metrics.words m)
    (sum (function Event.Send { words; _ } -> words | _ -> 0) events);
  check_int "Deliver events = delivered" (Metrics.delivered m)
    (count (function Event.Deliver _ -> true | _ -> false) events);
  check_int "Drop events = dropped" (Metrics.dropped m)
    (count (function Event.Drop _ -> true | _ -> false) events);
  check_int "Duplicate extra copies = duplicated" (Metrics.duplicated m)
    (sum (function Event.Duplicate { copies; _ } -> copies - 1 | _ -> 0) events);
  check_int "Retransmit events = retransmissions" (Metrics.retransmissions m)
    (count (function Event.Retransmit _ -> true | _ -> false) events);
  check_int "Corrupt events = corrupted" (Metrics.corrupted m)
    (count (function Event.Corrupt _ -> true | _ -> false) events);
  check_int "Checkpoint events = checkpoints" (Metrics.checkpoints m)
    (count (function Event.Checkpoint _ -> true | _ -> false) events);
  check_int "Checkpoint words = checkpoint_words" (Metrics.checkpoint_words m)
    (sum (function Event.Checkpoint { words; _ } -> words | _ -> 0) events);
  check_int "Round_end events = rounds" (Metrics.rounds m)
    (count (function Event.Round_end _ -> true | _ -> false) events)

let prop_trace_reconciles_with_metrics =
  QCheck.Test.make
    ~name:"trace event counts = Metrics counters for any seeded fault profile" ~count:25
    QCheck.(
      quad (int_range 0 1000) (int_range 8 24) (int_range 2 3) (int_range 0 40))
    (fun (seed, n, k, drop_pct) ->
      let g = Generators.partial_k_tree ~seed n k ~keep:0.6 in
      let profile =
        Fault.profile
          ~drop:(float_of_int drop_pct /. 100.0)
          ~duplicate:0.15 ~max_delay:2 ~corrupt:0.1
          ~crashes:[ Fault.crash (seed mod n) ~from:2 ~until:10 ~mode:Fault.Amnesia ]
          ()
      in
      let (m, dist_ok), events =
        with_recorder (fun () ->
            let m = Metrics.create () in
            let root = (seed + 1) mod n in
            let t =
              Bfs_tree.build
                ~faults:(Fault.create ~seed:(seed + 5) profile)
                ~recovery:{ Recovery.checkpoint_every = 3 } g ~root ~metrics:m
            in
            (m, t.Bfs_tree.dist = Traversal.bfs_undirected g root))
      in
      reconcile_with_metrics m events;
      dist_ok)

(* ------------------------------------------------------------------ *)
(* Acceptance criterion: deterministic record/replay. A run recorded
   under a random seeded adversary, replayed through Engine.run with a
   scripted adversary rebuilt from the trace alone, reproduces outputs
   and Metrics byte-for-byte. *)

let scripted_of_trace events =
  let r = Replay.of_events events in
  let crashes =
    List.map
      (fun (w : Replay.crash_window) ->
        Fault.crash w.node ~from:w.from_round ?until:w.until_round
          ~mode:(if w.amnesia then Fault.Amnesia else Fault.Freeze))
      (Replay.crashes r)
  in
  let partitions =
    List.map
      (fun (w : Replay.partition_window) ->
        let cut =
          match w.links with
          | [] -> Fault.Around w.nodes
          | links -> Fault.Links links
        in
        Fault.partition ~from:w.p_from_round ?heal:w.heal_round cut)
      (Replay.partitions r)
  in
  let stragglers =
    List.map
      (fun (w : Replay.straggle_window) ->
        Fault.straggle w.s_node ~from:w.s_from_round ?until:w.s_until_round
          ~factor:w.s_factor)
      (Replay.stragglers r)
  in
  let link_latency, skew, timing_seed =
    match Replay.timing r with
    | Some (t : Replay.timing) -> (t.link_latency, t.skew, Some t.timing_seed)
    | None -> (0, 0, None)
  in
  Fault.scripted ~crashes ~partitions ~stragglers ~link_latency ~skew ?timing_seed
    (fun ~run ~round ~src ~dst ->
      List.map
        (fun (extra, corrupt) -> { Fault.extra; corrupt })
        (Replay.plan r ~run ~round ~src ~dst))

let prop_replay_determinism =
  QCheck.Test.make
    ~name:"record/replay reproduces outputs and Metrics byte-for-byte" ~count:25
    QCheck.(
      quad (int_range 0 1000) (int_range 8 24) (int_range 0 40) (int_range 0 4))
    (fun (seed, n, drop_pct, interval) ->
      let g = Generators.partial_k_tree ~seed n 3 ~keep:0.6 in
      let gw = Generators.random_weights ~seed ~max_weight:9 g in
      (* all six fault classes at once: drop, duplicate, delay, crash,
         (healing) partition, corruption — the trace alone must be
         enough to reproduce the run byte-for-byte *)
      let profile =
        Fault.profile
          ~drop:(float_of_int drop_pct /. 100.0)
          ~duplicate:0.2 ~max_delay:2 ~corrupt:0.12
          ~crashes:[ Fault.crash (seed mod n) ~from:3 ~until:11 ~mode:Fault.Amnesia ]
          ~partitions:
            [
              Fault.partition ~from:2 ~heal:(10 + (seed mod 7)) (Fault.Around [ (seed + 3) mod n ]);
              Fault.partition ~from:0 ~heal:5
                (Fault.Links [ ((seed + 1) mod n, (seed + 2) mod n) ]);
            ]
          ()
      in
      let recovery = { Recovery.checkpoint_every = interval } in
      let root = (seed + 2) mod n in
      (* two engine runs under ONE adversary instance, like the CLIs do:
         exercises the per-run sectioning of the schedule *)
      let execute faults =
        let m = Metrics.create () in
        let t = Bfs_tree.build ~faults ~recovery g ~root ~metrics:m in
        let d = Bellman_ford.run ~faults ~recovery gw ~source:root ~metrics:m in
        (t.Bfs_tree.dist, d, Metrics.to_json m)
      in
      let recorded, events =
        with_recorder (fun () -> execute (Fault.create ~seed:(seed + 9) profile))
      in
      let replayed = execute (scripted_of_trace events) in
      recorded = replayed)

(* run [f] on the asynchronous executor (forced, as --async does) *)
let with_async f =
  Async_engine.forced := true;
  Fun.protect ~finally:(fun () -> Async_engine.forced := false) f

let prop_async_exactness =
  QCheck.Test.make
    ~name:
      "async under timing faults = sync, byte-for-byte outputs and core Metrics"
    ~count:25
    QCheck.(
      quad (int_range 0 1000) (int_range 8 24) (int_range 0 30) (int_range 2 12))
    (fun (seed, n, drop_pct, factor) ->
      let g = Generators.partial_k_tree ~seed n 3 ~keep:0.6 in
      let gw = Generators.random_weights ~seed ~max_weight:9 g in
      (* the same message-fault profile both ways; the async run adds
         the timing dimension on top (bounded stragglers, wire latency,
         clock skew) — none of it may change what is computed or what
         the message-level adversary is charged for *)
      let base ?(stragglers = []) ?(link_latency = 0) ?(skew = 0) () =
        Fault.profile
          ~drop:(float_of_int drop_pct /. 100.0)
          ~duplicate:0.15 ~max_delay:2
          ~crashes:[ Fault.crash (seed mod n) ~from:3 ~until:10 ~mode:Fault.Amnesia ]
          ~partitions:
            [ Fault.partition ~from:2 ~heal:8 (Fault.Around [ (seed + 3) mod n ]) ]
          ~stragglers ~link_latency ~skew ()
      in
      let execute ~async profile =
        let run () =
          let m = Metrics.create () in
          let t = Bfs_tree.build ~faults:(Fault.create ~seed:(seed + 7) profile) g ~root:0 ~metrics:m in
          let d =
            Bellman_ford.run ~faults:(Fault.create ~seed:(seed + 8) profile) gw ~source:0 ~metrics:m
          in
          (t.Bfs_tree.dist, d, m)
        in
        if async then with_async run else run ()
      in
      let dist_s, d_s, m_s = execute ~async:false (base ()) in
      let dist_a, d_a, m_a =
        execute ~async:true
          (base
             ~stragglers:[ Fault.straggle (seed mod n) ~from:2 ~until:9 ~factor ]
             ~link_latency:(seed mod 3) ~skew:(seed mod 5) ())
      in
      check_bool "bfs dist identical" true (dist_s = dist_a);
      check_bool "sssp identical" true (d_s = d_a);
      List.iter
        (fun (label, f) -> check_int label (f m_s) (f m_a))
        [
          ("rounds", Metrics.rounds);
          ("messages", Metrics.messages);
          ("words", Metrics.words);
          ("delivered", Metrics.delivered);
          ("dropped", Metrics.dropped);
          ("duplicated", Metrics.duplicated);
          ("corrupted", Metrics.corrupted);
        ];
      check_int "sync run pulses no virtual clock" 0 (Metrics.pulses m_s);
      check_bool "async run pulsed" true (Metrics.pulses m_a > 0);
      true)

let prop_async_replay_determinism =
  QCheck.Test.make
    ~name:"async record/replay reproduces outputs and Metrics byte-for-byte"
    ~count:25
    QCheck.(
      quad (int_range 0 1000) (int_range 8 24) (int_range 0 30) (int_range 2 12))
    (fun (seed, n, drop_pct, factor) ->
      let g = Generators.partial_k_tree ~seed n 3 ~keep:0.6 in
      let gw = Generators.random_weights ~seed ~max_weight:9 g in
      (* every fault class at once, timing included: the trace alone
         (message plans + straggle/timing windows) must rebuild the
         whole adversary, virtual-time schedule and all *)
      let profile =
        Fault.profile
          ~drop:(float_of_int drop_pct /. 100.0)
          ~duplicate:0.2 ~max_delay:2 ~corrupt:0.12
          ~crashes:[ Fault.crash (seed mod n) ~from:3 ~until:11 ~mode:Fault.Amnesia ]
          ~partitions:
            [ Fault.partition ~from:2 ~heal:9 (Fault.Around [ (seed + 3) mod n ]) ]
          ~stragglers:
            [
              Fault.straggle (seed mod n) ~from:2 ~until:9 ~factor;
              Fault.straggle ((seed + 5) mod n) ~from:4 ~until:8 ~factor:0;
            ]
          ~link_latency:(seed mod 3) ~skew:(seed mod 5) ()
      in
      let execute faults =
        with_async (fun () ->
            let m = Metrics.create () in
            let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
            let d = Bellman_ford.run ~faults gw ~source:0 ~metrics:m in
            (t.Bfs_tree.dist, d, Metrics.to_json m))
      in
      let recorded, events =
        with_recorder (fun () -> execute (Fault.create ~seed:(seed + 9) profile))
      in
      let replayed = execute (scripted_of_trace events) in
      recorded = replayed)

let test_async_replay_divergence_raises () =
  let g = Generators.k_tree ~seed:3 12 2 in
  let profile =
    Fault.profile ~drop:0.3
      ~stragglers:[ Fault.straggle 5 ~from:2 ~until:8 ~factor:4 ]
      ~link_latency:1 ()
  in
  let _, events =
    with_recorder (fun () ->
        with_async (fun () ->
            let m = Metrics.create () in
            Bfs_tree.build ~faults:(Fault.create ~seed:4 profile) ~reliable:true g
              ~root:0 ~metrics:m))
  in
  let other = Generators.k_tree ~seed:99 16 3 in
  match
    with_async (fun () ->
        let m = Metrics.create () in
        Bfs_tree.build ~faults:(scripted_of_trace events) ~reliable:true other ~root:0
          ~metrics:m)
  with
  | exception Replay.Divergence _ -> ()
  | _ -> Alcotest.fail "expected Replay.Divergence on a mismatched async execution"

let test_replay_divergence_raises () =
  (* replaying a trace against a different execution must fail loudly,
     not silently produce garbage *)
  let g = Generators.k_tree ~seed:3 12 2 in
  let profile = Fault.profile ~drop:0.3 () in
  let _, events =
    with_recorder (fun () ->
        let m = Metrics.create () in
        Bfs_tree.build ~faults:(Fault.create ~seed:4 profile) ~reliable:true g ~root:0
          ~metrics:m)
  in
  let other = Generators.k_tree ~seed:99 16 3 in
  match
    let m = Metrics.create () in
    Bfs_tree.build ~faults:(scripted_of_trace events) ~reliable:true other ~root:0 ~metrics:m
  with
  | exception Replay.Divergence _ -> ()
  | _ -> Alcotest.fail "expected Replay.Divergence on a mismatched execution"

(* ------------------------------------------------------------------ *)
(* Critical path *)

let test_critical_path_flood_on_path () =
  let g = Generators.path 7 in
  let _, events =
    with_recorder (fun () ->
        let m = Metrics.create () in
        Broadcast.flood g ~root:0 ~value:9 ~metrics:m)
  in
  match Critical_path.analyze_all events with
  | [ r ] ->
      (* the flood's longest dependency chain is the hop path to the far
         end (6 messages) plus the far node's forward-back echo to its
         own neighbors, and it must be strictly causal *)
      check_int "chain length = eccentricity + 1" 7 (Critical_path.chain_length r);
      let rec causal = function
        | (a : Critical_path.link) :: (b :: _ as rest) ->
            check_bool "delivered before next send" true (a.deliver_round <= b.send_round);
            check_bool "send precedes delivery" true (a.send_round < a.deliver_round);
            causal rest
        | [ (a : Critical_path.link) ] ->
            check_bool "send precedes delivery" true (a.send_round < a.deliver_round)
        | [] -> ()
      in
      causal r.Critical_path.chain;
      check_bool "lower bound holds" true (Critical_path.chain_length r <= r.Critical_path.rounds)
  | rs -> Alcotest.fail (Printf.sprintf "expected one run section, got %d" (List.length rs))

let test_congestion_csv_and_chrome_export () =
  let g = Generators.k_tree ~seed:11 14 2 in
  let _, events =
    with_recorder (fun () ->
        let m = Metrics.create () in
        Bfs_tree.build
          ~faults:(Fault.create ~seed:12 (Fault.profile ~drop:0.2 ()))
          ~reliable:true g ~root:0 ~metrics:m)
  in
  let csv = Filename.temp_file "repro_obs" ".csv" in
  let chrome = Filename.temp_file "repro_obs" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove csv;
      Sys.remove chrome)
    (fun () ->
      Trace_io.write_congestion_csv ~path:csv events;
      Trace_io.write_chrome ~path:chrome events;
      let ic = open_in csv in
      let header = input_line ic in
      close_in ic;
      check_string "csv header" "run,label,src,dst,sent,words,delivered,dropped,retransmits"
        header;
      let ic = open_in chrome in
      let first = input_line ic in
      close_in ic;
      check_string "chrome json array" "[" first)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "repro_obs"
    [
      ( "events",
        [
          Alcotest.test_case "json roundtrip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "jsonl file roundtrip" `Quick test_trace_io_jsonl_roundtrip;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "grows" `Quick test_recorder_grows;
          Alcotest.test_case "wraps at capacity" `Quick test_recorder_wraps_at_capacity;
        ] );
      ( "zero overhead",
        [
          Alcotest.test_case "tracing off vs on: identical metrics" `Quick
            test_tracing_off_vs_on_identical_metrics;
        ] );
      ( "reconciliation",
        [ q prop_trace_reconciles_with_metrics ] );
      ( "replay",
        [
          q prop_replay_determinism;
          Alcotest.test_case "divergence raises" `Quick test_replay_divergence_raises;
        ] );
      ( "async",
        [
          q prop_async_exactness;
          q prop_async_replay_determinism;
          Alcotest.test_case "async divergence raises" `Quick
            test_async_replay_divergence_raises;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "flood on a path" `Quick test_critical_path_flood_on_path;
          Alcotest.test_case "csv + chrome export" `Quick test_congestion_csv_and_chrome_export;
        ] );
    ]
