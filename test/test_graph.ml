module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Bipartite = Repro_graph.Bipartite
module Matching_ref = Repro_graph.Matching_ref
module Girth_ref = Repro_graph.Girth_ref
module Pqueue = Repro_graph.Pqueue
module Union_find = Repro_graph.Union_find

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pqueue / Union_find *)

let test_pqueue_sorts () =
  let q = Pqueue.create () in
  let input = [ 5; 3; 9; 1; 7; 3; 0; 8 ] in
  List.iter (fun p -> Pqueue.push q p p) input;
  let out = ref [] in
  while not (Pqueue.is_empty q) do
    out := fst (Pqueue.pop_min q) :: !out
  done;
  Alcotest.(check (list int)) "sorted" (List.sort compare input) (List.rev !out)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  check_bool "empty" true (Pqueue.is_empty q);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Pqueue.pop_min q))

let prop_pqueue =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list small_int)
    (fun input ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) input;
      let prev = ref min_int and ok = ref true in
      while not (Pqueue.is_empty q) do
        let p, _ = Pqueue.pop_min q in
        if p < !prev then ok := false;
        prev := p
      done;
      !ok)

let test_union_find () =
  let uf = Union_find.create 6 in
  check_int "six sets" 6 (Union_find.count uf);
  check_bool "fresh union" true (Union_find.union uf 0 1);
  check_bool "redundant union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  check_bool "same component" true (Union_find.same uf 0 2);
  check_bool "separate" false (Union_find.same uf 0 5);
  check_int "three sets" 3 (Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Digraph *)

let test_digraph_basic () =
  let g = Digraph.create ~directed:true 3 [ (0, 1, 5); (1, 2, 7); (2, 0, 1) ] in
  check_int "n" 3 (Digraph.n g);
  check_int "m" 3 (Digraph.m g);
  check_int "out degree" 1 (Array.length (Digraph.out_edges g 0));
  check_int "in degree" 1 (Array.length (Digraph.in_edges g 0));
  check_int "total weight" 13 (Digraph.total_weight g)

let test_digraph_undirected_adjacency () =
  let g = Digraph.create ~directed:false 3 [ (0, 1, 1); (1, 2, 1) ] in
  check_int "degree of middle" 2 (Array.length (Digraph.out_edges g 1));
  let e = Digraph.edge g 0 in
  check_int "other endpoint from 1" 0 (Digraph.dst_of g e 1);
  check_int "other endpoint from 0" 1 (Digraph.dst_of g e 0)

let test_digraph_skeleton_simplifies () =
  let g =
    Digraph.create ~directed:true 3 [ (0, 1, 5); (1, 0, 2); (0, 1, 9); (2, 2, 4); (1, 2, 1) ]
  in
  let sk = Digraph.skeleton g in
  check_bool "skeleton undirected" false (Digraph.directed sk);
  check_int "skeleton edges" 2 (Digraph.m sk);
  check_int "multiplicity" 3 (Digraph.max_multiplicity g)

let test_digraph_induced () =
  let g = Generators.cycle 5 in
  let sub, old_of_new, new_of_old = Digraph.induced g [ 0; 1; 2 ] in
  check_int "induced n" 3 (Digraph.n sub);
  check_int "induced m" 2 (Digraph.m sub);
  check_int "old of new 0" 0 old_of_new.(0);
  check_int "missing vertex" (-1) new_of_old.(4)

let test_digraph_rejects_bad_input () =
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Digraph: vertex 3 out of range [0,3)")
    (fun () -> ignore (Digraph.create ~directed:true 3 [ (0, 3, 1) ]));
  Alcotest.check_raises "negative weight" (Invalid_argument "Digraph: negative weight")
    (fun () -> ignore (Digraph.create ~directed:true 3 [ (0, 1, -1) ]))

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs_path () =
  let g = Generators.path 5 in
  let d = Traversal.bfs_undirected g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_directed_respects_orientation () =
  let g = Digraph.create ~directed:true 3 [ (0, 1, 1); (1, 2, 1) ] in
  let d = Traversal.bfs g 2 in
  check_int "cannot go backward" Digraph.inf d.(0);
  let d' = Traversal.bfs_undirected g 2 in
  check_int "skeleton reaches" 2 d'.(0)

let test_components () =
  let g = Digraph.create ~directed:false 5 [ (0, 1, 1); (2, 3, 1) ] in
  let labels, count = Traversal.components g in
  check_int "three components" 3 count;
  check_bool "0 and 1 together" true (labels.(0) = labels.(1));
  check_bool "1 and 2 apart" true (labels.(1) <> labels.(2))

let test_components_mask () =
  let g = Generators.path 5 in
  let mask = [| true; true; false; true; true |] in
  let labels, count = Traversal.components_mask g mask in
  check_int "split by removal" 2 count;
  check_int "unmasked labeled -1" (-1) labels.(2)

let test_diameter () =
  check_int "path" 4 (Traversal.diameter (Generators.path 5));
  check_int "cycle" 3 (Traversal.diameter (Generators.cycle 6));
  check_int "complete" 1 (Traversal.diameter (Generators.complete 5));
  check_int "apex family" 2
    (Traversal.diameter (Generators.apex_cliques ~cliques:4 ~size:3))

(* ------------------------------------------------------------------ *)
(* Shortest paths *)

let test_dijkstra_weighted () =
  let g =
    Digraph.create ~directed:true 4 [ (0, 1, 1); (1, 2, 1); (0, 2, 5); (2, 3, 1) ]
  in
  let d = Shortest_path.dijkstra g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3 |] d

let test_dijkstra_to_matches_reverse () =
  let g = Generators.bidirect ~seed:7 ~max_weight:9 (Generators.k_tree ~seed:1 30 3) in
  let to3 = Shortest_path.dijkstra_to g 3 in
  for v = 0 to Digraph.n g - 1 do
    check_int (Printf.sprintf "d(%d,3)" v) (Shortest_path.dijkstra g v).(3) to3.(v)
  done

let test_path_of_tree () =
  let g = Digraph.create ~directed:true 4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (0, 3, 10) ] in
  let _, pred = Shortest_path.dijkstra_tree g 0 in
  let path = Shortest_path.path_of_tree g pred 3 in
  check_int "path length" 3 (List.length path)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies triangle inequality over edges" ~count:50
    QCheck.(pair (int_range 0 1000) (int_range 8 40))
    (fun (seed, n) ->
      let g = Generators.bidirect ~seed ~max_weight:10 (Generators.k_tree ~seed n 2) in
      let d = Shortest_path.dijkstra g 0 in
      Array.for_all
        (fun e ->
          d.(e.Digraph.dst) <= d.(e.Digraph.src) + e.Digraph.weight)
        (Digraph.edges g))

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_ktree_properties () =
  let g = Generators.k_tree ~seed:42 50 3 in
  check_int "n" 50 (Digraph.n g);
  (* a k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges *)
  check_int "m" ((3 * 4 / 2) + ((50 - 4) * 3)) (Digraph.m g);
  check_bool "connected" true (Traversal.is_connected g)

let test_partial_ktree_connected () =
  for seed = 0 to 9 do
    let g = Generators.partial_k_tree ~seed 40 3 ~keep:0.3 in
    check_bool "connected" true (Traversal.is_connected g)
  done

let test_grid_bipartite () =
  check_bool "grid bipartite" true (Bipartite.is_bipartite (Generators.grid 4 5));
  check_bool "odd cycle not bipartite" false (Bipartite.is_bipartite (Generators.cycle 5));
  check_bool "even cycle bipartite" true (Bipartite.is_bipartite (Generators.cycle 6))

let test_subdivide_bipartite () =
  let g = Generators.k_tree ~seed:3 20 3 in
  let sub = Generators.subdivide g in
  check_int "n grows by m" (Digraph.n g + Digraph.m g) (Digraph.n sub);
  check_bool "subdivision bipartite" true (Bipartite.is_bipartite sub)

let test_gnp_connected () =
  for seed = 0 to 4 do
    check_bool "connected" true
      (Traversal.is_connected (Generators.gnp_connected ~seed 30 0.05))
  done

let test_bidirect_preserves_skeleton () =
  let g = Generators.cycle 8 in
  let d = Generators.bidirect ~seed:1 ~max_weight:5 g in
  check_bool "directed" true (Digraph.directed d);
  check_int "doubled edges" (2 * Digraph.m g) (Digraph.m d);
  check_int "same skeleton size" (Digraph.m g) (Digraph.m (Digraph.skeleton d))


let test_caterpillar () =
  let g = Generators.caterpillar ~spine:5 ~legs:2 in
  check_int "n" 15 (Digraph.n g);
  check_bool "connected" true (Traversal.is_connected g);
  check_int "tree edge count" 14 (Digraph.m g)

let test_series_parallel_treewidth () =
  for seed = 0 to 4 do
    let g = Generators.series_parallel ~seed 14 in
    check_bool "connected" true (Traversal.is_connected g);
    check_bool "treewidth <= 2" true (Repro_treedec.Exact.treewidth g <= 2)
  done

(* ------------------------------------------------------------------ *)
(* Matching reference *)

let test_hopcroft_karp_path () =
  let g = Generators.path 4 in
  let mate = Matching_ref.hopcroft_karp g in
  check_bool "valid" true (Matching_ref.is_matching g mate);
  check_int "size" 2 (Matching_ref.size mate)

let test_hopcroft_karp_grid () =
  let g = Generators.grid 4 4 in
  let mate = Matching_ref.hopcroft_karp g in
  check_bool "valid" true (Matching_ref.is_matching g mate);
  check_int "perfect matching" 8 (Matching_ref.size mate)

let test_hopcroft_karp_star () =
  let g = Generators.star 6 in
  check_int "star matches once" 1 (Matching_ref.size (Matching_ref.hopcroft_karp g))

let test_hopcroft_karp_rejects_odd_cycle () =
  Alcotest.check_raises "not bipartite"
    (Invalid_argument "Matching_ref: graph is not bipartite") (fun () ->
      ignore (Matching_ref.hopcroft_karp (Generators.cycle 5)))

let prop_matching_at_least_greedy =
  QCheck.Test.make ~name:"maximum matching >= greedy matching" ~count:50
    QCheck.(pair (int_range 0 1000) (int_range 2 6))
    (fun (seed, k) ->
      let g = Generators.subdivide (Generators.k_tree ~seed 20 k) in
      let hk = Matching_ref.hopcroft_karp g in
      Matching_ref.is_matching g hk
      && Matching_ref.size hk >= Matching_ref.size (Matching_ref.greedy g))

(* ------------------------------------------------------------------ *)
(* Girth reference *)

let test_girth_cycle () =
  check_int "unweighted cycle" 6 (Girth_ref.girth (Generators.cycle 6));
  let weighted = Digraph.with_weights (Generators.cycle 5) (fun _ -> 3) in
  check_int "weighted cycle" 15 (Girth_ref.girth weighted)

let test_girth_tree_infinite () =
  check_int "tree has no cycle" Digraph.inf (Girth_ref.girth (Generators.binary_tree 3))

let test_girth_directed_two_cycle () =
  let g = Digraph.create ~directed:true 3 [ (0, 1, 2); (1, 0, 3); (1, 2, 1) ] in
  check_int "2-cycle" 5 (Girth_ref.girth g)

let test_girth_directed_no_cycle () =
  let g = Digraph.create ~directed:true 3 [ (0, 1, 1); (0, 2, 1); (1, 2, 1) ] in
  check_int "dag" Digraph.inf (Girth_ref.girth g)

let test_girth_parallel_edges () =
  let g = Digraph.create ~directed:false 2 [ (0, 1, 2); (0, 1, 5) ] in
  check_int "parallel pair forms cycle" 7 (Girth_ref.girth g)

let test_girth_grid () = check_int "grid girth" 4 (Girth_ref.girth (Generators.grid 3 4))


(* ------------------------------------------------------------------ *)
(* Io *)

let test_io_roundtrip () =
  let g =
    Digraph.create_labeled ~directed:true 4
      [ (0, 1, 5, 0); (1, 2, 7, 1); (2, 0, 1, 0); (3, 3, 2, 1) ]
  in
  let g' = Repro_graph.Io.of_string (Repro_graph.Io.to_string g) in
  check_int "n" (Digraph.n g) (Digraph.n g');
  check_int "m" (Digraph.m g) (Digraph.m g');
  check_bool "directed" true (Digraph.directed g');
  let e = Digraph.edge g' 1 in
  check_int "weight" 7 e.Digraph.weight;
  check_int "label" 1 e.Digraph.label

let test_io_undirected_roundtrip () =
  let g = Generators.random_weights ~seed:3 ~max_weight:9 (Generators.grid 3 3) in
  let g' = Repro_graph.Io.of_string (Repro_graph.Io.to_string g) in
  check_bool "same string" true (Repro_graph.Io.to_string g = Repro_graph.Io.to_string g')

let test_io_comments_and_blanks () =
  let text = "# a comment\ngraph 3 2\n\n0 1 4\n# another\n1 2 6\n" in
  let g = Repro_graph.Io.of_string text in
  check_int "m" 2 (Digraph.m g)

let test_io_rejects_malformed () =
  List.iter
    (fun text ->
      check_bool "fails" true
        (try
           ignore (Repro_graph.Io.of_string text);
           false
         with Invalid_argument _ -> true))
    [ ""; "triangle 3 1\n0 1 1"; "graph 3 2\n0 1 1"; "graph 2 1\n0 zebra 1" ]

let prop_io_roundtrip =
  QCheck.Test.make ~name:"Io round-trips generated graphs" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 4 25))
    (fun (seed, n) ->
      let seed = abs seed and n = max 4 (min 25 n) in
      let g = Generators.bidirect ~seed ~max_weight:9 (Generators.gnp_connected ~seed n 0.2) in
      Repro_graph.Io.to_string (Repro_graph.Io.of_string (Repro_graph.Io.to_string g))
      = Repro_graph.Io.to_string g)


let test_io_to_dot () =
  let g = Digraph.create_labeled ~directed:true 2 [ (0, 1, 5, 2) ] in
  let dot = Repro_graph.Io.to_dot g in
  check_bool "digraph header" true (String.length dot > 0 && String.sub dot 0 9 = "digraph G");
  check_bool "edge rendered" true
    (let needle = "0 -> 1 [label=\"5:2\"];" in
     let rec contains i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)


let test_mask_helpers () =
  let mask = [| true; false; true; true; false |] in
  Alcotest.(check (list int)) "vertices" [ 0; 2; 3 ] (Repro_graph.Mask.vertices mask);
  check_int "size" 3 (Repro_graph.Mask.size mask);
  let mask' = Repro_graph.Mask.without mask [ 2 ] in
  check_int "without" 2 (Repro_graph.Mask.size mask');
  check_bool "original untouched" true mask.(2);
  let g = Generators.path 5 in
  check_int "edges inside" 1 (Repro_graph.Mask.edge_count g mask)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_pqueue; prop_dijkstra_triangle; prop_matching_at_least_greedy; prop_io_roundtrip ]
  in
  Alcotest.run "repro_graph"
    [
      ( "containers",
        [
          Alcotest.test_case "pqueue sorts" `Quick test_pqueue_sorts;
          Alcotest.test_case "pqueue empty" `Quick test_pqueue_empty;
          Alcotest.test_case "union find" `Quick test_union_find;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "undirected adjacency" `Quick test_digraph_undirected_adjacency;
          Alcotest.test_case "skeleton" `Quick test_digraph_skeleton_simplifies;
          Alcotest.test_case "induced" `Quick test_digraph_induced;
          Alcotest.test_case "input validation" `Quick test_digraph_rejects_bad_input;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs orientation" `Quick test_bfs_directed_respects_orientation;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "masked components" `Quick test_components_mask;
          Alcotest.test_case "diameter" `Quick test_diameter;
        ] );
      ( "shortest paths",
        [
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "dijkstra_to" `Quick test_dijkstra_to_matches_reverse;
          Alcotest.test_case "path reconstruction" `Quick test_path_of_tree;
        ] );
      ( "generators",
        [
          Alcotest.test_case "k-tree" `Quick test_ktree_properties;
          Alcotest.test_case "partial k-tree connected" `Quick test_partial_ktree_connected;
          Alcotest.test_case "grid bipartite" `Quick test_grid_bipartite;
          Alcotest.test_case "subdivide bipartite" `Quick test_subdivide_bipartite;
          Alcotest.test_case "gnp connected" `Quick test_gnp_connected;
          Alcotest.test_case "bidirect" `Quick test_bidirect_preserves_skeleton;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "series parallel" `Quick test_series_parallel_treewidth;
        ] );
      ( "matching reference",
        [
          Alcotest.test_case "path" `Quick test_hopcroft_karp_path;
          Alcotest.test_case "grid" `Quick test_hopcroft_karp_grid;
          Alcotest.test_case "star" `Quick test_hopcroft_karp_star;
          Alcotest.test_case "odd cycle rejected" `Quick test_hopcroft_karp_rejects_odd_cycle;
        ] );
      ( "girth reference",
        [
          Alcotest.test_case "cycle" `Quick test_girth_cycle;
          Alcotest.test_case "tree" `Quick test_girth_tree_infinite;
          Alcotest.test_case "directed 2-cycle" `Quick test_girth_directed_two_cycle;
          Alcotest.test_case "dag" `Quick test_girth_directed_no_cycle;
          Alcotest.test_case "parallel edges" `Quick test_girth_parallel_edges;
          Alcotest.test_case "grid" `Quick test_girth_grid;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "undirected roundtrip" `Quick test_io_undirected_roundtrip;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_io_rejects_malformed;
          Alcotest.test_case "dot export" `Quick test_io_to_dot;
          Alcotest.test_case "mask helpers" `Quick test_mask_helpers;
        ] );
      ("properties", qsuite);
    ]
