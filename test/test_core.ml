module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Bellman_ford = Repro_congest.Bellman_ford
module Heuristic = Repro_treedec.Heuristic
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Sssp = Repro_core.Sssp

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

module Stateful = Repro_core.Stateful
module Product = Repro_core.Product
module Cdl = Repro_core.Cdl
module Matching = Repro_core.Matching
module Girth = Repro_core.Girth
module Matching_ref = Repro_graph.Matching_ref
module Girth_ref = Repro_graph.Girth_ref

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Labeling *)

let test_labeling_decode () =
  let la_u = Labeling.create 0 and la_v = Labeling.create 1 in
  Labeling.set la_u ~anchor:5 ~d_to:3 ~d_from:7;
  Labeling.set la_v ~anchor:5 ~d_to:9 ~d_from:2;
  Labeling.set la_u ~anchor:6 ~d_to:1 ~d_from:1;
  check_int "via common anchor 5" 5 (Labeling.decode la_u la_v);
  check_int "reverse direction" 16 (Labeling.decode la_v la_u);
  check_int "size in words" 6 (Labeling.size_words la_u)

let test_labeling_no_common_anchor () =
  let la_u = Labeling.create 0 and la_v = Labeling.create 1 in
  Labeling.set la_u ~anchor:2 ~d_to:1 ~d_from:1;
  Labeling.set la_v ~anchor:3 ~d_to:1 ~d_from:1;
  check_int "inf" Digraph.inf (Labeling.decode la_u la_v)


let test_labeling_serialization_roundtrip () =
  let la = Labeling.create 7 in
  Labeling.set la ~anchor:3 ~d_to:10 ~d_from:12;
  Labeling.set la ~anchor:9 ~d_to:Digraph.inf ~d_from:0;
  let la' = Labeling.of_string (Labeling.to_string la) in
  check_int "owner" 7 (Labeling.owner la');
  check_bool "entries preserved" true
    (Labeling.dist_to la' 3 = Some 10 && Labeling.dist_from la' 3 = Some 12
    && Labeling.dist_to la' 9 = Some Digraph.inf);
  check_bool "malformed rejected" true
    (try ignore (Labeling.of_string "7 3 10"); false with Invalid_argument _ -> true)

let test_labels_decode_after_roundtrip () =
  let g = Generators.random_weights ~seed:51 ~max_weight:9 (Generators.k_tree ~seed:51 20 2) in
  let m = Metrics.create () in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:m in
  let labels' =
    Array.map (fun la -> Labeling.of_string (Labeling.to_string la)) labels
  in
  for u = 0 to 19 do
    for v = 0 to 19 do
      check_int "same decode" (Labeling.decode labels.(u) labels.(v))
        (Labeling.decode labels'.(u) labels'.(v))
    done
  done

(* ------------------------------------------------------------------ *)
(* DL exactness *)

let all_pairs_match g dec =
  let m = Metrics.create () in
  let labels = Dl.build g dec ~metrics:m in
  let apsp = Shortest_path.apsp g in
  let n = Digraph.n g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Labeling.decode labels.(u) labels.(v) <> apsp.(u).(v) then begin
        if !ok then
          Printf.printf "mismatch d(%d,%d): dec=%d dij=%d\n" u v
            (Labeling.decode labels.(u) labels.(v))
            apsp.(u).(v);
        ok := false
      end
    done
  done;
  !ok

let test_dl_path () =
  let g = Generators.random_weights ~seed:1 ~max_weight:9 (Generators.path 10) in
  check_bool "exact on path" true (all_pairs_match g (Heuristic.min_fill g))

let test_dl_grid () =
  let g = Generators.random_weights ~seed:2 ~max_weight:5 (Generators.grid 4 5) in
  check_bool "exact on grid" true (all_pairs_match g (Heuristic.min_fill g))

let test_dl_directed_ktree () =
  let g = Generators.bidirect ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:3 30 3) in
  check_bool "exact on directed k-tree" true (all_pairs_match g (Heuristic.min_fill g))

let test_dl_with_distributed_decomposition () =
  let g = Generators.bidirect ~seed:4 ~max_weight:7 (Generators.k_tree ~seed:4 40 2) in
  let m = Metrics.create () in
  let report = Build.decompose g ~metrics:m in
  check_bool "exact with SEP-built decomposition" true
    (all_pairs_match g report.Build.decomposition)

let test_dl_unreachable () =
  (* directed cycle-free part: some pairs unreachable *)
  let g = Digraph.create ~directed:true 4 [ (0, 1, 2); (1, 2, 3); (3, 2, 1) ] in
  check_bool "handles inf distances" true (all_pairs_match g (Heuristic.min_fill g))

let prop_dl_exact =
  QCheck.Test.make ~name:"DL decode = Dijkstra on random weighted digraphs" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, k) ->
      let g =
        Generators.bidirect ~seed ~max_weight:12
          (Generators.partial_k_tree ~seed 25 k ~keep:0.5)
      in
      all_pairs_match g (Heuristic.min_fill g))

let test_dl_label_size_reported () =
  let g = Generators.k_tree ~seed:5 60 3 in
  let m = Metrics.create () in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:m in
  let w = Dl.max_label_words labels in
  check_bool "label smaller than trivial n entries" true (w < 3 * 60);
  check_bool "rounds charged" true (Metrics.rounds m > 0)

(* ------------------------------------------------------------------ *)
(* SSSP via DL *)

let test_sssp_matches_dijkstra () =
  let g = Generators.bidirect ~seed:6 ~max_weight:9 (Generators.k_tree ~seed:6 40 3) in
  let m = Metrics.create () in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:m in
  let r = Sssp.run g labels ~source:0 ~metrics:m in
  Alcotest.(check (array int)) "forward" (Shortest_path.dijkstra g 0) r.Sssp.dist_from_source;
  Alcotest.(check (array int)) "backward" (Shortest_path.dijkstra_to g 0) r.Sssp.dist_to_source;
  check_bool "broadcast measured" true (r.Sssp.broadcast_rounds > 0)

(* ------------------------------------------------------------------ *)
(* Stateful walk constraints *)

let test_colored_transitions () =
  let c = Stateful.colored ~colors:2 in
  check_int "|Q|" 4 c.Stateful.q_size;
  let g =
    Digraph.create_labeled ~directed:false 3 [ (0, 1, 1, 0); (1, 2, 1, 1); (2, 0, 1, 1) ]
  in
  (* alternating walk 0-1-2 (colors 0,1): accepted *)
  (match Stateful.walk_state c g [ 0; 1 ] with
  | Ok q -> check_bool "accepted" true (q <> c.Stateful.bot)
  | Error e -> Alcotest.fail e);
  (* walk 1-2-0 uses colors 1,1: rejected *)
  match Stateful.walk_state c g [ 1; 2 ] with
  | Ok q -> check_int "rejected" c.Stateful.bot q
  | Error e -> Alcotest.fail e

let test_count_transitions () =
  let c = Stateful.count ~limit:1 in
  let g =
    Digraph.create_labeled ~directed:true 4
      [ (0, 1, 1, 1); (1, 2, 1, 0); (2, 3, 1, 1) ]
  in
  (match Stateful.walk_state c g [ 0; 1 ] with
  | Ok q -> check_int "one label-1 edge" (Stateful.state_index_count c 1) q
  | Error e -> Alcotest.fail e);
  match Stateful.walk_state c g [ 0; 1; 2 ] with
  | Ok q -> check_int "two exceeds limit" c.Stateful.bot q
  | Error e -> Alcotest.fail e

let test_walk_state_rejects_non_walk () =
  let c = Stateful.count ~limit:1 in
  let g = Digraph.create ~directed:true 4 [ (0, 1, 1); (2, 3, 1) ] in
  match Stateful.walk_state c g [ 0; 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected non-walk error"

let test_parity_never_rejects () =
  let c = Stateful.parity in
  let g = Digraph.create_labeled ~directed:true 2 [ (0, 1, 1, 1); (1, 0, 1, 1) ] in
  match Stateful.walk_state c g [ 0; 1; 0; 1 ] with
  | Ok q -> check_bool "even parity" true (q = 2)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Product graph (Lemma 5) *)

let test_product_counts () =
  let c = Stateful.colored ~colors:2 in
  let g = Digraph.create_labeled ~directed:true 2 [ (0, 1, 5, 0) ] in
  let p = Product.build g c in
  check_int "vertices" (2 * 4) (Digraph.n p.Product.product);
  (* condition 1: 4 states transitions; condition 2: 3 drop edges per vertex *)
  check_int "edges" (4 + (2 * 3)) (Digraph.m p.Product.product)

let test_product_colored_distance () =
  (* triangle where direct edge 0-2 repeats the color of 0-1 paths *)
  let g =
    Digraph.create_labeled ~directed:false 3
      [ (0, 1, 1, 0); (1, 2, 1, 0); (0, 2, 10, 1) ]
  in
  let c = Stateful.colored ~colors:2 in
  let p = Product.build g c in
  (* 0 -> 2 monochromatic path 0-1-2 is rejected: must use weight-10 edge
     or alternate 0-2 directly *)
  let d01 = Product.constrained_distance p ~q:(Stateful.state_index_color c 0) ~src:0 ~dst:1 in
  check_int "one hop color 0" 1 d01;
  let best =
    min
      (Product.constrained_distance p ~q:(Stateful.state_index_color c 0) ~src:0 ~dst:2)
      (Product.constrained_distance p ~q:(Stateful.state_index_color c 1) ~src:0 ~dst:2)
  in
  check_int "colored 0->2 distance" 10 best

let test_product_walk_extraction () =
  let g =
    Digraph.create_labeled ~directed:false 3
      [ (0, 1, 1, 0); (1, 2, 1, 1); (0, 2, 10, 1) ]
  in
  let c = Stateful.colored ~colors:2 in
  let p = Product.build g c in
  match Product.shortest_constrained_walk p ~q:(Stateful.state_index_color c 1) ~src:0 ~dst:2 with
  | Some [ 0; 1 ] -> ()
  | Some w -> Alcotest.failf "unexpected walk [%s]" (String.concat ";" (List.map string_of_int w))
  | None -> Alcotest.fail "expected a walk"

let prop_product_matches_brute_force =
  QCheck.Test.make ~name:"product distances = brute-force constrained walks" ~count:20
    QCheck.(pair (int_range 0 500) (int_range 4 9))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed; 77 |] in
      let g0 = Generators.gnp_connected ~seed n 0.3 in
      let g =
        Digraph.with_labels
          (Generators.random_weights ~seed ~max_weight:4 g0)
          (fun _ -> Random.State.int rng 2)
      in
      let c = Stateful.count ~limit:1 in
      let p = Product.build g c in
      (* brute force: Bellman-Ford-style DP over (vertex, count) *)
      let inf = Digraph.inf in
      let dp = Array.make_matrix n 2 inf in
      dp.(0).(0) <- 0;
      for _ = 1 to 2 * n do
        Array.iter
          (fun e ->
            let relax u v =
              let bit = if e.Digraph.label <> 0 then 1 else 0 in
              for k = 0 to 1 - bit do
                if dp.(u).(k) < inf && dp.(u).(k) + e.Digraph.weight < dp.(v).(k + bit)
                then dp.(v).(k + bit) <- dp.(u).(k) + e.Digraph.weight
              done
            in
            relax e.Digraph.src e.Digraph.dst;
            relax e.Digraph.dst e.Digraph.src)
          (Digraph.edges g)
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        let d0 = Product.constrained_distance p ~q:(Stateful.state_index_count c 0) ~src:0 ~dst:v in
        let d1 = Product.constrained_distance p ~q:(Stateful.state_index_count c 1) ~src:0 ~dst:v in
        (* v = 0 at count 0: the DP counts the empty walk but the paper's
           M maps the empty walk to nabla, not to count 0 — the product is
           over nonempty walks there (the girth algorithm relies on this),
           so skip that one comparison *)
        if v <> 0 && d0 <> dp.(v).(0) then ok := false;
        if d1 <> dp.(v).(1) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* CDL (Theorem 3) *)

let test_cdl_matches_product_oracle () =
  let rng = Random.State.make [| 42 |] in
  let g0 = Generators.k_tree ~seed:11 20 2 in
  let g =
    Digraph.with_labels (Generators.random_weights ~seed:11 ~max_weight:6 g0) (fun _ ->
        Random.State.int rng 2)
  in
  let c = Stateful.count ~limit:1 in
  let m = Metrics.create () in
  let cdl = Cdl.build ~dec:(Heuristic.min_fill g) g c ~metrics:m in
  let p = Cdl.product cdl in
  let n = Digraph.n g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      List.iter
        (fun q ->
          check_int
            (Printf.sprintf "sdec q=%d %d->%d" q src dst)
            (Product.constrained_distance p ~q ~src ~dst)
            (Cdl.sdec cdl ~q ~src ~dst))
        [ Stateful.state_index_count c 0; Stateful.state_index_count c 1 ]
    done
  done;
  check_bool "rounds charged with overhead" true (Metrics.rounds m > 0)

let test_cdl_label_words () =
  let g = Generators.k_tree ~seed:12 25 2 in
  let m = Metrics.create () in
  let cdl = Cdl.build ~dec:(Heuristic.min_fill g) g (Stateful.colored ~colors:2) ~metrics:m in
  check_bool "label has content" true (Cdl.label_words cdl 0 > 0)

let test_cdl_shortest_walk_charges () =
  let g =
    Digraph.create_labeled ~directed:false 3 [ (0, 1, 1, 0); (1, 2, 1, 1) ]
  in
  let c = Stateful.colored ~colors:2 in
  let m = Metrics.create () in
  let cdl = Cdl.build ~dec:(Heuristic.min_fill g) g c ~metrics:m in
  let before = Metrics.rounds m in
  (match Cdl.shortest_walk cdl ~q:(Stateful.state_index_color c 1) ~src:0 ~dst:2 ~metrics:m with
  | Some [ 0; 1 ] -> ()
  | _ -> Alcotest.fail "expected walk 0;1");
  check_bool "walk extraction charged" true (Metrics.rounds m > before)

(* ------------------------------------------------------------------ *)
(* Exact bipartite maximum matching (Theorem 4) *)

let check_matching g r =
  check_bool "valid matching" true (Matching_ref.is_matching (Digraph.skeleton g) r.Matching.mate);
  check_int "maximum size" (Matching_ref.size (Matching_ref.hopcroft_karp (Digraph.skeleton g)))
    r.Matching.size

let test_matching_grid_charged () =
  let g = Generators.grid 5 6 in
  let m = Metrics.create () in
  let r = Matching.run ~mode:`Charged g ~metrics:m in
  check_matching g r;
  check_bool "rounds charged" true (Metrics.rounds m > 0)

let test_matching_small_faithful () =
  let g = Generators.grid 3 4 in
  let m = Metrics.create () in
  let r = Matching.run ~mode:`Faithful g ~metrics:m in
  check_matching g r

let test_matching_tree () =
  let g = Generators.binary_tree 4 in
  let m = Metrics.create () in
  check_matching g (Matching.run g ~metrics:m)

let test_matching_subdivided_ktree () =
  let g = Generators.subdivide (Generators.k_tree ~seed:8 25 3) in
  let m = Metrics.create () in
  check_matching g (Matching.run g ~metrics:m)

let test_matching_rejects_odd_cycle () =
  let m = Metrics.create () in
  check_bool "raises" true
    (try
       ignore (Matching.run (Generators.cycle 5) ~metrics:m);
       false
     with Invalid_argument _ -> true)

let test_matching_baseline_agrees () =
  let g = Generators.grid 4 5 in
  let m = Metrics.create () in
  let r = Matching.sequential_baseline g ~metrics:m in
  check_matching g r;
  check_bool "baseline rounds grow with s_max" true
    (Metrics.rounds m >= r.Matching.size)

let prop_matching_maximum =
  QCheck.Test.make ~name:"distributed matching = Hopcroft-Karp size" ~count:12
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, k) ->
      let seed = abs seed and k = max 2 (min 4 k) in
      let g = Generators.subdivide (Generators.partial_k_tree ~seed 20 k ~keep:0.5) in
      let m = Metrics.create () in
      let r = Matching.run ~seed g ~metrics:m in
      Matching_ref.is_matching (Digraph.skeleton g) r.Matching.mate
      && r.Matching.size = Matching_ref.size (Matching_ref.hopcroft_karp (Digraph.skeleton g)))

(* ------------------------------------------------------------------ *)
(* Girth (Theorem 5) *)

let test_girth_directed_cycle () =
  let g =
    Digraph.create ~directed:true 4 [ (0, 1, 2); (1, 2, 3); (2, 3, 4); (3, 0, 1) ]
  in
  let m = Metrics.create () in
  let r = Girth.directed g ~metrics:m in
  check_int "cycle girth" 10 r.Girth.girth

let test_girth_directed_matches_reference () =
  let g = Generators.bidirect ~seed:9 ~max_weight:8 (Generators.k_tree ~seed:9 25 2) in
  let m = Metrics.create () in
  let r = Girth.directed g ~metrics:m in
  check_int "matches centralized" (Girth_ref.girth g) r.Girth.girth

let test_girth_directed_acyclic () =
  let g = Digraph.create ~directed:true 3 [ (0, 1, 1); (0, 2, 1); (1, 2, 1) ] in
  let m = Metrics.create () in
  check_int "inf" Digraph.inf (Girth.directed g ~metrics:m).Girth.girth

let test_girth_undirected_peredge_exact () =
  let g = Generators.random_weights ~seed:10 ~max_weight:6 (Generators.grid 3 4) in
  let m = Metrics.create () in
  let r = Girth.undirected ~mode:`PerEdge g ~metrics:m in
  check_int "per-edge mode exact" (Girth_ref.girth g) r.Girth.girth;
  check_int "m trials" (Digraph.m g) r.Girth.trials

let test_girth_undirected_randomized () =
  let g = Generators.random_weights ~seed:11 ~max_weight:4 (Generators.cycle 8) in
  let m = Metrics.create () in
  let r = Girth.undirected ~mode:`Charged ~repeats:12 ~seed:3 g ~metrics:m in
  check_int "randomized finds the cycle" (Girth_ref.girth g) r.Girth.girth

let test_girth_undirected_upper_bound_always () =
  (* whatever the randomness, the output is >= g (Lemma 6) *)
  for seed = 0 to 5 do
    let g = Generators.random_weights ~seed ~max_weight:5 (Generators.k_tree ~seed 14 2) in
    let m = Metrics.create () in
    let r = Girth.undirected ~mode:`Charged ~repeats:2 ~seed g ~metrics:m in
    check_bool "upper bound" true (r.Girth.girth >= Girth_ref.girth g)
  done

let test_girth_undirected_faithful_small () =
  let g = Generators.random_weights ~seed:12 ~max_weight:3 (Generators.cycle 6) in
  let m = Metrics.create () in
  let r = Girth.undirected ~mode:`Faithful ~repeats:6 ~seed:1 g ~metrics:m in
  check_int "faithful labels agree" (Girth_ref.girth g) r.Girth.girth;
  check_bool "rounds charged" true (Metrics.rounds m > 0)

let test_girth_tree_no_cycle () =
  let g = Generators.binary_tree 3 in
  let m = Metrics.create () in
  let r = Girth.undirected ~mode:`PerEdge g ~metrics:m in
  check_int "acyclic" Digraph.inf r.Girth.girth

let prop_girth_peredge_exact =
  QCheck.Test.make ~name:"per-edge girth = centralized reference" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 8 20))
    (fun (seed, n) ->
      let seed = abs seed and n = max 8 (min 20 n) in
      let g =
        Generators.random_weights ~seed ~max_weight:7 (Generators.gnp_connected ~seed n 0.2)
      in
      let m = Metrics.create () in
      (Girth.undirected ~mode:`PerEdge ~seed g ~metrics:m).Girth.girth = Girth_ref.girth g)


(* ------------------------------------------------------------------ *)
(* DFA-based stateful constraints *)

let test_dfa_generalizes_forbidden () =
  (* DFA with a single state accepting only label-0 edges *)
  let c =
    Stateful.of_dfa ~name:"zeros" ~states:1 ~delta:(fun _ l ->
        if l = 0 then Some 0 else None)
  in
  let g =
    Digraph.create_labeled ~directed:true 3 [ (0, 1, 1, 0); (1, 2, 1, 1) ]
  in
  (match Stateful.walk_state c g [ 0 ] with
  | Ok q -> check_int "accepted in state 0" (Stateful.state_index_dfa c 0) q
  | Error e -> Alcotest.fail e);
  match Stateful.walk_state c g [ 0; 1 ] with
  | Ok q -> check_int "rejected on label 1" c.Stateful.bot q
  | Error e -> Alcotest.fail e

let test_dfa_pattern_distance () =
  (* accept label sequences matching (0 1)*: two states *)
  let c =
    Stateful.of_dfa ~name:"alternate01" ~states:2 ~delta:(fun s l ->
        match (s, l) with 0, 0 -> Some 1 | 1, 1 -> Some 0 | _ -> None)
  in
  (* path with labels 0,1,0,1: full walk ends in state 0 *)
  let g =
    Digraph.create_labeled ~directed:true 5
      [ (0, 1, 2, 0); (1, 2, 3, 1); (2, 3, 4, 0); (3, 4, 5, 1) ]
  in
  let p = Product.build g c in
  check_int "full pattern walk" 14
    (Product.constrained_distance p ~q:(Stateful.state_index_dfa c 0) ~src:0 ~dst:4);
  check_int "one edge reaches mid-state" 2
    (Product.constrained_distance p ~q:(Stateful.state_index_dfa c 1) ~src:0 ~dst:1);
  check_int "two edges complete one pattern round" 5
    (Product.constrained_distance p ~q:(Stateful.state_index_dfa c 0) ~src:0 ~dst:2);
  check_int "mid-state unreachable at even point" Digraph.inf
    (Product.constrained_distance p ~q:(Stateful.state_index_dfa c 0) ~src:0 ~dst:1)

let test_dfa_cdl_roundtrip () =
  let rng = Random.State.make [| 5 |] in
  let g0 = Generators.k_tree ~seed:15 16 2 in
  let g = Digraph.with_labels g0 (fun _ -> Random.State.int rng 2) in
  let c =
    Stateful.of_dfa ~name:"even-ones" ~states:2 ~delta:(fun s l ->
        Some (if l = 1 then 1 - s else s))
  in
  let m = Metrics.create () in
  let cdl = Cdl.build ~dec:(Heuristic.min_fill g0) g c ~metrics:m in
  let p = Cdl.product cdl in
  for dst = 0 to 15 do
    List.iter
      (fun q ->
        check_int "sdec matches product oracle"
          (Product.constrained_distance p ~q ~src:0 ~dst)
          (Cdl.sdec cdl ~q ~src:0 ~dst))
      [ Stateful.state_index_dfa c 0; Stateful.state_index_dfa c 1 ]
  done


(* ------------------------------------------------------------------ *)
(* Routing from labels *)

module Routing = Repro_core.Routing

let routing_fixture seed =
  let g = Generators.bidirect ~seed ~max_weight:9 (Generators.k_tree ~seed 30 3) in
  let m = Metrics.create () in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:m in
  (g, Routing.prepare g labels ~metrics:m, labels, m)

let test_routing_follows_shortest_paths () =
  let g, table, labels, m = routing_fixture 21 in
  check_bool "exchange charged" true (Metrics.rounds m > 0);
  let n = Digraph.n g in
  for src = 0 to n - 1 do
    let dist = Shortest_path.dijkstra g src in
    List.iter
      (fun dst ->
        match Routing.route table ~src ~dst with
        | Some path ->
            check_int "starts at src" src (List.hd path);
            check_int "ends at dst" dst (List.nth path (List.length path - 1));
            (* path length equals the decoded (= exact) distance *)
            let rec length acc = function
              | a :: (b :: _ as rest) ->
                  let w =
                    Array.to_list (Digraph.out_edges g a)
                    |> List.filter_map (fun ei ->
                           let e = Digraph.edge g ei in
                           if Digraph.dst_of g e a = b then Some e.Digraph.weight
                           else None)
                    |> List.fold_left min Digraph.inf
                  in
                  length (acc + w) rest
              | _ -> acc
            in
            check_int "length = distance" dist.(dst) (length 0 path)
        | None -> check_int "unreachable" Digraph.inf dist.(dst))
      [ 0; 7; 29 ]
  done;
  ignore labels

let test_routing_self () =
  let _, table, _, _ = routing_fixture 22 in
  (match Routing.route table ~src:5 ~dst:5 with
  | Some [ 5 ] -> ()
  | _ -> Alcotest.fail "self route should be the trivial path");
  check_bool "no next hop to self" true (Routing.next_hop table ~at:5 ~dst:5 = None)

(* ------------------------------------------------------------------ *)
(* Girth witness *)

let check_cycle g cycle expected_weight =
  (* edges must form a closed walk of the right weight *)
  let weight =
    List.fold_left (fun acc ei -> acc + (Digraph.edge g ei).Digraph.weight) 0 cycle
  in
  check_int "cycle weight" expected_weight weight;
  (* each vertex is entered as often as it is left *)
  let degree = Hashtbl.create 8 in
  List.iter
    (fun ei ->
      let e = Digraph.edge g ei in
      let bump v d =
        Hashtbl.replace degree v (d + Option.value ~default:0 (Hashtbl.find_opt degree v))
      in
      if Digraph.directed g then begin
        bump e.Digraph.src 1;
        bump e.Digraph.dst (-1)
      end
      else begin
        bump e.Digraph.src 1;
        bump e.Digraph.dst 1
      end)
    cycle;
  Hashtbl.iter
    (fun _ d ->
      if Digraph.directed g then check_int "balanced in/out" 0 d
      else check_int "even degree" 0 (d mod 2))
    degree

let test_girth_witness_undirected () =
  let g = Generators.random_weights ~seed:23 ~max_weight:6 (Generators.grid 3 4) in
  let m = Metrics.create () in
  match Girth.witness g ~metrics:m with
  | Some (girth, cycle) ->
      check_int "value matches reference" (Girth_ref.girth g) girth;
      check_cycle g cycle girth
  | None -> Alcotest.fail "grid has cycles"

let test_girth_witness_directed () =
  let g = Generators.bidirect ~seed:24 ~max_weight:6 (Generators.cycle 7) in
  let m = Metrics.create () in
  match Girth.witness g ~metrics:m with
  | Some (girth, cycle) ->
      check_int "value matches reference" (Girth_ref.girth g) girth;
      check_cycle g cycle girth
  | None -> Alcotest.fail "expected a cycle"

let test_girth_witness_acyclic () =
  let g = Generators.binary_tree 3 in
  let m = Metrics.create () in
  check_bool "no witness" true (Girth.witness g ~metrics:m = None)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_dl_exact; prop_product_matches_brute_force; prop_matching_maximum; prop_girth_peredge_exact ]
  in
  Alcotest.run "repro_core"
    [
      ( "labeling",
        [
          Alcotest.test_case "decode" `Quick test_labeling_decode;
          Alcotest.test_case "no common anchor" `Quick test_labeling_no_common_anchor;
          Alcotest.test_case "serialization" `Quick test_labeling_serialization_roundtrip;
          Alcotest.test_case "decode after roundtrip" `Quick test_labels_decode_after_roundtrip;
        ] );
      ( "distance labeling",
        [
          Alcotest.test_case "path" `Quick test_dl_path;
          Alcotest.test_case "grid" `Quick test_dl_grid;
          Alcotest.test_case "directed k-tree" `Quick test_dl_directed_ktree;
          Alcotest.test_case "distributed decomposition" `Quick
            test_dl_with_distributed_decomposition;
          Alcotest.test_case "unreachable pairs" `Quick test_dl_unreachable;
          Alcotest.test_case "label size" `Quick test_dl_label_size_reported;
        ] );
      ("sssp", [ Alcotest.test_case "matches dijkstra" `Quick test_sssp_matches_dijkstra ]);
      ( "stateful",
        [
          Alcotest.test_case "colored" `Quick test_colored_transitions;
          Alcotest.test_case "count" `Quick test_count_transitions;
          Alcotest.test_case "non-walk" `Quick test_walk_state_rejects_non_walk;
          Alcotest.test_case "parity" `Quick test_parity_never_rejects;
        ] );
      ( "product",
        [
          Alcotest.test_case "counts" `Quick test_product_counts;
          Alcotest.test_case "colored distance" `Quick test_product_colored_distance;
          Alcotest.test_case "walk extraction" `Quick test_product_walk_extraction;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "forbidden equivalent" `Quick test_dfa_generalizes_forbidden;
          Alcotest.test_case "pattern distance" `Quick test_dfa_pattern_distance;
          Alcotest.test_case "cdl roundtrip" `Quick test_dfa_cdl_roundtrip;
        ] );
      ( "cdl",
        [
          Alcotest.test_case "matches oracle" `Quick test_cdl_matches_product_oracle;
          Alcotest.test_case "label words" `Quick test_cdl_label_words;
          Alcotest.test_case "shortest walk" `Quick test_cdl_shortest_walk_charges;
        ] );
      ( "matching",
        [
          Alcotest.test_case "grid charged" `Quick test_matching_grid_charged;
          Alcotest.test_case "small faithful" `Slow test_matching_small_faithful;
          Alcotest.test_case "tree" `Quick test_matching_tree;
          Alcotest.test_case "subdivided k-tree" `Quick test_matching_subdivided_ktree;
          Alcotest.test_case "odd cycle rejected" `Quick test_matching_rejects_odd_cycle;
          Alcotest.test_case "baseline" `Quick test_matching_baseline_agrees;
        ] );
      ( "girth",
        [
          Alcotest.test_case "directed cycle" `Quick test_girth_directed_cycle;
          Alcotest.test_case "directed reference" `Quick test_girth_directed_matches_reference;
          Alcotest.test_case "directed acyclic" `Quick test_girth_directed_acyclic;
          Alcotest.test_case "per-edge exact" `Quick test_girth_undirected_peredge_exact;
          Alcotest.test_case "randomized" `Quick test_girth_undirected_randomized;
          Alcotest.test_case "upper bound always" `Quick test_girth_undirected_upper_bound_always;
          Alcotest.test_case "faithful small" `Slow test_girth_undirected_faithful_small;
          Alcotest.test_case "tree" `Quick test_girth_tree_no_cycle;
        ] );
      ( "routing",
        [
          Alcotest.test_case "shortest paths" `Quick test_routing_follows_shortest_paths;
          Alcotest.test_case "self" `Quick test_routing_self;
        ] );
      ( "girth witness",
        [
          Alcotest.test_case "undirected" `Quick test_girth_witness_undirected;
          Alcotest.test_case "directed" `Quick test_girth_witness_directed;
          Alcotest.test_case "acyclic" `Quick test_girth_witness_acyclic;
        ] );
      ("properties", qsuite);
    ]
