module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Nice = Repro_treedec.Nice
module Build = Repro_treedec.Build
module Dp = Repro_core.Dp

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* brute-force oracles (n <= ~16) *)

let adjacency g =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      Hashtbl.replace tbl (e.Digraph.src, e.Digraph.dst) ();
      Hashtbl.replace tbl (e.Digraph.dst, e.Digraph.src) ())
    (Digraph.edges (Digraph.skeleton g));
  fun u v -> Hashtbl.mem tbl (u, v)

let brute_mis ?weights g =
  let n = Digraph.n g in
  let adj = adjacency g in
  let w v = match weights with Some ws -> ws.(v) | None -> 1 in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let ok = ref true and weight = ref 0 in
    for u = 0 to n - 1 do
      if mask land (1 lsl u) <> 0 then begin
        weight := !weight + w u;
        for v = u + 1 to n - 1 do
          if mask land (1 lsl v) <> 0 && adj u v then ok := false
        done
      end
    done;
    if !ok && !weight > !best then best := !weight
  done;
  !best

let brute_domset g =
  let n = Digraph.n g in
  let skeleton = Digraph.skeleton g in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let dominated = Array.make n false in
    let size = ref 0 in
    for v = 0 to n - 1 do
      if mask land (1 lsl v) <> 0 then begin
        incr size;
        dominated.(v) <- true;
        Array.iter (fun u -> dominated.(u) <- true) (Digraph.neighbors skeleton v)
      end
    done;
    if Array.for_all Fun.id dominated && !size < !best then best := !size
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Nice decomposition *)

let check_valid_nice g nice =
  match Nice.validate g nice with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid nice decomposition: %s" e

let test_nice_path () =
  let g = Generators.path 8 in
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  check_valid_nice g nice;
  check_int "width preserved" 1 (Nice.width nice);
  check_bool "more nodes than bags" true (Nice.size nice >= 8)

let test_nice_ktree () =
  let g = Generators.k_tree ~seed:2 20 3 in
  let dec = Heuristic.min_fill g in
  let nice = Nice.of_decomposition dec in
  check_valid_nice g nice;
  check_int "width preserved" (Decomposition.width dec) (Nice.width nice)

let test_nice_from_distributed () =
  let g = Generators.partial_k_tree ~seed:3 30 2 ~keep:0.6 in
  let m = Metrics.create () in
  let dec = (Build.decompose ~seed:3 g ~metrics:m).Build.decomposition in
  let nice = Nice.of_decomposition dec in
  check_valid_nice g nice;
  check_int "width preserved" (Decomposition.width dec) (Nice.width nice)

let test_nice_rejects_invalid () =
  let g = Generators.cycle 3 in
  let dec = Decomposition.create g [ ([], [| 0; 1 |]) ] in
  check_bool "raises" true
    (try
       ignore (Nice.of_decomposition dec);
       false
     with Invalid_argument _ -> true)

let prop_nice_always_valid =
  QCheck.Test.make ~name:"nice conversion preserves validity and width" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 6 25))
    (fun (seed, n) ->
      let seed = abs seed and n = max 6 (min 25 n) in
      let g = Generators.gnp_connected ~seed n 0.2 in
      let dec = Heuristic.min_fill g in
      let nice = Nice.of_decomposition dec in
      Nice.validate g nice = Ok () && Nice.width nice = Decomposition.width dec)

(* ------------------------------------------------------------------ *)
(* DP: maximum independent set / vertex cover *)

let mis_of g =
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  let m = Metrics.create () in
  (Dp.max_weight_independent_set g nice ~metrics:m, m)

let test_mis_path () =
  let r, m = mis_of (Generators.path 7) in
  check_int "alternate vertices" 4 r.Dp.value;
  check_bool "rounds charged" true (Metrics.rounds m > 0)

let test_mis_cycle () =
  let r, _ = mis_of (Generators.cycle 7) in
  check_int "floor(7/2)" 3 r.Dp.value

let test_mis_complete () =
  let r, _ = mis_of (Generators.complete 6) in
  check_int "single vertex" 1 r.Dp.value

let test_mis_weighted () =
  let g = Generators.path 4 in
  let weights = [| 1; 10; 10; 1 |] in
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  let m = Metrics.create () in
  let r = Dp.max_weight_independent_set ~weights g nice ~metrics:m in
  (* vertices 1 and 3 (or 0 and 2) are adjacent-free: best is {1,3}=11 *)
  check_int "weighted optimum" 11 r.Dp.value;
  check_int "brute force agrees" (brute_mis ~weights g) r.Dp.value

let test_vertex_cover_grid () =
  let g = Generators.grid 3 3 in
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  let m = Metrics.create () in
  let r = Dp.min_vertex_cover g nice ~metrics:m in
  check_int "3x3 grid cover" 4 r.Dp.value

let prop_mis_matches_brute_force =
  QCheck.Test.make ~name:"DP independent set = brute force" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 5 14))
    (fun (seed, n) ->
      let seed = abs seed and n = max 5 (min 14 n) in
      let g = Generators.gnp_connected ~seed n 0.3 in
      let nice = Nice.of_decomposition (Heuristic.min_fill g) in
      let m = Metrics.create () in
      let r = Dp.max_weight_independent_set g nice ~metrics:m in
      r.Dp.value = brute_mis g)

(* ------------------------------------------------------------------ *)
(* DP: minimum dominating set *)

let domset_of g =
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  let m = Metrics.create () in
  Dp.min_dominating_set g nice ~metrics:m

let test_domset_star () =
  check_int "center dominates" 1 (domset_of (Generators.star 8)).Dp.value

let test_domset_path () =
  check_int "ceil(7/3)" 3 (domset_of (Generators.path 7)).Dp.value

let test_domset_cycle () =
  check_int "ceil(9/3)" 3 (domset_of (Generators.cycle 9)).Dp.value

let test_domset_grid () =
  let g = Generators.grid 3 4 in
  check_int "brute force agrees" (brute_domset g) (domset_of g).Dp.value

let prop_domset_matches_brute_force =
  QCheck.Test.make ~name:"DP dominating set = brute force" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 5 13))
    (fun (seed, n) ->
      let seed = abs seed and n = max 5 (min 13 n) in
      let g = Generators.gnp_connected ~seed n 0.25 in
      (domset_of g).Dp.value = brute_domset g)


(* ------------------------------------------------------------------ *)
(* DP: Steiner tree *)

let brute_steiner g terminals =
  (* min over supersets S of terminals: MST weight of induced(S) if
     connected *)
  let n = Digraph.n g in
  let term_mask = List.fold_left (fun m t -> m lor (1 lsl t)) 0 terminals in
  let best = ref Digraph.inf in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land term_mask = term_mask then begin
      let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
      let sub, _, _ = Digraph.induced g vs in
      if Repro_graph.Traversal.is_connected sub && Digraph.n sub > 0 then begin
        let mst = Repro_shortcut.Mst.kruskal sub in
        if List.length mst.Repro_shortcut.Mst.edges = Digraph.n sub - 1 then
          best := min !best mst.Repro_shortcut.Mst.weight
      end
    end
  done;
  !best

let steiner_of g terminals =
  let nice = Nice.of_decomposition (Heuristic.min_fill g) in
  let m = Metrics.create () in
  Dp.steiner_tree g nice ~terminals ~metrics:m

let test_steiner_two_terminals_is_shortest_path () =
  let g = Generators.random_weights ~seed:31 ~max_weight:9 (Generators.cycle 8) in
  let r = steiner_of g [ 0; 4 ] in
  check_int "= shortest path" (Repro_graph.Shortest_path.dijkstra g 0).(4) r.Dp.value

let test_steiner_single_terminal () =
  let g = Generators.path 5 in
  let r = steiner_of g [ 3 ] in
  check_int "zero cost" 0 r.Dp.value;
  check_int "no edges" 0 (List.length r.Dp.witness)

let test_steiner_no_terminals () =
  let g = Generators.path 4 in
  check_int "empty" 0 (steiner_of g []).Dp.value

let test_steiner_all_of_a_tree () =
  let g = Generators.random_weights ~seed:32 ~max_weight:9 (Generators.binary_tree 3) in
  let r = steiner_of g (List.init (Digraph.n g) Fun.id) in
  check_int "whole tree" (Digraph.total_weight g) r.Dp.value

let test_steiner_star_center_shortcut () =
  (* terminals = 3 leaves of a star: optimum buys the 3 spokes *)
  let g = Generators.star 6 in
  let r = steiner_of g [ 1; 3; 5 ] in
  check_int "three spokes" 3 r.Dp.value

let prop_steiner_matches_brute_force =
  QCheck.Test.make ~name:"DP Steiner tree = brute force" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 5 10))
    (fun (seed, n) ->
      let seed = abs seed and n = max 5 (min 10 n) in
      let g =
        Generators.random_weights ~seed ~max_weight:8 (Generators.gnp_connected ~seed n 0.3)
      in
      let rng = Random.State.make [| seed; 3 |] in
      let terminals =
        List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id)
      in
      let terminals = if terminals = [] then [ 0 ] else terminals in
      (steiner_of g terminals).Dp.value = brute_steiner g terminals)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_nice_always_valid; prop_mis_matches_brute_force; prop_domset_matches_brute_force;
        prop_steiner_matches_brute_force ]
  in
  Alcotest.run "repro_dp"
    [
      ( "nice",
        [
          Alcotest.test_case "path" `Quick test_nice_path;
          Alcotest.test_case "k-tree" `Quick test_nice_ktree;
          Alcotest.test_case "from distributed" `Quick test_nice_from_distributed;
          Alcotest.test_case "rejects invalid" `Quick test_nice_rejects_invalid;
        ] );
      ( "independent set",
        [
          Alcotest.test_case "path" `Quick test_mis_path;
          Alcotest.test_case "cycle" `Quick test_mis_cycle;
          Alcotest.test_case "complete" `Quick test_mis_complete;
          Alcotest.test_case "weighted" `Quick test_mis_weighted;
          Alcotest.test_case "vertex cover" `Quick test_vertex_cover_grid;
        ] );
      ( "dominating set",
        [
          Alcotest.test_case "star" `Quick test_domset_star;
          Alcotest.test_case "path" `Quick test_domset_path;
          Alcotest.test_case "cycle" `Quick test_domset_cycle;
          Alcotest.test_case "grid" `Quick test_domset_grid;
        ] );
      ( "steiner tree",
        [
          Alcotest.test_case "two terminals" `Quick test_steiner_two_terminals_is_shortest_path;
          Alcotest.test_case "single terminal" `Quick test_steiner_single_terminal;
          Alcotest.test_case "no terminals" `Quick test_steiner_no_terminals;
          Alcotest.test_case "spanning a tree" `Quick test_steiner_all_of_a_tree;
          Alcotest.test_case "star" `Quick test_steiner_star_center_shortcut;
        ] );
      ("properties", qsuite);
    ]
