module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Bfs_tree = Repro_congest.Bfs_tree
module Part = Repro_shortcut.Part
module Pa = Repro_shortcut.Pa
module Mvc = Repro_shortcut.Mvc
module Primitives = Repro_shortcut.Primitives

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Part *)

let test_part_of_labels () =
  let g = Generators.path 6 in
  let parts = Part.of_labels g [| 0; 0; -1; 1; 1; 1 |] in
  check_int "two parts" 2 (Part.count parts);
  check_bool "disjoint" true (Part.is_vertex_disjoint parts)

let test_part_rejects_disconnected () =
  let g = Generators.path 6 in
  check_bool "raises" true
    (try
       ignore (Part.make g [| [| 0; 5 |] |]);
       false
     with Invalid_argument _ -> true)

let test_part_near_disjoint () =
  (* star: center 0 shared by two parts, each part otherwise private *)
  let g = Generators.path 5 in
  (* parts {0,1,2} and {2,3,4} share vertex 2 *)
  let parts = Part.make g [| [| 0; 1; 2 |]; [| 2; 3; 4 |] |] in
  check_bool "not vertex disjoint" false (Part.is_vertex_disjoint parts);
  check_bool "near disjoint" true (Part.is_near_disjoint parts)

let test_part_not_near_disjoint () =
  let g = Generators.path 4 in
  (* parts {0,1,2} and {1,2,3}: edge (1,2) has both endpoints shared *)
  let parts = Part.make g [| [| 0; 1; 2 |]; [| 1; 2; 3 |] |] in
  check_bool "violates condition 1" false (Part.is_near_disjoint parts)

(* ------------------------------------------------------------------ *)
(* PA *)

let sum_aggregate g members =
  let m = Metrics.create () in
  let parts = Part.make g members in
  let results, stats =
    Pa.aggregate parts ~op:( + ) ~value:(fun ~part:_ ~vertex -> vertex) ~metrics:m ~label:"pa"
  in
  (results, stats, m)

let test_pa_sum_path () =
  let g = Generators.path 8 in
  let results, _, _ = sum_aggregate g [| [| 0; 1; 2; 3 |]; [| 4; 5; 6; 7 |] |] in
  Alcotest.(check (array int)) "sums" [| 6; 22 |] results

let test_pa_single_vertex_parts () =
  let g = Generators.path 4 in
  let results, _, _ = sum_aggregate g [| [| 0 |]; [| 2 |]; [| 3 |] |] in
  Alcotest.(check (array int)) "sums" [| 0; 2; 3 |] results

let test_pa_min_aggregate () =
  let g = Generators.grid 4 4 in
  let m = Metrics.create () in
  let parts = Part.make g [| Array.init 16 Fun.id |] in
  let results, _ =
    Pa.aggregate parts ~op:min
      ~value:(fun ~part:_ ~vertex -> 100 - vertex)
      ~metrics:m ~label:"pa"
  in
  check_int "min over all" 85 results.(0)

let test_pa_stats_measured () =
  let g = Generators.path 9 in
  let _, stats, m = sum_aggregate g [| [| 0; 1; 2 |]; [| 3; 4; 5 |]; [| 6; 7; 8 |] |] in
  check_int "depth of path tree" 8 stats.Pa.depth;
  check_bool "rounds were charged" true (Metrics.rounds m > 0);
  check_bool "congestion at least 1" true (stats.Pa.max_load >= 1);
  (* Steiner-trimmed aggregation: each part meets within its own span, so
     the up phase is bounded by the largest part span, not the depth *)
  check_bool "up rounds local" true (stats.Pa.rounds_up <= 4);
  check_bool "down rounds local" true (stats.Pa.rounds_down <= 4)

let prop_pa_matches_direct_fold =
  QCheck.Test.make ~name:"PA aggregate = direct fold" ~count:40
    QCheck.(pair (int_range 0 500) (int_range 8 40))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.1 in
      (* parts = components after removing ~ n/4 vertices *)
      let rng = Random.State.make [| seed |] in
      let mask = Array.init n (fun _ -> Random.State.float rng 1.0 > 0.25) in
      let labels, count = Traversal.components_mask g mask in
      count = 0
      ||
      let parts = Part.of_labels g labels in
      let m = Metrics.create () in
      let results, _ =
        Pa.aggregate parts ~op:( + ) ~value:(fun ~part:_ ~vertex -> vertex) ~metrics:m
          ~label:"pa"
      in
      Array.for_all Fun.id
        (Array.mapi
           (fun p vs -> results.(p) = Array.fold_left ( + ) 0 vs)
           parts.Part.members))

(* ------------------------------------------------------------------ *)
(* MVC *)

let full_mask g = Array.make (Digraph.n g) true

let test_mvc_path_cut () =
  let g = Generators.path 5 in
  match Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 4 ] ~limit:3 with
  | Some cut -> check_int "single cut vertex" 1 (List.length cut)
  | None -> Alcotest.fail "expected a cut"

let test_mvc_respects_limit () =
  (* source 0 and sink 4 joined through the 3 middle vertices 1,2,3 *)
  let g =
    Digraph.create ~directed:false 5
      [ (0, 1, 1); (0, 2, 1); (0, 3, 1); (1, 4, 1); (2, 4, 1); (3, 4, 1) ]
  in
  check_bool "limit 2 fails" true
    (Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 4 ] ~limit:2 = None);
  match Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 4 ] ~limit:3 with
  | Some cut -> Alcotest.(check (list int)) "cut of 3" [ 1; 2; 3 ] (List.sort compare cut)
  | None -> Alcotest.fail "expected a cut"

let test_mvc_adjacent_is_infinite () =
  let g = Generators.path 3 in
  check_bool "adjacent source/sink" true
    (Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 1 ] ~limit:10 = None)

let test_mvc_disconnected_empty_cut () =
  let g = Digraph.create ~directed:false 4 [ (0, 1, 1); (2, 3, 1) ] in
  match Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 3 ] ~limit:5 with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected empty cut"

let test_mvc_cut_separates () =
  let g = Generators.grid 4 4 in
  match Mvc.min_cut g ~mask:(full_mask g) ~sources:[ 0 ] ~sinks:[ 15 ] ~limit:8 with
  | None -> Alcotest.fail "expected a cut"
  | Some cut ->
      let mask = full_mask g in
      List.iter (fun v -> mask.(v) <- false) cut;
      let labels, _ = Traversal.components_mask g mask in
      check_bool "separated" true (labels.(0) <> labels.(15))

let prop_mvc_cut_separates_and_is_minimal =
  QCheck.Test.make ~name:"MVC cut separates sources from sinks" ~count:40
    QCheck.(pair (int_range 0 500) (int_range 8 25))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.15 in
      let s = seed mod n and t = (seed + (n / 2)) mod n in
      if s = t then true
      else
        match Mvc.min_cut g ~mask:(full_mask g) ~sources:[ s ] ~sinks:[ t ] ~limit:n with
        | None -> true (* adjacent *)
        | Some cut ->
            let mask = full_mask g in
            List.iter (fun v -> mask.(v) <- false) cut;
            let labels, _ = Traversal.components_mask g mask in
            labels.(s) <> labels.(t))

(* ------------------------------------------------------------------ *)
(* Primitives *)

let test_ceil_log2 () =
  check_int "1" 1 (Primitives.ceil_log2 1);
  check_int "2" 1 (Primitives.ceil_log2 2);
  check_int "3" 2 (Primitives.ceil_log2 3);
  check_int "1024" 10 (Primitives.ceil_log2 1024);
  check_int "1025" 11 (Primitives.ceil_log2 1025)

let test_schedule_combines () =
  check_int "dilation max + congestion sum" 25
    (Primitives.schedule [ (10, 3); (7, 5); (4, 7) ])

let test_elect_per_part () =
  let g = Generators.path 6 in
  let parts = Part.make g [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] in
  let m = Metrics.create () in
  let leaders = Primitives.elect parts ~candidate:(fun v -> v mod 2 = 1) ~metrics:m ~label:"sle" in
  Alcotest.(check (array int)) "smallest odd ids" [| 1; 3 |] leaders

let test_components_charges () =
  let g = Generators.grid 3 3 in
  let mask = Array.make 9 true in
  mask.(4) <- false;
  let m = Metrics.create () in
  let _, count = Primitives.components g ~mask ~metrics:m ~label:"ccd" in
  check_int "still connected around center" 1 count;
  check_bool "charged rounds" true (Metrics.rounds m > 0)


(* ------------------------------------------------------------------ *)
(* MST *)

module Mst = Repro_shortcut.Mst

let test_mst_matches_kruskal () =
  let g = Generators.random_weights ~seed:4 ~max_weight:20 (Generators.k_tree ~seed:4 40 3) in
  let m = Metrics.create () in
  let r = Mst.run g ~metrics:m in
  let k = Mst.kruskal g in
  Alcotest.(check (list int)) "same edges" k.Mst.edges r.Mst.edges;
  check_int "same weight" k.Mst.weight r.Mst.weight;
  check_int "spanning" (Digraph.n g - 1) (List.length r.Mst.edges);
  check_bool "logarithmic phases" true (r.Mst.phases <= 8);
  check_bool "rounds charged" true (Metrics.rounds m > 0)

let test_mst_on_tree_is_identity () =
  let g = Generators.random_weights ~seed:5 ~max_weight:9 (Generators.binary_tree 4) in
  let m = Metrics.create () in
  let r = Mst.run g ~metrics:m in
  check_int "all edges kept" (Digraph.m g) (List.length r.Mst.edges)

let test_mst_rejects_disconnected () =
  let g = Digraph.create ~directed:false 4 [ (0, 1, 1); (2, 3, 1) ] in
  let m = Metrics.create () in
  check_bool "raises" true
    (try
       ignore (Mst.run g ~metrics:m);
       false
     with Invalid_argument _ -> true)

let prop_mst_matches_kruskal =
  QCheck.Test.make ~name:"Boruvka-over-PA = Kruskal" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 6 40))
    (fun (seed, n) ->
      let seed = abs seed and n = max 6 (min 40 n) in
      let g =
        Generators.random_weights ~seed ~max_weight:15 (Generators.gnp_connected ~seed n 0.15)
      in
      let m = Metrics.create () in
      (Mst.run g ~metrics:m).Mst.edges = (Mst.kruskal g).Mst.edges)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_pa_matches_direct_fold; prop_mvc_cut_separates_and_is_minimal; prop_mst_matches_kruskal ]
  in
  Alcotest.run "repro_shortcut"
    [
      ( "part",
        [
          Alcotest.test_case "of_labels" `Quick test_part_of_labels;
          Alcotest.test_case "rejects disconnected" `Quick test_part_rejects_disconnected;
          Alcotest.test_case "near disjoint" `Quick test_part_near_disjoint;
          Alcotest.test_case "not near disjoint" `Quick test_part_not_near_disjoint;
        ] );
      ( "pa",
        [
          Alcotest.test_case "sum on path" `Quick test_pa_sum_path;
          Alcotest.test_case "singleton parts" `Quick test_pa_single_vertex_parts;
          Alcotest.test_case "min aggregate" `Quick test_pa_min_aggregate;
          Alcotest.test_case "measured stats" `Quick test_pa_stats_measured;
        ] );
      ( "mvc",
        [
          Alcotest.test_case "path" `Quick test_mvc_path_cut;
          Alcotest.test_case "limit" `Quick test_mvc_respects_limit;
          Alcotest.test_case "adjacent infinite" `Quick test_mvc_adjacent_is_infinite;
          Alcotest.test_case "disconnected" `Quick test_mvc_disconnected_empty_cut;
          Alcotest.test_case "cut separates" `Quick test_mvc_cut_separates;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "schedule" `Quick test_schedule_combines;
          Alcotest.test_case "elect" `Quick test_elect_per_part;
          Alcotest.test_case "components" `Quick test_components_charges;
        ] );
      ( "mst",
        [
          Alcotest.test_case "matches kruskal" `Quick test_mst_matches_kruskal;
          Alcotest.test_case "tree identity" `Quick test_mst_on_tree_is_identity;
          Alcotest.test_case "disconnected rejected" `Quick test_mst_rejects_disconnected;
        ] );
      ("properties", qsuite);
    ]
