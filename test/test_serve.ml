module Digraph = Repro_graph.Digraph
module Generators = Repro_graph.Generators
module Shortest_path = Repro_graph.Shortest_path
module Metrics = Repro_congest.Metrics
module Heuristic = Repro_treedec.Heuristic
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Stateful = Repro_core.Stateful
module Cdl = Repro_core.Cdl
module Bitio = Repro_serve.Bitio
module Codec = Repro_serve.Codec
module Cache = Repro_serve.Cache
module Store = Repro_serve.Store
module Query = Repro_serve.Query
module Server = Repro_serve.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_path suffix =
  let path = Filename.temp_file "repro_serve_test" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ------------------------------------------------------------------ *)
(* Bitio *)

let test_bitio_fields () =
  let w = Bitio.writer () in
  Bitio.put w ~bits:3 5;
  Bitio.put w ~bits:1 0;
  Bitio.put w ~bits:13 4097;
  Bitio.put_varint w 0;
  Bitio.put_varint w 300;
  Bitio.put_varint w 123_456_789;
  let r = Bitio.reader (Bitio.contents w) in
  check_int "3-bit field" 5 (Bitio.get r ~bits:3);
  check_int "1-bit field" 0 (Bitio.get r ~bits:1);
  check_int "13-bit field" 4097 (Bitio.get r ~bits:13);
  check_int "varint 0" 0 (Bitio.get_varint r);
  check_int "varint 300" 300 (Bitio.get_varint r);
  check_int "varint large" 123_456_789 (Bitio.get_varint r);
  check_bool "truncated read raises" true
    (try
       ignore (Bitio.get r ~bits:30);
       false
     with Bitio.Truncated -> true)

let test_bitio_boundaries () =
  (* widest legal field, all ones *)
  let top = (1 lsl 30) - 1 in
  let w = Bitio.writer () in
  Bitio.put w ~bits:30 top;
  Bitio.put w ~bits:30 0;
  Bitio.put_varint w max_int;
  let r = Bitio.reader (Bitio.contents w) in
  check_int "30-bit all-ones" top (Bitio.get r ~bits:30);
  check_int "30-bit zero" 0 (Bitio.get r ~bits:30);
  check_int "varint max_int" max_int (Bitio.get_varint r);
  (* a 31-bit width is out of contract on both sides *)
  check_bool "put rejects 31 bits" true
    (try
       Bitio.put (Bitio.writer ()) ~bits:31 0;
       false
     with Invalid_argument _ -> true);
  check_bool "put rejects oversized value" true
    (try
       Bitio.put (Bitio.writer ()) ~bits:4 16;
       false
     with Invalid_argument _ -> true)

let test_bitio_unaligned_contents () =
  (* 3 + 7 + 11 = 21 bits: contents must flush the partial last byte *)
  let w = Bitio.writer () in
  Bitio.put w ~bits:3 5;
  Bitio.put w ~bits:7 99;
  Bitio.put w ~bits:11 1_234;
  let s = Bitio.contents w in
  check_int "21 bits pack into 3 bytes" 3 (String.length s);
  let r = Bitio.reader s in
  check_int "3-bit field" 5 (Bitio.get r ~bits:3);
  check_int "7-bit field" 99 (Bitio.get r ~bits:7);
  check_int "11-bit field" 1_234 (Bitio.get r ~bits:11)

let test_codec_zigzag_extremes () =
  (* the asymmetry delta d_from - d_to rides a zigzag field; push it to
     the widest value the 30-bit field contract admits, both signs *)
  let big = (1 lsl 29) - 1 in
  let la = Labeling.create 0 in
  Labeling.set la ~anchor:1 ~d_to:0 ~d_from:big;
  Labeling.set la ~anchor:2 ~d_to:big ~d_from:0;
  Labeling.set la ~anchor:3 ~d_to:big ~d_from:big;
  check_bool "zigzag extremes roundtrip" true
    (Labeling.equal la (Codec.decode (Codec.encode la)))

let prop_bitio_roundtrip =
  QCheck.Test.make ~name:"bitio field sequences roundtrip" ~count:200
    QCheck.(small_list (pair (int_range 1 24) small_nat))
    (fun fields ->
      let fields = List.map (fun (bits, v) -> (bits, v land ((1 lsl bits) - 1))) fields in
      let w = Bitio.writer () in
      List.iter (fun (bits, v) -> Bitio.put w ~bits v) fields;
      let r = Bitio.reader (Bitio.contents w) in
      List.for_all (fun (bits, v) -> Bitio.get r ~bits = v) fields)

(* ------------------------------------------------------------------ *)
(* Codec: encode . decode = id *)

let arbitrary_label =
  let open QCheck in
  let dist_gen =
    Gen.(oneof [ return Repro_graph.Digraph.inf; int_range 0 50_000 ])
  in
  let gen =
    Gen.(
      pair (int_range 0 10_000) (small_list (triple (int_range 0 5_000) dist_gen dist_gen))
      |> map (fun (owner, entries) ->
             let la = Labeling.create owner in
             List.iter
               (fun (anchor, d_to, d_from) -> Labeling.set la ~anchor ~d_to ~d_from)
               entries;
             la))
  in
  QCheck.make ~print:(Format.asprintf "%a" Labeling.pp) gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"binary codec: decode (encode la) = la" ~count:300 arbitrary_label
    (fun la -> Labeling.equal la (Codec.decode (Codec.encode la)))

let prop_text_roundtrip =
  QCheck.Test.make ~name:"text format: of_string (to_string la) = la" ~count:300
    arbitrary_label (fun la ->
      Labeling.equal la (Labeling.of_string (Labeling.to_string la)))

let test_codec_inf_and_empty () =
  let empty = Labeling.create 3 in
  check_bool "empty label" true (Labeling.equal empty (Codec.decode (Codec.encode empty)));
  let la = Labeling.create 0 in
  Labeling.set la ~anchor:7 ~d_to:Digraph.inf ~d_from:Digraph.inf;
  Labeling.set la ~anchor:9 ~d_to:0 ~d_from:Digraph.inf;
  Labeling.set la ~anchor:11 ~d_to:Digraph.inf ~d_from:4;
  check_bool "inf sentinel fields" true (Labeling.equal la (Codec.decode (Codec.encode la)));
  check_bool "bit length positive" true (Codec.encoded_bits la > 0)

(* ------------------------------------------------------------------ *)
(* Legacy text store (Dl.save_text / load_text) *)

let test_text_store_roundtrip () =
  let g =
    Generators.random_weights ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:3 24 2)
  in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:(Metrics.create ()) in
  let path = temp_path ".txt" in
  Dl.save_text path labels;
  let labels' = Dl.load_text path in
  check_int "count" (Array.length labels) (Array.length labels');
  Array.iteri
    (fun i la -> check_bool "label equal" true (Labeling.equal la labels'.(i)))
    labels

let test_text_store_parse_error () =
  let path = temp_path ".txt" in
  let oc = open_out path in
  output_string oc "0 1 2 3\n\nnot a label\n";
  close_out oc;
  match Dl.load_text path with
  | _ -> Alcotest.fail "malformed text store accepted"
  | exception Dl.Parse_error { line; _ } -> check_int "error on line 3" 3 line

(* ------------------------------------------------------------------ *)
(* Binary store *)

let small_graph seed n =
  Generators.bidirect ~seed ~max_weight:9 (Generators.partial_k_tree ~seed n 3 ~keep:0.6)

let build_labels g = Dl.build g (Heuristic.min_fill g) ~metrics:(Metrics.create ())

let test_store_roundtrip () =
  let g = small_graph 11 40 in
  let labels = build_labels g in
  let path = temp_path ".bin" in
  Store.save ~shard_size:8 path labels;
  let st = Store.open_ path in
  check_int "n" (Array.length labels) (Store.n st);
  check_bool "no cdl" true (not (Store.has_cdl st));
  check_bool "pool dedups" true (Store.pool_count st <= Store.n st);
  Array.iteri
    (fun i la -> check_bool "label equal" true (Labeling.equal la (Store.dist_label st i)))
    labels;
  (* served answers = Dijkstra oracle, via the query engine *)
  let src = Query.of_store st in
  let n = Digraph.n g in
  for u = 0 to n - 1 do
    let d = Shortest_path.dijkstra g u in
    for v = 0 to n - 1 do
      check_int "DIST = oracle" d.(v) (Query.answer src (Query.Dist { u; v }))
    done
  done

(* the >=4x acceptance gate runs on the E2b instances exactly as the
   bench builds them: distributed decomposition, not min-fill *)
let test_store_smaller_than_text () =
  List.iter
    (fun g ->
      let report = Build.decompose ~seed:2 g ~metrics:(Metrics.create ()) in
      let labels = Dl.build g report.Build.decomposition ~metrics:(Metrics.create ()) in
      let bin = temp_path ".bin" and txt = temp_path ".txt" in
      Store.save bin labels;
      Dl.save_text txt labels;
      let st = Store.open_ bin in
      let bin_size = Store.byte_size st in
      let ic = open_in_bin txt in
      let txt_size = in_channel_length ic in
      close_in ic;
      check_bool
        (Printf.sprintf "binary %dB >= 4x smaller than text %dB" bin_size txt_size)
        true
        (bin_size * 4 <= txt_size))
    [ small_graph 96 96; Generators.wheel 96 ]

let count_spec = Stateful.count ~limit:1

let labeled_graph seed n =
  let g = small_graph seed n in
  Digraph.with_labels g (fun e -> Hashtbl.hash (e.Digraph.id, seed) mod 2)

let test_store_cdl_roundtrip () =
  let g = labeled_graph 7 24 in
  let cdl = Cdl.build ~seed:7 g count_spec ~metrics:(Metrics.create ()) in
  let labels = build_labels g in
  let path = temp_path ".bin" in
  Store.save path labels ~cdl:(count_spec.Stateful.q_size, count_spec.Stateful.start, Cdl.labels cdl);
  let st = Store.open_ path in
  check_bool "has cdl" true (Store.has_cdl st);
  check_int "q_size" count_spec.Stateful.q_size (Store.q_size st);
  check_int "start" count_spec.Stateful.start (Store.start_state st);
  check_int "cdl records" (Digraph.n g * count_spec.Stateful.q_size) (Store.cdl_count st);
  let src = Query.of_store st in
  let n = Digraph.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      for q = 0 to count_spec.Stateful.q_size - 1 do
        check_int "CDL = in-memory sdec" (Cdl.sdec cdl ~q ~src:u ~dst:v)
          (Query.answer src (Query.Cdl { u; v; q }))
      done
    done
  done

let test_store_rejects_corruption () =
  let g = small_graph 13 32 in
  let labels = build_labels g in
  let path = temp_path ".bin" in
  Store.save path labels;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* flip a bit in the last record's bytes (record data ends the file) *)
  let flipped = Bytes.of_string data in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 0x10));
  let corrupt = temp_path ".bin" in
  let oc = open_out_bin corrupt in
  output_bytes oc flipped;
  close_out oc;
  let st = Store.open_ corrupt in
  let tripped = ref false in
  (try
     for v = 0 to Store.n st - 1 do
       ignore (Store.dist_label st v)
     done
   with Store.Error (Store.Checksum_mismatch { what; _ }) ->
     check_bool "shard checksum" true (String.equal what "shard");
     tripped := true);
  check_bool "corrupted byte detected, not served" true !tripped;
  (* bad magic is a format error, not garbage *)
  let bad = temp_path ".bin" in
  let oc = open_out_bin bad in
  output_string oc "NOTASTORE";
  close_out oc;
  check_bool "bad magic rejected" true
    (try
       ignore (Store.open_ bad);
       false
     with Store.Error (Store.Format_error _) -> true)

let test_store_rejects_index_corruption () =
  let g = small_graph 17 32 in
  let labels = build_labels g in
  let path = temp_path ".bin" in
  Store.save ~shard_size:4 path labels;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* flip a byte in the record index: offsets live right after the pool,
     so corrupt a byte ~40% into the file, before record data *)
  let flipped = Bytes.of_string data in
  let target = Bytes.length flipped * 2 / 5 in
  Bytes.set flipped target (Char.chr (Char.code (Bytes.get flipped target) lxor 0x01));
  let corrupt = temp_path ".bin" in
  let oc = open_out_bin corrupt in
  output_bytes oc flipped;
  close_out oc;
  (* open may already reject (truncation); if it opens, every label read
     must either succeed with the exact original label or raise Error *)
  match Store.open_ corrupt with
  | exception Store.Error _ -> ()
  | st ->
      Array.iteri
        (fun i la ->
          match Store.dist_label st i with
          | la' -> check_bool "surviving label is exact" true (Labeling.equal la la')
          | exception Store.Error _ -> ())
        labels

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_lru () =
  let c = Cache.create 2 in
  check_int "miss on empty" Cache.absent (Cache.find c 1);
  Cache.add c 1 100;
  Cache.add c 2 200;
  check_int "hit 1" 100 (Cache.find c 1);
  (* 1 is now most-recent; adding 3 evicts 2 *)
  Cache.add c 3 300;
  check_int "2 evicted" Cache.absent (Cache.find c 2);
  check_int "1 kept" 100 (Cache.find c 1);
  check_int "3 kept" 300 (Cache.find c 3);
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c);
  check_int "evictions" 1 (Cache.evictions c);
  let m = Metrics.create () in
  Cache.flush c m;
  check_int "metrics hits" 3 (Metrics.cache_hits m);
  check_int "metrics misses" 2 (Metrics.cache_misses m);
  check_int "metrics evictions" 1 (Metrics.cache_evictions m);
  check_int "counters reset" 0 (Cache.hits c)

let test_cache_update_refreshes () =
  let c = Cache.create 2 in
  Cache.add c 1 10;
  Cache.add c 2 20;
  Cache.add c 1 11;
  (* refresh 1: now 2 is least-recent *)
  Cache.add c 3 30;
  check_int "2 evicted" Cache.absent (Cache.find c 2);
  check_int "1 updated" 11 (Cache.find c 1);
  check_int "3 present" 30 (Cache.find c 3)

let test_cache_disabled () =
  let c = Cache.create 0 in
  Cache.add c 1 10;
  check_int "capacity 0 never caches" Cache.absent (Cache.find c 1);
  check_int "no evictions" 0 (Cache.evictions c)

let test_cached_answers_match_uncached () =
  let g = small_graph 19 32 in
  let labels = build_labels g in
  let path = temp_path ".bin" in
  Store.save path labels;
  let src = Query.of_store (Store.open_ path) in
  let cache = Cache.create 64 in
  let n = Digraph.n g in
  for pass = 1 to 2 do
    ignore pass;
    for u = 0 to n - 1 do
      let q = Query.Dist { u; v = (u + 7) mod n } in
      check_int "cached = uncached" (Query.answer src q) (Query.answer ~cache src q)
    done
  done;
  check_bool "second pass hits" true (Cache.hits cache > 0)

(* ------------------------------------------------------------------ *)
(* Query parsing *)

let test_query_parse_errors () =
  let labels = build_labels (small_graph 23 16) in
  let src = Query.of_text labels in
  let expect_err needle line =
    match Query.parse src line with
    | Ok _ -> Alcotest.fail (Printf.sprintf "parse accepted %S" line)
    | Error msg ->
        let contains =
          let nl = String.length needle and ml = String.length msg in
          let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
          go 0
        in
        check_bool (Printf.sprintf "%S error mentions %S (got %S)" line needle msg) true
          contains
  in
  (match Query.parse src "DIST 0 5" with
  | Ok (Query.Dist { u = 0; v = 5 }) -> ()
  | _ -> Alcotest.fail "DIST 0 5 should parse");
  expect_err "u" "DIST x 5";
  expect_err "v" "DIST 0 99";
  expect_err "2 fields" "DIST 0 1 2";
  expect_err "no constrained labels" "CDL 0 1 2";
  expect_err "unknown op" "NEAREST 0 1";
  expect_err "empty" "   "

(* ------------------------------------------------------------------ *)
(* Server *)

let test_server_stream () =
  let g = labeled_graph 29 20 in
  let labels = build_labels g in
  let cdl = Cdl.build ~seed:29 g count_spec ~metrics:(Metrics.create ()) in
  let path = temp_path ".bin" in
  Store.save path labels
    ~cdl:(count_spec.Stateful.q_size, count_spec.Stateful.start, Cdl.labels cdl);
  let src = Query.of_store (Store.open_ path) in
  let input = temp_path ".q" in
  let oc = open_out input in
  output_string oc "DIST 0 7\nCDL 3 9 2\n\nDIST bogus 1\nDIST 1 0\n";
  close_out oc;
  let out_path = temp_path ".a" in
  let ic = open_in input and oc = open_out out_path in
  let stats = Server.run ~cache:(Cache.create 8) src ic oc in
  close_in ic;
  close_out oc;
  check_int "answered" 3 stats.Server.answered;
  check_int "errors" 1 stats.Server.errors;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = Array.of_list (List.rev !lines) in
  check_int "one line per query" 4 (Array.length lines);
  let d = Shortest_path.dijkstra g 0 in
  check_bool "DIST 0 7 = oracle" true
    (String.equal lines.(0) (Query.print_answer d.(7)));
  check_bool "CDL 3 9 2 = sdec" true
    (String.equal lines.(1) (Query.print_answer (Cdl.sdec cdl ~q:2 ~src:3 ~dst:9)));
  check_bool "malformed line answered with ERR" true
    (String.length lines.(2) > 4 && String.equal (String.sub lines.(2) 0 4) "ERR ")

(* the PR's acceptance gate: a 10^5-query mixed DIST+CDL stream served
   from a persisted store, every answer equal to the oracle *)
let test_server_large_stream () =
  let g = labeled_graph 31 24 in
  let labels = build_labels g in
  let cdl = Cdl.build ~seed:31 g count_spec ~metrics:(Metrics.create ()) in
  let path = temp_path ".bin" in
  Store.save path labels
    ~cdl:(count_spec.Stateful.q_size, count_spec.Stateful.start, Cdl.labels cdl);
  let src = Query.of_store (Store.open_ path) in
  let n = Digraph.n g in
  let total = 100_000 in
  let rng = Random.State.make [| 0xe51 |] in
  let queries =
    Array.init total (fun _ ->
        let u = Random.State.int rng n and v = Random.State.int rng n in
        if Random.State.bool rng then Query.Dist { u; v }
        else Query.Cdl { u; v; q = Random.State.int rng count_spec.Stateful.q_size })
  in
  let qfile = temp_path ".q" and afile = temp_path ".a" in
  let oc = open_out qfile in
  Array.iter
    (fun q ->
      output_string oc
        (match q with
        | Query.Dist { u; v } -> Printf.sprintf "DIST %d %d\n" u v
        | Query.Cdl { u; v; q } -> Printf.sprintf "CDL %d %d %d\n" u v q))
    queries;
  close_out oc;
  let ic = open_in qfile and oc = open_out afile in
  let cache = Cache.create 256 in
  let stats = Server.run ~cache ~flush_each:false src ic oc in
  close_in ic;
  close_out oc;
  check_int "all answered" total stats.Server.answered;
  check_int "no errors" 0 stats.Server.errors;
  let dij = Array.init n (fun u -> Shortest_path.dijkstra g u) in
  let ic = open_in afile in
  Array.iteri
    (fun i q ->
      let line = input_line ic in
      let expected =
        match q with
        | Query.Dist { u; v } -> dij.(u).(v)
        | Query.Cdl { u; v; q } -> Cdl.sdec cdl ~q ~src:u ~dst:v
      in
      if not (String.equal line (Query.print_answer expected)) then
        Alcotest.failf "query %d: served %S, oracle %s" i line (Query.print_answer expected))
    queries;
  close_in ic;
  check_bool "hot pairs hit the cache" true (Cache.hits cache > 0)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_bitio_roundtrip; prop_codec_roundtrip; prop_text_roundtrip ]
  in
  Alcotest.run "repro_serve"
    [
      ( "bitio",
        [
          Alcotest.test_case "fields and varints" `Quick test_bitio_fields;
          Alcotest.test_case "boundary widths and varint max" `Quick test_bitio_boundaries;
          Alcotest.test_case "unaligned contents" `Quick test_bitio_unaligned_contents;
        ] );
      ( "codec",
        [
          Alcotest.test_case "inf sentinels, empty label" `Quick test_codec_inf_and_empty;
          Alcotest.test_case "zigzag extremes" `Quick test_codec_zigzag_extremes;
        ] );
      ( "text format",
        [
          Alcotest.test_case "roundtrip via Dl.save_text" `Quick test_text_store_roundtrip;
          Alcotest.test_case "typed parse error with line" `Quick test_text_store_parse_error;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip + oracle" `Quick test_store_roundtrip;
          Alcotest.test_case ">=4x smaller than text" `Quick test_store_smaller_than_text;
          Alcotest.test_case "cdl section" `Quick test_store_cdl_roundtrip;
          Alcotest.test_case "record corruption rejected" `Quick test_store_rejects_corruption;
          Alcotest.test_case "index corruption contained" `Quick
            test_store_rejects_index_corruption;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction + counters" `Quick test_cache_lru;
          Alcotest.test_case "refresh on re-add" `Quick test_cache_update_refreshes;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "cached = uncached" `Quick test_cached_answers_match_uncached;
        ] );
      ( "query", [ Alcotest.test_case "parse errors name fields" `Quick test_query_parse_errors ] );
      ( "server",
        [
          Alcotest.test_case "stream protocol" `Quick test_server_stream;
          Alcotest.test_case "1e5 mixed stream = oracle" `Slow test_server_large_stream;
        ] );
      ("properties", qsuite);
    ]
