(* Unit tests for the model-compliance lint (tools/lint): one positive
   and one negative fixture per rule, scoping, and the baseline
   workflow (suppression, exact counts, stale detection). *)

module Lint = Repro_lint.Lint_core

let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* lint a fixture source as if it lived at [file] *)
let findings ?(file = "lib/congest/fixture.ml") src =
  match Lint.lint_source ~file src with
  | Ok fs -> fs
  | Error msg -> Alcotest.failf "fixture did not parse: %s" msg

let rules_of ?file src = List.map (fun f -> f.Lint.rule) (findings ?file src)

let flags rule ?file src =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags %S" rule src)
    true
    (List.mem rule (rules_of ?file src))

let clean rule ?file src =
  Alcotest.(check bool)
    (Printf.sprintf "%s accepts %S" rule src)
    false
    (List.mem rule (rules_of ?file src))

(* ------------------------------------------------------------------ *)
(* One positive / one negative fixture per rule *)

let test_unseeded_random () =
  flags "unseeded-random" "let x = Random.int 10";
  flags "unseeded-random" "let () = Random.self_init ()";
  flags "unseeded-random" "let s = Random.State.make_self_init ()";
  clean "unseeded-random" "let x = Random.State.int rng 10";
  clean "unseeded-random" "let s = Random.State.make [| seed |]"

let test_ambient_env () =
  flags "ambient-env" "let t = Sys.time ()";
  flags "ambient-env" "let h = Sys.getenv \"HOME\"";
  flags "ambient-env" "let t = Unix.gettimeofday ()";
  clean "ambient-env" "let n = Sys.word_size";
  clean "ambient-env" "let t = now ()"

let test_unsafe_escape () =
  flags "unsafe-escape" "let x = Obj.magic y";
  flags "unsafe-escape" "let s = Marshal.to_string v []";
  clean "unsafe-escape" "let x = magic y"

let test_lib_abort () =
  flags "lib-abort" "let f () = failwith \"boom\"";
  flags "lib-abort" "let f = function Some x -> x | None -> assert false";
  clean "lib-abort" "let f () = invalid_arg \"f: bad input\"";
  (* ordinary asserts are fine: they carry the condition *)
  clean "lib-abort" "let f x = assert (x > 0)";
  (* the rule only binds library code *)
  clean "lib-abort" ~file:"bin/fixture.ml" "let f () = failwith \"cli usage\"";
  clean "lib-abort" ~file:"test/fixture.ml" "let f () = failwith \"test\""

let test_catch_all () =
  flags "catch-all" "let x = try f () with _ -> 0";
  clean "catch-all" "let x = try f () with Not_found -> 0";
  (* binding the exception is allowed: it can be inspected or re-raised *)
  clean "catch-all" "let x = try f () with e -> raise e"

let test_poly_compare () =
  flags "poly-compare" "let s = List.sort compare xs";
  flags "poly-compare" "let c = compare a b";
  flags "poly-compare" "let c = Stdlib.compare a b";
  clean "poly-compare" "let s = List.sort Int.compare xs";
  clean "poly-compare" "let c = String.compare a b";
  (* scoped to lib/congest: approximation is too coarse elsewhere *)
  clean "poly-compare" ~file:"lib/core/fixture.ml" "let s = List.sort compare xs"

let test_hashtbl_order () =
  flags "hashtbl-order" "let () = Hashtbl.iter f tbl";
  flags "hashtbl-order" "let x = Hashtbl.fold f tbl 0";
  clean "hashtbl-order" "let x = Hashtbl.find tbl k";
  clean "hashtbl-order" ~file:"lib/treedec/fixture.ml" "let () = Hashtbl.iter f tbl"

let test_finding_positions () =
  match findings "let a = 1\nlet b = Random.int 4" with
  | [ f ] ->
      check_int "line" 2 f.Lint.line;
      check_int "col" 8 f.Lint.col;
      Alcotest.(check string) "file" "lib/congest/fixture.ml" f.Lint.file
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_nested_expressions_are_walked () =
  flags "unseeded-random"
    "let f xs = List.map (fun x -> match x with Some y -> y + Random.int 3 | None -> 0) xs"

let test_rule_list_is_consistent () =
  check_int "every rule documented" (List.length Lint.rules) (List.length Lint.rule_ids);
  List.iter
    (fun (id, descr) ->
      check_bool (id ^ " has description") true (String.length descr > 0))
    Lint.rules

(* ------------------------------------------------------------------ *)
(* Baseline workflow *)

let two_aborts = "let f () = failwith \"a\"\nlet g () = failwith \"b\""

let test_baseline_parse () =
  match
    Lint.parse_baseline
      "# comment\n\nlib-abort lib/core/dp.ml 4 # unreachable arms\n"
  with
  | Ok [ e ] ->
      Alcotest.(check string) "rule" "lib-abort" e.Lint.b_rule;
      Alcotest.(check string) "file" "lib/core/dp.ml" e.Lint.b_file;
      check_int "count" 4 e.Lint.count;
      Alcotest.(check string) "why" "unreachable arms" e.Lint.justification
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error msgs -> Alcotest.failf "parse failed: %s" (String.concat "; " msgs)

let test_baseline_rejects_garbage () =
  let bad text = Alcotest.(check bool) text true (Result.is_error (Lint.parse_baseline text)) in
  bad "no-such-rule lib/a.ml 1 # why";
  bad "lib-abort lib/a.ml 0 # why";
  bad "lib-abort lib/a.ml one # why";
  bad "lib-abort lib/a.ml 1";
  (* justification is mandatory *)
  bad "lib-abort lib/a.ml 1 # why\nlib-abort lib/a.ml 2 # dup"

let entry rule file count =
  { Lint.b_rule = rule; b_file = file; count; justification = "test" }

let test_baseline_suppresses_exact_count () =
  let fs = findings two_aborts in
  check_int "two findings" 2 (List.length fs);
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 2 ] fs in
  check_int "all suppressed" 0 (List.length out.Lint.fresh);
  check_int "nothing stale" 0 (List.length out.Lint.stale)

let test_baseline_reports_excess () =
  let fs = findings two_aborts in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 1 ] fs in
  (* more findings than baselined: the whole group resurfaces *)
  check_int "excess reported" 2 (List.length out.Lint.fresh);
  check_int "nothing stale" 0 (List.length out.Lint.stale)

let test_baseline_detects_stale () =
  let fs = findings "let f () = failwith \"a\"" in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 2 ] fs in
  check_int "suppressed" 0 (List.length out.Lint.fresh);
  (match out.Lint.stale with
  | [ (e, actual) ] ->
      check_int "expected" 2 e.Lint.count;
      check_int "actual" 1 actual
  | l -> Alcotest.failf "expected one stale entry, got %d" (List.length l));
  (* an entry for a file with no findings at all is stale too *)
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/other.ml" 1 ] fs in
  check_int "unmatched entry stale" 1 (List.length out.Lint.stale);
  check_int "finding reported" 1 (List.length out.Lint.fresh)

let test_baseline_is_per_rule_and_file () =
  let fs = findings "let f () = failwith \"a\"\nlet s = List.sort compare xs" in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 1 ] fs in
  (* the poly-compare finding is not covered by the lib-abort entry *)
  check_int "other rule still fresh" 1 (List.length out.Lint.fresh);
  Alcotest.(check string) "rule" "poly-compare" (List.hd out.Lint.fresh).Lint.rule

let test_parse_error_is_reported () =
  check_bool "syntax error surfaces" true
    (Result.is_error (Lint.lint_source ~file:"lib/broken.ml" "let let let"))

let () =
  Alcotest.run "repro_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "unseeded-random" `Quick test_unseeded_random;
          Alcotest.test_case "ambient-env" `Quick test_ambient_env;
          Alcotest.test_case "unsafe-escape" `Quick test_unsafe_escape;
          Alcotest.test_case "lib-abort" `Quick test_lib_abort;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "positions" `Quick test_finding_positions;
          Alcotest.test_case "nested expressions" `Quick test_nested_expressions_are_walked;
          Alcotest.test_case "rule list" `Quick test_rule_list_is_consistent;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "parse" `Quick test_baseline_parse;
          Alcotest.test_case "rejects garbage" `Quick test_baseline_rejects_garbage;
          Alcotest.test_case "suppresses exact count" `Quick test_baseline_suppresses_exact_count;
          Alcotest.test_case "reports excess" `Quick test_baseline_reports_excess;
          Alcotest.test_case "detects stale" `Quick test_baseline_detects_stale;
          Alcotest.test_case "per rule and file" `Quick test_baseline_is_per_rule_and_file;
          Alcotest.test_case "parse error" `Quick test_parse_error_is_reported;
        ] );
    ]
