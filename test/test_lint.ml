(* Unit tests for the model-compliance lint (tools/lint): one positive
   and one negative fixture per rule, scoping, the interprocedural pass
   (call graph, effect summaries, node-locality / send-discipline), and
   the baseline workflow (suppression, exact counts, stale detection,
   --update-baseline rendering). *)

module Lint = Repro_lint.Lint_core
module Interproc = Repro_lint.Interproc
module Cg = Repro_lint.Callgraph
module Effects = Repro_lint.Effects
module Domains = Repro_lint.Domains
module Alloc = Repro_lint.Alloc
module Widths = Repro_lint.Widths
module Bandwidth = Repro_lint.Bandwidth

let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* lint a fixture source as if it lived at [file] *)
let findings ?(file = "lib/congest/fixture.ml") src =
  match Lint.lint_source ~file src with
  | Ok fs -> fs
  | Error msg -> Alcotest.failf "fixture did not parse: %s" msg

let rules_of ?file src = List.map (fun f -> f.Lint.rule) (findings ?file src)

let flags rule ?file src =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags %S" rule src)
    true
    (List.mem rule (rules_of ?file src))

let clean rule ?file src =
  Alcotest.(check bool)
    (Printf.sprintf "%s accepts %S" rule src)
    false
    (List.mem rule (rules_of ?file src))

(* ------------------------------------------------------------------ *)
(* One positive / one negative fixture per rule *)

let test_unseeded_random () =
  flags "unseeded-random" "let x = Random.int 10";
  flags "unseeded-random" "let () = Random.self_init ()";
  flags "unseeded-random" "let s = Random.State.make_self_init ()";
  clean "unseeded-random" "let x = Random.State.int rng 10";
  clean "unseeded-random" "let s = Random.State.make [| seed |]"

let test_ambient_env () =
  flags "ambient-env" "let t = Sys.time ()";
  flags "ambient-env" "let h = Sys.getenv \"HOME\"";
  flags "ambient-env" "let t = Unix.gettimeofday ()";
  clean "ambient-env" "let n = Sys.word_size";
  clean "ambient-env" "let t = now ()"

let test_unsafe_escape () =
  flags "unsafe-escape" "let x = Obj.magic y";
  flags "unsafe-escape" "let s = Marshal.to_string v []";
  clean "unsafe-escape" "let x = magic y"

let test_lib_abort () =
  flags "lib-abort" "let f () = failwith \"boom\"";
  flags "lib-abort" "let f = function Some x -> x | None -> assert false";
  clean "lib-abort" "let f () = invalid_arg \"f: bad input\"";
  (* ordinary asserts are fine: they carry the condition *)
  clean "lib-abort" "let f x = assert (x > 0)";
  (* the rule only binds library code *)
  clean "lib-abort" ~file:"bin/fixture.ml" "let f () = failwith \"cli usage\"";
  clean "lib-abort" ~file:"test/fixture.ml" "let f () = failwith \"test\""

let test_catch_all () =
  flags "catch-all" "let x = try f () with _ -> 0";
  clean "catch-all" "let x = try f () with Not_found -> 0";
  (* binding the exception is allowed: it can be inspected or re-raised *)
  clean "catch-all" "let x = try f () with e -> raise e"

let test_poly_compare () =
  flags "poly-compare" "let s = List.sort compare xs";
  flags "poly-compare" "let c = compare a b";
  flags "poly-compare" "let c = Stdlib.compare a b";
  clean "poly-compare" "let s = List.sort Int.compare xs";
  clean "poly-compare" "let c = String.compare a b";
  (* scoped to lib/congest: approximation is too coarse elsewhere *)
  clean "poly-compare" ~file:"lib/core/fixture.ml" "let s = List.sort compare xs"

let test_hashtbl_order () =
  flags "hashtbl-order" "let () = Hashtbl.iter f tbl";
  flags "hashtbl-order" "let x = Hashtbl.fold f tbl 0";
  clean "hashtbl-order" "let x = Hashtbl.find tbl k";
  clean "hashtbl-order" ~file:"lib/treedec/fixture.ml" "let () = Hashtbl.iter f tbl"

let test_finding_positions () =
  match findings "let a = 1\nlet b = Random.int 4" with
  | [ f ] ->
      check_int "line" 2 f.Lint.line;
      check_int "col" 8 f.Lint.col;
      Alcotest.(check string) "file" "lib/congest/fixture.ml" f.Lint.file
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_nested_expressions_are_walked () =
  flags "unseeded-random"
    "let f xs = List.map (fun x -> match x with Some y -> y + Random.int 3 | None -> 0) xs"

let test_rule_list_is_consistent () =
  check_int "every rule documented" (List.length Lint.rules) (List.length Lint.rule_ids);
  List.iter
    (fun (id, descr) ->
      check_bool (id ^ " has description") true (String.length descr > 0))
    Lint.rules

(* ------------------------------------------------------------------ *)
(* Interprocedural pass: call graph, effects, locality/send rules *)

(* parse a set of (file, source) pairs and run every interprocedural rule *)
let interproc sources =
  Interproc.analyze
    (List.map
       (fun (file, src) ->
         match Lint.parse_source ~file src with
         | Ok s -> (file, s)
         | Error msg -> Alcotest.failf "fixture %s did not parse: %s" file msg)
       sources)

let interproc_findings sources = snd (interproc sources)

let has_finding rule substring fs =
  List.exists
    (fun (f : Lint.finding) ->
      f.Lint.rule = rule
      &&
      let msg = f.Lint.message and n = String.length substring in
      let rec at i = i + n <= String.length msg && (String.sub msg i n = substring || at (i + 1)) in
      at 0)
    fs

(* the three-file escape: algo's step -> Helper.consult -> State.lookup
   -> State.table, a module-level Hashtbl *)
let escape_sources =
  [
    ("fx/state.ml", "let table = Hashtbl.create 16\nlet lookup v = Hashtbl.find_opt table v");
    ("fx/helper.ml", "let consult v = match State.lookup v with Some d -> d | None -> 0");
    ( "fx/algo.ml",
      "let run graph =\n\
      \  let init _node = 0 in\n\
      \  let step node st _inbox = st + Helper.consult node in\n\
      \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
  ]

let test_interproc_escape_chain () =
  let fs = interproc_findings escape_sources in
  check_bool "node-locality fires" true (has_finding "node-locality" "State.table" fs);
  (* the full reachability chain is printed, not just the endpoint *)
  check_bool "chain printed" true
    (has_finding "node-locality" "step -> Helper.consult -> State.lookup -> State.table" fs);
  (* the finding anchors at the callback site in algo.ml *)
  check_bool "anchored at callback" true
    (List.for_all (fun (f : Lint.finding) -> f.Lint.file = "fx/algo.ml") fs)

let test_interproc_clean_twin () =
  (* same shape, but the table is created in init and threaded through *)
  let fs =
    interproc_findings
      [
        ( "fx/state.ml",
          "let make () = Hashtbl.create 16\nlet lookup t v = Hashtbl.find_opt t v" );
        ("fx/helper.ml", "let consult t v = State.lookup t v");
        ( "fx/algo.ml",
          "let run graph =\n\
          \  let init _node = State.make () in\n\
          \  let step node st _inbox = ignore (Helper.consult st node); st in\n\
          \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
      ]
  in
  check_int "clean twin has no findings" 0 (List.length fs)

let test_interproc_send_discipline () =
  let fs =
    interproc_findings
      [
        ( "fx/algo.ml",
          "let run graph m =\n\
          \  let init _node = 0 in\n\
          \  let step _node st inbox = Metrics.add_words m (List.length inbox); st in\n\
          \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
      ]
  in
  check_bool "send-discipline fires" true (has_finding "send-discipline" "Metrics.add_words" fs);
  let clean =
    interproc_findings
      [
        ( "fx/algo.ml",
          "let run graph =\n\
          \  let init _node = 0 in\n\
          \  let step _node st inbox = st + List.length inbox in\n\
          \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
      ]
  in
  check_int "clean twin has no findings" 0 (List.length clean)

let test_interproc_wrapped_metrics_path () =
  (* library-wrapper qualification still matches the Metrics charge *)
  let fs =
    interproc_findings
      [
        ( "fx/algo.ml",
          "let run graph m =\n\
          \  let init _node = 0 in\n\
          \  let step _node st _inbox = Repro_congest.Metrics.add_messages m 1; st in\n\
          \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
      ]
  in
  check_bool "wrapped path flagged" true
    (has_finding "send-discipline" "Repro_congest.Metrics.add_messages" fs)

let test_interproc_alias_resolution () =
  (* a module alias must not launder the reference *)
  let fs =
    interproc_findings
      [
        ("fx/state.ml", "let table = Hashtbl.create 16\nlet lookup v = Hashtbl.find_opt table v");
        ( "fx/algo.ml",
          "module S = State\n\
           let run graph =\n\
          \  let init _node = 0 in\n\
          \  let step node st _inbox = ignore (S.lookup node); st in\n\
          \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
      ]
  in
  check_bool "alias resolved" true (has_finding "node-locality" "State.table" fs)

let test_interproc_non_callback_is_exempt () =
  (* module-level globals are fine for coordinator-side code: only
     per-node callbacks are confined *)
  let fs =
    interproc_findings
      [
        ("fx/state.ml", "let table = Hashtbl.create 16\nlet lookup v = Hashtbl.find_opt table v");
        ("fx/main.ml", "let report () = State.lookup 0");
      ]
  in
  check_int "coordinator code unflagged" 0 (List.length fs)

let test_callgraph_shape () =
  let cg, _ = interproc escape_sources in
  check_int "three files" 3 (List.length cg.Cg.files);
  (* the callback site was collected with its labels *)
  let labels = List.map (fun cb -> cb.Cg.cb_label) cg.Cg.callbacks in
  check_bool "init collected" true (List.mem "init" labels);
  check_bool "step collected" true (List.mem "step" labels);
  (* cross-file edge: helper.ml#consult calls state.ml#lookup *)
  match Cg.find cg { Cg.s_file = "fx/helper.ml"; s_path = "consult" } with
  | None -> Alcotest.fail "consult not in the graph"
  | Some b ->
      check_bool "cross-file call resolved" true
        (List.exists
           (fun (s : Cg.sym) -> s.Cg.s_file = "fx/state.ml" && s.Cg.s_path = "lookup")
           b.Cg.calls)

let test_effect_summaries () =
  let cg, _ =
    interproc
      [
        ( "fx/state.ml",
          "let counter = ref 0\nlet bump () = incr counter\nlet read () = !counter" );
        ("fx/mid.ml", "let tick () = State.bump ()");
        ("fx/io.ml", "let log msg = print_endline msg\nlet boom () = failwith \"boom\"");
      ]
  in
  let eff = Effects.summarize cg in
  let summary file path =
    match Effects.find eff { Cg.s_file = file; s_path = path } with
    | Some s -> s
    | None -> Alcotest.failf "no summary for %s#%s" file path
  in
  (* direct effects *)
  check_bool "bump mutates" false (Cg.Sym_set.is_empty (summary "fx/state.ml" "bump").Effects.mutates_global);
  check_bool "read reads" false (Cg.Sym_set.is_empty (summary "fx/state.ml" "read").Effects.reads_global);
  check_bool "log does io" true (summary "fx/io.ml" "log").Effects.performs_io;
  check_bool "boom raises" true (summary "fx/io.ml" "boom").Effects.raises_untyped;
  (* transitive closure across files *)
  check_bool "tick mutates transitively" false
    (Cg.Sym_set.is_empty (summary "fx/mid.ml" "tick").Effects.mutates_global);
  (* and the JSON report mentions the symbol *)
  let json = Effects.to_json cg eff in
  check_bool "json has symbol" true
    (let n = String.length "fx/state.ml#counter" in
     let rec at i =
       i + n <= String.length json
       && (String.sub json i n = "fx/state.ml#counter" || at (i + 1))
     in
     at 0)

(* ------------------------------------------------------------------ *)
(* On-disk fixture directories: the seeded-violation corpus *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_dir name =
  let dir = Filename.concat "lint_fixtures" name in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare
  |> List.map (fun f ->
         let path = Filename.concat dir f in
         (path, read_file path))

let test_fixture_corpus () =
  let rules_in name = List.map (fun (f : Lint.finding) -> f.Lint.rule)
      (interproc_findings (fixture_dir name)) in
  check_bool "node_locality_bad flagged" true (List.mem "node-locality" (rules_in "node_locality_bad"));
  check_int "node_locality_ok clean" 0 (List.length (rules_in "node_locality_ok"));
  check_bool "send_discipline_bad flagged" true
    (List.mem "send-discipline" (rules_in "send_discipline_bad"));
  check_int "send_discipline_ok clean" 0 (List.length (rules_in "send_discipline_ok"))

(* ------------------------------------------------------------------ *)
(* Domain-safety certifier *)

let cg_of sources = fst (interproc sources)

let domain_findings sources = Domains.findings (cg_of sources)

let racy_sources =
  [
    ( "fx/state.ml",
      "let total = ref 0\nlet record k = total := !total + k\nlet read () = !total" );
    ( "fx/algo.ml",
      "let run graph =\n\
      \  let init _node = 0 in\n\
      \  let step node st _inbox = State.record node; st in\n\
      \  My_engine.run graph ~init ~step ~active:(fun _ _ -> true)" );
  ]

let test_domains_classification () =
  let cg =
    cg_of
      (racy_sources
      @ [
          ("fx/counter.ml", "let hits = Atomic.make 0\nlet bump () = Atomic.incr hits");
          ( "fx/config.ml",
            "let table = Hashtbl.create 16\n\
             let () = Hashtbl.replace table 1 \"one\"\n\
             let find k = Hashtbl.find_opt table k" );
        ])
  in
  let class_of file path =
    match
      List.find_opt
        (fun (e : Domains.state_entry) ->
          e.Domains.st_sym.Cg.s_file = file && e.Domains.st_sym.Cg.s_path = path)
        (Domains.classify cg)
    with
    | Some e -> Domains.class_name e.Domains.st_class
    | None -> Alcotest.failf "%s#%s not classified" file path
  in
  (* a named mutator makes the ref racy *)
  Alcotest.(check string) "ref with writer" "racy" (class_of "fx/state.ml" "total");
  (* Atomic is safe by construction, even with a named mutator *)
  Alcotest.(check string) "atomic counter" "domain-safe (atomic)"
    (class_of "fx/counter.ml" "hits");
  (* the anonymous [let ()] initializer does not count as a writer *)
  Alcotest.(check string) "frozen table" "domain-safe (immutable-after-init)"
    (class_of "fx/config.ml" "table")

let test_domains_racy_callback_chain () =
  let fs = domain_findings racy_sources in
  check_bool "domain-safety fires" true (has_finding "domain-safety" "State.total" fs);
  (* the full reachability chain is printed *)
  check_bool "chain printed" true
    (has_finding "domain-safety" "step -> State.record -> State.total" fs);
  check_bool "mutator named" true (has_finding "domain-safety" "mutated by State.record" fs)

let test_domains_region_root () =
  let fs =
    domain_findings
      [
        ("fx/state.ml", "let flag = ref false\nlet set b = flag := b\nlet get () = !flag");
        ("fx/engine.ml", "let run () = State.get () [@@parallel_region]");
      ]
  in
  check_bool "region root fires" true (has_finding "domain-safety" "State.flag" fs);
  check_bool "root described" true (has_finding "domain-safety" "parallel region `Engine.run`" fs)

let test_domains_clean_twins () =
  (* Atomic-guarded counter and immutable-after-init table: no findings
     even though parallel regions reach them *)
  let atomic =
    domain_findings
      [
        ("fx/counter.ml", "let hits = Atomic.make 0\nlet bump () = Atomic.incr hits");
        ("fx/engine.ml", "let run () = Counter.bump () [@@parallel_region]");
      ]
  in
  check_int "atomic clean" 0 (List.length atomic);
  let frozen =
    domain_findings
      [
        ( "fx/config.ml",
          "let table = Hashtbl.create 16\n\
           let () = Hashtbl.replace table 1 \"one\"\n\
           let find k = Hashtbl.find_opt table k" );
        ("fx/engine.ml", "let run v = Config.find v [@@parallel_region]");
      ]
  in
  check_int "frozen clean" 0 (List.length frozen)

let test_domains_json_report () =
  let cg = cg_of racy_sources in
  let json = Domains.to_json cg (Domains.report cg) in
  let contains needle =
    let n = String.length needle in
    let rec at i = i + n <= String.length json && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "schema stamped" true (contains "repro-lint/domains/1");
  check_bool "state entry present" true (contains "fx/state.ml#total");
  check_bool "class rendered" true (contains "\"racy\"")

(* ------------------------------------------------------------------ *)
(* Allocation-discipline pass *)

let hot_sites sources path =
  let reports = Alloc.analyze (cg_of sources) in
  match
    List.find_opt (fun (r : Alloc.hot_report) -> r.Alloc.h_sym.Cg.s_path = path) reports
  with
  | Some r -> List.map (fun (s : Alloc.site) -> Alloc.kind_name s.Alloc.a_kind) r.Alloc.h_sites
  | None -> Alcotest.failf "no hot report for %s" path

let test_alloc_kinds () =
  let src =
    [
      ( "fx/hot.ml",
        "let helper xs = List.map (fun x -> x + 1) xs\n\
         let add3 a b c = a + b + c\n\
         let hot_closure xs x = List.iter (fun y -> ignore (x + y)) xs [@@hot]\n\
         let hot_tuple a b = (a, b) [@@hot]\n\
         let hot_float a b = a +. b [@@hot]\n\
         let hot_variant x = Some x [@@hot]\n\
         let hot_callee xs = helper xs [@@hot]\n\
         let hot_partial a = add3 a 1 [@@hot]" );
    ]
  in
  Alcotest.(check (list string)) "closure" [ "closure" ] (hot_sites src "hot_closure");
  Alcotest.(check (list string)) "tuple" [ "tuple" ] (hot_sites src "hot_tuple");
  Alcotest.(check (list string)) "float box" [ "float-box" ] (hot_sites src "hot_float");
  Alcotest.(check (list string)) "variant" [ "variant" ] (hot_sites src "hot_variant");
  (* helper allocates (List.map + its closure), found via the fixpoint *)
  Alcotest.(check (list string)) "allocating callee" [ "alloc-call" ] (hot_sites src "hot_callee");
  Alcotest.(check (list string)) "partial application" [ "partial-application" ]
    (hot_sites src "hot_partial")

let test_alloc_clean_and_guard () =
  let src =
    [
      ( "fx/hot.ml",
        "let hot_add a b = a + b [@@hot]\n\
         let hot_get arr i = Array.unsafe_get arr i [@@hot]\n\
         let hot_guarded tracing arr i =\n\
        \  if tracing then Printf.printf \"probe %d\\n\" (Array.length arr);\n\
        \  Array.unsafe_get arr i\n\
         [@@hot]\n\
         let hot_chain a b = hot_add a b [@@hot]" );
    ]
  in
  Alcotest.(check (list string)) "pure arithmetic" [] (hot_sites src "hot_add");
  Alcotest.(check (list string)) "array read" [] (hot_sites src "hot_get");
  (* the tracing-guarded Printf is off the hot path by contract *)
  Alcotest.(check (list string)) "guard excluded" [] (hot_sites src "hot_guarded");
  (* calling a certified-clean sibling stays clean *)
  Alcotest.(check (list string)) "clean chain" [] (hot_sites src "hot_chain")

let test_alloc_unmarked_functions_are_exempt () =
  let reports =
    Alloc.analyze (cg_of [ ("fx/a.ml", "let f xs = List.map (fun x -> x + 1) xs") ])
  in
  check_int "no [@@hot], no report" 0 (List.length reports)

let test_alloc_json_report () =
  let cg =
    cg_of [ ("fx/hot.ml", "let hot_tuple a b = (a, b) [@@hot]") ]
  in
  let json = Alloc.to_json (Alloc.analyze cg) in
  let contains needle =
    let n = String.length needle in
    let rec at i = i + n <= String.length json && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "schema stamped" true (contains "repro-lint/alloc/1");
  check_bool "hot symbol present" true (contains "fx/hot.ml#hot_tuple");
  check_bool "site kind present" true (contains "\"tuple\"")

(* the on-disk twin fixtures for both new passes *)
let test_domain_alloc_fixture_corpus () =
  let full name =
    let cg, fs = interproc (fixture_dir name) in
    List.map
      (fun (f : Lint.finding) -> f.Lint.rule)
      (fs @ Domains.findings cg @ Alloc.findings cg)
  in
  check_bool "domain_racy_bad flagged" true (List.mem "domain-safety" (full "domain_racy_bad"));
  check_bool "domain_atomic_ok clean" false (List.mem "domain-safety" (full "domain_atomic_ok"));
  check_bool "domain_frozen_ok clean" false (List.mem "domain-safety" (full "domain_frozen_ok"));
  check_bool "hot_alloc_bad flagged" true (List.mem "hot-alloc" (full "hot_alloc_bad"));
  check_bool "hot_alloc_ok clean" false (List.mem "hot-alloc" (full "hot_alloc_ok"))

(* ------------------------------------------------------------------ *)
(* Width-soundness pass: intervals, guards, codec symmetry *)

let parsed_of sources =
  List.map
    (fun (file, src) ->
      match Lint.parse_source ~file src with
      | Ok s -> (file, s)
      | Error msg -> Alcotest.failf "fixture %s did not parse: %s" file msg)
    sources

let widths_findings sources = Widths.findings (cg_of sources)

let test_widths_truncation () =
  (* a one-sided guard leaves the top of the range open *)
  let fs =
    widths_findings
      [
        ( "fx/pack.ml",
          "let write_bad w v =\n\
          \  if v < 0 then invalid_arg \"neg\";\n\
          \  Bitio.put w ~bits:4 v" );
      ]
  in
  check_bool "width-trunc fires" true (has_finding "width-trunc" "may not fit" fs);
  (* the finding prints the data-flow chain, not just the endpoint *)
  check_bool "data-flow chain printed" true (has_finding "width-trunc" "data-flow:" fs);
  let clean =
    widths_findings
      [
        ( "fx/pack.ml",
          "let write_ok w v =\n\
          \  if v < 0 || v > 15 then invalid_arg \"range\";\n\
          \  Bitio.put w ~bits:4 v" );
      ]
  in
  check_int "two-sided guard discharges" 0 (List.length clean)

let test_widths_range () =
  let fs = widths_findings [ ("fx/pack.ml", "let f w n = Bitio.put w ~bits:n 1") ] in
  check_bool "width-range fires" true (has_finding "width-range" "may leave [0, 30]" fs);
  let clean =
    widths_findings
      [
        ( "fx/pack.ml",
          "let f w n v =\n\
          \  if n < 1 || n > 30 then invalid_arg \"width\";\n\
          \  Bitio.put w ~bits:n (v land ((1 lsl n) - 1))" );
      ]
  in
  check_int "guard plus mask is clean" 0 (List.length clean)

let widths_pair_src ~reader_bits =
  [
    ( "fx/msg.ml",
      Printf.sprintf
        "let write_rec w a b =\n\
        \  Bitio.put w ~bits:8 (a land 255);\n\
        \  Bitio.put w ~bits:16 (b land 65535)\n\
         let read_rec r =\n\
        \  let a = Bitio.get r ~bits:8 in\n\
        \  let b = Bitio.get r ~bits:%d in\n\
        \  (a, b)"
        reader_bits );
  ]

let test_widths_symmetry () =
  let report sources = Widths.analyze (cg_of sources) in
  (match Widths.pairs (report (widths_pair_src ~reader_bits:16)) with
  | [ (w, r, ok) ] ->
      Alcotest.(check string) "writer" "Msg.write_rec" w;
      Alcotest.(check string) "reader" "Msg.read_rec" r;
      check_bool "pair certified symmetric" true ok
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps));
  let fs = Widths.findings_of_report (report (widths_pair_src ~reader_bits:8)) in
  check_bool "codec-mismatch fires" true (has_finding "codec-mismatch" "disagree" fs);
  (* both canonical traces are printed so the diff is actionable *)
  check_bool "traces printed" true (has_finding "codec-mismatch" "writer trace" fs)

let test_widths_dynamic_width_pair () =
  (* the width itself rides in a 6-bit header field: the writer's
     bits_needed certificate and the reader's recovered slot must match *)
  let fs =
    widths_findings
      [
        ( "fx/msg.ml",
          "let write_dyn w v =\n\
          \  if v < 0 then invalid_arg \"neg\";\n\
          \  let n = Bitio.bits_needed v in\n\
          \  if n > 30 then invalid_arg \"wide\";\n\
          \  Bitio.put w ~bits:6 n;\n\
          \  Bitio.put w ~bits:n (v land ((1 lsl n) - 1))\n\
           let read_dyn r =\n\
          \  let n = Bitio.get r ~bits:6 in\n\
          \  if n > 30 then invalid_arg \"corrupt\";\n\
          \  Bitio.get r ~bits:n" );
      ]
  in
  check_int "dynamic-width pair is clean" 0 (List.length fs)

let test_widths_json_report () =
  let json = Widths.to_json (Widths.analyze (cg_of (widths_pair_src ~reader_bits:16))) in
  let contains needle =
    let n = String.length needle in
    let rec at i = i + n <= String.length json && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "schema stamped" true (contains "repro-lint/widths/1");
  check_bool "pair present" true (contains "Msg.write_rec");
  check_bool "symmetry rendered" true (contains "\"symmetric\": true")

let test_widths_fixture_corpus () =
  let rules_in name =
    List.map (fun (f : Lint.finding) -> f.Lint.rule) (widths_findings (fixture_dir name))
  in
  check_bool "width_trunc_bad flagged" true (List.mem "width-trunc" (rules_in "width_trunc_bad"));
  check_bool "width_trunc_bad range flagged" true
    (List.mem "width-range" (rules_in "width_trunc_bad"));
  check_int "width_trunc_ok clean" 0 (List.length (rules_in "width_trunc_ok"));
  check_bool "codec_mismatch_bad flagged" true
    (List.mem "codec-mismatch" (rules_in "codec_mismatch_bad"));
  check_int "codec_mismatch_ok clean" 0 (List.length (rules_in "codec_mismatch_ok"))

(* ------------------------------------------------------------------ *)
(* Bandwidth-soundness pass: verdicts and charge-site certification *)

let bandwidth_report sources =
  let parsed = parsed_of sources in
  Bandwidth.analyze (Cg.build parsed) parsed

let test_bandwidth_verdicts () =
  let r =
    bandwidth_report
      [ ("fx/algo.ml", "module Msg = struct type t = int * int let words _ = 2 end") ]
  in
  (match r.Bandwidth.b_verdicts with
  | [ v ] ->
      Alcotest.(check string) "name" "Algo.Msg" v.Bandwidth.v_name;
      Alcotest.(check string) "kind" "algorithm" v.Bandwidth.v_kind;
      Alcotest.(check string) "content" "2" v.Bandwidth.v_content;
      check_bool "passes" true v.Bandwidth.v_ok
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs));
  check_bool "all pass" true r.Bandwidth.b_all_pass

let test_bandwidth_undercharge () =
  let fs =
    Bandwidth.findings_of_report
      (bandwidth_report
         [ ("fx/algo.ml", "module Msg = struct type t = int * int let words _ = 1 end") ])
  in
  check_bool "undercharge flagged" true (has_finding "bandwidth-sound" "may undercharge" fs)

let test_bandwidth_wrapper () =
  let r =
    bandwidth_report
      [
        ( "fx/wrap.ml",
          "module Wrap (M : sig type t val words : t -> int end) = struct\n\
          \  module X = struct\n\
          \    type t = Data of M.t | Beat\n\
          \    let words = function Beat -> 1 | Data m -> 1 + M.words m\n\
          \  end\n\
           end" );
      ]
  in
  match r.Bandwidth.b_verdicts with
  | [ v ] ->
      Alcotest.(check string) "kind" "wrapper" v.Bandwidth.v_kind;
      Alcotest.(check string) "content" "payload" v.Bandwidth.v_content;
      check_bool "wrapper passes" true v.Bandwidth.v_ok
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_bandwidth_charge_site () =
  (* the rule is scoped to lib/: per-message accounting lives there *)
  let bad =
    Bandwidth.findings_of_report
      (bandwidth_report
         [ ("lib/fx/charge.ml", "let run m snap = Metrics.add_words m (Array.length snap)") ])
  in
  check_bool "unannotated charge flagged" true
    (has_finding "bandwidth-charge" "not annotated [@@charge_site]" bad);
  let ok =
    bandwidth_report
      [
        ( "lib/fx/charge.ml",
          "let run m snap = Metrics.add_words m (Array.length snap) [@@charge_site]" );
      ]
  in
  check_int "annotated charge clean" 0 (List.length ok.Bandwidth.b_findings);
  check_int "site certified" 1 ok.Bandwidth.b_charge_sites

let test_bandwidth_json_report () =
  let json =
    Bandwidth.to_json
      (bandwidth_report
         [ ("fx/algo.ml", "module Msg = struct type t = int let words _ = 1 end") ])
  in
  let contains needle =
    let n = String.length needle in
    let rec at i = i + n <= String.length json && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "schema stamped" true (contains "repro-lint/bandwidth/1");
  check_bool "gate rendered" true (contains "\"all_pass\": true");
  check_bool "verdict present" true (contains "Algo.Msg")

let test_bandwidth_fixture_corpus () =
  let rules_in name =
    List.map
      (fun (f : Lint.finding) -> f.Lint.rule)
      (Bandwidth.findings_of_report (bandwidth_report (fixture_dir name)))
  in
  check_bool "bandwidth_bad flagged" true (List.mem "bandwidth-sound" (rules_in "bandwidth_bad"));
  check_int "bandwidth_ok clean" 0 (List.length (rules_in "bandwidth_ok"))

(* ------------------------------------------------------------------ *)
(* Baseline workflow *)

let two_aborts = "let f () = failwith \"a\"\nlet g () = failwith \"b\""

let test_baseline_parse () =
  match
    Lint.parse_baseline
      "# comment\n\nlib-abort lib/core/dp.ml 4 # unreachable arms\n"
  with
  | Ok [ e ] ->
      Alcotest.(check string) "rule" "lib-abort" e.Lint.b_rule;
      Alcotest.(check string) "file" "lib/core/dp.ml" e.Lint.b_file;
      check_int "count" 4 e.Lint.count;
      Alcotest.(check string) "why" "unreachable arms" e.Lint.justification
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error msgs -> Alcotest.failf "parse failed: %s" (String.concat "; " msgs)

let test_baseline_rejects_garbage () =
  let bad text = Alcotest.(check bool) text true (Result.is_error (Lint.parse_baseline text)) in
  bad "no-such-rule lib/a.ml 1 # why";
  bad "lib-abort lib/a.ml 0 # why";
  bad "lib-abort lib/a.ml one # why";
  bad "lib-abort lib/a.ml 1";
  (* justification is mandatory *)
  bad "lib-abort lib/a.ml 1 # why\nlib-abort lib/a.ml 2 # dup"

let entry rule file count =
  { Lint.b_rule = rule; b_file = file; count; justification = "test"; b_line = 0 }

let test_baseline_suppresses_exact_count () =
  let fs = findings two_aborts in
  check_int "two findings" 2 (List.length fs);
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 2 ] fs in
  check_int "all suppressed" 0 (List.length out.Lint.fresh);
  check_int "nothing stale" 0 (List.length out.Lint.stale)

let test_baseline_reports_excess () =
  let fs = findings two_aborts in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 1 ] fs in
  (* more findings than baselined: the whole group resurfaces *)
  check_int "excess reported" 2 (List.length out.Lint.fresh);
  check_int "nothing stale" 0 (List.length out.Lint.stale)

let test_baseline_detects_stale () =
  let fs = findings "let f () = failwith \"a\"" in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 2 ] fs in
  check_int "suppressed" 0 (List.length out.Lint.fresh);
  (match out.Lint.stale with
  | [ (e, actual) ] ->
      check_int "expected" 2 e.Lint.count;
      check_int "actual" 1 actual
  | l -> Alcotest.failf "expected one stale entry, got %d" (List.length l));
  (* an entry for a file with no findings at all is stale too *)
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/other.ml" 1 ] fs in
  check_int "unmatched entry stale" 1 (List.length out.Lint.stale);
  check_int "finding reported" 1 (List.length out.Lint.fresh)

let test_baseline_is_per_rule_and_file () =
  let fs = findings "let f () = failwith \"a\"\nlet s = List.sort compare xs" in
  let out = Lint.apply_baseline [ entry "lib-abort" "lib/congest/fixture.ml" 1 ] fs in
  (* the poly-compare finding is not covered by the lib-abort entry *)
  check_int "other rule still fresh" 1 (List.length out.Lint.fresh);
  Alcotest.(check string) "rule" "poly-compare" (List.hd out.Lint.fresh).Lint.rule

let test_parse_error_is_reported () =
  check_bool "syntax error surfaces" true
    (Result.is_error (Lint.lint_source ~file:"lib/broken.ml" "let let let"))

(* --update-baseline rendering: keep justifications, mark new groups,
   drop groups with no remaining findings *)

let test_render_baseline_keeps_justifications () =
  let fs = findings two_aborts in
  let old =
    [
      {
        Lint.b_rule = "lib-abort";
        b_file = "lib/congest/fixture.ml";
        count = 1;
        justification = "documented why";
        b_line = 0;
      };
      {
        Lint.b_rule = "hashtbl-order";
        b_file = "lib/gone.ml";
        count = 3;
        justification = "stale";
        b_line = 0;
      };
    ]
  in
  match Lint.parse_baseline (Lint.render_baseline ~old fs) with
  | Error msgs -> Alcotest.failf "rendered baseline does not parse: %s" (String.concat "; " msgs)
  | Ok [ e ] ->
      Alcotest.(check string) "rule" "lib-abort" e.Lint.b_rule;
      check_int "count refreshed" 2 e.Lint.count;
      (* the human-written why survives the rewrite; the vanished group is gone *)
      Alcotest.(check string) "justification kept" "documented why" e.Lint.justification
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let test_render_baseline_marks_new_entries () =
  match Lint.parse_baseline (Lint.render_baseline ~old:[] (findings two_aborts)) with
  | Error msgs -> Alcotest.failf "rendered baseline does not parse: %s" (String.concat "; " msgs)
  | Ok [ e ] -> Alcotest.(check string) "placeholder" "TODO justify" e.Lint.justification
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let test_render_baseline_roundtrip_is_quiet () =
  (* rendering then applying suppresses everything with nothing stale *)
  let fs = findings two_aborts in
  match Lint.parse_baseline (Lint.render_baseline ~old:[] fs) with
  | Error msgs -> Alcotest.failf "rendered baseline does not parse: %s" (String.concat "; " msgs)
  | Ok entries ->
      let out = Lint.apply_baseline entries fs in
      check_int "no fresh" 0 (List.length out.Lint.fresh);
      check_int "no stale" 0 (List.length out.Lint.stale)

let test_baseline_unjustified () =
  let text =
    "hot-alloc lib/congest/engine.ml 3 # the round loop builds per-round message lists\n\
     domain-safety lib/congest/engine.ml 1 # TODO justify\n\
     hashtbl-order lib/congest/det_tbl.ml 2 # todo: look at this later\n"
  in
  match Lint.parse_baseline text with
  | Error msgs -> Alcotest.failf "baseline does not parse: %s" (String.concat "; " msgs)
  | Ok entries -> (
      match Lint.unjustified entries with
      | [ a; b ] ->
          Alcotest.(check string) "first offender" "domain-safety" a.Lint.b_rule;
          check_int "first line number" 2 a.Lint.b_line;
          Alcotest.(check string) "second offender" "hashtbl-order" b.Lint.b_rule;
          check_int "second line number" 3 b.Lint.b_line
      | other -> Alcotest.failf "expected 2 unjustified entries, got %d" (List.length other))

let () =
  Alcotest.run "repro_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "unseeded-random" `Quick test_unseeded_random;
          Alcotest.test_case "ambient-env" `Quick test_ambient_env;
          Alcotest.test_case "unsafe-escape" `Quick test_unsafe_escape;
          Alcotest.test_case "lib-abort" `Quick test_lib_abort;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "positions" `Quick test_finding_positions;
          Alcotest.test_case "nested expressions" `Quick test_nested_expressions_are_walked;
          Alcotest.test_case "rule list" `Quick test_rule_list_is_consistent;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "escape chain" `Quick test_interproc_escape_chain;
          Alcotest.test_case "clean twin" `Quick test_interproc_clean_twin;
          Alcotest.test_case "send discipline" `Quick test_interproc_send_discipline;
          Alcotest.test_case "wrapped metrics path" `Quick test_interproc_wrapped_metrics_path;
          Alcotest.test_case "alias resolution" `Quick test_interproc_alias_resolution;
          Alcotest.test_case "non-callback exempt" `Quick test_interproc_non_callback_is_exempt;
          Alcotest.test_case "callgraph shape" `Quick test_callgraph_shape;
          Alcotest.test_case "effect summaries" `Quick test_effect_summaries;
          Alcotest.test_case "fixture corpus" `Quick test_fixture_corpus;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "parse" `Quick test_baseline_parse;
          Alcotest.test_case "rejects garbage" `Quick test_baseline_rejects_garbage;
          Alcotest.test_case "suppresses exact count" `Quick test_baseline_suppresses_exact_count;
          Alcotest.test_case "reports excess" `Quick test_baseline_reports_excess;
          Alcotest.test_case "detects stale" `Quick test_baseline_detects_stale;
          Alcotest.test_case "per rule and file" `Quick test_baseline_is_per_rule_and_file;
          Alcotest.test_case "parse error" `Quick test_parse_error_is_reported;
          Alcotest.test_case "render keeps justifications" `Quick
            test_render_baseline_keeps_justifications;
          Alcotest.test_case "render marks new entries" `Quick test_render_baseline_marks_new_entries;
          Alcotest.test_case "render roundtrip" `Quick test_render_baseline_roundtrip_is_quiet;
          Alcotest.test_case "unjustified entries" `Quick test_baseline_unjustified;
        ] );
      ( "domains",
        [
          Alcotest.test_case "classification" `Quick test_domains_classification;
          Alcotest.test_case "racy callback chain" `Quick test_domains_racy_callback_chain;
          Alcotest.test_case "region root" `Quick test_domains_region_root;
          Alcotest.test_case "clean twins" `Quick test_domains_clean_twins;
          Alcotest.test_case "json report" `Quick test_domains_json_report;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "allocation kinds" `Quick test_alloc_kinds;
          Alcotest.test_case "clean and guarded" `Quick test_alloc_clean_and_guard;
          Alcotest.test_case "unmarked exempt" `Quick test_alloc_unmarked_functions_are_exempt;
          Alcotest.test_case "json report" `Quick test_alloc_json_report;
          Alcotest.test_case "fixture corpus" `Quick test_domain_alloc_fixture_corpus;
        ] );
      ( "widths",
        [
          Alcotest.test_case "truncation" `Quick test_widths_truncation;
          Alcotest.test_case "width range" `Quick test_widths_range;
          Alcotest.test_case "codec symmetry" `Quick test_widths_symmetry;
          Alcotest.test_case "dynamic width pair" `Quick test_widths_dynamic_width_pair;
          Alcotest.test_case "json report" `Quick test_widths_json_report;
          Alcotest.test_case "fixture corpus" `Quick test_widths_fixture_corpus;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "verdicts" `Quick test_bandwidth_verdicts;
          Alcotest.test_case "undercharge" `Quick test_bandwidth_undercharge;
          Alcotest.test_case "wrapper" `Quick test_bandwidth_wrapper;
          Alcotest.test_case "charge site" `Quick test_bandwidth_charge_site;
          Alcotest.test_case "json report" `Quick test_bandwidth_json_report;
          Alcotest.test_case "fixture corpus" `Quick test_bandwidth_fixture_corpus;
        ] );
    ]
