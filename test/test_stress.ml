(* Randomized stress suite: wider sweeps than the per-module property
   tests, mixing families, orientations, multi-edges and self-loops.
   Everything is validated against a centralized oracle. *)

module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Matching_ref = Repro_graph.Matching_ref
module Girth_ref = Repro_graph.Girth_ref
module Metrics = Repro_congest.Metrics
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Separator = Repro_treedec.Separator
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Stateful = Repro_core.Stateful
module Product = Repro_core.Product
module Cdl = Repro_core.Cdl
module Matching = Repro_core.Matching
module Girth = Repro_core.Girth

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)

(* a zoo of weighted instances, some directed, some with parallel edges
   and self-loops *)
let instance seed =
  let rng = Random.State.make [| seed; 0xabcd |] in
  let base =
    match seed mod 5 with
    | 0 -> Generators.partial_k_tree ~seed (40 + (3 * (seed mod 30))) 2 ~keep:0.5
    | 1 -> Generators.partial_k_tree ~seed (40 + (2 * (seed mod 25))) 3 ~keep:0.6
    | 2 -> Generators.series_parallel ~seed (30 + (2 * (seed mod 20)))
    | 3 -> Generators.grid (3 + (seed mod 3)) (4 + (seed mod 4))
    | _ -> Generators.gnp_connected ~seed (14 + (seed mod 12)) 0.2
  in
  let weighted = Generators.random_weights ~seed ~max_weight:11 base in
  if seed mod 3 = 0 then Generators.bidirect ~seed ~max_weight:11 weighted
  else if seed mod 7 = 1 then begin
    (* sprinkle parallel edges *)
    let extra =
      Array.to_list (Digraph.edges weighted)
      |> List.filter (fun _ -> Random.State.float rng 1.0 < 0.15)
      |> List.map (fun e ->
             (e.Digraph.src, e.Digraph.dst, 1 + Random.State.int rng 11))
    in
    Digraph.create ~directed:false (Digraph.n weighted)
      (extra
      @ (Array.to_list (Digraph.edges weighted)
        |> List.map (fun e -> (e.Digraph.src, e.Digraph.dst, e.Digraph.weight))))
  end
  else weighted

let test_dl_stress () =
  for seed = 0 to 29 do
    let g = instance seed in
    let m = Metrics.create () in
    let report = Build.decompose ~seed g ~metrics:m in
    (match Decomposition.validate report.Build.decomposition with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid decomposition: %s" seed e);
    let labels = Dl.build g report.Build.decomposition ~metrics:m in
    let n = Digraph.n g in
    let rng = Random.State.make [| seed; 0x5117 |] in
    for _ = 1 to 40 do
      let u = Random.State.int rng n in
      let v = Random.State.int rng n in
      check_int
        (Printf.sprintf "seed %d d(%d,%d)" seed u v)
        (Shortest_path.dijkstra g u).(v)
        (Labeling.decode labels.(u) labels.(v))
    done
  done

let test_matching_stress () =
  for seed = 0 to 14 do
    let g = Generators.subdivide (Generators.partial_k_tree ~seed (18 + (2 * seed)) 2 ~keep:0.5) in
    let m = Metrics.create () in
    let r = Matching.run ~seed g ~metrics:m in
    if not (Matching_ref.is_matching (Digraph.skeleton g) r.Matching.mate) then
      Alcotest.failf "seed %d: invalid matching" seed;
    check_int
      (Printf.sprintf "seed %d matching size" seed)
      (Matching_ref.size (Matching_ref.hopcroft_karp (Digraph.skeleton g)))
      r.Matching.size
  done

let test_girth_stress () =
  for seed = 0 to 19 do
    let g = instance seed in
    let m = Metrics.create () in
    let r =
      if Digraph.directed g then Girth.directed ~seed g ~metrics:m
      else Girth.undirected ~mode:`PerEdge ~seed g ~metrics:m
    in
    check_int (Printf.sprintf "seed %d girth" seed) (Girth_ref.girth g) r.Girth.girth
  done

let test_cdl_stress () =
  for seed = 0 to 7 do
    let rng = Random.State.make [| seed; 0xfeed |] in
    let g0 = Generators.partial_k_tree ~seed 14 2 ~keep:0.6 in
    let g =
      Digraph.with_labels
        (Generators.random_weights ~seed ~max_weight:6 g0)
        (fun _ -> Random.State.int rng 3)
    in
    let spec =
      if seed mod 2 = 0 then Stateful.colored ~colors:3 else Stateful.count ~limit:2
    in
    let m = Metrics.create () in
    let cdl = Cdl.build ~dec:(Heuristic.min_fill g0) ~seed g spec ~metrics:m in
    let p = Cdl.product cdl in
    for src = 0 to 13 do
      for dst = 0 to 13 do
        for q = 2 to spec.Stateful.q_size - 1 do
          check_int
            (Printf.sprintf "seed %d q=%d %d->%d" seed q src dst)
            (Product.constrained_distance p ~q ~src ~dst)
            (Cdl.sdec cdl ~q ~src ~dst)
        done
      done
    done
  done

let test_separator_profiles_stress () =
  List.iter
    (fun profile ->
      for seed = 0 to 9 do
        let g = instance seed in
        let sk = Digraph.skeleton g in
        let mask = Array.make (Digraph.n sk) true in
        let cost = Repro_shortcut.Primitives.cost_zero () in
        let sep, _ = Separator.find_separator ~profile ~seed sk ~mask ~x_mask:mask ~cost in
        if not (Separator.is_balanced sk ~mask ~x_mask:mask ~profile sep) then
          Alcotest.failf "profile %s seed %d: unbalanced separator"
            profile.Separator.name seed
      done)
    [ Separator.paper_profile; Separator.practical_profile ]


let test_scale_1024 () =
  (* end-to-end at n=1024: decomposition valid, labels exact on a sample *)
  let g =
    Generators.bidirect ~seed:1024 ~max_weight:9
      (Generators.partial_k_tree ~seed:1024 1024 3 ~keep:0.6)
  in
  let m = Metrics.create () in
  let report = Build.decompose ~seed:2 g ~metrics:m in
  (match Decomposition.validate report.Build.decomposition with
  | Ok () -> ()
  | Error e -> Alcotest.failf "n=1024: %s" e);
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  let rng = Random.State.make [| 1024 |] in
  for _ = 1 to 15 do
    let u = Random.State.int rng 1024 in
    let d = Shortest_path.dijkstra g u in
    let v = Random.State.int rng 1024 in
    check_int (Printf.sprintf "d(%d,%d)" u v) d.(v) (Labeling.decode labels.(u) labels.(v))
  done

let () =
  Alcotest.run "repro_stress"
    [
      ( "stress",
        [
          Alcotest.test_case "distance labeling zoo" `Slow test_dl_stress;
          Alcotest.test_case "matching zoo" `Slow test_matching_stress;
          Alcotest.test_case "girth zoo" `Slow test_girth_stress;
          Alcotest.test_case "cdl zoo" `Slow test_cdl_stress;
          Alcotest.test_case "separator profiles" `Slow test_separator_profiles_stress;
          Alcotest.test_case "scale n=1024" `Slow test_scale_1024;
        ] );
    ]
