(* Cross-module integration tests and edge cases: multigraphs, self-loops,
   paper-profile runs, mode equivalences, and end-to-end pipelines. *)

module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Matching_ref = Repro_graph.Matching_ref
module Girth_ref = Repro_graph.Girth_ref
module Metrics = Repro_congest.Metrics
module Engine = Repro_congest.Engine
module Part = Repro_shortcut.Part
module Pa = Repro_shortcut.Pa
module Decomposition = Repro_treedec.Decomposition
module Heuristic = Repro_treedec.Heuristic
module Separator = Repro_treedec.Separator
module Build = Repro_treedec.Build
module Labeling = Repro_core.Labeling
module Dl = Repro_core.Dl
module Stateful = Repro_core.Stateful
module Product = Repro_core.Product
module Cdl = Repro_core.Cdl
module Matching = Repro_core.Matching
module Girth = Repro_core.Girth

(* audit every CONGEST engine run in this suite: accounting drift raises *)
let () = Repro_congest.Engine.audit_enabled := true

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine edge cases *)

module E = Engine.Make (struct
  type t = int list

  let words = List.length
end)

let test_engine_rejects_oversized_message () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  check_bool "oversize rejected" true
    (try
       ignore
         (E.run sk
            ~init:(fun v -> v = 0)
            ~step:(fun ~round:_ ~node:_ st _ ->
              if st then (false, [ (1, [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ]) else (false, []))
            ~active:Fun.id ~max_words:4 ~metrics:m ~label:"t" ());
       false
     with Invalid_argument _ -> true)

let test_engine_max_rounds_guard () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  check_bool "livelock detected" true
    (try
       ignore
         (E.run sk
            ~init:(fun _ -> ())
            ~step:(fun ~round:_ ~node () _ ->
              ((), if node = 0 then [ (1, [ 1 ]) ] else []))
            ~active:(fun () -> true)
            ~max_rounds:50 ~metrics:m ~label:"t" ());
       false
     with Engine.Round_limit_exceeded { label = "t"; rounds = 50; active_nodes = 2 } -> true)

let test_engine_idle_algorithm_costs_nothing () =
  let sk = Generators.path 3 in
  let m = Metrics.create () in
  let _ =
    E.run sk
      ~init:(fun _ -> ())
      ~step:(fun ~round:_ ~node:_ () _ -> ((), []))
      ~active:(fun () -> false)
      ~metrics:m ~label:"t" ()
  in
  check_int "zero rounds" 0 (Metrics.rounds m)

(* ------------------------------------------------------------------ *)
(* Multigraphs and self-loops through the whole pipeline *)

let test_dl_on_multigraph () =
  (* parallel edges with different weights: DL must pick the lighter *)
  let g =
    Digraph.create ~directed:true 3
      [ (0, 1, 9); (0, 1, 2); (1, 2, 5); (1, 2, 7); (2, 2, 3) ]
  in
  let m = Metrics.create () in
  let labels = Dl.build g (Heuristic.min_fill g) ~metrics:m in
  check_int "uses cheaper parallel edge" 2 (Labeling.decode labels.(0) labels.(1));
  check_int "composed" 7 (Labeling.decode labels.(0) labels.(2))

let test_girth_multigraph_two_cycle () =
  let g = Digraph.create ~directed:false 3 [ (0, 1, 3); (0, 1, 4); (1, 2, 1) ] in
  let m = Metrics.create () in
  let r = Girth.undirected ~mode:`PerEdge g ~metrics:m in
  check_int "parallel pair is the girth" 7 r.Repro_core.Girth.girth

let test_product_respects_multiplicity () =
  let g = Digraph.create_labeled ~directed:false 2 [ (0, 1, 1, 0); (0, 1, 1, 1) ] in
  check_int "p_max" 2 (Product.build g (Stateful.colored ~colors:2)).Product.p_max


let test_cdl_on_multigraph () =
  (* parallel edges with different labels: the constrained distance must
     consider each copy separately (p_max overhead of Theorem 3) *)
  let g =
    Digraph.create_labeled ~directed:false 3
      [ (0, 1, 4, 1); (0, 1, 9, 0); (1, 2, 1, 1) ]
  in
  let c = Stateful.count ~limit:1 in
  let m = Metrics.create () in
  let cdl = Cdl.build ~dec:(Heuristic.min_fill g) g c ~metrics:m in
  let p = Cdl.product cdl in
  (* 0 -> 2 with at most one label-1 edge: must use the heavy label-0
     copy for one hop: 9 + 1 = 10; with the light copy the count hits 2 *)
  let q1 = Stateful.state_index_count c 1 in
  check_int "oracle" (Product.constrained_distance p ~q:q1 ~src:0 ~dst:2)
    (Cdl.sdec cdl ~q:q1 ~src:0 ~dst:2);
  check_int "forced around the label budget" 10 (Cdl.sdec cdl ~q:q1 ~src:0 ~dst:2)

(* ------------------------------------------------------------------ *)
(* Paper profile end-to-end *)

let test_paper_profile_decomposition_is_valid () =
  let g = Generators.partial_k_tree ~seed:41 60 2 ~keep:0.6 in
  let m = Metrics.create () in
  let report = Build.decompose ~profile:Separator.paper_profile ~seed:41 g ~metrics:m in
  (match Decomposition.validate report.Build.decomposition with
  | Ok () -> ()
  | Error e -> Alcotest.failf "paper profile produced invalid decomposition: %s" e);
  (* with the paper constants the threshold fires: one wide bag *)
  check_bool "wide but valid" true (Decomposition.width report.Build.decomposition <= 60)

let test_paper_profile_dl_still_exact () =
  let g = Generators.bidirect ~seed:42 ~max_weight:5 (Generators.k_tree ~seed:42 24 2) in
  let m = Metrics.create () in
  let report = Build.decompose ~profile:Separator.paper_profile ~seed:42 g ~metrics:m in
  let labels = Dl.build g report.Build.decomposition ~metrics:m in
  let d = Shortest_path.dijkstra g 0 in
  for v = 0 to 23 do
    check_int "exact" d.(v) (Labeling.decode labels.(0) labels.(v))
  done

(* ------------------------------------------------------------------ *)
(* Matching mode equivalence *)

let test_matching_faithful_equals_charged () =
  let g = Generators.grid 3 4 in
  let mf = Metrics.create () and mc = Metrics.create () in
  let rf = Matching.run ~mode:`Faithful ~seed:2 g ~metrics:mf in
  let rc = Matching.run ~mode:`Charged ~seed:2 g ~metrics:mc in
  check_int "same size" rf.Matching.size rc.Matching.size;
  Alcotest.(check (array int)) "same matching" rf.Matching.mate rc.Matching.mate;
  check_bool "both exact" true
    (rf.Matching.size = Matching_ref.size (Matching_ref.hopcroft_karp g))

(* ------------------------------------------------------------------ *)
(* PA hybrid routing: a part with large internal diameter prefers the
   Steiner shortcut through the BFS tree *)

let test_pa_shortcut_beats_long_part () =
  (* comb: a path 0..k-1 (the spine) with the part being the two spine
     endpoints plus a long detour — in a cycle, a part of two antipodal
     arcs has internal diameter ~ n/2 but meets quickly through the tree *)
  let n = 64 in
  let g = Generators.cycle n in
  (* part = a long arc covering half the cycle: internal depth ~ n/2;
     the BFS tree from 0 splits the cycle so the Steiner route is ~ n/4 *)
  let arc = Array.init (n / 2) (fun i -> (i + (n / 4)) mod n) in
  let parts = Part.make g [| arc |] in
  let m = Metrics.create () in
  let _, stats =
    Pa.aggregate parts ~op:( + ) ~value:(fun ~part:_ ~vertex -> vertex) ~metrics:m
      ~label:"pa"
  in
  check_bool "bounded by ~half the arc" true
    (stats.Pa.rounds_up + stats.Pa.rounds_down <= n);
  check_bool "nonzero" true (stats.Pa.rounds_up > 0)

let test_pa_delegation_keeps_results_correct () =
  (* heavily shared hub: spider center belongs to every part; each leg is
     a 2-vertex path so the private remainders stay connected *)
  let g =
    Digraph.create ~directed:false 9
      [ (0, 1, 1); (1, 2, 1); (0, 3, 1); (3, 4, 1); (0, 5, 1); (5, 6, 1);
        (0, 7, 1); (7, 8, 1) ]
  in
  let parts =
    Part.make g [| [| 0; 1; 2 |]; [| 0; 3; 4 |]; [| 0; 5; 6 |]; [| 0; 7; 8 |] |]
  in
  check_bool "near disjoint" true (Part.is_near_disjoint parts);
  let m = Metrics.create () in
  let results, _ =
    Pa.aggregate parts ~op:( + ) ~value:(fun ~part:_ ~vertex -> vertex) ~metrics:m
      ~label:"pa"
  in
  Alcotest.(check (array int)) "sums include the shared hub" [| 3; 7; 11; 15 |] results

(* ------------------------------------------------------------------ *)
(* End-to-end: file -> decomposition -> labels -> queries *)

let test_pipeline_from_file () =
  let g0 = Generators.random_weights ~seed:43 ~max_weight:9 (Generators.k_tree ~seed:43 20 2) in
  let path = Filename.temp_file "repro" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro_graph.Io.save path g0;
      let g = Repro_graph.Io.load path in
      let m = Metrics.create () in
      let report = Build.decompose ~seed:43 g ~metrics:m in
      let labels = Dl.build g report.Build.decomposition ~metrics:m in
      let apsp = Shortest_path.apsp g in
      for u = 0 to 19 do
        for v = 0 to 19 do
          check_int "exact end to end" apsp.(u).(v) (Labeling.decode labels.(u) labels.(v))
        done
      done)

(* ------------------------------------------------------------------ *)
(* Girth charged mode upper-bound guarantee under adversarial repeats *)

let test_girth_charged_never_underestimates () =
  for seed = 0 to 8 do
    let g = Generators.random_weights ~seed ~max_weight:9 (Generators.ring_of_rings ~rings:4 ~ring_size:4) in
    let m = Metrics.create () in
    let r = Girth.undirected ~mode:`Charged ~repeats:1 ~seed g ~metrics:m in
    check_bool "lower-bounded by true girth" true
      (r.Repro_core.Girth.girth >= Girth_ref.girth g)
  done

let () =
  Alcotest.run "repro_integration"
    [
      ( "engine",
        [
          Alcotest.test_case "oversize message" `Quick test_engine_rejects_oversized_message;
          Alcotest.test_case "max rounds" `Quick test_engine_max_rounds_guard;
          Alcotest.test_case "idle costs nothing" `Quick test_engine_idle_algorithm_costs_nothing;
        ] );
      ( "multigraphs",
        [
          Alcotest.test_case "DL parallel edges" `Quick test_dl_on_multigraph;
          Alcotest.test_case "girth 2-cycle" `Quick test_girth_multigraph_two_cycle;
          Alcotest.test_case "product multiplicity" `Quick test_product_respects_multiplicity;
          Alcotest.test_case "CDL multigraph" `Quick test_cdl_on_multigraph;
        ] );
      ( "paper profile",
        [
          Alcotest.test_case "valid decomposition" `Quick test_paper_profile_decomposition_is_valid;
          Alcotest.test_case "DL exact" `Quick test_paper_profile_dl_still_exact;
        ] );
      ( "matching modes",
        [ Alcotest.test_case "faithful = charged" `Slow test_matching_faithful_equals_charged ] );
      ( "pa hybrid",
        [
          Alcotest.test_case "long part" `Quick test_pa_shortcut_beats_long_part;
          Alcotest.test_case "delegation" `Quick test_pa_delegation_keeps_results_correct;
        ] );
      ("pipeline", [ Alcotest.test_case "from file" `Quick test_pipeline_from_file ]);
      ( "girth guarantees",
        [ Alcotest.test_case "never underestimates" `Quick test_girth_charged_never_underestimates ]
      );
    ]
