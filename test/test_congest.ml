module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Engine = Repro_congest.Engine
module Bfs_tree = Repro_congest.Bfs_tree
module Broadcast = Repro_congest.Broadcast
module Leader = Repro_congest.Leader
module Bellman_ford = Repro_congest.Bellman_ford
module Apsp = Repro_congest.Apsp
module Fault = Repro_congest.Fault
module Transport = Repro_congest.Transport

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* every engine run in this suite is audited: accounting drift raises *)
let () = Engine.audit_enabled := true

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_accumulates () =
  let m = Metrics.create () in
  Metrics.add m ~label:"a" 3;
  Metrics.add m ~label:"b" 2;
  Metrics.add m ~label:"a" 1;
  Metrics.add_messages m 10;
  check_int "rounds" 6 (Metrics.rounds m);
  check_int "messages" 10 (Metrics.messages m);
  Alcotest.(check (list (pair string int))) "breakdown" [ ("a", 4); ("b", 2) ]
    (Metrics.breakdown m)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a ~label:"x" 2;
  Metrics.add b ~label:"x" 3;
  Metrics.add b ~label:"y" 1;
  Metrics.add_messages b 5;
  Metrics.merge ~into:a b;
  check_int "merged rounds" 6 (Metrics.rounds a);
  check_int "merged messages" 5 (Metrics.messages a);
  Alcotest.(check (list (pair string int))) "merged breakdown" [ ("x", 5); ("y", 1) ]
    (Metrics.breakdown a)

let test_metrics_breakdown_ordering () =
  let m = Metrics.create () in
  Metrics.add m ~label:"small" 1;
  Metrics.add m ~label:"big" 9;
  Metrics.add m ~label:"mid" 4;
  Alcotest.(check (list (pair string int))) "decreasing rounds"
    [ ("big", 9); ("mid", 4); ("small", 1) ]
    (Metrics.breakdown m)

let test_metrics_words_delivered () =
  let m = Metrics.create () in
  check_int "fresh words" 0 (Metrics.words m);
  check_int "fresh delivered" 0 (Metrics.delivered m);
  Metrics.add_words m 4;
  Metrics.add_words m 3;
  Metrics.add_delivered m 2;
  check_int "words" 7 (Metrics.words m);
  check_int "delivered" 2 (Metrics.delivered m);
  let b = Metrics.create () in
  Metrics.add_words b 5;
  Metrics.add_delivered b 1;
  Metrics.merge ~into:m b;
  check_int "merged words" 12 (Metrics.words m);
  check_int "merged delivered" 3 (Metrics.delivered m)

let test_metrics_fault_counters () =
  let m = Metrics.create () in
  check_int "fresh dropped" 0 (Metrics.dropped m);
  check_int "fresh duplicated" 0 (Metrics.duplicated m);
  check_int "fresh retransmissions" 0 (Metrics.retransmissions m);
  Metrics.add_dropped m 3;
  Metrics.add_duplicated m 2;
  Metrics.add_retransmissions m 7;
  Metrics.add_retransmissions m 1;
  check_int "dropped" 3 (Metrics.dropped m);
  check_int "duplicated" 2 (Metrics.duplicated m);
  check_int "retransmissions" 8 (Metrics.retransmissions m)

let test_metrics_merge_fault_counters () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add_dropped a 1;
  Metrics.add_dropped b 2;
  Metrics.add_duplicated b 4;
  Metrics.add_retransmissions b 6;
  Metrics.merge ~into:a b;
  check_int "merged dropped" 3 (Metrics.dropped a);
  check_int "merged duplicated" 4 (Metrics.duplicated a);
  check_int "merged retransmissions" 6 (Metrics.retransmissions a)

(* ------------------------------------------------------------------ *)
(* Engine *)

module IntMsg = struct
  type t = int

  let words _ = 1
end

module E = Engine.Make (IntMsg)

let test_engine_enforces_bandwidth () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let ran = ref false in
  (try
     ignore
       (E.run sk
          ~init:(fun _ -> true)
          ~step:(fun ~round:_ ~node st _ ->
            if node = 0 && st then (false, [ (1, 1); (1, 2) ]) else (false, []))
          ~active:Fun.id ~metrics:m ~label:"t" ());
     ran := true
   with Invalid_argument _ -> ());
  check_bool "duplicate send rejected" false !ran

let test_engine_rejects_non_neighbor () =
  let sk = Generators.path 3 in
  let m = Metrics.create () in
  Alcotest.check_raises "non neighbor"
    (Invalid_argument "Engine.run(t): round 0: node 0 sent to non-neighbor 2") (fun () ->
      ignore
        (E.run sk
           ~init:(fun _ -> true)
           ~step:(fun ~round:_ ~node st _ ->
             if node = 0 && st then (false, [ (2, 1) ]) else (false, []))
           ~active:Fun.id ~metrics:m ~label:"t" ()))

let test_engine_counts_rounds () =
  (* one hop of communication = 2 engine rounds: send round + delivery round *)
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let states =
    E.run sk
      ~init:(fun v -> if v = 0 then 1 else 0)
      ~step:(fun ~round:_ ~node:_ st inbox ->
        match inbox with
        | (_, v) :: _ -> (st + (10 * v), [])
        | [] -> if st = 1 then (2, [ (1, 7) ]) else (st, []))
      ~active:(fun st -> st = 1)
      ~metrics:m ~label:"t" ()
  in
  check_int "receiver got it" 70 states.(1);
  check_bool "bounded rounds" true (Metrics.rounds m <= 3);
  check_int "one message" 1 (Metrics.messages m)

let test_engine_round_limit_payload () =
  let sk = Generators.path 3 in
  let m = Metrics.create () in
  match
    E.run sk
      ~init:(fun _ -> ())
      ~step:(fun ~round:_ ~node:_ () _ -> ((), []))
      ~active:(fun () -> true)
      ~max_rounds:7 ~metrics:m ~label:"spin" ()
  with
  | _ -> Alcotest.fail "expected Round_limit_exceeded"
  | exception Engine.Round_limit_exceeded { label; rounds; active_nodes } ->
      Alcotest.(check string) "label" "spin" label;
      check_int "rounds" 7 rounds;
      check_int "active nodes" 3 active_nodes

let test_engine_inbox_sorted_by_sender () =
  (* leaves of a star all message the hub in the same round: the hub must
     see them in ascending sender order regardless of delivery accidents *)
  let star = Digraph.create ~directed:false 6 (List.init 5 (fun i -> (0, i + 1, 1))) in
  let m = Metrics.create () in
  let seen = ref [] in
  ignore
    (E.run star
       ~init:(fun v -> v <> 0)
       ~step:(fun ~round:_ ~node st inbox ->
         if node = 0 && inbox <> [] then seen := inbox;
         if st && node <> 0 then (false, [ (0, node) ]) else (false, []))
       ~active:Fun.id ~metrics:m ~label:"t" ());
  Alcotest.(check (list (pair int int)))
    "ascending sender order"
    [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5) ]
    !seen

let test_engine_oversize_diagnostics () =
  (* bandwidth violations name the run, round, link, and measured size *)
  let module WMsg = struct
    type t = int

    let words m = m
  end in
  let module EW = Engine.Make (WMsg) in
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Engine.run(t): round 0: node 0 -> 1: message of 7 words (cap 4)")
    (fun () ->
      ignore
        (EW.run sk
           ~init:(fun _ -> true)
           ~step:(fun ~round:_ ~node st _ ->
             if node = 0 && st then (false, [ (1, 7) ]) else (false, []))
           ~active:Fun.id ~metrics:m ~label:"t" ()))

let test_engine_counts_words_and_delivered () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  ignore
    (E.run sk
       ~init:(fun v -> v = 0)
       ~step:(fun ~round:_ ~node st _ ->
         if node = 0 && st then (false, [ (1, 9) ]) else (false, []))
       ~active:Fun.id ~metrics:m ~label:"t" ());
  check_int "messages" 1 (Metrics.messages m);
  check_int "words" 1 (Metrics.words m);
  (* reliable links: everything sent is delivered *)
  check_int "delivered" 1 (Metrics.delivered m)

(* ------------------------------------------------------------------ *)
(* Audit mode *)

let test_audit_catches_unstable_words () =
  (* M.words must be a function of the message: the auditor measures each
     send twice and raises on disagreement *)
  let calls = ref 0 in
  let module Unstable = struct
    type t = unit

    let words () =
      incr calls;
      if !calls mod 2 = 0 then 2 else 1
  end in
  let module EU = Engine.Make (Unstable) in
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  check_bool "raises" true
    (try
       ignore
         (EU.run sk
            ~init:(fun v -> v = 0)
            ~step:(fun ~round:_ ~node st _ ->
              if node = 0 && st then (false, [ (1, ()) ]) else (false, []))
            ~active:Fun.id ~audit:true ~metrics:m ~label:"t" ());
       false
     with Engine.Audit_violation { round = 0; _ } -> true)

let test_audit_catches_inflight_mutation () =
  (* a sender that mutates a message after handing it to the network
     breaks the bandwidth model: the auditor re-measures at delivery *)
  let module RefMsg = struct
    type t = int ref

    let words m = !m
  end in
  let module ER = Engine.Make (RefMsg) in
  let sk = Generators.path 2 in
  let cell = ref 1 in
  let m = Metrics.create () in
  (* seed chosen so the adversary holds the copy back at least one round,
     leaving a window for the mutation below *)
  let faults = Fault.create ~seed:4 (Fault.profile ~max_delay:3 ()) in
  check_bool "raises" true
    (try
       ignore
         (ER.run sk
            ~init:(fun v -> v = 0)
            ~step:(fun ~round ~node st _ ->
              if node = 0 && round > 0 then cell := 3;
              if node = 0 && st then (false, [ (1, cell) ]) else (false, []))
            ~active:Fun.id ~faults ~audit:true ~max_rounds:50 ~metrics:m ~label:"t" ());
       false
     with Engine.Audit_violation _ -> true)

let test_audit_catches_metrics_drift () =
  (* a step function charging traffic counters mid-run corrupts the
     engine's accounting; the auditor reports it as drift *)
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  check_bool "raises" true
    (try
       ignore
         (E.run sk
            ~init:(fun v -> v = 0)
            ~step:(fun ~round:_ ~node st _ ->
              if node = 0 && st then Metrics.add_messages m 5;
              if node = 0 && st then (false, [ (1, 1) ]) else (false, []))
            ~active:Fun.id ~audit:true ~metrics:m ~label:"t" ());
       false
     with Engine.Audit_violation { round = 0; _ } -> true)

let test_audit_off_permits_drift () =
  (* the same drift with ~audit:false (overriding the suite-wide default)
     must pass: auditing is opt-out-able for production runs *)
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  ignore
    (E.run sk
       ~init:(fun v -> v = 0)
       ~step:(fun ~round:_ ~node st _ ->
         if node = 0 && st then Metrics.add_messages m 5;
         if node = 0 && st then (false, [ (1, 1) ]) else (false, []))
       ~active:Fun.id ~audit:false ~metrics:m ~label:"t" ());
  check_int "extra charge kept" 6 (Metrics.messages m)

let test_audit_clean_under_faults () =
  (* drops, duplicates, delays, crashes: the conservation invariants hold
     on a healthy engine under an adversarial schedule *)
  let g = Generators.grid 6 6 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:29
      (Fault.profile ~drop:0.3 ~duplicate:0.25 ~max_delay:3
         ~crashes:[ Fault.crash 7 ~from:3 ~until:9 ]
         ())
  in
  let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
  check_bool "ran" true (t.Bfs_tree.dist.(0) = 0);
  check_int "conservation at rest" 0
    (Metrics.messages m + Metrics.duplicated m - Metrics.delivered m - Metrics.dropped m)

let prop_metrics_conservation =
  QCheck.Test.make
    ~name:"audit: messages + duplicated = delivered + dropped across fault profiles" ~count:30
    QCheck.(
      quad (int_range 0 1000) (int_range 5 24) (int_range 0 50) (int_range 0 2))
    (fun (seed, n, drop_pct, delay) ->
      let g = Generators.gnp_connected ~seed n 0.2 in
      let profile =
        Fault.profile ~drop:(float_of_int drop_pct /. 100.0) ~duplicate:0.25 ~max_delay:delay
          ()
      in
      let root = seed mod n in
      (* raw faulty run *)
      let m = Metrics.create () in
      ignore (Bfs_tree.build ~faults:(Fault.create ~seed:(seed + 17) profile) g ~root ~metrics:m);
      let raw_ok =
        Metrics.messages m + Metrics.duplicated m = Metrics.delivered m + Metrics.dropped m
      in
      (* same law through the reliable transport *)
      let mr = Metrics.create () in
      ignore
        (Bfs_tree.build
           ~faults:(Fault.create ~seed:(seed + 23) profile)
           ~reliable:true g ~root ~metrics:mr);
      let reliable_ok =
        Metrics.messages mr + Metrics.duplicated mr
        = Metrics.delivered mr + Metrics.dropped mr
      in
      raw_ok && reliable_ok)

(* ------------------------------------------------------------------ *)
(* Fault adversary *)

let drops_profile = Fault.profile ~drop:0.3 ~duplicate:0.2 ~max_delay:2 ()

let test_fault_profile_validation () =
  check_bool "negative delay rejected" true
    (try
       ignore (Fault.profile ~max_delay:(-1) ());
       false
     with Invalid_argument _ -> true);
  check_bool "drop=1 rejected" true
    (try
       ignore (Fault.profile ~drop:1.0 ());
       false
     with Invalid_argument _ -> true)

let test_fault_run_is_deterministic () =
  let g = Generators.grid 5 5 in
  let run () =
    let m = Metrics.create () in
    let faults = Fault.create ~seed:42 drops_profile in
    let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
    (t.Bfs_tree.dist, Metrics.dropped m, Metrics.duplicated m)
  in
  let d1, drops1, dups1 = run () in
  let d2, drops2, dups2 = run () in
  Alcotest.(check (array int)) "same distances" d1 d2;
  check_int "same drops" drops1 drops2;
  check_int "same duplicates" dups1 dups2;
  check_bool "drops fired" true (drops1 > 0);
  check_bool "duplicates fired" true (dups1 > 0)

let test_fault_raw_bfs_degrades () =
  (* without the transport, dropped offers can only lose relaxations, so
     every raw-faulty distance is >= the centralized one *)
  let g = Generators.grid 6 6 in
  let expected = Traversal.bfs_undirected g 0 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:7 (Fault.profile ~drop:0.5 ()) in
  let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
  Array.iteri
    (fun v d -> check_bool (Printf.sprintf "node %d not too close" v) true (d >= expected.(v)))
    t.Bfs_tree.dist;
  check_bool "drops fired" true (Metrics.dropped m > 0)

let test_fault_crash_stop_cannot_livelock () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:1
      (Fault.profile ~crashes:[ Fault.crash 1 ~from:5 ] ())
  in
  ignore
    (E.run sk
       ~init:(fun v -> v = 1)
       ~step:(fun ~round:_ ~node:_ st _ -> (st, []))
       ~active:Fun.id ~faults ~max_rounds:100 ~metrics:m ~label:"t" ());
  check_int "terminates at the crash, not max_rounds" 5 (Metrics.rounds m)

let test_fault_crash_partitions_raw_bfs () =
  (* path 0-1-2-3-4-5 with node 3 down during the whole flood: the offer
     from 2 dies exactly once, so everything past 3 stays unreachable *)
  let g = Generators.path 6 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:3
      (Fault.profile ~crashes:[ Fault.crash 3 ~from:0 ~until:50 ] ())
  in
  let t = Bfs_tree.build ~faults g ~root:0 ~metrics:m in
  check_int "before the crash" 2 t.Bfs_tree.dist.(2);
  check_int "behind the crash" Digraph.inf t.Bfs_tree.dist.(4);
  check_bool "delivery to the dead node was dropped" true (Metrics.dropped m > 0)

(* ------------------------------------------------------------------ *)
(* Reliable transport *)

let test_transport_no_faults_exact () =
  let g = Generators.k_tree ~seed:9 40 3 in
  let m = Metrics.create () in
  let t = Bfs_tree.build ~reliable:true g ~root:0 ~metrics:m in
  Alcotest.(check (array int)) "distances" (Traversal.bfs_undirected g 0) t.Bfs_tree.dist;
  check_int "no drops" 0 (Metrics.dropped m);
  check_int "no retransmissions" 0 (Metrics.retransmissions m)

let test_transport_restores_bfs_under_drops () =
  let g = Generators.grid 6 6 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:5 drops_profile in
  let t = Bfs_tree.build ~faults ~reliable:true g ~root:0 ~metrics:m in
  Alcotest.(check (array int)) "exact despite faults" (Traversal.bfs_undirected g 0)
    t.Bfs_tree.dist;
  check_bool "faults actually fired" true (Metrics.dropped m > 0);
  check_bool "transport retransmitted" true (Metrics.retransmissions m > 0)

let test_transport_restores_bellman_ford () =
  let g = Generators.bidirect ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:2 30 3) in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:11 drops_profile in
  let d = Bellman_ford.run ~faults ~reliable:true g ~source:0 ~metrics:m in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 0) d;
  check_bool "retransmissions fired" true (Metrics.retransmissions m > 0)

let test_transport_restores_leader () =
  let g = Generators.k_tree ~seed:11 30 2 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:13 drops_profile in
  check_int "leader" 0 (Leader.elect ~faults ~reliable:true g ~metrics:m)

let test_transport_preserves_stream_order () =
  (* per-link FIFO: a pipelined stream arrives in order even when packets
     are dropped, duplicated, and delayed underneath *)
  let g = Generators.path 6 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let items = List.init 12 Fun.id in
  let faults = Fault.create ~seed:17 drops_profile in
  let got = Broadcast.stream_down ~faults ~reliable:true t ~items ~metrics:m in
  Array.iter (fun l -> Alcotest.(check (list int)) "items in order" items l) got

let test_transport_convergecast_under_faults () =
  let g = Generators.grid 4 4 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let values = Array.init 16 Fun.id in
  let faults = Fault.create ~seed:19 drops_profile in
  check_int "sum survives faults" 120
    (Broadcast.convergecast ~faults ~reliable:true t ~op:( + ) ~values ~metrics:m)

let test_transport_survives_crash_restart () =
  (* node 3 is down for the first 12 rounds; the transport retransmits
     across the outage, so BFS is still exact after the restart *)
  let g = Generators.path 6 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:23
      (Fault.profile ~crashes:[ Fault.crash 3 ~from:2 ~until:12 ] ())
  in
  let t = Bfs_tree.build ~faults ~reliable:true g ~root:0 ~metrics:m in
  Alcotest.(check (array int)) "exact across the outage" (Traversal.bfs_undirected g 0)
    t.Bfs_tree.dist;
  check_bool "outage forced retransmissions" true (Metrics.retransmissions m > 0)

let prop_transport_oracle_exact =
  QCheck.Test.make
    ~name:"BFS/SSSP/leader over transport = centralized oracles for any drop <= 0.5" ~count:20
    QCheck.(triple (int_range 0 1000) (int_range 6 20) (int_range 5 50))
    (fun (seed, n, drop_pct) ->
      let drop = float_of_int drop_pct /. 100.0 in
      let g = Generators.gnp_connected ~seed n 0.2 in
      let profile = Fault.profile ~drop ~duplicate:0.2 ~max_delay:2 () in
      let root = seed mod n in
      let m = Metrics.create () in
      let t =
        Bfs_tree.build ~faults:(Fault.create ~seed:(seed + 1) profile) ~reliable:true g ~root
          ~metrics:m
      in
      let bfs_ok = t.Bfs_tree.dist = Traversal.bfs_undirected g root in
      let gw = Generators.random_weights ~seed ~max_weight:9 g in
      let bf =
        Bellman_ford.run ~faults:(Fault.create ~seed:(seed + 2) profile) ~reliable:true gw
          ~source:root ~metrics:m
      in
      let bf_ok = bf = Shortest_path.dijkstra gw root in
      let leader_ok =
        Leader.elect ~faults:(Fault.create ~seed:(seed + 3) profile) ~reliable:true g ~metrics:m
        = 0
      in
      bfs_ok && bf_ok && leader_ok)

(* ------------------------------------------------------------------ *)
(* Crash-amnesia faults and the checkpoint/recovery layer *)

module Recovery = Repro_congest.Recovery

let test_metrics_recovery_counters () =
  let m = Metrics.create () in
  check_int "fresh checkpoints" 0 (Metrics.checkpoints m);
  check_int "fresh checkpoint words" 0 (Metrics.checkpoint_words m);
  check_int "fresh recoveries" 0 (Metrics.recoveries m);
  check_int "fresh resync rounds" 0 (Metrics.resync_rounds m);
  Metrics.add_checkpoints m 3;
  Metrics.add_checkpoint_words m 12;
  Metrics.add_recoveries m 2;
  Metrics.add_resync_rounds m 5;
  Metrics.add_checkpoints m 1;
  check_int "checkpoints" 4 (Metrics.checkpoints m);
  check_int "checkpoint words" 12 (Metrics.checkpoint_words m);
  check_int "recoveries" 2 (Metrics.recoveries m);
  check_int "resync rounds" 5 (Metrics.resync_rounds m);
  let b = Metrics.create () in
  Metrics.add_checkpoints b 6;
  Metrics.add_checkpoint_words b 8;
  Metrics.add_recoveries b 1;
  Metrics.add_resync_rounds b 7;
  Metrics.merge ~into:m b;
  check_int "merged checkpoints" 10 (Metrics.checkpoints m);
  check_int "merged checkpoint words" 20 (Metrics.checkpoint_words m);
  check_int "merged recoveries" 3 (Metrics.recoveries m);
  check_int "merged resync rounds" 12 (Metrics.resync_rounds m)

let test_fault_amnesia_requires_restart () =
  check_bool "amnesia crash-stop rejected" true
    (try
       ignore
         (Fault.profile ~crashes:[ Fault.crash 1 ~from:2 ~mode:Fault.Amnesia ] ());
       false
     with Invalid_argument _ -> true);
  (* with a restart round it is accepted *)
  ignore (Fault.profile ~crashes:[ Fault.crash 1 ~from:2 ~until:5 ~mode:Fault.Amnesia ] ())

let test_engine_amnesia_reinits_state () =
  (* node 1 counts the rounds it actually computed in; node 0 drives
     liveness for exactly 12 rounds. Freeze keeps node 1's pre-crash
     count across the outage; Amnesia loses it. *)
  let sk = Generators.path 2 in
  let run mode =
    let m = Metrics.create () in
    let faults =
      Fault.create ~seed:1 (Fault.profile ~crashes:[ Fault.crash 1 ~from:2 ~until:6 ~mode ] ())
    in
    let states =
      E.run sk
        ~init:(fun v -> (v = 0, 0))
        ~step:(fun ~round:_ ~node:_ (d, c) _ -> ((d, c + 1), []))
        ~active:(fun (d, c) -> d && c < 12)
        ~faults ~max_rounds:100 ~metrics:m ~label:"t" ()
    in
    snd states.(1)
  in
  (* node 1 is down for rounds 2..5, so it steps in rounds {0,1} u {6..11} *)
  check_int "freeze resumes pre-crash count" 8 (run Fault.Freeze);
  (* amnesia: the 2 pre-crash steps are wiped by the round-6 re-init *)
  check_int "amnesia restarts from init" 6 (run Fault.Amnesia)

let test_engine_amnesia_outage_keeps_run_alive () =
  (* every node quiesces after round 0 and node 1's restart is only due
     at round 5: the engine must keep the run alive through the outage so
     the restart (and its on_restart hook) actually executes *)
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:1
      (Fault.profile ~crashes:[ Fault.crash 1 ~from:1 ~until:5 ~mode:Fault.Amnesia ] ())
  in
  let states =
    E.run sk
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:_ st _ -> (st + 1, []))
      ~active:(fun st -> st < 1)
      ~faults
      ~on_restart:(fun ~round:_ ~node:_ -> 10)
      ~max_rounds:100 ~metrics:m ~label:"t" ()
  in
  (* node 1 stepped at round 0 (0 -> 1), was down 1..4, rebooted into the
     hook state at round 5 and stepped once more there (10 -> 11). Were
     the run to quiesce during the outage the restart would never apply
     and the state would still read 1. *)
  check_int "restart hook ran at the restart round" 11 states.(1);
  check_int "run stayed alive exactly through the restart round" 6 (Metrics.rounds m)

let amnesia_crash ?(from = 2) ?(until = 12) node =
  Fault.crash node ~from ~until ~mode:Fault.Amnesia

let test_transport_alone_loses_amnesia_state () =
  (* the gap Recovery exists to close: node 3 receives and acks the BFS
     frontier, then loses it to amnesia while its own offer to node 4 is
     still parked behind node 4's crash window. After node 3's reboot
     nobody ever resends — upstream was acked, node 3 came back empty —
     so everything behind it stays unreached. *)
  let g = Generators.path 6 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:23
      (Fault.profile
         ~crashes:
           [ Fault.crash 4 ~from:0 ~until:40; amnesia_crash 3 ~from:10 ~until:20 ]
         ())
  in
  let t = Bfs_tree.build ~faults ~reliable:true g ~root:0 ~metrics:m in
  check_int "knowledge behind the amnesia node is lost" Digraph.inf t.Bfs_tree.dist.(5)

let test_recovery_bfs_amnesia_exact () =
  let g = Generators.path 6 in
  let expected = Traversal.bfs_undirected g 0 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:23 (Fault.profile ~crashes:[ amnesia_crash 3 ] ()) in
  let t =
    Bfs_tree.build ~faults ~recovery:{ Recovery.checkpoint_every = 3 } g ~root:0 ~metrics:m
  in
  Alcotest.(check (array int)) "exact across the amnesia restart" expected t.Bfs_tree.dist;
  check_int "one recovery served" 1 (Metrics.recoveries m);
  check_bool "checkpoints written" true (Metrics.checkpoints m > 0);
  check_bool "resync window accounted" true (Metrics.resync_rounds m > 0)

let test_recovery_without_checkpoints_still_exact () =
  (* checkpointing disabled: restore falls back to init and the
     HELLO/RESYNC handshake alone recovers the lost frontier *)
  let g = Generators.grid 4 4 in
  let expected = Traversal.bfs_undirected g 0 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:7
      (Fault.profile ~crashes:[ amnesia_crash 5; amnesia_crash 10 ~from:4 ~until:9 ] ())
  in
  let t = Bfs_tree.build ~faults ~recovery:{ Recovery.checkpoint_every = 0 } g ~root:0 ~metrics:m in
  Alcotest.(check (array int)) "exact with resync only" expected t.Bfs_tree.dist;
  check_int "no checkpoints" 0 (Metrics.checkpoints m);
  check_int "two recoveries" 2 (Metrics.recoveries m)

let test_recovery_root_crash () =
  (* the root itself loses its memory; its init (d = 0) regenerates the
     flood, so the output is still exact *)
  let g = Generators.grid 4 4 in
  let expected = Traversal.bfs_undirected g 0 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:9 (Fault.profile ~crashes:[ amnesia_crash 0 ~from:1 ~until:7 ] ()) in
  let t =
    Bfs_tree.build ~faults ~recovery:{ Recovery.checkpoint_every = 2 } g ~root:0 ~metrics:m
  in
  Alcotest.(check (array int)) "exact after root amnesia" expected t.Bfs_tree.dist

let test_recovery_bellman_ford_amnesia () =
  let g = Generators.bidirect ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:2 30 3) in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:11
      (Fault.profile ~drop:0.2 ~duplicate:0.1 ~max_delay:1
         ~crashes:[ amnesia_crash 4; amnesia_crash 17 ~from:6 ~until:20 ]
         ())
  in
  let d =
    Bellman_ford.run ~faults ~recovery:{ Recovery.checkpoint_every = 4 } g ~source:0 ~metrics:m
  in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 0) d;
  check_int "recoveries" 2 (Metrics.recoveries m)

let test_recovery_flood_amnesia () =
  let g = Generators.cycle 10 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:5 (Fault.profile ~crashes:[ amnesia_crash 6 ~from:1 ~until:9 ] ()) in
  let got =
    Broadcast.flood ~faults ~recovery:{ Recovery.checkpoint_every = 2 } g ~root:3 ~value:99
      ~metrics:m
  in
  Array.iter (fun v -> check_int "all received" 99 v) got

let test_recovery_crash_free_zero_round_overhead () =
  (* acceptance criterion: with no crashes and checkpointing disabled the
     recovery layer must add zero rounds over the plain transport *)
  let g = Generators.k_tree ~seed:9 40 3 in
  let plain =
    let m = Metrics.create () in
    ignore (Bfs_tree.build ~reliable:true g ~root:0 ~metrics:m);
    Metrics.rounds m
  in
  let m = Metrics.create () in
  let t = Bfs_tree.build ~recovery:{ Recovery.checkpoint_every = 0 } g ~root:0 ~metrics:m in
  Alcotest.(check (array int)) "still exact" (Traversal.bfs_undirected g 0) t.Bfs_tree.dist;
  check_int "zero round overhead" plain (Metrics.rounds m);
  check_int "no checkpoints" 0 (Metrics.checkpoints m);
  check_int "no recoveries" 0 (Metrics.recoveries m);
  check_int "no resync rounds" 0 (Metrics.resync_rounds m)

let test_transport_watermark_dedup_exact () =
  (* satellite regression for the delivered-seq watermark: a pipelined
     stream under heavy duplication/delay still arrives exactly once and
     in order. (Memory is O(1) per link by construction: the watermark is
     a single integer where an unbounded seen-seq table used to grow.) *)
  let g = Generators.path 5 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let items = List.init 30 Fun.id in
  let faults = Fault.create ~seed:31 (Fault.profile ~duplicate:0.6 ~max_delay:4 ()) in
  let got = Broadcast.stream_down ~faults ~reliable:true t ~items ~metrics:m in
  Array.iter (fun l -> Alcotest.(check (list int)) "items exactly once, in order" items l) got;
  check_bool "duplicates actually fired" true (Metrics.duplicated m > 0)

let prop_recovery_amnesia_oracle_exact =
  QCheck.Test.make
    ~name:
      "BFS/Bellman-Ford/flood under random amnesia schedules on partial k-trees = oracles"
    ~count:25
    QCheck.(
      quad (int_range 0 1000) (int_range 8 24) (int_range 2 3) (int_range 0 6))
    (fun (seed, n, k, interval) ->
      let g = Generators.partial_k_tree ~seed n k ~keep:0.6 in
      let rng = Random.State.make [| seed; 0xcafe |] in
      let crashes =
        List.init
          (1 + Random.State.int rng 3)
          (fun _ ->
            let node = Random.State.int rng n in
            let from = Random.State.int rng 7 in
            let until = from + 1 + Random.State.int rng 10 in
            Fault.crash node ~from ~until ~mode:Fault.Amnesia)
      in
      let profile = Fault.profile ~drop:0.1 ~duplicate:0.1 ~max_delay:1 ~crashes () in
      let recovery = { Recovery.checkpoint_every = interval } in
      let root = seed mod n in
      let m = Metrics.create () in
      let t =
        Bfs_tree.build ~faults:(Fault.create ~seed:(seed + 1) profile) ~recovery g ~root
          ~metrics:m
      in
      let bfs_ok = t.Bfs_tree.dist = Traversal.bfs_undirected g root in
      let gw = Generators.random_weights ~seed ~max_weight:9 g in
      let bf =
        Bellman_ford.run ~faults:(Fault.create ~seed:(seed + 2) profile) ~recovery gw
          ~source:root ~metrics:m
      in
      let bf_ok = bf = Shortest_path.dijkstra gw root in
      let fl =
        Broadcast.flood ~faults:(Fault.create ~seed:(seed + 3) profile) ~recovery g ~root
          ~value:4242 ~metrics:m
      in
      let flood_ok = Array.for_all (fun v -> v = 4242) fl in
      bfs_ok && bf_ok && flood_ok)

let prop_fault_adversary_deterministic =
  (* satellite: equal seed + profile drive byte-identical metrics across
     full transport runs (every engine here audits, so a plan-order
     change that skews RNG consumption surfaces as a counter drift) *)
  QCheck.Test.make ~name:"equal fault seeds give byte-identical metrics over Transport"
    ~count:25
    QCheck.(quad (int_range 0 1000) (int_range 6 20) (int_range 0 40) (int_range 0 2))
    (fun (seed, n, drop_pct, delay) ->
      let g = Generators.gnp_connected ~seed n 0.2 in
      let profile =
        Fault.profile ~drop:(float_of_int drop_pct /. 100.0) ~duplicate:0.2 ~max_delay:delay
          ~crashes:[ Fault.crash (seed mod n) ~from:2 ~until:8 ~mode:Fault.Amnesia ]
          ()
      in
      let root = (seed + 3) mod n in
      let observe fault_seed =
        let m = Metrics.create () in
        let t =
          Bfs_tree.build
            ~faults:(Fault.create ~seed:fault_seed profile)
            ~recovery:{ Recovery.checkpoint_every = 3 } g ~root ~metrics:m
        in
        ( t.Bfs_tree.dist,
          ( Metrics.rounds m, Metrics.messages m, Metrics.words m, Metrics.delivered m ),
          ( Metrics.dropped m, Metrics.duplicated m, Metrics.retransmissions m,
            Metrics.recoveries m ) )
      in
      let d1, a1, b1 = observe (seed + 17) in
      let d2, a2, b2 = observe (seed + 17) in
      let same = d1 = d2 && a1 = a2 && b1 = b2 in
      (* a different seed is consulted in the same plan order: the run
         still audits clean and conserves copies at rest *)
      let m3 = Metrics.create () in
      ignore
        (Bfs_tree.build
           ~faults:(Fault.create ~seed:(seed + 18) profile)
           ~recovery:{ Recovery.checkpoint_every = 3 } g ~root ~metrics:m3);
      let conserved =
        Metrics.messages m3 + Metrics.duplicated m3 = Metrics.delivered m3 + Metrics.dropped m3
      in
      same && conserved)

(* ------------------------------------------------------------------ *)
(* BFS tree *)

let test_bfs_tree_grid () =
  let g = Generators.grid 5 6 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let expected = Traversal.bfs_undirected g 0 in
  Alcotest.(check (array int)) "distances match centralized BFS" expected t.Bfs_tree.dist;
  check_int "depth" 9 t.Bfs_tree.depth;
  check_int "root parent" 0 t.Bfs_tree.parent.(0);
  (* rounds proportional to depth *)
  check_bool "rounds ~ depth" true (Metrics.rounds m <= (3 * t.Bfs_tree.depth) + 5)

let test_bfs_tree_parents_consistent () =
  let g = Generators.k_tree ~seed:5 60 3 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:7 ~metrics:m in
  Array.iteri
    (fun v p ->
      if v <> 7 then begin
        check_bool "has parent" true (p >= 0);
        check_int "parent one closer" (t.Bfs_tree.dist.(v) - 1) t.Bfs_tree.dist.(p)
      end)
    t.Bfs_tree.parent

let prop_bfs_tree_matches_centralized =
  QCheck.Test.make ~name:"distributed BFS distances = centralized" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 5 40))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.1 in
      let m = Metrics.create () in
      let t = Bfs_tree.build g ~root:(seed mod n) ~metrics:m in
      t.Bfs_tree.dist = Traversal.bfs_undirected g (seed mod n))

(* ------------------------------------------------------------------ *)
(* Broadcast primitives *)

let test_flood () =
  let g = Generators.cycle 10 in
  let m = Metrics.create () in
  let got = Broadcast.flood g ~root:3 ~value:99 ~metrics:m in
  Array.iter (fun v -> check_int "all received" 99 v) got

let test_convergecast_sum () =
  let g = Generators.grid 4 4 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let values = Array.init 16 Fun.id in
  check_int "sum" 120 (Broadcast.convergecast t ~op:( + ) ~values ~metrics:m)

let test_convergecast_single_node () =
  let g = Generators.path 1 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  check_int "singleton" 42 (Broadcast.convergecast t ~op:( + ) ~values:[| 42 |] ~metrics:m)

let test_stream_down_pipelines () =
  let g = Generators.path 10 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let before = Metrics.rounds m in
  let items = List.init 20 Fun.id in
  let got = Broadcast.stream_down t ~items ~metrics:m in
  Array.iter (fun l -> Alcotest.(check (list int)) "items in order" items l) got;
  let used = Metrics.rounds m - before in
  (* pipelining: depth 9 + 20 items, not depth * items *)
  check_bool "pipelined" true (used <= 9 + 20 + 3)

(* ------------------------------------------------------------------ *)
(* Leader election *)

let test_leader_is_min_id () =
  let g = Generators.k_tree ~seed:11 40 2 in
  let m = Metrics.create () in
  check_int "leader" 0 (Leader.elect g ~metrics:m)

(* ------------------------------------------------------------------ *)
(* Bellman-Ford *)

let test_bellman_ford_exact () =
  let g = Generators.bidirect ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:2 40 3) in
  let m = Metrics.create () in
  let d = Bellman_ford.run g ~source:0 ~metrics:m in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 0) d

let test_bellman_ford_undirected () =
  let g = Generators.random_weights ~seed:4 ~max_weight:7 (Generators.grid 4 5) in
  let m = Metrics.create () in
  let d = Bellman_ford.run g ~source:10 ~metrics:m in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 10) d

let prop_bellman_ford =
  QCheck.Test.make ~name:"bellman-ford = dijkstra on random digraphs" ~count:25
    QCheck.(pair (int_range 0 500) (int_range 6 30))
    (fun (seed, n) ->
      let g =
        Generators.bidirect ~seed ~max_weight:12 (Generators.gnp_connected ~seed n 0.12)
      in
      let m = Metrics.create () in
      Bellman_ford.run g ~source:(seed mod n) ~metrics:m
      = Shortest_path.dijkstra g (seed mod n))

(* ------------------------------------------------------------------ *)
(* APSP / diameter baseline *)

let test_apsp_matches_bfs () =
  let g = Generators.grid 3 5 in
  let m = Metrics.create () in
  let d = Apsp.hop_distances g ~metrics:m in
  for v = 0 to Digraph.n g - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "row %d" v)
      (Traversal.bfs_undirected g v) d.(v)
  done

let test_diameter_baseline () =
  let g = Generators.cycle 12 in
  let m = Metrics.create () in
  check_int "cycle diameter" 6 (Apsp.diameter g ~metrics:m)

let test_diameter_baseline_scales_linearly () =
  (* the baseline needs Omega(n) rounds even on low-treewidth graphs: this
     is the contrast side of the separation experiment E5b *)
  let rounds n =
    let g = Generators.apex_cliques ~cliques:(n / 4) ~size:4 in
    let m = Metrics.create () in
    ignore (Apsp.diameter g ~metrics:m);
    Metrics.rounds m
  in
  let r1 = rounds 40 and r2 = rounds 80 in
  check_bool "grows at least linearly" true (r2 >= (3 * r1) / 2)


(* ------------------------------------------------------------------ *)
(* Message-level connected components *)

let test_flood_components_match_centralized () =
  let g = Generators.grid 5 5 in
  let mask = Array.init 25 (fun v -> v mod 7 <> 3) in
  let m = Metrics.create () in
  let labels = Repro_congest.Components.flood_labels g ~mask ~metrics:m in
  let expected, _ = Traversal.components_mask g mask in
  for u = 0 to 24 do
    for v = 0 to 24 do
      if mask.(u) && mask.(v) then
        check_bool "same grouping" true
          ((labels.(u) = labels.(v)) = (expected.(u) = expected.(v)))
      else if not mask.(u) then check_int "outside mask" (-1) labels.(u)
    done
  done;
  check_bool "rounds measured" true (Metrics.rounds m > 0)

let prop_flood_components =
  QCheck.Test.make ~name:"flooded components = centralized components" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 6 30))
    (fun (seed, n) ->
      let seed = abs seed and n = max 6 (min 30 n) in
      let g = Generators.gnp_connected ~seed n 0.15 in
      let rng = Random.State.make [| seed; 9 |] in
      let mask = Array.init n (fun _ -> Random.State.float rng 1.0 > 0.3) in
      let m = Metrics.create () in
      let labels = Repro_congest.Components.flood_labels g ~mask ~metrics:m in
      let expected, _ = Traversal.components_mask g mask in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if mask.(u) && mask.(v)
             && (labels.(u) = labels.(v)) <> (expected.(u) = expected.(v))
          then ok := false
        done
      done;
      !ok)


(* ------------------------------------------------------------------ *)
(* Multi-instance BFS (Theorem 6 at message level) *)

let test_multi_bfs_exact () =
  let g = Generators.k_tree ~seed:13 40 3 in
  let roots = [ 0; 7; 19; 33 ] in
  let m = Metrics.create () in
  let r = Repro_congest.Multi_bfs.run g ~roots ~metrics:m () in
  List.iteri
    (fun i root ->
      Alcotest.(check (array int))
        (Printf.sprintf "instance %d" i)
        (Traversal.bfs_undirected g root)
        r.Repro_congest.Multi_bfs.dist.(i))
    roots

let test_multi_bfs_scheduling_beats_sequential () =
  let g = Generators.grid 8 8 in
  let d = Traversal.diameter g in
  let k = 16 in
  let roots = List.init k (fun i -> (i * 4) mod 64) in
  let m = Metrics.create () in
  let r = Repro_congest.Multi_bfs.run g ~roots ~seed:3 ~metrics:m () in
  (* Theorem 6 shape: ~ D + k, far below the sequential k * D *)
  check_bool "near dilation + congestion" true
    (r.Repro_congest.Multi_bfs.rounds <= 4 * (d + k));
  check_bool "beats sequential" true (r.Repro_congest.Multi_bfs.rounds < k * d)

let test_diameter_two_approx_bounds () =
  List.iter
    (fun g ->
      let m = Metrics.create () in
      let approx = Apsp.diameter_two_approx g ~metrics:m in
      let exact = Traversal.diameter g in
      check_bool "lower bound" true (approx <= exact);
      check_bool "within factor 2" true (exact <= 2 * approx);
      (* O(D) rounds, not Omega(n) *)
      check_bool "cheap" true (Metrics.rounds m <= (6 * exact) + 10))
    [ Generators.cycle 20; Generators.grid 5 5; Generators.k_tree ~seed:3 50 3 ]

(* ------------------------------------------------------------------ *)
(* Round-count regression guard: exact rounds and messages on one fixed
   seeded partial k-tree. Fault-free runs are fully deterministic, so
   any drift here means the engine's round structure (or an algorithm's
   communication pattern) changed — bump deliberately, not silently. *)

let test_round_count_regression_guard () =
  let g = Generators.partial_k_tree ~seed:11 32 3 ~keep:0.6 in
  let gw = Generators.random_weights ~seed:11 ~max_weight:9 g in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  check_int "bfs-tree rounds" 6 (Metrics.rounds m);
  check_int "bfs-tree messages" 128 (Metrics.messages m);
  check_int "bfs-tree depth" 4 t.Bfs_tree.depth;
  let m = Metrics.create () in
  let (_ : int array) = Bellman_ford.run gw ~source:0 ~metrics:m in
  check_int "bellman-ford rounds" 8 (Metrics.rounds m);
  check_int "bellman-ford messages" 237 (Metrics.messages m);
  let m = Metrics.create () in
  let (_ : int array) = Broadcast.flood g ~root:0 ~value:7 ~metrics:m in
  check_int "flood rounds" 6 (Metrics.rounds m);
  check_int "flood messages" 128 (Metrics.messages m)

(* ------------------------------------------------------------------ *)
(* Partitions, payload corruption, transport integrity, detection *)

module Detector = Repro_congest.Detector

let raises_invalid f =
  match f () with _ -> false | exception Invalid_argument _ -> true

let test_partition_profile_validation () =
  let prof ps () = Fault.profile ~partitions:ps () in
  check_bool "empty links cut" true
    (raises_invalid (prof [ Fault.partition ~from:0 (Fault.Links []) ]));
  check_bool "empty vertex cut" true
    (raises_invalid (prof [ Fault.partition ~from:0 (Fault.Around []) ]));
  check_bool "self-loop link" true
    (raises_invalid (prof [ Fault.partition ~from:0 (Fault.Links [ (3, 3) ]) ]));
  check_bool "negative from" true
    (raises_invalid (prof [ Fault.partition ~from:(-1) (Fault.Around [ 0 ]) ]));
  check_bool "heal before start" true
    (raises_invalid (prof [ Fault.partition ~from:5 ~heal:5 (Fault.Around [ 0 ]) ]));
  check_bool "corrupt outside [0,1)" true
    (raises_invalid (fun () -> Fault.profile ~corrupt:1.0 ()))

let test_partition_semantics () =
  let f =
    Fault.create ~seed:1
      (Fault.profile
         ~partitions:
           [
             Fault.partition ~from:3 ~heal:8 (Fault.Links [ (0, 1) ]);
             Fault.partition ~from:2 (Fault.Around [ 4 ]);
           ]
         ())
  in
  (* healing link cut: down only inside [from, heal), both directions *)
  check_bool "before window" false (Fault.link_down f ~round:2 ~src:0 ~dst:1);
  check_bool "inside window" true (Fault.link_down f ~round:3 ~src:0 ~dst:1);
  check_bool "inside window, reverse" true (Fault.link_down f ~round:7 ~src:1 ~dst:0);
  check_bool "healed" false (Fault.link_down f ~round:8 ~src:0 ~dst:1);
  check_bool "healing cut is not severed" false (Fault.severed f ~src:0 ~dst:1);
  (* non-healing vertex cut: every link at the node, forever *)
  check_bool "vertex cut out" true (Fault.link_down f ~round:10 ~src:4 ~dst:2);
  check_bool "vertex cut in" true (Fault.link_down f ~round:10 ~src:2 ~dst:4);
  check_bool "vertex cut severed" true (Fault.severed f ~src:7 ~dst:4);
  check_bool "other links untouched" false (Fault.link_down f ~round:10 ~src:0 ~dst:2)

let test_corruption_rejected_never_accepted () =
  (* every corrupted copy the adversary delivers is rejected by the
     transport checksum and repaired by retransmission: zero garbled
     payloads accepted, output exact *)
  let g = Generators.partial_k_tree ~seed:9 32 2 ~keep:0.7 in
  let m = Metrics.create () in
  let faults = Fault.create ~seed:2 (Fault.profile ~corrupt:0.25 ()) in
  let t = Bfs_tree.build ~faults ~reliable:true g ~root:0 ~metrics:m in
  check_bool "exact under corruption" true (t.Bfs_tree.dist = Traversal.bfs_undirected g 0);
  check_bool "adversary actually corrupted" true (Metrics.corrupted m > 0);
  check_int "every corrupted copy rejected" (Metrics.corrupted m) (Metrics.rejected m);
  check_bool "repaired by retransmission" true (Metrics.retransmissions m > 0)

let retransmit_schedule ~jitter_seed ~fault_seed =
  let g = Generators.path 4 in
  let sched = ref [] in
  let saved = !Engine.trace_sink in
  Engine.trace_sink :=
    Repro_obs.Sink.make (function
      | Repro_obs.Event.Retransmit { round; src; dst; seq } ->
          sched := (round, src, dst, seq) :: !sched
      | _ -> ());
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      let m = Metrics.create () in
      let faults = Fault.create ~seed:fault_seed (Fault.profile ~drop:0.4 ()) in
      let t =
        Bfs_tree.build_certified ~faults ~jitter_seed g ~root:0 ~metrics:m |> fst
      in
      check_bool "exact" true (t.Bfs_tree.dist = Traversal.bfs_undirected g 0);
      List.rev !sched)

let test_retransmit_schedule_deterministic () =
  (* same fault seed + same jitter seed => byte-identical retransmit
     schedule (replay depends on this); jitter is pure, not ambient *)
  let a = retransmit_schedule ~jitter_seed:3 ~fault_seed:11 in
  let b = retransmit_schedule ~jitter_seed:3 ~fault_seed:11 in
  check_bool "schedule nonempty" true (a <> []);
  check_bool "identical schedule" true (a = b)

let test_retransmit_schedule_pinned () =
  (* regression pin: the exact (round, src, dst, seq) retransmit
     schedule for one fixed scenario. A change here means the backoff
     or jitter arithmetic changed — old recorded traces will no longer
     replay; bump PINNED deliberately if that is intended. *)
  let pinned =
    [
      (4, 0, 1, 0); (4, 1, 0, 0); (8, 1, 2, 1); (8, 2, 1, 1); (8, 2, 3, 1); (8, 3, 2, 1);
      (12, 0, 1, 0); (14, 1, 0, 0); (16, 1, 2, 1); (18, 0, 1, 1); (18, 2, 1, 1);
      (18, 2, 3, 1);
    ]
  in
  let got = retransmit_schedule ~jitter_seed:1 ~fault_seed:5 in
  check_bool "long enough to pin" true (List.length got > 12);
  check_bool "pinned schedule prefix" true (List.filteri (fun i _ -> i < 12) got = pinned)

let test_retry_cap_declares_dead_link_and_terminates () =
  (* a never-healing cut cannot be retransmitted through: the transport
     must give up after max_retries, declare the link dead, and let the
     run terminate instead of backing off forever *)
  let g = Generators.grid 3 3 in
  let m = Metrics.create () in
  let faults =
    Fault.create ~seed:3
      (Fault.profile ~partitions:[ Fault.partition ~from:0 (Fault.Around [ 4 ]) ] ())
  in
  let t, v = Bfs_tree.build_certified ~faults ~max_retries:4 g ~root:0 ~metrics:m in
  check_bool "dead links declared" true (Metrics.link_failures m > 0);
  check_bool "terminates quickly at a small cap" true (Metrics.rounds m < 700);
  check_bool "centre unreached" true (t.Bfs_tree.dist.(4) >= Digraph.inf);
  match v with
  | Detector.Complete -> Alcotest.fail "cut must yield a Partial verdict"
  | Detector.Partial { reachable; _ } ->
      check_bool "verdict matches oracle" true
        (reachable = Detector.oracle ~faults g ~root:0)

let test_detector_complete_when_fault_free () =
  let g = Generators.partial_k_tree ~seed:13 24 2 ~keep:0.7 in
  let m = Metrics.create () in
  let t, v = Bfs_tree.build_certified g ~root:0 ~metrics:m in
  check_bool "exact" true (t.Bfs_tree.dist = Traversal.bfs_undirected g 0);
  check_bool "complete" true (v = Detector.Complete);
  check_int "no suspicions" 0 (Metrics.suspicions m)

let test_detector_latency_within_bound () =
  (* a link severed from round 0 must be suspected within timeout
     (default 3 x period) rounds of the start *)
  let g = Generators.grid 4 4 in
  let faults =
    Fault.create ~seed:4
      (Fault.profile ~partitions:[ Fault.partition ~from:0 (Fault.Around [ 5 ]) ] ())
  in
  let first = ref max_int in
  let saved = !Engine.trace_sink in
  Engine.trace_sink :=
    Repro_obs.Sink.make (function
      | Repro_obs.Event.Suspect { round; _ } -> if round < !first then first := round
      | _ -> ());
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      let period = 2 in
      let m = Metrics.create () in
      let _, v =
        Bfs_tree.build_certified ~faults ~period ~max_retries:4 g ~root:0 ~metrics:m
      in
      check_bool "suspected at all" true (!first < max_int);
      check_bool "within 3 x period of the cut" true (!first <= 3 * period);
      match v with
      | Detector.Complete -> Alcotest.fail "cut must yield a Partial verdict"
      | Detector.Partial { reachable; suspected } ->
          check_bool "verdict matches oracle" true
            (reachable = Detector.oracle ~faults g ~root:0);
          check_bool "suspicions recorded" true (suspected <> []))

let test_deadline_cuts_chronic_straggler () =
  (* deadline-paced degraded mode, end to end: a permanently slowed
     node holds its neighbors' pulse gates open until they strike it
     out, the copies dropped on the cut links starve the heartbeat
     detector into suspecting it, and the certified re-run excises
     exactly the chronic straggler — no cascade onto healthy nodes *)
  let g = Generators.k_tree ~seed:5 24 2 in
  let saved = !Repro_congest.Async_engine.deadline in
  Repro_congest.Async_engine.deadline := 4;
  Fun.protect ~finally:(fun () -> Repro_congest.Async_engine.deadline := saved)
  @@ fun () ->
  let faults =
    Fault.create ~seed:1
      (Fault.profile ~stragglers:[ Fault.straggle 7 ~from:2 ~factor:40 ] ())
  in
  let m = Metrics.create () in
  let t, v = Bfs_tree.build_certified ~faults g ~root:0 ~metrics:m in
  check_bool "ran on the virtual clock" true (Metrics.pulses m > 0);
  check_bool "straggles charged" true (Metrics.straggles m > 0);
  let expected = Array.init (Digraph.n g) (fun v -> v <> 7) in
  (match v with
  | Detector.Complete -> Alcotest.fail "chronic straggler must yield Partial"
  | Detector.Partial { reachable; suspected } ->
      check_bool "exactly the straggler excised" true (reachable = expected);
      check_bool "suspicions recorded" true (suspected <> []));
  let pruned =
    Array.to_list (Digraph.edges g)
    |> List.filter (fun (e : Digraph.edge) -> e.src <> 7 && e.dst <> 7)
    |> List.map (fun (e : Digraph.edge) -> (e.src, e.dst, e.weight, e.label))
    |> Digraph.create_labeled ~directed:(Digraph.directed g) (Digraph.n g)
  in
  let want = Traversal.bfs_undirected pruned 0 in
  Array.iteri
    (fun i r -> if r then check_int (Printf.sprintf "dist %d" i) want.(i) t.Bfs_tree.dist.(i))
    expected

let test_spec_roundtrips () =
  let crash s =
    match Fault.parse_crash s with
    | Error e -> Alcotest.failf "parse_crash %S: %s" s e
    | Ok c -> (
        let printed = Format.asprintf "%a" Fault.pp_crash c in
        match Fault.parse_crash printed with
        | Error e -> Alcotest.failf "reparse %S: %s" printed e
        | Ok c' -> check_bool (s ^ " round-trips") true (c = c'))
  in
  List.iter crash [ "7:3"; "7:3:12"; "0:0:5:freeze"; "9:2:14:amnesia" ];
  let partition s =
    match Fault.parse_partition s with
    | Error e -> Alcotest.failf "parse_partition %S: %s" s e
    | Ok p -> (
        let printed = Format.asprintf "%a" Fault.pp_partition p in
        match Fault.parse_partition printed with
        | Error e -> Alcotest.failf "reparse %S: %s" printed e
        | Ok p' -> check_bool (s ^ " round-trips") true (p = p'))
  in
  List.iter partition [ "0-1:3"; "0-1,2-3:0:9"; "@4:2"; "@4,5,6:1:7"; "1-2:0" ];
  let straggle s =
    match Fault.parse_straggle s with
    | Error e -> Alcotest.failf "parse_straggle %S: %s" s e
    | Ok w -> (
        let printed = Format.asprintf "%a" Fault.pp_straggle w in
        match Fault.parse_straggle printed with
        | Error e -> Alcotest.failf "reparse %S: %s" printed e
        | Ok w' -> check_bool (s ^ " round-trips") true (w = w'))
  in
  (* permanent stall, bounded stall, permanent slowdown, bounded slowdown *)
  List.iter straggle [ "7:3"; "7:3:12"; "5:2::4"; "5:2:9:6" ]

let test_spec_errors_name_field_and_grammar () =
  let fails_with parse s frag =
    match parse s with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" s
    | Error e ->
        let has sub =
          let n = String.length sub and m = String.length e in
          let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
          go 0
        in
        check_bool (Printf.sprintf "%S error mentions %S (got %S)" s frag e) true (has frag)
  in
  fails_with Fault.parse_crash "x:3" "field 1";
  fails_with Fault.parse_crash "x:3" "NODE:FROM";
  fails_with Fault.parse_crash "4" "field(s)";
  fails_with Fault.parse_crash "4:1:z" "field 3";
  fails_with Fault.parse_crash "4:2:9:melt" "field 4";
  fails_with Fault.parse_partition "0-1" "CUT:FROM";
  fails_with Fault.parse_partition "0x1:4" "field 1";
  fails_with Fault.parse_partition "0x1:4" "malformed link";
  fails_with Fault.parse_partition "@a,2:4" "non-integer node";
  fails_with Fault.parse_partition "0-1:2:x" "field 3";
  fails_with Fault.parse_straggle "x:3" "field 1";
  fails_with Fault.parse_straggle "x:3" "NODE:FROM";
  fails_with Fault.parse_straggle "4" "field(s)";
  fails_with Fault.parse_straggle "4:1:z" "field 3";
  fails_with Fault.parse_straggle "4:2:9:fast" "field 4"

(* post-heal exactness: a partition that fully heals, plus drop/dup/
   delay/corruption, must leave no trace — outputs byte-identical to
   the fault-free run, message accounting conserved, and no corrupted
   payload ever accepted *)
let prop_healed_partition_exact =
  QCheck.Test.make ~name:"healed partition + corruption leaves no trace" ~count:25
    QCheck.(quad (int_range 0 1000) (int_range 8 24) (int_range 0 30) (int_range 0 25))
    (fun (seed, n, drop_pct, corrupt_pct) ->
      let g = Generators.partial_k_tree ~seed n 2 ~keep:0.7 in
      let profile =
        Fault.profile
          ~drop:(float_of_int drop_pct /. 100.0)
          ~corrupt:(float_of_int corrupt_pct /. 100.0)
          ~duplicate:0.1 ~max_delay:2
          ~partitions:
            [
              Fault.partition ~from:2 ~heal:(12 + (seed mod 9)) (Fault.Around [ seed mod n ]);
              Fault.partition ~from:0 ~heal:6 (Fault.Links [ (seed mod n, (seed + 1) mod n) ]);
            ]
          ()
      in
      let root = (seed + 1) mod n in
      let m = Metrics.create () in
      let t =
        Bfs_tree.build ~faults:(Fault.create ~seed:(seed + 31) profile) ~reliable:true g
          ~root ~metrics:m
      in
      t.Bfs_tree.dist = Traversal.bfs_undirected g root
      && Metrics.messages m + Metrics.duplicated m
         = Metrics.delivered m + Metrics.dropped m
      && Metrics.corrupted m = Metrics.rejected m
      && Metrics.link_failures m = 0)


let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_bfs_tree_matches_centralized;
        prop_bellman_ford;
        prop_flood_components;
        prop_transport_oracle_exact;
        prop_metrics_conservation;
        prop_recovery_amnesia_oracle_exact;
        prop_fault_adversary_deterministic;
        prop_healed_partition_exact;
      ]
  in
  Alcotest.run "repro_congest"
    [
      ( "metrics",
        [
          Alcotest.test_case "accumulates" `Quick test_metrics_accumulates;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "breakdown ordering" `Quick test_metrics_breakdown_ordering;
          Alcotest.test_case "words and delivered" `Quick test_metrics_words_delivered;
          Alcotest.test_case "fault counters" `Quick test_metrics_fault_counters;
          Alcotest.test_case "merge fault counters" `Quick test_metrics_merge_fault_counters;
          Alcotest.test_case "recovery counters" `Quick test_metrics_recovery_counters;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bandwidth" `Quick test_engine_enforces_bandwidth;
          Alcotest.test_case "non neighbor" `Quick test_engine_rejects_non_neighbor;
          Alcotest.test_case "round counting" `Quick test_engine_counts_rounds;
          Alcotest.test_case "round limit payload" `Quick test_engine_round_limit_payload;
          Alcotest.test_case "inbox sorted by sender" `Quick test_engine_inbox_sorted_by_sender;
          Alcotest.test_case "oversize diagnostics" `Quick test_engine_oversize_diagnostics;
          Alcotest.test_case "words and delivered" `Quick test_engine_counts_words_and_delivered;
        ] );
      ( "audit",
        [
          Alcotest.test_case "unstable words" `Quick test_audit_catches_unstable_words;
          Alcotest.test_case "in-flight mutation" `Quick test_audit_catches_inflight_mutation;
          Alcotest.test_case "metrics drift" `Quick test_audit_catches_metrics_drift;
          Alcotest.test_case "audit off permits drift" `Quick test_audit_off_permits_drift;
          Alcotest.test_case "clean under faults" `Quick test_audit_clean_under_faults;
        ] );
      ( "faults",
        [
          Alcotest.test_case "profile validation" `Quick test_fault_profile_validation;
          Alcotest.test_case "deterministic" `Quick test_fault_run_is_deterministic;
          Alcotest.test_case "raw bfs degrades" `Quick test_fault_raw_bfs_degrades;
          Alcotest.test_case "crash-stop liveness" `Quick test_fault_crash_stop_cannot_livelock;
          Alcotest.test_case "crash partitions" `Quick test_fault_crash_partitions_raw_bfs;
          Alcotest.test_case "amnesia validation" `Quick test_fault_amnesia_requires_restart;
          Alcotest.test_case "amnesia reinit" `Quick test_engine_amnesia_reinits_state;
          Alcotest.test_case "amnesia liveness" `Quick test_engine_amnesia_outage_keeps_run_alive;
        ] );
      ( "partition & integrity",
        [
          Alcotest.test_case "partition validation" `Quick test_partition_profile_validation;
          Alcotest.test_case "partition semantics" `Quick test_partition_semantics;
          Alcotest.test_case "corruption never accepted" `Quick
            test_corruption_rejected_never_accepted;
          Alcotest.test_case "retransmit determinism" `Quick
            test_retransmit_schedule_deterministic;
          Alcotest.test_case "retransmit schedule pin" `Quick test_retransmit_schedule_pinned;
          Alcotest.test_case "retry cap terminates" `Quick
            test_retry_cap_declares_dead_link_and_terminates;
          Alcotest.test_case "detector fault-free complete" `Quick
            test_detector_complete_when_fault_free;
          Alcotest.test_case "detector latency bound" `Quick test_detector_latency_within_bound;
          Alcotest.test_case "deadline cuts chronic straggler" `Quick
            test_deadline_cuts_chronic_straggler;
          Alcotest.test_case "spec round-trips" `Quick test_spec_roundtrips;
          Alcotest.test_case "spec errors name the field" `Quick
            test_spec_errors_name_field_and_grammar;
        ] );
      ( "transport",
        [
          Alcotest.test_case "fault-free exact" `Quick test_transport_no_faults_exact;
          Alcotest.test_case "bfs under drops" `Quick test_transport_restores_bfs_under_drops;
          Alcotest.test_case "bellman-ford" `Quick test_transport_restores_bellman_ford;
          Alcotest.test_case "leader" `Quick test_transport_restores_leader;
          Alcotest.test_case "stream order" `Quick test_transport_preserves_stream_order;
          Alcotest.test_case "convergecast" `Quick test_transport_convergecast_under_faults;
          Alcotest.test_case "crash restart" `Quick test_transport_survives_crash_restart;
          Alcotest.test_case "amnesia alone degrades" `Quick
            test_transport_alone_loses_amnesia_state;
          Alcotest.test_case "watermark dedup" `Quick test_transport_watermark_dedup_exact;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "bfs amnesia exact" `Quick test_recovery_bfs_amnesia_exact;
          Alcotest.test_case "resync without checkpoints" `Quick
            test_recovery_without_checkpoints_still_exact;
          Alcotest.test_case "root crash" `Quick test_recovery_root_crash;
          Alcotest.test_case "bellman-ford amnesia" `Quick test_recovery_bellman_ford_amnesia;
          Alcotest.test_case "flood amnesia" `Quick test_recovery_flood_amnesia;
          Alcotest.test_case "crash-free zero overhead" `Quick
            test_recovery_crash_free_zero_round_overhead;
        ] );
      ( "bfs tree",
        [
          Alcotest.test_case "grid" `Quick test_bfs_tree_grid;
          Alcotest.test_case "parents" `Quick test_bfs_tree_parents_consistent;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "flood" `Quick test_flood;
          Alcotest.test_case "convergecast" `Quick test_convergecast_sum;
          Alcotest.test_case "convergecast singleton" `Quick test_convergecast_single_node;
          Alcotest.test_case "stream pipelines" `Quick test_stream_down_pipelines;
        ] );
      ("leader", [ Alcotest.test_case "min id" `Quick test_leader_is_min_id ]);
      ( "bellman-ford",
        [
          Alcotest.test_case "directed" `Quick test_bellman_ford_exact;
          Alcotest.test_case "undirected" `Quick test_bellman_ford_undirected;
        ] );
      ( "apsp",
        [
          Alcotest.test_case "matches bfs" `Quick test_apsp_matches_bfs;
          Alcotest.test_case "diameter" `Quick test_diameter_baseline;
          Alcotest.test_case "linear scaling" `Quick test_diameter_baseline_scales_linearly;
          Alcotest.test_case "two approx" `Quick test_diameter_two_approx_bounds;
          Alcotest.test_case "flood components" `Quick test_flood_components_match_centralized;
          Alcotest.test_case "multi bfs exact" `Quick test_multi_bfs_exact;
          Alcotest.test_case "multi bfs scheduling" `Quick test_multi_bfs_scheduling_beats_sequential;
        ] );
      ( "regression",
        [
          Alcotest.test_case "pinned round counts" `Quick test_round_count_regression_guard;
        ] );
      ("properties", qsuite);
    ]
