module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Shortest_path = Repro_graph.Shortest_path
module Generators = Repro_graph.Generators
module Metrics = Repro_congest.Metrics
module Engine = Repro_congest.Engine
module Bfs_tree = Repro_congest.Bfs_tree
module Broadcast = Repro_congest.Broadcast
module Leader = Repro_congest.Leader
module Bellman_ford = Repro_congest.Bellman_ford
module Apsp = Repro_congest.Apsp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_accumulates () =
  let m = Metrics.create () in
  Metrics.add m ~label:"a" 3;
  Metrics.add m ~label:"b" 2;
  Metrics.add m ~label:"a" 1;
  Metrics.add_messages m 10;
  check_int "rounds" 6 (Metrics.rounds m);
  check_int "messages" 10 (Metrics.messages m);
  Alcotest.(check (list (pair string int))) "breakdown" [ ("a", 4); ("b", 2) ]
    (Metrics.breakdown m)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a ~label:"x" 2;
  Metrics.add b ~label:"x" 3;
  Metrics.add b ~label:"y" 1;
  Metrics.add_messages b 5;
  Metrics.merge ~into:a b;
  check_int "merged rounds" 6 (Metrics.rounds a);
  check_int "merged messages" 5 (Metrics.messages a)

(* ------------------------------------------------------------------ *)
(* Engine *)

module IntMsg = struct
  type t = int

  let words _ = 1
end

module E = Engine.Make (IntMsg)

let test_engine_enforces_bandwidth () =
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let ran = ref false in
  (try
     ignore
       (E.run sk
          ~init:(fun _ -> true)
          ~step:(fun ~round:_ ~node st _ ->
            if node = 0 && st then (false, [ (1, 1); (1, 2) ]) else (false, []))
          ~active:Fun.id ~metrics:m ~label:"t" ());
     ran := true
   with Invalid_argument _ -> ());
  check_bool "duplicate send rejected" false !ran

let test_engine_rejects_non_neighbor () =
  let sk = Generators.path 3 in
  let m = Metrics.create () in
  Alcotest.check_raises "non neighbor"
    (Invalid_argument "Engine.run(t): node 0 sent to non-neighbor 2") (fun () ->
      ignore
        (E.run sk
           ~init:(fun _ -> true)
           ~step:(fun ~round:_ ~node st _ ->
             if node = 0 && st then (false, [ (2, 1) ]) else (false, []))
           ~active:Fun.id ~metrics:m ~label:"t" ()))

let test_engine_counts_rounds () =
  (* one hop of communication = 2 engine rounds: send round + delivery round *)
  let sk = Generators.path 2 in
  let m = Metrics.create () in
  let states =
    E.run sk
      ~init:(fun v -> if v = 0 then 1 else 0)
      ~step:(fun ~round:_ ~node:_ st inbox ->
        match inbox with
        | (_, v) :: _ -> (st + (10 * v), [])
        | [] -> if st = 1 then (2, [ (1, 7) ]) else (st, []))
      ~active:(fun st -> st = 1)
      ~metrics:m ~label:"t" ()
  in
  check_int "receiver got it" 70 states.(1);
  check_bool "bounded rounds" true (Metrics.rounds m <= 3);
  check_int "one message" 1 (Metrics.messages m)

(* ------------------------------------------------------------------ *)
(* BFS tree *)

let test_bfs_tree_grid () =
  let g = Generators.grid 5 6 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let expected = Traversal.bfs_undirected g 0 in
  Alcotest.(check (array int)) "distances match centralized BFS" expected t.Bfs_tree.dist;
  check_int "depth" 9 t.Bfs_tree.depth;
  check_int "root parent" 0 t.Bfs_tree.parent.(0);
  (* rounds proportional to depth *)
  check_bool "rounds ~ depth" true (Metrics.rounds m <= (3 * t.Bfs_tree.depth) + 5)

let test_bfs_tree_parents_consistent () =
  let g = Generators.k_tree ~seed:5 60 3 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:7 ~metrics:m in
  Array.iteri
    (fun v p ->
      if v <> 7 then begin
        check_bool "has parent" true (p >= 0);
        check_int "parent one closer" (t.Bfs_tree.dist.(v) - 1) t.Bfs_tree.dist.(p)
      end)
    t.Bfs_tree.parent

let prop_bfs_tree_matches_centralized =
  QCheck.Test.make ~name:"distributed BFS distances = centralized" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 5 40))
    (fun (seed, n) ->
      let g = Generators.gnp_connected ~seed n 0.1 in
      let m = Metrics.create () in
      let t = Bfs_tree.build g ~root:(seed mod n) ~metrics:m in
      t.Bfs_tree.dist = Traversal.bfs_undirected g (seed mod n))

(* ------------------------------------------------------------------ *)
(* Broadcast primitives *)

let test_flood () =
  let g = Generators.cycle 10 in
  let m = Metrics.create () in
  let got = Broadcast.flood g ~root:3 ~value:99 ~metrics:m in
  Array.iter (fun v -> check_int "all received" 99 v) got

let test_convergecast_sum () =
  let g = Generators.grid 4 4 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let values = Array.init 16 Fun.id in
  check_int "sum" 120 (Broadcast.convergecast t ~op:( + ) ~values ~metrics:m)

let test_convergecast_single_node () =
  let g = Generators.path 1 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  check_int "singleton" 42 (Broadcast.convergecast t ~op:( + ) ~values:[| 42 |] ~metrics:m)

let test_stream_down_pipelines () =
  let g = Generators.path 10 in
  let m = Metrics.create () in
  let t = Bfs_tree.build g ~root:0 ~metrics:m in
  let before = Metrics.rounds m in
  let items = List.init 20 Fun.id in
  let got = Broadcast.stream_down t ~items ~metrics:m in
  Array.iter (fun l -> Alcotest.(check (list int)) "items in order" items l) got;
  let used = Metrics.rounds m - before in
  (* pipelining: depth 9 + 20 items, not depth * items *)
  check_bool "pipelined" true (used <= 9 + 20 + 3)

(* ------------------------------------------------------------------ *)
(* Leader election *)

let test_leader_is_min_id () =
  let g = Generators.k_tree ~seed:11 40 2 in
  let m = Metrics.create () in
  check_int "leader" 0 (Leader.elect g ~metrics:m)

(* ------------------------------------------------------------------ *)
(* Bellman-Ford *)

let test_bellman_ford_exact () =
  let g = Generators.bidirect ~seed:3 ~max_weight:9 (Generators.k_tree ~seed:2 40 3) in
  let m = Metrics.create () in
  let d = Bellman_ford.run g ~source:0 ~metrics:m in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 0) d

let test_bellman_ford_undirected () =
  let g = Generators.random_weights ~seed:4 ~max_weight:7 (Generators.grid 4 5) in
  let m = Metrics.create () in
  let d = Bellman_ford.run g ~source:10 ~metrics:m in
  Alcotest.(check (array int)) "matches dijkstra" (Shortest_path.dijkstra g 10) d

let prop_bellman_ford =
  QCheck.Test.make ~name:"bellman-ford = dijkstra on random digraphs" ~count:25
    QCheck.(pair (int_range 0 500) (int_range 6 30))
    (fun (seed, n) ->
      let g =
        Generators.bidirect ~seed ~max_weight:12 (Generators.gnp_connected ~seed n 0.12)
      in
      let m = Metrics.create () in
      Bellman_ford.run g ~source:(seed mod n) ~metrics:m
      = Shortest_path.dijkstra g (seed mod n))

(* ------------------------------------------------------------------ *)
(* APSP / diameter baseline *)

let test_apsp_matches_bfs () =
  let g = Generators.grid 3 5 in
  let m = Metrics.create () in
  let d = Apsp.hop_distances g ~metrics:m in
  for v = 0 to Digraph.n g - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "row %d" v)
      (Traversal.bfs_undirected g v) d.(v)
  done

let test_diameter_baseline () =
  let g = Generators.cycle 12 in
  let m = Metrics.create () in
  check_int "cycle diameter" 6 (Apsp.diameter g ~metrics:m)

let test_diameter_baseline_scales_linearly () =
  (* the baseline needs Omega(n) rounds even on low-treewidth graphs: this
     is the contrast side of the separation experiment E5b *)
  let rounds n =
    let g = Generators.apex_cliques ~cliques:(n / 4) ~size:4 in
    let m = Metrics.create () in
    ignore (Apsp.diameter g ~metrics:m);
    Metrics.rounds m
  in
  let r1 = rounds 40 and r2 = rounds 80 in
  check_bool "grows at least linearly" true (r2 >= (3 * r1) / 2)


(* ------------------------------------------------------------------ *)
(* Message-level connected components *)

let test_flood_components_match_centralized () =
  let g = Generators.grid 5 5 in
  let mask = Array.init 25 (fun v -> v mod 7 <> 3) in
  let m = Metrics.create () in
  let labels = Repro_congest.Components.flood_labels g ~mask ~metrics:m in
  let expected, _ = Traversal.components_mask g mask in
  for u = 0 to 24 do
    for v = 0 to 24 do
      if mask.(u) && mask.(v) then
        check_bool "same grouping" true
          ((labels.(u) = labels.(v)) = (expected.(u) = expected.(v)))
      else if not mask.(u) then check_int "outside mask" (-1) labels.(u)
    done
  done;
  check_bool "rounds measured" true (Metrics.rounds m > 0)

let prop_flood_components =
  QCheck.Test.make ~name:"flooded components = centralized components" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 6 30))
    (fun (seed, n) ->
      let seed = abs seed and n = max 6 (min 30 n) in
      let g = Generators.gnp_connected ~seed n 0.15 in
      let rng = Random.State.make [| seed; 9 |] in
      let mask = Array.init n (fun _ -> Random.State.float rng 1.0 > 0.3) in
      let m = Metrics.create () in
      let labels = Repro_congest.Components.flood_labels g ~mask ~metrics:m in
      let expected, _ = Traversal.components_mask g mask in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if mask.(u) && mask.(v)
             && (labels.(u) = labels.(v)) <> (expected.(u) = expected.(v))
          then ok := false
        done
      done;
      !ok)


(* ------------------------------------------------------------------ *)
(* Multi-instance BFS (Theorem 6 at message level) *)

let test_multi_bfs_exact () =
  let g = Generators.k_tree ~seed:13 40 3 in
  let roots = [ 0; 7; 19; 33 ] in
  let m = Metrics.create () in
  let r = Repro_congest.Multi_bfs.run g ~roots ~metrics:m () in
  List.iteri
    (fun i root ->
      Alcotest.(check (array int))
        (Printf.sprintf "instance %d" i)
        (Traversal.bfs_undirected g root)
        r.Repro_congest.Multi_bfs.dist.(i))
    roots

let test_multi_bfs_scheduling_beats_sequential () =
  let g = Generators.grid 8 8 in
  let d = Traversal.diameter g in
  let k = 16 in
  let roots = List.init k (fun i -> (i * 4) mod 64) in
  let m = Metrics.create () in
  let r = Repro_congest.Multi_bfs.run g ~roots ~seed:3 ~metrics:m () in
  (* Theorem 6 shape: ~ D + k, far below the sequential k * D *)
  check_bool "near dilation + congestion" true
    (r.Repro_congest.Multi_bfs.rounds <= 4 * (d + k));
  check_bool "beats sequential" true (r.Repro_congest.Multi_bfs.rounds < k * d)

let test_diameter_two_approx_bounds () =
  List.iter
    (fun g ->
      let m = Metrics.create () in
      let approx = Apsp.diameter_two_approx g ~metrics:m in
      let exact = Traversal.diameter g in
      check_bool "lower bound" true (approx <= exact);
      check_bool "within factor 2" true (exact <= 2 * approx);
      (* O(D) rounds, not Omega(n) *)
      check_bool "cheap" true (Metrics.rounds m <= (6 * exact) + 10))
    [ Generators.cycle 20; Generators.grid 5 5; Generators.k_tree ~seed:3 50 3 ]

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_bfs_tree_matches_centralized; prop_bellman_ford; prop_flood_components ]
  in
  Alcotest.run "repro_congest"
    [
      ( "metrics",
        [
          Alcotest.test_case "accumulates" `Quick test_metrics_accumulates;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bandwidth" `Quick test_engine_enforces_bandwidth;
          Alcotest.test_case "non neighbor" `Quick test_engine_rejects_non_neighbor;
          Alcotest.test_case "round counting" `Quick test_engine_counts_rounds;
        ] );
      ( "bfs tree",
        [
          Alcotest.test_case "grid" `Quick test_bfs_tree_grid;
          Alcotest.test_case "parents" `Quick test_bfs_tree_parents_consistent;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "flood" `Quick test_flood;
          Alcotest.test_case "convergecast" `Quick test_convergecast_sum;
          Alcotest.test_case "convergecast singleton" `Quick test_convergecast_single_node;
          Alcotest.test_case "stream pipelines" `Quick test_stream_down_pipelines;
        ] );
      ("leader", [ Alcotest.test_case "min id" `Quick test_leader_is_min_id ]);
      ( "bellman-ford",
        [
          Alcotest.test_case "directed" `Quick test_bellman_ford_exact;
          Alcotest.test_case "undirected" `Quick test_bellman_ford_undirected;
        ] );
      ( "apsp",
        [
          Alcotest.test_case "matches bfs" `Quick test_apsp_matches_bfs;
          Alcotest.test_case "diameter" `Quick test_diameter_baseline;
          Alcotest.test_case "linear scaling" `Quick test_diameter_baseline_scales_linearly;
          Alcotest.test_case "two approx" `Quick test_diameter_two_approx_bounds;
          Alcotest.test_case "flood components" `Quick test_flood_components_match_centralized;
          Alcotest.test_case "multi bfs exact" `Quick test_multi_bfs_exact;
          Alcotest.test_case "multi bfs scheduling" `Quick test_multi_bfs_scheduling_beats_sequential;
        ] );
      ("properties", qsuite);
    ]
