type 'a t = { mutable heap : (int * 'a) array; mutable size : int }

let create () = { heap = [||]; size = 0 }
let is_empty q = q.size = 0
let length q = q.size

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nheap = Array.make ncap entry in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst heap.(i) < fst heap.(parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < size && fst heap.(l) < fst heap.(!smallest) then smallest := l;
  if r < size && fst heap.(r) < fst heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = heap.(i) in
    heap.(i) <- heap.(!smallest);
    heap.(!smallest) <- tmp;
    sift_down heap size !smallest
  end

let push q prio x =
  let entry = (prio, x) in
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q.heap (q.size - 1)

let peek_min q = if q.size = 0 then raise Not_found else q.heap.(0)

let pop_min q =
  if q.size = 0 then raise Not_found;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q.heap q.size 0
  end;
  top
