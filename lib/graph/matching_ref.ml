let inf = Digraph.inf

(* Hopcroft-Karp over the left side (color 0 vertices). Each phase runs a
   BFS computing layered distances over left vertices, then augments along
   vertex-disjoint shortest augmenting paths by DFS. O(m sqrt n). *)
let hopcroft_karp_mask g mask =
  let n = Digraph.n g in
  let color =
    match Bipartite.bipartition g with
    | Some c -> c
    | None -> invalid_arg "Matching_ref: graph is not bipartite"
  in
  let mate = Array.make n (-1) in
  let dist = Array.make n inf in
  let adj v =
    let out = ref [] in
    let scan ei =
      let e = Digraph.edge g ei in
      let u = if e.Digraph.src = v then e.Digraph.dst else e.Digraph.src in
      if u <> v && mask.(u) then out := u :: !out
    in
    Array.iter scan (Digraph.out_edges g v);
    if Digraph.directed g then Array.iter scan (Digraph.in_edges g v);
    !out
  in
  let lefts =
    List.filter (fun v -> mask.(v) && color.(v) = 0) (List.init n Fun.id)
  in
  let bfs () =
    let queue = Queue.create () in
    Array.fill dist 0 n inf;
    List.iter
      (fun v ->
        if mate.(v) < 0 then begin
          dist.(v) <- 0;
          Queue.add v queue
        end)
      lefts;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun u ->
          let w = mate.(u) in
          if w < 0 then found := true
          else if dist.(w) = inf then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
        (adj v)
    done;
    !found
  in
  let rec dfs v =
    List.exists
      (fun u ->
        let w = mate.(u) in
        if w < 0 || (dist.(w) = dist.(v) + 1 && dfs w) then begin
          mate.(v) <- u;
          mate.(u) <- v;
          true
        end
        else false)
      (adj v)
    ||
    begin
      dist.(v) <- inf;
      false
    end
  in
  while bfs () do
    List.iter (fun v -> if mate.(v) < 0 then ignore (dfs v)) lefts
  done;
  mate

let hopcroft_karp g = hopcroft_karp_mask g (Array.make (Digraph.n g) true)

let size mate =
  let matched_endpoints =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate
  in
  matched_endpoints / 2

let is_matching g mate =
  let n = Digraph.n g in
  if Array.length mate <> n then false
  else begin
    let ok = ref true in
    let has_edge = Hashtbl.create (Digraph.m g) in
    Array.iter
      (fun e ->
        Hashtbl.replace has_edge
          (min e.Digraph.src e.Digraph.dst, max e.Digraph.src e.Digraph.dst)
          ())
      (Digraph.edges g);
    for v = 0 to n - 1 do
      let u = mate.(v) in
      if u >= 0 then begin
        if u >= n || mate.(u) <> v then ok := false
        else if not (Hashtbl.mem has_edge (min u v, max u v)) then ok := false
      end
    done;
    !ok
  end

let greedy g =
  let n = Digraph.n g in
  let mate = Array.make n (-1) in
  Array.iter
    (fun e ->
      let u = e.Digraph.src and v = e.Digraph.dst in
      if u <> v && mate.(u) < 0 && mate.(v) < 0 then begin
        mate.(u) <- v;
        mate.(v) <- u
      end)
    (Digraph.edges g);
  mate
