(** Bipartiteness testing and 2-colorings. *)

(** [bipartition g] is [Some color] with [color.(v)] in [{0,1}] when the
    skeleton of [g] is bipartite, [None] otherwise. Vertices in different
    components are colored independently. *)
val bipartition : Digraph.t -> int array option

val is_bipartite : Digraph.t -> bool
