(** Graph families used by tests, examples, and the experiment harness.

    All randomized generators take an explicit [seed] so every experiment
    is reproducible. Generators whose family has a known exact treewidth
    document it; these are the instances the round-complexity experiments
    sweep over. *)

val path : int -> Digraph.t (* treewidth 1 *)
val cycle : int -> Digraph.t (* treewidth 2 *)
val complete : int -> Digraph.t (* treewidth n-1 *)
val star : int -> Digraph.t (* treewidth 1; n = #leaves + 1 *)

(** [grid rows cols] has treewidth [min rows cols] and is bipartite. *)
val grid : int -> int -> Digraph.t

(** [binary_tree depth] is a complete binary tree; treewidth 1. *)
val binary_tree : int -> Digraph.t

(** [k_tree ~seed n k] is a random k-tree on [n >= k+1] vertices:
    treewidth exactly [k], built by repeatedly attaching a new vertex to a
    random existing k-clique. *)
val k_tree : seed:int -> int -> int -> Digraph.t

(** [partial_k_tree ~seed n k ~keep] keeps each non-spanning-tree edge of
    a random k-tree with probability [keep]; treewidth at most [k] and the
    graph stays connected. *)
val partial_k_tree : seed:int -> int -> int -> keep:float -> Digraph.t

(** [apex_cliques ~cliques ~size] is [cliques] disjoint cliques of [size]
    vertices plus one apex adjacent to every vertex: diameter 2 and
    treewidth [size]. The constant-diameter / large-treewidth family used
    by the girth-vs-diameter separation experiment (E5b). *)
val apex_cliques : cliques:int -> size:int -> Digraph.t

(** [ring_of_rings ~rings ~ring_size] chains small cycles in a large
    cycle; treewidth 2, girth [min ring_size rings*...] — used by the
    girth example. *)
val ring_of_rings : rings:int -> ring_size:int -> Digraph.t

(** [gnp_connected ~seed n p] is an Erdos-Renyi graph conditioned on
    connectivity (a random spanning tree is always included). *)
val gnp_connected : seed:int -> int -> float -> Digraph.t

(** [subdivide g] replaces every edge by a length-2 path through a fresh
    vertex (each half keeps the label; weights split as [w] and [0]).
    The result is bipartite and treewidth is preserved for treewidth >= 2. *)
val subdivide : Digraph.t -> Digraph.t

(** [random_weights ~seed ~max_weight g] draws each edge weight uniformly
    from [1 .. max_weight]. *)
val random_weights : seed:int -> max_weight:int -> Digraph.t -> Digraph.t

(** [bidirect ~seed ~max_weight g] turns an undirected graph into a
    directed one with one edge per direction, weights drawn independently
    (a standard way to get directed low-treewidth instances: the skeleton,
    and hence the treewidth, is unchanged). *)
val bidirect : seed:int -> max_weight:int -> Digraph.t -> Digraph.t

(** [wheel n] is a cycle on [n-1] vertices (unit weights) plus a hub
    adjacent to every rim vertex through heavy spokes (weight [2n]).
    Treewidth 3 and unweighted diameter 2, but weighted shortest paths
    between rim vertices have Theta(n) hops — the instance on which
    hop-bounded baselines like Bellman-Ford need Theta(n) rounds while
    the unweighted diameter stays constant (experiment E2b). *)
val wheel : int -> Digraph.t

(** [caterpillar ~spine ~legs] is a path of [spine] vertices with [legs]
    pendant vertices attached to each spine vertex; treewidth 1. *)
val caterpillar : spine:int -> legs:int -> Digraph.t

(** [series_parallel ~seed n] builds a random two-terminal
    series-parallel graph by repeated series/parallel edge expansions;
    treewidth at most 2. *)
val series_parallel : seed:int -> int -> Digraph.t
