let vertices mask =
  let out = ref [] in
  Array.iteri (fun v m -> if m then out := v :: !out) mask;
  List.rev !out

let size mask = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 mask

let without mask vs =
  let mask' = Array.copy mask in
  List.iter (fun v -> mask'.(v) <- false) vs;
  mask'

let edge_count g mask =
  Array.fold_left
    (fun acc e ->
      if mask.(e.Digraph.src) && mask.(e.Digraph.dst) then acc + 1 else acc)
    0 (Digraph.edges g)
