let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n"
       (if Digraph.directed g then "digraph" else "graph")
       (Digraph.n g) (Digraph.m g));
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (if e.Digraph.label = 0 then
           Printf.sprintf "%d %d %d\n" e.Digraph.src e.Digraph.dst e.Digraph.weight
         else
           Printf.sprintf "%d %d %d %d\n" e.Digraph.src e.Digraph.dst e.Digraph.weight
             e.Digraph.label))
    (Digraph.edges g);
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> invalid_arg "Io.of_string: empty input"
  | (lno, header) :: rest -> (
      let fail lno msg = invalid_arg (Printf.sprintf "Io.of_string: line %d: %s" lno msg) in
      let directed, n, m =
        match String.split_on_char ' ' header |> List.filter (( <> ) "") with
        | [ "digraph"; n; m ] -> (true, int_of_string n, int_of_string m)
        | [ "graph"; n; m ] -> (false, int_of_string n, int_of_string m)
        | _ -> fail lno "expected '<graph|digraph> <n> <m>'"
      in
      if List.length rest <> m then
        fail lno (Printf.sprintf "expected %d edge lines, found %d" m (List.length rest));
      let parse_edge (lno, line) =
        match
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.map int_of_string_opt
        with
        | [ Some s; Some d; Some w ] -> (s, d, w, 0)
        | [ Some s; Some d; Some w; Some l ] -> (s, d, w, l)
        | _ -> fail lno "expected '<src> <dst> <weight> [label]'"
      in
      try Digraph.create_labeled ~directed n (List.map parse_edge rest)
      with Invalid_argument e -> fail lno e)

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_dot g =
  let buf = Buffer.create 1024 in
  let directed = Digraph.directed g in
  Buffer.add_string buf (if directed then "digraph G {\n" else "graph G {\n");
  let arrow = if directed then "->" else "--" in
  Array.iter
    (fun e ->
      let label =
        if e.Digraph.label = 0 then string_of_int e.Digraph.weight
        else Printf.sprintf "%d:%d" e.Digraph.weight e.Digraph.label
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d %s %d [label=\"%s\"];\n" e.Digraph.src arrow
           e.Digraph.dst label))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
