(** Centralized bipartite maximum matching (Hopcroft-Karp).

    Reference oracle for the distributed matching algorithm of Theorem 4.
    A matching is represented by a mate array: [mate.(v)] is the matched
    partner of [v], or [-1] when [v] is unmatched. *)

(** [hopcroft_karp g] is a maximum matching of the undirected bipartite
    graph [g]. @raise Invalid_argument if [g] is not bipartite. *)
val hopcroft_karp : Digraph.t -> int array

(** [hopcroft_karp_mask g mask] restricts the graph to masked-in
    vertices. *)
val hopcroft_karp_mask : Digraph.t -> bool array -> int array

(** [size mate] is the number of matched edges. *)
val size : int array -> int

(** [is_matching g mate] checks consistency: mates are mutual and every
    matched pair is joined by an edge of [g]. *)
val is_matching : Digraph.t -> int array -> bool

(** [greedy g] is a maximal (not maximum) matching; baseline helper. *)
val greedy : Digraph.t -> int array
