type edge = { id : int; src : int; dst : int; weight : int; label : int }

type t = {
  n : int;
  directed : bool;
  edges : edge array;
  out_adj : int array array;
  in_adj : int array array;
}

let inf = max_int / 4

let check_endpoint n v =
  if v < 0 || v >= n then invalid_arg (Printf.sprintf "Digraph: vertex %d out of range [0,%d)" v n)

let build_adjacency ~directed n edges =
  let out_cnt = Array.make n 0 and in_cnt = Array.make n 0 in
  let bump counts v = counts.(v) <- counts.(v) + 1 in
  Array.iter
    (fun e ->
      if directed then begin
        bump out_cnt e.src;
        bump in_cnt e.dst
      end
      else begin
        bump out_cnt e.src;
        if e.dst <> e.src then bump out_cnt e.dst
      end)
    edges;
  let out_adj = Array.init n (fun v -> Array.make out_cnt.(v) (-1)) in
  let in_adj =
    if directed then Array.init n (fun v -> Array.make in_cnt.(v) (-1)) else out_adj
  in
  let out_pos = Array.make n 0 and in_pos = Array.make n 0 in
  let put adj pos v e =
    adj.(v).(pos.(v)) <- e;
    pos.(v) <- pos.(v) + 1
  in
  Array.iter
    (fun e ->
      if directed then begin
        put out_adj out_pos e.src e.id;
        put in_adj in_pos e.dst e.id
      end
      else begin
        put out_adj out_pos e.src e.id;
        if e.dst <> e.src then put out_adj out_pos e.dst e.id
      end)
    edges;
  (out_adj, in_adj)

let of_edge_array ~directed n edges =
  let out_adj, in_adj = build_adjacency ~directed n edges in
  { n; directed; edges; out_adj; in_adj }

let create_labeled ~directed n spec =
  let mk i (src, dst, weight, label) =
    check_endpoint n src;
    check_endpoint n dst;
    if weight < 0 then invalid_arg "Digraph: negative weight";
    { id = i; src; dst; weight; label }
  in
  of_edge_array ~directed n (Array.of_list (List.mapi mk spec))

let create ~directed n spec =
  create_labeled ~directed n (List.map (fun (s, d, w) -> (s, d, w, 0)) spec)

let with_labels g f =
  of_edge_array ~directed:g.directed g.n
    (Array.map (fun e -> { e with label = f e }) g.edges)

let with_weights g f =
  of_edge_array ~directed:g.directed g.n
    (Array.map (fun e -> { e with weight = f e }) g.edges)

let n g = g.n
let m g = Array.length g.edges
let directed g = g.directed
let edge g i = g.edges.(i)
let edges g = g.edges
let out_edges g v = g.out_adj.(v)
let in_edges g v = if g.directed then g.in_adj.(v) else g.out_adj.(v)

let dst_of g e v =
  if g.directed then e.dst else if e.src = v then e.dst else e.src

let neighbors g v =
  let seen = Hashtbl.create 8 in
  let add u = if u <> v && not (Hashtbl.mem seen u) then Hashtbl.add seen u () in
  Array.iter (fun ei -> let e = g.edges.(ei) in add e.src; add e.dst) g.out_adj.(v);
  if g.directed then
    Array.iter (fun ei -> let e = g.edges.(ei) in add e.src; add e.dst) g.in_adj.(v);
  let out = Hashtbl.fold (fun u () acc -> u :: acc) seen [] in
  Array.of_list (List.sort compare out)

let skeleton g =
  let seen = Hashtbl.create (Array.length g.edges) in
  let pairs = ref [] in
  Array.iter
    (fun e ->
      let u = min e.src e.dst and v = max e.src e.dst in
      if u <> v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        pairs := (u, v, 1) :: !pairs
      end)
    g.edges;
  create ~directed:false g.n (List.rev !pairs)

let max_multiplicity g =
  let counts = Hashtbl.create (Array.length g.edges) in
  let best = ref (if Array.length g.edges = 0 then 0 else 1) in
  Array.iter
    (fun e ->
      let key = (min e.src e.dst, max e.src e.dst) in
      let c = (try Hashtbl.find counts key with Not_found -> 0) + 1 in
      Hashtbl.replace counts key c;
      if c > !best then best := c)
    g.edges;
  !best

let induced g vs =
  let old_of_new = Array.of_list vs in
  let nn = Array.length old_of_new in
  let new_of_old = Array.make g.n (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) old_of_new;
  let kept = ref [] in
  Array.iter
    (fun e ->
      let s = new_of_old.(e.src) and d = new_of_old.(e.dst) in
      if s >= 0 && d >= 0 then kept := { e with src = s; dst = d } :: !kept)
    g.edges;
  let kept = Array.of_list (List.rev !kept) in
  let kept = Array.mapi (fun i e -> { e with id = i }) kept in
  (of_edge_array ~directed:g.directed nn kept, old_of_new, new_of_old)

let reverse g =
  if not g.directed then g
  else
    of_edge_array ~directed:true g.n
      (Array.map (fun e -> { e with src = e.dst; dst = e.src }) g.edges)

let total_weight g = Array.fold_left (fun acc e -> acc + e.weight) 0 g.edges

let pp fmt g =
  Format.fprintf fmt "@[<h>%s graph: n=%d m=%d@]"
    (if g.directed then "directed" else "undirected")
    g.n (Array.length g.edges)
