let bipartition g =
  let n = Digraph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if !ok && color.(s) < 0 then begin
      color.(s) <- 0;
      Queue.add s queue;
      while !ok && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let visit u =
          if u <> v then
            if color.(u) < 0 then begin
              color.(u) <- 1 - color.(v);
              Queue.add u queue
            end
            else if color.(u) = color.(v) then ok := false
        in
        let scan ei =
          let e = Digraph.edge g ei in
          visit e.Digraph.src;
          visit e.Digraph.dst
        in
        Array.iter scan (Digraph.out_edges g v);
        if Digraph.directed g then Array.iter scan (Digraph.in_edges g v)
      done
    end
  done;
  if !ok then Some color else None

let is_bipartite g = bipartition g <> None
