(** Weighted directed/undirected multigraphs.

    Vertices are integers [0 .. n-1]. Edges carry non-negative integer
    weights (the paper's cost function [c : E -> N]) and an optional
    integer label (used by stateful-walk constraints).

    A single type covers both orientations: when [directed g] is false,
    every edge is traversable in both directions and appears in the
    incidence lists of both endpoints. Multi-edges and self-loops are
    allowed, matching the multigraph setting of Section 5 of the paper. *)

type edge = { id : int; src : int; dst : int; weight : int; label : int }

type t

(** [create ~directed n spec] builds a graph on [n] vertices from
    [(src, dst, weight)] triples. Labels default to 0.
    @raise Invalid_argument on out-of-range endpoints or negative weight. *)
val create : directed:bool -> int -> (int * int * int) list -> t

(** [create_labeled ~directed n spec] is [create] with explicit
    [(src, dst, weight, label)] quadruples. *)
val create_labeled : directed:bool -> int -> (int * int * int * int) list -> t

(** [with_labels g f] is [g] with each edge's label replaced by [f e]. *)
val with_labels : t -> (edge -> int) -> t

(** [with_weights g f] is [g] with each edge's weight replaced by [f e]. *)
val with_weights : t -> (edge -> int) -> t

val n : t -> int

(** [m g] is the number of stored edges (each undirected edge counted once). *)
val m : t -> int

val directed : t -> bool
val edge : t -> int -> edge
val edges : t -> edge array

(** [out_edges g v] are the edge ids usable to leave [v]: edges with
    [src = v], plus, in the undirected case, edges with [dst = v]. *)
val out_edges : t -> int -> int array

(** [in_edges g v] are the edge ids usable to enter [v]. Equal to
    [out_edges g v] in the undirected case. *)
val in_edges : t -> int -> int array

(** [dst_of g e v] is the endpoint reached from [v] along edge [e].
    For directed graphs this is [e.dst]; for undirected edges it is the
    endpoint different from [v] (or [v] for a self-loop). *)
val dst_of : t -> edge -> int -> int

(** [neighbors g v] are the distinct vertices adjacent to [v] in the
    communication skeleton [[G]] (ignoring orientation and multiplicity,
    excluding [v] itself). *)
val neighbors : t -> int -> int array

(** [skeleton g] is [[G]]: the simple undirected unweighted graph obtained
    by dropping orientation, multiplicity, self-loops and weights. This is
    the communication network of the CONGEST model (Section 2.1). *)
val skeleton : t -> t

(** [max_multiplicity g] is the maximum number of parallel edges between
    any unordered vertex pair ({i p_max} in Theorem 3). *)
val max_multiplicity : t -> int

(** [induced g vs] is the subgraph induced by vertex set [vs], together
    with [old_of_new] (vertex of [g] for each new vertex) and [new_of_old]
    (new id per old vertex, [-1] when absent). Edges keep weights/labels. *)
val induced : t -> int list -> t * int array * int array

(** [reverse g] flips every edge's orientation (identity when undirected). *)
val reverse : t -> t

(** [total_weight g] is the sum of all edge weights. *)
val total_weight : t -> int

(** [pp] prints a short human-readable summary. *)
val pp : Format.formatter -> t -> unit

(** Distance value used as infinity by all shortest-path code. Chosen so
    that [inf + inf] does not overflow. *)
val inf : int
