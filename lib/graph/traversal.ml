let inf = Digraph.inf

let bfs_gen ~respect_direction g src =
  let n = Digraph.n g in
  let dist = Array.make n inf in
  let parent = Array.make n (-1) in
  dist.(src) <- 0;
  parent.(src) <- src;
  let queue = Queue.create () in
  Queue.add src queue;
  let relax v u =
    if dist.(u) = inf then begin
      dist.(u) <- dist.(v) + 1;
      parent.(u) <- v;
      Queue.add u queue
    end
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun ei ->
        let e = Digraph.edge g ei in
        relax v (Digraph.dst_of g e v))
      (Digraph.out_edges g v);
    if not respect_direction then
      Array.iter
        (fun ei ->
          let e = Digraph.edge g ei in
          relax v (if e.Digraph.src = v then e.Digraph.dst else e.Digraph.src))
        (Digraph.in_edges g v)
  done;
  (parent, dist)

let bfs g src = snd (bfs_gen ~respect_direction:true g src)
let bfs_undirected g src = snd (bfs_gen ~respect_direction:false g src)
let bfs_tree g src = bfs_gen ~respect_direction:false g src

let components_mask g mask =
  let n = Digraph.n g in
  let labels = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if mask.(s) && labels.(s) < 0 then begin
      let c = !count in
      incr count;
      labels.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let visit ei =
          let e = Digraph.edge g ei in
          let grab u = if mask.(u) && labels.(u) < 0 then begin labels.(u) <- c; Queue.add u queue end in
          grab e.Digraph.src;
          grab e.Digraph.dst
        in
        Array.iter visit (Digraph.out_edges g v);
        if Digraph.directed g then Array.iter visit (Digraph.in_edges g v)
      done
    end
  done;
  (labels, !count)

let components g = components_mask g (Array.make (Digraph.n g) true)

let is_connected g = Digraph.n g = 0 || snd (components g) = 1

let diameter g =
  let n = Digraph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    (try
       for v = 0 to n - 1 do
         let dist = bfs_undirected g v in
         Array.iter
           (fun d ->
             if d >= inf then begin best := inf; raise Exit end;
             if d > !best then best := d)
           dist
       done
     with Exit -> ());
    !best
  end
