(** Centralized shortest-path algorithms (reference implementations used
    for local computation inside CONGEST nodes and for test oracles). *)

(** [dijkstra ?mask g src] is the array of weighted distances from [src]
    following edge orientation. When [mask] is given, only vertices with
    [mask.(v) = true] participate (the source must be masked in).
    Unreachable vertices hold [Digraph.inf]. *)
val dijkstra : ?mask:bool array -> Digraph.t -> int -> int array

(** [dijkstra_to ?mask g dst] is the distance {e to} [dst] from every
    vertex (runs on the reversed graph). *)
val dijkstra_to : ?mask:bool array -> Digraph.t -> int -> int array

(** [dijkstra_tree ?mask g src] also returns the predecessor edge id per
    vertex ([-1] at the source and at unreachable vertices). *)
val dijkstra_tree : ?mask:bool array -> Digraph.t -> int -> int array * int array

(** [apsp g] is the full distance matrix [d.(u).(v)]. O(n (m + n log n)). *)
val apsp : Digraph.t -> int array array

(** [path_of_tree g pred dst] reconstructs the edge-id path ending at
    [dst] from a predecessor array produced by [dijkstra_tree].
    Returns edges in source-to-destination order. *)
val path_of_tree : Digraph.t -> int array -> int -> int list
