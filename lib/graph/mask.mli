(** Helpers for vertex masks (bool arrays selecting a subgraph), the
    representation every recursive algorithm in this project uses for
    "the current subgraph". *)

(** [vertices mask] lists the selected vertices, ascending. *)
val vertices : bool array -> int list

(** [size mask] counts the selected vertices. *)
val size : bool array -> int

(** [without mask vs] is a copy of [mask] with [vs] deselected. *)
val without : bool array -> int list -> bool array

(** [edge_count g mask] counts edges with both endpoints selected. *)
val edge_count : Digraph.t -> bool array -> int
