let inf = Digraph.inf

(* Dijkstra from [src], optionally refusing to traverse edge [banned]. *)
let dijkstra_banned g ~banned src =
  let n = Digraph.n g in
  let dist = Array.make n inf in
  let queue = Pqueue.create () in
  dist.(src) <- 0;
  Pqueue.push queue 0 src;
  while not (Pqueue.is_empty queue) do
    let d, v = Pqueue.pop_min queue in
    if d = dist.(v) then
      Array.iter
        (fun ei ->
          if ei <> banned then begin
            let e = Digraph.edge g ei in
            let u = Digraph.dst_of g e v in
            let nd = d + e.Digraph.weight in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              Pqueue.push queue nd u
            end
          end)
        (Digraph.out_edges g v)
  done;
  dist

let girth_undirected g =
  let best = ref inf in
  Array.iter
    (fun e ->
      let u = e.Digraph.src and v = e.Digraph.dst in
      if u = v then best := min !best e.Digraph.weight
      else begin
        let dist = dijkstra_banned g ~banned:e.Digraph.id u in
        if dist.(v) < inf then best := min !best (dist.(v) + e.Digraph.weight)
      end)
    (Digraph.edges g);
  !best

let girth_directed g =
  let memo = Hashtbl.create 16 in
  let dist_from v =
    match Hashtbl.find_opt memo v with
    | Some d -> d
    | None ->
        let d = Shortest_path.dijkstra g v in
        Hashtbl.add memo v d;
        d
  in
  let best = ref inf in
  Array.iter
    (fun e ->
      if e.Digraph.src = e.Digraph.dst then best := min !best e.Digraph.weight
      else begin
        let back = (dist_from e.Digraph.dst).(e.Digraph.src) in
        if back < inf then best := min !best (back + e.Digraph.weight)
      end)
    (Digraph.edges g);
  !best

let girth g = if Digraph.directed g then girth_directed g else girth_undirected g
