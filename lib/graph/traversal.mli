(** Breadth-first traversals, connectivity, and diameter (centralized). *)

(** [bfs g src] is the array of hop distances from [src], following edge
    orientation when [g] is directed. Unreachable vertices hold
    [Digraph.inf]. *)
val bfs : Digraph.t -> int -> int array

(** [bfs_undirected g src] ignores orientation (distances in [[G]]). *)
val bfs_undirected : Digraph.t -> int -> int array

(** [bfs_tree g src] is [(parent, dist)] of a BFS tree in [[G]] rooted at
    [src]; [parent.(src) = src], unreachable vertices have parent [-1]. *)
val bfs_tree : Digraph.t -> int -> int array * int array

(** [components g] labels every vertex with a component id in [[G]];
    returns [(labels, count)]. *)
val components : Digraph.t -> int array * int

(** [components_mask g mask] restricts to vertices with [mask.(v) = true];
    unmasked vertices are labeled [-1]. *)
val components_mask : Digraph.t -> bool array -> int array * int

val is_connected : Digraph.t -> bool

(** [diameter g] is the exact unweighted diameter of [[G]]
    ([Digraph.inf] when disconnected, 0 for a single vertex). *)
val diameter : Digraph.t -> int
