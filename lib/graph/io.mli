(** Plain-text graph serialization.

    Format (one graph per file):
    {v
    graph|digraph <n> <m>
    <src> <dst> <weight> [label]
    ... (m edge lines; '#' starts a comment line)
    v}
    Labels default to 0. Round-trips exactly through
    {!to_string}/{!of_string}. *)

val to_string : Digraph.t -> string

(** @raise Failure on malformed input, with a line number. *)
val of_string : string -> Digraph.t

val save : string -> Digraph.t -> unit

(** @raise Sys_error / Failure *)
val load : string -> Digraph.t

(** [to_dot g] renders Graphviz DOT (edge labels show weights; nonzero
    edge labels are appended after a colon). *)
val to_dot : Digraph.t -> string
