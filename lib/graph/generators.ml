let undirected n edges = Digraph.create ~directed:false n edges

let path n =
  undirected n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1, 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  undirected n ((n - 1, 0, 1) :: List.init (n - 1) (fun i -> (i, i + 1, 1)))

let complete n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, 1) :: !edges
    done
  done;
  undirected n !edges

let star n = undirected n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1, 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1), 1) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c, 1) :: !edges
    done
  done;
  undirected (rows * cols) !edges

let binary_tree depth =
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2, 1) :: !edges
  done;
  undirected n !edges

let k_tree ~seed n k =
  if n < k + 1 then invalid_arg "Generators.k_tree: need n >= k+1";
  let rng = Random.State.make [| seed; n; k |] in
  let edges = ref [] in
  (* seed clique on vertices 0..k *)
  for i = 0 to k do
    for j = i + 1 to k do
      edges := (i, j, 1) :: !edges
    done
  done;
  (* cliques: k-subsets a new vertex may attach to *)
  let cliques = ref [] in
  for drop = 0 to k do
    cliques := List.filteri (fun i _ -> i <> drop) (List.init (k + 1) Fun.id) :: !cliques
  done;
  let cliques = ref (Array.of_list !cliques) in
  let clique_count = ref (Array.length !cliques) in
  let push_clique c =
    if !clique_count = Array.length !cliques then begin
      let bigger = Array.make (max 8 (2 * !clique_count)) [] in
      Array.blit !cliques 0 bigger 0 !clique_count;
      cliques := bigger
    end;
    !cliques.(!clique_count) <- c;
    incr clique_count
  in
  for v = k + 1 to n - 1 do
    let c = !cliques.(Random.State.int rng !clique_count) in
    List.iter (fun u -> edges := (v, u, 1) :: !edges) c;
    (* new k-cliques: v together with each (k-1)-subset of c *)
    List.iteri (fun drop _ -> push_clique (v :: List.filteri (fun i _ -> i <> drop) c)) c
  done;
  undirected n !edges

let spanning_tree_edge_ids g =
  let uf = Union_find.create (Digraph.n g) in
  let keep = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if Union_find.union uf e.Digraph.src e.Digraph.dst then
        Hashtbl.add keep e.Digraph.id ())
    (Digraph.edges g);
  keep

let partial_k_tree ~seed n k ~keep =
  let g = k_tree ~seed n k in
  let rng = Random.State.make [| seed lxor 0x5eed; n; k |] in
  let tree = spanning_tree_edge_ids g in
  let kept =
    Array.to_list (Digraph.edges g)
    |> List.filter_map (fun e ->
           if Hashtbl.mem tree e.Digraph.id || Random.State.float rng 1.0 < keep then
             Some (e.Digraph.src, e.Digraph.dst, e.Digraph.weight)
           else None)
  in
  undirected n kept

let apex_cliques ~cliques ~size =
  if cliques < 1 || size < 1 then invalid_arg "Generators.apex_cliques";
  let n = (cliques * size) + 1 in
  let apex = n - 1 in
  let edges = ref [] in
  for c = 0 to cliques - 1 do
    let base = c * size in
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        edges := (base + i, base + j, 1) :: !edges
      done;
      edges := (base + i, apex, 1) :: !edges
    done
  done;
  undirected n !edges

let ring_of_rings ~rings ~ring_size =
  if rings < 3 || ring_size < 3 then invalid_arg "Generators.ring_of_rings";
  let n = rings * ring_size in
  let edges = ref [] in
  for r = 0 to rings - 1 do
    let base = r * ring_size in
    for i = 0 to ring_size - 1 do
      edges := (base + i, base + ((i + 1) mod ring_size), 1) :: !edges
    done;
    (* connect ring r to ring r+1 through one vertex each *)
    let next = ((r + 1) mod rings) * ring_size in
    edges := (base, next, 1) :: !edges
  done;
  undirected n !edges

let gnp_connected ~seed n p =
  let rng = Random.State.make [| seed; n; int_of_float (p *. 1_000_000.) |] in
  let edges = ref [] in
  (* random spanning tree: attach each vertex to a random earlier one *)
  for v = 1 to n - 1 do
    edges := (v, Random.State.int rng v, 1) :: !edges
  done;
  let tree = Hashtbl.create 64 in
  List.iter (fun (u, v, _) -> Hashtbl.add tree (min u v, max u v) ()) !edges;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not (Hashtbl.mem tree (i, j))) && Random.State.float rng 1.0 < p then
        edges := (i, j, 1) :: !edges
    done
  done;
  undirected n !edges

let subdivide g =
  let n = Digraph.n g in
  let edges = ref [] in
  Array.iteri
    (fun i e ->
      let mid = n + i in
      edges :=
        (mid, e.Digraph.dst, 0, e.Digraph.label)
        :: (e.Digraph.src, mid, e.Digraph.weight, e.Digraph.label)
        :: !edges)
    (Digraph.edges g);
  Digraph.create_labeled ~directed:(Digraph.directed g) (n + Digraph.m g) (List.rev !edges)

let random_weights ~seed ~max_weight g =
  if max_weight < 1 then invalid_arg "Generators.random_weights";
  let rng = Random.State.make [| seed; Digraph.n g; max_weight |] in
  Digraph.with_weights g (fun _ -> 1 + Random.State.int rng max_weight)

let bidirect ~seed ~max_weight g =
  let rng = Random.State.make [| seed lxor 0xd1c7; Digraph.n g |] in
  let w () = 1 + Random.State.int rng max_weight in
  let edges = ref [] in
  Array.iter
    (fun e ->
      edges := (e.Digraph.src, e.Digraph.dst, w (), e.Digraph.label) :: !edges;
      edges := (e.Digraph.dst, e.Digraph.src, w (), e.Digraph.label) :: !edges)
    (Digraph.edges g);
  Digraph.create_labeled ~directed:true (Digraph.n g) (List.rev !edges)

let wheel n =
  if n < 5 then invalid_arg "Generators.wheel: need n >= 5";
  let hub = n - 1 in
  let rim = n - 1 in
  let edges = ref [] in
  for i = 0 to rim - 1 do
    edges := (i, (i + 1) mod rim, 1) :: !edges;
    edges := (i, hub, 2 * n) :: !edges
  done;
  undirected n !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar";
  let n = spine * (legs + 1) in
  let edges = ref [] in
  for s = 0 to spine - 1 do
    if s + 1 < spine then edges := (s, s + 1, 1) :: !edges;
    for l = 0 to legs - 1 do
      edges := (s, spine + (s * legs) + l, 1) :: !edges
    done
  done;
  undirected n !edges

let series_parallel ~seed n =
  if n < 2 then invalid_arg "Generators.series_parallel: need n >= 2";
  let rng = Random.State.make [| seed; n; 0x5e12 |] in
  (* grow by expanding random existing edges: series expansion inserts a
     fresh vertex in the middle; parallel expansion duplicates the edge
     and then series-expands one copy (keeping the graph simple) *)
  let edges = ref [ (0, 1) ] in
  let next = ref 2 in
  while !next < n do
    let arr = Array.of_list !edges in
    let u, v = arr.(Random.State.int rng (Array.length arr)) in
    let mid = !next in
    incr next;
    if Random.State.bool rng then
      (* series: u - mid - v replaces u - v *)
      edges := (u, mid) :: (mid, v) :: List.filter (( <> ) (u, v)) !edges
    else
      (* parallel + series on the new branch: u - mid - v alongside u - v *)
      edges := (u, mid) :: (mid, v) :: !edges
  done;
  undirected n (List.map (fun (u, v) -> (u, v, 1)) !edges)
