(** Binary min-heap priority queue over integer priorities.

    Used by the centralized shortest-path and matching reference
    implementations. Elements are arbitrary; priorities are [int]. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [is_empty q] is true iff [q] holds no element. *)
val is_empty : 'a t -> bool

(** [length q] is the number of stored elements. *)
val length : 'a t -> int

(** [push q prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> int -> 'a -> unit

(** [pop_min q] removes and returns the minimum-priority binding
    [(prio, x)]. @raise Not_found if [q] is empty. *)
val pop_min : 'a t -> int * 'a

(** [peek_min q] returns the minimum binding without removing it.
    @raise Not_found if [q] is empty. *)
val peek_min : 'a t -> int * 'a
