let inf = Digraph.inf

let dijkstra_gen ?mask g src =
  let n = Digraph.n g in
  let allowed v = match mask with None -> true | Some m -> m.(v) in
  if not (allowed src) then invalid_arg "Shortest_path: source not in mask";
  let dist = Array.make n inf in
  let pred = Array.make n (-1) in
  let queue = Pqueue.create () in
  dist.(src) <- 0;
  Pqueue.push queue 0 src;
  while not (Pqueue.is_empty queue) do
    let d, v = Pqueue.pop_min queue in
    if d = dist.(v) then
      Array.iter
        (fun ei ->
          let e = Digraph.edge g ei in
          let u = Digraph.dst_of g e v in
          if allowed u then begin
            let nd = d + e.Digraph.weight in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              pred.(u) <- ei;
              Pqueue.push queue nd u
            end
          end)
        (Digraph.out_edges g v)
  done;
  (dist, pred)

let dijkstra ?mask g src = fst (dijkstra_gen ?mask g src)
let dijkstra_tree ?mask g src = dijkstra_gen ?mask g src

let dijkstra_to ?mask g dst = fst (dijkstra_gen ?mask (Digraph.reverse g) dst)

let apsp g = Array.init (Digraph.n g) (fun v -> dijkstra g v)

let path_of_tree g pred dst =
  let rec collect v acc =
    let ei = pred.(v) in
    if ei < 0 then acc
    else
      let e = Digraph.edge g ei in
      let prev =
        if Digraph.directed g then e.Digraph.src
        else if e.Digraph.dst = v then e.Digraph.src
        else e.Digraph.dst
      in
      collect prev (ei :: acc)
  in
  collect dst []
