(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] is a structure over elements [0 .. n-1], each in its own set. *)
val create : int -> t

(** [find uf x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union uf x y] merges the sets of [x] and [y]; returns [true] iff the
    two were previously in distinct sets. *)
val union : t -> int -> int -> bool

(** [same uf x y] is true iff [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [count uf] is the current number of disjoint sets. *)
val count : t -> int
