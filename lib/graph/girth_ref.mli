(** Centralized exact weighted girth (reference oracle for Theorem 5).

    The girth is the minimum total weight of a simple cycle;
    [Digraph.inf] when the graph is acyclic. Parallel edges form
    2-vertex cycles in both the directed and undirected settings;
    self-loops count as cycles of their own weight. *)

(** [girth g] dispatches on [Digraph.directed g]. *)
val girth : Digraph.t -> int

val girth_directed : Digraph.t -> int
val girth_undirected : Digraph.t -> int
