(** Distributed BFS-tree construction (message-level).

    Classic flooding: the root announces distance 0; every node adopts the
    smallest announced distance + 1 and the smallest-id sender at that
    distance as its parent. Takes eccentricity(root) + O(1) rounds. *)

type tree = {
  root : int;
  parent : int array;  (** [parent.(root) = root]; [-1] if unreachable. *)
  dist : int array;  (** hop distance from the root. *)
  depth : int;  (** max distance over reachable vertices. *)
}

(** [build skeleton ~root ~metrics] runs the flood on the communication
    graph and returns the tree. Rounds are charged under ["bfs-tree"].

    [faults] injects link/node faults ({!Fault}); [reliable] (default
    false) runs the same step function over the acknowledged
    {!Transport} instead of raw links, restoring exact distances under
    any drop probability < 1; [recovery] additionally runs it under the
    checkpoint/recovery layer ({!Recovery}, implies the transport), so
    distances stay exact even across crash-amnesia restarts. *)
val build :
  ?faults:Fault.t ->
  ?reliable:bool ->
  ?recovery:Recovery.config ->
  Repro_graph.Digraph.t ->
  root:int ->
  metrics:Metrics.t ->
  tree

(** [build_certified skeleton ~root ~metrics] runs the flood over the
    reliable transport under a heartbeat failure {!Detector} and also
    returns the detector's verdict: [Complete] when no node ended up
    suspecting a neighbor (the tree covers the whole graph), or
    [Partial] with the certified reachable component (the tree is exact
    on it; everything else has distance inf). This is the degraded-mode
    connectivity probe the CLIs run under permanent partitions or
    crash-stops. [period]/[timeout]/[max_retries] tune the detector and
    the transport's retry budget ({!Detector.Make.run}). *)
val build_certified :
  ?faults:Fault.t ->
  ?jitter_seed:int ->
  ?period:int ->
  ?timeout:int ->
  ?max_retries:int ->
  Repro_graph.Digraph.t ->
  root:int ->
  metrics:Metrics.t ->
  tree * Detector.verdict

(** [children t v] lists the tree children of [v]. O(n) per call. *)
val children : tree -> int -> int list
