(** Reliable transport over faulty CONGEST links.

    Layers per-link acknowledgements, round-based retransmission timeouts
    with exponential backoff, sequence-number deduplication, and per-link
    {e connection epochs} on top of the (possibly fault-injected)
    {!Engine}, exposing the same step-function interface — existing
    algorithms run unchanged over it.

    Guarantees, for any {!Fault.t} profile with drop probability < 1 and
    no crash-stop nodes: between two endpoints that do not lose state,
    every message handed to the transport is delivered to its
    destination's [step] function exactly once, and per-link FIFO order
    is preserved (each link is stop-and-wait: message [k+1] is not
    launched until [k] is acknowledged). Round numbers seen by [step]
    are engine rounds, not per-node logical times.

    {b Crash-amnesia safety.} Every packet carries its sender's
    connection epoch; an amnesia-restarted node (whose transport state is
    volatile and lost) comes back with its epoch bumped to the restart
    round. A peer seeing a higher epoch resets its receive watermark for
    that link, and acks echo the data-sender's epoch, so stale sequence
    numbers from the pre-crash connection can neither suppress fresh data
    (dedup-drop) nor acknowledge data the restarted node never received.
    Across an amnesia restart the guarantee necessarily weakens to
    {e at-least-once}: copies delivered before the crash may be delivered
    again after the rollback, and messages queued in the crashed node's
    volatile send buffers are lost — {!Recovery} restores exactness at
    the algorithm level (checkpoints + neighbor resync) for programs that
    tolerate re-delivery.

    {b Integrity.} Every packet carries a checksum over its header and
    payload; the fault adversary's payload corruption is modeled as a
    checksum-breaking garble. A receiver rejects a checksum-failing
    packet wholesale (nothing in it is trusted — charged to
    {!Metrics.add_rejected}) and sets a free NACK header bit on its next
    packet back, which makes the sender fast-retransmit its outstanding
    message instead of waiting out the timeout. Corrupted payloads are
    therefore never delivered to [step]: the algorithm sees only intact,
    exactly-once messages, at the price of extra retransmissions.

    {b Bounded retries.} Each outstanding message is retransmitted at
    most [max_retries] times (default 25). When the budget is exhausted
    the sender declares the link {e dead}: everything queued on it is
    abandoned, a [Link_lost] trace event and a
    {!Metrics.add_link_failures} charge record the typed failure, and
    the link stops blocking quiescence — so a run over a permanently
    partitioned link terminates instead of retrying forever. The typed
    verdict surfaces one layer up: a {!Detector} turns silent links into
    per-node suspicions and a [Partial] result.

    Cost: a packet spends 1 header word on the epoch, 1 on the
    checksum, 1 on a data sequence number, and 2 on a piggybacked ack
    (echoed epoch + seq), so the inner engine runs with [max_words + 5];
    a fault-free message costs ~2 rounds of link latency (data, then ack
    unblocks the next send). Retransmissions are charged to
    {!Metrics.add_retransmissions}.

    Per-link memory is O(1): stop-and-wait delivers in order, so received
    sequences are deduplicated against a single delivered-seq watermark
    (not a table of every seq ever seen), under any dup/delay profile. *)

module Make (M : Engine.MSG) : sig
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (** [run skeleton ~init ~step ~active ~metrics ~label ()] — same
      contract as {!Engine.Make.run} (inboxes sorted by sender id,
      bandwidth checks on user messages, liveness via [active] once all
      transport queues drain), plus:

      - [faults] — adversary applied to the underlying links;
      - [on_restart ~round ~node] — rebuilds the {e user} state of an
        amnesia-restarted node (default: re-run [init]); the transport
        rebuilds its own link state (fresh queues, epoch = restart round)
        around it;
      - [rto] — initial retransmission timeout in rounds (doubles on each
        retry, capped at [64 * rto] plus jitter — the documented maximum
        RTO). Must exceed the 2-round fault-free ack latency; default 4.
      - [jitter_seed] — seeds the retransmission-timer jitter: each
        backoff interval is stretched by
        [hash (seed, link, seq, attempt) mod (1 + rto/2)] extra rounds.
        The jitter is a pure hash of the schedule position (no RNG
        state), so a replayed run reproduces the exact same
        retransmission schedule; default 0.
      - [max_retries] — per-message retransmission budget before the
        link is declared dead (see {e Bounded retries} above);
        default 25. *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?on_restart:(round:int -> node:int -> 'st) ->
    ?rto:int ->
    ?jitter_seed:int ->
    ?max_retries:int ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end
