(** Reliable transport over faulty CONGEST links.

    Layers per-link acknowledgements, round-based retransmission timeouts
    with exponential backoff, and sequence-number deduplication on top of
    the (possibly fault-injected) {!Engine}, exposing the same
    step-function interface — existing algorithms run unchanged over it.

    Guarantees, for any {!Fault.t} profile with drop probability < 1 and
    no crash-stop nodes: every message handed to the transport is
    delivered to its destination's [step] function exactly once, and
    per-link FIFO order is preserved (each link is stop-and-wait: message
    [k+1] is not launched until [k] is acknowledged). Round numbers seen
    by [step] are engine rounds, not per-node logical times.

    Cost: each payload word rides in a packet with a one-word header
    (sequence number or ack id), so the inner engine runs with
    [max_words + 1]; a fault-free message costs ~2 rounds of link latency
    (data, then ack unblocks the next send). Retransmissions are charged
    to {!Metrics.add_retransmissions}. Crash-stop nodes are out of scope:
    a retransmitter has no failure detector, so a send to a dead node
    retries until [max_rounds] (then {!Engine.Round_limit_exceeded}). *)

module Make (M : Engine.MSG) : sig
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (** [run skeleton ~init ~step ~active ~metrics ~label ()] — same
      contract as {!Engine.Make.run} (inboxes sorted by sender id,
      bandwidth checks on user messages, liveness via [active] once all
      transport queues drain), plus:

      - [faults] — adversary applied to the underlying links;
      - [rto] — initial retransmission timeout in rounds (doubles on each
        retry, capped at [64 * rto]). Must exceed the 2-round fault-free
        ack latency; default 4. *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?rto:int ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end
