(** Reliable transport over faulty CONGEST links.

    Layers per-link acknowledgements, round-based retransmission timeouts
    with exponential backoff, sequence-number deduplication, and per-link
    {e connection epochs} on top of the (possibly fault-injected)
    {!Engine}, exposing the same step-function interface — existing
    algorithms run unchanged over it.

    Guarantees, for any {!Fault.t} profile with drop probability < 1 and
    no crash-stop nodes: between two endpoints that do not lose state,
    every message handed to the transport is delivered to its
    destination's [step] function exactly once, and per-link FIFO order
    is preserved (each link is stop-and-wait: message [k+1] is not
    launched until [k] is acknowledged). Round numbers seen by [step]
    are engine rounds, not per-node logical times.

    {b Crash-amnesia safety.} Every packet carries its sender's
    connection epoch; an amnesia-restarted node (whose transport state is
    volatile and lost) comes back with its epoch bumped to the restart
    round. A peer seeing a higher epoch resets its receive watermark for
    that link, and acks echo the data-sender's epoch, so stale sequence
    numbers from the pre-crash connection can neither suppress fresh data
    (dedup-drop) nor acknowledge data the restarted node never received.
    Across an amnesia restart the guarantee necessarily weakens to
    {e at-least-once}: copies delivered before the crash may be delivered
    again after the rollback, and messages queued in the crashed node's
    volatile send buffers are lost — {!Recovery} restores exactness at
    the algorithm level (checkpoints + neighbor resync) for programs that
    tolerate re-delivery.

    Cost: a packet spends 1 header word on the epoch, 1 on a data
    sequence number, and 2 on a piggybacked ack (echoed epoch + seq), so
    the inner engine runs with [max_words + 4]; a fault-free message
    costs ~2 rounds of link latency (data, then ack unblocks the next
    send). Retransmissions are charged to
    {!Metrics.add_retransmissions}. Crash-stop nodes are out of scope: a
    retransmitter has no failure detector, so a send to a dead node
    retries until [max_rounds] (then {!Engine.Round_limit_exceeded}).

    Per-link memory is O(1): stop-and-wait delivers in order, so received
    sequences are deduplicated against a single delivered-seq watermark
    (not a table of every seq ever seen), under any dup/delay profile. *)

module Make (M : Engine.MSG) : sig
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (** [run skeleton ~init ~step ~active ~metrics ~label ()] — same
      contract as {!Engine.Make.run} (inboxes sorted by sender id,
      bandwidth checks on user messages, liveness via [active] once all
      transport queues drain), plus:

      - [faults] — adversary applied to the underlying links;
      - [on_restart ~round ~node] — rebuilds the {e user} state of an
        amnesia-restarted node (default: re-run [init]); the transport
        rebuilds its own link state (fresh queues, epoch = restart round)
        around it;
      - [rto] — initial retransmission timeout in rounds (doubles on each
        retry, capped at [64 * rto]). Must exceed the 2-round fault-free
        ack latency; default 4. *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?on_restart:(round:int -> node:int -> 'st) ->
    ?rto:int ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end
