module Digraph = Repro_graph.Digraph

module Make (M : Engine.MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (* One packet per link per round, carrying at most one data payload
     (with its sequence number) and at most one piggybacked ack. *)
  module Packet = struct
    type t = { data : (int * M.t) option; ack : int option }

    let words p = 1 + (match p.data with Some (_, m) -> M.words m | None -> 0)
  end

  module E = Engine.Make (Packet)

  type link = {
    mutable next_seq : int;
    sendq : M.t Queue.t;  (* user messages not yet launched *)
    mutable outstanding : (int * M.t) option;  (* launched, unacked *)
    mutable retry_round : int;
    mutable backoff : int;  (* retransmission count for this message *)
    ackq : int Queue.t;  (* acks owed to the peer *)
    received : (int, unit) Hashtbl.t;  (* seqs already delivered to step *)
  }

  (* [nbrs] is the sorted neighbor list: per-round link iteration walks it
     instead of the [links] hashtable so packet launch order (and with it
     the fault adversary's RNG consumption) is deterministic. *)
  type 'st node = { user : 'st; links : (int, link) Hashtbl.t; nbrs : int array }

  let run skeleton ~init ~step ~active ?faults ?(rto = 4)
      ?max_rounds ?(max_words = Engine.default_max_words) ~metrics ~label () =
    if rto <= 2 then invalid_arg "Transport.run: rto must exceed the 2-round ack latency";
    let wrap_init v =
      let nbrs = Digraph.neighbors skeleton v in
      let links = Hashtbl.create 8 in
      Array.iter
        (fun u ->
          Hashtbl.replace links u
            {
              next_seq = 0;
              sendq = Queue.create ();
              outstanding = None;
              retry_round = 0;
              backoff = 0;
              ackq = Queue.create ();
              received = Hashtbl.create 16;
            })
        nbrs;
      { user = init v; links; nbrs }
    in
    let wrap_step ~round ~node:v st inbox =
      (* 1. absorb packets: clear acked messages, ack and dedup data *)
      let fresh = ref [] in
      List.iter
        (fun (u, p) ->
          let l = Hashtbl.find st.links u in
          (match p.Packet.ack with
          | Some s -> (
              match l.outstanding with
              | Some (s', _) when s' = s ->
                  l.outstanding <- None;
                  l.backoff <- 0
              | _ -> ())
          | None -> ());
          match p.Packet.data with
          | Some (s, payload) ->
              Queue.add s l.ackq;
              if not (Hashtbl.mem l.received s) then begin
                Hashtbl.add l.received s ();
                fresh := (u, payload) :: !fresh
              end
          | None -> ())
        inbox;
      (* 2. run the user's step on the deduplicated, sender-sorted inbox *)
      let user_inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) !fresh in
      let user, user_out = step ~round ~node:v st.user user_inbox in
      let queued_to = Hashtbl.create 4 in
      List.iter
        (fun (u, m) ->
          (match Hashtbl.find_opt st.links u with
          | None ->
              invalid_arg
                (Printf.sprintf "Transport.run(%s): round %d: node %d sent to non-neighbor %d"
                   label round v u)
          | Some l -> Queue.add m l.sendq);
          if Hashtbl.mem queued_to u then
            invalid_arg
              (Printf.sprintf
                 "Transport.run(%s): round %d: node %d sent two messages to %d in one round"
                 label round v u);
          Hashtbl.add queued_to u ())
        user_out;
      (* 3. per link, in ascending neighbor order: retransmit if the
         timeout expired, else launch the next queued message; piggyback
         one owed ack *)
      let out = ref [] in
      Array.iter
        (fun u ->
          let l = Hashtbl.find st.links u in
          let data =
            match l.outstanding with
            | Some (s, m) when round >= l.retry_round ->
                Metrics.add_retransmissions metrics 1;
                l.backoff <- min (l.backoff + 1) 6;
                l.retry_round <- round + (rto lsl l.backoff);
                Some (s, m)
            | Some _ -> None
            | None ->
                if Queue.is_empty l.sendq then None
                else begin
                  let m = Queue.pop l.sendq in
                  let s = l.next_seq in
                  l.next_seq <- s + 1;
                  l.outstanding <- Some (s, m);
                  l.backoff <- 0;
                  l.retry_round <- round + rto;
                  Some (s, m)
                end
          in
          let ack = if Queue.is_empty l.ackq then None else Some (Queue.pop l.ackq) in
          if data <> None || ack <> None then out := (u, { Packet.data; ack }) :: !out)
        st.nbrs;
      ({ st with user }, !out)
    in
    let wrap_active st =
      active st.user
      (* order-insensitive boolean OR over links [lint: hashtbl-order] *)
      || Hashtbl.fold
           (fun _ l busy ->
             busy || l.outstanding <> None
             || (not (Queue.is_empty l.sendq))
             || not (Queue.is_empty l.ackq))
           st.links false
    in
    let states =
      E.run skeleton ?faults ~init:wrap_init ~step:wrap_step ~active:wrap_active ?max_rounds
        ~max_words:(max_words + 1) ~metrics ~label ()
    in
    Array.map (fun st -> st.user) states
end
