module Digraph = Repro_graph.Digraph

module Make (M : Engine.MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (* One packet per link per round, carrying the sender's connection
     epoch, at most one data payload (with its sequence number) and at
     most one piggybacked ack (echoing the data-sender's epoch, so a
     restarted sender cannot be fooled by an ack for a pre-crash
     sequence number). Header cost: 1 word for the epoch, 1 word per
     sequence number carried (data seq / ack echo+seq count as 1 and 2). *)
  module Packet = struct
    type t = { epoch : int; data : (int * M.t) option; ack : (int * int) option }

    let words p =
      1
      + (match p.data with Some (_, m) -> 1 + M.words m | None -> 0)
      + match p.ack with Some _ -> 2 | None -> 0
  end

  module E = Engine.Make (Packet)

  type link = {
    mutable next_seq : int;
    sendq : M.t Queue.t;  (* user messages not yet launched *)
    mutable outstanding : (int * M.t) option;  (* launched, unacked *)
    mutable retry_round : int;
    mutable backoff : int;  (* retransmission count for this message *)
    ackq : (int * int) Queue.t;  (* (peer epoch, seq) acks owed to the peer *)
    (* stop-and-wait delivers in order, so a single delivered-seq
       watermark replaces the old unbounded per-link dedup hashtable:
       a data seq is fresh iff it exceeds the watermark (O(1) memory
       per link under any dup/delay profile) *)
    mutable watermark : int;
    mutable peer_epoch : int;  (* largest connection epoch seen from the peer *)
  }

  (* [nbrs] is the sorted neighbor list: per-round link iteration walks it
     instead of the [links] hashtable so packet launch order (and with it
     the fault adversary's RNG consumption) is deterministic. *)
  type 'st node = {
    user : 'st;
    my_epoch : int;  (* bumped to the restart round on every amnesia reboot *)
    links : (int, link) Hashtbl.t;
    nbrs : int array;
  }

  let fresh_link () =
    {
      next_seq = 0;
      sendq = Queue.create ();
      outstanding = None;
      retry_round = 0;
      backoff = 0;
      ackq = Queue.create ();
      watermark = -1;
      peer_epoch = 0;
    }

  let run skeleton ~init ~step ~active ?faults ?on_restart ?(rto = 4)
      ?max_rounds ?(max_words = Engine.default_max_words) ~metrics ~label () =
    if rto <= 2 then invalid_arg "Transport.run: rto must exceed the 2-round ack latency";
    (* transport-level events go through the same process-wide sink as
       the engine's; captured once per run, guarded like every site *)
    let sink = !Engine.trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let fresh_node ~epoch v user =
      let nbrs = Digraph.neighbors skeleton v in
      let links = Hashtbl.create 8 in
      Array.iter (fun u -> Hashtbl.replace links u (fresh_link ())) nbrs;
      { user; my_epoch = epoch; links; nbrs }
    in
    let wrap_init v = fresh_node ~epoch:0 v (init v) in
    (* amnesia restart: all link state is volatile and lost; the engine
       round (strictly increasing across a node's restarts, and > the
       initial epoch 0) becomes the new connection epoch, so both
       endpoints reset their sequence/dedup state instead of silently
       misinterpreting stale sequence numbers *)
    let restart_user =
      match on_restart with Some f -> f | None -> fun ~round:_ ~node -> init node
    in
    let wrap_restart ~round ~node =
      fresh_node ~epoch:round node (restart_user ~round ~node)
    in
    let wrap_step ~round ~node:v st inbox =
      (* 1. absorb packets: track peer epochs, clear acked messages, ack
         and dedup data. A packet from an epoch older than the peer's
         known one predates the peer's last restart: ignore it entirely. *)
      let fresh = ref [] in
      List.iter
        (fun (u, p) ->
          let l = Hashtbl.find st.links u in
          if p.Packet.epoch >= l.peer_epoch then begin
            if p.Packet.epoch > l.peer_epoch then begin
              (* the peer restarted: its sequence space starts over, and
                 whatever we had delivered from the old connection is
                 void — reset the receive watermark *)
              l.peer_epoch <- p.Packet.epoch;
              l.watermark <- -1
            end;
            (match p.Packet.ack with
            | Some (e, s) when e = st.my_epoch -> (
                match l.outstanding with
                | Some (s', _) when s' = s ->
                    l.outstanding <- None;
                    l.backoff <- 0;
                    if tracing then
                      Repro_obs.Sink.emit sink
                        (Repro_obs.Event.Ack { round; src = v; dst = u; seq = s })
                | _ -> ())
            | _ -> ());
            match p.Packet.data with
            | Some (s, payload) ->
                Queue.add (p.Packet.epoch, s) l.ackq;
                if s > l.watermark then begin
                  l.watermark <- s;
                  fresh := (u, payload) :: !fresh
                end
            | None -> ()
          end)
        inbox;
      (* 2. run the user's step on the deduplicated, sender-sorted inbox *)
      let user_inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) !fresh in
      let user, user_out = step ~round ~node:v st.user user_inbox in
      let queued_to = Hashtbl.create 4 in
      List.iter
        (fun (u, m) ->
          (match Hashtbl.find_opt st.links u with
          | None ->
              invalid_arg
                (Printf.sprintf "Transport.run(%s): round %d: node %d sent to non-neighbor %d"
                   label round v u)
          | Some l -> Queue.add m l.sendq);
          if Hashtbl.mem queued_to u then
            invalid_arg
              (Printf.sprintf
                 "Transport.run(%s): round %d: node %d sent two messages to %d in one round"
                 label round v u);
          Hashtbl.add queued_to u ())
        user_out;
      (* 3. per link, in ascending neighbor order: retransmit if the
         timeout expired, else launch the next queued message; piggyback
         one owed ack *)
      let out = ref [] in
      Array.iter
        (fun u ->
          let l = Hashtbl.find st.links u in
          let data =
            match l.outstanding with
            | Some (s, m) when round >= l.retry_round ->
                Metrics.add_retransmissions metrics 1;
                if tracing then
                  Repro_obs.Sink.emit sink
                    (Repro_obs.Event.Retransmit { round; src = v; dst = u; seq = s });
                l.backoff <- min (l.backoff + 1) 6;
                l.retry_round <- round + (rto lsl l.backoff);
                Some (s, m)
            | Some _ -> None
            | None ->
                if Queue.is_empty l.sendq then None
                else begin
                  let m = Queue.pop l.sendq in
                  let s = l.next_seq in
                  l.next_seq <- s + 1;
                  l.outstanding <- Some (s, m);
                  l.backoff <- 0;
                  l.retry_round <- round + rto;
                  Some (s, m)
                end
          in
          let ack = if Queue.is_empty l.ackq then None else Some (Queue.pop l.ackq) in
          if data <> None || ack <> None then
            out := (u, { Packet.epoch = st.my_epoch; data; ack }) :: !out)
        st.nbrs;
      ({ st with user }, !out)
    in
    let wrap_active st =
      active st.user
      (* order-insensitive boolean OR over links [lint: hashtbl-order] *)
      || Hashtbl.fold
           (fun _ l busy ->
             busy || l.outstanding <> None
             || (not (Queue.is_empty l.sendq))
             || not (Queue.is_empty l.ackq))
           st.links false
    in
    let states =
      E.run skeleton ?faults ~init:wrap_init ~step:wrap_step ~active:wrap_active
        ~on_restart:wrap_restart ?max_rounds
        ~max_words:(max_words + 4) ~metrics ~label ()
    in
    Array.map (fun st -> st.user) states
end
