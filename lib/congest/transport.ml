module Digraph = Repro_graph.Digraph

module Make (M : Engine.MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (* One packet per link per round, carrying the sender's connection
     epoch, at most one data payload (with its sequence number), at
     most one piggybacked ack (echoing the data-sender's epoch, so a
     restarted sender cannot be fooled by an ack for a pre-crash
     sequence number), a NACK bit asking the peer to retransmit its
     outstanding message, and a checksum over everything else. Header
     cost: 1 word for the epoch, 1 for the checksum, 1 word per
     sequence number carried (data seq / ack echo+seq count as 1 and
     2); the NACK bit rides free in the header. *)
  module Packet = struct
    type t = {
      epoch : int;
      data : (int * M.t) option;
      ack : (int * int) option;
      nack : bool;
      crc : int;
    }

    let words p =
      2
      + (match p.data with Some (_, m) -> 1 + M.words m | None -> 0)
      + match p.ack with Some _ -> 2 | None -> 0

    (* structural hash of every field the checksum protects (not [crc]
       itself). The adversary's garbling is modeled as flipping [crc],
       so any mismatch test works; a real CRC's residual-error rate is
       out of scope. *)
    let checksum p = Hashtbl.hash (p.epoch, p.data, p.ack, p.nack)

    let seal p = { p with crc = checksum p }
    let intact p = checksum p = p.crc
  end

  module E = Synchronizer.Make (Packet)

  type link = {
    mutable next_seq : int;
    sendq : M.t Queue.t;  (* user messages not yet launched *)
    mutable outstanding : (int * M.t) option;  (* launched, unacked *)
    mutable retry_round : int;
    mutable backoff : int;  (* backoff exponent for this message (capped) *)
    mutable retries : int;  (* total retransmissions of this message *)
    mutable nack_owed : bool;  (* a corrupt packet arrived; ask for a resend *)
    mutable dead : bool;  (* retry budget exhausted; link abandoned *)
    ackq : (int * int) Queue.t;  (* (peer epoch, seq) acks owed to the peer *)
    (* stop-and-wait delivers in order, so a single delivered-seq
       watermark replaces the old unbounded per-link dedup hashtable:
       a data seq is fresh iff it exceeds the watermark (O(1) memory
       per link under any dup/delay profile) *)
    mutable watermark : int;
    mutable peer_epoch : int;  (* largest connection epoch seen from the peer *)
  }

  (* [nbrs] is the sorted neighbor list: per-round link iteration walks it
     instead of the [links] hashtable so packet launch order (and with it
     the fault adversary's RNG consumption) is deterministic. *)
  type 'st node = {
    user : 'st;
    my_epoch : int;  (* bumped to the restart round on every amnesia reboot *)
    links : (int, link) Hashtbl.t;
    nbrs : int array;
  }

  let fresh_link () =
    {
      next_seq = 0;
      sendq = Queue.create ();
      outstanding = None;
      retry_round = 0;
      backoff = 0;
      retries = 0;
      nack_owed = false;
      dead = false;
      ackq = Queue.create ();
      watermark = -1;
      peer_epoch = 0;
    }

  let run skeleton ~init ~step ~active ?faults ?on_restart ?(rto = 4)
      ?(jitter_seed = 0) ?(max_retries = 25) ?max_rounds
      ?(max_words = Engine.default_max_words) ~metrics ~label () =
    if rto <= 2 then invalid_arg "Transport.run: rto must exceed the 2-round ack latency";
    if max_retries < 0 then invalid_arg "Transport.run: negative max_retries";
    (* deterministic desynchronization of retransmission timers: a pure
       hash of (seed, link, seq, attempt), so replaying the same run
       reproduces the exact same schedule — no RNG state involved *)
    let jitter ~src ~dst ~seq ~attempt =
      Hashtbl.hash (jitter_seed, src, dst, seq, attempt) mod (1 + (rto / 2))
    in
    (* transport-level events go through the same process-wide sink as
       the engine's; captured once per run, guarded like every site *)
    let sink = !Engine.trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let fresh_node ~epoch v user =
      let nbrs = Digraph.neighbors skeleton v in
      let links = Hashtbl.create 8 in
      Array.iter (fun u -> Hashtbl.replace links u (fresh_link ())) nbrs;
      { user; my_epoch = epoch; links; nbrs }
    in
    let wrap_init v = fresh_node ~epoch:0 v (init v) in
    (* amnesia restart: all link state is volatile and lost; the engine
       round (strictly increasing across a node's restarts, and > the
       initial epoch 0) becomes the new connection epoch, so both
       endpoints reset their sequence/dedup state instead of silently
       misinterpreting stale sequence numbers *)
    let restart_user =
      match on_restart with Some f -> f | None -> fun ~round:_ ~node -> init node
    in
    let wrap_restart ~round ~node =
      fresh_node ~epoch:round node (restart_user ~round ~node)
    in
    let wrap_step ~round ~node:v st inbox =
      (* 1. absorb packets: track peer epochs, clear acked messages, ack
         and dedup data. A packet from an epoch older than the peer's
         known one predates the peer's last restart: ignore it entirely. *)
      let fresh = ref [] in
      List.iter
        (fun (u, p) ->
          let l = Hashtbl.find st.links u in
          if l.dead then ()
          else if not (Packet.intact p) then begin
            (* checksum failure: the payload was garbled in flight.
               Reject the packet wholesale — its epoch, data, ack and
               nack are all untrusted — and owe the peer a NACK so it
               retransmits without waiting out its timeout. *)
            Metrics.add_rejected metrics 1;
            l.nack_owed <- true
          end
          else if p.Packet.epoch >= l.peer_epoch then begin
            if p.Packet.epoch > l.peer_epoch then begin
              (* the peer restarted: its sequence space starts over, and
                 whatever we had delivered from the old connection is
                 void — reset the receive watermark *)
              l.peer_epoch <- p.Packet.epoch;
              l.watermark <- -1
            end;
            (match p.Packet.ack with
            | Some (e, s) when e = st.my_epoch -> (
                match l.outstanding with
                | Some (s', _) when s' = s ->
                    l.outstanding <- None;
                    l.backoff <- 0;
                    l.retries <- 0;
                    if tracing then
                      Repro_obs.Sink.emit sink
                        (Repro_obs.Event.Ack { round; src = v; dst = u; seq = s })
                | _ -> ())
            | _ -> ());
            (* the peer rejected our last packet: fast-retransmit the
               outstanding message this round (still counted against
               the retry budget by the launch loop below) *)
            (if p.Packet.nack then
               match l.outstanding with
               | Some (s, _) ->
                   l.retry_round <- round;
                   if tracing then
                     Repro_obs.Sink.emit sink
                       (Repro_obs.Event.Nack { round; src = v; dst = u; seq = s })
               | None -> ());
            match p.Packet.data with
            | Some (s, payload) ->
                Queue.add (p.Packet.epoch, s) l.ackq;
                if s > l.watermark then begin
                  l.watermark <- s;
                  fresh := (u, payload) :: !fresh
                end
            | None -> ()
          end)
        inbox;
      (* 2. run the user's step on the deduplicated, sender-sorted inbox *)
      let user_inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) !fresh in
      let user, user_out = step ~round ~node:v st.user user_inbox in
      let queued_to = Hashtbl.create 4 in
      List.iter
        (fun (u, m) ->
          (match Hashtbl.find_opt st.links u with
          | None ->
              invalid_arg
                (Printf.sprintf "Transport.run(%s): round %d: node %d sent to non-neighbor %d"
                   label round v u)
          | Some l -> if not l.dead then Queue.add m l.sendq);
          if Hashtbl.mem queued_to u then
            invalid_arg
              (Printf.sprintf
                 "Transport.run(%s): round %d: node %d sent two messages to %d in one round"
                 label round v u);
          Hashtbl.add queued_to u ())
        user_out;
      (* 3. per link, in ascending neighbor order: retransmit if the
         timeout expired, else launch the next queued message; piggyback
         one owed ack *)
      let out = ref [] in
      Array.iter
        (fun u ->
          let l = Hashtbl.find st.links u in
          if not l.dead then begin
            let data =
              match l.outstanding with
              | Some (s, _) when round >= l.retry_round && l.retries >= max_retries ->
                  (* retry budget exhausted: the link is as good as cut.
                     Abandon everything queued on it and stop spending
                     rounds/bandwidth — the failure surfaces as a
                     [Link_lost] event, a [link_failures] charge, and
                     (one layer up) a {!Detector} suspicion feeding a
                     [Partial] verdict, instead of retrying forever. *)
                  l.dead <- true;
                  l.outstanding <- None;
                  l.nack_owed <- false;
                  Queue.clear l.sendq;
                  Queue.clear l.ackq;
                  Metrics.add_link_failures metrics 1;
                  if tracing then
                    Repro_obs.Sink.emit sink
                      (Repro_obs.Event.Link_lost
                         { round; src = v; dst = u; seq = s; retries = l.retries });
                  None
              | Some (s, m) when round >= l.retry_round ->
                  Metrics.add_retransmissions metrics 1;
                  if tracing then
                    Repro_obs.Sink.emit sink
                      (Repro_obs.Event.Retransmit { round; src = v; dst = u; seq = s });
                  l.retries <- l.retries + 1;
                  l.backoff <- min (l.backoff + 1) 6;
                  l.retry_round <-
                    round + (rto lsl l.backoff)
                    + jitter ~src:v ~dst:u ~seq:s ~attempt:l.retries;
                  Some (s, m)
              | Some _ -> None
              | None ->
                  if Queue.is_empty l.sendq then None
                  else begin
                    let m = Queue.pop l.sendq in
                    let s = l.next_seq in
                    l.next_seq <- s + 1;
                    l.outstanding <- Some (s, m);
                    l.backoff <- 0;
                    l.retries <- 0;
                    l.retry_round <- round + rto;
                    Some (s, m)
                  end
            in
            if not l.dead then begin
              let ack = if Queue.is_empty l.ackq then None else Some (Queue.pop l.ackq) in
              let nack = l.nack_owed in
              l.nack_owed <- false;
              if data <> None || ack <> None || nack then
                out :=
                  (u, Packet.seal { Packet.epoch = st.my_epoch; data; ack; nack; crc = 0 })
                  :: !out
            end
          end)
        st.nbrs;
      ({ st with user }, !out)
    in
    let wrap_active st =
      active st.user
      (* dead links hold no deliverable traffic and never block quiescence *)
      || Det_tbl.exists
           (fun _ l ->
             (not l.dead)
             && (l.outstanding <> None
                || (not (Queue.is_empty l.sendq))
                || not (Queue.is_empty l.ackq)))
           st.links
    in
    let states =
      E.run skeleton ?faults ~init:wrap_init ~step:wrap_step ~active:wrap_active
        ~on_restart:wrap_restart ?max_rounds
        ~corrupt:(fun p -> { p with Packet.crc = p.Packet.crc lxor 0x2a })
        ~max_words:(max_words + 5) ~metrics ~label ()
    in
    Array.map (fun st -> st.user) states
  [@@hot] [@@parallel_region]
end
