module Digraph = Repro_graph.Digraph

type state = { dist : int; pending : bool }

module Word = struct
  type t = int

  let words _ = 1
end

module E = Synchronizer.Make (Word)
module T = Transport.Make (Word)
module D = Detector.Make (Word)

(* weight of the lightest directed edge v -> u, for relaxation on receive *)
let lightest_in g =
  let w_in = Hashtbl.create (Digraph.m g) in
  Array.iter
    (fun e ->
      let record src dst =
        let key = (src, dst) in
        match Hashtbl.find_opt w_in key with
        | Some w when w <= e.Digraph.weight -> ()
        | _ -> Hashtbl.replace w_in key e.Digraph.weight
      in
      record e.Digraph.src e.Digraph.dst;
      if not (Digraph.directed g) then record e.Digraph.dst e.Digraph.src)
    (Digraph.edges g);
  w_in

let relax_step w_in neighbors ~node st inbox =
  let st =
    List.fold_left
      (fun st (sender, sender_dist) ->
        match Hashtbl.find_opt w_in (sender, node) with
        | Some w when sender_dist + w < st.dist ->
            { dist = sender_dist + w; pending = true }
        | _ -> st)
      st inbox
  in
  if st.pending then
    ( { st with pending = false },
      Array.to_list (Array.map (fun u -> (u, st.dist)) neighbors.(node)) )
  else (st, [])

let relax_init ~source v =
  if v = source then { dist = 0; pending = true }
  else { dist = Digraph.inf; pending = false }

let run ?faults ?(reliable = false) ?recovery g ~source ~metrics =
  let n = Digraph.n g in
  let skeleton = Digraph.skeleton g in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let w_in = lightest_in g in
  let step ~round:_ ~node st inbox = relax_step w_in neighbors ~node st inbox in
  let init = relax_init ~source in
  let active st = st.pending in
  let states =
    match recovery with
    | Some { Recovery.checkpoint_every } ->
        (* relaxation is idempotent and announcements supersede, so the
           RECOVERABLE contract holds; a restored node re-floods its
           checkpointed tentative distance *)
        let module R = Recovery.Make (struct
          module Msg = Word

          type st = state

          let init = init
          let step = step
          let active = active
          let snapshot st = [| st.dist |]

          let restore ~node:_ snap =
            { dist = snap.(0); pending = snap.(0) < Digraph.inf }

          let resync st = if st.dist < Digraph.inf then Some st.dist else None
        end) in
        R.run skeleton ?faults ~checkpoint_every ~metrics ~label:"bellman-ford" ()
    | None ->
        if reliable then
          T.run skeleton ?faults ~init ~step ~active ~metrics ~label:"bellman-ford" ()
        else E.run skeleton ?faults ~init ~step ~active ~metrics ~label:"bellman-ford" ()
  in
  Array.map (fun st -> st.dist) states

(* Like the BFS flood, relaxation is self-terminating; the detector
   rides along to certify on which component the distances are exact. *)
let run_certified ?faults ?jitter_seed ?period ?timeout ?max_retries g ~source ~metrics =
  let n = Digraph.n g in
  let skeleton = Digraph.skeleton g in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let w_in = lightest_in g in
  let result =
    D.run skeleton ?faults ?jitter_seed ?period ?timeout ?max_retries ~init:(relax_init ~source)
      ~step:(fun ~round:_ ~node ~suspected:_ st inbox ->
        relax_step w_in neighbors ~node st inbox)
      ~active:(fun st -> st.pending)
      ~metrics ~label:"bellman-ford" ()
  in
  ( Array.map (fun st -> st.dist) result.D.states,
    D.verdict result skeleton ~root:source )
