module Digraph = Repro_graph.Digraph

type state = { dist : int; pending : bool }

module Word = struct
  type t = int

  let words _ = 1
end

module E = Engine.Make (Word)
module T = Transport.Make (Word)

let run ?faults ?(reliable = false) ?recovery g ~source ~metrics =
  let n = Digraph.n g in
  let skeleton = Digraph.skeleton g in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  (* weight of the lightest directed edge v -> u, for relaxation on receive *)
  let w_in = Hashtbl.create (Digraph.m g) in
  Array.iter
    (fun e ->
      let record src dst =
        let key = (src, dst) in
        match Hashtbl.find_opt w_in key with
        | Some w when w <= e.Digraph.weight -> ()
        | _ -> Hashtbl.replace w_in key e.Digraph.weight
      in
      record e.Digraph.src e.Digraph.dst;
      if not (Digraph.directed g) then record e.Digraph.dst e.Digraph.src)
    (Digraph.edges g);
  let step ~round:_ ~node st inbox =
    let st =
      List.fold_left
        (fun st (sender, sender_dist) ->
          match Hashtbl.find_opt w_in (sender, node) with
          | Some w when sender_dist + w < st.dist ->
              { dist = sender_dist + w; pending = true }
          | _ -> st)
        st inbox
    in
    if st.pending then
      ( { st with pending = false },
        Array.to_list (Array.map (fun u -> (u, st.dist)) neighbors.(node)) )
    else (st, [])
  in
  let init v =
    if v = source then { dist = 0; pending = true }
    else { dist = Digraph.inf; pending = false }
  in
  let active st = st.pending in
  let states =
    match recovery with
    | Some { Recovery.checkpoint_every } ->
        (* relaxation is idempotent and announcements supersede, so the
           RECOVERABLE contract holds; a restored node re-floods its
           checkpointed tentative distance *)
        let module R = Recovery.Make (struct
          module Msg = Word

          type st = state

          let init = init
          let step = step
          let active = active
          let snapshot st = [| st.dist |]

          let restore ~node:_ snap =
            { dist = snap.(0); pending = snap.(0) < Digraph.inf }

          let resync st = if st.dist < Digraph.inf then Some st.dist else None
        end) in
        R.run skeleton ?faults ~checkpoint_every ~metrics ~label:"bellman-ford" ()
    | None ->
        if reliable then
          T.run skeleton ?faults ~init ~step ~active ~metrics ~label:"bellman-ford" ()
        else E.run skeleton ?faults ~init ~step ~active ~metrics ~label:"bellman-ford" ()
  in
  Array.map (fun st -> st.dist) states
