(** Virtual-time machinery for the asynchronous executor.

    The asynchronous execution substrate (DESIGN.md Section 3g) splits
    in two: this module owns the model-independent machinery — the
    deterministic virtual-time event queue (a thin facade over
    [Repro_graph.Pqueue]), the wire-latency legs, and the process-wide
    deadline-pacing dials — while {!Synchronizer} owns the per-message
    pulse loop, parameterized by the message type.

    Virtual time is dimensionless: one unit is one nominal node step
    and one nominal wire crossing. A straggler window stretches a step
    to [factor] units; per-link latency stretches a crossing to
    [1 + latency] units. All stretches are pure hashes of the timing
    seed ({!Fault.latency}), so the schedule replays from the seed
    alone and a synchronous run of the same profile is byte-identical
    with or without timing dimensions. *)

(** When true, {!Synchronizer} routes every run through the
    asynchronous executor even if the fault profile has no timing
    dimension (the [--async] CLI flag). Exactness tests rely on this
    to compare engines on identical profiles. *)
val forced : bool ref

(** Pulse deadline in virtual-time units, [0] = off (the default: the
    pure α-synchronizer waits for every neighbor's SAFE forever). When
    positive, a node takes a strike against a neighbor whose
    contribution alone holds its pulse gate open more than
    [2 * deadline * 2^strikes] units past everything else it is
    waiting for (its own schedule, and the runner-up arrival and SAFE
    terms — a {e relative} criterion, so lag merely inherited from a
    straggler deeper in the graph cancels out instead of cascading
    cuts ring by ring). After {!max_strikes} consecutive strikes the
    neighbor is cut: subsequent copies from it are dropped (reason
    [Straggler]), which starves the heartbeat {!Detector} into
    suspecting it so [run_certified] can excise it. *)
val deadline : int ref

(** Consecutive blown deadlines before a neighbor is cut. *)
val max_strikes : int ref

val default_max_strikes : int

(** Cap on the exponent of the deadline backoff ([2^shift]). *)
val max_backoff_shift : int

(** {2 Virtual-time event queue}

    Deterministic min-queue of [(vt, node)] events: ties in virtual
    time break by ascending node id via a composite integer priority,
    so pop order is a function of the pushed set — never of
    heap-internal operation order. *)

type queue

(** [create ~n] is an empty queue for nodes [0 .. n-1]. *)
val create : n:int -> queue

val is_empty : queue -> bool
val length : queue -> int

(** [push q ~vt v] schedules node [v] at virtual time [vt]. *)
val push : queue -> vt:int -> int -> unit

(** [pop q] removes and returns the earliest [(vt, node)] event.
    @raise Not_found if empty. *)
val pop : queue -> int * int

(** {2 Wire legs}

    Leg salts keep the latency draws of the [k]-th data copy of a
    transmission, its acknowledgement, and the SAFE fan-out mutually
    independent ({!Fault.latency}'s [leg] coordinate). *)

val leg_data : int -> int

val leg_ack : int -> int

val leg_safe : int

(** [wire faults ~round ~src ~dst ~leg] — virtual-time units one wire
    crossing of the [src -> dst] link spends in flight at pulse
    [round]: [1] plus the profile's latency draw (just [1] with no
    adversary). *)
val wire : Fault.t option -> round:int -> src:int -> dst:int -> leg:int -> int

(** [strike_allowance ~strikes] — the lateness allowance against a
    neighbor already holding [strikes] strikes:
    [deadline * 2^strikes], shift capped at {!max_backoff_shift}. *)
val strike_allowance : strikes:int -> int
