module Digraph = Repro_graph.Digraph

type config = { checkpoint_every : int }

module type RECOVERABLE = sig
  module Msg : Engine.MSG

  type st

  val init : int -> st
  val step : round:int -> node:int -> st -> (int * Msg.t) list -> st * (int * Msg.t) list
  val active : st -> bool
  val snapshot : st -> int array
  val restore : node:int -> int array -> st
  val resync : st -> Msg.t option
end

module Make (P : RECOVERABLE) = struct
  (* Recovery control traffic is multiplexed with user data on the same
     links: a restarted node floods Hello, neighbors answer Resync with
     their current announcement. Tags are O(1) bits and ride free; the
     payload is measured as the user message it carries. *)
  module X = struct
    type t = Data of P.Msg.t | Hello | Resync of P.Msg.t option

    let words = function
      | Data m | Resync (Some m) -> P.Msg.words m
      | Hello | Resync None -> 1
  end

  module T = Transport.Make (X)

  (* per-neighbor send slot: a later announcement supersedes an earlier
     undelivered one (the RECOVERABLE contract), so one slot suffices *)
  type cell = { mutable resync_owed : bool; mutable data : P.Msg.t option }

  type rst = {
    user : P.st;
    mutable hello : bool;  (* just restarted: flood Hello next step *)
    mutable resyncing : bool;  (* restart handshake not yet complete *)
    cells : (int, cell) Hashtbl.t;
    await : (int, unit) Hashtbl.t;  (* neighbors not heard from since restart *)
    nbrs : int array;
  }

  let run skeleton ?faults ?(checkpoint_every = 0) ?rto ?max_rounds ?max_words ~metrics
      ~label () =
    if checkpoint_every < 0 then invalid_arg "Recovery.run: negative checkpoint interval";
    let sink = !Engine.trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let n = Digraph.n skeleton in
    (* simulated per-node stable storage: survives amnesia restarts
       because it lives outside the engine's (volatile) node states *)
    let stable = Array.make n None in
    let fresh_rst ~hello v user =
      let nbrs = Digraph.neighbors skeleton v in
      let cells = Hashtbl.create 8 in
      Array.iter (fun u -> Hashtbl.replace cells u { resync_owed = false; data = None }) nbrs;
      let await = Hashtbl.create 8 in
      if hello then Array.iter (fun u -> Hashtbl.replace await u ()) nbrs;
      { user; hello; resyncing = hello; cells; await; nbrs }
    in
    let wrap_init v = fresh_rst ~hello:false v (P.init v) in
    let wrap_restart ~round:_ ~node =
      Metrics.add_recoveries metrics 1;
      let user =
        match stable.(node) with
        | Some snap -> P.restore ~node snap
        | None -> P.init node
      in
      fresh_rst ~hello:true node user
    in
    let wrap_step ~round ~node:v st inbox =
      (* absorb: user payloads go to the user inbox; a Hello makes us owe
         that neighbor a Resync; any payload-bearing message from an
         awaited neighbor completes that part of the handshake *)
      let user_in = ref [] in
      List.iter
        (fun (u, x) ->
          (match x with
          | X.Data _ | X.Resync _ -> Hashtbl.remove st.await u
          | X.Hello -> ());
          match x with
          | X.Data m | X.Resync (Some m) -> user_in := (u, m) :: !user_in
          | X.Resync None -> ()
          | X.Hello -> (Hashtbl.find st.cells u).resync_owed <- true)
        inbox;
      let user_in = List.sort (fun (a, _) (b, _) -> Int.compare a b) !user_in in
      let user, user_out = P.step ~round ~node:v st.user user_in in
      List.iter (fun (u, m) -> (Hashtbl.find st.cells u).data <- Some m) user_out;
      if checkpoint_every > 0 && round > 0 && round mod checkpoint_every = 0 then begin
        let snap = P.snapshot user in
        stable.(v) <- Some snap;
        Metrics.add_checkpoints metrics 1;
        Metrics.add_checkpoint_words metrics (Array.length snap);
        if tracing then
          Repro_obs.Sink.emit sink
            (Repro_obs.Event.Checkpoint { round; node = v; words = Array.length snap })
      end;
      let awaiting = Hashtbl.length st.await in
      if awaiting > 0 then Metrics.add_resync_rounds metrics 1
      else if st.resyncing then begin
        (* the post-restart handshake just completed: every neighbor has
           been heard from since the reboot *)
        st.resyncing <- false;
        if tracing then
          Repro_obs.Sink.emit sink (Repro_obs.Event.Recovery_resync { round; node = v })
      end;
      (* emit at most one message per neighbor, Hello > Resync > Data;
         a deferred slot drains on a later round *)
      let out = ref [] in
      Array.iter
        (fun u ->
          let c = Hashtbl.find st.cells u in
          if st.hello then out := (u, X.Hello) :: !out
          else if c.resync_owed then begin
            c.resync_owed <- false;
            out := (u, X.Resync (P.resync user)) :: !out
          end
          else
            match c.data with
            | Some m ->
                c.data <- None;
                out := (u, X.Data m) :: !out
            | None -> ())
        st.nbrs;
      st.hello <- false;
      ({ st with user }, !out)
    in
    let wrap_active st =
      P.active st.user || st.hello
      || Array.exists
           (fun u ->
             let c = Hashtbl.find st.cells u in
             c.resync_owed || c.data <> None)
           st.nbrs
    in
    let states =
      T.run skeleton ?faults ~init:wrap_init ~step:wrap_step ~active:wrap_active
        ~on_restart:wrap_restart ?rto ?max_rounds ?max_words ~metrics ~label ()
    in
    Array.map (fun st -> st.user) states
  [@@charge_site]
end
