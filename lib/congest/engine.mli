(** Synchronous message-passing CONGEST engine.

    The communication network is the skeleton [[G]] of the input graph
    (Section 2.1 of the paper): undirected, simple, unweighted. In each
    round every node may send one message of at most [max_words] machine
    words (a word models O(log n) bits) to each neighbor, then receives
    all messages sent to it in the same round, then computes locally.

    Algorithms are given as a [step] function. The engine enforces the
    bandwidth constraint and counts rounds, messages, and words into a
    {!Metrics.t}.

    Links are reliable by default. An optional {!Fault.t} adversary can
    drop, duplicate, and delay messages and take nodes down according to
    a seeded, reproducible schedule (DESIGN.md "Fault model"); layer
    {!Transport} on top to get reliable delivery back over such links.

    An optional audit mode (DESIGN.md "Model compliance & static
    analysis") cross-checks the engine's own accounting every round and
    raises {!Audit_violation} on drift. *)

(** Raised when [run] exceeds its round budget: carries the metrics
    label of the execution, the number of rounds elapsed, and how many
    nodes still wanted another round. *)
exception
  Round_limit_exceeded of { label : string; rounds : int; active_nodes : int }

(** Raised by audit mode when a per-round conservation invariant fails:
    [detail] names the counter (or message) involved, with the offending
    node ids and the mismatching amounts. Invariants checked each round:

    - copy conservation: accepted sends + adversary-injected duplicates
      = copies delivered + copies destroyed + copies still in flight;
    - metrics conservation: the [messages], [words], [delivered],
      [dropped] and [duplicated] counters of the run's {!Metrics.t}
      advanced exactly by what the engine accounted (a [step] function
      charging traffic counters mid-run is reported as drift);
    - inboxes are genuinely sorted by ascending sender id;
    - [M.words] is stable: the same message measures the same size when
      measured twice at send time and again at delivery time (a message
      mutated while "in flight" breaks the bandwidth model silently). *)
exception Audit_violation of { label : string; round : int; detail : string }

(** When true, every [run] without an explicit [?audit] argument audits.
    The test suites set this so accounting drift fails tests; it defaults
    to [false] for production runs. *)
val audit_enabled : bool ref

(** Process-wide trace sink (DESIGN.md "Observability"). Defaults to
    the disabled [Repro_obs.Sink.null]; install an enabled sink (e.g.
    [Repro_obs.Recorder.sink]) to make every subsequent [run] — and the
    {!Transport} and {!Recovery} layers riding on it — emit typed
    events ([Run_start], [Round_start]/[Round_end], [Send], [Deliver],
    [Drop], [Duplicate], [Delay], crash transitions, ...). Emit sites
    test [enabled] before building an event, so the default sink adds
    zero allocation and no measurable cost; the engine never depends
    on a concrete sink implementation. *)
val trace_sink : Repro_obs.Sink.t ref

module type MSG = sig
  type t

  (** Size of a message in machine words; must be positive and at most the
      engine's [max_words]. Must be stable: audit mode re-measures messages
      and raises on disagreement. *)
  val words : t -> int
end

module Make (M : MSG) : sig
  (** Inbox entry: [(sender, message)]. Inboxes are presented to [step]
      sorted by ascending sender id — an explicit contract, so algorithms
      cannot silently depend on delivery-schedule accidents (and so
      reordering faults are meaningful). Under a duplication fault the
      same sender may appear more than once. *)
  type inbox = (int * M.t) list

  (** Outbox entry: [(receiver, message)]. The receiver must be a neighbor
      in the skeleton. *)
  type outbox = (int * M.t) list

  (** [run skeleton ~init ~step ~active ~metrics ~label ()] executes the
      algorithm until no node is active and no message is in flight, or
      until [max_rounds] elapses (then raises {!Round_limit_exceeded}).

      - [init v] is node [v]'s initial state.
      - [step ~round ~node st inbox] returns the new state and outbox.
        [step] runs for every node in every round (an empty inbox means no
        messages arrived).
      - [active st] declares a node that wants another round even if it
        received nothing (e.g. it still has queued sends).
      - [faults], when given, is applied between outbox collection and
        inbox delivery: dropped and duplicated copies are charged to
        [metrics]; a crashed node neither steps nor sends, and messages
        addressed to it at delivery time are dropped. Crash-stop nodes
        are excluded from the liveness check so they cannot livelock the
        run. A [Freeze] crash-restart resumes with the pre-crash state; an
        [Amnesia] crash-restart loses all volatile state: at the restart
        round the engine rebuilds the node's state via [on_restart]
        (messages already delivered into the restart round's inbox are
        kept — they arrive after the reboot). Executions are kept alive
        while an amnesia outage is in progress so the restart runs.
        A send on a link severed by an active partition window is
        dropped deterministically {e before} the adversary's random
        per-copy decisions (so partitions replay exactly and consume no
        randomness); a copy already in flight when a cut lands still
        arrives — the cut severs new transmissions. Corrupted copies
        are charged to [Metrics.add_corrupted] and handled per
        [corrupt] below.
      - [on_restart ~round ~node], when given, replaces [init] for
        rebuilding the state of an amnesia-restarted node (default:
        re-run [init]). Layered protocols use it to bump connection
        epochs ({!Transport}) or reload checkpoints ({!Recovery}).
      - [corrupt], when given, maps each adversary-corrupted copy
        through this transform at delivery time — the layer above
        decides what "garbled" means for its message type ({!Transport}
        invalidates its packet checksum). The transform must preserve
        [M.words] (audit mode re-measures on delivery and raises
        otherwise). When absent, a corrupted copy is undecodable
        garbage: it is discarded at delivery time like a frame-level
        CRC failure (a [Drop] with reason [Garbled], charged as
        dropped).
      - [audit], when true (default: {!audit_enabled}), cross-checks the
        conservation invariants documented on {!Audit_violation} at the
        end of every round.
      - Rounds consumed are charged to [metrics] under [label]; accepted
        sends are charged as messages and words, accepted deliveries as
        delivered.

      @raise Invalid_argument on bandwidth violation. The message names
      the run label, round, sending node, receiver, and (for size
      violations) the measured words and the cap.
      @raise Audit_violation in audit mode on accounting drift. *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?on_restart:(round:int -> node:int -> 'st) ->
    ?corrupt:(M.t -> M.t) ->
    ?audit:bool ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end

(** Default message size cap (machine words per message). *)
val default_max_words : int
