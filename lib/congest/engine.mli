(** Synchronous message-passing CONGEST engine.

    The communication network is the skeleton [[G]] of the input graph
    (Section 2.1 of the paper): undirected, simple, unweighted. In each
    round every node may send one message of at most [max_words] machine
    words (a word models O(log n) bits) to each neighbor, then receives
    all messages sent to it in the same round, then computes locally.

    Algorithms are given as a [step] function. The engine enforces the
    bandwidth constraint and counts rounds and messages into a
    {!Metrics.t}.

    Links are reliable by default. An optional {!Fault.t} adversary can
    drop, duplicate, and delay messages and take nodes down according to
    a seeded, reproducible schedule (DESIGN.md "Fault model"); layer
    {!Transport} on top to get reliable delivery back over such links. *)

(** Raised when [run] exceeds its round budget: carries the metrics
    label of the execution, the number of rounds elapsed, and how many
    nodes still wanted another round. *)
exception
  Round_limit_exceeded of { label : string; rounds : int; active_nodes : int }

module type MSG = sig
  type t

  (** Size of a message in machine words; must be positive and at most the
      engine's [max_words]. *)
  val words : t -> int
end

module Make (M : MSG) : sig
  (** Inbox entry: [(sender, message)]. Inboxes are presented to [step]
      sorted by ascending sender id — an explicit contract, so algorithms
      cannot silently depend on delivery-schedule accidents (and so
      reordering faults are meaningful). Under a duplication fault the
      same sender may appear more than once. *)
  type inbox = (int * M.t) list

  (** Outbox entry: [(receiver, message)]. The receiver must be a neighbor
      in the skeleton. *)
  type outbox = (int * M.t) list

  (** [run skeleton ~init ~step ~active ~metrics ~label ()] executes the
      algorithm until no node is active and no message is in flight, or
      until [max_rounds] elapses (then raises {!Round_limit_exceeded}).

      - [init v] is node [v]'s initial state.
      - [step ~round ~node st inbox] returns the new state and outbox.
        [step] runs for every node in every round (an empty inbox means no
        messages arrived).
      - [active st] declares a node that wants another round even if it
        received nothing (e.g. it still has queued sends).
      - [faults], when given, is applied between outbox collection and
        inbox delivery: dropped and duplicated copies are charged to
        [metrics]; a crashed node neither steps (state frozen) nor sends,
        and messages addressed to it at delivery time are dropped.
        Crash-stop nodes are excluded from the liveness check so they
        cannot livelock the run.
      - Rounds consumed are charged to [metrics] under [label].

      @raise Invalid_argument on bandwidth violation (two messages to the
      same neighbor in one round, oversized message, or send to a
      non-neighbor). *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end

(** Default message size cap (machine words per message). *)
val default_max_words : int
