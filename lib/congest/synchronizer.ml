module Digraph = Repro_graph.Digraph

module Make (M : Engine.MSG) = struct
  module E = Engine.Make (M)

  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (* The asynchronous pulse loop. Pulses coincide with the engine's
     logical rounds; what the executor adds is a per-node virtual-time
     schedule. Control flow is round-committed: user steps for pulse p
     run in virtual-time order (popped off the event queue), but the
     adversary's per-copy fates are drawn only once every live node
     has finished p, in the engine's canonical order (node ascending,
     outbox order) — so the fate RNG stream, and with it every
     delivery, drop and duplicate, is byte-identical to the
     synchronous engine's. Timing draws are pure hashes (Fault), so
     consulting them in event order costs no stream position. *)
  let run_async skeleton ~init ~step ~active ~faults ~on_restart ~corrupt
      ~audit ~max_rounds ~max_words ~metrics ~label () =
    if Digraph.directed skeleton then
      invalid_arg "Synchronizer.run: communication network must be undirected";
    let audit = match audit with Some b -> b | None -> !Engine.audit_enabled in
    let n = Digraph.n skeleton in
    let neighbor_sets =
      Array.init n (fun v ->
          let tbl = Hashtbl.create 8 in
          Array.iter (fun u -> Hashtbl.replace tbl u ()) (Digraph.neighbors skeleton v);
          tbl)
    in
    let states = Array.init n init in
    let inboxes = ref (Array.make n []) in
    let next_inboxes = ref (Array.make n []) in
    let round = ref 0 in
    let restart_state =
      match on_restart with
      | Some f -> f
      | None -> fun ~round:_ ~node -> init node
    in
    let in_flight = ref false in
    (* delayed copies carry one extra field versus the engine: the
       physical arrival timestamp, applied to the destination's inbox
       high-water mark when the copy matures *)
    let delayed = ref [] in
    let sink = !Engine.trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let emit e = Repro_obs.Sink.emit sink e in
    (match faults with Some f -> Fault.begin_run f | None -> ());
    if tracing then begin
      emit (Repro_obs.Event.Run_start { label; faulty = Option.is_some faults });
      match faults with
      | None -> ()
      | Some f ->
          List.iter
            (fun (c : Fault.crash) ->
              emit
                (Repro_obs.Event.Crash_window
                   {
                     node = c.node;
                     from_round = c.from_round;
                     until_round = c.until_round;
                     amnesia = c.mode = Fault.Amnesia;
                   }))
            (Fault.profile_of f).crashes;
          List.iter
            (fun (p : Fault.partition) ->
              let links, nodes =
                match p.cut with
                | Fault.Links es -> (es, [])
                | Fault.Around vs -> ([], vs)
              in
              emit
                (Repro_obs.Event.Partition_window
                   { links; nodes; from_round = p.from_round; heal_round = p.heal_round }))
            (Fault.profile_of f).partitions;
          List.iter
            (fun (s : Fault.straggle) ->
              emit
                (Repro_obs.Event.Straggle_window
                   {
                     node = s.s_node;
                     from_round = s.s_from;
                     until_round = s.s_until;
                     factor = s.factor;
                   }))
            (Fault.profile_of f).stragglers;
          if Fault.timing_active f then begin
            emit
              (Repro_obs.Event.Timing
                 {
                   link_latency = (Fault.profile_of f).link_latency;
                   skew = (Fault.profile_of f).skew;
                   seed = Fault.seed_of f;
                 });
            for v = 0 to n - 1 do
              let offset = Fault.skew_of f v in
              if offset > 0 then emit (Repro_obs.Event.Skew { node = v; offset })
            done
          end
    end;
    let prev_down = Array.make (if tracing then n else 0) false in
    let crashed v =
      match faults with None -> false | Some f -> Fault.crashed f ~round:!round v
    in
    let stalled ~round v =
      match faults with None -> false | Some f -> Fault.stalled_forever f ~round v
    in
    (* a node inside an unbounded stall window behaves like a
       crash-stop: it neither steps nor sends, copies addressed to it
       are dropped, and it is excluded from the liveness check *)
    let down v = crashed v || stalled ~round:!round v in
    let link_down src dst =
      match faults with
      | None -> false
      | Some f -> Fault.link_down f ~round:!round ~src ~dst
    in
    let partitioned =
      match faults with
      | Some f -> (Fault.profile_of f).partitions <> []
      | None -> false
    in
    let skeleton_edges =
      if tracing && partitioned then Digraph.edges skeleton else [||]
    in
    let prev_link_down = Array.make (Array.length skeleton_edges) false in
    let emit_link_transitions () =
      Array.iteri
        (fun i (e : Digraph.edge) ->
          let down = link_down e.Digraph.src e.Digraph.dst in
          if down <> prev_link_down.(i) then
            emit
              (if down then
                 Repro_obs.Event.Partition
                   { round = !round; src = e.Digraph.src; dst = e.Digraph.dst }
               else
                 Repro_obs.Event.Heal
                   { round = !round; src = e.Digraph.src; dst = e.Digraph.dst });
          prev_link_down.(i) <- down)
        skeleton_edges
    in
    let live_active v =
      active states.(v)
      && (match faults with
         | None -> true
         | Some f ->
             (not (Fault.crash_stopped f ~round:!round v))
             && not (Fault.stalled_forever f ~round:!round v))
    in
    let rec count_active_from v acc =
      if v >= n then acc
      else count_active_from (v + 1) (if live_active v then acc + 1 else acc)
    in
    let count_active () = count_active_from 0 0 in
    let rec any_live_active v = v < n && (live_active v || any_live_active (v + 1)) in
    let continue () =
      !in_flight || !delayed <> []
      || (match faults with
         | Some f -> Fault.amnesia_in_progress f ~round:!round
         | None -> false)
      || any_live_active 0
    in
    (* ---- audit bookkeeping: verbatim the engine's invariants ---- *)
    let a_sent = ref 0
    and a_words = ref 0
    and a_delivered = ref 0
    and a_dropped = ref 0
    and a_duplicated = ref 0 in
    let base_messages = Metrics.messages metrics
    and base_words = Metrics.words metrics
    and base_delivered = Metrics.delivered metrics
    and base_dropped = Metrics.dropped metrics
    and base_duplicated = Metrics.duplicated metrics in
    let violation detail =
      raise (Engine.Audit_violation { label; round = !round; detail })
    in
    let audit_counter name expected actual =
      if expected <> actual then
        violation
          (Printf.sprintf
             "metrics counter '%s' drifted: engine accounted %d, metrics charged %d \
              (did a step function charge traffic counters mid-run?)"
             name expected actual)
    in
    let audit_round_end () =
      let in_flight_delayed = List.length !delayed in
      if !a_sent + !a_duplicated <> !a_delivered + !a_dropped + in_flight_delayed then
        violation
          (Printf.sprintf
             "copy conservation broken: sent=%d + duplicated=%d <> delivered=%d + dropped=%d \
              + in-flight=%d"
             !a_sent !a_duplicated !a_delivered !a_dropped in_flight_delayed);
      audit_counter "messages" !a_sent (Metrics.messages metrics - base_messages);
      audit_counter "words" !a_words (Metrics.words metrics - base_words);
      audit_counter "delivered" !a_delivered (Metrics.delivered metrics - base_delivered);
      audit_counter "dropped" !a_dropped (Metrics.dropped metrics - base_dropped);
      audit_counter "duplicated" !a_duplicated
        (Metrics.duplicated metrics - base_duplicated)
    in
    let audit_inbox_sorted v inbox =
      let rec check = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if a > b then
              violation
                (Printf.sprintf "inbox of node %d not sorted by sender: %d before %d" v
                   a b);
            check rest
        | _ -> ()
      in
      check inbox
    in
    (* ---- virtual-time state ---- *)
    let start_vt = Array.make n 0 in
    let step_end = Array.make n 0 in
    let safe_vt = Array.make n 0 in
    (* high-water mark of physical arrival timestamps into the inbox
       being assembled for the next pulse, per destination — plus the
       sender holding that mark and the best mark among the *other*
       senders, so deadline pacing can judge each neighbor's arrival
       term against the rest of the gate *)
    let next_inbox_vt = Array.make n 0 in
    let next_inbox_src = Array.make n (-1) in
    let next_inbox_vt2 = Array.make n 0 in
    let sa_scratch = Array.make n 0 in
    let stepped = Array.make n false in
    let outboxes = Array.make n ([] : outbox) in
    let queue = Async_engine.create ~n in
    (* deadline pacing: consecutive blown deadlines per directed
       neighbor pair (key [u * n + v]: v waiting on u), and the set of
       pairs v has cut; only populated when the deadline dial is on *)
    let strikes = Hashtbl.create 8 in
    let cut = Hashtbl.create 8 in
    let is_cut ~src ~dst = Hashtbl.mem cut ((src * n) + dst) in
    let sent_this_round = ref 0 in
    let words_this_round = ref 0 in
    let delivered_this_round = ref 0 in
    let pulses_this_round = ref 0 in
    let straggles_this_round = ref 0 in
    let safe_this_round = ref 0 in
    let sent_to = Hashtbl.create 8 in
    let deliver ~send_round ~deliver_round ~words ~arr ?(corrupted = false) dst src msg
        =
      let receiver_down =
        match faults with
        | None -> false
        | Some f ->
            Fault.crashed f ~round:deliver_round dst
            || Fault.stalled_forever f ~round:deliver_round dst
      in
      let msg, garbled_drop =
        if not corrupted then (msg, false)
        else match corrupt with Some f -> (f msg, false) | None -> (msg, true)
      in
      if audit then begin
        let now = M.words msg in
        if now <> words then
          violation
            (Printf.sprintf
               "message %d -> %d measured %d words at send but %d words at delivery \
                (mutated in flight%s?)"
               src dst words now
               (if corrupted then ", or size-changing corrupt transform" else ""))
      end;
      if receiver_down then begin
        Metrics.add_dropped metrics 1;
        if audit then incr a_dropped;
        if tracing then
          emit
            (Repro_obs.Event.Drop
               { send_round; round = deliver_round; src; dst; words; reason = Receiver_down })
      end
      else if is_cut ~src ~dst then begin
        (* the receiver cut this sender as a chronic straggler — its
           copies are discarded on arrival, like a dead receiver but
           with its own drop reason so traces and replay distinguish *)
        Metrics.add_dropped metrics 1;
        if audit then incr a_dropped;
        if tracing then
          emit
            (Repro_obs.Event.Drop
               { send_round; round = deliver_round; src; dst; words; reason = Straggler })
      end
      else if garbled_drop then begin
        Metrics.add_dropped metrics 1;
        if audit then incr a_dropped;
        if tracing then
          emit
            (Repro_obs.Event.Drop
               { send_round; round = deliver_round; src; dst; words; reason = Garbled })
      end
      else begin
        !next_inboxes.(dst) <- (src, msg) :: !next_inboxes.(dst);
        if arr > next_inbox_vt.(dst) then begin
          if next_inbox_src.(dst) <> src && next_inbox_vt.(dst) > next_inbox_vt2.(dst)
          then next_inbox_vt2.(dst) <- next_inbox_vt.(dst);
          next_inbox_vt.(dst) <- arr;
          next_inbox_src.(dst) <- src
        end
        else if next_inbox_src.(dst) <> src && arr > next_inbox_vt2.(dst) then
          next_inbox_vt2.(dst) <- arr;
        incr delivered_this_round;
        if audit then incr a_delivered;
        if tracing then
          emit
            (Repro_obs.Event.Deliver { send_round; round = deliver_round; src; dst; words })
      end
    in
    (* pulse 0 starts at each node's clock-skew offset *)
    for v = 0 to n - 1 do
      start_vt.(v) <-
        (match faults with None -> 0 | Some f -> Fault.skew_of f v);
      Async_engine.push queue ~vt:start_vt.(v) v
    done;
    while continue () do
      if !round >= max_rounds then
        raise
          (Engine.Round_limit_exceeded
             { label; rounds = !round; active_nodes = count_active () });
      if tracing then begin
        emit (Repro_obs.Event.Round_start { round = !round });
        match faults with
        | None -> ()
        | Some f ->
            for v = 0 to n - 1 do
              let down = Fault.crashed f ~round:!round v in
              if down <> prev_down.(v) then
                emit
                  (if down then Repro_obs.Event.Crash { round = !round; node = v }
                   else Repro_obs.Event.Restart { round = !round; node = v });
              prev_down.(v) <- down
            done;
            emit_link_transitions ()
      end;
      (match faults with
      | Some f ->
          for v = 0 to n - 1 do
            if Fault.restarted f ~round:!round v then
              states.(v) <- restart_state ~round:!round ~node:v
          done
      | None -> ());
      sent_this_round := 0;
      words_this_round := 0;
      delivered_this_round := 0;
      pulses_this_round := 0;
      straggles_this_round := 0;
      safe_this_round := 0;
      Array.fill stepped 0 n false;
      (* phase 1: dispatch — pop this pulse's events in virtual-time
         order and run the user steps; fates wait for the commit *)
      while not (Async_engine.is_empty queue) do
        let vt, v = Async_engine.pop queue in
        if not (down v) then begin
          start_vt.(v) <- vt;
          let factor =
            match faults with
            | None -> 1
            | Some f -> Fault.straggle_factor f ~round:!round v
          in
          step_end.(v) <- vt + max 1 factor;
          incr pulses_this_round;
          if factor <> 1 then begin
            incr straggles_this_round;
            if tracing then
              emit (Repro_obs.Event.Straggle { round = !round; node = v; factor; vt })
          end;
          if tracing then emit (Repro_obs.Event.Pulse { round = !round; node = v; vt });
          let inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) !inboxes.(v) in
          if audit then audit_inbox_sorted v inbox;
          let st, outbox = step ~round:!round ~node:v states.(v) inbox in
          states.(v) <- st;
          outboxes.(v) <- outbox;
          stepped.(v) <- true
        end
      done;
      (* phase 2: commit — canonical node order, engine-identical fate
         draws and accounting; acknowledgement round trips raise the
         sender's SAFE point (drops are sender-detectable: the NACK
         arrives on the same schedule as the ack it replaces) *)
      for v = 0 to n - 1 do
        if stepped.(v) then begin
          safe_vt.(v) <- step_end.(v);
          Hashtbl.clear sent_to;
          List.iter
            (fun (u, msg) ->
              if not (Hashtbl.mem neighbor_sets.(v) u) then
                invalid_arg
                  (Printf.sprintf
                     "Synchronizer.run(%s): round %d: node %d sent to non-neighbor %d"
                     label !round v u);
              if Hashtbl.mem sent_to u then
                invalid_arg
                  (Printf.sprintf
                     "Synchronizer.run(%s): round %d: node %d sent two messages to %d \
                      in one round"
                     label !round v u);
              Hashtbl.add sent_to u ();
              let w = M.words msg in
              if audit then begin
                let w' = M.words msg in
                if w' <> w then
                  violation
                    (Printf.sprintf
                       "M.words unstable on message %d -> %d: measured %d then %d" v u
                       w w')
              end;
              if w < 1 || w > max_words then
                invalid_arg
                  (Printf.sprintf
                     "Synchronizer.run(%s): round %d: node %d -> %d: message of %d \
                      words (cap %d)"
                     label !round v u w max_words);
              incr sent_this_round;
              words_this_round := !words_this_round + w;
              if audit then begin
                incr a_sent;
                a_words := !a_words + w
              end;
              if tracing then
                emit (Repro_obs.Event.Send { round = !round; src = v; dst = u; words = w });
              let arrival k =
                step_end.(v)
                + Async_engine.wire faults ~round:!round ~src:v ~dst:u
                    ~leg:(Async_engine.leg_data k)
              in
              let acked k arr =
                let ack =
                  arr
                  + Async_engine.wire faults ~round:!round ~src:u ~dst:v
                      ~leg:(Async_engine.leg_ack k)
                in
                if ack > safe_vt.(v) then safe_vt.(v) <- ack
              in
              match faults with
              | None ->
                  let arr = arrival 0 in
                  acked 0 arr;
                  deliver ~send_round:!round ~deliver_round:(!round + 1) ~words:w ~arr
                    u v msg
              | Some _ when link_down v u ->
                  (* deterministic partition drop, decided before
                     [plan]; the sender sees the dead carrier at once,
                     so a severed send never stretches its SAFE *)
                  Metrics.add_dropped metrics 1;
                  if audit then incr a_dropped;
                  if tracing then
                    emit
                      (Repro_obs.Event.Drop
                         {
                           send_round = !round;
                           round = !round;
                           src = v;
                           dst = u;
                           words = w;
                           reason = Severed;
                         })
              | Some f -> (
                  match Fault.plan f ~round:!round ~src:v ~dst:u with
                  | [] ->
                      acked 0 (arrival 0);
                      Metrics.add_dropped metrics 1;
                      if audit then incr a_dropped;
                      if tracing then
                        emit
                          (Repro_obs.Event.Drop
                             {
                               send_round = !round;
                               round = !round;
                               src = v;
                               dst = u;
                               words = w;
                               reason = Link;
                             })
                  | fates ->
                      if List.length fates > 1 then begin
                        Metrics.add_duplicated metrics (List.length fates - 1);
                        if audit then a_duplicated := !a_duplicated + List.length fates - 1;
                        if tracing then
                          emit
                            (Repro_obs.Event.Duplicate
                               { round = !round; src = v; dst = u; copies = List.length fates })
                      end;
                      List.iteri
                        (fun k { Fault.extra; corrupt = corrupted } ->
                          let deliver_round = !round + 1 + extra in
                          let arr = arrival k in
                          acked k arr;
                          if corrupted then begin
                            Metrics.add_corrupted metrics 1;
                            if tracing then
                              emit
                                (Repro_obs.Event.Corrupt
                                   { send_round = !round; deliver_round; src = v; dst = u })
                          end;
                          if extra = 0 then
                            deliver ~send_round:!round ~deliver_round ~words:w ~arr
                              ~corrupted u v msg
                          else begin
                            (* a delay is a logical-schedule fault: the
                               copy is acked on its physical schedule
                               but buffered until [deliver_round]'s
                               inbox *)
                            delayed :=
                              (deliver_round, u, v, msg, w, !round, corrupted, arr)
                              :: !delayed;
                            if tracing then
                              emit
                                (Repro_obs.Event.Delay
                                   { round = !round; src = v; dst = u; deliver_round })
                          end)
                        fates))
            outboxes.(v);
          outboxes.(v) <- [];
          Metrics.observe_virtual_time metrics safe_vt.(v);
          (* SAFE fan-out to live neighbors (a cutter still receives
             and ignores the cuttee's SAFE — the cut is its local
             decision, invisible to the straggler) *)
          Array.iter
            (fun u -> if not (down u) then incr safe_this_round)
            (Digraph.neighbors skeleton v);
          if tracing then
            emit (Repro_obs.Event.Safe { round = !round; node = v; vt = safe_vt.(v) })
        end
      done;
      let matured, still_held =
        List.partition (fun (dr, _, _, _, _, _, _, _) -> dr = !round + 1) !delayed
      in
      delayed := still_held;
      List.iter
        (fun (dr, dst, src, msg, w, sr, corrupted, arr) ->
          deliver ~send_round:sr ~deliver_round:dr ~words:w ~arr ~corrupted dst src msg)
        matured;
      let filled = !next_inboxes in
      next_inboxes := !inboxes;
      inboxes := filled;
      Array.fill !next_inboxes 0 n [];
      in_flight := Array.exists (fun ib -> ib <> []) filled;
      Metrics.add_messages metrics !sent_this_round;
      Metrics.add_words metrics !words_this_round;
      Metrics.add_delivered metrics !delivered_this_round;
      Metrics.add_pulses metrics !pulses_this_round;
      Metrics.add_straggles metrics !straggles_this_round;
      Metrics.add_safe_messages metrics !safe_this_round;
      if audit then audit_round_end ();
      if tracing then emit (Repro_obs.Event.Round_end { round = !round });
      (* phase 3: the α gate — each node starts its next pulse once its
         own step and SAFE are done, every copy addressed into that
         pulse has physically arrived, and every live uncut neighbor's
         SAFE for this pulse has reached it. Deadline pacing never
         shortens the wait directly; it watches for a neighbor whose
         terms ALONE hold the gate open past everything else the node
         is waiting for — a relative criterion: lag a neighbor merely
         inherits from a straggler deeper in the graph is shared by
         the rest of the gate and cancels out, so cuts single out the
         chronic bottleneck instead of cascading ring by ring — and
         cuts it after max_strikes consecutive blown allowances. *)
      let deadline_on = !Async_engine.deadline > 0 in
      for v = 0 to n - 1 do
        let own = max step_end.(v) safe_vt.(v) in
        let gate = ref (max own next_inbox_vt.(v)) in
        if stepped.(v) then begin
          (* first pass: neighbor SAFE arrivals, tracking the top two
             (by distinct sender) for the per-neighbor runner-up term *)
          let sa_best = ref 0 and sa_best_u = ref (-1) and sa_second = ref 0 in
          let eligible = ref 0 in
          Array.iter
            (fun u ->
              if u <> v && stepped.(u) && not (is_cut ~src:u ~dst:v) then begin
                let sa =
                  safe_vt.(u)
                  + Async_engine.wire faults ~round:!round ~src:u ~dst:v
                      ~leg:Async_engine.leg_safe
                in
                sa_scratch.(u) <- sa;
                incr eligible;
                if sa > !sa_best then begin
                  sa_second := !sa_best;
                  sa_best := sa;
                  sa_best_u := u
                end
                else if sa > !sa_second then sa_second := sa;
                if sa > !gate then gate := sa
              end)
            (Digraph.neighbors skeleton v);
          (* striking needs an independent witness: with a single
             eligible neighbor there is no reference separating the
             neighbor's own lag from lag it merely inherits, and
             cutting your only neighbor just disconnects yourself *)
          if deadline_on && !eligible >= 2 then
            Array.iter
              (fun u ->
                if u <> v && stepped.(u) && not (is_cut ~src:u ~dst:v) then begin
                  let arr_u, arr_rest =
                    if next_inbox_src.(v) = u then
                      (next_inbox_vt.(v), next_inbox_vt2.(v))
                    else (0, next_inbox_vt.(v))
                  in
                  let sa_rest = if !sa_best_u = u then !sa_second else !sa_best in
                  let rest = max own (max arr_rest sa_rest) in
                  let u_term = max sa_scratch.(u) arr_u in
                  let key = (u * n) + v in
                  let s =
                    match Hashtbl.find_opt strikes key with Some s -> s | None -> 0
                  in
                  if u_term - rest > 2 * Async_engine.strike_allowance ~strikes:s
                  then begin
                    let s = s + 1 in
                    if s >= !Async_engine.max_strikes then begin
                      Hashtbl.replace cut key ();
                      Hashtbl.remove strikes key;
                      if tracing then
                        emit
                          (Repro_obs.Event.Straggler_cut
                             { round = !round; node = v; peer = u; vt = u_term })
                    end
                    else Hashtbl.replace strikes key s
                  end
                  else Hashtbl.remove strikes key
                end)
              (Digraph.neighbors skeleton v)
        end;
        start_vt.(v) <- !gate;
        next_inbox_vt.(v) <- 0;
        next_inbox_src.(v) <- -1;
        next_inbox_vt2.(v) <- 0;
        Async_engine.push queue ~vt:!gate v
      done;
      incr round;
      Metrics.add metrics ~label 1
    done;
    states
  [@@hot] [@@parallel_region] [@@charge_site]

  let run skeleton ~init ~step ~active ?faults ?on_restart ?corrupt ?audit
      ?(max_rounds = 10_000_000) ?(max_words = Engine.default_max_words) ~metrics
      ~label () =
    let timing =
      match faults with Some f -> Fault.timing_active f | None -> false
    in
    if timing || !Async_engine.forced then
      run_async skeleton ~init ~step ~active ~faults ~on_restart ~corrupt ~audit
        ~max_rounds ~max_words ~metrics ~label ()
    else
      E.run skeleton ~init ~step ~active ?faults ?on_restart ?corrupt ?audit
        ~max_rounds ~max_words ~metrics ~label ()
  [@@hot] [@@parallel_region]
end
