(** Checkpoint/recovery layer: crash-amnesia survival with oracle-exact
    outputs (DESIGN.md "Crash recovery & stable storage").

    An [Amnesia] crash ({!Fault.mode}) loses all volatile state. This
    layer makes algorithms survive it anyway: every node periodically
    writes a serialized snapshot of its state to simulated per-node
    {e stable storage}; on restart the node reloads the last checkpoint
    (or re-runs [init] if none exists) and runs a bounded HELLO/RESYNC
    handshake with its neighbors — epoch-tagged at the transport layer —
    to recover the frontier lost between the checkpoint and the crash.

    The layer is sound for {e announcement-monotone} programs (the
    {!RECOVERABLE} contract below): BFS, Bellman-Ford, flooding — any
    program whose messages carry its current knowledge, where re-receiving
    an old announcement is harmless (idempotent relaxation), and where a
    later announcement to the same neighbor supersedes an earlier
    undelivered one. Under that contract, and the transport's conditions
    (drop < 1, no crash-stop), every run converges to the same output as
    a fault-free execution: whatever a restarted node forgot is
    re-derivable from its own re-announced checkpoint plus its neighbors'
    resync replies, inductively back to the program's sources.

    Costs are charged to {!Metrics.t}: [checkpoints] / [checkpoint_words]
    (storage writes — no network traffic, so the engine's
    traffic-conservation audit is undisturbed), [recoveries] (restarts
    served), and [resync_rounds] (node-rounds between a restart and
    having heard from every neighbor). A crash-free run with
    [checkpoint_every = 0] adds zero round overhead over plain
    {!Transport}: recovery emits no control messages and forwards data
    in the same round it is produced. *)

type config = { checkpoint_every : int  (** rounds between checkpoints; 0 disables. *) }

(** What a program must provide to run under recovery. *)
module type RECOVERABLE = sig
  module Msg : Engine.MSG

  type st

  val init : int -> st

  (** Same contract as {!Engine.Make.run}'s [step]; additionally the
      program must tolerate re-delivery of messages it already consumed
      before a crash (idempotent relaxation), and its messages must be
      announcements: a later message to the same neighbor supersedes an
      earlier undelivered one. *)
  val step : round:int -> node:int -> st -> (int * Msg.t) list -> st * (int * Msg.t) list

  val active : st -> bool

  (** [snapshot st] serializes [st] for stable storage; its length is
      the checkpoint's size in machine words (charged to
      [checkpoint_words]). *)
  val snapshot : st -> int array

  (** [restore ~node snap] rebuilds a state from a snapshot. The result
      must {e re-announce}: a restored node must re-offer everything it
      knows to its neighbors (e.g. BFS restores with [pending = true]),
      otherwise knowledge that only the crashed node held would never
      propagate again. *)
  val restore : node:int -> int array -> st

  (** [resync st] is the node's current announcement, offered to a
      recovering neighbor in reply to its Hello ([None] = nothing known
      yet). *)
  val resync : st -> Msg.t option
end

module Make (P : RECOVERABLE) : sig
  (** [run skeleton ~metrics ~label ()] executes [P] over the reliable
      {!Transport} with checkpointing every [checkpoint_every] rounds
      (default [0] = disabled) and full crash-amnesia recovery. Control
      messages (Hello, Resync) are multiplexed with user data on the same
      links, at most one message per neighbor per round, so the engine's
      bandwidth contract is preserved ([max_words] applies to the user
      payloads). *)
  val run :
    Repro_graph.Digraph.t ->
    ?faults:Fault.t ->
    ?checkpoint_every:int ->
    ?rto:int ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    P.st array
end
