module Digraph = Repro_graph.Digraph

type result = { dist : int array array; rounds : int }

type state = {
  dists : int array;  (* per instance *)
  queues : (int, (int * int) Queue.t) Hashtbl.t;  (* per neighbor *)
  delayed : (int * int * int) list;  (* (start round, instance, dist 0) for roots *)
}

module E = Synchronizer.Make (struct
  type t = int * int

  let words _ = 2
end)

let run skeleton ~roots ?(seed = 0) ~metrics () =
  let n = Digraph.n skeleton in
  let k = List.length roots in
  let rng = Random.State.make [| seed; n; k; 0x5ced |] in
  let delays = List.map (fun _ -> Random.State.int rng (max 1 k)) roots in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let inf = Digraph.inf in
  let init v =
    let delayed =
      List.concat
        (List.mapi
           (fun i (r, delay) -> if r = v then [ (delay, i, 0) ] else [])
           (List.combine roots delays))
    in
    { dists = Array.make k inf; queues = Hashtbl.create 4; delayed }
  in
  let announce st node i d =
    Array.iter
      (fun u ->
        let q =
          match Hashtbl.find_opt st.queues u with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.add st.queues u q;
              q
        in
        Queue.add (i, d) q)
      neighbors.(node)
  in
  let step ~round ~node st inbox =
    (* relax received announcements *)
    List.iter
      (fun (_, (i, d)) ->
        if d + 1 < st.dists.(i) then begin
          st.dists.(i) <- d + 1;
          announce st node i (d + 1)
        end)
      inbox;
    (* root instances wake up at their delayed start *)
    List.iter
      (fun (start, i, d) ->
        if start = round && d < st.dists.(i) then begin
          st.dists.(i) <- d;
          announce st node i d
        end)
      st.delayed;
    (* one message per neighbor per round, in ascending neighbor order so
       the adversary's RNG consumption is schedule-independent *)
    let outbox = ref [] in
    Array.iter
      (fun u ->
        match Hashtbl.find_opt st.queues u with
        | Some q when not (Queue.is_empty q) -> outbox := (u, Queue.pop q) :: !outbox
        | _ -> ())
      neighbors.(node);
    (st, List.rev !outbox)
  in
  let active st =
    Det_tbl.exists (fun _ q -> not (Queue.is_empty q)) st.queues
    || st.delayed <> []
       && List.exists (fun (_, i, _) -> st.dists.(i) > 0) st.delayed
  in
  let before = Metrics.rounds metrics in
  let states =
    E.run skeleton ~init ~step ~active ~metrics ~label:"multi-bfs" ()
  in
  let rounds = Metrics.rounds metrics - before in
  { dist = Array.init k (fun i -> Array.init n (fun v -> states.(v).dists.(i))); rounds }
