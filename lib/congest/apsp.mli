(** Pipelined all-pairs BFS and the unweighted-diameter baseline.

    Every vertex floods a BFS token [(source, dist)]; nodes forward one
    newly-learned token per edge per round (FIFO), the textbook
    O(n + D)-round APSP [Holzer-Wattenhofer PODC'12; Peleg-Roditty-Tal
    ICALP'12]. This is the Θ(n)-round diameter algorithm used as the
    contrast in the girth-vs-diameter separation experiment (E5b). *)

(** [hop_distances skeleton ~metrics] is the matrix [d.(v).(u)] of hop
    distances. Rounds charged under ["apsp"]. *)
val hop_distances : Repro_graph.Digraph.t -> metrics:Metrics.t -> int array array

(** [diameter skeleton ~metrics] runs [hop_distances], then aggregates the
    maximum eccentricity over a BFS tree. *)
val diameter : Repro_graph.Digraph.t -> metrics:Metrics.t -> int

(** [diameter_two_approx skeleton ~metrics] is the classic O(D)-round
    2-approximation: a BFS from an arbitrary root; its eccentricity e
    satisfies e <= D <= 2e. Returns the eccentricity (the lower bound).
    Contrast with {!diameter}, which is exact but needs Omega(n) rounds
    even on constant-diameter low-treewidth graphs (experiment E5b). *)
val diameter_two_approx : Repro_graph.Digraph.t -> metrics:Metrics.t -> int
