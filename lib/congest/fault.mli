(** Deterministic fault-injection adversary for the CONGEST engine.

    The paper's model (Section 2.1) assumes perfectly reliable synchronous
    links. This module relaxes that assumption so experiments can measure
    how fragile the reproduced algorithms are and what reliability costs
    in rounds (experiment E-F1, DESIGN.md "Fault model").

    The adversary is an oblivious, seeded random process
    ({!Random.State}-based, the same seeding idiom as
    [Repro_graph.Generators]): given the same seed and the same execution
    it makes the same decisions, so every faulty run is reproducible.

    Composable fault dimensions, all off by default:
    - [drop]: each message copy is destroyed with this probability;
    - [duplicate]: each surviving message spawns one extra copy with this
      probability;
    - [max_delay]: each copy is held a uniform number of extra rounds in
      [0..max_delay] (delays of distinct copies are independent, so a
      duplicated message can be reordered against later traffic);
    - [crashes]: per-node round windows during which the node neither
      steps, sends, nor receives; messages addressed to it are dropped.
      A window with [until_round = None] is crash-stop; with [Some r] the
      node restarts at round [r] (crash-restart). What the node restarts
      {e with} is the window's {!mode}: [Freeze] resumes with the exact
      pre-crash state (the unrealistically kind model of PR 1); [Amnesia]
      loses all volatile state — the engine re-runs [init] (or the
      [on_restart] hook, see {!Engine.Make.run}) at the restart round,
      which is how real processes come back. Layer {!Recovery} on top to
      survive amnesia with oracle-exact outputs. *)

(** What a crash-restart node remembers when it comes back up. *)
type mode =
  | Freeze  (** pre-crash state preserved verbatim (PR-1 semantics). *)
  | Amnesia  (** volatile state lost; [init]/[on_restart] re-runs. *)

type crash = {
  node : int;
  from_round : int;  (** first round the node is down. *)
  until_round : int option;
      (** [None] = crash-stop (never restarts); [Some r] = the node is up
          again from round [r] on. *)
  mode : mode;
      (** restart semantics; irrelevant for crash-stop windows (and
          [Amnesia] with [until_round = None] is rejected — an amnesia
          crash that never restarts is just crash-stop). *)
}

(** [crash ~from ?until ?mode node] builds a crash window; [mode]
    defaults to [Freeze]. *)
val crash : ?until:int -> ?mode:mode -> from:int -> int -> crash

type profile = {
  drop : float;  (** per-copy loss probability, in [0, 1). *)
  duplicate : float;  (** per-message duplication probability, in [0, 1). *)
  max_delay : int;  (** max extra rounds a copy may be held; >= 0. *)
  crashes : crash list;
}

(** All-zero profile (the adversary does nothing). *)
val reliable : profile

(** [profile ()] builds a profile from the given dimensions; everything
    omitted defaults to the {!reliable} value.

    @raise Invalid_argument if a probability is outside [0, 1) or
    [max_delay] is negative. *)
val profile :
  ?drop:float -> ?duplicate:float -> ?max_delay:int -> ?crashes:crash list -> unit -> profile

type t

(** [create ~seed p] instantiates the adversary. Two adversaries with the
    same seed and profile make identical decisions when consulted in the
    same order. *)
val create : ?seed:int -> profile -> t

(** [scripted ?crashes plan] builds an adversary that replays a
    recorded delivery schedule instead of rolling dice: [plan] is
    consulted for every send exactly like {!plan} below, additionally
    keyed by which engine run of the process is asking (see
    {!begin_run}); [crashes] replays the recorded crash windows. Used
    by [--replay] (the schedule comes from [Repro_obs.Replay]); the
    random dimensions of the profile are all zero.

    @raise Invalid_argument if [crashes] is invalid (as {!profile}). *)
val scripted :
  ?crashes:crash list -> (run:int -> round:int -> src:int -> dst:int -> int list) -> t

(** [begin_run t] announces that a new [Engine.run] is starting; the
    engine calls it once per run. Scripted deciders use the resulting
    run index to section their schedule (rounds restart at 0 each
    run); for {!create}d adversaries it is a no-op. *)
val begin_run : t -> unit

val profile_of : t -> profile

(** [plan t ~round ~src ~dst] decides the fate of one message sent on link
    [src -> dst] at [round]: the returned list holds one extra-round delay
    per copy to deliver ([0] = normal next-round delivery). [[]] means the
    message is dropped; a two-element list means it was duplicated. *)
val plan : t -> round:int -> src:int -> dst:int -> int list

(** [crashed t ~round v] — is [v] down at [round]? *)
val crashed : t -> round:int -> int -> bool

(** [crash_stopped t ~round v] — is [v] down at [round] with no scheduled
    restart? The engine excludes such nodes from its liveness check so
    crash-stop schedules cannot livelock an execution. *)
val crash_stopped : t -> round:int -> int -> bool

(** [restarted t ~round v] — does [v] come back up at exactly [round]
    from an [Amnesia] window (and is not covered by another crash window
    at [round])? The engine resets such a node's state at the start of
    that round. Freeze windows never report here: their restart is
    state-preserving and needs no engine action. *)
val restarted : t -> round:int -> int -> bool

(** [amnesia_in_progress t ~round] — is some node inside an [Amnesia]
    window (down now, or restarting exactly this round)? The engine keeps
    the execution alive through such outages — up to and including the
    restart round — so the scheduled restart, and any recovery protocol
    it triggers, actually runs instead of the run quiescing with the
    node's fate unresolved. (A window whose [from_round] is never reached
    because the run ended earlier is a no-op.) *)
val amnesia_in_progress : t -> round:int -> bool

val pp : Format.formatter -> t -> unit
