(** Deterministic fault-injection adversary for the CONGEST engine.

    The paper's model (Section 2.1) assumes perfectly reliable synchronous
    links. This module relaxes that assumption so experiments can measure
    how fragile the reproduced algorithms are and what reliability costs
    in rounds (experiments E-F1..E-F3, DESIGN.md "Fault model").

    The adversary is an oblivious, seeded random process
    ({!Random.State}-based, the same seeding idiom as
    [Repro_graph.Generators]): given the same seed and the same execution
    it makes the same decisions, so every faulty run is reproducible.

    Composable fault dimensions, all off by default:
    - [drop]: each message copy is destroyed with this probability;
    - [duplicate]: each surviving message spawns one extra copy with this
      probability;
    - [max_delay]: each copy is held a uniform number of extra rounds in
      [0..max_delay] (delays of distinct copies are independent, so a
      duplicated message can be reordered against later traffic);
    - [corrupt]: each surviving copy has its payload garbled in flight
      with this probability. The engine treats a corrupted copy as
      undecodable garbage and discards it (frame-level CRC semantics)
      unless the layer above supplies a corruption transform — see
      [?corrupt] on {!Engine.Make.run}; {!Transport} supplies one that
      invalidates the packet checksum, so corruption becomes visible to
      (and survivable by) its integrity sublayer;
    - [crashes]: per-node round windows during which the node neither
      steps, sends, nor receives; messages addressed to it are dropped.
      A window with [until_round = None] is crash-stop; with [Some r] the
      node restarts at round [r] (crash-restart). What the node restarts
      {e with} is the window's {!mode}: [Freeze] resumes with the exact
      pre-crash state (the unrealistically kind model of PR 1); [Amnesia]
      loses all volatile state — the engine re-runs [init] (or the
      [on_restart] hook, see {!Engine.Make.run}) at the restart round,
      which is how real processes come back. Layer {!Recovery} on top to
      survive amnesia with oracle-exact outputs;
    - [partitions]: persistent link faults. Each window takes a {!cut}
      (an explicit link set, or a vertex cut = every link incident to a
      listed node) down from [from_round], either forever
      ([heal_round = None]) or until it heals. Unlike [drop], a severed
      link loses {e every} copy, deterministically — no retransmission
      count gets a message across before the heal. Layer {!Detector} on
      top to detect the unreachable side and certify partial results. *)

(** What a crash-restart node remembers when it comes back up. *)
type mode =
  | Freeze  (** pre-crash state preserved verbatim (PR-1 semantics). *)
  | Amnesia  (** volatile state lost; [init]/[on_restart] re-runs. *)

type crash = {
  node : int;
  from_round : int;  (** first round the node is down. *)
  until_round : int option;
      (** [None] = crash-stop (never restarts); [Some r] = the node is up
          again from round [r] on. *)
  mode : mode;
      (** restart semantics; irrelevant for crash-stop windows (and
          [Amnesia] with [until_round = None] is rejected — an amnesia
          crash that never restarts is just crash-stop). *)
}

(** [crash ~from ?until ?mode node] builds a crash window; [mode]
    defaults to [Freeze]. *)
val crash : ?until:int -> ?mode:mode -> from:int -> int -> crash

(** Which links a partition takes down. Links are undirected: listing
    [(u, v)] severs both directions, matching the engine's undirected
    communication skeleton. *)
type cut =
  | Links of (int * int) list  (** exactly these links. *)
  | Around of int list  (** every link incident to a listed node. *)

type partition = {
  cut : cut;
  from_round : int;  (** first round the cut is down. *)
  heal_round : int option;
      (** [None] = never heals; [Some r] = links are back from round [r]. *)
}

(** [partition ~from ?heal cut] builds a partition window. *)
val partition : ?heal:int -> from:int -> cut -> partition

(** A timing fault (the seventh fault dimension; only the asynchronous
    executor observes it — the synchronous engine enforces lockstep by
    fiat and ignores timing entirely). During the window, node
    [s_node]'s per-pulse computation is stretched by [factor] in
    virtual time. [factor = 0] encodes a stall: bounded stalls are
    modeled as a {!stall_factor}[x] slowdown, and an unbounded stall
    ([s_until = None]) stops the node outright — the asynchronous
    executor treats it like a crash-stop from [s_from] on, and the
    deadline-paced synchronizer cuts it so the run terminates. *)
type straggle = {
  s_node : int;
  s_from : int;  (** first pulse the window covers. *)
  s_until : int option;  (** [None] = forever; [Some u] = pulses < [u]. *)
  factor : int;  (** 0 = stall; >= 2 = slowdown multiplier. *)
}

(** Virtual-time slowdown standing in for a bounded stall: long enough
    to blow any realistic pulse deadline, still finite so undeadlined
    runs terminate. *)
val stall_factor : int

(** [straggle ~from ?until ?factor node] builds a straggler window;
    [factor] defaults to [0] (stall). *)
val straggle : ?until:int -> ?factor:int -> from:int -> int -> straggle

type profile = {
  drop : float;  (** per-copy loss probability, in [0, 1). *)
  duplicate : float;  (** per-message duplication probability, in [0, 1). *)
  max_delay : int;  (** max extra rounds a copy may be held; >= 0. *)
  corrupt : float;  (** per-copy payload-corruption probability, in [0, 1). *)
  crashes : crash list;
  partitions : partition list;
  stragglers : straggle list;  (** per-node straggler windows. *)
  link_latency : int;
      (** max extra virtual-time units a copy (or ack) spends on the
          wire; >= 0. Pure latency: never changes which pulse a copy is
          delivered in, only when the synchronizer can declare the pulse
          safe. *)
  skew : int;  (** max per-node virtual-clock offset at pulse 0; >= 0. *)
}

(** All-zero profile (the adversary does nothing). *)
val reliable : profile

(** [profile ()] builds a profile from the given dimensions; everything
    omitted defaults to the {!reliable} value.

    @raise Invalid_argument if a probability is outside [0, 1),
    [max_delay] is negative, a crash or partition window is inverted, or
    a partition cut is empty or contains a self-loop link. *)
val profile :
  ?drop:float ->
  ?duplicate:float ->
  ?max_delay:int ->
  ?corrupt:float ->
  ?crashes:crash list ->
  ?partitions:partition list ->
  ?stragglers:straggle list ->
  ?link_latency:int ->
  ?skew:int ->
  unit ->
  profile

(** The fate of one surviving message copy: held [extra] extra rounds
    ([0] = normal next-round delivery), payload garbled iff [corrupt]. *)
type fate = { extra : int; corrupt : bool }

(** [intact d] is [{ extra = d; corrupt = false }] — the fate of an
    unmolested (possibly delayed) copy. *)
val intact : int -> fate

type t

(** [create ~seed p] instantiates the adversary. Two adversaries with the
    same seed and profile make identical decisions when consulted in the
    same order. *)
val create : ?seed:int -> profile -> t

(** [scripted ?crashes ?partitions plan] builds an adversary that
    replays a recorded delivery schedule instead of rolling dice: [plan]
    is consulted for every send exactly like {!plan} below, additionally
    keyed by which engine run of the process is asking (see
    {!begin_run}); [crashes] and [partitions] replay the recorded
    deterministic windows (the engine re-applies partition drops itself,
    so [plan] is never consulted about a severed send). Used by
    [--replay] (the schedule comes from [Repro_obs.Replay]); the random
    dimensions of the profile are all zero.

    The timing dimensions replay through [stragglers]/[link_latency]/
    [skew]/[timing_seed]: timing draws are pure hashes of the seed (see
    {!latency}), so restoring the recorded seed reproduces the exact
    virtual-time schedule without any recorded per-copy data.

    @raise Invalid_argument if [crashes] or [partitions] is invalid (as
    {!profile}). *)
val scripted :
  ?crashes:crash list ->
  ?partitions:partition list ->
  ?stragglers:straggle list ->
  ?link_latency:int ->
  ?skew:int ->
  ?timing_seed:int ->
  (run:int -> round:int -> src:int -> dst:int -> fate list) ->
  t

(** [begin_run t] announces that a new [Engine.run] is starting; the
    engine calls it once per run. Scripted deciders use the resulting
    run index to section their schedule (rounds restart at 0 each
    run); for {!create}d adversaries it is a no-op. *)
val begin_run : t -> unit

val profile_of : t -> profile

(** [seed_of t] — the seed the timing hashes draw from ([timing_seed]
    for scripted adversaries); recorded in the [Timing] trace event so
    replay reconstructs the virtual-time schedule. *)
val seed_of : t -> int

(** [plan t ~round ~src ~dst] decides the fate of one message sent on link
    [src -> dst] at [round]: one {!fate} per copy to deliver. [[]] means
    the message is dropped; a two-element list means it was duplicated.
    The engine consults {!link_down} {e first} and never calls [plan]
    for a send on a severed link (so partition drops consume no
    randomness and replay deterministically). *)
val plan : t -> round:int -> src:int -> dst:int -> fate list

(** [crashed t ~round v] — is [v] down at [round]? *)
val crashed : t -> round:int -> int -> bool

(** [crash_stopped t ~round v] — is [v] down at [round] with no scheduled
    restart? The engine excludes such nodes from its liveness check so
    crash-stop schedules cannot livelock an execution. *)
val crash_stopped : t -> round:int -> int -> bool

(** [eventually_down t v] — does some crash-stop window take [v] down
    permanently at {e some} round? Connectivity oracles use this (with
    {!severed}) to compute the true surviving component. *)
val eventually_down : t -> int -> bool

(** [restarted t ~round v] — does [v] come back up at exactly [round]
    from an [Amnesia] window (and is not covered by another crash window
    at [round])? The engine resets such a node's state at the start of
    that round. Freeze windows never report here: their restart is
    state-preserving and needs no engine action. *)
val restarted : t -> round:int -> int -> bool

(** [amnesia_in_progress t ~round] — is some node inside an [Amnesia]
    window (down now, or restarting exactly this round)? The engine keeps
    the execution alive through such outages — up to and including the
    restart round — so the scheduled restart, and any recovery protocol
    it triggers, actually runs instead of the run quiescing with the
    node's fate unresolved. (A window whose [from_round] is never reached
    because the run ended earlier is a no-op.) *)
val amnesia_in_progress : t -> round:int -> bool

(** [link_down t ~round ~src ~dst] — is the (undirected) link [src - dst]
    severed by some active partition window at [round]? Checked by the
    engine before {!plan} for every send. *)
val link_down : t -> round:int -> src:int -> dst:int -> bool

(** [severed t ~src ~dst] — is the link [src - dst] cut by a partition
    that never heals? The building block of the centralized connectivity
    oracle ({!Detector.oracle}). *)
val severed : t -> src:int -> dst:int -> bool

(** {2 Timing adversary}

    Timing draws are pure hashes of the adversary's seed and the draw's
    coordinates — not pulls on the profile's RNG stream. They are
    order-independent (the asynchronous executor consults them in event
    order, which differs from the synchronous send order), they leave
    {!plan}'s stream untouched (a synchronous run of the same profile is
    byte-identical with or without timing dimensions), and they replay
    from the seed alone. Only {!Async_engine}/{!Synchronizer} consult
    them; the synchronous engine enforces lockstep by fiat. *)

(** [timing_active t] — does the profile have any timing dimension
    (stragglers, link latency, or clock skew)? {!Synchronizer} routes
    such runs through the asynchronous executor. *)
val timing_active : t -> bool

(** [straggle_factor t ~round v] — the virtual-time stretch of node
    [v]'s computation at pulse [round]: 1 = nominal, [>= 2] = slowdown
    ({!stall_factor} for a bounded stall), 0 = stalled forever. *)
val straggle_factor : t -> round:int -> int -> int

(** [stalled_forever t ~round v] — is [v] inside an unbounded stall
    window at [round]? The asynchronous executor treats such a node as
    crash-stopped: it neither steps nor sends, and copies addressed to
    it are dropped. *)
val stalled_forever : t -> round:int -> int -> bool

(** [eventually_stalled t v] — does some unbounded stall window
    eventually stop [v]? The asynchronous analogue of
    {!eventually_down}, consulted by {!Detector.oracle} when the run
    executes asynchronously. *)
val eventually_stalled : t -> int -> bool

(** [skew_of t v] — node [v]'s virtual-clock offset at pulse 0, drawn
    uniformly from [0..skew]. *)
val skew_of : t -> int -> int

(** [latency t ~round ~src ~dst ~leg] — extra virtual-time units the
    [leg]-th wire crossing of the [src -> dst] transmission at pulse
    [round] spends in flight, drawn uniformly from [0..link_latency].
    [leg] separates the draws for the data copy, its acknowledgement
    and the SAFE fan-out so they are independent. *)
val latency : t -> round:int -> src:int -> dst:int -> leg:int -> int

(** {2 CLI spec grammar}

    The [--crash]/[--partition] flag grammar lives here, next to the
    types, so parser and printer stay one tested inverse pair:
    [parse_* s] followed by [pp_*] yields a canonical spec string that
    parses back to the same value. Errors name the offending field and
    restate the grammar. *)

(** Prints [NODE:FROM[:UNTIL[:MODE]]]; [:MODE] only when amnesia,
    [UNTIL] omitted for crash-stop. *)
val pp_crash : Format.formatter -> crash -> unit

(** [parse_crash s] parses a [--crash] spec ([NODE:FROM[:UNTIL[:MODE]]],
    [MODE] in {freeze, amnesia}, default freeze; omitting [UNTIL] makes
    it a crash-stop). *)
val parse_crash : string -> (crash, string) result

(** Prints [CUT:FROM[:HEAL]] with [CUT] either [u-v[,u-v...]] or
    [@n[,n...]]. *)
val pp_partition : Format.formatter -> partition -> unit

(** [parse_partition s] parses a [--partition] spec: a cut (links
    [u-v[,u-v...]], or a vertex cut [@n[,n...]] severing every link of
    the listed nodes), down from round [FROM], healing at [HEAL] if
    given. *)
val parse_partition : string -> (partition, string) result

(** Prints [NODE:FROM[:UNTIL[:FACTOR]]]; [FACTOR] omitted for stalls,
    [UNTIL] left empty ([::FACTOR]) for permanent slowdowns, both
    omitted for permanent stalls. *)
val pp_straggle : Format.formatter -> straggle -> unit

(** [parse_straggle s] parses a [--straggle] spec
    ([NODE:FROM[:UNTIL[:FACTOR]]]): node [NODE] straggles from pulse
    [FROM] until [UNTIL] (forever when omitted or empty), stretched by
    [FACTOR] (omitted or [0] = stall, [>= 2] = slowdown). *)
val parse_straggle : string -> (straggle, string) result

val pp : Format.formatter -> t -> unit
