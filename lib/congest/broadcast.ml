module Digraph = Repro_graph.Digraph

module Word = struct
  type t = int

  let words _ = 1
end

module E = Synchronizer.Make (Word)
module T = Transport.Make (Word)

(* dispatch an execution to the raw engine or the reliable transport *)
let run_via ~reliable ?faults skeleton ~init ~step ~active ~metrics ~label =
  if reliable then T.run skeleton ?faults ~init ~step ~active ~metrics ~label ()
  else E.run skeleton ?faults ~init ~step ~active ~metrics ~label ()

type flood_state = { value : int option; pending : bool }

let flood ?faults ?(reliable = false) ?recovery skeleton ~root ~value ~metrics =
  let n = Digraph.n skeleton in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let step ~round:_ ~node st inbox =
    let st =
      match (st.value, inbox) with
      | None, (_, v) :: _ -> { value = Some v; pending = true }
      | _ -> st
    in
    if st.pending then
      ( { st with pending = false },
        match st.value with
        | Some v -> Array.to_list (Array.map (fun u -> (u, v)) neighbors.(node))
        | None -> [] )
    else (st, [])
  in
  let init v =
    if v = root then { value = Some value; pending = true }
    else { value = None; pending = false }
  in
  let active st = st.pending in
  let states =
    match recovery with
    | Some { Recovery.checkpoint_every } ->
        (* value-once flooding is trivially announcement-monotone *)
        let module R = Recovery.Make (struct
          module Msg = Word

          type st = flood_state

          let init = init
          let step = step
          let active = active
          let snapshot st = match st.value with Some v -> [| 1; v |] | None -> [| 0 |]

          let restore ~node:_ snap =
            if snap.(0) = 1 then { value = Some snap.(1); pending = true }
            else { value = None; pending = false }

          let resync st = st.value
        end) in
        R.run skeleton ?faults ~checkpoint_every ~metrics ~label:"flood" ()
    | None -> run_via ~reliable ?faults skeleton ~init ~step ~active ~metrics ~label:"flood"
  in
  Array.map (fun st -> match st.value with Some v -> v | None -> Digraph.inf) states

type cc_state = { acc : int; waiting : int; sent : bool }

let convergecast ?faults ?(reliable = false) tree ~op ~values ~metrics =
  let n = Array.length tree.Bfs_tree.parent in
  let child_count = Array.make n 0 in
  Array.iteri
    (fun u p -> if p >= 0 && u <> p then child_count.(p) <- child_count.(p) + 1)
    tree.Bfs_tree.parent;
  (* The skeleton here is the tree itself: build it as a graph. *)
  let tree_edges = ref [] in
  Array.iteri
    (fun u p -> if p >= 0 && u <> p then tree_edges := (u, p, 1) :: !tree_edges)
    tree.Bfs_tree.parent;
  let tree_graph = Digraph.create ~directed:false n !tree_edges in
  let step ~round:_ ~node st inbox =
    let st =
      List.fold_left
        (fun st (_, v) -> { st with acc = op st.acc v; waiting = st.waiting - 1 })
        st inbox
    in
    if st.waiting = 0 && not st.sent then
      (* a node with no parent (possible when the tree was built over
         faulty links) has nowhere to report; it keeps its local result *)
      if node = tree.Bfs_tree.root || tree.Bfs_tree.parent.(node) < 0 then
        ({ st with sent = true }, [])
      else ({ st with sent = true }, [ (tree.Bfs_tree.parent.(node), st.acc) ])
    else (st, [])
  in
  let states =
    run_via ~reliable ?faults tree_graph
      ~init:(fun v -> { acc = values.(v); waiting = child_count.(v); sent = false })
      ~step
      ~active:(fun st -> st.waiting = 0 && not st.sent)
      ~metrics ~label:"convergecast"
  in
  states.(tree.Bfs_tree.root).acc

type stream_state = { queue : int list; got : int list }

let stream_down ?faults ?(reliable = false) tree ~items ~metrics =
  let n = Array.length tree.Bfs_tree.parent in
  let children = Array.make n [] in
  Array.iteri
    (fun u p -> if p >= 0 && u <> p then children.(p) <- u :: children.(p))
    tree.Bfs_tree.parent;
  let tree_edges = ref [] in
  Array.iteri
    (fun u p -> if p >= 0 && u <> p then tree_edges := (u, p, 1) :: !tree_edges)
    tree.Bfs_tree.parent;
  let tree_graph = Digraph.create ~directed:false n !tree_edges in
  let step ~round:_ ~node st inbox =
    let st =
      List.fold_left (fun st (_, v) -> { queue = st.queue @ [ v ]; got = v :: st.got }) st inbox
    in
    match st.queue with
    | [] -> (st, [])
    | item :: rest ->
        ({ st with queue = rest }, List.map (fun c -> (c, item)) children.(node))
  in
  let states =
    run_via ~reliable ?faults tree_graph
      ~init:(fun v ->
        if v = tree.Bfs_tree.root then { queue = items; got = List.rev items }
        else { queue = []; got = [] })
      ~step
      ~active:(fun st -> st.queue <> [])
      ~metrics ~label:"stream"
  in
  Array.map (fun st -> List.rev st.got) states
