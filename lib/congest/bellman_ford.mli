(** Distributed Bellman-Ford SSSP — the classic Θ(n)-round CONGEST
    baseline our distance-labeling algorithm is compared against (E2b).

    Works on weighted directed graphs; messages travel over the skeleton
    in both directions, relaxation respects edge orientation. *)

(** [run g ~source ~metrics] returns the exact distance array from
    [source]. Rounds charged under ["bellman-ford"].

    [faults] injects link/node faults ({!Fault}); [reliable] (default
    false) runs over the acknowledged {!Transport}, restoring exact
    distances under any drop probability < 1; [recovery] additionally
    runs under the checkpoint/recovery layer ({!Recovery}, implies the
    transport), keeping distances exact across crash-amnesia restarts. *)
val run :
  ?faults:Fault.t ->
  ?reliable:bool ->
  ?recovery:Recovery.config ->
  Repro_graph.Digraph.t ->
  source:int ->
  metrics:Metrics.t ->
  int array

(** [run_certified g ~source ~metrics] runs the relaxation over the
    reliable transport under a heartbeat failure {!Detector} and also
    returns the detector's verdict: [Complete] when the distances are
    exact everywhere, [Partial] with the certified reachable component
    on which they are exact (everything else stays at inf) — the
    degraded-mode contract under permanent partitions or crash-stops.
    [period]/[timeout]/[max_retries] tune the detector and the
    transport retry budget ({!Detector.Make.run}). *)
val run_certified :
  ?faults:Fault.t ->
  ?jitter_seed:int ->
  ?period:int ->
  ?timeout:int ->
  ?max_retries:int ->
  Repro_graph.Digraph.t ->
  source:int ->
  metrics:Metrics.t ->
  int array * Detector.verdict
