module Digraph = Repro_graph.Digraph

let default_max_words = 4

exception
  Round_limit_exceeded of { label : string; rounds : int; active_nodes : int }

let () =
  Printexc.register_printer (function
    | Round_limit_exceeded { label; rounds; active_nodes } ->
        Some
          (Printf.sprintf
             "Engine.Round_limit_exceeded(%s): %d rounds elapsed, %d nodes still active"
             label rounds active_nodes)
    | _ -> None)

module type MSG = sig
  type t

  val words : t -> int
end

module Make (M : MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  let run skeleton ~init ~step ~active ?faults ?(max_rounds = 10_000_000)
      ?(max_words = default_max_words) ~metrics ~label () =
    if Digraph.directed skeleton then
      invalid_arg "Engine.run: communication network must be undirected";
    let n = Digraph.n skeleton in
    let neighbor_sets =
      Array.init n (fun v ->
          let tbl = Hashtbl.create 8 in
          Array.iter (fun u -> Hashtbl.replace tbl u ()) (Digraph.neighbors skeleton v);
          tbl)
    in
    let states = Array.init n init in
    let inboxes = Array.make n [] in
    let round = ref 0 in
    let in_flight = ref false in
    (* copies held back by a delay fault: (deliver_round, dst, src, msg) *)
    let delayed = ref [] in
    let crashed v = match faults with None -> false | Some f -> Fault.crashed f ~round:!round v in
    let live_active v =
      active states.(v)
      && match faults with
         | None -> true
         | Some f -> not (Fault.crash_stopped f ~round:!round v)
    in
    let count_active () =
      let c = ref 0 in
      for v = 0 to n - 1 do
        if live_active v then incr c
      done;
      !c
    in
    let continue () =
      !in_flight || !delayed <> []
      || (let v = ref 0 and found = ref false in
          while (not !found) && !v < n do
            if live_active !v then found := true;
            incr v
          done;
          !found)
    in
    while continue () do
      if !round >= max_rounds then
        raise
          (Round_limit_exceeded
             { label; rounds = !round; active_nodes = count_active () });
      let next_inboxes = Array.make n [] in
      let sent_this_round = ref 0 in
      (* deliver a copy into the round-[r] inboxes, dropping it if the
         receiver is down at delivery time *)
      let deliver ~deliver_round dst src msg =
        let receiver_down =
          match faults with
          | None -> false
          | Some f -> Fault.crashed f ~round:deliver_round dst
        in
        if receiver_down then Metrics.add_dropped metrics 1
        else next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst)
      in
      for v = 0 to n - 1 do
        if not (crashed v) then begin
          (* contract: inboxes are presented sorted by sender id, so
             algorithms cannot depend on delivery-schedule accidents *)
          let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(v) in
          let st, outbox = step ~round:!round ~node:v states.(v) inbox in
          states.(v) <- st;
          let sent_to = Hashtbl.create 4 in
          List.iter
            (fun (u, msg) ->
              if not (Hashtbl.mem neighbor_sets.(v) u) then
                invalid_arg
                  (Printf.sprintf "Engine.run(%s): node %d sent to non-neighbor %d" label v u);
              if Hashtbl.mem sent_to u then
                invalid_arg
                  (Printf.sprintf
                     "Engine.run(%s): node %d sent two messages to %d in one round" label v u);
              Hashtbl.add sent_to u ();
              let w = M.words msg in
              if w < 1 || w > max_words then
                invalid_arg
                  (Printf.sprintf "Engine.run(%s): message of %d words (cap %d)" label w
                     max_words);
              incr sent_this_round;
              match faults with
              | None -> deliver ~deliver_round:(!round + 1) u v msg
              | Some f -> (
                  match Fault.plan f ~round:!round ~src:v ~dst:u with
                  | [] -> Metrics.add_dropped metrics 1
                  | delays ->
                      if List.length delays > 1 then
                        Metrics.add_duplicated metrics (List.length delays - 1);
                      List.iter
                        (fun extra ->
                          if extra = 0 then deliver ~deliver_round:(!round + 1) u v msg
                          else delayed := (!round + 1 + extra, u, v, msg) :: !delayed)
                        delays))
            outbox
        end
      done;
      (* copies whose delay matured this round join the next inboxes *)
      let matured, still_held =
        List.partition (fun (dr, _, _, _) -> dr = !round + 1) !delayed
      in
      delayed := still_held;
      List.iter (fun (dr, dst, src, msg) -> deliver ~deliver_round:dr dst src msg) matured;
      Array.blit next_inboxes 0 inboxes 0 n;
      in_flight := Array.exists (fun ib -> ib <> []) inboxes;
      Metrics.add_messages metrics !sent_this_round;
      incr round;
      Metrics.add metrics ~label 1
    done;
    states
end
