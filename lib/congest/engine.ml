module Digraph = Repro_graph.Digraph

let default_max_words = 4
let audit_enabled = ref false

(* Process-wide trace sink (same install pattern as [audit_enabled]):
   the engine and the layers above it (transport, recovery) emit
   through whatever sink is installed here, and never reference a
   concrete sink implementation. Emit sites guard on [.enabled] before
   constructing an event, so with the default null sink tracing
   allocates nothing and costs one branch per site. *)
let trace_sink = ref Repro_obs.Sink.null

exception
  Round_limit_exceeded of { label : string; rounds : int; active_nodes : int }

exception Audit_violation of { label : string; round : int; detail : string }

let () =
  Printexc.register_printer (function
    | Round_limit_exceeded { label; rounds; active_nodes } ->
        Some
          (Printf.sprintf
             "Engine.Round_limit_exceeded(%s): %d rounds elapsed, %d nodes still active"
             label rounds active_nodes)
    | Audit_violation { label; round; detail } ->
        Some
          (Printf.sprintf "Engine.Audit_violation(%s): round %d: %s" label round detail)
    | _ -> None)

module type MSG = sig
  type t

  val words : t -> int
end

module Make (M : MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  let run skeleton ~init ~step ~active ?faults ?on_restart ?corrupt ?audit
      ?(max_rounds = 10_000_000) ?(max_words = default_max_words) ~metrics ~label () =
    if Digraph.directed skeleton then
      invalid_arg "Engine.run: communication network must be undirected";
    let audit = match audit with Some b -> b | None -> !audit_enabled in
    let n = Digraph.n skeleton in
    let neighbor_sets =
      Array.init n (fun v ->
          let tbl = Hashtbl.create 8 in
          Array.iter (fun u -> Hashtbl.replace tbl u ()) (Digraph.neighbors skeleton v);
          tbl)
    in
    let states = Array.init n init in
    (* double-buffered inboxes: both arrays live for the whole run and
       swap roles each round, so the loop never allocates an array *)
    let inboxes = ref (Array.make n []) in
    let next_inboxes = ref (Array.make n []) in
    let round = ref 0 in
    (* crash-amnesia restart: the node boots with no volatile memory, so
       its state is rebuilt from scratch — by default via [init], or via
       the [on_restart] hook so layered protocols (transport epochs,
       checkpoint recovery) can reconstruct themselves instead *)
    let restart_state =
      match on_restart with
      | Some f -> f
      | None -> fun ~round:_ ~node -> init node
    in
    let in_flight = ref false in
    (* copies held back by a delay fault: (deliver_round, dst, src, msg,
       words measured at send, send_round, corrupted in flight) *)
    let delayed = ref [] in
    let sink = !trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let emit e = Repro_obs.Sink.emit sink e in
    (match faults with Some f -> Fault.begin_run f | None -> ());
    if tracing then begin
      emit (Repro_obs.Event.Run_start { label; faulty = Option.is_some faults });
      (* static crash/partition windows up front so replay can rebuild
         the profile *)
      match faults with
      | None -> ()
      | Some f ->
          List.iter
            (fun (c : Fault.crash) ->
              emit
                (Repro_obs.Event.Crash_window
                   {
                     node = c.node;
                     from_round = c.from_round;
                     until_round = c.until_round;
                     amnesia = c.mode = Fault.Amnesia;
                   }))
            (Fault.profile_of f).crashes;
          List.iter
            (fun (p : Fault.partition) ->
              let links, nodes =
                match p.cut with
                | Fault.Links es -> (es, [])
                | Fault.Around vs -> ([], vs)
              in
              emit
                (Repro_obs.Event.Partition_window
                   { links; nodes; from_round = p.from_round; heal_round = p.heal_round }))
            (Fault.profile_of f).partitions
    end;
    (* last observed up/down status per node, for crash/restart
       transition events (allocated only when tracing) *)
    let prev_down = Array.make (if tracing then n else 0) false in
    let crashed v = match faults with None -> false | Some f -> Fault.crashed f ~round:!round v in
    let link_down src dst =
      match faults with
      | None -> false
      | Some f -> Fault.link_down f ~round:!round ~src ~dst
    in
    (* per-link up/down transitions for Partition/Heal trace events;
       only maintained when tracing a profile that has partitions *)
    let partitioned =
      match faults with
      | Some f -> (Fault.profile_of f).partitions <> []
      | None -> false
    in
    let skeleton_edges =
      if tracing && partitioned then Digraph.edges skeleton else [||]
    in
    let prev_link_down = Array.make (Array.length skeleton_edges) false in
    let emit_link_transitions () =
      Array.iteri
        (fun i (e : Digraph.edge) ->
          let down = link_down e.Digraph.src e.Digraph.dst in
          if down <> prev_link_down.(i) then
            emit
              (if down then
                 Repro_obs.Event.Partition
                   { round = !round; src = e.Digraph.src; dst = e.Digraph.dst }
               else
                 Repro_obs.Event.Heal
                   { round = !round; src = e.Digraph.src; dst = e.Digraph.dst });
          prev_link_down.(i) <- down)
        skeleton_edges
    in
    let live_active v =
      active states.(v)
      && match faults with
         | None -> true
         | Some f -> not (Fault.crash_stopped f ~round:!round v)
    in
    (* recursive scans instead of ref-counted loops: no per-call ref
       cells, so the quiescence check itself is allocation-free *)
    let rec count_active_from v acc =
      if v >= n then acc else count_active_from (v + 1) (if live_active v then acc + 1 else acc)
    in
    let count_active () = count_active_from 0 0 in
    let rec any_live_active v = v < n && (live_active v || any_live_active (v + 1)) in
    let continue () =
      !in_flight || !delayed <> []
      (* an in-progress amnesia outage keeps the run alive so the
         scheduled restart (and any recovery it triggers) executes
         instead of quiescing with the node's fate unresolved *)
      || (match faults with
         | Some f -> Fault.amnesia_in_progress f ~round:!round
         | None -> false)
      || any_live_active 0
    in
    (* ---- audit bookkeeping (only consulted when [audit] is true) ----
       The auditor keeps its own cumulative tallies, incremented at the
       model-decision sites, and cross-checks them each round against the
       amounts charged to [metrics] and against the number of copies still
       in flight. Drift between the two is an accounting bug. *)
    let a_sent = ref 0 (* accepted sends *)
    and a_words = ref 0 (* words across accepted sends *)
    and a_delivered = ref 0 (* copies placed in an inbox *)
    and a_dropped = ref 0 (* copies destroyed (link loss or dead receiver) *)
    and a_duplicated = ref 0 (* extra copies injected by the adversary *) in
    let base_messages = Metrics.messages metrics
    and base_words = Metrics.words metrics
    and base_delivered = Metrics.delivered metrics
    and base_dropped = Metrics.dropped metrics
    and base_duplicated = Metrics.duplicated metrics in
    let violation detail = raise (Audit_violation { label; round = !round; detail }) in
    let audit_counter name expected actual =
      if expected <> actual then
        violation
          (Printf.sprintf
             "metrics counter '%s' drifted: engine accounted %d, metrics charged %d \
              (did a step function charge traffic counters mid-run?)"
             name expected actual)
    in
    let audit_round_end () =
      (* conservation: every accepted copy is in an inbox, destroyed, or
         still held by a delay fault *)
      let in_flight_delayed = List.length !delayed in
      if !a_sent + !a_duplicated <> !a_delivered + !a_dropped + in_flight_delayed then
        violation
          (Printf.sprintf
             "copy conservation broken: sent=%d + duplicated=%d <> delivered=%d + dropped=%d \
              + in-flight=%d"
             !a_sent !a_duplicated !a_delivered !a_dropped in_flight_delayed);
      audit_counter "messages" !a_sent (Metrics.messages metrics - base_messages);
      audit_counter "words" !a_words (Metrics.words metrics - base_words);
      audit_counter "delivered" !a_delivered (Metrics.delivered metrics - base_delivered);
      audit_counter "dropped" !a_dropped (Metrics.dropped metrics - base_dropped);
      audit_counter "duplicated" !a_duplicated (Metrics.duplicated metrics - base_duplicated)
    in
    let audit_inbox_sorted v inbox =
      let rec check = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if a > b then
              violation
                (Printf.sprintf "inbox of node %d not sorted by sender: %d before %d" v a b);
            check rest
        | _ -> ()
      in
      check inbox
    in
    (* round-scoped mutable state, hoisted out of the loop so each
       round reuses the same cells/table instead of reallocating *)
    let sent_this_round = ref 0 in
    let words_this_round = ref 0 in
    let delivered_this_round = ref 0 in
    let sent_to = Hashtbl.create 8 in
    (* deliver a copy into the round-[r] inboxes, dropping it if the
       receiver is down at delivery time. [words] is the size measured
       when the copy was accepted; in audit mode the copy is re-measured
       on delivery so a sender mutating a message after handing it to the
       network is caught. *)
    let deliver ~send_round ~deliver_round ~words ?(corrupted = false) dst src msg =
      let receiver_down =
        match faults with
        | None -> false
        | Some f -> Fault.crashed f ~round:deliver_round dst
      in
      (* a corrupted copy is garbled on delivery: the layer above maps
         it through its [corrupt] transform (and must preserve the word
         count — audit re-measures below); with no transform installed
         the copy is undecodable garbage and is discarded like a
         frame-level CRC failure *)
      let msg, garbled_drop =
        if not corrupted then (msg, false)
        else match corrupt with Some f -> (f msg, false) | None -> (msg, true)
      in
      if audit then begin
        let now = M.words msg in
        if now <> words then
          violation
            (Printf.sprintf
               "message %d -> %d measured %d words at send but %d words at delivery \
                (mutated in flight%s?)"
               src dst words now
               (if corrupted then ", or size-changing corrupt transform" else ""))
      end;
      if receiver_down then begin
        Metrics.add_dropped metrics 1;
        if audit then incr a_dropped;
        if tracing then
          emit
            (Repro_obs.Event.Drop
               { send_round; round = deliver_round; src; dst; words; reason = Receiver_down })
      end
      else if garbled_drop then begin
        Metrics.add_dropped metrics 1;
        if audit then incr a_dropped;
        if tracing then
          emit
            (Repro_obs.Event.Drop
               { send_round; round = deliver_round; src; dst; words; reason = Garbled })
      end
      else begin
        !next_inboxes.(dst) <- (src, msg) :: !next_inboxes.(dst);
        incr delivered_this_round;
        if audit then incr a_delivered;
        if tracing then
          emit (Repro_obs.Event.Deliver { send_round; round = deliver_round; src; dst; words })
      end
    in
    while continue () do
      if !round >= max_rounds then
        raise
          (Round_limit_exceeded
             { label; rounds = !round; active_nodes = count_active () });
      if tracing then begin
        emit (Repro_obs.Event.Round_start { round = !round });
        match faults with
        | None -> ()
        | Some f ->
            for v = 0 to n - 1 do
              let down = Fault.crashed f ~round:!round v in
              if down <> prev_down.(v) then
                emit
                  (if down then Repro_obs.Event.Crash { round = !round; node = v }
                   else Repro_obs.Event.Restart { round = !round; node = v });
              prev_down.(v) <- down
            done;
            emit_link_transitions ()
      end;
      (match faults with
      | Some f ->
          for v = 0 to n - 1 do
            if Fault.restarted f ~round:!round v then
              states.(v) <- restart_state ~round:!round ~node:v
          done
      | None -> ());
      sent_this_round := 0;
      words_this_round := 0;
      delivered_this_round := 0;
      for v = 0 to n - 1 do
        if not (crashed v) then begin
          (* contract: inboxes are presented sorted by sender id, so
             algorithms cannot depend on delivery-schedule accidents *)
          let inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) !inboxes.(v) in
          if audit then audit_inbox_sorted v inbox;
          let st, outbox = step ~round:!round ~node:v states.(v) inbox in
          states.(v) <- st;
          Hashtbl.clear sent_to;
          List.iter
            (fun (u, msg) ->
              if not (Hashtbl.mem neighbor_sets.(v) u) then
                invalid_arg
                  (Printf.sprintf "Engine.run(%s): round %d: node %d sent to non-neighbor %d"
                     label !round v u);
              if Hashtbl.mem sent_to u then
                invalid_arg
                  (Printf.sprintf
                     "Engine.run(%s): round %d: node %d sent two messages to %d in one round"
                     label !round v u);
              Hashtbl.add sent_to u ();
              let w = M.words msg in
              if audit then begin
                let w' = M.words msg in
                if w' <> w then
                  violation
                    (Printf.sprintf
                       "M.words unstable on message %d -> %d: measured %d then %d" v u w w')
              end;
              if w < 1 || w > max_words then
                invalid_arg
                  (Printf.sprintf
                     "Engine.run(%s): round %d: node %d -> %d: message of %d words (cap %d)"
                     label !round v u w max_words);
              incr sent_this_round;
              words_this_round := !words_this_round + w;
              if audit then begin
                incr a_sent;
                a_words := !a_words + w
              end;
              if tracing then
                emit (Repro_obs.Event.Send { round = !round; src = v; dst = u; words = w });
              match faults with
              | None -> deliver ~send_round:!round ~deliver_round:(!round + 1) ~words:w u v msg
              | Some _ when link_down v u ->
                  (* deterministic partition drop, decided before [plan]
                     so severed sends consume no adversary randomness *)
                  Metrics.add_dropped metrics 1;
                  if audit then incr a_dropped;
                  if tracing then
                    emit
                      (Repro_obs.Event.Drop
                         {
                           send_round = !round;
                           round = !round;
                           src = v;
                           dst = u;
                           words = w;
                           reason = Severed;
                         })
              | Some f -> (
                  match Fault.plan f ~round:!round ~src:v ~dst:u with
                  | [] ->
                      Metrics.add_dropped metrics 1;
                      if audit then incr a_dropped;
                      if tracing then
                        emit
                          (Repro_obs.Event.Drop
                             {
                               send_round = !round;
                               round = !round;
                               src = v;
                               dst = u;
                               words = w;
                               reason = Link;
                             })
                  | fates ->
                      if List.length fates > 1 then begin
                        Metrics.add_duplicated metrics (List.length fates - 1);
                        if audit then a_duplicated := !a_duplicated + List.length fates - 1;
                        if tracing then
                          emit
                            (Repro_obs.Event.Duplicate
                               { round = !round; src = v; dst = u; copies = List.length fates })
                      end;
                      List.iter
                        (fun { Fault.extra; corrupt = corrupted } ->
                          let deliver_round = !round + 1 + extra in
                          if corrupted then begin
                            Metrics.add_corrupted metrics 1;
                            if tracing then
                              emit
                                (Repro_obs.Event.Corrupt
                                   { send_round = !round; deliver_round; src = v; dst = u })
                          end;
                          if extra = 0 then
                            deliver ~send_round:!round ~deliver_round ~words:w ~corrupted u v
                              msg
                          else begin
                            delayed :=
                              (deliver_round, u, v, msg, w, !round, corrupted) :: !delayed;
                            if tracing then
                              emit
                                (Repro_obs.Event.Delay
                                   { round = !round; src = v; dst = u; deliver_round })
                          end)
                        fates))
            outbox
        end
      done;
      (* copies whose delay matured this round join the next inboxes *)
      let matured, still_held =
        List.partition (fun (dr, _, _, _, _, _, _) -> dr = !round + 1) !delayed
      in
      delayed := still_held;
      List.iter
        (fun (dr, dst, src, msg, w, sr, corrupted) ->
          deliver ~send_round:sr ~deliver_round:dr ~words:w ~corrupted dst src msg)
        matured;
      (* swap the buffers: this round's deliveries become next round's
         inboxes, and the consumed array is wiped for reuse *)
      let filled = !next_inboxes in
      next_inboxes := !inboxes;
      inboxes := filled;
      Array.fill !next_inboxes 0 n [];
      in_flight := Array.exists (fun ib -> ib <> []) filled;
      Metrics.add_messages metrics !sent_this_round;
      Metrics.add_words metrics !words_this_round;
      Metrics.add_delivered metrics !delivered_this_round;
      if audit then audit_round_end ();
      if tracing then emit (Repro_obs.Event.Round_end { round = !round });
      incr round;
      Metrics.add metrics ~label 1
    done;
    states
  [@@hot] [@@parallel_region] [@@charge_site]
end
