module Digraph = Repro_graph.Digraph

let default_max_words = 4

module type MSG = sig
  type t

  val words : t -> int
end

module Make (M : MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  let run skeleton ~init ~step ~active ?(max_rounds = 10_000_000) ?(max_words = default_max_words)
      ~metrics ~label () =
    if Digraph.directed skeleton then
      invalid_arg "Engine.run: communication network must be undirected";
    let n = Digraph.n skeleton in
    let neighbor_sets =
      Array.init n (fun v ->
          let tbl = Hashtbl.create 8 in
          Array.iter (fun u -> Hashtbl.replace tbl u ()) (Digraph.neighbors skeleton v);
          tbl)
    in
    let states = Array.init n init in
    let inboxes = Array.make n [] in
    let round = ref 0 in
    let in_flight = ref false in
    let continue () = !in_flight || Array.exists active states in
    while continue () do
      if !round >= max_rounds then
        failwith (Printf.sprintf "Engine.run(%s): exceeded %d rounds" label max_rounds);
      let next_inboxes = Array.make n [] in
      let sent_this_round = ref 0 in
      for v = 0 to n - 1 do
        let inbox = inboxes.(v) in
        let st, outbox = step ~round:!round ~node:v states.(v) inbox in
        states.(v) <- st;
        let sent_to = Hashtbl.create 4 in
        List.iter
          (fun (u, msg) ->
            if not (Hashtbl.mem neighbor_sets.(v) u) then
              invalid_arg
                (Printf.sprintf "Engine.run(%s): node %d sent to non-neighbor %d" label v u);
            if Hashtbl.mem sent_to u then
              invalid_arg
                (Printf.sprintf
                   "Engine.run(%s): node %d sent two messages to %d in one round" label v u);
            Hashtbl.add sent_to u ();
            let w = M.words msg in
            if w < 1 || w > max_words then
              invalid_arg
                (Printf.sprintf "Engine.run(%s): message of %d words (cap %d)" label w max_words);
            incr sent_this_round;
            next_inboxes.(u) <- (v, msg) :: next_inboxes.(u))
          outbox
      done;
      Array.blit next_inboxes 0 inboxes 0 n;
      in_flight := !sent_this_round > 0;
      Metrics.add_messages metrics !sent_this_round;
      incr round;
      Metrics.add metrics ~label 1
    done;
    states
end
