(** α-synchronizer over the asynchronous executor.

    [Synchronizer.Make (M)] exposes the exact [run] interface of
    [Engine.Make (M)], and dispatches: a run whose fault profile has a
    timing dimension ({!Fault.timing_active}) — or any run while
    {!Async_engine.forced} is set — executes on the asynchronous
    virtual-time substrate; every other run goes straight to the
    synchronous engine, byte-for-byte unchanged. Algorithms therefore
    run unchanged over either executor through the same
    [~init]/[~step] interface.

    The asynchronous path implements Awerbuch's α-synchronizer:

    - a {e pulse} coincides with one logical engine round. Node [v]
      begins pulse 0 at its clock-skew offset; its pulse-[p]
      computation costs [straggle_factor] virtual-time units.
    - every copy [v] sends spends [1 + latency] units per wire
      crossing; when the acknowledgement of every pulse-[p] copy is
      back (drops are sender-detectable — the NACK travels the ack's
      schedule), [v] is {e safe} and fans SAFE to its live neighbors.
    - [v] starts pulse [p + 1] at the maximum of: its own step end and
      SAFE point, the physical arrival of every copy addressed into
      pulse [p + 1], and the arrival of every live uncut neighbor's
      pulse-[p] SAFE. When {!Async_engine.deadline} pacing is on, a
      neighbor whose terms alone hold that gate open past everything
      else [v] is waiting for (by more than the backed-off allowance)
      is struck, and after [max_strikes] consecutive strikes cut; its
      copies then drop with reason [Straggler], starving the heartbeat
      {!Detector} into suspecting it. The criterion is relative, so
      lag inherited from a straggler deeper in the graph cancels out
      instead of cascading cuts ring by ring.

    Determinism and exactness (DESIGN.md Section 3g): user steps run
    in virtual-time order off a deterministic event queue, but the
    adversary's fates are drawn at pulse commit in the engine's
    canonical order, and timing draws are pure seed hashes — so
    outputs and the core traffic metrics are byte-identical to the
    synchronous engine whenever the timing dimensions preserve
    semantics (no unbounded stalls, deadline pacing off). Synchronizer
    overhead is charged to the separate [pulses] / [safe_messages] /
    [straggles] / [virtual_time] counters. A node inside an unbounded
    stall window is treated as crash-stopped. *)

module Make (M : Engine.MSG) : sig
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (** Same contract as [Engine.Make(M).run] — see {!Engine.Make}. The
      asynchronous path enforces the identical bandwidth, audit and
      round-limit semantics and raises the engine's exceptions. *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:(round:int -> node:int -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?on_restart:(round:int -> node:int -> 'st) ->
    ?corrupt:(M.t -> M.t) ->
    ?audit:bool ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st array
end
