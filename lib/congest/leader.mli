(** Leader election by min-id flooding. Takes O(D) rounds. *)

(** [elect skeleton ~metrics] returns the elected leader (the minimum
    vertex id); every simulated node learns it. Rounds charged under
    ["leader"]. [faults] injects link/node faults; [reliable] runs over
    the acknowledged {!Transport}. *)
val elect :
  ?faults:Fault.t -> ?reliable:bool -> Repro_graph.Digraph.t -> metrics:Metrics.t -> int
