(** Leader election by min-id flooding. Takes O(D) rounds. *)

(** [elect skeleton ~metrics] returns the elected leader (the minimum
    vertex id); every simulated node learns it. Rounds charged under
    ["leader"]. *)
val elect : Repro_graph.Digraph.t -> metrics:Metrics.t -> int
