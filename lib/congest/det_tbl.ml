(* Deterministic hash-table iteration. Hashtbl's iteration order
   depends on insertion history and the hash function, so any
   order-sensitive consumer of [iter]/[fold] is a reproducibility bug
   (the [hashtbl-order] lint rule). This module is the one audited spot
   allowed to touch raw iteration: everything order-sensitive goes
   through a sort on the caller's key comparison, and the only
   order-insensitive escape hatch is a boolean predicate. *)

exception Found

let exists p tbl =
  (* order-insensitive by construction: a boolean OR over bindings
     [lint: hashtbl-order] *)
  try
    Hashtbl.iter (fun k v -> if p k v then raise Found) tbl;
    false
  with Found -> true

let bindings tbl ~compare:cmp =
  (* the fold order is irrelevant: sorted before returning
     [lint: hashtbl-order] *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, _) (kb, _) -> cmp ka kb)

let iter_sorted tbl ~compare:cmp f = List.iter (fun (k, v) -> f k v) (bindings tbl ~compare:cmp)

let fold_sorted tbl ~compare:cmp f init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings tbl ~compare:cmp)
