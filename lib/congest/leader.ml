module Digraph = Repro_graph.Digraph

type state = { best : int; pending : bool }

module Word = struct
  type t = int

  let words _ = 1
end

module E = Synchronizer.Make (Word)
module T = Transport.Make (Word)

let elect ?faults ?(reliable = false) skeleton ~metrics =
  let n = Digraph.n skeleton in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let step ~round:_ ~node st inbox =
    let st =
      List.fold_left
        (fun st (_, cand) -> if cand < st.best then { best = cand; pending = true } else st)
        st inbox
    in
    if st.pending then
      ( { st with pending = false },
        Array.to_list (Array.map (fun u -> (u, st.best)) neighbors.(node)) )
    else (st, [])
  in
  let init v = { best = v; pending = true } in
  let active st = st.pending in
  let states =
    if reliable then T.run skeleton ?faults ~init ~step ~active ~metrics ~label:"leader" ()
    else E.run skeleton ?faults ~init ~step ~active ~metrics ~label:"leader" ()
  in
  let leader = states.(0).best in
  Array.iter (fun st -> assert (st.best = leader)) states;
  leader
