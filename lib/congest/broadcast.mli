(** Flooding broadcast, tree convergecast, and pipelined streaming
    (message-level building blocks for the subgraph operations of
    Appendix A of the paper). *)

(** Each primitive optionally takes a fault adversary ([faults], {!Fault})
    and a [reliable] switch (default false) that reruns the identical step
    function over the acknowledged {!Transport} instead of raw links. *)

(** [flood skeleton ~root ~value ~metrics] floods a one-word [value];
    returns what every node learned. O(D) rounds, label ["flood"].
    [recovery] runs it under the checkpoint/recovery layer ({!Recovery},
    implies the transport), so the flood completes exactly even across
    crash-amnesia restarts. *)
val flood :
  ?faults:Fault.t ->
  ?reliable:bool ->
  ?recovery:Recovery.config ->
  Repro_graph.Digraph.t ->
  root:int ->
  value:int ->
  metrics:Metrics.t ->
  int array

(** [convergecast tree ~op ~values ~metrics] aggregates one word per node
    up the BFS tree with associative [op]; returns the root's aggregate.
    O(depth) rounds, label ["convergecast"]. *)
val convergecast :
  ?faults:Fault.t ->
  ?reliable:bool ->
  Bfs_tree.tree ->
  op:(int -> int -> int) ->
  values:int array ->
  metrics:Metrics.t ->
  int

(** [stream_down tree ~items ~metrics] pipelines a list of one-word items
    from the root to every node (depth + |items| rounds, label
    ["stream"]); returns the items received per node (all equal). Per-link
    FIFO of {!Transport} preserves item order under faults. *)
val stream_down :
  ?faults:Fault.t ->
  ?reliable:bool ->
  Bfs_tree.tree ->
  items:int list ->
  metrics:Metrics.t ->
  int list array
