(** Flooding broadcast, tree convergecast, and pipelined streaming
    (message-level building blocks for the subgraph operations of
    Appendix A of the paper). *)

(** [flood skeleton ~root ~value ~metrics] floods a one-word [value];
    returns what every node learned. O(D) rounds, label ["flood"]. *)
val flood :
  Repro_graph.Digraph.t -> root:int -> value:int -> metrics:Metrics.t -> int array

(** [convergecast tree ~op ~values ~metrics] aggregates one word per node
    up the BFS tree with associative [op]; returns the root's aggregate.
    O(depth) rounds, label ["convergecast"]. *)
val convergecast :
  Bfs_tree.tree -> op:(int -> int -> int) -> values:int array -> metrics:Metrics.t -> int

(** [stream_down tree ~items ~metrics] pipelines a list of one-word items
    from the root to every node (depth + |items| rounds, label
    ["stream"]); returns the items received per node (all equal). *)
val stream_down :
  Bfs_tree.tree -> items:int list -> metrics:Metrics.t -> int list array
