(** Communication-cost accounting for simulated CONGEST executions.

    Every algorithm in this repository reports its cost through a
    [Metrics.t]: total rounds, total messages, and a labeled breakdown so
    experiments can attribute rounds to phases (e.g. ["sep/mvc"],
    ["dl/broadcast-Hx"]). Message-level simulations add measured values;
    primitive-accounted reductions (DESIGN.md Section 3) add charges
    computed from measured dilation/congestion. *)

type t

val create : unit -> t

(** [add t ~label rounds] charges [rounds] communication rounds. *)
val add : t -> label:string -> int -> unit

(** [add_messages t k] records [k] point-to-point messages. *)
val add_messages : t -> int -> unit

(** [add_words t k] records [k] machine words of accepted message payload
    (charged by the engine per send, after the bandwidth check). *)
val add_words : t -> int -> unit

(** [add_delivered t k] records [k] message copies actually placed in an
    inbox. Without faults [delivered = messages]; under a fault adversary
    [messages + duplicated = delivered + dropped] once no copy is in
    flight — the conservation law the engine's audit mode enforces. *)
val add_delivered : t -> int -> unit

(** [add_dropped t k] records [k] messages destroyed by a fault adversary
    (lost on a link, or addressed to a crashed node). *)
val add_dropped : t -> int -> unit

(** [add_duplicated t k] records [k] extra message copies injected by a
    fault adversary. *)
val add_duplicated : t -> int -> unit

(** [add_retransmissions t k] records [k] retransmissions performed by a
    reliable transport layer ({!Transport}). *)
val add_retransmissions : t -> int -> unit

(** [add_corrupted t k] records [k] message copies whose payload the
    fault adversary garbled in flight. A corrupted copy still counts as
    delivered (or dropped, if the raw engine discards it as undecodable
    garbage) for the conservation law. *)
val add_corrupted : t -> int -> unit

(** [add_rejected t k] records [k] packets a transport integrity layer
    refused on receipt because their checksum failed ({!Transport}).
    "Zero corrupted payloads accepted" means every corrupted copy that
    reached a live node is rejected: [rejected] accounts them. *)
val add_rejected : t -> int -> unit

(** [add_suspicions t k] records [k] suspicion transitions raised by a
    failure detector ({!Detector}): node [v] started suspecting neighbor
    [u]. Clearing a suspicion is not a charge. *)
val add_suspicions : t -> int -> unit

(** [add_link_failures t k] records [k] links a transport declared dead
    after exhausting its retransmission budget ({!Transport}'s
    [max_retries] cap): outstanding and queued traffic on the link was
    abandoned. *)
val add_link_failures : t -> int -> unit

(** [add_checkpoints t k] records [k] checkpoints written to simulated
    per-node stable storage by a {!Recovery} layer. Checkpoints cost no
    network traffic — they are charged separately from [messages]/[words]
    so the engine's traffic-conservation audit is undisturbed. *)
val add_checkpoints : t -> int -> unit

(** [add_checkpoint_words t k] records [k] machine words of serialized
    state written across checkpoints (the storage-bandwidth analogue of
    [add_words]). *)
val add_checkpoint_words : t -> int -> unit

(** [add_recoveries t k] records [k] crash-amnesia restarts that reloaded
    state from stable storage (or re-ran [init] when no checkpoint
    existed). *)
val add_recoveries : t -> int -> unit

(** [add_resync_rounds t k] records [k] node-rounds spent between a
    restart and having heard back from every neighbor of the restarted
    node (the HELLO/RESYNC handshake window). *)
val add_resync_rounds : t -> int -> unit

(** [add_pulses t k] records [k] synchronizer pulses begun (one per live
    node per logical round under the asynchronous executor). Pulses are
    control overhead: they are charged separately from [rounds] so the
    user-level cost of a run is identical between the synchronous engine
    and the synchronizer. *)
val add_pulses : t -> int -> unit

(** [add_safe_messages t k] records [k] SAFE notifications fanned out by
    the α-synchronizer (one per live neighbor per completed pulse) —
    control traffic charged separately from [messages]/[words]. *)
val add_safe_messages : t -> int -> unit

(** [add_straggles t k] records [k] node-pulses executed under an active
    straggler window (slowed or stalled). *)
val add_straggles : t -> int -> unit

(** [observe_virtual_time t vt] raises the recorded virtual-time
    makespan to [vt] if larger — a high-water mark, not a sum (and
    {!merge} takes the max across runs). *)
val observe_virtual_time : t -> int -> unit

(** [add_cache_hits t k] records [k] hot-pair cache hits in the label
    server (lib/serve). *)
val add_cache_hits : t -> int -> unit

(** [add_cache_misses t k] records [k] hot-pair cache misses (each one
    is a full label decode). *)
val add_cache_misses : t -> int -> unit

(** [add_cache_evictions t k] records [k] LRU evictions from the
    hot-pair cache. *)
val add_cache_evictions : t -> int -> unit

val rounds : t -> int
val messages : t -> int
val words : t -> int
val delivered : t -> int
val dropped : t -> int
val duplicated : t -> int
val retransmissions : t -> int
val corrupted : t -> int
val rejected : t -> int
val suspicions : t -> int
val link_failures : t -> int
val checkpoints : t -> int
val checkpoint_words : t -> int
val recoveries : t -> int
val resync_rounds : t -> int
val pulses : t -> int
val safe_messages : t -> int
val straggles : t -> int
val virtual_time : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
val cache_evictions : t -> int

(** [breakdown t] lists [(label, rounds)] aggregated per label,
    sorted by decreasing rounds. *)
val breakdown : t -> (string * int) list

(** [merge ~into src] adds all of [src]'s charges into [into]. *)
val merge : into:t -> t -> unit

(** [to_json ?name t] renders every counter plus the per-label
    breakdown as one flat JSON object (no trailing newline); [name]
    adds a leading ["name"] field. Machine-readable counterpart of
    {!pp}, used by the shared [--metrics-json] CLI flag. *)
val to_json : ?name:string -> t -> string

val pp : Format.formatter -> t -> unit
