(** Heartbeat failure detection and certified degraded-mode verdicts.

    Wraps the reliable {!Transport} with a timeout-based failure
    detector: every [period] rounds each node sends a 1-word heartbeat
    on links its user traffic is not already proving live, and a node
    that hears {e nothing} on a link for [timeout] consecutive rounds
    (default [3 * period]) starts {e suspecting} the peer — surfaced to
    the algorithm through a [suspected] predicate passed to its [step]
    function, so it can stop waiting on partitioned or crash-stopped
    neighbors instead of hanging. Anything arriving on the link (beat
    or data — corrupt packets never get this far, the transport rejects
    them) clears the suspicion again, so a healed partition recovers.

    {b Timing.} Suspicion latency for a link cut at round [c] is at
    most [c' - c <= timeout] rounds from the last delivery, i.e. at
    most [3 *] the heartbeat period with the default timeout — the
    bound the E-F3 experiment measures. False suspicions are possible
    (it is an unreliable detector in the Chandra–Toueg sense): a
    retransmission storm can delay beats past [timeout]; the default
    [timeout = 3 * period >= period + 2] leaves one full
    retransmission cycle of slack at the default [rto].

    {b Quiescence.} Heartbeating forever would never terminate, so each
    node keeps a {e watch} counter, re-armed by user-level activity
    (its own [active] flag, or any user message sent or received) and
    run down by silence; beats do {e not} re-arm it. A node stops
    beating and suspecting once its watch expires
    ([timeout + 2 * period] rounds after the neighborhood's user
    traffic ends) — but keeps answering incoming beats with a 1-word
    pong, so a neighbor whose user layer stays busy longer never
    mistakes the stand-down for a partition. Pongs never trigger a
    reply of their own, so two stood-down nodes cannot keep each other
    awake and global quiescence is reached one watch-length after the
    last user message.

    {b Verdicts.} After the run, per-node suspect lists either are all
    empty ([Complete] — the result is exact everywhere) or induce a
    certified reachable component ([Partial]): nodes connected to the
    root by links neither endpoint suspects. The soundness caveat is
    one-sided by design: a [Partial] verdict's reachable set may
    under-approximate the truly-connected component (false suspicion
    under extreme delay), but under the fault profiles here it matches
    the centralized {!oracle} — which the CLIs check. *)

type verdict =
  | Complete  (** no node suspects any neighbor; outputs are exact everywhere *)
  | Partial of { reachable : bool array; suspected : (int * int) list }
      (** [reachable] is the certified component of the root;
          [suspected] lists (suspector, suspect) pairs, sorted. *)

(** [verdict_of_suspects skeleton ~root suspects] derives the verdict
    from per-node suspect lists (as returned in {!Make.result}). *)
val verdict_of_suspects : Repro_graph.Digraph.t -> root:int -> int list array -> verdict

(** [oracle ?faults ?async skeleton ~root] is the centralized ground
    truth a [Partial] verdict is validated against: the component of
    [root] after removing permanently severed links ({!Fault.severed})
    and crash-stopped nodes ({!Fault.eventually_down}). When [async]
    (default false: the run executes on the asynchronous substrate),
    unbounded stall windows ({!Fault.eventually_stalled}) count as
    crash-stops too. With no faults (or only healing/transient ones)
    every node is reachable. *)
val oracle :
  ?faults:Fault.t -> ?async:bool -> Repro_graph.Digraph.t -> root:int -> bool array

val pp_verdict : Format.formatter -> verdict -> unit

module Make (M : Engine.MSG) : sig
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  type 'st result = {
    states : 'st array;
    suspects : int list array;  (** per node, sorted ids of suspected neighbors *)
  }

  (** Same contract as {!Transport.Make.run} except [step] additionally
      receives [suspected : int -> bool], the node's current local
      suspect list (queries on non-neighbors are a contract violation),
      plus:

      - [period] — heartbeat period in rounds (>= 2; default 4);
      - [timeout] — rounds of per-link silence before suspicion
        (default [3 * period]; must exceed [period + 2]).

      Heartbeats and suspicions are charged to the shared [metrics]
      ({!Metrics.add_suspicions}, plus ordinary message/word charges
      for beats — degraded-mode detection is not free). *)
  val run :
    Repro_graph.Digraph.t ->
    init:(int -> 'st) ->
    step:
      (round:int -> node:int -> suspected:(int -> bool) -> 'st -> inbox -> 'st * outbox) ->
    active:('st -> bool) ->
    ?faults:Fault.t ->
    ?on_restart:(round:int -> node:int -> 'st) ->
    ?rto:int ->
    ?jitter_seed:int ->
    ?max_retries:int ->
    ?period:int ->
    ?timeout:int ->
    ?max_rounds:int ->
    ?max_words:int ->
    metrics:Metrics.t ->
    label:string ->
    unit ->
    'st result

  (** [verdict result skeleton ~root] = {!verdict_of_suspects} on
      [result.suspects]. *)
  val verdict : 'st result -> Repro_graph.Digraph.t -> root:int -> verdict
end
