(** Deterministic hash-table iteration (the shared fix for the
    [hashtbl-order] lint rule).

    [Hashtbl] iteration order is nondeterministic across insertion
    histories; these helpers either sort bindings by a caller-supplied
    key comparison or restrict the consumer to an order-insensitive
    boolean predicate. This module is the single audited place in
    [lib/congest] that touches raw [Hashtbl.iter]/[fold]. *)

(** [exists p tbl] — does any binding satisfy [p]? Order-insensitive
    (a boolean OR), with early exit. *)
val exists : ('k -> 'v -> bool) -> ('k, 'v) Hashtbl.t -> bool

(** All bindings, sorted by key under [compare]. *)
val bindings : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> ('k * 'v) list

val iter_sorted : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> unit

val fold_sorted :
  ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> 'acc -> 'acc
