module Digraph = Repro_graph.Digraph

type tree = { root : int; parent : int array; dist : int array; depth : int }

type state = { d : int; par : int; pending : bool }

module Word = struct
  type t = int

  let words _ = 1
end

module E = Synchronizer.Make (Word)
module T = Transport.Make (Word)
module D = Detector.Make (Word)

let inf = Digraph.inf

let flood_init ~root v =
  if v = root then { d = 0; par = root; pending = true }
  else { d = inf; par = -1; pending = false }

(* All offers for a given BFS level arrive in the same round, so taking
   the smallest (distance, sender) pair in the inbox is deterministic. *)
let flood_step neighbors ~node st inbox =
  let st =
    List.fold_left
      (fun st (sender, sender_d) ->
        let cand = sender_d + 1 in
        if cand < st.d || (cand = st.d && sender < st.par) then
          { d = cand; par = sender; pending = true }
        else st)
      st inbox
  in
  if st.pending then
    ( { st with pending = false },
      Array.to_list (Array.map (fun u -> (u, st.d)) neighbors.(node)) )
  else (st, [])

let tree_of_states ~root states =
  let parent = Array.map (fun st -> st.par) states in
  let dist = Array.map (fun st -> st.d) states in
  let depth = Array.fold_left (fun acc d -> if d < inf && d > acc then d else acc) 0 dist in
  { root; parent; dist; depth }

let build ?faults ?(reliable = false) ?recovery skeleton ~root ~metrics =
  let n = Digraph.n skeleton in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let init = flood_init ~root in
  let step ~round:_ ~node st inbox = flood_step neighbors ~node st inbox in
  let states =
    match recovery with
    | Some { Recovery.checkpoint_every } ->
        (* crash-amnesia survival: the flood is announcement-monotone, so
           it satisfies the RECOVERABLE contract — a restored node
           re-offers its checkpointed distance (pending = true) and
           neighbors resync theirs *)
        let module R = Recovery.Make (struct
          module Msg = Word

          type st = state

          let init = init
          let step = step
          let active st = st.pending
          let snapshot st = [| st.d; st.par |]

          let restore ~node:_ snap =
            { d = snap.(0); par = snap.(1); pending = snap.(0) < inf }

          let resync st = if st.d < inf then Some st.d else None
        end) in
        R.run skeleton ?faults ~checkpoint_every ~metrics ~label:"bfs-tree" ()
    | None ->
        if reliable then
          T.run skeleton ?faults ~init ~step ~active:(fun st -> st.pending) ~metrics
            ~label:"bfs-tree" ()
        else
          E.run skeleton ?faults ~init ~step ~active:(fun st -> st.pending) ~metrics
            ~label:"bfs-tree" ()
  in
  tree_of_states ~root states

(* The flood is self-terminating — a node that never hears an offer
   simply stays at distance inf — so it needs nothing from the suspect
   list; the detector rides along to certify which part of the graph
   the tree actually covers. *)
let build_certified ?faults ?jitter_seed ?period ?timeout ?max_retries skeleton ~root ~metrics =
  let n = Digraph.n skeleton in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let result =
    D.run skeleton ?faults ?jitter_seed ?period ?timeout ?max_retries ~init:(flood_init ~root)
      ~step:(fun ~round:_ ~node ~suspected:_ st inbox -> flood_step neighbors ~node st inbox)
      ~active:(fun st -> st.pending)
      ~metrics ~label:"bfs-tree" ()
  in
  (tree_of_states ~root result.D.states, D.verdict result skeleton ~root)

let children t v =
  let out = ref [] in
  Array.iteri (fun u p -> if p = v && u <> v then out := u :: !out) t.parent;
  List.rev !out
