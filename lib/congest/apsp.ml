module Digraph = Repro_graph.Digraph

type state = { dist : int array; queue : (int * int) list; queue_back : (int * int) list }

module E = Synchronizer.Make (struct
  type t = int * int

  let words _ = 2
end)

let pop st =
  match st.queue with
  | item :: rest -> Some (item, { st with queue = rest })
  | [] -> (
      match List.rev st.queue_back with
      | item :: rest -> Some (item, { st with queue = rest; queue_back = [] })
      | [] -> None)

let push st item = { st with queue_back = item :: st.queue_back }

let hop_distances skeleton ~metrics =
  let n = Digraph.n skeleton in
  let neighbors = Array.init n (Digraph.neighbors skeleton) in
  let inf = Digraph.inf in
  let step ~round:_ ~node st inbox =
    let st =
      List.fold_left
        (fun st (_, (src, d)) ->
          let nd = d + 1 in
          if nd < st.dist.(src) then begin
            st.dist.(src) <- nd;
            push st (src, nd)
          end
          else st)
        st inbox
    in
    match pop st with
    | Some (item, st) ->
        (st, Array.to_list (Array.map (fun u -> (u, item)) neighbors.(node)))
    | None -> (st, [])
  in
  let states =
    E.run skeleton
      ~init:(fun v ->
        let dist = Array.make n inf in
        dist.(v) <- 0;
        { dist; queue = [ (v, 0) ]; queue_back = [] })
      ~step
      ~active:(fun st -> st.queue <> [] || st.queue_back <> [])
      ~metrics ~label:"apsp" ()
  in
  Array.map (fun st -> st.dist) states

let diameter skeleton ~metrics =
  let dists = hop_distances skeleton ~metrics in
  let ecc = Array.map (fun row -> Array.fold_left max 0 row) dists in
  let tree = Bfs_tree.build skeleton ~root:0 ~metrics in
  Broadcast.convergecast tree ~op:max ~values:ecc ~metrics

let diameter_two_approx skeleton ~metrics =
  let tree = Bfs_tree.build skeleton ~root:0 ~metrics in
  (* the eccentricity of the root is the tree depth; aggregate it so every
     node learns the estimate *)
  ignore (Broadcast.convergecast tree ~op:max ~values:tree.Bfs_tree.dist ~metrics);
  tree.Bfs_tree.depth
