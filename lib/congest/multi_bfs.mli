(** Many BFS floods at once under per-edge bandwidth — the random-delay
    scheduling of Theorem 6 (Ghaffari [Gha15]) at the message level.

    Each instance floods hop distances from its own root; a node may
    forward only one (instance, distance) announcement per neighbor per
    round, so concurrent instances queue on shared edges. Random start
    delays spread the load; the measured completion time tracks
    O(dilation + congestion) = O(D + k) instead of the sequential k * D. *)

type result = {
  dist : int array array;  (** [dist.(i).(v)] = hop distance from root i *)
  rounds : int;  (** measured completion rounds *)
}

(** [run skeleton ~roots ?seed ~metrics] floods all roots concurrently.
    Rounds charged under ["multi-bfs"]. *)
val run :
  Repro_graph.Digraph.t ->
  roots:int list ->
  ?seed:int ->
  metrics:Metrics.t ->
  unit ->
  result
