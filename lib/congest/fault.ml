type mode = Freeze | Amnesia

type crash = { node : int; from_round : int; until_round : int option; mode : mode }

type profile = {
  drop : float;
  duplicate : float;
  max_delay : int;
  crashes : crash list;
}

let reliable = { drop = 0.0; duplicate = 0.0; max_delay = 0; crashes = [] }

let crash ?until ?(mode = Freeze) ~from node =
  { node; from_round = from; until_round = until; mode }

let profile ?(drop = 0.0) ?(duplicate = 0.0) ?(max_delay = 0) ?(crashes = []) () =
  let check_prob name p =
    if p < 0.0 || p >= 1.0 then
      invalid_arg (Printf.sprintf "Fault.profile: %s=%g outside [0,1)" name p)
  in
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  if max_delay < 0 then invalid_arg "Fault.profile: negative max_delay";
  List.iter
    (fun c ->
      if c.from_round < 0 then invalid_arg "Fault.profile: negative crash round";
      match (c.until_round, c.mode) with
      | Some u, _ when u <= c.from_round ->
          invalid_arg "Fault.profile: crash window ends before it starts"
      | None, Amnesia ->
          invalid_arg
            "Fault.profile: an amnesia crash never restarts (use a Freeze crash-stop, \
             or give it an until_round)"
      | _ -> ())
    crashes;
  { drop; duplicate; max_delay; crashes }

(* Two ways to decide message fates: the seeded random process, or a
   recorded schedule being replayed (Repro_obs.Replay feeds one in via
   [scripted]). Scripted deciders need to know which [Engine.run] of
   the CLI invocation is consulting them — rounds restart at 0 each
   run — so the engine announces run boundaries with [begin_run]. *)
type decider =
  | Rng of Random.State.t
  | Scripted of (run:int -> round:int -> src:int -> dst:int -> int list)

type t = { p : profile; decider : decider; seed : int; mutable run : int }

let create ?(seed = 0) p =
  {
    p;
    decider = Rng (Random.State.make [| seed lxor 0xfa17; p.max_delay + 1 |]);
    seed;
    run = -1;
  }

let scripted ?(crashes = []) plan =
  { p = profile ~crashes (); decider = Scripted plan; seed = 0; run = -1 }

let begin_run t = t.run <- t.run + 1
let profile_of t = t.p

let plan t ~round ~src ~dst =
  match t.decider with
  | Scripted f -> f ~run:(max t.run 0) ~round ~src ~dst
  | Rng rng ->
      let p = t.p in
      if p.drop > 0.0 && Random.State.float rng 1.0 < p.drop then []
      else begin
        let copies =
          if p.duplicate > 0.0 && Random.State.float rng 1.0 < p.duplicate then 2 else 1
        in
        List.init copies (fun _ ->
            if p.max_delay = 0 then 0 else Random.State.int rng (p.max_delay + 1))
      end

let in_window c ~round =
  round >= c.from_round
  && (match c.until_round with None -> true | Some u -> round < u)

let crashed t ~round v = List.exists (fun c -> c.node = v && in_window c ~round) t.p.crashes

let crash_stopped t ~round v =
  List.exists
    (fun c -> c.node = v && c.until_round = None && round >= c.from_round)
    t.p.crashes

let restarted t ~round v =
  (not (crashed t ~round v))
  && List.exists
       (fun c -> c.node = v && c.mode = Amnesia && c.until_round = Some round)
       t.p.crashes

(* the window is "in progress" through the restart round itself ([<= u]):
   the restart is applied at round [u], so the run must still be alive
   then for the node to come back at all *)
let amnesia_in_progress t ~round =
  List.exists
    (fun c ->
      c.mode = Amnesia
      && round >= c.from_round
      && match c.until_round with Some u -> round <= u | None -> false)
    t.p.crashes

let pp fmt t =
  let amnesia = List.length (List.filter (fun c -> c.mode = Amnesia) t.p.crashes) in
  match t.decider with
  | Scripted _ ->
      Format.fprintf fmt "faults(scripted crashes=%d amnesia=%d)"
        (List.length t.p.crashes)
        amnesia
  | Rng _ ->
      Format.fprintf fmt "faults(seed=%d drop=%g dup=%g delay<=%d crashes=%d amnesia=%d)"
        t.seed t.p.drop t.p.duplicate t.p.max_delay
        (List.length t.p.crashes)
        amnesia
