type mode = Freeze | Amnesia

type crash = { node : int; from_round : int; until_round : int option; mode : mode }

type cut = Links of (int * int) list | Around of int list

type partition = { cut : cut; from_round : int; heal_round : int option }

(* A timing fault: during [s_from, s_until) node [s_node]'s local
   computation per pulse is stretched by [factor] (virtual-time units;
   1 = nominal). [factor = 0] encodes a stall: a bounded stall is
   modeled as a [stall_factor]x slowdown (long enough to blow any
   realistic pulse deadline), an unbounded one ([s_until = None]) stops
   the node outright — under the asynchronous executor it behaves like
   a crash-stop from [s_from] on. *)
type straggle = { s_node : int; s_from : int; s_until : int option; factor : int }

let stall_factor = 1000

type profile = {
  drop : float;
  duplicate : float;
  max_delay : int;
  corrupt : float;
  crashes : crash list;
  partitions : partition list;
  stragglers : straggle list;
  link_latency : int;
  skew : int;
}

let reliable =
  {
    drop = 0.0;
    duplicate = 0.0;
    max_delay = 0;
    corrupt = 0.0;
    crashes = [];
    partitions = [];
    stragglers = [];
    link_latency = 0;
    skew = 0;
  }

let crash ?until ?(mode = Freeze) ~from node =
  { node; from_round = from; until_round = until; mode }

let partition ?heal ~from cut = { cut; from_round = from; heal_round = heal }

let straggle ?until ?(factor = 0) ~from node =
  { s_node = node; s_from = from; s_until = until; factor }

let check_partition p =
  (match p.cut with
  | Links [] | Around [] -> invalid_arg "Fault.profile: empty partition cut"
  | Links es ->
      List.iter
        (fun (a, b) -> if a = b then invalid_arg "Fault.profile: partition self-loop link")
        es
  | Around _ -> ());
  if p.from_round < 0 then invalid_arg "Fault.profile: negative partition round";
  match p.heal_round with
  | Some h when h <= p.from_round ->
      invalid_arg "Fault.profile: partition heals before it starts"
  | _ -> ()

let profile ?(drop = 0.0) ?(duplicate = 0.0) ?(max_delay = 0) ?(corrupt = 0.0)
    ?(crashes = []) ?(partitions = []) ?(stragglers = []) ?(link_latency = 0) ?(skew = 0)
    () =
  let check_prob name p =
    if p < 0.0 || p >= 1.0 then
      invalid_arg (Printf.sprintf "Fault.profile: %s=%g outside [0,1)" name p)
  in
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  if max_delay < 0 then invalid_arg "Fault.profile: negative max_delay";
  List.iter
    (fun (c : crash) ->
      if c.from_round < 0 then invalid_arg "Fault.profile: negative crash round";
      match (c.until_round, c.mode) with
      | Some u, _ when u <= c.from_round ->
          invalid_arg "Fault.profile: crash window ends before it starts"
      | None, Amnesia ->
          invalid_arg
            "Fault.profile: an amnesia crash never restarts (use a Freeze crash-stop, \
             or give it an until_round)"
      | _ -> ())
    crashes;
  List.iter check_partition partitions;
  List.iter
    (fun (s : straggle) ->
      if s.s_from < 0 then invalid_arg "Fault.profile: negative straggle round";
      if s.factor < 0 then invalid_arg "Fault.profile: negative straggle factor";
      if s.factor = 1 then
        invalid_arg "Fault.profile: straggle factor 1 is a no-op (use 0 = stall, or >= 2)";
      match s.s_until with
      | Some u when u <= s.s_from ->
          invalid_arg "Fault.profile: straggle window ends before it starts"
      | _ -> ())
    stragglers;
  if link_latency < 0 then invalid_arg "Fault.profile: negative link_latency";
  if skew < 0 then invalid_arg "Fault.profile: negative skew";
  { drop; duplicate; max_delay; corrupt; crashes; partitions; stragglers; link_latency; skew }

(* A copy's fate once it survives the partition check: how many extra
   rounds it is held, and whether its payload is garbled in flight. *)
type fate = { extra : int; corrupt : bool }

let intact extra = { extra; corrupt = false }

(* Two ways to decide message fates: the seeded random process, or a
   recorded schedule being replayed (Repro_obs.Replay feeds one in via
   [scripted]). Scripted deciders need to know which [Engine.run] of
   the CLI invocation is consulting them — rounds restart at 0 each
   run — so the engine announces run boundaries with [begin_run]. *)
type decider =
  | Rng of Random.State.t
  | Scripted of (run:int -> round:int -> src:int -> dst:int -> fate list)

type t = { p : profile; decider : decider; seed : int; mutable run : int }

let create ?(seed = 0) p =
  {
    p;
    decider = Rng (Random.State.make [| seed lxor 0xfa17; p.max_delay + 1 |]);
    seed;
    run = -1;
  }

let scripted ?(crashes = []) ?(partitions = []) ?(stragglers = []) ?(link_latency = 0)
    ?(skew = 0) ?(timing_seed = 0) plan =
  {
    p = profile ~crashes ~partitions ~stragglers ~link_latency ~skew ();
    decider = Scripted plan;
    seed = timing_seed;
    run = -1;
  }

let begin_run t = t.run <- t.run + 1
let profile_of t = t.p
let seed_of t = t.seed

let plan t ~round ~src ~dst =
  match t.decider with
  | Scripted f -> f ~run:(max t.run 0) ~round ~src ~dst
  | Rng rng ->
      let p = t.p in
      if p.drop > 0.0 && Random.State.float rng 1.0 < p.drop then []
      else begin
        let copies =
          if p.duplicate > 0.0 && Random.State.float rng 1.0 < p.duplicate then 2 else 1
        in
        List.init copies (fun _ ->
            let extra =
              if p.max_delay = 0 then 0 else Random.State.int rng (p.max_delay + 1)
            in
            let corrupt = p.corrupt > 0.0 && Random.State.float rng 1.0 < p.corrupt in
            { extra; corrupt })
      end

let in_window (c : crash) ~round =
  round >= c.from_round
  && (match c.until_round with None -> true | Some u -> round < u)

let crashed t ~round v = List.exists (fun c -> c.node = v && in_window c ~round) t.p.crashes

let crash_stopped t ~round v =
  List.exists
    (fun c -> c.node = v && c.until_round = None && round >= c.from_round)
    t.p.crashes

let eventually_down t v =
  List.exists (fun c -> c.node = v && c.until_round = None) t.p.crashes

let restarted t ~round v =
  (not (crashed t ~round v))
  && List.exists
       (fun c -> c.node = v && c.mode = Amnesia && c.until_round = Some round)
       t.p.crashes

(* the window is "in progress" through the restart round itself ([<= u]):
   the restart is applied at round [u], so the run must still be alive
   then for the node to come back at all *)
let amnesia_in_progress t ~round =
  List.exists
    (fun c ->
      c.mode = Amnesia
      && round >= c.from_round
      && match c.until_round with Some u -> round <= u | None -> false)
    t.p.crashes

(* --------------------------------------------------------- partitions *)

let cut_covers cut ~src ~dst =
  match cut with
  | Links es -> List.exists (fun (a, b) -> (a = src && b = dst) || (a = dst && b = src)) es
  | Around vs -> List.mem src vs || List.mem dst vs

let partition_active p ~round =
  round >= p.from_round
  && (match p.heal_round with None -> true | Some h -> round < h)

let link_down t ~round ~src ~dst =
  List.exists
    (fun p -> partition_active p ~round && cut_covers p.cut ~src ~dst)
    t.p.partitions

let severed t ~src ~dst =
  List.exists
    (fun p -> p.heal_round = None && cut_covers p.cut ~src ~dst)
    t.p.partitions

(* ------------------------------------------------- timing adversary *)
(* Every timing draw is a pure hash of (seed, salt, coordinates), not a
   pull on the profile's RNG stream: draws are order-independent, so
   the asynchronous executor can consult them in any event order
   without perturbing [plan]'s stream — synchronous runs of the same
   profile stay byte-identical — and replay only needs the seed (the
   same idiom as Transport's retransmission jitter). *)

let timing_active t =
  t.p.stragglers <> [] || t.p.link_latency > 0 || t.p.skew > 0

let in_straggle_window (s : straggle) ~round =
  round >= s.s_from && (match s.s_until with None -> true | Some u -> round < u)

(* nominal = 1; a bounded stall is a [stall_factor]x slowdown *)
let straggle_factor t ~round v =
  match
    List.find_opt (fun s -> s.s_node = v && in_straggle_window s ~round) t.p.stragglers
  with
  | None -> 1
  | Some { factor = 0; s_until = Some _; _ } -> stall_factor
  | Some { factor = 0; s_until = None; _ } -> 0
  | Some s -> s.factor

let stalled_forever t ~round v =
  List.exists
    (fun s -> s.s_node = v && s.factor = 0 && s.s_until = None && round >= s.s_from)
    t.p.stragglers

let eventually_stalled t v =
  List.exists (fun s -> s.s_node = v && s.factor = 0 && s.s_until = None) t.p.stragglers

let skew_of t v =
  if t.p.skew = 0 then 0 else Hashtbl.hash (t.seed, 0x5e3a, v) mod (t.p.skew + 1)

let latency t ~round ~src ~dst ~leg =
  if t.p.link_latency = 0 then 0
  else Hashtbl.hash (t.seed, 0x1a7e, round, src, dst, leg) mod (t.p.link_latency + 1)

(* ------------------------------------------------- CLI spec grammar *)
(* The --crash/--partition specs live here (not in bin/) so the parser
   and printer stay one inverse pair under test: [parse_* s] followed by
   [pp_*] yields a canonical spec that parses back to the same value. *)

let pp_crash fmt (c : crash) =
  Format.fprintf fmt "%d:%d" c.node c.from_round;
  match (c.until_round, c.mode) with
  | None, _ -> ()
  | Some u, Freeze -> Format.fprintf fmt ":%d" u
  | Some u, Amnesia -> Format.fprintf fmt ":%d:amnesia" u

let crash_grammar = "NODE:FROM[:UNTIL[:MODE]] with MODE in {freeze, amnesia}"

let parse_crash s =
  let err field what got why =
    Error
      (Printf.sprintf "field %d (%s) %S %s; expected %s" field what got why crash_grammar)
  in
  let int_field idx name v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> err idx name v "is not an integer"
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ node; from ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      Ok (crash node ~from)
  | [ node; from; until ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      let* until = int_field 3 "UNTIL" until in
      Ok (crash node ~from ~until)
  | [ node; from; until; mode ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      let* until = int_field 3 "UNTIL" until in
      let* mode =
        match String.trim mode with
        | "freeze" -> Ok Freeze
        | "amnesia" -> Ok Amnesia
        | m -> err 4 "MODE" m "is not a crash mode"
      in
      Ok (crash node ~from ~until ~mode)
  | parts ->
      Error
        (Printf.sprintf "%d field(s), want 2-4; expected %s" (List.length parts)
           crash_grammar)

let pp_partition fmt (p : partition) =
  (match p.cut with
  | Links es ->
      Format.pp_print_string fmt
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) es))
  | Around vs ->
      Format.fprintf fmt "@@%s" (String.concat "," (List.map string_of_int vs)));
  Format.fprintf fmt ":%d" p.from_round;
  match p.heal_round with None -> () | Some h -> Format.fprintf fmt ":%d" h

let partition_grammar =
  "CUT:FROM[:HEAL] with CUT either links u-v[,u-v...] or a vertex cut @n[,n...]"

let parse_partition s =
  let err field what got why =
    Error
      (Printf.sprintf "field %d (%s) %S %s; expected %s" field what got why
         partition_grammar)
  in
  let int_field idx name v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> err idx name v "is not an integer"
  in
  let ( let* ) = Result.bind in
  let parse_cut cutspec =
    let cutspec = String.trim cutspec in
    if cutspec = "" then err 1 "CUT" cutspec "is empty"
    else if cutspec.[0] = '@' then
      let body = String.sub cutspec 1 (String.length cutspec - 1) in
      let* vs =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match int_of_string_opt (String.trim v) with
            | Some i -> Ok (i :: acc)
            | None -> err 1 "CUT" cutspec (Printf.sprintf "has non-integer node %S" v))
          (Ok []) (String.split_on_char ',' body)
      in
      Ok (Around (List.rev vs))
    else
      let* es =
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            match String.split_on_char '-' (String.trim l) with
            | [ a; b ] -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some a, Some b -> Ok ((a, b) :: acc)
                | _ -> err 1 "CUT" cutspec (Printf.sprintf "has non-integer link %S" l))
            | _ -> err 1 "CUT" cutspec (Printf.sprintf "has malformed link %S (want u-v)" l))
          (Ok []) (String.split_on_char ',' cutspec)
      in
      Ok (Links (List.rev es))
  in
  match String.split_on_char ':' s with
  | [ cutspec; from ] ->
      let* cut = parse_cut cutspec in
      let* from = int_field 2 "FROM" from in
      Ok (partition ~from cut)
  | [ cutspec; from; heal ] ->
      let* cut = parse_cut cutspec in
      let* from = int_field 2 "FROM" from in
      let* heal = int_field 3 "HEAL" heal in
      Ok (partition ~from ~heal cut)
  | parts ->
      Error
        (Printf.sprintf "%d field(s), want 2-3; expected %s" (List.length parts)
           partition_grammar)

let pp_straggle fmt (s : straggle) =
  Format.fprintf fmt "%d:%d" s.s_node s.s_from;
  match (s.s_until, s.factor) with
  | None, 0 -> ()
  | None, f -> Format.fprintf fmt "::%d" f
  | Some u, 0 -> Format.fprintf fmt ":%d" u
  | Some u, f -> Format.fprintf fmt ":%d:%d" u f

let straggle_grammar =
  "NODE:FROM[:UNTIL[:FACTOR]] (FACTOR 0 or omitted = stall, >= 2 = slowdown; empty UNTIL \
   = forever)"

let parse_straggle s =
  let err field what got why =
    Error
      (Printf.sprintf "field %d (%s) %S %s; expected %s" field what got why
         straggle_grammar)
  in
  let int_field idx name v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> err idx name v "is not an integer"
  in
  let until_field v =
    (* an empty UNTIL keeps the window open forever (so a permanent
       slowdown is expressible as NODE:FROM::FACTOR) *)
    if String.trim v = "" then Ok None
    else Result.map Option.some (int_field 3 "UNTIL" v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ node; from ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      Ok (straggle node ~from)
  | [ node; from; until ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      let* until = until_field until in
      Ok (straggle node ~from ?until)
  | [ node; from; until; factor ] ->
      let* node = int_field 1 "NODE" node in
      let* from = int_field 2 "FROM" from in
      let* until = until_field until in
      let* factor = int_field 4 "FACTOR" factor in
      Ok (straggle node ~from ?until ~factor)
  | parts ->
      Error
        (Printf.sprintf "%d field(s), want 2-4; expected %s" (List.length parts)
           straggle_grammar)

let pp fmt t =
  let amnesia = List.length (List.filter (fun c -> c.mode = Amnesia) t.p.crashes) in
  let timing fmt () =
    if t.p.stragglers <> [] || t.p.link_latency > 0 || t.p.skew > 0 then
      Format.fprintf fmt " stragglers=%d latency<=%d skew<=%d"
        (List.length t.p.stragglers)
        t.p.link_latency t.p.skew
  in
  match t.decider with
  | Scripted _ ->
      Format.fprintf fmt "faults(scripted crashes=%d amnesia=%d partitions=%d%a)"
        (List.length t.p.crashes)
        amnesia
        (List.length t.p.partitions)
        timing ()
  | Rng _ ->
      Format.fprintf fmt
        "faults(seed=%d drop=%g dup=%g delay<=%d corrupt=%g crashes=%d amnesia=%d \
         partitions=%d%a)"
        t.seed t.p.drop t.p.duplicate t.p.max_delay t.p.corrupt
        (List.length t.p.crashes)
        amnesia
        (List.length t.p.partitions)
        timing ()
