(** Message-level connected-component detection by min-id flooding.

    Every masked vertex repeatedly adopts the smallest id heard from a
    masked neighbor; after O(max component diameter) rounds each
    component is labeled by its minimum vertex id. This is the direct
    (shortcut-free) CCD: its round count depends on component diameters,
    which is exactly the dependence the paper's shortcut-based CCD
    (Lemma 8, charged in {!Repro_shortcut.Primitives.components})
    removes. Both are provided so experiments can compare. *)

(** [flood_labels g ~mask ~metrics] returns per-vertex component labels
    (the minimum id of the component; [-1] outside the mask). Rounds are
    measured, charged under ["ccd-flood"]. *)
val flood_labels :
  Repro_graph.Digraph.t ->
  mask:bool array ->
  metrics:Metrics.t ->
  int array
