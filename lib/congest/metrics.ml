type t = {
  mutable rounds : int;
  mutable messages : int;
  per_label : (string, int ref) Hashtbl.t;
}

let create () = { rounds = 0; messages = 0; per_label = Hashtbl.create 16 }

let add t ~label k =
  if k < 0 then invalid_arg "Metrics.add: negative round count";
  t.rounds <- t.rounds + k;
  match Hashtbl.find_opt t.per_label label with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.per_label label (ref k)

let add_messages t k = t.messages <- t.messages + k
let rounds t = t.rounds
let messages t = t.messages

let breakdown t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t.per_label []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let merge ~into src =
  into.messages <- into.messages + src.messages;
  Hashtbl.iter (fun label r -> add into ~label !r) src.per_label

let pp fmt t =
  Format.fprintf fmt "@[<v>rounds=%d messages=%d" t.rounds t.messages;
  List.iter (fun (l, r) -> Format.fprintf fmt "@,  %-24s %d" l r) (breakdown t);
  Format.fprintf fmt "@]"
