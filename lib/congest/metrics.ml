type t = {
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmissions : int;
  mutable corrupted : int;
  mutable rejected : int;
  mutable suspicions : int;
  mutable link_failures : int;
  mutable checkpoints : int;
  mutable checkpoint_words : int;
  mutable recoveries : int;
  mutable resync_rounds : int;
  mutable pulses : int;
  mutable safe_messages : int;
  mutable straggles : int;
  mutable virtual_time : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  per_label : (string, int ref) Hashtbl.t;
}

let create () =
  {
    rounds = 0;
    messages = 0;
    words = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    retransmissions = 0;
    corrupted = 0;
    rejected = 0;
    suspicions = 0;
    link_failures = 0;
    checkpoints = 0;
    checkpoint_words = 0;
    recoveries = 0;
    resync_rounds = 0;
    pulses = 0;
    safe_messages = 0;
    straggles = 0;
    virtual_time = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    per_label = Hashtbl.create 16;
  }

let add t ~label k =
  if k < 0 then invalid_arg "Metrics.add: negative round count";
  t.rounds <- t.rounds + k;
  match Hashtbl.find_opt t.per_label label with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.per_label label (ref k)

let add_messages t k = t.messages <- t.messages + k [@@hot]
let add_words t k = t.words <- t.words + k [@@hot]
let add_delivered t k = t.delivered <- t.delivered + k [@@hot]
let add_dropped t k = t.dropped <- t.dropped + k [@@hot]
let add_duplicated t k = t.duplicated <- t.duplicated + k [@@hot]
let add_retransmissions t k = t.retransmissions <- t.retransmissions + k [@@hot]
let add_corrupted t k = t.corrupted <- t.corrupted + k [@@hot]
let add_rejected t k = t.rejected <- t.rejected + k [@@hot]
let add_suspicions t k = t.suspicions <- t.suspicions + k [@@hot]
let add_link_failures t k = t.link_failures <- t.link_failures + k [@@hot]
let add_checkpoints t k = t.checkpoints <- t.checkpoints + k [@@hot]
let add_checkpoint_words t k = t.checkpoint_words <- t.checkpoint_words + k [@@hot]
let add_recoveries t k = t.recoveries <- t.recoveries + k [@@hot]
let add_resync_rounds t k = t.resync_rounds <- t.resync_rounds + k [@@hot]
let add_pulses t k = t.pulses <- t.pulses + k [@@hot]
let add_safe_messages t k = t.safe_messages <- t.safe_messages + k [@@hot]
let add_straggles t k = t.straggles <- t.straggles + k [@@hot]
let add_cache_hits t k = t.cache_hits <- t.cache_hits + k [@@hot]
let add_cache_misses t k = t.cache_misses <- t.cache_misses + k [@@hot]
let add_cache_evictions t k = t.cache_evictions <- t.cache_evictions + k [@@hot]

(* the virtual-time makespan is a high-water mark, not a sum *)
let observe_virtual_time t vt = if vt > t.virtual_time then t.virtual_time <- vt [@@hot]
let rounds t = t.rounds
let messages t = t.messages
let words t = t.words
let delivered t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated
let retransmissions t = t.retransmissions
let corrupted t = t.corrupted
let rejected t = t.rejected
let suspicions t = t.suspicions
let link_failures t = t.link_failures
let checkpoints t = t.checkpoints
let checkpoint_words t = t.checkpoint_words
let recoveries t = t.recoveries
let resync_rounds t = t.resync_rounds
let pulses t = t.pulses
let safe_messages t = t.safe_messages
let straggles t = t.straggles
let virtual_time t = t.virtual_time
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let cache_evictions t = t.cache_evictions

let breakdown t =
  Det_tbl.bindings t.per_label ~compare:String.compare
  |> List.map (fun (label, r) -> (label, !r))
  |> List.sort (fun (la, a) (lb, b) ->
         (* count descending, label ascending on ties: fully deterministic *)
         match Int.compare b a with 0 -> String.compare la lb | c -> c)

let merge ~into src =
  into.messages <- into.messages + src.messages;
  into.words <- into.words + src.words;
  into.delivered <- into.delivered + src.delivered;
  into.dropped <- into.dropped + src.dropped;
  into.duplicated <- into.duplicated + src.duplicated;
  into.retransmissions <- into.retransmissions + src.retransmissions;
  into.corrupted <- into.corrupted + src.corrupted;
  into.rejected <- into.rejected + src.rejected;
  into.suspicions <- into.suspicions + src.suspicions;
  into.link_failures <- into.link_failures + src.link_failures;
  into.checkpoints <- into.checkpoints + src.checkpoints;
  into.checkpoint_words <- into.checkpoint_words + src.checkpoint_words;
  into.recoveries <- into.recoveries + src.recoveries;
  into.resync_rounds <- into.resync_rounds + src.resync_rounds;
  into.pulses <- into.pulses + src.pulses;
  into.safe_messages <- into.safe_messages + src.safe_messages;
  into.straggles <- into.straggles + src.straggles;
  if src.virtual_time > into.virtual_time then into.virtual_time <- src.virtual_time;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.cache_misses <- into.cache_misses + src.cache_misses;
  into.cache_evictions <- into.cache_evictions + src.cache_evictions;
  Det_tbl.iter_sorted src.per_label ~compare:String.compare (fun label r ->
      add into ~label !r)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?name t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  (match name with
  | Some n -> Printf.bprintf buf {|"name":"%s",|} (json_escape n)
  | None -> ());
  Printf.bprintf buf
    {|"rounds":%d,"messages":%d,"words":%d,"delivered":%d,"dropped":%d,"duplicated":%d,"retransmissions":%d,"corrupted":%d,"rejected":%d,"suspicions":%d,"link_failures":%d,"checkpoints":%d,"checkpoint_words":%d,"recoveries":%d,"resync_rounds":%d,"pulses":%d,"safe_messages":%d,"straggles":%d,"virtual_time":%d,"cache_hits":%d,"cache_misses":%d,"cache_evictions":%d,"labels":{|}
    t.rounds t.messages t.words t.delivered t.dropped t.duplicated t.retransmissions
    t.corrupted t.rejected t.suspicions t.link_failures t.checkpoints t.checkpoint_words t.recoveries t.resync_rounds
    t.pulses t.safe_messages t.straggles t.virtual_time t.cache_hits t.cache_misses t.cache_evictions;
  List.iteri
    (fun i (l, r) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf {|"%s":%d|} (json_escape l) r)
    (breakdown t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>rounds=%d messages=%d" t.rounds t.messages;
  if t.words > 0 then Format.fprintf fmt " words=%d" t.words;
  if t.dropped > 0 || t.duplicated > 0 || t.retransmissions > 0 then
    Format.fprintf fmt " delivered=%d dropped=%d duplicated=%d retransmissions=%d" t.delivered
      t.dropped t.duplicated t.retransmissions;
  if t.corrupted > 0 || t.rejected > 0 then
    Format.fprintf fmt " corrupted=%d rejected=%d" t.corrupted t.rejected;
  if t.suspicions > 0 || t.link_failures > 0 then
    Format.fprintf fmt " suspicions=%d link_failures=%d" t.suspicions t.link_failures;
  if t.checkpoints > 0 || t.recoveries > 0 then
    Format.fprintf fmt " checkpoints=%d checkpoint_words=%d recoveries=%d resync_rounds=%d"
      t.checkpoints t.checkpoint_words t.recoveries t.resync_rounds;
  if t.pulses > 0 then
    Format.fprintf fmt " pulses=%d safe_messages=%d straggles=%d virtual_time=%d"
      t.pulses t.safe_messages t.straggles t.virtual_time;
  if t.cache_hits > 0 || t.cache_misses > 0 then
    Format.fprintf fmt " cache_hits=%d cache_misses=%d cache_evictions=%d" t.cache_hits
      t.cache_misses t.cache_evictions;
  List.iter (fun (l, r) -> Format.fprintf fmt "@,  %-24s %d" l r) (breakdown t);
  Format.fprintf fmt "@]"
