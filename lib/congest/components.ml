module Digraph = Repro_graph.Digraph

type state = { best : int; pending : bool; inside : bool }

module E = Synchronizer.Make (struct
  type t = int

  let words _ = 1
end)

let flood_labels g ~mask ~metrics =
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let n = Digraph.n skeleton in
  let neighbors =
    Array.init n (fun v ->
        Array.of_list
          (List.filter (fun u -> mask.(u)) (Array.to_list (Digraph.neighbors skeleton v))))
  in
  let states =
    E.run skeleton
      ~init:(fun v -> { best = v; pending = mask.(v); inside = mask.(v) })
      ~step:(fun ~round:_ ~node st inbox ->
        if not st.inside then (st, [])
        else begin
          let st =
            List.fold_left
              (fun st (_, cand) ->
                if cand < st.best then { st with best = cand; pending = true } else st)
              st inbox
          in
          if st.pending then
            ( { st with pending = false },
              Array.to_list (Array.map (fun u -> (u, st.best)) neighbors.(node)) )
          else (st, [])
        end)
      ~active:(fun st -> st.pending)
      ~metrics ~label:"ccd-flood" ()
  in
  Array.map (fun st -> if st.inside then st.best else -1) states
