module Pqueue = Repro_graph.Pqueue

(* Process-wide dials, installed by the CLIs the same way as
   [Engine.audit_enabled]: the algorithm layers never thread them. *)
let forced = ref false
let deadline = ref 0
let default_max_strikes = 3
let max_strikes = ref default_max_strikes

(* Exponential backoff on the pulse deadline is capped so the budget
   stays a sane int even for pathological strike counts. *)
let max_backoff_shift = 20

type queue = { q : int Pqueue.t; stride : int }

let create ~n = { q = Pqueue.create (); stride = max 1 n }
let is_empty t = Pqueue.is_empty t.q
let length t = Pqueue.length t.q

(* Composite priority [vt * stride + node]: equal virtual times break
   by ascending node id, so pop order is a deterministic function of
   the pushed set — never of heap-internal operation order. Virtual
   times are bounded by max_rounds x stall_factor x (1 + link
   latency), far below [max_int / stride] for any graph the simulator
   handles, so the encoding cannot overflow. *)
let push t ~vt v = Pqueue.push t.q ((vt * t.stride) + v) v [@@hot]

let pop t =
  let prio, v = Pqueue.pop_min t.q in
  (prio / t.stride, v)
[@@hot]

(* Wire-leg salts: the k-th copy of a data message, its acknowledgement
   and the SAFE fan-out draw independent latencies. [leg_safe] = 2 is
   disjoint from every [3k] / [3k + 1]. *)
let leg_data k = 3 * k
let leg_ack k = (3 * k) + 1
let leg_safe = 2

(* One wire crossing: a copy spends [1 + latency] virtual-time units in
   flight. Pure hash of the adversary seed (see {!Fault.latency}), so
   consulting it in event order leaves the fate RNG stream untouched. *)
let wire faults ~round ~src ~dst ~leg =
  match faults with
  | None -> 1
  | Some f -> 1 + Fault.latency f ~round ~src ~dst ~leg
[@@hot]

(* Lateness allowance against a neighbor already holding [strikes]
   strikes: the base deadline, doubled per consecutive miss. *)
let strike_allowance ~strikes = !deadline lsl min strikes max_backoff_shift
