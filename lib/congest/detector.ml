module Digraph = Repro_graph.Digraph

type verdict =
  | Complete
  | Partial of { reachable : bool array; suspected : (int * int) list }

let verdict_of_suspects skeleton ~root suspects =
  let n = Digraph.n skeleton in
  if Array.for_all (fun l -> l = []) suspects then Complete
  else begin
    let suspected_by v u = List.mem u suspects.(v) in
    (* certified reachable component: BFS from the root over links
       neither endpoint suspects — a link with a suspicious endpoint
       may be partitioned, so nothing beyond it is certified *)
    let reachable = Array.make n false in
    let q = Queue.create () in
    reachable.(root) <- true;
    Queue.add root q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun u ->
          if (not reachable.(u)) && (not (suspected_by v u)) && not (suspected_by u v)
          then begin
            reachable.(u) <- true;
            Queue.add u q
          end)
        (Digraph.neighbors skeleton v)
    done;
    let suspected =
      List.concat
        (List.mapi
           (fun v l -> List.map (fun u -> (v, u)) (List.sort Int.compare l))
           (Array.to_list suspects))
    in
    Partial { reachable; suspected }
  end

let oracle ?faults ?(async = false) skeleton ~root =
  let n = Digraph.n skeleton in
  let severed, down =
    match faults with
    | None -> ((fun ~src:_ ~dst:_ -> false), fun _ -> false)
    | Some f ->
        ( (fun ~src ~dst -> Fault.severed f ~src ~dst),
          fun v ->
            Fault.eventually_down f v
            (* under the asynchronous executor an unbounded stall is a
               crash-stop: the node eventually goes silent forever *)
            || (async && Fault.eventually_stalled f v) )
  in
  let reachable = Array.make n false in
  if not (down root) then begin
    let q = Queue.create () in
    reachable.(root) <- true;
    Queue.add root q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun u ->
          if (not reachable.(u)) && (not (down u)) && not (severed ~src:v ~dst:u)
          then begin
            reachable.(u) <- true;
            Queue.add u q
          end)
        (Digraph.neighbors skeleton v)
    done
  end;
  reachable

let pp_verdict fmt = function
  | Complete -> Format.pp_print_string fmt "complete"
  | Partial { reachable; suspected } ->
      let live = Array.fold_left (fun k r -> if r then k + 1 else k) 0 reachable in
      Format.fprintf fmt "partial (%d/%d reachable, %d suspicion(s))" live
        (Array.length reachable) (List.length suspected)

module Make (M : Engine.MSG) = struct
  type inbox = (int * M.t) list
  type outbox = (int * M.t) list

  (* heartbeats share the links with user data; a Beat or Pong is pure
     header (1 word), a Data message costs its payload plus the 1-word
     tag. A Pong is a stood-down node answering a Beat: it proves the
     link live without triggering a reply of its own, so two quiescent
     nodes can never keep each other awake *)
  module Beat_msg = struct
    type t = Data of M.t | Beat | Pong

    let words = function Beat | Pong -> 1 | Data m -> 1 + M.words m
  end

  module T = Transport.Make (Beat_msg)

  type 'st node = {
    user : 'st;
    nbrs : int array;
    idx : (int, int) Hashtbl.t;  (* neighbor id -> position in [nbrs] *)
    last_heard : int array;  (* per [nbrs] position: last round anything arrived *)
    suspect : bool array;  (* per [nbrs] position *)
    mutable watch : int;  (* rounds of detector service left before standing down *)
    mutable next_beat : int;
  }

  type 'st result = { states : 'st array; suspects : int list array }

  let run skeleton ~init ~step ~active ?faults ?on_restart ?rto ?jitter_seed
      ?max_retries ?(period = 4) ?timeout ?max_rounds
      ?(max_words = Engine.default_max_words) ~metrics ~label () =
    if period < 2 then invalid_arg "Detector.run: period must be >= 2";
    let timeout = match timeout with Some t -> t | None -> 3 * period in
    if timeout < period + 2 then
      invalid_arg "Detector.run: timeout must exceed period + the 2-round ack latency";
    (* how long a node keeps beating and suspecting after its own user
       layer (and its neighborhood's traffic) goes quiet: long enough
       for a peer whose watch was re-armed a little later to time us
       out or hear our final beats, short enough to quiesce *)
    let watch0 = timeout + (2 * period) in
    let sink = !Engine.trace_sink in
    let tracing = sink.Repro_obs.Sink.enabled in
    let fresh_node ~round v user =
      let nbrs = Digraph.neighbors skeleton v in
      let deg = Array.length nbrs in
      let idx = Hashtbl.create (max 8 deg) in
      Array.iteri (fun i u -> Hashtbl.replace idx u i) nbrs;
      {
        user;
        nbrs;
        idx;
        last_heard = Array.make deg round;
        suspect = Array.make deg false;
        watch = watch0;
        next_beat = round;
      }
    in
    let wrap_init v = fresh_node ~round:0 v (init v) in
    let restart_user =
      match on_restart with Some f -> f | None -> fun ~round:_ ~node -> init node
    in
    let wrap_restart ~round ~node =
      fresh_node ~round node (restart_user ~round ~node)
    in
    let wrap_step ~round ~node:v st inbox =
      (* 1. anything that arrives proves the link live: refresh the
         peer's deadline, clear a standing suspicion, split out data *)
      let data = ref [] and beaters = ref [] in
      List.iter
        (fun (u, bm) ->
          let i = Hashtbl.find st.idx u in
          st.last_heard.(i) <- round;
          if st.suspect.(i) then begin
            st.suspect.(i) <- false;
            if tracing then
              Repro_obs.Sink.emit sink (Repro_obs.Event.Clear { round; node = v; peer = u })
          end;
          match bm with
          | Beat_msg.Data m -> data := (u, m) :: !data
          | Beat_msg.Beat -> beaters := u :: !beaters
          | Beat_msg.Pong -> ())
        inbox;
      let user_inbox = List.rev !data in
      let suspected u =
        match Hashtbl.find_opt st.idx u with
        | Some i -> st.suspect.(i)
        | None -> invalid_arg (Printf.sprintf "Detector(%s): %d is not a neighbor of %d" label u v)
      in
      let user, user_out = step ~round ~node:v ~suspected st.user user_inbox in
      (* 2. the watch: user-level activity re-arms it, silence runs it
         down. Beats deliberately do NOT re-arm it (mutual heartbeating
         would keep the whole system alive forever). *)
      if user_inbox <> [] || user_out <> [] || active user then st.watch <- watch0
      else st.watch <- st.watch - 1;
      (* 3. while on watch, time out silent neighbors *)
      if st.watch > 0 then
        Array.iteri
          (fun i u ->
            if (not st.suspect.(i)) && round - st.last_heard.(i) >= timeout then begin
              st.suspect.(i) <- true;
              Metrics.add_suspicions metrics 1;
              if tracing then
                Repro_obs.Sink.emit sink
                  (Repro_obs.Event.Suspect { round; node = v; peer = u })
            end)
          st.nbrs;
      (* 4. outbox: user data rides as [Data] (and proves liveness by
         itself); every [period] rounds, neighbors not already getting
         data receive a [Beat]. A node whose watch has expired no longer
         originates beats, but still answers incoming ones with a [Pong]
         — otherwise a neighbor whose user layer stays busy [timeout]
         rounds longer would falsely (and permanently, since we never
         speak again) suspect this perfectly live link *)
      let beat_due = st.watch > 0 && round >= st.next_beat in
      if beat_due then st.next_beat <- round + period;
      let out = List.map (fun (u, m) -> (u, Beat_msg.Data m)) user_out in
      let out =
        if beat_due then
          Array.fold_right
            (fun u acc ->
              if List.mem_assoc u out then acc else (u, Beat_msg.Beat) :: acc)
            st.nbrs out
        else if st.watch <= 0 then
          List.fold_left
            (fun acc u ->
              if List.mem_assoc u acc then acc else (u, Beat_msg.Pong) :: acc)
            out !beaters
        else out
      in
      ({ st with user }, out)
    in
    let wrap_active st = active st.user || st.watch > 0 in
    let states =
      T.run skeleton ?faults ~init:wrap_init ~step:wrap_step ~active:wrap_active
        ~on_restart:wrap_restart ?rto ?jitter_seed ?max_retries ?max_rounds
        ~max_words:(max_words + 1) ~metrics ~label ()
    in
    {
      states = Array.map (fun st -> st.user) states;
      suspects =
        Array.map
          (fun st ->
            let out = ref [] in
            Array.iteri (fun i u -> if st.suspect.(i) then out := u :: !out) st.nbrs;
            List.rev !out)
          states;
    }

  let verdict result skeleton ~root = verdict_of_suspects skeleton ~root result.suspects
end
