(** Batch/stream query server (DESIGN §3h).

    Newline-delimited protocol on channels: one query per input line
    (["DIST u v"] / ["CDL u v q"]), one output line per query — the
    distance, ["inf"], or ["ERR <field-naming message>"] for a
    malformed line (the server keeps going; the error is counted, not
    fatal). Batch mode is the same loop over a file channel. *)

type stats = { answered : int; errors : int }

(** [run ?cache src input output] serves until EOF on [input]. With
    [flush_each:true] (default — required for interactive stream use)
    every answer line is flushed as written; batch callers may pass
    [false] and flush once. Cache counters stay in [cache]; push them
    to Metrics with {!Cache.flush} afterwards. *)
val run :
  ?cache:Cache.t -> ?flush_each:bool -> Query.source -> in_channel -> out_channel -> stats
