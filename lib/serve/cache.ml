module Metrics = Repro_congest.Metrics

type t = {
  capacity : int;
  keys : int array;
  values : int array;
  prev : int array;
  next : int array;
  slot_of : (int, int) Hashtbl.t;
  mutable head : int;
  mutable tail : int;
  mutable len : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let absent = min_int

let create capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  let n = max capacity 1 in
  {
    capacity;
    keys = Array.make n 0;
    values = Array.make n 0;
    prev = Array.make n (-1);
    next = Array.make n (-1);
    slot_of = Hashtbl.create (2 * n);
    head = -1;
    tail = -1;
    len = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = t.len

let unlink t i =
  let p = t.prev.(i) and nx = t.next.(i) in
  if p >= 0 then t.next.(p) <- nx else t.head <- nx;
  if nx >= 0 then t.prev.(nx) <- p else t.tail <- p
[@@hot]

let push_front t i =
  t.prev.(i) <- -1;
  t.next.(i) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- i;
  t.head <- i;
  if t.tail < 0 then t.tail <- i
[@@hot]

(* Hashtbl.find (not find_opt): no [Some] box on the per-query path. *)
let find t key =
  match Hashtbl.find t.slot_of key with
  | i ->
      t.hits <- t.hits + 1;
      if t.head <> i then begin
        unlink t i;
        push_front t i
      end;
      t.values.(i)
  | exception Not_found ->
      t.misses <- t.misses + 1;
      absent
[@@hot]

let add t key value =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.slot_of key with
    | Some i ->
        t.values.(i) <- value;
        if t.head <> i then begin
          unlink t i;
          push_front t i
        end
    | None ->
        let i =
          if t.len < t.capacity then begin
            let i = t.len in
            t.len <- t.len + 1;
            i
          end
          else begin
            let i = t.tail in
            Hashtbl.remove t.slot_of t.keys.(i);
            t.evictions <- t.evictions + 1;
            unlink t i;
            i
          end
        in
        t.keys.(i) <- key;
        t.values.(i) <- value;
        Hashtbl.replace t.slot_of key i;
        push_front t i

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let flush t m =
  Metrics.add_cache_hits m t.hits;
  Metrics.add_cache_misses m t.misses;
  Metrics.add_cache_evictions m t.evictions;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
