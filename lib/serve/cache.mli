(** Bounded hot-pair LRU cache for the query engine (DESIGN §3h).

    Int keys, int values, fixed capacity, intrusive doubly-linked list
    over preallocated arrays — the serve hot loop does one {!find} per
    query and must not allocate. Counters accumulate locally and are
    pushed to {!Repro_congest.Metrics} by {!flush}. *)

type t

(** [create capacity] — [capacity = 0] disables the cache ({!find}
    always misses, {!add} is a no-op): the "cold" arm of BENCH_serve. *)
val create : int -> t

val capacity : t -> int
val length : t -> int

(** Returned by {!find} on a miss. Values must not equal [absent]
    ([min_int]) — distances and [Digraph.inf] never do. *)
val absent : int

(** [find t key] is the cached value promoted to most-recent, or
    {!absent}; counts one hit or miss. *)
val find : t -> int -> int

(** [add t key value] inserts or refreshes most-recent; evicts the
    least-recent entry when full. *)
val add : t -> int -> int -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** [flush t m] moves the three counters into [m] (adds, then zeroes
    the local ones). *)
val flush : t -> Repro_congest.Metrics.t -> unit
