(** Bit-packed label codec (DESIGN §3h).

    Encodes a {!Repro_core.Labeling.t} toward its O(tau^2 log^2 n)-bit
    bound (Theorem 2): the sorted anchor set is delta-coded (first
    anchor as a varint, then gaps minus one at the minimal per-label
    width), and each distance pair is stored as two minimal-width
    fields — [d_to] with an all-ones sentinel for infinity, and a
    zigzagged [d_from - d_to] residual (anchors close in one direction
    tend to be close in the other, so residuals are short).

    The anchor block and the distance body are separable on purpose:
    sibling vertices share their B^up anchor sets, so the store pools
    anchor blocks and each record keeps only a pool id plus its body. *)

(** {1 Anchor blocks} *)

(** [write_anchors w anchors] appends a strictly increasing anchor set.
    @raise Invalid_argument if not strictly increasing. *)
val write_anchors : Bitio.writer -> int array -> unit

val read_anchors : Bitio.reader -> int array

(** [encode_anchors anchors] is a standalone byte string — also the
    store's pool-dedup key. *)
val encode_anchors : int array -> string

val decode_anchors : string -> int array

(** {1 Distance bodies} *)

(** [write_body w ~anchors la] appends owner and the per-anchor
    distance fields, in [anchors] order. [anchors] must be exactly
    [Labeling.anchors la]. Two body-local compressions: when
    [owner_hint] equals the label's owner (the store passes the record
    index — labels own their own vertex) the owner collapses to one
    bit, and when every [d_from] equals its [d_to] (symmetric graphs:
    E2b's bidirected partial k-trees and wheels) a symmetry bit elides
    the entire residual block. The reader must pass the same
    [owner_hint].
    @raise Invalid_argument if a finite field would exceed 30 bits. *)
val write_body :
  ?owner_hint:int -> Bitio.writer -> anchors:int array -> Repro_core.Labeling.t -> unit

val read_body :
  ?owner_hint:int -> Bitio.reader -> anchors:int array -> Repro_core.Labeling.t

(** {1 Whole labels} *)

(** [encode la] is anchors block followed by body, byte-padded;
    [decode (encode la)] satisfies [Labeling.equal] with [la] whenever
    every distance is either finite or exactly [Digraph.inf]. *)
val encode : Repro_core.Labeling.t -> string

(** @raise Bitio.Truncated on a cut-short stream. *)
val decode : string -> Repro_core.Labeling.t

(** [encoded_bits la] is the exact bit length of [encode la] before
    byte padding — what BENCH_serve compares to tau^2 log^2 n. *)
val encoded_bits : Repro_core.Labeling.t -> int
