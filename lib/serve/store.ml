module Labeling = Repro_core.Labeling

type error =
  | Format_error of string
  | Checksum_mismatch of { what : string; index : int }

exception Error of error

let pp_error fmt = function
  | Format_error msg -> Format.fprintf fmt "store format error: %s" msg
  | Checksum_mismatch { what; index } ->
      Format.fprintf fmt "store checksum mismatch: %s %d" what index

let () =
  Printexc.register_printer (function
    | Error e -> Some (Format.asprintf "Store.Error(%a)" pp_error e)
    | _ -> None)

let err e = raise (Error e)
let fmt_err f = Printf.ksprintf (fun m -> err (Format_error m)) f

let magic = "RSRVLB01"

(* Structural checksum, the transport-integrity idiom: [Hashtbl.hash]
   mixes every byte of a string (strings hash in full, unlike nested
   structures which are cut off at the meaningful-word limit). *)
let crc s = Hashtbl.hash s

let u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Store: u32 field overflow";
  Buffer.add_int32_le buf (Int32.of_int v)

(* ------------------------------------------------------------------ *)
(* Writing *)

let add_section buf ~shard_size labels =
  let count = Array.length labels in
  let anchors_of =
    Array.map (fun la -> Array.of_list (Labeling.anchors la)) labels
  in
  (* anchor-set pool: keyed by the encoded block so identical sets —
     one per sibling group sharing B^up — are stored once. All blocks
     share one unpadded bitstream, decoded sequentially. *)
  let pool_ids = Hashtbl.create (max 16 count) in
  let pool_w = Bitio.writer () in
  let npools = ref 0 in
  let pool_of =
    Array.map
      (fun anchors ->
        let key = Codec.encode_anchors anchors in
        match Hashtbl.find_opt pool_ids key with
        | Some id -> id
        | None ->
            let id = !npools in
            incr npools;
            Hashtbl.add pool_ids key id;
            Codec.write_anchors pool_w anchors;
            id)
      anchors_of
  in
  let pool_data = Bitio.contents pool_w in
  (* records are grouped into shards, each one unpadded bitstream with
     a single offset + checksum — per-record directories cost more
     bytes than the bit-packed records they point at *)
  let nshards = (count + shard_size - 1) / shard_size in
  let shards =
    Array.init nshards (fun s ->
        let w = Bitio.writer () in
        let lo = s * shard_size and hi = min count ((s + 1) * shard_size) in
        for i = lo to hi - 1 do
          Bitio.put_varint w pool_of.(i);
          Codec.write_body ~owner_hint:i w ~anchors:anchors_of.(i) labels.(i)
        done;
        Bitio.contents w)
  in
  u32 buf count;
  u32 buf shard_size;
  u32 buf !npools;
  u32 buf (String.length pool_data);
  u32 buf (crc pool_data);
  Buffer.add_string buf pool_data;
  let off = ref 0 in
  Array.iter
    (fun sh ->
      u32 buf !off;
      off := !off + String.length sh)
    shards;
  u32 buf !off;
  Array.iter (fun sh -> u32 buf (crc sh)) shards;
  Array.iter (Buffer.add_string buf) shards

let save ?(shard_size = 64) ?cdl path dist =
  if shard_size <= 0 then invalid_arg "Store.save: shard_size must be positive";
  (match cdl with
  | Some (q_size, start, labels) ->
      if q_size <= 0 then invalid_arg "Store.save: q_size must be positive";
      if start < 0 || start >= q_size then invalid_arg "Store.save: start state out of range";
      if Array.length labels <> Array.length dist * q_size then
        invalid_arg "Store.save: cdl labels must have n * q_size entries"
  | None -> ());
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  u32 buf (match cdl with Some _ -> 1 | None -> 0);
  u32 buf (Array.length dist);
  u32 buf (match cdl with Some (q, _, _) -> q | None -> 0);
  u32 buf (match cdl with Some (_, s, _) -> s | None -> 0);
  add_section buf ~shard_size dist;
  (match cdl with
  | Some (_, _, labels) -> add_section buf ~shard_size labels
  | None -> ());
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Reading *)

type section = {
  count : int;
  shard_size : int;
  npools : int;
  pool_pos : int;  (* raw pool bitstream, decoded once on first use *)
  pool_len : int;
  pool_crc : int;
  shard_off : int array;  (* nshards + 1 offsets, relative to rec_base *)
  shard_crc : int array;
  rec_base : int;
  mutable pools : int array array option;
  shards : Labeling.t array option array;  (* decoded shards, cached *)
}

type t = {
  data : string;
  s_n : int;
  s_q : int;
  s_start : int;
  dist : section;
  cdl : section option;
}

let ru32 data pos =
  if pos < 0 || pos + 4 > String.length data then
    fmt_err "truncated: u32 at byte %d past end (%d bytes)" pos (String.length data);
  Int32.to_int (String.get_int32_le data pos) land 0xFFFFFFFF

let read_section data pos0 =
  let pos = ref pos0 in
  let next () =
    let v = ru32 data !pos in
    pos := !pos + 4;
    v
  in
  let count = next () in
  let shard_size = next () in
  if shard_size <= 0 then fmt_err "section at %d: shard_size %d" pos0 shard_size;
  let npools = next () in
  let pool_len = next () in
  let pool_crc = next () in
  let pool_pos = !pos in
  pos := !pos + pool_len;
  let nshards = (count + shard_size - 1) / shard_size in
  let shard_off = Array.make (nshards + 1) 0 in
  for s = 0 to nshards do
    shard_off.(s) <- next ()
  done;
  let shard_crc = Array.init nshards (fun _ -> next ()) in
  let rec_base = !pos in
  pos := !pos + shard_off.(nshards);
  if !pos > String.length data then
    fmt_err "section at %d: records run past end of file" pos0;
  ( {
      count;
      shard_size;
      npools;
      pool_pos;
      pool_len;
      pool_crc;
      shard_off;
      shard_crc;
      rec_base;
      pools = None;
      shards = Array.make nshards None;
    },
    !pos )

let open_ path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let ml = String.length magic in
  if String.length data < ml + 16 then fmt_err "file too short for header";
  if not (String.equal (String.sub data 0 ml) magic) then
    fmt_err "bad magic (not a label store, or an unsupported version)";
  let flags = ru32 data ml in
  let s_n = ru32 data (ml + 4) in
  let s_q = ru32 data (ml + 8) in
  let s_start = ru32 data (ml + 12) in
  let has_cdl = flags land 1 <> 0 in
  let dist, pos = read_section data (ml + 16) in
  if dist.count <> s_n then
    fmt_err "distance section has %d records, header says n=%d" dist.count s_n;
  let cdl =
    if not has_cdl then None
    else begin
      let sec, pos' = read_section data pos in
      if pos' > String.length data then fmt_err "cdl section runs past end of file";
      if sec.count <> s_n * s_q then
        fmt_err "cdl section has %d records, expected n*q_size=%d" sec.count (s_n * s_q);
      Some sec
    end
  in
  { data; s_n; s_q; s_start; dist; cdl }

let n t = t.s_n
let has_cdl t = Option.is_some t.cdl
let q_size t = if Option.is_some t.cdl then t.s_q else 0
let start_state t = if Option.is_some t.cdl then t.s_start else 0
let cdl_count t = match t.cdl with Some s -> s.count | None -> 0
let byte_size t = String.length t.data
let pool_count t = t.dist.npools

let pools t sec =
  match sec.pools with
  | Some p -> p
  | None ->
      if sec.pool_pos + sec.pool_len > String.length t.data then
        fmt_err "pool data runs past end of file";
      let s = String.sub t.data sec.pool_pos sec.pool_len in
      if crc s <> sec.pool_crc then err (Checksum_mismatch { what = "pool"; index = 0 });
      let r = Bitio.reader s in
      let p =
        try Array.init sec.npools (fun _ -> Codec.read_anchors r)
        with Bitio.Truncated -> fmt_err "pool data is truncated"
      in
      sec.pools <- Some p;
      p

let load_shard t sec s =
  let lo = sec.shard_off.(s) and hi = sec.shard_off.(s + 1) in
  if lo > hi || sec.rec_base + hi > String.length t.data then
    fmt_err "shard %d has inverted or out-of-range offsets" s;
  let bytes = String.sub t.data (sec.rec_base + lo) (hi - lo) in
  if crc bytes <> sec.shard_crc.(s) then
    err (Checksum_mismatch { what = "shard"; index = s });
  let p = pools t sec in
  let base = s * sec.shard_size in
  let k = min sec.shard_size (sec.count - base) in
  let r = Bitio.reader bytes in
  let arr =
    try
      Array.init k (fun j ->
          let pool_id = Bitio.get_varint r in
          if pool_id < 0 || pool_id >= Array.length p then
            fmt_err "record %d references pool %d of %d" (base + j) pool_id
              (Array.length p);
          Codec.read_body ~owner_hint:(base + j) r ~anchors:p.(pool_id))
    with Bitio.Truncated -> fmt_err "shard %d is truncated" s
  in
  sec.shards.(s) <- Some arr;
  arr

let get_label t sec i =
  if i < 0 || i >= sec.count then fmt_err "record index %d out of range [0,%d)" i sec.count;
  let s = i / sec.shard_size in
  let arr = match sec.shards.(s) with Some a -> a | None -> load_shard t sec s in
  arr.(i - (s * sec.shard_size))

let dist_label t v = get_label t t.dist v

let cdl_label t i =
  match t.cdl with
  | Some sec -> get_label t sec i
  | None -> err (Format_error "store has no CDL section")
