(** Persistent bit-packed label store (DESIGN §3h).

    Versioned binary container for one graph's Theorem-2 distance
    labels, optionally plus the CDL product labels of a constraint.
    Layout is seek-friendly: a fixed header, then per section a
    deduplicated anchor-set pool (sibling vertices share their B^up
    anchor sets, so most labels only pay for a pool id) and the
    records grouped into shards, each shard one unpadded bitstream
    with a single [offset, checksum] index entry — a per-shard index
    keeps directory overhead constant per shard instead of 8 bytes per
    record, which would dwarf the ~30-byte bit-packed records.
    {!open_} parses directory structure only; record bytes stay raw
    until the first {!dist_label}/{!cdl_label} touching their shard,
    which verifies the shard checksum (the transport-integrity idiom:
    [Hashtbl.hash] as a structural checksum), decodes the shard and
    caches it — so seeks are O(1) after a one-time O(shard_size)
    decode, and a flipped byte surfaces as {!Checksum_mismatch}, never
    as a wrong distance. *)

type error =
  | Format_error of string  (** bad magic, truncation, out-of-range field *)
  | Checksum_mismatch of { what : string; index : int }
      (** [what] is ["shard"] or ["pool"]; [index] the shard number
          (records [index * shard_size ..]) or 0 for the pool *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

(** The 8-byte file magic ("RSRVLB" + format version) — sniff it to
    tell a binary store from a legacy text label file. *)
val magic : string

(** {1 Writing} *)

(** [save path dist] writes the store.
    [cdl = (q_size, start, product_labels)] appends the
    constrained-label section: the constraint's state count and start
    state, and the product labels with vertex [(v, q)] at index
    [v * q_size + q] ({!Repro_core.Cdl.labels} order). [shard_size] is
    records per shard (default 64). *)
val save :
  ?shard_size:int -> ?cdl:int * int * Repro_core.Labeling.t array -> string ->
  Repro_core.Labeling.t array -> unit

(** {1 Reading} *)

type t

(** [open_ path] reads the header and shard directories; no pool or
    record is decoded.
    @raise Error on bad magic or truncated directory. *)
val open_ : string -> t

(** Number of distance labels (= graph vertices). *)
val n : t -> int

val has_cdl : t -> bool

(** Constraint state count; 0 when the store has no CDL section. *)
val q_size : t -> int

(** The constraint DFA's start state (0 without a CDL section). *)
val start_state : t -> int

(** Number of CDL records ([n * q_size], 0 without a CDL section). *)
val cdl_count : t -> int

(** [dist_label t v] is vertex [v]'s label; the first access to a
    shard verifies its checksum and decodes it.
    @raise Error on corruption or out-of-range [v]. *)
val dist_label : t -> int -> Repro_core.Labeling.t

(** [cdl_label t i] decodes product-vertex record [i = v * q_size + q].
    @raise Error on corruption, out-of-range [i], or a store without a
    CDL section. *)
val cdl_label : t -> int -> Repro_core.Labeling.t

(** Total file size in bytes — the numerator of the BENCH_serve
    size-vs-bound trajectory. *)
val byte_size : t -> int

(** [pool_count t] is the number of distinct anchor sets in the
    distance section's pool (vs [n] labels — the dedup ratio). *)
val pool_count : t -> int
