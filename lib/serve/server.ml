type stats = { answered : int; errors : int }

let run ?cache ?(flush_each = true) src input output =
  let answered = ref 0 and errors = ref 0 in
  (try
     while true do
       let line = input_line input in
       if String.trim line <> "" then begin
         (match Query.parse src line with
         | Ok q ->
             output_string output (Query.print_answer (Query.answer ?cache src q));
             incr answered
         | Error msg ->
             output_string output ("ERR " ^ msg);
             incr errors);
         output_char output '\n';
         if flush_each then flush output
       end
     done
   with End_of_file -> ());
  flush output;
  { answered = !answered; errors = !errors }
