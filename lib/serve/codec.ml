module Labeling = Repro_core.Labeling
module Digraph = Repro_graph.Digraph

let inf = Digraph.inf

(* Width of the field that stores another field's width. *)
let width_bits = 6

let write_anchors w anchors =
  let k = Array.length anchors in
  Bitio.put_varint w k;
  if k > 0 then begin
    Bitio.put_varint w anchors.(0);
    if k > 1 then begin
      let max_gap = ref 1 in
      for i = 1 to k - 1 do
        let g = anchors.(i) - anchors.(i - 1) in
        if g <= 0 then invalid_arg "Codec.write_anchors: not strictly increasing";
        if g > !max_gap then max_gap := g
      done;
      let wa = Bitio.bits_needed (!max_gap - 1) in
      if wa > 30 then invalid_arg "Codec.write_anchors: gap width exceeds 30 bits";
      Bitio.put w ~bits:width_bits wa;
      for i = 1 to k - 1 do
        Bitio.put w ~bits:wa (anchors.(i) - anchors.(i - 1) - 1)
      done
    end
  end

let read_anchors r =
  let k = Bitio.get_varint r in
  if k = 0 then [||]
  else begin
    let out = Array.make k 0 in
    out.(0) <- Bitio.get_varint r;
    if k > 1 then begin
      let wa = Bitio.get r ~bits:width_bits in
      if wa > 30 then invalid_arg "Codec.read_anchors: corrupt width field";
      for i = 1 to k - 1 do
        out.(i) <- out.(i - 1) + 1 + Bitio.get r ~bits:wa
      done
    end;
    out
  end

let encode_anchors anchors =
  let w = Bitio.writer () in
  write_anchors w anchors;
  Bitio.contents w

let decode_anchors s = read_anchors (Bitio.reader s)

let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag z = if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

(* Any distance at or past [inf] means unreachable; the decoder
   restores exactly [Digraph.inf]. *)
let clamp d = if d >= inf then inf else d

let field_width what m =
  let w = Bitio.bits_needed (m + 1) in
  if w > 30 then invalid_arg (Printf.sprintf "Codec.write_body: %s field needs %d bits" what w);
  w

let write_body ?owner_hint w ~anchors la =
  (match owner_hint with
  | Some h when Labeling.owner la = h -> Bitio.put w ~bits:1 1
  | _ ->
      Bitio.put w ~bits:1 0;
      Bitio.put_varint w (Labeling.owner la));
  let k = Array.length anchors in
  if k > 0 then begin
    let f1 = Array.make k (-1) and f2 = Array.make k (-1) in
    let max1 = ref 0 and max2 = ref 0 and sym = ref true in
    for i = 0 to k - 1 do
      let a = anchors.(i) in
      let d_to =
        match Labeling.dist_to la a with
        | Some d -> clamp d
        | None -> invalid_arg "Codec.write_body: anchor absent from label"
      in
      let d_from = match Labeling.dist_from la a with Some d -> clamp d | None -> inf in
      if d_from <> d_to then sym := false;
      if d_to < inf then begin
        f1.(i) <- d_to;
        if d_to > !max1 then max1 := d_to
      end;
      if d_from < inf then begin
        let v2 = if d_to < inf then zigzag (d_from - d_to) else d_from in
        f2.(i) <- v2;
        if v2 > !max2 then max2 := v2
      end
    done;
    let w1 = field_width "d_to" !max1 in
    let s1 = (1 lsl w1) - 1 in
    Bitio.put w ~bits:width_bits w1;
    Bitio.put w ~bits:1 (if !sym then 1 else 0);
    if !sym then
      for i = 0 to k - 1 do
        Bitio.put w ~bits:w1 (if f1.(i) < 0 then s1 else f1.(i))
      done
    else begin
      let w2 = field_width "residual" !max2 in
      let s2 = (1 lsl w2) - 1 in
      Bitio.put w ~bits:width_bits w2;
      for i = 0 to k - 1 do
        Bitio.put w ~bits:w1 (if f1.(i) < 0 then s1 else f1.(i));
        Bitio.put w ~bits:w2 (if f2.(i) < 0 then s2 else f2.(i))
      done
    end
  end

let read_body ?owner_hint r ~anchors =
  let owner =
    if Bitio.get r ~bits:1 = 1 then
      match owner_hint with
      | Some h -> h
      | None -> invalid_arg "Codec.read_body: owner-hint bit set but no hint supplied"
    else Bitio.get_varint r
  in
  let la = Labeling.create owner in
  let k = Array.length anchors in
  if k > 0 then begin
    let w1 = Bitio.get r ~bits:width_bits in
    if w1 > 30 then invalid_arg "Codec.read_body: corrupt width field";
    let s1 = (1 lsl w1) - 1 in
    if Bitio.get r ~bits:1 = 1 then
      for i = 0 to k - 1 do
        let v1 = Bitio.get r ~bits:w1 in
        let d = if v1 = s1 then inf else v1 in
        Labeling.set la ~anchor:anchors.(i) ~d_to:d ~d_from:d
      done
    else begin
      let w2 = Bitio.get r ~bits:width_bits in
      if w2 > 30 then invalid_arg "Codec.read_body: corrupt width field";
      let s2 = (1 lsl w2) - 1 in
      for i = 0 to k - 1 do
        let v1 = Bitio.get r ~bits:w1 in
        let v2 = Bitio.get r ~bits:w2 in
        let d_to = if v1 = s1 then inf else v1 in
        let d_from =
          if v2 = s2 then inf else if d_to < inf then d_to + unzigzag v2 else v2
        in
        Labeling.set la ~anchor:anchors.(i) ~d_to ~d_from
      done
    end
  end;
  la

let write w la =
  let anchors = Array.of_list (Labeling.anchors la) in
  write_anchors w anchors;
  write_body w ~anchors la

let encode la =
  let w = Bitio.writer () in
  write w la;
  Bitio.contents w

let decode s =
  let r = Bitio.reader s in
  let anchors = read_anchors r in
  read_body r ~anchors

let encoded_bits la =
  let w = Bitio.writer () in
  write w la;
  Bitio.bit_length w
