module Labeling = Repro_core.Labeling
module Digraph = Repro_graph.Digraph

type cdl_source = { q_size : int; start : int; label : int -> Labeling.t }
type source = { n : int; dist : int -> Labeling.t; cdl : cdl_source option }

let of_store st =
  {
    n = Store.n st;
    dist = Store.dist_label st;
    cdl =
      (if Store.has_cdl st then
         Some
           {
             q_size = Store.q_size st;
             start = Store.start_state st;
             label = Store.cdl_label st;
           }
       else None);
  }

let of_text labels = { n = Array.length labels; dist = Array.get labels; cdl = None }

type t = Dist of { u : int; v : int } | Cdl of { u : int; v : int; q : int }

let parse src line =
  let ( let* ) = Result.bind in
  let field op name hi s =
    match int_of_string_opt s with
    | None -> Error (Printf.sprintf "%s: %s: expected an int, got %S" op name s)
    | Some x when x < 0 || x >= hi ->
        Error (Printf.sprintf "%s: %s: %d out of range [0,%d)" op name x hi)
    | Some x -> Ok x
  in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ "DIST"; u; v ] ->
      let* u = field "DIST" "u" src.n u in
      let* v = field "DIST" "v" src.n v in
      Ok (Dist { u; v })
  | "DIST" :: rest ->
      Error (Printf.sprintf "DIST: expected 2 fields (u v), got %d" (List.length rest))
  | [ "CDL"; u; v; q ] -> (
      match src.cdl with
      | None -> Error "CDL: this source has no constrained labels"
      | Some c ->
          let* u = field "CDL" "u" src.n u in
          let* v = field "CDL" "v" src.n v in
          let* q = field "CDL" "q" c.q_size q in
          Ok (Cdl { u; v; q }))
  | "CDL" :: rest ->
      Error (Printf.sprintf "CDL: expected 3 fields (u v q), got %d" (List.length rest))
  | op :: _ -> Error (Printf.sprintf "unknown op %S: expected DIST or CDL" op)
  | [] -> Error "empty query"

let key src q =
  match q with
  | Dist { u; v } -> (u * src.n) + v
  | Cdl { u; v; q } ->
      let qs = match src.cdl with Some c -> c.q_size | None -> 1 in
      (src.n * src.n) + ((((u * src.n) + v) * qs) + q)

let compute src q =
  match q with
  | Dist { u; v } -> Labeling.decode (src.dist u) (src.dist v)
  | Cdl { u; v; q } -> (
      match src.cdl with
      | None -> invalid_arg "Query.answer: CDL query against a source without CDL labels"
      | Some c ->
          Labeling.decode
            (c.label ((u * c.q_size) + c.start))
            (c.label ((v * c.q_size) + q)))

let answer ?cache src q =
  match cache with
  | None -> compute src q
  | Some c ->
      let k = key src q in
      let v = Cache.find c k in
      if v <> Cache.absent then v
      else begin
        let v = compute src q in
        Cache.add c k v;
        v
      end

let print_answer d = if d >= Digraph.inf then "inf" else string_of_int d
