(** Query engine: answers DIST / CDL queries from labels alone
    (DESIGN §3h).

    A {!source} abstracts where labels come from — the binary
    {!Store.t} or the legacy text format ({!Repro_core.Dl.load_text}) —
    so the server is format-agnostic. Soundness rests on the labels,
    not the serving layer: a label array produced by the certified
    pipeline answers every query exactly (Theorem 2 / Theorem 3), and
    the store's checksums guarantee the served labels are the ones that
    were certified. *)

type cdl_source = {
  q_size : int;
  start : int;  (** the constraint DFA's start state *)
  label : int -> Repro_core.Labeling.t;  (** product index [(v, q) = v * q_size + q] *)
}

type source = {
  n : int;
  dist : int -> Repro_core.Labeling.t;
  cdl : cdl_source option;
}

val of_store : Store.t -> source

(** [of_text labels] wraps a legacy text-format label array (distance
    labels only — the text format predates CDL serving). *)
val of_text : Repro_core.Labeling.t array -> source

(** {1 Queries} *)

type t =
  | Dist of { u : int; v : int }
  | Cdl of { u : int; v : int; q : int }  (** walk ends in state [q] *)

(** [parse source line] parses ["DIST u v"] or ["CDL u v q"]
    (whitespace-separated, ops case-sensitive). Errors name the bad
    field, e.g. [DIST: v: expected an int, got "x"]. *)
val parse : source -> string -> (t, string) result

(** [key source q] is the query's injective int encoding — the cache
    key: [u * n + v] for DIST, [n^2 + (u * n + v) * q_size + q] for
    CDL. *)
val key : source -> t -> int

(** [answer ?cache source q] decodes the exact distance
    ([Digraph.inf] when unreachable), consulting and filling the
    hot-pair cache when given.
    @raise Invalid_argument on a CDL query against a source without
    CDL labels ({!parse} already rejects those). *)
val answer : ?cache:Cache.t -> source -> t -> int

(** [print_answer d] is ["inf"] for unreachable, else the decimal
    distance — one output line per query. *)
val print_answer : int -> string
