(** Bit-level I/O for the label codec (DESIGN §3h).

    A writer appends fields of explicit bit widths, LSB-first inside
    each byte; a reader consumes the same stream. Varints are LEB128
    groups embedded in the bitstream: 8 bits per group, low 7 bits of
    data, high bit = continue. Both sides must agree on field order and
    widths — there is no in-band typing. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

(** [put w ~bits v] appends the low [bits] bits of [v] (LSB first).
    [0 <= bits <= 30] and [0 <= v < 2^bits]. *)
val put : writer -> bits:int -> int -> unit

(** [put_varint w v] appends a non-negative int as LEB128 groups. *)
val put_varint : writer -> int -> unit

(** [contents w] pads the final partial byte with zeros and returns the
    stream. The writer stays usable; later [put]s continue after the
    padding only if the bit length was already byte-aligned. *)
val contents : writer -> string

val bit_length : writer -> int

(** {1 Reading} *)

type reader

(** Raised by {!get}/{!get_varint} past the end of the stream. *)
exception Truncated

(** [reader s] starts at bit 0 of [s]. *)
val reader : string -> reader

(** [get r ~bits] consumes and returns the next [bits]-bit field.
    @raise Truncated if fewer than [bits] bits remain. *)
val get : reader -> bits:int -> int

(** [get_varint r] consumes a LEB128 varint.
    @raise Truncated on a group cut short. *)
val get_varint : reader -> int

(** [bits_left r] is the number of unread bits. *)
val bits_left : reader -> int

(** {1 Width arithmetic} *)

(** [bits_needed v] is the smallest width that can hold [v]
    ([bits_needed 0 = 1]). *)
val bits_needed : int -> int
