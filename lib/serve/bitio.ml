type writer = { buf : Buffer.t; mutable acc : int; mutable used : int }

let writer () = { buf = Buffer.create 256; acc = 0; used = 0 }

let put w ~bits v =
  if bits < 0 || bits > 30 then invalid_arg "Bitio.put: width out of range";
  if v < 0 || v lsr bits <> 0 then invalid_arg "Bitio.put: value out of range";
  w.acc <- w.acc lor (v lsl w.used);
  w.used <- w.used + bits;
  while w.used >= 8 do
    Buffer.add_char w.buf (Char.chr (w.acc land 0xff));
    w.acc <- w.acc lsr 8;
    w.used <- w.used - 8
  done

let rec put_varint w v =
  if v < 0 then invalid_arg "Bitio.put_varint: negative";
  if v < 0x80 then put w ~bits:8 v
  else begin
    put w ~bits:8 (0x80 lor (v land 0x7f));
    put_varint w (v lsr 7)
  end

let bit_length w = (8 * Buffer.length w.buf) + w.used

let contents w =
  if w.used = 0 then Buffer.contents w.buf
  else Buffer.contents w.buf ^ String.make 1 (Char.chr (w.acc land 0xff))

type reader = { s : string; mutable pos : int }

exception Truncated

let reader s = { s; pos = 0 }
let bits_left r = (8 * String.length r.s) - r.pos

(* Accumulator recursion instead of refs: the serve hot loop decodes a
   label per cache miss and this must not allocate. *)
let rec get_loop r bits acc got =
  if got >= bits then acc
  else begin
    let byte = Char.code (String.unsafe_get r.s (r.pos lsr 3)) in
    let off = r.pos land 7 in
    let avail = 8 - off in
    let want = bits - got in
    let take = if want < avail then want else avail in
    let piece = (byte lsr off) land ((1 lsl take) - 1) in
    r.pos <- r.pos + take;
    get_loop r bits (acc lor (piece lsl got)) (got + take)
  end
[@@hot]

let get r ~bits =
  if bits_left r < bits then raise Truncated;
  get_loop r bits 0 0
[@@hot]

let rec get_varint r =
  let g = get r ~bits:8 in
  if g < 0x80 then g else (g land 0x7f) lor (get_varint r lsl 7)
[@@hot]

let bits_needed v =
  if v < 0 then invalid_arg "Bitio.bits_needed: negative";
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  if v = 0 then 1 else go v 0
