module Digraph = Repro_graph.Digraph

(* Flow network with explicit residual arcs. *)
type arc = { dst : int; mutable cap : int; twin : int }

type network = { arcs : arc array ref; adj : int list array; mutable arc_count : int }

let big = Digraph.inf

let make_network nodes = { arcs = ref [||]; adj = Array.make nodes []; arc_count = 0 }

let add_arc net src dst cap =
  let i = net.arc_count in
  let fwd = { dst; cap; twin = i + 1 } in
  let bwd = { dst = src; cap = 0; twin = i } in
  let arr = !(net.arcs) in
  let len = Array.length arr in
  if i + 1 >= len then begin
    let bigger = Array.make (max 16 (2 * (len + 2))) fwd in
    Array.blit arr 0 bigger 0 len;
    net.arcs := bigger
  end;
  !(net.arcs).(i) <- fwd;
  !(net.arcs).(i + 1) <- bwd;
  net.adj.(src) <- i :: net.adj.(src);
  net.adj.(dst) <- (i + 1) :: net.adj.(dst);
  net.arc_count <- net.arc_count + 2

(* one BFS augmenting path of value 1; returns true if pushed *)
let augment net ~source ~sink =
  let nodes = Array.length net.adj in
  let pred_arc = Array.make nodes (-1) in
  let visited = Array.make nodes false in
  visited.(source) <- true;
  let queue = Queue.create () in
  Queue.add source queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun ai ->
        let a = !(net.arcs).(ai) in
        if a.cap > 0 && not visited.(a.dst) then begin
          visited.(a.dst) <- true;
          pred_arc.(a.dst) <- ai;
          if a.dst = sink then found := true else Queue.add a.dst queue
        end)
      net.adj.(v)
  done;
  if !found then begin
    let v = ref sink in
    while !v <> source do
      let ai = pred_arc.(!v) in
      let a = !(net.arcs).(ai) in
      a.cap <- a.cap - 1;
      !(net.arcs).(a.twin).cap <- !(net.arcs).(a.twin).cap + 1;
      v := (!(net.arcs).(a.twin)).dst
    done;
    true
  end
  else false

let min_cut g ~mask ~sources ~sinks ~limit =
  let n = Digraph.n g in
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let is_source = Array.make n false and is_sink = Array.make n false in
  List.iter (fun v -> is_source.(v) <- true) sources;
  List.iter (fun v -> is_sink.(v) <- true) sinks;
  let overlap = List.exists (fun v -> is_sink.(v)) sources in
  let touching =
    Array.exists
      (fun e ->
        let u = e.Digraph.src and v = e.Digraph.dst in
        mask.(u) && mask.(v)
        && ((is_source.(u) && is_sink.(v)) || (is_sink.(u) && is_source.(v))))
      (Digraph.edges skeleton)
  in
  if overlap || touching then None
  else begin
    (* nodes: v_in = 2v, v_out = 2v+1, super source = 2n, super sink = 2n+1 *)
    let v_in v = 2 * v and v_out v = (2 * v) + 1 in
    let s = 2 * n and t = (2 * n) + 1 in
    let net = make_network ((2 * n) + 2) in
    for v = 0 to n - 1 do
      if mask.(v) then
        if is_source.(v) then add_arc net s (v_out v) big
        else if is_sink.(v) then add_arc net (v_in v) t big
        else add_arc net (v_in v) (v_out v) 1
    done;
    Array.iter
      (fun e ->
        let u = e.Digraph.src and v = e.Digraph.dst in
        if mask.(u) && mask.(v) then begin
          add_arc net (v_out u) (v_in v) big;
          add_arc net (v_out v) (v_in u) big
        end)
      (Digraph.edges skeleton);
    let flow = ref 0 in
    let blocked = ref false in
    while (not !blocked) && !flow <= limit do
      if augment net ~source:s ~sink:t then incr flow else blocked := true
    done;
    if !flow > limit then None
    else begin
      (* residual reachability from s: cut vertex = in-side reachable,
         out-side not *)
      let nodes = (2 * n) + 2 in
      let reach = Array.make nodes false in
      reach.(s) <- true;
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun ai ->
            let a = !(net.arcs).(ai) in
            if a.cap > 0 && not reach.(a.dst) then begin
              reach.(a.dst) <- true;
              Queue.add a.dst queue
            end)
          net.adj.(v)
      done;
      let cut = ref [] in
      for v = n - 1 downto 0 do
        if mask.(v) && (not is_source.(v)) && (not is_sink.(v))
           && reach.(v_in v) && not (reach.(v_out v))
        then cut := v :: !cut
      done;
      Some !cut
    end
  end
