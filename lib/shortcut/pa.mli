(** Part-wise aggregation (PA) — the core communication primitive of the
    paper (Section 2.3), here implemented as pipelined per-part
    aggregation over a global BFS tree ("tree-restricted shortcuts",
    [HIZ16]); see DESIGN.md Section 3 for the substitution argument.

    The up-phase (convergecast) and down-phase (broadcast of the result
    back to every member) are simulated message by message: each tree
    edge carries one tagged word per round per direction, so the round
    count is {e measured}, with dilation = tree depth and congestion =
    the number of parts whose Steiner subtree crosses an edge. *)

type stats = {
  depth : int;  (** BFS-tree depth (dilation) *)
  max_load : int;  (** max #parts crossing a tree edge (congestion) *)
  rounds_up : int;  (** measured convergecast rounds *)
  rounds_down : int;  (** measured broadcast-back rounds *)
}

(** [loads tree parts] computes dilation and congestion without running
    the aggregation (used for charge formulas of derived primitives);
    [rounds_up]/[rounds_down] are 0. *)
val loads : Repro_congest.Bfs_tree.tree -> Part.t -> stats

(** [aggregate ?tree parts ~op ~value ~metrics ~label] returns the
    per-part aggregate [fold op (value p v) over members v of p] (folded
    in an unspecified order — [op] must be associative and commutative)
    together with the measured statistics. Every member of part [p]
    learns entry [p] of the result. Rounds are charged to [metrics] under
    [label]. When [tree] is omitted a BFS tree rooted at vertex 0 is
    built (message-level, also charged). *)
val aggregate :
  ?tree:Repro_congest.Bfs_tree.tree ->
  Part.t ->
  op:('a -> 'a -> 'a) ->
  value:(part:int -> vertex:int -> 'a) ->
  metrics:Repro_congest.Metrics.t ->
  label:string ->
  'a array * stats
