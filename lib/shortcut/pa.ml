module Digraph = Repro_graph.Digraph
module Bfs_tree = Repro_congest.Bfs_tree
module Metrics = Repro_congest.Metrics

type stats = { depth : int; max_load : int; rounds_up : int; rounds_down : int }

(* For every part, the Steiner tree of its members within the BFS tree:
   first mark the member-to-root paths, then trim the shared chain above
   the members' meeting point (LCA). Aggregation completes at the
   part's apex (the top of its Steiner tree) instead of the global root,
   which keeps congestion proportional to how much the parts' regions
   overlap — the tree-restricted-shortcut behaviour of [HIZ16] — rather
   than to the number of parts. *)
let steiner_marks tree (parts : Part.t) =
  let root = tree.Bfs_tree.root in
  let marked = Hashtbl.create 256 in
  let member = Hashtbl.create 256 in
  Array.iteri
    (fun p members ->
      Array.iter
        (fun u ->
          Hashtbl.replace member (u, p) ();
          let v = ref u in
          let continue = ref true in
          while !continue && !v <> root do
            if Hashtbl.mem marked (!v, p) then continue := false
            else begin
              Hashtbl.add marked (!v, p) ();
              v := tree.Bfs_tree.parent.(!v)
            end
          done)
        members)
    parts.Part.members;
  (* children within the marked set, per part *)
  let marked_children = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (v, p) () ->
      let parent = tree.Bfs_tree.parent.(v) in
      if parent >= 0 && v <> root then
        match Hashtbl.find_opt marked_children (parent, p) with
        | Some l -> l := v :: !l
        | None -> Hashtbl.add marked_children (parent, p) (ref [ v ]))
    marked;
  let children_of v p =
    match Hashtbl.find_opt marked_children (v, p) with Some l -> !l | None -> []
  in
  (* trim: walk from the root down the single-child chain of non-member
     vertices; the first branching point or member is the apex *)
  let apex = Array.make (Part.count parts) root in
  Array.iteri
    (fun p members ->
      if Array.length members = 1 && members.(0) = root then apex.(p) <- root
      else begin
        let rec descend v =
          match children_of v p with
          | [ c ] when not (Hashtbl.mem member (v, p)) ->
              if v <> root then begin
                Hashtbl.remove marked (v, p);
                Hashtbl.remove marked_children (v, p)
              end;
              descend c
          | _ -> apex.(p) <- v
        in
        match children_of root p with
        | [ c ] when not (Hashtbl.mem member (root, p)) -> descend c
        | [] -> apex.(p) <- (if Array.length members > 0 then members.(0) else root)
        | _ -> apex.(p) <- root
      end)
    parts.Part.members;
  (* the apex never uses its up-edge: drop its mark so measured congestion
     reflects edges actually carrying the tag *)
  Array.iteri (fun p a -> Hashtbl.remove marked (a, p)) apex;
  (marked, marked_children, apex)

let loads_of marked n =
  let per_vertex = Array.make n 0 in
  Hashtbl.iter (fun (v, _) () -> per_vertex.(v) <- per_vertex.(v) + 1) marked;
  Array.fold_left max 0 per_vertex

(* Lemma 7 (near-disjoint collections): a vertex shared between parts
   hands its contribution to a private neighbor of each part in one
   parallel round, so the aggregation itself runs over the vertex-disjoint
   private member sets. Returns the reduced collection, the delegation map
   (shared vertex -> receiving private member per part) and whether any
   delegation happened. *)
let delegate_shared (parts : Part.t) =
  let g = parts.Part.graph in
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let belongs = Part.parts_of parts in
  let shared v = List.length belongs.(v) > 1 in
  if not (Array.exists shared (Array.init (Digraph.n g) Fun.id)) then (parts, [||], false)
  else begin
    let delegations = Array.map (fun _ -> []) parts.Part.members in
    let reduced =
      Array.mapi
        (fun p members ->
          let private_set = Hashtbl.create 16 in
          Array.iter (fun v -> if not (shared v) then Hashtbl.replace private_set v ()) members;
          let kept = ref [] in
          Array.iter
            (fun v ->
              if not (shared v) then kept := v :: !kept
              else begin
                let receiver =
                  Array.to_list (Digraph.neighbors skeleton v)
                  |> List.find_opt (fun u -> Hashtbl.mem private_set u)
                in
                match receiver with
                | Some u -> delegations.(p) <- (v, u) :: delegations.(p)
                | None -> kept := v :: !kept (* no private neighbor: keep *)
              end)
            members;
          Array.of_list (List.rev !kept))
        parts.Part.members
    in
    (* drop empty parts? keep indices stable: an all-shared part keeps its
       members (each had no private neighbor) *)
    let reduced =
      Array.mapi
        (fun p m -> if Array.length m = 0 then parts.Part.members.(p) else m)
        reduced
    in
    ({ parts with Part.members = reduced }, delegations, true)
  end


(* Intra-part routing: a connected part can aggregate over its own BFS
   spanning tree; disjoint parts do so in perfect parallel (congestion 1).
   Returns the maximum part-tree depth, or None if some part is not
   connected inside the skeleton (then only the Steiner route applies). *)
let intra_part_depth (parts : Part.t) =
  let g = parts.Part.graph in
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let n = Digraph.n skeleton in
  let dist = Array.make n (-1) in
  let worst = ref 0 in
  let ok = ref true in
  Array.iter
    (fun members ->
      if !ok && Array.length members > 0 then begin
        let inside = Hashtbl.create (Array.length members) in
        Array.iter (fun v -> Hashtbl.replace inside v ()) members;
        let queue = Queue.create () in
        dist.(members.(0)) <- 0;
        Queue.add members.(0) queue;
        let seen = ref 1 in
        let local_depth = ref 0 in
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          if dist.(v) > !local_depth then local_depth := dist.(v);
          Array.iter
            (fun u ->
              if Hashtbl.mem inside u && dist.(u) < 0 then begin
                dist.(u) <- dist.(v) + 1;
                incr seen;
                Queue.add u queue
              end)
            (Digraph.neighbors skeleton v)
        done;
        Array.iter (fun v -> dist.(v) <- -1) members;
        if !seen < Array.length members then ok := false
        else if !local_depth > !worst then worst := !local_depth
      end)
    parts.Part.members;
  if !ok then Some !worst else None

let loads tree parts =
  let parts, _, _ = delegate_shared parts in
  let marked, _, _ = steiner_marks tree parts in
  let steiner_load = loads_of marked (Array.length tree.Bfs_tree.parent) in
  let steiner = (tree.Bfs_tree.depth, steiner_load) in
  let depth, max_load =
    match intra_part_depth parts with
    | Some d when d + 1 < fst steiner + snd steiner -> (d, 1)
    | _ -> steiner
  in
  { depth; max_load; rounds_up = 0; rounds_down = 0 }

let aggregate ?tree (parts : Part.t) ~op ~value ~metrics ~label =
  let g = parts.Part.graph in
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let tree =
    match tree with Some t -> t | None -> Bfs_tree.build skeleton ~root:0 ~metrics
  in
  let original = parts in
  let parts, delegations, delegated = delegate_shared parts in
  (* fold delegated contributions into their receivers *)
  let extra = Hashtbl.create 16 in
  Array.iteri
    (fun p ds ->
      List.iter
        (fun (v, u) ->
          let x = value ~part:p ~vertex:v in
          match Hashtbl.find_opt extra (u, p) with
          | Some y -> Hashtbl.replace extra (u, p) (op y x)
          | None -> Hashtbl.add extra (u, p) x)
        ds)
    delegations;
  let value ~part ~vertex =
    let own = value ~part ~vertex in
    match Hashtbl.find_opt extra (vertex, part) with
    | Some y -> op own y
    | None -> own
  in
  let n = Array.length tree.Bfs_tree.parent in
  let num_parts = Part.count parts in
  let marked, marked_children, apex = steiner_marks tree parts in
  let max_load = loads_of marked n in
  let children_of v p =
    match Hashtbl.find_opt marked_children (v, p) with Some l -> !l | None -> []
  in
  (* partial aggregates, seeded with own contributions *)
  let acc = Hashtbl.create 256 in
  let fold_in key x =
    match Hashtbl.find_opt acc key with
    | Some y -> Hashtbl.replace acc key (op y x)
    | None -> Hashtbl.replace acc key x
  in
  Array.iteri
    (fun p members ->
      Array.iter (fun v -> fold_in (v, p) (value ~part:p ~vertex:v)) members)
    parts.Part.members;
  (* sites = marked vertices plus each apex *)
  let sites = Hashtbl.create 256 in
  Hashtbl.iter (fun (v, p) () -> Hashtbl.replace sites (v, p) ()) marked;
  Array.iteri (fun p a -> Hashtbl.replace sites (a, p) ()) apex;
  let left = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (v, p) () -> Hashtbl.replace left (v, p) (ref (List.length (children_of v p))))
    sites;
  let queues = Array.make n [] in
  let push v p = queues.(v) <- queues.(v) @ [ p ] in
  Hashtbl.iter
    (fun (v, p) r -> if !r = 0 && v <> apex.(p) then push v p)
    left;
  (* --- up phase: one tagged word per tree edge per round --- *)
  let rounds_up = ref 0 in
  let messages = ref 0 in
  let some_queue qs = Array.exists (fun q -> q <> []) qs in
  while some_queue queues do
    incr rounds_up;
    let deliveries = ref [] in
    Array.iteri
      (fun v q ->
        match q with
        | [] -> ()
        | p :: rest ->
            queues.(v) <- rest;
            incr messages;
            deliveries :=
              (tree.Bfs_tree.parent.(v), p, Hashtbl.find acc (v, p)) :: !deliveries)
      (Array.copy queues);
    List.iter
      (fun (parent, p, x) ->
        fold_in (parent, p) x;
        match Hashtbl.find_opt left (parent, p) with
        | Some r ->
            decr r;
            if !r = 0 && parent <> apex.(p) then push parent p
        | None -> ())
      !deliveries
  done;
  let results =
    Array.init num_parts (fun p ->
        match Hashtbl.find_opt acc (apex.(p), p) with
        | Some x -> x
        | None ->
            (* degenerate fallback: fold directly *)
            let members = parts.Part.members.(p) in
            Array.fold_left
              (fun acc_opt v ->
                let x = value ~part:p ~vertex:v in
                match acc_opt with None -> Some x | Some y -> Some (op y x))
              None members
            |> Option.get)
  in
  (* --- down phase: stream (part, result) back down the Steiner tree.
     Bandwidth is per edge: a vertex may push different parts' results to
     different children in the same round, so each (vertex, child) edge
     has its own FIFO. --- *)
  let edge_queues : (int * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let enqueue v c p =
    match Hashtbl.find_opt edge_queues (v, c) with
    | Some q -> q := !q @ [ p ]
    | None -> Hashtbl.add edge_queues (v, c) (ref [ p ])
  in
  Array.iteri
    (fun p a -> List.iter (fun c -> enqueue a c p) (children_of a p))
    apex;
  let rounds_down = ref 0 in
  let some_edge () = Hashtbl.fold (fun _ q acc -> acc || !q <> []) edge_queues false in
  while some_edge () do
    incr rounds_down;
    let deliveries = ref [] in
    Hashtbl.iter
      (fun (_, c) q ->
        match !q with
        | [] -> ()
        | p :: rest ->
            q := rest;
            incr messages;
            deliveries := (c, p) :: !deliveries)
      edge_queues;
    List.iter
      (fun (c, p) -> List.iter (fun c' -> enqueue c c' p) (children_of c p))
      !deliveries
  done;
  let delegation_rounds = if delegated then 2 else 0 in
  ignore original;
  (* race the two routes: Steiner (simulated above) vs intra-part trees;
     a distributed implementation runs both and keeps the first finisher *)
  let rounds_up, rounds_down =
    match intra_part_depth parts with
    | Some d when (2 * (d + 1)) < !rounds_up + !rounds_down -> (d + 1, d + 1)
    | _ -> (!rounds_up, !rounds_down)
  in
  Metrics.add metrics ~label (rounds_up + rounds_down + delegation_rounds);
  Metrics.add_messages metrics !messages;
  ( results,
    { depth = tree.Bfs_tree.depth; max_load; rounds_up; rounds_down } )
