module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Bfs_tree = Repro_congest.Bfs_tree
module Metrics = Repro_congest.Metrics

type basis = { depth : int; max_load : int; n : int }

let ceil_log2 x =
  let rec go acc v = if v >= x then acc else go (acc + 1) (2 * v) in
  if x <= 1 then 1 else go 0 1

let basis ?tree (parts : Part.t) ~metrics =
  let g = parts.Part.graph in
  let skeleton = if Digraph.directed g then Digraph.skeleton g else g in
  let tree =
    match tree with Some t -> t | None -> Bfs_tree.build skeleton ~root:0 ~metrics
  in
  let stats = Pa.loads tree parts in
  { depth = stats.Pa.depth; max_load = stats.Pa.max_load; n = Digraph.n g }

let pa_rounds b = 2 * (b.depth + b.max_load)
let lemma8_rounds b = ceil_log2 b.n * pa_rounds b
let bct_rounds b ~h = (2 * b.depth) + (h * b.max_load)
let mvc_rounds b ~h ~t = (t * 2 * b.depth) + (h * t * b.max_load)

let schedule charges =
  List.fold_left (fun (dmax, csum) (d, c) -> (max dmax d, csum + c)) (0, 0) charges
  |> fun (dmax, csum) -> dmax + csum

let elect ?tree (parts : Part.t) ~candidate ~metrics ~label =
  let results, _ =
    Pa.aggregate ?tree parts ~op:min
      ~value:(fun ~part:_ ~vertex -> if candidate vertex then vertex else max_int)
      ~metrics ~label
  in
  results

let components g ~mask ~metrics ~label =
  let labels, count = Traversal.components_mask g mask in
  if count > 0 then begin
    let parts = Part.of_labels g labels in
    let b = basis parts ~metrics in
    Metrics.add metrics ~label (lemma8_rounds b)
  end;
  (labels, count)

type cost = { mutable dilation : int; mutable congestion : int }

let cost_zero () = { dilation = 0; congestion = 0 }

let cost_pa c b ~inv =
  c.dilation <- c.dilation + (inv * 2 * b.depth);
  c.congestion <- c.congestion + (inv * 2 * b.max_load)

let cost_lemma8 c b = cost_pa c b ~inv:(ceil_log2 b.n)

let cost_bct c b ~h =
  c.dilation <- c.dilation + (2 * b.depth);
  c.congestion <- c.congestion + (h * b.max_load)

let cost_mvc c b ~h ~t =
  c.dilation <- c.dilation + (t * 2 * b.depth);
  c.congestion <- c.congestion + (h * t * b.max_load)

let cost_rounds c = c.dilation + c.congestion

let schedule_costs costs =
  List.fold_left
    (fun (dmax, csum) c -> (max dmax c.dilation, csum + c.congestion))
    (0, 0) costs
  |> fun (dmax, csum) -> dmax + csum

let schedule_disjoint costs =
  List.fold_left
    (fun (dmax, cmax) c -> (max dmax c.dilation, max cmax c.congestion))
    (0, 0) costs
  |> fun (dmax, cmax) -> dmax + cmax
