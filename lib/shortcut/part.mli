(** Collections of connected subgraphs ("parts") of the communication
    graph, the objects part-wise aggregation operates on (Section 2.3 and
    Appendix A.1 of the paper).

    A collection is an array of vertex sets. Vertex-disjoint collections
    are the common case; {e near-disjoint} collections (Appendix A.1) may
    share boundary vertices subject to the two conditions checked by
    {!is_near_disjoint}. *)

type t = {
  graph : Repro_graph.Digraph.t;  (** the communication skeleton *)
  members : int array array;  (** vertex set per part *)
}

(** [make g members] checks that every part is a connected subgraph of the
    skeleton of [g]. @raise Invalid_argument otherwise. *)
val make : Repro_graph.Digraph.t -> int array array -> t

(** [of_labels g labels] groups vertices by their label ([-1] = in no
    part); labels need not be contiguous. *)
val of_labels : Repro_graph.Digraph.t -> int array -> t

val count : t -> int

(** [parts_of t] maps each vertex to the list of parts containing it. *)
val parts_of : t -> int list array

val is_vertex_disjoint : t -> bool

(** Near-disjointness (Appendix A.1): (1) for every skeleton edge, at
    least one endpoint lies in at most one part; (2) the private vertices
    of each part (those in no other part) induce a connected subgraph. *)
val is_near_disjoint : t -> bool

(** [make_unchecked g members] skips the connectivity check — used only
    for charge-basis measurements on collections whose connectivity is
    guaranteed by construction elsewhere. *)
val make_unchecked : Repro_graph.Digraph.t -> int array array -> t
