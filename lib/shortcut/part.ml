module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal

type t = { graph : Digraph.t; members : int array array }

let connected_within g vs =
  match Array.length vs with
  | 0 -> false
  | 1 -> true
  | len ->
      let mask = Array.make (Digraph.n g) false in
      Array.iter (fun v -> mask.(v) <- true) vs;
      let labels, _ = Traversal.components_mask g mask in
      let c0 = labels.(vs.(0)) in
      let ok = ref true in
      Array.iter (fun v -> if labels.(v) <> c0 then ok := false) vs;
      ignore len;
      !ok

let make g members =
  Array.iteri
    (fun i vs ->
      Array.iter
        (fun v ->
          if v < 0 || v >= Digraph.n g then
            invalid_arg (Printf.sprintf "Part.make: vertex %d out of range" v))
        vs;
      if not (connected_within g vs) then
        invalid_arg (Printf.sprintf "Part.make: part %d is empty or disconnected" i))
    members;
  { graph = g; members }

let of_labels g labels =
  let groups = Hashtbl.create 16 in
  Array.iteri
    (fun v l ->
      if l >= 0 then
        match Hashtbl.find_opt groups l with
        | Some acc -> acc := v :: !acc
        | None -> Hashtbl.add groups l (ref [ v ]))
    labels;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) groups [] |> List.sort compare in
  let members =
    Array.of_list
      (List.map (fun k -> Array.of_list (List.rev !(Hashtbl.find groups k))) keys)
  in
  make g members

let count t = Array.length t.members

let parts_of t =
  let belongs = Array.make (Digraph.n t.graph) [] in
  Array.iteri
    (fun p vs -> Array.iter (fun v -> belongs.(v) <- p :: belongs.(v)) vs)
    t.members;
  Array.map List.rev belongs

let is_vertex_disjoint t =
  Array.for_all (fun ps -> List.length ps <= 1) (parts_of t)

let is_near_disjoint t =
  let g = t.graph in
  let belongs = parts_of t in
  let multiplicity v = List.length belongs.(v) in
  (* condition 1: every skeleton edge has an endpoint in <= 1 part *)
  let cond1 =
    Array.for_all
      (fun e ->
        multiplicity e.Digraph.src <= 1 || multiplicity e.Digraph.dst <= 1)
      (Digraph.edges (Digraph.skeleton g))
  in
  (* condition 2: private vertices of each part induce a connected graph *)
  let cond2 =
    Array.for_all
      (fun vs ->
        let private_vs = Array.of_list (List.filter (fun v -> multiplicity v = 1)
                                          (Array.to_list vs)) in
        Array.length private_vs > 0 && connected_within g private_vs)
      t.members
  in
  cond1 && cond2

let make_unchecked g members = { graph = g; members }
