(** Minimum spanning tree via part-wise aggregation — the flagship
    low-congestion-shortcut application (Ghaffari-Haeupler [GH16b],
    cited in Section 1.1 as the Õ(tau D)-round MST for low-treewidth
    graphs).

    Boruvka: every fragment finds its minimum outgoing edge with one PA
    (min over members), fragments merge, O(log n) phases. Fragments are
    vertex-disjoint connected subgraphs, so each phase is exactly one PA
    invocation plus one SNC round, all measured. *)

type result = {
  edges : int list;  (** MST edge ids *)
  weight : int;
  phases : int;  (** Boruvka phases executed *)
}

(** [run g ~metrics] computes the MST of the connected undirected graph
    [g] (ties broken by edge id, so the MST is unique). Rounds charged
    under ["mst/phase"].
    @raise Invalid_argument if [g] is directed or disconnected. *)
val run : Repro_graph.Digraph.t -> metrics:Repro_congest.Metrics.t -> result

(** [kruskal g] — centralized reference (same tie-breaking). *)
val kruskal : Repro_graph.Digraph.t -> result
