module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Union_find = Repro_graph.Union_find
module Metrics = Repro_congest.Metrics

type result = { edges : int list; weight : int; phases : int }

let none = (Digraph.inf, -1)

let kruskal g =
  let n = Digraph.n g in
  let uf = Union_find.create n in
  let order =
    Array.to_list (Digraph.edges g)
    |> List.filter (fun e -> e.Digraph.src <> e.Digraph.dst)
    |> List.sort (fun a b ->
           compare (a.Digraph.weight, a.Digraph.id) (b.Digraph.weight, b.Digraph.id))
  in
  let edges =
    List.filter (fun e -> Union_find.union uf e.Digraph.src e.Digraph.dst) order
  in
  {
    edges = List.sort compare (List.map (fun e -> e.Digraph.id) edges);
    weight = List.fold_left (fun acc e -> acc + e.Digraph.weight) 0 edges;
    phases = 0;
  }

let run g ~metrics =
  if Digraph.directed g then invalid_arg "Mst.run: graph must be undirected";
  if not (Traversal.is_connected g) then invalid_arg "Mst.run: graph must be connected";
  let n = Digraph.n g in
  let uf = Union_find.create n in
  let chosen = ref [] in
  let phases = ref 0 in
  while Union_find.count uf > 1 do
    incr phases;
    (* SNC: every node learns its neighbors' fragment ids *)
    Metrics.add metrics ~label:"mst/phase" 1;
    (* local minimum outgoing edge per vertex *)
    let local_best = Array.make n none in
    Array.iter
      (fun e ->
        let u = e.Digraph.src and v = e.Digraph.dst in
        if u <> v && not (Union_find.same uf u v) then begin
          let cand = (e.Digraph.weight, e.Digraph.id) in
          if cand < local_best.(u) then local_best.(u) <- cand;
          if cand < local_best.(v) then local_best.(v) <- cand
        end)
      (Digraph.edges g);
    (* one PA per fragment: minimum outgoing edge of the fragment *)
    let labels = Array.init n (fun v -> Union_find.find uf v) in
    let parts = Part.of_labels g labels in
    let best, _stats =
      Pa.aggregate parts ~op:min
        ~value:(fun ~part:_ ~vertex -> local_best.(vertex))
        ~metrics ~label:"mst/phase"
    in
    let merged = ref false in
    Array.iter
      (fun (w, ei) ->
        if ei >= 0 then begin
          let e = Digraph.edge g ei in
          if Union_find.union uf e.Digraph.src e.Digraph.dst then begin
            chosen := ei :: !chosen;
            merged := true;
            ignore w
          end
        end)
      best;
    if not !merged then
      invalid_arg
        (Printf.sprintf "Mst.run: no component merged in phase %d (internal invariant)" !phases)
  done;
  let weight =
    List.fold_left (fun acc ei -> acc + (Digraph.edge g ei).Digraph.weight) 0 !chosen
  in
  { edges = List.sort compare !chosen; weight; phases = !phases }
