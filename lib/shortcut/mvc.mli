(** Minimum X-Y vertex cut with a size cap — the computational core of
    the MVC(h,t) subgraph operation (Lemma 8 / Corollary 2 of the paper).

    Solved by unit-capacity max-flow with vertex splitting; at most
    [limit + 1] augmenting-path phases run, mirroring the paper's
    reduction of MVC(t) to O(t) reachability computations. *)

(** [min_cut g ~mask ~sources ~sinks ~limit] is [Some cut] where [cut] is
    a minimum set of vertices (disjoint from [sources] and [sinks]) whose
    removal disconnects every source from every sink inside the masked
    subgraph of the skeleton of [g], provided such a cut of size at most
    [limit] exists. Returns [None] when the cut exceeds [limit], or when
    the cut size is infinite per the paper's convention (a source
    coincides with or is adjacent to a sink). *)
val min_cut :
  Repro_graph.Digraph.t ->
  mask:bool array ->
  sources:int list ->
  sinks:int list ->
  limit:int ->
  int list option
