(** The subgraph-operation toolbox of Appendix A (Lemma 8, Corollaries 2
    and 3) and the random-delay scheduling bound (Theorem 6).

    Each operation is either executed for real on top of {!Pa.aggregate}
    (SLE) or executed with the simulator's global view while charging the
    round cost the paper's own reduction prescribes, instantiated with
    {e measured} dilation/congestion of the concrete parts (DESIGN.md
    Section 3, "primitive-accounted"). *)

(** Measured charge basis: BFS-tree depth and per-edge part congestion. *)
type basis = { depth : int; max_load : int; n : int }

(** [basis ?tree parts] measures the charge basis of a collection. *)
val basis :
  ?tree:Repro_congest.Bfs_tree.tree ->
  Part.t ->
  metrics:Repro_congest.Metrics.t ->
  basis

val ceil_log2 : int -> int

(** One PA invocation: 2 (depth + congestion) rounds (up + down phase). *)
val pa_rounds : basis -> int

(** Lemma 8 operation (RST / STA / SLE / CCD / single-message BCT):
    Õ(1) invocations of PA and SNC; charged [ceil_log2 n] PA rounds. *)
val lemma8_rounds : basis -> int

(** Corollary 3, BCT(h): h-message broadcast per part; pipelined charge
    [2 depth + h * max_load] rounds. *)
val bct_rounds : basis -> h:int -> int

(** Corollary 2, MVC(h,t): h vertex-cut instances with cut cap [t]:
    charge [t (2 depth) + h t max_load] rounds (the paper's
    Õ(t tau D + h t tau) with measured quantities). *)
val mvc_rounds : basis -> h:int -> t:int -> int

(** Theorem 6 (random-delay scheduling): running algorithms with
    dilations [d_i] and congestions [c_i] together costs
    [max d_i + sum c_i] rounds. *)
val schedule : (int * int) list -> int

(** Subgraph leader election, executed for real as one PA with [min]:
    returns the smallest candidate id per part ([max_int] if the part has
    no candidate). Charged at the measured PA cost. *)
val elect :
  ?tree:Repro_congest.Bfs_tree.tree ->
  Part.t ->
  candidate:(int -> bool) ->
  metrics:Repro_congest.Metrics.t ->
  label:string ->
  int array

(** Connected-component detection (CCD) for the masked subgraph: returns
    per-vertex component labels ([-1] outside the mask) and the component
    count; charges Lemma 8 rounds measured on the resulting components. *)
val components :
  Repro_graph.Digraph.t ->
  mask:bool array ->
  metrics:Repro_congest.Metrics.t ->
  label:string ->
  int array * int

(** {1 Dilation/congestion cost tracking}

    Running N independent primitive sequences in parallel is priced by
    Theorem 6 as [max dilation + total congestion]. Algorithms that are
    later scheduled in parallel (e.g. the per-component separator
    computations of the tree-decomposition recursion) therefore account
    dilation and congestion separately in a {!cost} record. *)

type cost = { mutable dilation : int; mutable congestion : int }

val cost_zero : unit -> cost

(** [inv] PA invocations on a collection with charge basis [b]. *)
val cost_pa : cost -> basis -> inv:int -> unit

(** One Lemma 8 operation ([ceil_log2 n] PA invocations). *)
val cost_lemma8 : cost -> basis -> unit

(** Corollary 3 BCT(h). *)
val cost_bct : cost -> basis -> h:int -> unit

(** Corollary 2 MVC(h,t). *)
val cost_mvc : cost -> basis -> h:int -> t:int -> unit

(** Total rounds of a single cost when run alone. *)
val cost_rounds : cost -> int

(** Theorem 6: combined rounds of parallel executions. *)
val schedule_costs : cost list -> int

(** Combined rounds for parallel executions over vertex-disjoint regions:
    their traffic occupies disjoint edge sets, so per-edge congestion does
    not accumulate — [max dilation + max congestion]. *)
val schedule_disjoint : cost list -> int
