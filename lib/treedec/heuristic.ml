module Digraph = Repro_graph.Digraph

(* mutable adjacency over vertex sets, used by elimination simulations *)
let adjacency g =
  let n = Digraph.n g in
  let adj = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun e ->
      let u = e.Digraph.src and v = e.Digraph.dst in
      if u <> v then begin
        Hashtbl.replace adj.(u) v ();
        Hashtbl.replace adj.(v) u ()
      end)
    (Digraph.edges g);
  adj

let neighbors_list adj v = Hashtbl.fold (fun u () acc -> u :: acc) adj.(v) []

let eliminate adj v =
  let nbrs = neighbors_list adj v in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            Hashtbl.replace adj.(a) b ();
            Hashtbl.replace adj.(b) a ()
          end)
        nbrs;
      Hashtbl.remove adj.(a) v)
    nbrs;
  Hashtbl.reset adj.(v)

let fill_in adj v =
  let nbrs = neighbors_list adj v in
  let missing = ref 0 in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> if not (Hashtbl.mem adj.(a) b) then incr missing) rest;
        pairs rest
  in
  pairs nbrs;
  !missing

let order_by g score =
  let n = Digraph.n g in
  let adj = adjacency g in
  let alive = Array.make n true in
  let order = Array.make n (-1) in
  for step = 0 to n - 1 do
    let best = ref (-1) and best_score = ref (max_int, max_int) in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let s = score adj v in
        if s < !best_score then begin
          best_score := s;
          best := v
        end
      end
    done;
    order.(step) <- !best;
    alive.(!best) <- false;
    eliminate adj !best
  done;
  order

let min_fill_order g =
  order_by g (fun adj v -> (fill_in adj v, Hashtbl.length adj.(v)))

let min_degree_order g =
  order_by g (fun adj v -> (Hashtbl.length adj.(v), 0))

let of_order g order =
  let n = Digraph.n g in
  if n = 0 then invalid_arg "Heuristic.of_order: empty graph";
  let position = Array.make n 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  let adj = adjacency g in
  let bags = Array.make n [||] in
  Array.iter
    (fun v ->
      bags.(position.(v)) <- Array.of_list (v :: neighbors_list adj v);
      eliminate adj v)
    order;
  (* parent of bag i = bag of the earliest-eliminated other member *)
  let parents = Array.make n (-1) in
  for i = 0 to n - 1 do
    let v = order.(i) in
    let next =
      Array.fold_left
        (fun acc u -> if u <> v && position.(u) < acc then position.(u) else acc)
        max_int bags.(i)
    in
    if next < max_int then parents.(i) <- next
  done;
  (* a connected graph yields exactly one parentless bag (the last); for
     disconnected graphs, chain extra roots under the last bag *)
  let root = n - 1 in
  for i = 0 to n - 2 do
    if parents.(i) < 0 then parents.(i) <- root
  done;
  Decomposition.of_parent_tree g ~bags ~parents

let min_fill g = of_order g (min_fill_order g)

let degeneracy g =
  let adj = adjacency g in
  let n = Digraph.n g in
  let alive = Array.make n true in
  let best = ref 0 in
  for _ = 0 to n - 1 do
    let v = ref (-1) and d = ref max_int in
    for u = 0 to n - 1 do
      if alive.(u) then begin
        let du = Hashtbl.length adj.(u) in
        if du < !d then begin
          d := du;
          v := u
        end
      end
    done;
    best := max !best !d;
    alive.(!v) <- false;
    let nbrs = neighbors_list adj !v in
    List.iter (fun u -> Hashtbl.remove adj.(u) !v) nbrs;
    Hashtbl.reset adj.(!v)
  done;
  !best

let treewidth_upper g =
  min
    (Decomposition.width (of_order g (min_fill_order g)))
    (Decomposition.width (of_order g (min_degree_order g)))
