type subtree = { root : int; vertices : int list }

(* A working tree: a root plus the set of its vertices; adjacency comes
   from the global [tree_adj] filtered to the member set. *)
type work = { wroot : int; members : (int, unit) Hashtbl.t }

let work_of_list root vs =
  let members = Hashtbl.create (List.length vs) in
  List.iter (fun v -> Hashtbl.replace members v ()) vs;
  { wroot = root; members }

let vertices w = Hashtbl.fold (fun v () acc -> v :: acc) w.members []

let weight mu w = Hashtbl.fold (fun v () acc -> acc + mu v) w.members 0

(* children adjacency of [w] when rooted at [r] *)
let rooted_children tree_adj w r =
  let parent = Hashtbl.create (Hashtbl.length w.members) in
  let children = Hashtbl.create (Hashtbl.length w.members) in
  let add_child p c =
    match Hashtbl.find_opt children p with
    | Some l -> l := c :: !l
    | None -> Hashtbl.add children p (ref [ c ])
  in
  let queue = Queue.create () in
  Hashtbl.replace parent r r;
  Queue.add r queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if Hashtbl.mem w.members u && not (Hashtbl.mem parent u) then begin
          Hashtbl.replace parent u v;
          add_child v u;
          Queue.add u queue
        end)
      tree_adj.(v)
  done;
  let child_list v =
    match Hashtbl.find_opt children v with Some l -> !l | None -> []
  in
  child_list

(* weight of each subtree when rooted at r *)
let subtree_weights tree_adj mu w r =
  let child_list = rooted_children tree_adj w r in
  let weights = Hashtbl.create (Hashtbl.length w.members) in
  let rec go v =
    let total =
      List.fold_left (fun acc c -> acc + go c) (mu v) (child_list v)
    in
    Hashtbl.replace weights v total;
    total
  in
  ignore (go r);
  (child_list, weights)

(* weighted center: start at the root and descend into any child whose
   subtree weighs more than half the total *)
let center tree_adj mu w =
  let child_list, weights = subtree_weights tree_adj mu w w.wroot in
  let total = Hashtbl.find weights w.wroot in
  let rec descend v =
    match
      List.find_opt (fun c -> 2 * Hashtbl.find weights c > total) (child_list v)
    with
    | Some c -> descend c
    | None -> v
  in
  descend w.wroot

let collect_subtree child_list v =
  let acc = ref [] in
  let rec go u =
    acc := u :: !acc;
    List.iter go (child_list u)
  in
  go v;
  !acc

let run ~tree_adj ~root ~mu ~lo ~hi =
  if lo < 1 then invalid_arg "Split.run: lo must be >= 1";
  if hi < 3 * lo then invalid_arg "Split.run: need hi >= 3 * lo";
  let final = ref [] in
  let rec process w =
    let total = weight mu w in
    if total <= hi then final := { root = w.wroot; vertices = vertices w } :: !final
    else begin
      let c = center tree_adj mu w in
      let child_list, weights = subtree_weights tree_adj mu w c in
      let heavy, light =
        List.partition (fun v -> Hashtbl.find weights v >= lo) (child_list c)
      in
      let heavy_trees =
        List.map (fun v -> work_of_list v (collect_subtree child_list v)) heavy
      in
      let light_weight =
        mu c + List.fold_left (fun acc v -> acc + Hashtbl.find weights v) 0 light
      in
      let remainder_vertices =
        c :: List.concat_map (fun v -> collect_subtree child_list v) light
      in
      if light_weight < lo then begin
        (* merge the light remainder into one heavy subtree through c *)
        match heavy_trees with
        | [] -> assert false (* total > hi >= lo yet everything light *)
        | first :: rest ->
            let merged =
              work_of_list c (remainder_vertices @ vertices first)
            in
            List.iter process (merged :: rest)
      end
      else begin
        (* group the light children into consecutive chunks of weight in
           [lo, 2 lo), sharing c as their root (Fig. 1(b)) *)
        let groups = ref [] and current = ref [] and current_w = ref 0 in
        List.iter
          (fun y ->
            current := y :: !current;
            current_w := !current_w + Hashtbl.find weights y;
            if !current_w >= lo then begin
              groups := !current :: !groups;
              current := [];
              current_w := 0
            end)
            light;
        (match (!current, !groups) with
        | [], _ -> ()
        | leftover, g :: rest -> groups := (leftover @ g) :: rest
        | leftover, [] -> groups := [ leftover ]);
        let group_trees =
          match !groups with
          | [] -> [ work_of_list c [ c ] ] (* no light children: c alone *)
          | groups ->
              List.map
                (fun ys ->
                  work_of_list c
                    (c :: List.concat_map (fun y -> collect_subtree child_list y) ys))
                groups
        in
        List.iter process (heavy_trees @ group_trees)
      end
    end
  in
  let all = ref [] in
  Array.iteri (fun v _ -> if tree_adj.(v) <> [] || v = root then all := v :: !all) tree_adj;
  process (work_of_list root !all);
  !final
