module Digraph = Repro_graph.Digraph

type key = int list

type t = {
  graph : Digraph.t;
  bags : (key, int array) Hashtbl.t;
  child_count : (key, int) Hashtbl.t;
}

let parent = function
  | [] -> invalid_arg "Decomposition.parent: root has no parent"
  | x ->
      (* chop the tail character *)
      List.rev (List.tl (List.rev x))

let create g assoc =
  let bags = Hashtbl.create (List.length assoc) in
  List.iter
    (fun (k, b) ->
      if Hashtbl.mem bags k then invalid_arg "Decomposition.create: duplicate key";
      Hashtbl.add bags k (Array.copy b))
    assoc;
  if not (Hashtbl.mem bags []) then invalid_arg "Decomposition.create: missing root key";
  let child_count = Hashtbl.create (List.length assoc) in
  Hashtbl.iter
    (fun k _ ->
      if k <> [] then begin
        let p = parent k in
        if not (Hashtbl.mem bags p) then
          invalid_arg "Decomposition.create: key set not prefix-closed";
        let i = List.nth k (List.length k - 1) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt child_count p) in
        Hashtbl.replace child_count p (max cur (i + 1))
      end)
    bags;
  (* contiguity of child indices *)
  Hashtbl.iter
    (fun k cnt ->
      for i = 0 to cnt - 1 do
        if not (Hashtbl.mem bags (k @ [ i ])) then
          invalid_arg "Decomposition.create: child indices not contiguous"
      done)
    child_count;
  { graph = g; bags; child_count }

let graph t = t.graph
let bag t k = Hashtbl.find t.bags k
let mem t k = Hashtbl.mem t.bags k
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.bags []

let children t k =
  let cnt = Option.value ~default:0 (Hashtbl.find_opt t.child_count k) in
  List.init cnt Fun.id

let width t =
  Hashtbl.fold (fun _ b acc -> max acc (Array.length b - 1)) t.bags (-1)

let depth t = Hashtbl.fold (fun k _ acc -> max acc (List.length k)) t.bags 0
let bag_count t = Hashtbl.length t.bags

let keys_sorted t =
  List.sort
    (fun a b ->
      let la = List.length a and lb = List.length b in
      if la <> lb then compare la lb else compare a b)
    (keys t)

let canonical t v =
  let rec search = function
    | [] -> raise Not_found
    | k :: rest -> if Array.exists (fun u -> u = v) (bag t k) then k else search rest
  in
  search (keys_sorted t)

let prefixes k =
  let rec go acc cur = function
    | [] -> List.rev (cur :: acc)
    | c :: rest -> go (cur :: acc) (cur @ [ c ]) rest
  in
  go [] [] k

let b_up t v =
  let c = canonical t v in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun k -> Array.iter (fun u -> Hashtbl.replace seen u ()) (bag t k))
    (prefixes c);
  Array.of_list (List.sort compare (Hashtbl.fold (fun u () acc -> u :: acc) seen []))

let validate t =
  let g = t.graph in
  let n = Digraph.n g in
  let covered = Array.make n false in
  Hashtbl.iter (fun _ b -> Array.iter (fun v -> covered.(v) <- true) b) t.bags;
  match Array.to_list covered |> List.mapi (fun v c -> (v, c)) |> List.find_opt (fun (_, c) -> not c) with
  | Some (v, _) -> Error (Printf.sprintf "condition (a): vertex %d in no bag" v)
  | None -> (
      let skeleton = Digraph.skeleton g in
      let edge_ok e =
        let u = e.Digraph.src and v = e.Digraph.dst in
        Hashtbl.fold
          (fun _ b acc ->
            acc
            || (Array.exists (fun x -> x = u) b && Array.exists (fun x -> x = v) b))
          t.bags false
      in
      match Array.to_list (Digraph.edges skeleton) |> List.find_opt (fun e -> not (edge_ok e)) with
      | Some e ->
          Error
            (Printf.sprintf "condition (b): edge (%d,%d) in no bag" e.Digraph.src
               e.Digraph.dst)
      | None -> (
          (* condition (c): for each vertex, bags containing it form a
             connected subtree *)
          let bad = ref None in
          for v = 0 to n - 1 do
            if !bad = None then begin
              let holding =
                List.filter (fun k -> Array.exists (fun u -> u = v) (bag t k)) (keys t)
              in
              match holding with
              | [] -> ()
              | _ ->
                  let holds = Hashtbl.create 8 in
                  List.iter (fun k -> Hashtbl.replace holds k ()) holding;
                  (* connected iff every holding key except the shallowest
                     has its parent holding too *)
                  let shallowest =
                    List.fold_left
                      (fun acc k ->
                        match acc with
                        | None -> Some k
                        | Some b -> if List.length k < List.length b then Some k else acc)
                      None holding
                    |> Option.get
                  in
                  List.iter
                    (fun k ->
                      if k <> shallowest && (k = [] || not (Hashtbl.mem holds (parent k)))
                      then bad := Some (v, k))
                    holding
            end
          done;
          match !bad with
          | Some (v, _) ->
              Error (Printf.sprintf "condition (c): bags holding %d are disconnected" v)
          | None -> Ok ()))

let of_parent_tree g ~bags ~parents =
  let nb = Array.length bags in
  if Array.length parents <> nb then invalid_arg "Decomposition.of_parent_tree";
  let roots = ref [] in
  let child_lists = Array.make nb [] in
  Array.iteri
    (fun i p ->
      if p < 0 then roots := i :: !roots
      else child_lists.(p) <- i :: child_lists.(p))
    parents;
  let root =
    match !roots with
    | [ r ] -> r
    | _ -> invalid_arg "Decomposition.of_parent_tree: need exactly one root"
  in
  let assoc = ref [] in
  let rec assign key i =
    assoc := (key, bags.(i)) :: !assoc;
    List.iteri (fun idx c -> assign (key @ [ idx ]) c) (List.rev child_lists.(i))
  in
  assign [] root;
  create g !assoc

let pp fmt t =
  Format.fprintf fmt "tree decomposition: %d bags, width %d, depth %d" (bag_count t)
    (width t) (depth t)
