module Digraph = Repro_graph.Digraph
module Traversal = Repro_graph.Traversal
module Metrics = Repro_congest.Metrics
module Part = Repro_shortcut.Part
module Mvc = Repro_shortcut.Mvc
module Primitives = Repro_shortcut.Primitives

type profile = {
  name : string;
  threshold_factor : int;
  iter_num : int;
  iter_den : int;
  pairs : int;
  balance_num : int;
  balance_den : int;
  split_lo_den : int;
  split_hi_den : int;
  trials : int;
  centralized_base : bool;
}

let paper_profile =
  {
    name = "paper";
    threshold_factor = 200;
    iter_num = 301;
    iter_den = 300;
    pairs = 95;
    balance_num = 14399;
    balance_den = 14400;
    split_lo_den = 12;
    split_hi_den = 4;
    trials = 16;
    centralized_base = false;
  }

let practical_profile =
  {
    name = "practical";
    threshold_factor = 4;
    iter_num = 3;
    iter_den = 2;
    pairs = 24;
    balance_num = 3;
    balance_den = 4;
    split_lo_den = 12;
    split_hi_den = 4;
    trials = 6;
    centralized_base = true;
  }

let mu_of ~mask ~x_mask v = if mask.(v) && x_mask.(v) then 1 else 0

let weight_of_mask g ~mask ~x_mask =
  let total = ref 0 in
  for v = 0 to Digraph.n g - 1 do
    total := !total + mu_of ~mask ~x_mask v
  done;
  !total

let is_balanced g ~mask ~x_mask ~profile sep =
  let total = weight_of_mask g ~mask ~x_mask in
  let mask' = Array.copy mask in
  List.iter (fun v -> mask'.(v) <- false) sep;
  let labels, count = Traversal.components_mask g mask' in
  let weights = Array.make (max 1 count) 0 in
  Array.iteri
    (fun v l -> if l >= 0 then weights.(l) <- weights.(l) + mu_of ~mask:mask' ~x_mask v)
    labels;
  Array.for_all (fun w -> profile.balance_den * w <= profile.balance_num * total) weights

let masked_vertices mask = Repro_graph.Mask.vertices mask

(* BFS spanning tree of the masked subgraph, as tree adjacency lists *)
let spanning_tree_adj g ~mask ~root =
  let n = Digraph.n g in
  let adj = Array.make n [] in
  let visited = Array.make n false in
  visited.(root) <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let scan ei =
      let e = Digraph.edge g ei in
      let grab u =
        if u <> v && mask.(u) && not visited.(u) then begin
          visited.(u) <- true;
          adj.(v) <- u :: adj.(v);
          adj.(u) <- v :: adj.(u);
          Queue.add u queue
        end
      in
      grab e.Digraph.src;
      grab e.Digraph.dst
    in
    Array.iter scan (Digraph.out_edges g v);
    if Digraph.directed g then Array.iter scan (Digraph.in_edges g v)
  done;
  adj

let heaviest_component g ~mask ~x_mask =
  let labels, count = Traversal.components_mask g mask in
  if count = 0 then None
  else begin
    let weights = Array.make count 0 in
    Array.iteri
      (fun v l -> if l >= 0 then weights.(l) <- weights.(l) + mu_of ~mask ~x_mask v)
      labels;
    let best = ref 0 in
    Array.iteri (fun c w -> if w > weights.(!best) then best := c) weights;
    Some (Array.map (fun l -> l = !best) labels)
  end


(* Centralized base case: the subgraph is small enough to gather at one
   node (charged as a broadcast); a bag of its min-fill decomposition is a
   balanced separator of width-sized cost. *)
let centralized_base_separator g ~mask ~x_mask ~profile =
  let vs = masked_vertices mask in
  match vs with
  | [] -> []
  | _ -> (
      let sub, old_of_new, _new_of_old = Repro_graph.Digraph.induced g vs in
      (* min-fill gives the best bags but costs ~n^3 locally; fall back to
         min-degree beyond 150 vertices (local computation is free in the
         CONGEST model, but keep the simulator fast) *)
      let dec =
        if Repro_graph.Digraph.n sub <= 150 then Heuristic.min_fill sub
        else Heuristic.of_order sub (Heuristic.min_degree_order sub)
      in
      let total = weight_of_mask g ~mask ~x_mask in
      let evaluate bag =
        let mask' = Array.copy mask in
        Array.iter (fun v -> mask'.(old_of_new.(v)) <- false) bag;
        let labels, count = Traversal.components_mask g mask' in
        let weights = Array.make (max 1 count) 0 in
        Array.iteri
          (fun v l -> if l >= 0 then weights.(l) <- weights.(l) + mu_of ~mask:mask' ~x_mask v)
          labels;
        Array.fold_left max 0 weights
      in
      let best = ref None in
      List.iter
        (fun key ->
          let bag = Decomposition.bag dec key in
          let worst = evaluate bag in
          match !best with
          | Some (w, _) when w <= worst -> ()
          | _ -> best := Some (worst, bag))
        (Decomposition.keys dec);
      match !best with
      | Some (worst, bag) when profile.balance_den * worst <= profile.balance_num * total ->
          List.map (fun v -> old_of_new.(v)) (Array.to_list bag)
      | _ -> List.filter (fun v -> x_mask.(v)) vs)

let sep ?(profile = practical_profile) ~rng g ~mask ~x_mask ~t ~cost =
  let dummy_metrics = Metrics.create () in
  let basis_of parts = Primitives.basis parts ~metrics:dummy_metrics in
  let mu_total = weight_of_mask g ~mask ~x_mask in
  let all = masked_vertices mask in
  if all = [] then Some []
  else if mu_total <= profile.threshold_factor * t * t then begin
    (* step 1: the subgraph is small; either output X itself (paper) or a
       centrally computed balanced bag (practical profile) *)
    let whole = Part.make g [| Array.of_list all |] in
    if profile.centralized_base then begin
      let b = basis_of whole in
      Primitives.cost_bct cost b ~h:(Repro_graph.Mask.edge_count g mask);
      Some (List.sort compare (centralized_base_separator g ~mask ~x_mask ~profile))
    end
    else begin
      Primitives.cost_lemma8 cost (basis_of whole);
      Some (List.filter (fun v -> x_mask.(v)) all)
    end
  end
  else begin
    let iterations =
      max 1 (((profile.iter_num * t) + profile.iter_den - 1) / profile.iter_den)
    in
    let lo = max 1 (mu_total / (profile.split_lo_den * t)) in
    let hi = max (3 * lo) (mu_total / (profile.split_hi_den * t)) in
    let r_star = ref [] in
    let saved = ref [] (* (mask_i, split trees) per iteration *) in
    let current = ref (Array.copy mask) in
    let result = ref None in
    (try
       for _i = 1 to iterations do
         let mask_i = !current in
         let members = masked_vertices mask_i in
         if members = [] then raise Exit;
         (* step 2: spanning tree + SPLIT *)
         let root = List.hd members in
         let tree_adj = spanning_tree_adj g ~mask:mask_i ~root in
         let whole = Part.make g [| Array.of_list members |] in
         Primitives.cost_lemma8 cost (basis_of whole);
         let trees =
           Split.run ~tree_adj ~root ~mu:(mu_of ~mask:mask_i ~x_mask) ~lo ~hi
         in
         let tree_parts =
           Part.make g
             (Array.of_list (List.map (fun st -> Array.of_list st.Split.vertices) trees))
         in
         let split_basis = basis_of tree_parts in
         Primitives.cost_pa cost split_basis
           ~inv:(Primitives.ceil_log2 (max 2 t) * Primitives.ceil_log2 (Digraph.n g));
         saved := (mask_i, trees) :: !saved;
         (* step 3: accumulate roots, test balance *)
         let roots = List.map (fun st -> st.Split.root) trees in
         r_star := List.sort_uniq compare (roots @ !r_star);
         Primitives.cost_lemma8 cost split_basis;
         if is_balanced g ~mask ~x_mask ~profile !r_star then begin
           result := Some !r_star;
           raise Exit
         end;
         (* next graph: heaviest component of G_i - R_i *)
         let mask' = Array.copy mask_i in
         List.iter (fun v -> mask'.(v) <- false) roots;
         match heaviest_component g ~mask:mask' ~x_mask with
         | None -> raise Exit
         | Some comp -> current := comp
       done
     with Exit -> ());
    match !result with
    | Some s -> Some (List.sort compare s)
    | None ->
        (* step 4: sampled pairwise vertex cuts *)
        let z = ref !r_star in
        List.iter
          (fun (mask_i, trees) ->
            let arr = Array.of_list trees in
            let nt = Array.length arr in
            if nt >= 2 then begin
              let tree_parts =
                Part.make g
                  (Array.of_list
                     (List.map (fun st -> Array.of_list st.Split.vertices) trees))
              in
              Primitives.cost_mvc cost (basis_of tree_parts) ~h:profile.pairs ~t:(t + 1);
              for _p = 1 to profile.pairs do
                let a = Random.State.int rng nt and b = Random.State.int rng nt in
                if a <> b then begin
                  let t1 = arr.(a) and t2 = arr.(b) in
                  match
                    Mvc.min_cut g ~mask:mask_i ~sources:t1.Split.vertices
                      ~sinks:t2.Split.vertices ~limit:t
                  with
                  | Some cut -> z := cut @ !z
                  | None -> ()
                end
              done
            end)
          !saved;
        let z = List.sort_uniq compare !z in
        if is_balanced g ~mask ~x_mask ~profile z then Some z else None
  end

let find_separator ?(profile = practical_profile) ?(seed = 0) g ~mask ~x_mask ~cost =
  let rng = Random.State.make [| seed; Digraph.n g; 0x5e9 |] in
  let rec try_t t =
    let rec attempts k =
      if k = 0 then None
      else
        match sep ~profile ~rng g ~mask ~x_mask ~t ~cost with
        | Some s -> Some s
        | None -> attempts (k - 1)
    in
    match attempts profile.trials with
    | Some s -> (s, t)
    | None -> try_t (2 * t)
  in
  let s, t = try_t 2 in
  (* Practical-profile fallback: SEP separators have Theta(t^2) size by
     design; when one swallows more than a quarter of a small subgraph
     (useless for the decomposition recursion), gather the subgraph and
     take a min-fill bag instead — charged as the broadcast it costs. *)
  let members = masked_vertices mask in
  let size = List.length members in
  if
    profile.centralized_base && size <= 512
    && 4 * List.length s > size
  then begin
    let b =
      Primitives.basis (Part.make g [| Array.of_list members |])
        ~metrics:(Metrics.create ())
    in
    Primitives.cost_bct cost b ~h:(Repro_graph.Mask.edge_count g mask);
    let central = centralized_base_separator g ~mask ~x_mask ~profile in
    if List.length central < List.length s then (List.sort compare central, t) else (s, t)
  end
  else (s, t)
