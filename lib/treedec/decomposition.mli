(** Tree decompositions with the paper's string identifiers.

    Following Section 2.2, every vertex of the decomposition tree [T] is
    identified by a string over the alphabet [0, n-1]; the root is the
    empty string and [x . i] is the i-th child of [x]. We represent a
    string as an [int list] ("key"). *)

type key = int list

type t

(** [create g bags] builds a decomposition of [g] from an association of
    keys to bags. The key set must be prefix-closed with contiguous child
    indices (if [x . i] is present and [i > 0] then [x . (i-1)] is).
    No structural validity is enforced beyond the key set — use
    {!validate}. *)
val create : Repro_graph.Digraph.t -> (key * int array) list -> t

val graph : t -> Repro_graph.Digraph.t
val bag : t -> key -> int array
val mem : t -> key -> bool
val keys : t -> key list

(** [children t x] are the child indices [i] with [x . i] present
    ([cht] in the paper). *)
val children : t -> key -> int list

(** [parent x] chops the last character; @raise Invalid_argument on the
    root. *)
val parent : key -> key

(** [width t] is [max bag size - 1]. *)
val width : t -> int

(** [depth t] is the length of the longest key. *)
val depth : t -> int

val bag_count : t -> int

(** [canonical t v] is the shortest key whose bag contains [v]
    ([c*(v)] in the paper). Well-defined whenever condition (c) holds.
    @raise Not_found if no bag contains [v]. *)
val canonical : t -> int -> key

(** [b_up t v] is the union of the bags of all prefixes of [canonical t
    v] — the anchor set [B^(arrow-up)(v)] of the distance-labeling scheme
    (Section 4.1). Sorted, duplicate-free. *)
val b_up : t -> int -> int array

(** [validate t] checks the three tree-decomposition conditions of
    Section 2.2: (a) every vertex covered, (b) every skeleton edge inside
    some bag, (c) the bags containing any vertex form a connected subtree.
    Returns [Ok ()] or [Error message]. *)
val validate : t -> (unit, string) result

(** [of_parent_tree g ~bags ~parents] converts a decomposition given as
    arrays (bag [i] has parent [parents.(i)], root has parent [-1]) into
    key form, assigning child indices in order of appearance. *)
val of_parent_tree : Repro_graph.Digraph.t -> bags:int array array -> parents:int array -> t

val pp : Format.formatter -> t -> unit
