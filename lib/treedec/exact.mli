(** Exact treewidth for small graphs (n <= 18) by the Held-Karp-style
    dynamic program over elimination prefixes [Bodlaender et al.]:

      tw(S) = min over v in S of max(tw(S - v), q(S - v, v))

    where q(S, v) counts the vertices outside S u {v} reachable from v
    through S. Used by tests to certify the heuristic bounds and the
    treewidth of generator families. *)

(** [treewidth g] is the exact treewidth of the skeleton of [g].
    @raise Invalid_argument if n > 18. *)
val treewidth : Repro_graph.Digraph.t -> int

(** [elimination_order g] additionally reconstructs an optimal
    elimination order (so [Heuristic.of_order] yields a witness
    decomposition of exactly that width). *)
val elimination_order : Repro_graph.Digraph.t -> int * int array
