module Digraph = Repro_graph.Digraph

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  go 0 m

let iter_bits m f =
  let rest = ref m in
  while !rest <> 0 do
    let low = !rest land - !rest in
    (* index of the low bit *)
    let rec idx i b = if b = 1 then i else idx (i + 1) (b lsr 1) in
    f (idx 0 low);
    rest := !rest land lnot low
  done

let neighbor_masks g =
  let n = Digraph.n g in
  let nbr = Array.make n 0 in
  Array.iter
    (fun e ->
      let u = e.Digraph.src and v = e.Digraph.dst in
      if u <> v then begin
        nbr.(u) <- nbr.(u) lor (1 lsl v);
        nbr.(v) <- nbr.(v) lor (1 lsl u)
      end)
    (Digraph.edges (Digraph.skeleton g));
  nbr

(* q(S, v): vertices outside S u {v} adjacent to the component of v in
   the graph induced by S u {v} *)
let q nbr s v =
  let su = s lor (1 lsl v) in
  let comp = ref (1 lsl v) in
  let frontier = ref (1 lsl v) in
  while !frontier <> 0 do
    let nxt = ref 0 in
    iter_bits !frontier (fun u -> nxt := !nxt lor nbr.(u));
    let nxt = !nxt land s land lnot !comp in
    comp := !comp lor nxt;
    frontier := nxt
  done;
  let boundary = ref 0 in
  iter_bits !comp (fun u -> boundary := !boundary lor nbr.(u));
  popcount (!boundary land lnot su)

let solve g =
  let n = Digraph.n g in
  if n > 18 then invalid_arg "Exact.treewidth: n > 18";
  if n = 0 then (0, [||])
  else begin
    let nbr = neighbor_masks g in
    let size = 1 lsl n in
    let f = Array.make size max_int in
    let choice = Array.make size (-1) in
    f.(0) <- -1;
    for s = 1 to size - 1 do
      let best = ref max_int and best_v = ref (-1) in
      iter_bits s (fun v ->
          let s' = s land lnot (1 lsl v) in
          let cand = max f.(s') (q nbr s' v) in
          if cand < !best then begin
            best := cand;
            best_v := v
          end);
      f.(s) <- !best;
      choice.(s) <- !best_v
    done;
    (* reconstruct: choice.(s) is eliminated last among s *)
    let order = Array.make n (-1) in
    let s = ref (size - 1) in
    for i = n - 1 downto 0 do
      let v = choice.(!s) in
      order.(i) <- v;
      s := !s land lnot (1 lsl v)
    done;
    (max 0 f.(size - 1), order)
  end

let elimination_order g = solve g
let treewidth g = fst (solve g)
